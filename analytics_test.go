package grove

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Count != 8 || s.Sum != 40 || s.Mean != 5 {
		t.Errorf("Summary = %+v", s)
	}
	if math.Abs(s.StdDev-2) > 1e-9 {
		t.Errorf("StdDev = %v, want 2", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeSkipsNulls(t *testing.T) {
	s := Summarize([]float64{1, math.NaN(), 3})
	if s.Count != 2 || s.Sum != 4 || s.Mean != 2 {
		t.Errorf("Summary = %+v", s)
	}
	empty := Summarize([]float64{math.NaN()})
	if empty.Count != 0 || empty.Sum != 0 {
		t.Errorf("all-NULL Summary = %+v", empty)
	}
	if Summarize(nil).Count != 0 {
		t.Error("nil Summarize non-zero")
	}
}

func TestAveragePath(t *testing.T) {
	st := buildSCMStore(t)
	ids, avgs, err := st.AveragePath("A", "D", "E", "G", "I")
	if err != nil {
		t.Fatal(err)
	}
	// Record 0: 4 legs of 2h → avg 2.
	if len(ids) != 1 || ids[0] != 0 {
		t.Fatalf("ids = %v", ids)
	}
	if avgs[0] != 2 {
		t.Errorf("avg = %v, want 2", avgs[0])
	}
}

func TestAveragePathUsesViews(t *testing.T) {
	st := buildSCMStore(t)
	// Materialize SUM and COUNT views over the same subpath; AVG must still
	// be exact.
	if err := st.MaterializeAggViewPath("s", Sum, "A", "D", "E"); err != nil {
		t.Fatal(err)
	}
	if err := st.MaterializeAggViewPath("c", Count, "A", "D", "E"); err != nil {
		t.Fatal(err)
	}
	_, avgs, err := st.AveragePath("A", "D", "E", "G", "I")
	if err != nil {
		t.Fatal(err)
	}
	if avgs[0] != 2 {
		t.Errorf("avg with views = %v, want 2", avgs[0])
	}
}

func TestAveragePathNullPath(t *testing.T) {
	st := Open()
	rec := NewRecord()
	if err := rec.SetEdge("A", "B", 1); err != nil {
		t.Fatal(err)
	}
	rec.AddBareElement(EdgeKey{From: "B", To: "C"})
	st.Add(rec)
	_, avgs, err := st.AveragePath("A", "B", "C")
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(avgs[0]) {
		t.Errorf("avg over NULL = %v, want NaN", avgs[0])
	}
}

func TestSummarizeByTag(t *testing.T) {
	st := buildSCMStore(t)
	// Records 0 and 2 contain A→D→E→G with times 2 and 5 per leg.
	if err := st.Tag(0, "type", "fast"); err != nil {
		t.Fatal(err)
	}
	if err := st.Tag(2, "type", "regular"); err != nil {
		t.Fatal(err)
	}
	res, err := st.AggregatePath(Sum, "A", "D", "E", "G")
	if err != nil {
		t.Fatal(err)
	}
	groups, err := st.SummarizeByTag(res, "type")
	if err != nil {
		t.Fatal(err)
	}
	if g := groups["fast"]; g.Count != 1 || g.Sum != 6 {
		t.Errorf("fast group = %+v", g)
	}
	if g := groups["regular"]; g.Count != 1 || g.Sum != 15 {
		t.Errorf("regular group = %+v", g)
	}
	if _, hasUntagged := groups[""]; hasUntagged {
		t.Error("unexpected untagged group")
	}
}

func TestSummarizeByTagUntaggedGroup(t *testing.T) {
	st := buildSCMStore(t)
	if err := st.Tag(0, "type", "fast"); err != nil {
		t.Fatal(err)
	}
	res, err := st.AggregatePath(Sum, "A", "D", "E", "G")
	if err != nil {
		t.Fatal(err)
	}
	groups, err := st.SummarizeByTag(res, "type")
	if err != nil {
		t.Fatal(err)
	}
	if g := groups[""]; g.Count != 1 || g.Sum != 15 {
		t.Errorf("untagged group = %+v", g)
	}
	if _, err := st.SummarizeByTag(nil, "type"); err == nil {
		t.Error("nil result accepted")
	}
}
