package query

import (
	"container/list"
	"strconv"
	"sync"

	"grove/internal/bitmap"
	"grove/internal/colstore"
)

// ResultCache memoizes structural answers keyed on the query's canonical
// edge set. Entries are valid only for the relation version they were
// computed at: ANY mutation (new record, measure, view, tag, delete)
// invalidates the whole cache, which keeps correctness trivial — the
// workloads grove targets are read-mostly between ingest batches (§2).
//
// The cache is split into shards selected by a hash of the key, so the
// workers of a BatchExecutor do not serialize on a single mutex. Each shard
// is an independent LRU: when full, the least recently used entry of that
// shard is evicted (replacing the earlier whole-cache random eviction).
// Version invalidation is also per shard and lazy — a shard drops its
// entries the first time it is touched at a newer version.
type ResultCache struct {
	capacity int
	shards   []*cacheShard
}

const defaultCacheShards = 16

type cacheShard struct {
	mu        sync.Mutex
	cap       int
	version   uint64
	entries   map[string]*list.Element
	lru       *list.List // front = most recently used
	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key    string
	answer *bitmap.Bitmap
}

// NewResultCache returns a cache holding up to capacity answers
// (capacity ≤ 0 selects 256). The shard count is fixed; each shard holds at
// least one entry, so tiny capacities degrade to per-shard direct-mapped
// caches rather than to a single contended LRU.
func NewResultCache(capacity int) *ResultCache {
	if capacity <= 0 {
		capacity = 256
	}
	c := &ResultCache{capacity: capacity, shards: make([]*cacheShard, defaultCacheShards)}
	per := capacity / defaultCacheShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			cap:     per,
			entries: make(map[string]*list.Element, per),
			lru:     list.New(),
		}
	}
	return c
}

// cacheKey canonicalizes a query's edge-id universe. Hot path: plain
// strconv appends into one grown-once buffer (the earlier fmt.Fprintf
// version allocated per element).
func cacheKey(universe []colstore.EdgeID) string {
	buf := make([]byte, 0, 9*len(universe))
	for i, e := range universe {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendUint(buf, uint64(e), 16)
	}
	return string(buf)
}

// shard selects the shard for a key (FNV-1a over the key bytes).
func (c *ResultCache) shard(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return c.shards[h%uint32(len(c.shards))]
}

// get returns a cached answer for the universe at the given relation
// version, or nil. Callers must not mutate the returned bitmap.
func (c *ResultCache) get(version uint64, key string) *bitmap.Bitmap {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.version != version {
		s.reset(version)
		s.misses++
		return nil
	}
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		s.hits++
		return el.Value.(*cacheEntry).answer
	}
	s.misses++
	return nil
}

// put stores an answer computed at the given version.
func (c *ResultCache) put(version uint64, key string, answer *bitmap.Bitmap) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.version != version {
		s.reset(version)
	}
	if el, ok := s.entries[key]; ok {
		el.Value.(*cacheEntry).answer = answer
		s.lru.MoveToFront(el)
		return
	}
	if s.lru.Len() >= s.cap {
		if oldest := s.lru.Back(); oldest != nil {
			s.lru.Remove(oldest)
			delete(s.entries, oldest.Value.(*cacheEntry).key)
			s.evictions++
		}
	}
	s.entries[key] = s.lru.PushFront(&cacheEntry{key: key, answer: answer})
}

// reset drops a shard's entries and moves it to the given version. Called
// with the shard lock held.
func (s *cacheShard) reset(version uint64) {
	s.entries = make(map[string]*list.Element, s.cap)
	s.lru.Init()
	s.version = version
}

// CacheStats is a snapshot of the cache's cumulative counters. Hits and
// misses count lookups; evictions count LRU displacements (version resets
// drop entries wholesale and are not counted as evictions).
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// Stats returns cumulative hit/miss/eviction counts across all shards.
func (c *ResultCache) Stats() CacheStats {
	var st CacheStats
	for _, s := range c.shards {
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		s.mu.Unlock()
	}
	return st
}

// EnableCache attaches a result cache to the engine (nil disables caching).
// The same cache may be shared by many engines — e.g. the per-worker clones
// of a BatchExecutor — so repeated queries hit regardless of which worker
// computed them first.
func (e *Engine) EnableCache(c *ResultCache) { e.cache = c }
