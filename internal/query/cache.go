package query

import (
	"fmt"
	"strings"
	"sync"

	"grove/internal/bitmap"
	"grove/internal/colstore"
)

// ResultCache memoizes structural answers keyed on the query's canonical
// edge set. Entries are valid only for the relation version they were
// computed at: ANY mutation (new record, measure, view, tag, delete)
// invalidates the whole cache, which keeps correctness trivial — the
// workloads grove targets are read-mostly between ingest batches (§2).
//
// The cache is bounded; when full, an arbitrary entry is evicted (map
// iteration order), which is effectively random replacement.
type ResultCache struct {
	mu       sync.Mutex
	capacity int
	version  uint64
	entries  map[string]*bitmap.Bitmap
	hits     int64
	misses   int64
}

// NewResultCache returns a cache holding up to capacity answers
// (capacity ≤ 0 selects 256).
func NewResultCache(capacity int) *ResultCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &ResultCache{
		capacity: capacity,
		entries:  make(map[string]*bitmap.Bitmap, capacity),
	}
}

// cacheKey canonicalizes a query's edge-id universe.
func cacheKey(universe []colstore.EdgeID) string {
	var sb strings.Builder
	for i, e := range universe {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%x", uint32(e))
	}
	return sb.String()
}

// get returns a cached answer for the universe at the given relation
// version, or nil.
func (c *ResultCache) get(version uint64, key string) *bitmap.Bitmap {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.version != version {
		c.entries = make(map[string]*bitmap.Bitmap, c.capacity)
		c.version = version
		c.misses++
		return nil
	}
	if b, ok := c.entries[key]; ok {
		c.hits++
		return b
	}
	c.misses++
	return nil
}

// put stores an answer computed at the given version.
func (c *ResultCache) put(version uint64, key string, answer *bitmap.Bitmap) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.version != version {
		c.entries = make(map[string]*bitmap.Bitmap, c.capacity)
		c.version = version
	}
	if len(c.entries) >= c.capacity {
		for k := range c.entries { // random replacement
			delete(c.entries, k)
			break
		}
	}
	c.entries[key] = answer
}

// Stats returns cumulative hit/miss counts.
func (c *ResultCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// EnableCache attaches a result cache to the engine (nil disables caching).
func (e *Engine) EnableCache(c *ResultCache) { e.cache = c }
