package query

import (
	"context"
	"fmt"
	"strings"
	"time"

	"grove/internal/bitmap"
	"grove/internal/graph"
	"grove/internal/obs"
)

// StatementResult is the answer of a parsed text-language statement: exactly
// one of IDs (boolean structural query) or Agg (path aggregation) is set.
type StatementResult struct {
	IDs *bitmap.Bitmap
	Agg *AggResult
}

// ExecuteStatement parses and executes one statement of the text query
// language as a single traced unit: the trace covers parsing too (the
// "parse" phase), and the statement is metered under the "statement" kind
// rather than as a bare expression or aggregation.
func (e *Engine) ExecuteStatement(text string) (*StatementResult, error) {
	return e.ExecuteStatementContext(context.Background(), text)
}

// ExecuteStatementContext is ExecuteStatement with cancellation, checked
// between column fetches and per-path aggregation chunks.
func (e *Engine) ExecuteStatementContext(ctx context.Context, text string) (*StatementResult, error) {
	var start time.Time
	if e.metrics != nil || e.slow != nil {
		start = time.Now()
	}
	var slowIO obs.IODelta
	if e.slow != nil {
		slowIO = e.ioNow()
	}
	var tr *obs.ActiveTrace
	if e.traces != nil {
		tr = obs.StartTrace(obs.KindStatement, text, e.ioNow())
		tr.SetShard(e.shardID)
	}
	res, err := e.executeStatement(ctx, text, tr)
	if tr != nil {
		e.traces.Add(tr.Finish(e.ioNow()))
	}
	if e.metrics != nil && err == nil {
		e.metrics.Record(obs.KindStatement, time.Since(start))
	}
	if e.slow != nil {
		e.slowObserve(obs.KindStatement, text, start, slowIO, false, err)
	}
	return res, err
}

func (e *Engine) executeStatement(ctx context.Context, text string, tr *obs.ActiveTrace) (*StatementResult, error) {
	if tr != nil {
		tr.Begin(obs.PhaseParse, e.ioNow())
	}
	stmt, err := Parse(text)
	if err != nil {
		return nil, err
	}
	if stmt.Agg != nil {
		res, err := e.executePathAggQuery(ctx, stmt.Agg, tr) // takes the read lock itself
		if err != nil {
			return nil, err
		}
		return &StatementResult{Agg: res}, nil
	}
	ids, err := func() (*bitmap.Bitmap, error) {
		e.Rel.BeginRead()
		defer e.Rel.EndRead()
		return e.evalExprLocked(ctx, stmt.Expr, tr)
	}()
	if err != nil {
		return nil, err
	}
	return &StatementResult{IDs: ids}, nil
}

// ExplainAnalysis merges a query's predicted plan (Explanation) with the
// lifecycle trace of one real execution: per-phase wall time and the I/O the
// column store actually performed. Executed single-threaded — as
// ExplainAnalyze runs it — the observed I/O deltas are exact, so
// Trace.IO.BitmapColumnsFetched equals Plan.BitmapsFetched on a single
// shard, and on a sharded store the root trace's I/O equals the sum over
// Trace.Children (one child per shard, each fetching the plan's columns
// against its own slice of the records).
type ExplainAnalysis struct {
	Plan    Explanation
	Trace   obs.Trace
	Records int

	// Answer is the analyzed execution's record-id set — what differential
	// tests compare bit-for-bit across shard counts.
	Answer *bitmap.Bitmap
}

// String renders the plan followed by the observed per-phase breakdown, in
// the spirit of SQL EXPLAIN ANALYZE. For a scatter-gathered execution the
// coordinator phases are followed by one summary line per shard child.
func (a *ExplainAnalysis) String() string {
	var b strings.Builder
	b.WriteString(a.Plan.String())
	fmt.Fprintf(&b, "observed: %v total, %d bitmap fetch(es), %d measure column(s), %d value(s) scanned, %d record(s)\n",
		a.Trace.Duration(), a.Trace.IO.BitmapColumnsFetched,
		a.Trace.IO.MeasureColumnsFetched, a.Trace.IO.MeasuresScanned, a.Records)
	for _, s := range a.Trace.PhaseTotals() {
		fmt.Fprintf(&b, "  %-12s %12v  bitmaps=%d measures=%d bytes=%d\n",
			s.Phase, s.Duration(), s.IO.BitmapColumnsFetched,
			s.IO.MeasureColumnsFetched, s.IO.BytesRead)
	}
	for _, c := range a.Trace.Children {
		fmt.Fprintf(&b, "  shard %-6d %12v  bitmaps=%d measures=%d bytes=%d records=%d\n",
			c.Shard, c.Duration(), c.IO.BitmapColumnsFetched,
			c.IO.MeasureColumnsFetched, c.IO.BytesRead, c.IO.RecordsReturned)
	}
	return b.String()
}

// ExplainAnalyze computes a graph query's plan and then executes the query
// once with tracing forced on, returning plan and observation together. The
// run bypasses the result cache (a hit would observe zero fetches and say
// nothing about the plan) and the serving metrics/trace ring, so diagnostics
// don't distort production counters.
func (e *Engine) ExplainAnalyze(q *GraphQuery) (*ExplainAnalysis, error) {
	plan, err := e.Explain(q)
	if err != nil {
		return nil, err
	}
	run := e.Clone()
	run.cache = nil
	run.metrics = nil
	run.slow = nil
	ring := obs.NewTraceRing(1)
	run.traces = ring
	res, err := run.ExecuteGraphQuery(q)
	if err != nil {
		return nil, err
	}
	return &ExplainAnalysis{Plan: plan, Trace: ring.Recent()[0],
		Records: res.NumRecords(), Answer: res.Answer}, nil
}

// ExplainAnalyzeGraph is a convenience wrapper over ExplainAnalyze for a
// bare graph.
func (e *Engine) ExplainAnalyzeGraph(g *graph.Graph) (*ExplainAnalysis, error) {
	return e.ExplainAnalyze(NewGraphQuery(g))
}
