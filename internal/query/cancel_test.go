package query

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"grove/internal/agg"
	"grove/internal/graph"
	"grove/internal/obs"
)

func TestExecuteGraphQueryContextCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := newRandomFixture(t, rng, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.eng.ExecuteGraphQueryContext(ctx, NewGraphQuery(f.randomQueryGraph(rng, 3))); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The read lock must have been released: a writer must not block.
	done := make(chan struct{})
	go func() {
		f.rel.SetEdgeMeasure(0, 1, 1)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("writer blocked after cancelled query: read lock leaked")
	}
}

func TestPathAggContextCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := newRandomFixture(t, rng, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := NewPathAggQuery(f.randomQueryGraph(rng, 3), agg.Sum)
	if _, err := f.eng.ExecutePathAggQueryContext(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCancelledTraceSpan: a cancelled query's lifecycle trace must end in a
// "cancelled" span, so EXPLAIN ANALYZE and the trace ring show why the
// query produced no answer.
func TestCancelledTraceSpan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := newRandomFixture(t, rng, 50)
	ring := obs.NewTraceRing(8)
	f.eng.SetTraces(ring)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.eng.ExecuteGraphQueryContext(ctx, NewGraphQuery(f.randomQueryGraph(rng, 3))); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	traces := ring.Recent()
	if len(traces) == 0 {
		t.Fatal("no trace recorded")
	}
	spans := traces[0].Spans
	if len(spans) == 0 || spans[len(spans)-1].Phase != obs.PhaseCancelled {
		t.Fatalf("trace spans = %+v, want terminal %q span", spans, obs.PhaseCancelled)
	}
}

// TestBatchContextCancelledPromptly: an already-cancelled context fails
// every query of the batch with context.Canceled without executing any.
func TestBatchContextCancelledPromptly(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := newRandomFixture(t, rng, 100)
	queries := batchFixtureQueries(f, rng, 40)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		be := NewBatchExecutor(f.eng, workers)
		start := time.Now()
		results, errs := be.ExecuteGraphQueriesContext(ctx, queries)
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("workers=%d: cancelled batch took %v", workers, elapsed)
		}
		if len(errs) != len(queries) {
			t.Fatalf("workers=%d: %d error slots, want %d", workers, len(errs), len(queries))
		}
		for i, err := range errs {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d: query %d err = %v, want context.Canceled", workers, i, err)
			}
			if results[i] != nil {
				t.Fatalf("workers=%d: query %d has a result despite cancellation", workers, i)
			}
		}
	}
}

// TestBatchPanicIsolatedPerQuery: a panicking query surfaces as its own
// error slot while the rest of the batch completes with real answers, and
// the relation stays writable afterwards (no leaked read lock).
func TestBatchPanicIsolatedPerQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := newRandomFixture(t, rng, 100)
	panicky := AggFunc{
		Name:     "BOOM",
		Identity: 0,
		Lift:     func(v float64) float64 { return v },
		Fold:     func(a, b float64) float64 { panic("kernel exploded") },
	}
	queries := make([]*PathAggQuery, 12)
	for i := range queries {
		fn := agg.Sum
		if i == 5 {
			fn = panicky
		}
		queries[i] = NewPathAggQuery(f.randomQueryGraph(rng, 3), fn)
	}
	for _, workers := range []int{1, 4} {
		be := NewBatchExecutor(f.eng, workers)
		results, errs := be.ExecutePathAggQueriesContext(context.Background(), queries)
		for i := range queries {
			if i == 5 {
				if errs[i] == nil || !strings.Contains(errs[i].Error(), "panicked") {
					t.Fatalf("workers=%d: panicking query err = %v", workers, errs[i])
				}
				continue
			}
			if errs[i] != nil {
				t.Fatalf("workers=%d: query %d err = %v", workers, i, errs[i])
			}
			if results[i] == nil {
				t.Fatalf("workers=%d: query %d missing result", workers, i)
			}
		}
	}
	// The recovered panic must not have leaked the relation read lock.
	done := make(chan struct{})
	go func() {
		f.rel.SetEdgeMeasure(0, 1, 1)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("writer blocked after recovered panic: read lock leaked")
	}
}

// TestBatchContextMatchesPlain: with a background context and no faults the
// context variant returns exactly what the plain batch API returns.
func TestBatchContextMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := newRandomFixture(t, rng, 80)
	queries := batchFixtureQueries(f, rng, 30)
	be := NewBatchExecutor(f.eng, 4)
	want, err := be.ExecuteGraphQueries(queries)
	if err != nil {
		t.Fatal(err)
	}
	got, errs := be.ExecuteGraphQueriesContext(context.Background(), queries)
	for i := range queries {
		if errs[i] != nil {
			t.Fatalf("query %d err = %v", i, errs[i])
		}
		if !got[i].Answer.Equals(want[i].Answer) {
			t.Fatalf("query %d answers differ", i)
		}
	}
}

// TestBatchErrorQueryKeepsBatchAlive: an invalid (empty) query errors alone;
// its neighbours still answer. The legacy wrapper keeps reporting the
// lowest-index error.
func TestBatchErrorQueryKeepsBatchAlive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := newRandomFixture(t, rng, 50)
	queries := batchFixtureQueries(f, rng, 10)
	queries[3] = &GraphQuery{G: graph.NewGraph()} // empty → error
	be := NewBatchExecutor(f.eng, 4)
	results, errs := be.ExecuteGraphQueriesContext(context.Background(), queries)
	for i := range queries {
		if i == 3 {
			if errs[i] == nil {
				t.Fatal("empty query did not error")
			}
			continue
		}
		if errs[i] != nil || results[i] == nil {
			t.Fatalf("query %d err=%v result=%v", i, errs[i], results[i])
		}
	}
	if err := firstError(errs); err == nil || !strings.HasPrefix(err.Error(), "query 3: ") {
		t.Fatalf("firstError = %v", err)
	}
}

// TestPathAggPanicNaNUnaffected guards the panic recovery against false
// positives: NaN measures and empty answers must not be reported as panics.
func TestPathAggPanicNaNUnaffected(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := newRandomFixture(t, rng, 30)
	q := NewPathAggQuery(f.randomQueryGraph(rng, 2), agg.Sum)
	be := NewBatchExecutor(f.eng, 2)
	results, errs := be.ExecutePathAggQueriesContext(context.Background(), []*PathAggQuery{q})
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	for _, vals := range results[0].Values {
		for _, v := range vals {
			_ = math.IsNaN(v) // NaN is a legal NULL marker, not an error
		}
	}
}
