package query

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"grove/internal/graph"
)

// batchFixtureQueries builds a mixed batch over a randomized fixture: mostly
// answerable queries plus a few misses.
func batchFixtureQueries(f *randFixture, rng *rand.Rand, n int) []*GraphQuery {
	queries := make([]*GraphQuery, n)
	for i := range queries {
		queries[i] = NewGraphQuery(f.randomQueryGraph(rng, 4))
	}
	return queries
}

// TestBatchMatchesSequential pins the tentpole correctness contract: the
// parallel batch returns bit-for-bit the answers of a sequential run, in
// query order, across worker counts.
func TestBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	f := newRandomFixture(t, rng, 200)
	queries := batchFixtureQueries(f, rng, 100)

	want := make([]*Result, len(queries))
	for i, q := range queries {
		res, err := f.eng.ExecuteGraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	for _, workers := range []int{1, 2, 4, 8} {
		be := NewBatchExecutor(f.eng, workers)
		got, err := be.ExecuteGraphQueries(queries)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i].Query != queries[i] {
				t.Fatalf("workers=%d: result %d is for the wrong query", workers, i)
			}
			if !got[i].Answer.Equals(want[i].Answer) {
				t.Fatalf("workers=%d: query %d answer card %d, want %d",
					workers, i, got[i].Answer.Cardinality(), want[i].Answer.Cardinality())
			}
		}
	}
}

// TestBatchWithSharedCache runs the same batch twice through a shared cache:
// the second pass must be all hits and still bit-identical.
func TestBatchWithSharedCache(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := newRandomFixture(t, rng, 150)
	queries := batchFixtureQueries(f, rng, 60)
	cache := NewResultCache(0)
	f.eng.EnableCache(cache)

	be := NewBatchExecutor(f.eng, 4)
	first, err := be.ExecuteGraphQueries(queries)
	if err != nil {
		t.Fatal(err)
	}
	second, err := be.ExecuteGraphQueries(queries)
	if err != nil {
		t.Fatal(err)
	}
	hits := cache.Stats().Hits
	if hits == 0 {
		t.Error("shared cache saw no hits on an identical batch rerun")
	}
	for i := range first {
		if !second[i].Answer.Equals(first[i].Answer) {
			t.Fatalf("query %d: cached rerun answer differs", i)
		}
	}
}

// TestBatchAggMatchesSequential checks deterministic ordering and value
// equality for path-aggregation batches.
func TestBatchAggMatchesSequential(t *testing.T) {
	f := newFig2Fixture(t)
	var queries []*PathAggQuery
	for i := 0; i < 30; i++ {
		var q *PathAggQuery
		switch i % 3 {
		case 0:
			q = NewPathAggQuery(pathQuery("A", "C", "E", "F").G, Sum)
		case 1:
			q = NewPathAggQuery(pathQuery("A", "D", "E").G, Sum)
		default:
			q = NewPathAggQuery(pathQuery("E", "F", "G").G, Sum)
		}
		queries = append(queries, q)
	}
	want := make([]*AggResult, len(queries))
	for i, q := range queries {
		res, err := f.eng.ExecutePathAggQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	be := NewBatchExecutor(f.eng, 4)
	got, err := be.ExecutePathAggQueries(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !got[i].Answer.Equals(want[i].Answer) {
			t.Fatalf("query %d: answer differs", i)
		}
		for p := range want[i].Values {
			for j := range want[i].Values[p] {
				wv, gv := want[i].Values[p][j], got[i].Values[p][j]
				if wv != gv && !(wv != wv && gv != gv) { // NaN-tolerant compare
					t.Fatalf("query %d path %d rec %d: %v != %v", i, p, j, gv, wv)
				}
			}
		}
	}
}

// TestBatchErrorLowestIndex pins the error contract: the reported failure is
// the lowest-index failing query, as in a sequential run.
func TestBatchErrorLowestIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	f := newRandomFixture(t, rng, 50)
	queries := batchFixtureQueries(f, rng, 20)
	queries[7] = &GraphQuery{G: graph.NewGraph()} // empty → error
	queries[13] = &GraphQuery{G: graph.NewGraph()}

	be := NewBatchExecutor(f.eng, 4)
	_, err := be.ExecuteGraphQueries(queries)
	if err == nil {
		t.Fatal("batch with invalid queries did not fail")
	}
	var seqErr error
	for i, q := range queries {
		if _, e := f.eng.ExecuteGraphQuery(q); e != nil {
			seqErr = e
			_ = i
			break
		}
	}
	want := "query 7: " + seqErr.Error()
	if err.Error() != want {
		t.Fatalf("batch error %q, want %q", err, want)
	}
}

// TestConcurrentQueriesWithWriter is the query-layer half of the ISSUE's
// concurrency satellite: engine clones query while a writer loads records
// and materializes views. Under -race this exercises the Relation RWMutex
// and the sharded cache; correctness-wise every answer must be a subset of
// plausible records (never partial state) and cached answers must never be
// stale relative to the version they were served at.
func TestConcurrentQueriesWithWriter(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := newRandomFixture(t, rng, 100)
	cache := NewResultCache(0)
	f.eng.EnableCache(cache)

	queries := batchFixtureQueries(f, rng, 40)
	stop := make(chan struct{})
	var readers, writer sync.WaitGroup

	// Writer: keeps appending records copied from existing ones.
	writer.Add(1)
	go func() {
		defer writer.Done()
		wrng := rand.New(rand.NewSource(43))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			src := f.records[wrng.Intn(len(f.records))]
			rec := graph.NewRecord()
			for _, el := range src.Elements() {
				if el.IsNode() {
					continue
				}
				if err := rec.SetEdge(el.From, el.To, 1); err != nil {
					t.Error(err)
					return
				}
			}
			// A brand-new edge per record forces registry id assignment
			// concurrent with reader lookups.
			if err := rec.SetEdge(fmt.Sprintf("W%d", i), "A0", 1); err != nil {
				t.Error(err)
				return
			}
			graph.LoadRecord(f.rel, f.reg, rec)
		}
	}()

	// Readers: each goroutine runs its own engine clone over the batch.
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			eng := f.eng.Clone()
			qrng := rand.New(rand.NewSource(seed))
			for round := 0; round < 50; round++ {
				q := queries[qrng.Intn(len(queries))]
				res, err := eng.ExecuteGraphQuery(q)
				if err != nil {
					t.Error(err)
					return
				}
				// Monotonicity: the writer only appends supersets of existing
				// records, so an answer can never shrink below the records
				// that matched at fixture-build time.
				res.Answer.Each(func(rec uint32) bool { return true })
			}
		}(int64(100 + g))
	}
	readers.Wait()
	close(stop)
	writer.Wait()

	// After the dust settles, every cached answer must reflect the final
	// state: a fresh no-cache engine must agree with a cached rerun.
	fresh := NewEngine(f.rel, f.reg)
	for _, q := range queries[:10] {
		cached, err := f.eng.ExecuteGraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := fresh.ExecuteGraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if !cached.Answer.Equals(plain.Answer) {
			t.Fatalf("stale cache: cached answer card %d, fresh card %d",
				cached.Answer.Cardinality(), plain.Answer.Cardinality())
		}
	}
}
