package query

import (
	"fmt"
	"strings"
	"unicode"

	"grove/internal/gpath"
)

// This file implements grove's small text query language, a convenience
// front-end over the §3.2–§3.4 query model used by grovecli and tests:
//
//	statement   := aggStatement | expr
//	aggStatement:= FUNC measure? path            e.g. SUM [A,D,E,G,I]
//	measure     := '<' name '>'                  e.g. SUM<cost> [C,H]
//	expr        := orExpr
//	orExpr      := andExpr ('OR' andExpr)*
//	andExpr     := unary (('AND' 'NOT'? ) unary)*
//	unary       := path | '(' expr ')'
//	path        := '[' node (',' node)* ']'      closed path (≥2 nodes)
//
// Keywords are case-insensitive; node names are any run of letters, digits,
// '_', '#', '-' or '.'.

// Statement is a parsed query: exactly one of Expr (a boolean graph query)
// or Agg (a path aggregation) is set.
type Statement struct {
	Expr Expr
	Agg  *PathAggQuery
}

// Parse parses one statement of the query language.
func Parse(input string) (Statement, error) {
	p := &parser{toks: lex(input)}
	// Aggregation statement?
	if name, ok := p.peekWord(); ok {
		if fn, isAgg := ByName(strings.ToUpper(name)); isAgg {
			p.next()
			measure := ""
			if p.accept("<") {
				m, ok := p.peekWord()
				if !ok {
					return Statement{}, p.errorf("expected measure name after '<'")
				}
				p.next()
				measure = m
				if !p.accept(">") {
					return Statement{}, p.errorf("expected '>' after measure name")
				}
			}
			path, err := p.parsePath()
			if err != nil {
				return Statement{}, err
			}
			if err := p.expectEOF(); err != nil {
				return Statement{}, err
			}
			return Statement{Agg: NewPathAggQueryOn(path.ToGraph(), fn, measure)}, nil
		}
	}
	expr, err := p.parseOr()
	if err != nil {
		return Statement{}, err
	}
	if err := p.expectEOF(); err != nil {
		return Statement{}, err
	}
	return Statement{Expr: expr}, nil
}

// --- lexer -------------------------------------------------------------------

type token struct {
	kind string // "word", "[", "]", "(", ")", ",", "<", ">"
	text string
	pos  int
}

func lex(input string) []token {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case strings.ContainsRune("[](),<>", c):
			toks = append(toks, token{kind: string(c), pos: i})
			i++
		case isNameRune(c):
			j := i
			for j < len(input) && isNameRune(rune(input[j])) {
				j++
			}
			toks = append(toks, token{kind: "word", text: input[i:j], pos: i})
			i = j
		default:
			toks = append(toks, token{kind: "err", text: string(c), pos: i})
			i++
		}
	}
	return toks
}

func isNameRune(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) ||
		c == '_' || c == '#' || c == '-' || c == '.'
}

// --- parser ------------------------------------------------------------------

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() (token, bool) {
	if p.i >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.i], true
}

func (p *parser) peekWord() (string, bool) {
	t, ok := p.peek()
	if !ok || t.kind != "word" {
		return "", false
	}
	return t.text, true
}

func (p *parser) next() token {
	t := p.toks[p.i]
	p.i++
	return t
}

func (p *parser) accept(kind string) bool {
	if t, ok := p.peek(); ok && t.kind == kind {
		p.i++
		return true
	}
	return false
}

func (p *parser) acceptKeyword(kw string) bool {
	if w, ok := p.peekWord(); ok && strings.EqualFold(w, kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) errorf(format string, args ...any) error {
	pos := -1
	if t, ok := p.peek(); ok {
		pos = t.pos
	}
	return fmt.Errorf("query: parse error at offset %d: %s", pos, fmt.Sprintf(format, args...))
}

func (p *parser) expectEOF() error {
	if t, ok := p.peek(); ok {
		return p.errorf("unexpected %q after end of statement", tokenText(t))
	}
	return nil
}

func tokenText(t token) string {
	if t.kind == "word" || t.kind == "err" {
		return t.text
	}
	return t.kind
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	operands := []Expr{left}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		operands = append(operands, right)
	}
	if len(operands) == 1 {
		return left, nil
	}
	return Or{Operands: operands}, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		if p.acceptKeyword("NOT") {
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = Diff{A: left, B: right}
			continue
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if a, ok := left.(And); ok {
			a.Operands = append(a.Operands, right)
			left = a
		} else {
			left = And{Operands: []Expr{left, right}}
		}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept("(") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.accept(")") {
			return nil, p.errorf("expected ')'")
		}
		return e, nil
	}
	path, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	return Leaf{Q: NewGraphQuery(path.ToGraph())}, nil
}

func (p *parser) parsePath() (gpath.Path, error) {
	if !p.accept("[") {
		return gpath.Path{}, p.errorf("expected '[' starting a path")
	}
	var nodes []string
	for {
		w, ok := p.peekWord()
		if !ok {
			return gpath.Path{}, p.errorf("expected node name in path")
		}
		p.next()
		nodes = append(nodes, w)
		if p.accept(",") {
			continue
		}
		break
	}
	if !p.accept("]") {
		return gpath.Path{}, p.errorf("expected ']' closing the path")
	}
	if len(nodes) < 2 {
		return gpath.Path{}, fmt.Errorf("query: a path needs at least 2 nodes, got %v", nodes)
	}
	path := gpath.Closed(nodes...)
	if !path.Valid() {
		return gpath.Path{}, fmt.Errorf("query: %s repeats a node", path)
	}
	return path, nil
}
