package query

import (
	"math"
	"math/rand"
	"testing"

	"grove/internal/colstore"
	"grove/internal/gpath"
	"grove/internal/graph"
)

// TestPathAggUnknownEdgeSentinelsDistinct is the regression test for the
// sentinel-EdgeID collision: every unknown edge of a query path used to
// resolve to the same sentinel id, aliasing distinct unknown edges to one
// column slot. Distinct unknown edges must fetch distinct (empty) columns.
func TestPathAggUnknownEdgeSentinelsDistinct(t *testing.T) {
	f := newFig2Fixture(t)
	q := NewPathAggQueryAlong(gpath.Closed("A", "X", "Y"), Sum, "")
	f.rel.Tracker().Reset()
	res, err := f.eng.ExecutePathAggQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Answer.Cardinality(); n != 0 {
		t.Fatalf("unknown-edge path matched %d records", n)
	}
	// (A,X) and (X,Y) are both unknown: two distinct sentinel ids, so two
	// measure-column fetches. The collision collapsed them into one.
	if got := f.rel.Tracker().Snapshot().MeasureColumnsFetched; got != 2 {
		t.Fatalf("unknown path edges fetched %d measure columns, want 2", got)
	}
	// The same unknown edge twice must still resolve to one id.
	q2 := &PathAggQuery{G: gpath.Closed("A", "X", "Y").ToGraph(), Agg: Sum,
		Paths: []gpath.Path{gpath.Closed("A", "X", "Y"), gpath.Closed("A", "X", "Y")}}
	f.rel.Tracker().Reset()
	if _, err := f.eng.ExecutePathAggQuery(q2); err != nil {
		t.Fatal(err)
	}
	if got := f.rel.Tracker().Snapshot().MeasureColumnsFetched; got != 2 {
		t.Fatalf("repeated unknown path refetched: %d measure columns, want 2", got)
	}
}

// genericTwin returns f stripped of its builtin name, so KernelFor falls
// back to the generic Fold/Lift kernel while the semantics stay identical.
func genericTwin(f AggFunc) AggFunc {
	return AggFunc{Name: f.Name + "_GEN", Identity: f.Identity, Lift: f.Lift, Fold: f.Fold}
}

// TestPathAggSpecializedMatchesGenericKernel runs the same queries through
// the specialized block kernels (builtin names) and the generic fallback
// (same Fold/Lift, unknown name) and requires bit-for-bit identical values
// and identical MeasuresScanned accounting.
func TestPathAggSpecializedMatchesGenericKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	f := newRandomFixture(t, rng, 200)
	f.eng.UseViews = false // the twin's name can never match a view's function
	for trial := 0; trial < 60; trial++ {
		rec := f.records[rng.Intn(len(f.records))]
		paths, err := gpath.MaximalPaths(rec.Graph)
		if err != nil || len(paths) == 0 {
			continue
		}
		p := paths[rng.Intn(len(paths))]
		for _, fn := range []AggFunc{Sum, Min, Max, Count} {
			run := func(a AggFunc) (*AggResult, int64) {
				f.rel.Tracker().Reset()
				res, err := f.eng.ExecutePathAggQuery(NewPathAggQueryAlong(p, a, ""))
				if err != nil {
					t.Fatal(err)
				}
				return res, f.rel.Tracker().Snapshot().MeasuresScanned
			}
			spec, specScanned := run(fn)
			gen, genScanned := run(genericTwin(fn))
			if specScanned != genScanned {
				t.Fatalf("trial %d %s: scanned %d, generic %d", trial, fn.Name, specScanned, genScanned)
			}
			for pi := range spec.Values {
				for i := range spec.Values[pi] {
					a, b := spec.Values[pi][i], gen.Values[pi][i]
					if math.Float64bits(a) != math.Float64bits(b) {
						t.Fatalf("trial %d %s: value[%d][%d] = %v (bits %x), generic %v (bits %x)",
							trial, fn.Name, pi, i, a, math.Float64bits(a), b, math.Float64bits(b))
					}
				}
			}
		}
	}
}

// TestParallelPathsMatchesSequential: ParallelPaths must be answer- and
// accounting-invariant.
func TestParallelPathsMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	f := newRandomFixture(t, rng, 200)
	par := f.eng.Clone()
	par.ParallelPaths = true
	ran := 0
	for trial := 0; trial < 60 || ran == 0; trial++ {
		if trial > 500 {
			t.Fatal("no multi-path query graphs found")
		}
		rec := f.records[rng.Intn(len(f.records))]
		if paths, err := gpath.MaximalPaths(rec.Graph); err != nil || len(paths) < 2 {
			continue
		}
		ran++
		q := rec.Graph
		f.rel.Tracker().Reset()
		seq, err := f.eng.ExecutePathAggQuery(NewPathAggQuery(q, Sum))
		if err != nil {
			t.Fatal(err)
		}
		seqScanned := f.rel.Tracker().Snapshot().MeasuresScanned
		f.rel.Tracker().Reset()
		got, err := par.ExecutePathAggQuery(NewPathAggQuery(q, Sum))
		if err != nil {
			t.Fatal(err)
		}
		if parScanned := f.rel.Tracker().Snapshot().MeasuresScanned; parScanned != seqScanned {
			t.Fatalf("trial %d: parallel scanned %d, sequential %d", trial, parScanned, seqScanned)
		}
		if len(got.Values) != len(seq.Values) {
			t.Fatalf("trial %d: %d paths vs %d", trial, len(got.Values), len(seq.Values))
		}
		for pi := range seq.Values {
			if got.SegmentsPerPath[pi] != seq.SegmentsPerPath[pi] {
				t.Fatalf("trial %d: segment counts diverge on path %d", trial, pi)
			}
			for i := range seq.Values[pi] {
				if math.Float64bits(got.Values[pi][i]) != math.Float64bits(seq.Values[pi][i]) {
					t.Fatalf("trial %d: value[%d][%d] = %v, sequential %v",
						trial, pi, i, got.Values[pi][i], seq.Values[pi][i])
				}
			}
		}
	}
}

// pathChainFixture loads numRecords records over the edge chain A→B→…,
// each edge present with the given density — the workload the vectorized
// measure path is sized for.
func pathChainFixture(tb testing.TB, numRecords int, density float64) (*fixture, []string) {
	tb.Helper()
	nodes := []string{"A", "B", "C", "D", "E", "F"}
	rng := rand.New(rand.NewSource(3))
	rel := colstore.NewRelation(0)
	reg := graph.NewRegistry()
	for r := 0; r < numRecords; r++ {
		rec := graph.NewRecord()
		for i := 0; i+1 < len(nodes); i++ {
			if rng.Float64() < density {
				if err := rec.SetEdge(nodes[i], nodes[i+1], 1+rng.Float64()*9); err != nil {
					tb.Fatal(err)
				}
			}
		}
		if rec.Graph.NumElements() == 0 {
			if err := rec.SetEdge(nodes[0], nodes[1], 1); err != nil {
				tb.Fatal(err)
			}
		}
		graph.LoadRecord(rel, reg, rec)
	}
	rel.RunOptimize()
	return &fixture{rel: rel, reg: reg, eng: NewEngine(rel, reg)}, nodes
}

// TestPathAggSteadyStateAllocs proves the measure-scan/aggregate phases
// allocate O(1): the per-query allocation count must not grow with the
// answer set (scratch comes from pools, not per-segment makes).
func TestPathAggSteadyStateAllocs(t *testing.T) {
	counts := make([]float64, 0, 2)
	for _, n := range []int{1000, 8000} {
		f, nodes := pathChainFixture(t, n, 1.0)
		q := NewPathAggQueryAlong(gpath.Closed(nodes...), Sum, "")
		if _, err := f.eng.ExecutePathAggQuery(q); err != nil {
			t.Fatal(err) // and warm the scratch pools
		}
		counts = append(counts, testing.AllocsPerRun(20, func() {
			if _, err := f.eng.ExecutePathAggQuery(q); err != nil {
				t.Fatal(err)
			}
		}))
	}
	// Identical query shape over 8× the records must not allocate more
	// (+2 slack for pool refills under GC).
	if counts[1] > counts[0]+2 {
		t.Fatalf("path agg allocations grow with answer size: %v at 1k records, %v at 8k",
			counts[0], counts[1])
	}
}

// TestFetchMeasuresSteadyStateAllocs: same guard for the graph-query measure
// phase, which now folds through pooled buffers with no values/present
// materialization.
func TestFetchMeasuresSteadyStateAllocs(t *testing.T) {
	counts := make([]float64, 0, 2)
	for _, n := range []int{1000, 8000} {
		f, nodes := pathChainFixture(t, n, 1.0)
		res, err := f.eng.ExecuteGraphQuery(pathQuery(nodes...))
		if err != nil {
			t.Fatal(err)
		}
		res.FetchMeasures() // warm the pools
		counts = append(counts, testing.AllocsPerRun(20, func() {
			res.FetchMeasures()
		}))
	}
	if counts[1] > counts[0]+2 {
		t.Fatalf("FetchMeasures allocations grow with answer size: %v at 1k records, %v at 8k",
			counts[0], counts[1])
	}
}
