package query

import (
	"fmt"
	"strings"
	"sync/atomic"

	"grove/internal/gpath"
	"grove/internal/graph"
)

// NewPathAggQueryAlong builds a path aggregation over one explicit path,
// honouring its open endpoints. The structural filter is the path's edges.
func NewPathAggQueryAlong(p gpath.Path, agg AggFunc, measure string) *PathAggQuery {
	return &PathAggQuery{G: p.ToGraph(), Agg: agg, Measure: measure, Paths: []gpath.Path{p}}
}

// GraphQuery is a graph query Gq (§3.2): a directed graph over the universal
// node schema. A record Gr is in the answer iff Gq ⊆ Gr, which — because
// nodes are named entities — reduces to containment of Gq's structural
// elements.
type GraphQuery struct {
	G *graph.Graph

	// str caches the rendered query text. The query graph is immutable after
	// construction, so the first render wins; tracing reads it per execution
	// and must not re-render a 16-edge query every time.
	str atomic.Pointer[string]
}

// NewGraphQuery wraps a query graph.
func NewGraphQuery(g *graph.Graph) *GraphQuery {
	return &GraphQuery{G: g}
}

// FromPath builds the graph query for a single path, e.g. Q1's
// [A,D,E,G,I] (§2).
func FromPath(p gpath.Path) *GraphQuery {
	return &GraphQuery{G: p.ToGraph()}
}

// MaximalPaths returns the maximal source→terminal paths of the query graph.
func (q *GraphQuery) MaximalPaths() ([]gpath.Path, error) {
	return gpath.MaximalPaths(q.G)
}

func (q *GraphQuery) String() string {
	if s := q.str.Load(); s != nil {
		return *s
	}
	elems := q.G.Elements()
	parts := make([]string, len(elems))
	for i, e := range elems {
		parts[i] = e.String()
	}
	s := "Gq{" + strings.Join(parts, " ") + "}"
	q.str.Store(&s)
	return s
}

// PathAggQuery is a path aggregation query F_Gq (§3.4): it retrieves the
// records matching Gq and applies Agg along every maximal path of Gq.
// Measure selects which measure to aggregate ("" = the default measure;
// multi-measure records also expose named measures such as "time" or
// "cost", §3.1).
type PathAggQuery struct {
	G       *graph.Graph
	Agg     AggFunc
	Measure string
	// Paths, when non-empty, overrides the default aggregation targets (the
	// maximal paths of G) with explicit — possibly open-ended — paths, e.g.
	// (D,E,G) to exclude endpoint node measures (§3.3).
	Paths []gpath.Path

	// str caches the rendered query text (see GraphQuery.str).
	str atomic.Pointer[string]
}

// NewPathAggQuery builds a path aggregation query over the default measure.
func NewPathAggQuery(g *graph.Graph, agg AggFunc) *PathAggQuery {
	return &PathAggQuery{G: g, Agg: agg}
}

// NewPathAggQueryOn builds a path aggregation query over a named measure.
func NewPathAggQueryOn(g *graph.Graph, agg AggFunc, measure string) *PathAggQuery {
	return &PathAggQuery{G: g, Agg: agg, Measure: measure}
}

func (q *PathAggQuery) String() string {
	if s := q.str.Load(); s != nil {
		return *s
	}
	var s string
	if q.Measure != "" {
		s = fmt.Sprintf("%s[%s]_%s", q.Agg.Name, q.Measure, (&GraphQuery{G: q.G}).String())
	} else {
		s = fmt.Sprintf("%s_%s", q.Agg.Name, (&GraphQuery{G: q.G}).String())
	}
	q.str.Store(&s)
	return s
}

// Expr is a boolean combination of graph queries (§3.2):
// [Gq1 AND Gq2] = [Gq1] ∩ [Gq2], [Gq1 OR Gq2] = [Gq1] ∪ [Gq2],
// [Gq1 AND NOT Gq2] = [Gq1] − [Gq2].
type Expr interface {
	exprNode()
	String() string
}

// Leaf is a single graph query in an expression.
type Leaf struct {
	Q *GraphQuery
}

// And intersects the answer sets of its operands.
type And struct {
	Operands []Expr
}

// Or unions the answer sets of its operands.
type Or struct {
	Operands []Expr
}

// Diff is A AND NOT B.
type Diff struct {
	A Expr
	B Expr
}

func (Leaf) exprNode() {}
func (And) exprNode()  {}
func (Or) exprNode()   {}
func (Diff) exprNode() {}

func (l Leaf) String() string { return l.Q.String() }

func (a And) String() string { return exprList("AND", a.Operands) }

func (o Or) String() string { return exprList("OR", o.Operands) }

func (d Diff) String() string {
	return "(" + d.A.String() + " AND NOT " + d.B.String() + ")"
}

func exprList(op string, operands []Expr) string {
	parts := make([]string, len(operands))
	for i, o := range operands {
		parts[i] = o.String()
	}
	return "(" + strings.Join(parts, " "+op+" ") + ")"
}
