// Package query implements grove's graph-query model and executor (paper
// §3.2–§3.4, §4.2, §5.3): graph queries as subgraph-containment predicates
// evaluated by ANDing bitmap columns, boolean combinations of graph queries,
// path-aggregation queries, and the query-time greedy set-cover rewriting
// that exploits materialized graph views.
package query

import "grove/internal/agg"

// AggFunc is a distributive aggregate function usable for path aggregation
// (§3.4). See the agg package for the distributivity contract that makes
// materialized aggregate views reusable.
type AggFunc = agg.Func

// The built-in aggregate functions.
var (
	Sum   = agg.Sum
	Min   = agg.Min
	Max   = agg.Max
	Count = agg.Count
)

// ByName resolves an aggregate function from its stored name (aggregate
// views persist only the name).
func ByName(name string) (AggFunc, bool) { return agg.ByName(name) }
