package query

import (
	"testing"

	"grove/internal/graph"
)

func TestResultCacheHitsAndInvalidation(t *testing.T) {
	f := newFig2Fixture(t)
	cache := NewResultCache(16)
	f.eng.EnableCache(cache)

	q := pathQuery("A", "D", "E")
	first, err := f.eng.ExecuteGraphQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.FromCache() {
		t.Error("first execution served from cache")
	}
	second, err := f.eng.ExecuteGraphQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if !second.FromCache() {
		t.Error("second execution missed the cache")
	}
	if !second.Answer.Equals(first.Answer) {
		t.Fatal("cached answer differs")
	}
	hits, misses := cache.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses", hits, misses)
	}

	// A mutation invalidates: the next execution recomputes and must see
	// the new record.
	rec := graph.NewRecord()
	for _, e := range [][2]string{{"A", "D"}, {"D", "E"}} {
		if err := rec.SetEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	graph.LoadRecord(f.rel, f.reg, rec)
	third, err := f.eng.ExecuteGraphQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if third.FromCache() {
		t.Error("stale cache served after mutation")
	}
	if third.NumRecords() != first.NumRecords()+1 {
		t.Errorf("answer after insert = %d, want %d",
			third.NumRecords(), first.NumRecords()+1)
	}
}

func TestResultCacheDeleteInvalidates(t *testing.T) {
	f := newFig2Fixture(t)
	f.eng.EnableCache(NewResultCache(16))
	q := pathQuery("A", "D", "E")
	if _, err := f.eng.ExecuteGraphQuery(q); err != nil {
		t.Fatal(err)
	}
	if _, err := f.rel.Delete(0); err != nil {
		t.Fatal(err)
	}
	res, err := f.eng.ExecuteGraphQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.FromCache() {
		t.Error("cache survived a delete")
	}
	if res.Answer.Contains(0) {
		t.Error("deleted record in recomputed answer")
	}
}

func TestResultCacheCapacity(t *testing.T) {
	f := newFig2Fixture(t)
	cache := NewResultCache(2)
	f.eng.EnableCache(cache)
	queries := []*GraphQuery{
		pathQuery("A", "D"), pathQuery("D", "E"), pathQuery("E", "F"),
	}
	for _, q := range queries {
		if _, err := f.eng.ExecuteGraphQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity 2 with 3 distinct queries: at most 2 live entries; re-running
	// all three yields at least one hit and no wrong answers.
	hitsBefore, _ := cache.Stats()
	for _, q := range queries {
		res, err := f.eng.ExecuteGraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		f.eng.EnableCache(nil)
		fresh, err := f.eng.ExecuteGraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		f.eng.EnableCache(cache)
		if !res.Answer.Equals(fresh.Answer) {
			t.Fatalf("cached answer wrong for %s", q)
		}
	}
	hitsAfter, _ := cache.Stats()
	if hitsAfter <= hitsBefore {
		t.Error("no cache hits on re-run")
	}
}

func TestResultCacheDefaultCapacity(t *testing.T) {
	c := NewResultCache(0)
	if c.capacity != 256 {
		t.Errorf("default capacity = %d", c.capacity)
	}
}
