package query

import (
	"fmt"
	"strings"
	"testing"

	"grove/internal/bitmap"
	"grove/internal/colstore"
	"grove/internal/graph"
)

func TestResultCacheHitsAndInvalidation(t *testing.T) {
	f := newFig2Fixture(t)
	cache := NewResultCache(16)
	f.eng.EnableCache(cache)

	q := pathQuery("A", "D", "E")
	first, err := f.eng.ExecuteGraphQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.FromCache() {
		t.Error("first execution served from cache")
	}
	second, err := f.eng.ExecuteGraphQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if !second.FromCache() {
		t.Error("second execution missed the cache")
	}
	if !second.Answer.Equals(first.Answer) {
		t.Fatal("cached answer differs")
	}
	cs := cache.Stats()
	if cs.Hits != 1 || cs.Misses != 1 {
		t.Errorf("stats = %d hits / %d misses", cs.Hits, cs.Misses)
	}

	// A mutation invalidates: the next execution recomputes and must see
	// the new record.
	rec := graph.NewRecord()
	for _, e := range [][2]string{{"A", "D"}, {"D", "E"}} {
		if err := rec.SetEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	graph.LoadRecord(f.rel, f.reg, rec)
	third, err := f.eng.ExecuteGraphQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if third.FromCache() {
		t.Error("stale cache served after mutation")
	}
	if third.NumRecords() != first.NumRecords()+1 {
		t.Errorf("answer after insert = %d, want %d",
			third.NumRecords(), first.NumRecords()+1)
	}
}

func TestResultCacheDeleteInvalidates(t *testing.T) {
	f := newFig2Fixture(t)
	f.eng.EnableCache(NewResultCache(16))
	q := pathQuery("A", "D", "E")
	if _, err := f.eng.ExecuteGraphQuery(q); err != nil {
		t.Fatal(err)
	}
	if _, err := f.rel.Delete(0); err != nil {
		t.Fatal(err)
	}
	res, err := f.eng.ExecuteGraphQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.FromCache() {
		t.Error("cache survived a delete")
	}
	if res.Answer.Contains(0) {
		t.Error("deleted record in recomputed answer")
	}
}

func TestResultCacheCapacity(t *testing.T) {
	f := newFig2Fixture(t)
	cache := NewResultCache(2)
	f.eng.EnableCache(cache)
	queries := []*GraphQuery{
		pathQuery("A", "D"), pathQuery("D", "E"), pathQuery("E", "F"),
	}
	for _, q := range queries {
		if _, err := f.eng.ExecuteGraphQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity 2 with 3 distinct queries: at most 2 live entries; re-running
	// all three yields at least one hit and no wrong answers.
	hitsBefore := cache.Stats().Hits
	for _, q := range queries {
		res, err := f.eng.ExecuteGraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		f.eng.EnableCache(nil)
		fresh, err := f.eng.ExecuteGraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		f.eng.EnableCache(cache)
		if !res.Answer.Equals(fresh.Answer) {
			t.Fatalf("cached answer wrong for %s", q)
		}
	}
	hitsAfter := cache.Stats().Hits
	if hitsAfter <= hitsBefore {
		t.Error("no cache hits on re-run")
	}
}

func TestResultCacheDefaultCapacity(t *testing.T) {
	c := NewResultCache(0)
	if c.capacity != 256 {
		t.Errorf("default capacity = %d", c.capacity)
	}
}

// TestResultCacheLRUEviction drives three same-shard keys through the real
// put/get path: the entry refreshed by a get must survive eviction, the
// least recently used one must go.
func TestResultCacheLRUEviction(t *testing.T) {
	c := NewResultCache(2 * defaultCacheShards) // per-shard capacity 2
	target := c.shard(cacheKey([]colstore.EdgeID{0}))
	keys := make([]string, 0, 3)
	for i := 0; len(keys) < 3 && i < 1<<16; i++ {
		k := cacheKey([]colstore.EdgeID{colstore.EdgeID(i)})
		if c.shard(k) == target {
			keys = append(keys, k)
		}
	}
	if len(keys) < 3 {
		t.Fatal("could not find three keys in one shard")
	}
	ans := bitmap.FromSlice([]uint32{1})
	c.put(1, keys[0], ans)
	c.put(1, keys[1], ans)
	c.get(1, keys[0]) // refresh keys[0]: the LRU victim is now keys[1]
	c.put(1, keys[2], ans)
	if c.get(1, keys[0]) == nil {
		t.Error("recently used entry evicted")
	}
	if c.get(1, keys[1]) != nil {
		t.Error("least recently used entry survived")
	}
	if c.get(1, keys[2]) == nil {
		t.Error("new entry missing")
	}
}

// --- benchmarks -------------------------------------------------------------

// fprintfCacheKey is the pre-optimization implementation, kept so the
// benchmark pair documents what the strconv rewrite buys on the cached-query
// hot path.
func fprintfCacheKey(universe []colstore.EdgeID) string {
	var sb strings.Builder
	for i, e := range universe {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%x", uint32(e))
	}
	return sb.String()
}

func benchUniverse() []colstore.EdgeID {
	u := make([]colstore.EdgeID, 12)
	for i := range u {
		u[i] = colstore.EdgeID(i*7919 + 13)
	}
	return u
}

func BenchmarkCacheKey(b *testing.B) {
	u := benchUniverse()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if cacheKey(u) == "" {
			b.Fatal("empty key")
		}
	}
}

func BenchmarkCacheKeyFprintf(b *testing.B) {
	u := benchUniverse()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if fprintfCacheKey(u) == "" {
			b.Fatal("empty key")
		}
	}
}
