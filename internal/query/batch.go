package query

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// BatchExecutor fans a slice of queries across a bounded worker pool. The
// paper's experiments (Figs. 3, 6–8) all evaluate batches of 100 queries;
// a batch is embarrassingly parallel once the relation read path is
// concurrent-safe, so the executor simply hands out query indexes to
// workers, each running its own Engine clone (shared relation, registry and
// result cache; private scratch).
//
// Results are deterministic: result slot i always holds the answer of query
// i, whichever worker computed it. The Context variants return one error
// slot per query; the non-Context wrappers collapse that to the error of
// the lowest-index failing query — identical to what a sequential run would
// report. A query that panics (a malformed plan, a kernel bug) surfaces as
// that query's error, not as a crashed batch, and a cancelled context fails
// the not-yet-started queries promptly with the context's error while
// queries already running finish their current cancellation check.
type BatchExecutor struct {
	eng     *Engine
	workers int
}

// NewBatchExecutor wraps an engine for batch execution with the given
// worker count (≤ 0 selects runtime.NumCPU()).
func NewBatchExecutor(eng *Engine, workers int) *BatchExecutor {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &BatchExecutor{eng: eng, workers: workers}
}

// Workers returns the configured worker-pool size.
func (b *BatchExecutor) Workers() int { return b.workers }

// ExecuteGraphQueries runs every query and returns the results in query
// order. A single worker (or a single query) degrades to a plain sequential
// loop with no goroutine or synchronization overhead.
func (b *BatchExecutor) ExecuteGraphQueries(queries []*GraphQuery) ([]*Result, error) {
	results, errs := b.ExecuteGraphQueriesContext(context.Background(), queries)
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return results, nil
}

// ExecuteGraphQueriesContext runs every query under ctx and returns the
// results and one error slot per query (nil on success). Queries not yet
// started when ctx is cancelled fail with ctx's error; a panicking query
// fails alone while the rest of the batch completes.
func (b *BatchExecutor) ExecuteGraphQueriesContext(ctx context.Context, queries []*GraphQuery) ([]*Result, []error) {
	results := make([]*Result, len(queries))
	errs := b.run(ctx, len(queries), func(eng *Engine, i int) error {
		res, err := eng.ExecuteGraphQueryContext(ctx, queries[i])
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	return results, errs
}

// ExecutePathAggQueries runs every path-aggregation query and returns the
// results in query order.
func (b *BatchExecutor) ExecutePathAggQueries(queries []*PathAggQuery) ([]*AggResult, error) {
	results, errs := b.ExecutePathAggQueriesContext(context.Background(), queries)
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return results, nil
}

// ExecutePathAggQueriesContext is ExecuteGraphQueriesContext for
// path-aggregation queries.
func (b *BatchExecutor) ExecutePathAggQueriesContext(ctx context.Context, queries []*PathAggQuery) ([]*AggResult, []error) {
	results := make([]*AggResult, len(queries))
	errs := b.run(ctx, len(queries), func(eng *Engine, i int) error {
		res, err := eng.ExecutePathAggQueryContext(ctx, queries[i])
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	return results, errs
}

// firstError collapses per-query errors to the lowest-index failure,
// wrapped with its query index — what a sequential run would report first.
func firstError(errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
	}
	return nil
}

// run executes fn(engine, i) for i in [0, n) across the worker pool and
// returns one error slot per query. Work is distributed by an atomic
// cursor, so fast workers take more queries and stragglers never gate the
// batch; each worker keeps one engine clone (and thereby one scratch) for
// its whole share. Once ctx is cancelled, remaining indexes drain
// immediately with ctx's error.
func (b *BatchExecutor) run(ctx context.Context, n int, fn func(eng *Engine, i int) error) []error {
	if n == 0 {
		return nil
	}
	if m := b.eng.metrics; m != nil {
		m.BatchBatches.Inc()
		m.BatchQueries.Add(int64(n))
	}
	errs := make([]error, n)
	workers := b.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if m := b.eng.metrics; m != nil {
			m.BatchWorkersBusy.Add(1)
			defer m.BatchWorkersBusy.Add(-1)
		}
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			errs[i] = safeCall(b.eng, i, fn)
		}
		return errs
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := b.eng.Clone()
			if eng.metrics != nil {
				eng.metrics.BatchWorkersBusy.Add(1)
				defer eng.metrics.BatchWorkersBusy.Add(-1)
			}
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = safeCall(eng, i, fn)
			}
		}()
	}
	wg.Wait()
	return errs
}

// safeCall runs one query, converting a panic into that query's error so a
// single bad query cannot take down the whole batch (or leak a worker's
// goroutine). The engine's locked sections release their read locks via
// defer, so the relation stays usable after a recovered panic.
func safeCall(eng *Engine, i int, fn func(eng *Engine, i int) error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("query panicked: %v", p)
		}
	}()
	return fn(eng, i)
}
