package query

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// BatchExecutor fans a slice of queries across a bounded worker pool. The
// paper's experiments (Figs. 3, 6–8) all evaluate batches of 100 queries;
// a batch is embarrassingly parallel once the relation read path is
// concurrent-safe, so the executor simply hands out query indexes to
// workers, each running its own Engine clone (shared relation, registry and
// result cache; private scratch).
//
// Results are deterministic: result slot i always holds the answer of query
// i, whichever worker computed it, and on failure the error of the
// lowest-index failing query is returned — identical to what a sequential
// run would report.
type BatchExecutor struct {
	eng     *Engine
	workers int
}

// NewBatchExecutor wraps an engine for batch execution with the given
// worker count (≤ 0 selects runtime.NumCPU()).
func NewBatchExecutor(eng *Engine, workers int) *BatchExecutor {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &BatchExecutor{eng: eng, workers: workers}
}

// Workers returns the configured worker-pool size.
func (b *BatchExecutor) Workers() int { return b.workers }

// ExecuteGraphQueries runs every query and returns the results in query
// order. A single worker (or a single query) degrades to a plain sequential
// loop with no goroutine or synchronization overhead.
func (b *BatchExecutor) ExecuteGraphQueries(queries []*GraphQuery) ([]*Result, error) {
	results := make([]*Result, len(queries))
	err := b.run(len(queries), func(eng *Engine, i int) error {
		res, err := eng.ExecuteGraphQuery(queries[i])
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// ExecutePathAggQueries runs every path-aggregation query and returns the
// results in query order.
func (b *BatchExecutor) ExecutePathAggQueries(queries []*PathAggQuery) ([]*AggResult, error) {
	results := make([]*AggResult, len(queries))
	err := b.run(len(queries), func(eng *Engine, i int) error {
		res, err := eng.ExecutePathAggQuery(queries[i])
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// run executes fn(engine, i) for i in [0, n) across the worker pool. Work
// is distributed by an atomic cursor, so fast workers take more queries and
// stragglers never gate the batch; each worker keeps one engine clone (and
// thereby one scratch) for its whole share of the batch.
func (b *BatchExecutor) run(n int, fn func(eng *Engine, i int) error) error {
	if n == 0 {
		return nil
	}
	if m := b.eng.metrics; m != nil {
		m.BatchBatches.Inc()
		m.BatchQueries.Add(int64(n))
	}
	workers := b.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if m := b.eng.metrics; m != nil {
			m.BatchWorkersBusy.Add(1)
			defer m.BatchWorkersBusy.Add(-1)
		}
		for i := 0; i < n; i++ {
			if err := fn(b.eng, i); err != nil {
				return fmt.Errorf("query %d: %w", i, err)
			}
		}
		return nil
	}
	errs := make([]error, n)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := b.eng.Clone()
			if eng.metrics != nil {
				eng.metrics.BatchWorkersBusy.Add(1)
				defer eng.metrics.BatchWorkersBusy.Add(-1)
			}
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(eng, i)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
	}
	return nil
}
