package query

import (
	"math/rand"
	"testing"

	"grove/internal/colstore"
	"grove/internal/gpath"
	"grove/internal/graph"
)

// The paper's running example (Fig. 2 / Table 1): three graph records over
// seven edges, with the endpoints the figure depicts:
//
//	e1=(A,B) e2=(A,C) e3=(C,E) e4=(A,D) e5=(D,E) e6=(E,F) e7=(F,G)
//
// Record 2 is then the only record containing path (A,C,E,F), whose SUM is
// 1+2+4 = 7 — exactly the §3.4 example — and treating the three records as
// queries yields interesting nodes {A,B,E,G} with the five candidate
// aggregate views listed in §5.4.
var fig2Edges = []graph.EdgeKey{
	graph.E("A", "B"), // e1
	graph.E("A", "C"), // e2
	graph.E("C", "E"), // e3
	graph.E("A", "D"), // e4
	graph.E("D", "E"), // e5
	graph.E("E", "F"), // e6
	graph.E("F", "G"), // e7
}

// fig2Measures[r][i] is the measure of edge e(i+1) in record r (NaN = absent),
// transcribed from Table 1.
var fig2Measures = [3][7]float64{
	{3, 4, 2, 1, 2, absent, absent},
	{absent, 1, 2, 2, 1, 4, 1},
	{absent, absent, absent, 5, 4, 3, 1},
}

const absent = -1e300 // sentinel for "edge not in record"

type fixture struct {
	rel *colstore.Relation
	reg *graph.Registry
	eng *Engine
}

func newFig2Fixture(t testing.TB) *fixture {
	t.Helper()
	rel := colstore.NewRelation(0)
	reg := graph.NewRegistry()
	for _, m := range fig2Measures {
		rec := graph.NewRecord()
		for i, k := range fig2Edges {
			if m[i] != absent {
				if err := rec.SetEdge(k.From, k.To, m[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		graph.LoadRecord(rel, reg, rec)
	}
	return &fixture{rel: rel, reg: reg, eng: NewEngine(rel, reg)}
}

func pathQuery(nodes ...string) *GraphQuery {
	return FromPath(gpath.Closed(nodes...))
}

// --- randomized fixture for property-style tests ----------------------------

type randFixture struct {
	*fixture
	records []*graph.Record
}

// newRandomFixture synthesizes records over a small universe so brute-force
// verification stays cheap. The universe is a layered DAG A0..A3 × 4 nodes,
// guaranteeing multi-edge paths exist.
func newRandomFixture(t testing.TB, rng *rand.Rand, numRecords int) *randFixture {
	t.Helper()
	var universe []graph.EdgeKey
	name := func(layer, i int) string {
		return string(rune('A'+layer)) + string(rune('0'+i))
	}
	for layer := 0; layer < 3; layer++ {
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				universe = append(universe, graph.E(name(layer, i), name(layer+1, j)))
			}
		}
	}
	rel := colstore.NewRelation(0)
	reg := graph.NewRegistry()
	var records []*graph.Record
	for r := 0; r < numRecords; r++ {
		rec := graph.NewRecord()
		n := 3 + rng.Intn(len(universe)/2)
		for k := 0; k < n; k++ {
			e := universe[rng.Intn(len(universe))]
			if err := rec.SetEdge(e.From, e.To, float64(1+rng.Intn(9))); err != nil {
				t.Fatal(err)
			}
		}
		graph.LoadRecord(rel, reg, rec)
		records = append(records, rec)
	}
	return &randFixture{
		fixture: &fixture{rel: rel, reg: reg, eng: NewEngine(rel, reg)},
		records: records,
	}
}

// randomQueryGraph draws a connected query subgraph from a random record so
// queries usually have non-empty answers.
func (f *randFixture) randomQueryGraph(rng *rand.Rand, maxEdges int) *graph.Graph {
	rec := f.records[rng.Intn(len(f.records))]
	elems := rec.Elements()
	g := graph.NewGraph()
	n := 1 + rng.Intn(maxEdges)
	for i := 0; i < n && i < len(elems); i++ {
		g.AddElement(elems[rng.Intn(len(elems))])
	}
	return g
}

// bruteForceAnswer computes the answer set by direct containment testing.
func (f *randFixture) bruteForceAnswer(q *graph.Graph) []uint32 {
	var out []uint32
	for i, rec := range f.records {
		if q.IsSubgraphOf(rec.Graph) {
			out = append(out, uint32(i))
		}
	}
	return out
}
