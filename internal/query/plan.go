package query

import (
	"sort"

	"grove/internal/colstore"
)

// CoverPlan is the outcome of rewriting a graph query against the
// materialized views (§5.3): which graph-view bitmaps, aggregate-view
// bitmaps and residual single-edge bitmaps to AND together. The number of
// bitmaps in the plan is exactly the query's structural I/O cost under the
// paper's cost model.
type CoverPlan struct {
	Views    []string          // graph views b_v used
	AggViews []string          // aggregate-view bitmaps b_p used as filters
	Edges    []colstore.EdgeID // residual single-edge bitmaps b_i
}

// NumBitmaps returns the number of bitmap columns the plan fetches.
func (p CoverPlan) NumBitmaps() int {
	return len(p.Views) + len(p.AggViews) + len(p.Edges)
}

// candidate is one coverable set during greedy selection.
type candidate struct {
	name  string
	isAgg bool
	edges []colstore.EdgeID
}

// PlanCover rewrites a query with edge universe `universe` using the greedy
// set-cover algorithm of §5.3: the candidate sets are the materialized views
// whose edge sets are subgraphs of the query, plus the atomic single-edge
// bitmaps; the algorithm repeatedly picks the set covering the most
// still-uncovered query edges. It is the single-universe instance of the
// extended set cover problem and an H(n)-approximation of the optimal
// rewriting.
//
// Only views that are subsets of the query are usable: ANDing a bitmap of a
// non-subset view would over-filter the answer.
func PlanCover(rel *colstore.Relation, universe []colstore.EdgeID) CoverPlan {
	if !rel.HasViews() {
		return PlanWithoutViews(universe) // nothing to rewrite against
	}
	uncovered := make(map[colstore.EdgeID]struct{}, len(universe))
	for _, e := range universe {
		uncovered[e] = struct{}{}
	}

	var cands []candidate
	for _, v := range rel.Views() {
		if subsetOf(v.Edges, uncovered) {
			cands = append(cands, candidate{name: v.Name, edges: v.Edges})
		}
	}
	for _, v := range rel.AggViews() {
		if subsetOf(v.Path, uncovered) {
			cands = append(cands, candidate{name: v.Name, isAgg: true, edges: v.Path})
		}
	}
	// Deterministic order: graph views before aggregate views, then by name.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].isAgg != cands[j].isAgg {
			return !cands[i].isAgg
		}
		return cands[i].name < cands[j].name
	})

	var plan CoverPlan
	for len(uncovered) > 0 {
		bestIdx, bestGain := -1, 1 // a view must beat a single-edge bitmap
		for i, c := range cands {
			gain := 0
			for _, e := range c.edges {
				if _, ok := uncovered[e]; ok {
					gain++
				}
			}
			if gain > bestGain {
				bestIdx, bestGain = i, gain
			}
		}
		if bestIdx < 0 {
			break // atomic edges are at least as good; stop per §5.2
		}
		c := cands[bestIdx]
		if c.isAgg {
			plan.AggViews = append(plan.AggViews, c.name)
		} else {
			plan.Views = append(plan.Views, c.name)
		}
		for _, e := range c.edges {
			delete(uncovered, e)
		}
	}
	// Residual single-edge bitmaps, in ascending id order for determinism.
	plan.Edges = make([]colstore.EdgeID, 0, len(uncovered))
	for e := range uncovered {
		plan.Edges = append(plan.Edges, e)
	}
	sort.Slice(plan.Edges, func(i, j int) bool { return plan.Edges[i] < plan.Edges[j] })
	return plan
}

// PlanWithoutViews returns the oblivious plan that fetches every edge bitmap
// directly, ignoring materialized views. It is the baseline the paper's
// "oblivious to the existing materialized graph views" comparison uses.
func PlanWithoutViews(universe []colstore.EdgeID) CoverPlan {
	edges := append([]colstore.EdgeID(nil), universe...)
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
	return CoverPlan{Edges: edges}
}

func subsetOf(edges []colstore.EdgeID, set map[colstore.EdgeID]struct{}) bool {
	for _, e := range edges {
		if _, ok := set[e]; !ok {
			return false
		}
	}
	return true
}
