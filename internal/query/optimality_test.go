package query

import (
	"math/rand"
	"testing"

	"grove/internal/colstore"
)

// optimalCoverSize brute-forces the minimum number of bitmaps that cover the
// universe, choosing among the usable views (subsets of the universe) and
// single-edge bitmaps. Exponential in the number of usable views — test
// sizes only.
func optimalCoverSize(universe []colstore.EdgeID, views [][]colstore.EdgeID) int {
	var usable [][]colstore.EdgeID
	inUniverse := make(map[colstore.EdgeID]struct{}, len(universe))
	for _, e := range universe {
		inUniverse[e] = struct{}{}
	}
	for _, v := range views {
		ok := true
		for _, e := range v {
			if _, in := inUniverse[e]; !in {
				ok = false
				break
			}
		}
		if ok {
			usable = append(usable, v)
		}
	}
	best := len(universe) // all single edges
	for mask := 0; mask < 1<<len(usable); mask++ {
		covered := make(map[colstore.EdgeID]struct{})
		nViews := 0
		for i, v := range usable {
			if mask&(1<<i) == 0 {
				continue
			}
			nViews++
			for _, e := range v {
				covered[e] = struct{}{}
			}
		}
		cost := nViews + (len(universe) - len(covered))
		if cost < best {
			best = cost
		}
	}
	return best
}

// TestGreedyWithinHarmonicBound verifies the §5.3 claim: the greedy
// query-time rewriting is an H(n)-approximation of the optimal cover, where
// n is the number of query edges.
func TestGreedyWithinHarmonicBound(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 150; trial++ {
		rel := colstore.NewRelation(0)
		rec := rel.NewRecord()
		for e := colstore.EdgeID(0); e < 16; e++ {
			rel.SetEdgeMeasure(rec, e, 1)
		}
		var views [][]colstore.EdgeID
		numViews := rng.Intn(9)
		for v := 0; v < numViews; v++ {
			var ids []colstore.EdgeID
			for j := 0; j < 2+rng.Intn(4); j++ {
				ids = append(ids, colstore.EdgeID(rng.Intn(16)))
			}
			gv, err := rel.MaterializeView(string(rune('a'+v)), ids)
			if err != nil {
				continue
			}
			views = append(views, gv.Edges)
		}
		var universe []colstore.EdgeID
		seen := map[colstore.EdgeID]struct{}{}
		for j := 0; j < 2+rng.Intn(10); j++ {
			e := colstore.EdgeID(rng.Intn(16))
			if _, dup := seen[e]; !dup {
				seen[e] = struct{}{}
				universe = append(universe, e)
			}
		}
		greedy := PlanCover(rel, universe).NumBitmaps()
		opt := optimalCoverSize(universe, views)
		n := float64(len(universe))
		hn := 0.0
		for k := 1; k <= int(n); k++ {
			hn += 1 / float64(k)
		}
		if float64(greedy) > hn*float64(opt)+1e-9 {
			t.Fatalf("trial %d: greedy %d exceeds H(%d)=%.3f × opt %d",
				trial, greedy, int(n), hn, opt)
		}
		if greedy < opt {
			t.Fatalf("trial %d: greedy %d beat the 'optimal' %d — brute force is wrong",
				trial, greedy, opt)
		}
	}
}
