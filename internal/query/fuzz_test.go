package query

import "testing"

// FuzzParse checks the query-language parser never panics and that parsed
// statements are well-formed (exactly one of Expr/Agg set).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"[A,B]",
		"[A,B] AND [C,D]",
		"[A,B] AND NOT ([C,D] OR [E,F])",
		"SUM [A,B,C]",
		"MAX<cost> [C,H]",
		"sum [a#2,b.c]",
		"[A,B] XOR",
		"((((",
		"SUM<",
		"[,]",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		st, err := Parse(input)
		if err != nil {
			return
		}
		if (st.Expr == nil) == (st.Agg == nil) {
			t.Fatalf("Parse(%q): exactly one of Expr/Agg must be set", input)
		}
		if st.Agg != nil && st.Agg.G.NumElements() == 0 {
			t.Fatalf("Parse(%q): empty aggregation graph accepted", input)
		}
	})
}
