package query

import (
	"strings"
	"testing"

	"grove/internal/colstore"
	"grove/internal/graph"
)

func TestExplainWithViews(t *testing.T) {
	f := newFig2Fixture(t)
	e2, _ := f.reg.Lookup(graph.E("A", "C"))
	e3, _ := f.reg.Lookup(graph.E("C", "E"))
	if _, err := f.rel.MaterializeView("v23", []colstore.EdgeID{e2, e3}); err != nil {
		t.Fatal(err)
	}
	q := pathQuery("A", "C", "E", "F")
	ex, err := f.eng.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Universe != 3 {
		t.Errorf("Universe = %d", ex.Universe)
	}
	if len(ex.Views) != 1 || ex.Views[0] != "v23" {
		t.Errorf("Views = %v", ex.Views)
	}
	if ex.ResidualEdges != 1 || ex.BitmapsFetched != 2 || ex.BitmapsSaved != 1 {
		t.Errorf("plan figures = %+v", ex)
	}
	if len(ex.UnknownElements) != 0 {
		t.Errorf("UnknownElements = %v", ex.UnknownElements)
	}
	out := ex.String()
	for _, want := range []string{"universe: 3 edges", "views: v23", "saved vs oblivious plan: 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
	// Explaining must not account I/O.
	f.rel.Tracker().Reset()
	if _, err := f.eng.Explain(q); err != nil {
		t.Fatal(err)
	}
	if f.rel.Tracker().Snapshot().ColumnsFetched() != 0 {
		t.Error("Explain charged I/O")
	}
}

func TestExplainUnknownElements(t *testing.T) {
	f := newFig2Fixture(t)
	ex, err := f.eng.Explain(pathQuery("A", "ZZZ"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.UnknownElements) != 1 {
		t.Errorf("UnknownElements = %v", ex.UnknownElements)
	}
	if !strings.Contains(ex.String(), "WARNING") {
		t.Error("warning missing from rendering")
	}
	if _, err := f.eng.Explain(nil); err == nil {
		t.Error("nil query accepted")
	}
}

func TestExplainObliviousMode(t *testing.T) {
	f := newFig2Fixture(t)
	e6, _ := f.reg.Lookup(graph.E("E", "F"))
	e7, _ := f.reg.Lookup(graph.E("F", "G"))
	if _, err := f.rel.MaterializeView("v67", []colstore.EdgeID{e6, e7}); err != nil {
		t.Fatal(err)
	}
	f.eng.UseViews = false
	ex, err := f.eng.ExplainGraph(pathQuery("E", "F", "G").G)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Views) != 0 || ex.BitmapsSaved != 0 {
		t.Errorf("oblivious explain used views: %+v", ex)
	}
}
