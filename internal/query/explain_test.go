package query

import (
	"strings"
	"testing"

	"grove/internal/colstore"
	"grove/internal/graph"
)

func TestExplainWithViews(t *testing.T) {
	f := newFig2Fixture(t)
	e2, _ := f.reg.Lookup(graph.E("A", "C"))
	e3, _ := f.reg.Lookup(graph.E("C", "E"))
	if _, err := f.rel.MaterializeView("v23", []colstore.EdgeID{e2, e3}); err != nil {
		t.Fatal(err)
	}
	q := pathQuery("A", "C", "E", "F")
	ex, err := f.eng.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Universe != 3 {
		t.Errorf("Universe = %d", ex.Universe)
	}
	if len(ex.Views) != 1 || ex.Views[0] != "v23" {
		t.Errorf("Views = %v", ex.Views)
	}
	if ex.ResidualEdges != 1 || ex.BitmapsFetched != 2 || ex.BitmapsSaved != 1 {
		t.Errorf("plan figures = %+v", ex)
	}
	if len(ex.UnknownElements) != 0 {
		t.Errorf("UnknownElements = %v", ex.UnknownElements)
	}
	out := ex.String()
	for _, want := range []string{"universe: 3 edges", "views: v23", "saved vs oblivious plan: 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
	// Explaining must not account I/O.
	f.rel.Tracker().Reset()
	if _, err := f.eng.Explain(q); err != nil {
		t.Fatal(err)
	}
	if f.rel.Tracker().Snapshot().ColumnsFetched() != 0 {
		t.Error("Explain charged I/O")
	}
}

func TestExplainUnknownElements(t *testing.T) {
	f := newFig2Fixture(t)
	ex, err := f.eng.Explain(pathQuery("A", "ZZZ"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.UnknownElements) != 1 {
		t.Errorf("UnknownElements = %v", ex.UnknownElements)
	}
	if !strings.Contains(ex.String(), "WARNING") {
		t.Error("warning missing from rendering")
	}
	if _, err := f.eng.Explain(nil); err == nil {
		t.Error("nil query accepted")
	}
}

// TestExplanationStringRendering covers every branch of the renderer,
// including the aggregate-view line and the unknown-element warning.
func TestExplanationStringRendering(t *testing.T) {
	ex := Explanation{
		Universe:        4,
		Views:           []string{"v1", "v2"},
		AggViews:        []string{"a1"},
		ResidualEdges:   1,
		BitmapsFetched:  4,
		BitmapsSaved:    2,
		Partitions:      2,
		UnknownElements: []string{"[X,Y]"},
	}
	out := ex.String()
	for _, want := range []string{
		"universe: 4 edges",
		"plan: 4 bitmap fetch(es) = 2 view(s) + 1 aggregate-view filter(s) + 1 edge bitmap(s)",
		"views: v1 v2",
		"aggregate views: a1",
		"saved vs oblivious plan: 2 bitmap fetch(es)",
		"partitions spanned: 2",
		"WARNING: unknown elements (answer will be empty): [X,Y]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
	bare := Explanation{Universe: 1, BitmapsFetched: 1}.String()
	for _, absent := range []string{"views:", "WARNING"} {
		if strings.Contains(bare, absent) {
			t.Errorf("bare rendering has %q:\n%s", absent, bare)
		}
	}
}

// TestExplainSavingsMatchExecutedFetches pins the predicted figures to real
// I/O: on a store with a materialized view, BitmapsFetched equals the
// view-aware execution's fetch count and BitmapsSaved equals the delta to
// the view-oblivious execution.
func TestExplainSavingsMatchExecutedFetches(t *testing.T) {
	f := newFig2Fixture(t)
	e2, _ := f.reg.Lookup(graph.E("A", "C"))
	e3, _ := f.reg.Lookup(graph.E("C", "E"))
	if _, err := f.rel.MaterializeView("v23", []colstore.EdgeID{e2, e3}); err != nil {
		t.Fatal(err)
	}
	q := pathQuery("A", "C", "E", "F")
	ex, err := f.eng.Explain(q)
	if err != nil {
		t.Fatal(err)
	}

	f.rel.Tracker().Reset()
	if _, err := f.eng.ExecuteGraphQuery(q); err != nil {
		t.Fatal(err)
	}
	viewAware := f.rel.Tracker().Snapshot().BitmapColumnsFetched
	if viewAware != ex.BitmapsFetched {
		t.Errorf("view-aware run fetched %d bitmaps, Explain predicted %d", viewAware, ex.BitmapsFetched)
	}

	f.eng.UseViews = false
	f.rel.Tracker().Reset()
	if _, err := f.eng.ExecuteGraphQuery(q); err != nil {
		t.Fatal(err)
	}
	oblivious := f.rel.Tracker().Snapshot().BitmapColumnsFetched
	if got := oblivious - viewAware; got != ex.BitmapsSaved {
		t.Errorf("actual fetch delta = %d (%d oblivious - %d view-aware), BitmapsSaved = %d",
			got, oblivious, viewAware, ex.BitmapsSaved)
	}
}

func TestExplainObliviousMode(t *testing.T) {
	f := newFig2Fixture(t)
	e6, _ := f.reg.Lookup(graph.E("E", "F"))
	e7, _ := f.reg.Lookup(graph.E("F", "G"))
	if _, err := f.rel.MaterializeView("v67", []colstore.EdgeID{e6, e7}); err != nil {
		t.Fatal(err)
	}
	f.eng.UseViews = false
	ex, err := f.eng.ExplainGraph(pathQuery("E", "F", "G").G)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Views) != 0 || ex.BitmapsSaved != 0 {
		t.Errorf("oblivious explain used views: %+v", ex)
	}
}
