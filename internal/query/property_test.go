package query

import (
	"math"
	"math/rand"
	"testing"

	"grove/internal/colstore"
	"grove/internal/gpath"
	"grove/internal/graph"
)

// TestPlanCoverAlwaysCoversUniverse: for random universes and view catalogs,
// the plan's views + edges must cover the query exactly — every universe
// edge covered, every planned view a subset of the universe.
func TestPlanCoverAlwaysCoversUniverse(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		rel := colstore.NewRelation(0)
		rec := rel.NewRecord()
		for e := colstore.EdgeID(0); e < 40; e++ {
			rel.SetEdgeMeasure(rec, e, 1)
		}
		// Random views.
		numViews := rng.Intn(6)
		for v := 0; v < numViews; v++ {
			var ids []colstore.EdgeID
			for j := 0; j < 2+rng.Intn(4); j++ {
				ids = append(ids, colstore.EdgeID(rng.Intn(40)))
			}
			_, _ = rel.MaterializeView(string(rune('a'+v)), ids)
		}
		// Random universe.
		var universe []colstore.EdgeID
		seen := map[colstore.EdgeID]struct{}{}
		for j := 0; j < 1+rng.Intn(10); j++ {
			e := colstore.EdgeID(rng.Intn(40))
			if _, dup := seen[e]; !dup {
				seen[e] = struct{}{}
				universe = append(universe, e)
			}
		}
		plan := PlanCover(rel, universe)

		covered := map[colstore.EdgeID]struct{}{}
		for _, name := range plan.Views {
			v := rel.View(name)
			for _, e := range v.Edges {
				if _, ok := seen[e]; !ok {
					t.Fatalf("trial %d: view %s includes edge %d outside the query", trial, name, e)
				}
				covered[e] = struct{}{}
			}
		}
		for _, e := range plan.Edges {
			covered[e] = struct{}{}
		}
		for e := range seen {
			if _, ok := covered[e]; !ok {
				t.Fatalf("trial %d: edge %d left uncovered by plan %+v", trial, e, plan)
			}
		}
		if plan.NumBitmaps() > len(universe) {
			t.Fatalf("trial %d: plan uses more bitmaps (%d) than the oblivious plan (%d)",
				trial, plan.NumBitmaps(), len(universe))
		}
	}
}

// TestAggViewsNeverChangeAggregates: random records, random aggregate views,
// random path queries — view-based evaluation must equal raw evaluation for
// every aggregate function.
func TestAggViewsNeverChangeAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	f := newRandomFixture(t, rng, 150)

	// Materialize aggregate views over random subpaths of record paths.
	fns := []AggFunc{Sum, Min, Max, Count}
	for i := 0; i < 6; i++ {
		rec := f.records[rng.Intn(len(f.records))]
		paths, err := gpath.MaximalPaths(rec.Graph)
		if err != nil || len(paths) == 0 {
			continue
		}
		p := paths[rng.Intn(len(paths))]
		if p.Len() < 2 {
			continue
		}
		var ids []colstore.EdgeID
		for _, k := range p.Edges() {
			ids = append(ids, f.reg.ID(k))
		}
		fn := fns[rng.Intn(len(fns))]
		_, _ = f.rel.MaterializeAggView(string(rune('a'+i)), ids, fn)
	}

	for trial := 0; trial < 60; trial++ {
		rec := f.records[rng.Intn(len(f.records))]
		paths, err := gpath.MaximalPaths(rec.Graph)
		if err != nil || len(paths) == 0 {
			continue
		}
		p := paths[rng.Intn(len(paths))]
		if p.Len() < 1 {
			continue
		}
		fn := fns[rng.Intn(len(fns))]
		q := NewPathAggQuery(p.ToGraph(), fn)

		f.eng.UseViews = true
		with, err := f.eng.ExecutePathAggQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		f.eng.UseViews = false
		without, err := f.eng.ExecutePathAggQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if !with.Answer.Equals(without.Answer) {
			t.Fatalf("trial %d: answers diverge", trial)
		}
		for pi := range with.Values {
			for i := range with.Values[pi] {
				a, b := with.Values[pi][i], without.Values[pi][i]
				if math.IsNaN(a) != math.IsNaN(b) || (!math.IsNaN(a) && a != b) {
					t.Fatalf("trial %d (%s): value mismatch %v vs %v", trial, fn.Name, a, b)
				}
			}
		}
	}
}

// TestAggMatchesBruteForce: engine path aggregation equals a direct fold
// over the record's measures.
func TestAggMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := newRandomFixture(t, rng, 150)
	for trial := 0; trial < 80; trial++ {
		rec := f.records[rng.Intn(len(f.records))]
		paths, err := gpath.MaximalPaths(rec.Graph)
		if err != nil || len(paths) == 0 {
			continue
		}
		p := paths[rng.Intn(len(paths))]
		q := NewPathAggQuery(p.ToGraph(), Sum)
		res, err := f.eng.ExecutePathAggQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		for i, id := range res.RecordIDs {
			r := f.records[id]
			want := 0.0
			null := false
			for _, k := range p.Edges() {
				m := r.Measure(k)
				if !m.Valid {
					null = true
					break
				}
				want += m.Value
			}
			// Node measures of the closed path (random fixture has none,
			// but keep the check honest).
			for _, n := range p.MeasuredNodes() {
				if m := r.Measure(graph.NodeKey(n)); m.Valid {
					want += m.Value
				}
			}
			got := res.Values[0][i]
			if null {
				if !math.IsNaN(got) {
					t.Fatalf("trial %d rec %d: want NaN, got %v", trial, id, got)
				}
				continue
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d rec %d: got %v want %v", trial, id, got, want)
			}
		}
	}
}
