package query

import (
	"strings"
	"testing"

	"grove/internal/colstore"
	"grove/internal/graph"
	"grove/internal/obs"
)

func TestExecuteStatementTracesParsePhase(t *testing.T) {
	f := newFig2Fixture(t)
	ring := obs.NewTraceRing(4)
	f.eng.SetTraces(ring)

	res, err := f.eng.ExecuteStatement("SUM [A,C,E,F]")
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg == nil || res.IDs != nil {
		t.Fatalf("statement result = %+v", res)
	}
	if len(res.Agg.RecordIDs) != 1 || res.Agg.Values[0][0] != 7 {
		t.Errorf("SUM along (A,C,E,F) = %+v", res.Agg.Values)
	}
	traces := ring.Recent()
	if len(traces) != 1 {
		t.Fatalf("traces = %d", len(traces))
	}
	tr := traces[0]
	if tr.Kind != obs.KindStatement || tr.Query != "SUM [A,C,E,F]" {
		t.Errorf("trace header = %+v", tr)
	}
	phases := map[string]bool{}
	for _, s := range tr.Spans {
		phases[s.Phase] = true
	}
	for _, want := range []string{obs.PhaseParse, obs.PhasePlan, obs.PhaseFetch,
		obs.PhaseIntersect, obs.PhaseMeasureScan, obs.PhaseAggregate} {
		if !phases[want] {
			t.Errorf("statement trace missing phase %q (have %v)", want, phases)
		}
	}
	if tr.Spans[0].Phase != obs.PhaseParse {
		t.Errorf("first span = %q, want parse", tr.Spans[0].Phase)
	}

	// A boolean statement goes down the expression path.
	res, err = f.eng.ExecuteStatement("[A,C] AND NOT [F,G]")
	if err != nil {
		t.Fatal(err)
	}
	if res.IDs == nil || res.IDs.Cardinality() != 1 || !res.IDs.Contains(0) {
		t.Errorf("boolean statement answer = %+v", res.IDs)
	}
	if _, err := f.eng.ExecuteStatement("NOT A VALID ((("); err == nil {
		t.Error("parse error not surfaced")
	}
}

func TestExecuteStatementMetrics(t *testing.T) {
	f := newFig2Fixture(t)
	m := obs.NewQueryMetrics(obs.NewRegistry())
	f.eng.SetMetrics(m)
	if _, err := f.eng.ExecuteStatement("[A,C,E]"); err != nil {
		t.Fatal(err)
	}
	if m.StatementQueries.Value() != 1 || m.StatementLatency.Count() != 1 {
		t.Errorf("statement metrics = %d queries, %d observations",
			m.StatementQueries.Value(), m.StatementLatency.Count())
	}
	// The statement must not double-count as a bare expression.
	if m.ExprQueries.Value() != 0 {
		t.Errorf("expr counter = %d, want 0", m.ExprQueries.Value())
	}
}

// TestExplainAnalyzeMatchesPlan is the acceptance criterion: for a
// view-rewritten query, the observed bitmap-fetch count equals the predicted
// Explanation.BitmapsFetched exactly, and every phase carries wall time.
func TestExplainAnalyzeMatchesPlan(t *testing.T) {
	f := newFig2Fixture(t)
	e2, _ := f.reg.Lookup(graph.E("A", "C"))
	e3, _ := f.reg.Lookup(graph.E("C", "E"))
	if _, err := f.rel.MaterializeView("v23", []colstore.EdgeID{e2, e3}); err != nil {
		t.Fatal(err)
	}
	// A result cache must not distort the analysis: ExplainAnalyze bypasses it.
	f.eng.EnableCache(NewResultCache(8))
	q := pathQuery("A", "C", "E", "F")
	if _, err := f.eng.ExecuteGraphQuery(q); err != nil { // prime the cache
		t.Fatal(err)
	}

	a, err := f.eng.ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Plan.Views) != 1 || a.Plan.Views[0] != "v23" {
		t.Fatalf("expected a view-rewritten plan, got %+v", a.Plan)
	}
	if a.Trace.Cached {
		t.Error("analysis execution hit the cache")
	}
	if got, want := a.Trace.IO.BitmapColumnsFetched, int64(a.Plan.BitmapsFetched); got != want {
		t.Errorf("observed fetches = %d, plan predicts %d", got, want)
	}
	if a.Records != 1 {
		t.Errorf("records = %d", a.Records)
	}
	for _, want := range []string{obs.PhasePlan, obs.PhaseFetch, obs.PhaseIntersect} {
		found := false
		for _, s := range a.Trace.PhaseTotals() {
			if s.Phase == want {
				found = true
				if s.DurationNanos < 0 {
					t.Errorf("phase %q has negative duration", want)
				}
			}
		}
		if !found {
			t.Errorf("analysis missing phase %q", want)
		}
	}

	out := a.String()
	for _, want := range []string{"views: v23", "observed:", "fetch", "intersect"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}

	// Diagnostics must not pollute the serving trace ring or metrics.
	m := obs.NewQueryMetrics(obs.NewRegistry())
	ring := obs.NewTraceRing(4)
	f.eng.SetMetrics(m)
	f.eng.SetTraces(ring)
	if _, err := f.eng.ExplainAnalyze(q); err != nil {
		t.Fatal(err)
	}
	if m.GraphQueries.Value() != 0 || ring.Len() != 0 {
		t.Errorf("ExplainAnalyze leaked into serving metrics: %d queries, %d traces",
			m.GraphQueries.Value(), ring.Len())
	}
}

func TestExplainAnalyzeErrors(t *testing.T) {
	f := newFig2Fixture(t)
	if _, err := f.eng.ExplainAnalyze(nil); err == nil {
		t.Error("nil query accepted")
	}
	if _, err := f.eng.ExplainAnalyzeGraph(graph.NewGraph()); err == nil {
		t.Error("empty graph accepted")
	}
}
