package query

import (
	"testing"

	"grove/internal/gpath"
)

// The PathAgg benchmarks size the vectorized measure path: a 5-edge chain
// query over records dense (every record matches: the merge-gather path) or
// sparse (few records match: the batch-rank path) in the chain's columns.
// Run with `make bench-smoke` (or -bench=PathAgg); the checked-in baseline
// lives in BENCH_pathagg.json.

func benchmarkPathAgg(b *testing.B, numRecords int, density float64, parallel bool) {
	f, nodes := pathChainFixture(b, numRecords, density)
	f.eng.ParallelPaths = parallel
	q := NewPathAggQueryAlong(gpath.Closed(nodes...), Sum, "")
	if _, err := f.eng.ExecutePathAggQuery(q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.eng.ExecutePathAggQuery(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPathAggDense(b *testing.B)  { benchmarkPathAgg(b, 50000, 1.0, false) }
func BenchmarkPathAggSparse(b *testing.B) { benchmarkPathAgg(b, 50000, 0.5, false) }

// BenchmarkPathAggMultiPath aggregates along the same chain split into
// several explicit paths, sequentially and with ParallelPaths.
func benchmarkPathAggMultiPath(b *testing.B, parallel bool) {
	f, nodes := pathChainFixture(b, 50000, 1.0)
	f.eng.ParallelPaths = parallel
	q := &PathAggQuery{G: gpath.Closed(nodes...).ToGraph(), Agg: Sum, Paths: []gpath.Path{
		gpath.Closed(nodes[:3]...), gpath.Closed(nodes[1:4]...),
		gpath.Closed(nodes[2:5]...), gpath.Closed(nodes[3:]...),
	}}
	if _, err := f.eng.ExecutePathAggQuery(q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.eng.ExecutePathAggQuery(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPathAggMultiPathSequential(b *testing.B) { benchmarkPathAggMultiPath(b, false) }
func BenchmarkPathAggMultiPathParallel(b *testing.B)   { benchmarkPathAggMultiPath(b, true) }

// BenchmarkPathAggFetchMeasures times the graph-query measure phase (the
// fused AggregateInto scan) over a fixed structural answer.
func BenchmarkPathAggFetchMeasures(b *testing.B) {
	f, nodes := pathChainFixture(b, 50000, 1.0)
	res, err := f.eng.ExecuteGraphQuery(pathQuery(nodes...))
	if err != nil {
		b.Fatal(err)
	}
	res.FetchMeasures()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.FetchMeasures()
	}
}
