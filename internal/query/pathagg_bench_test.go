package query

import (
	"testing"

	"grove/internal/colstore"
	"grove/internal/gpath"
	"grove/internal/graph"
)

// The PathAgg benchmarks size the vectorized measure path: a 5-edge chain
// query over records dense (every record matches: the merge-gather path) or
// sparse (few records match: the batch-rank path) in the chain's columns.
// Run with `make bench-smoke` (or -bench=PathAgg); the checked-in baseline
// lives in BENCH_pathagg.json.

func benchmarkPathAgg(b *testing.B, numRecords int, density float64, parallel bool) {
	f, nodes := pathChainFixture(b, numRecords, density)
	f.eng.ParallelPaths = parallel
	q := NewPathAggQueryAlong(gpath.Closed(nodes...), Sum, "")
	if _, err := f.eng.ExecutePathAggQuery(q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.eng.ExecutePathAggQuery(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPathAggDense(b *testing.B)  { benchmarkPathAgg(b, 50000, 1.0, false) }
func BenchmarkPathAggSparse(b *testing.B) { benchmarkPathAgg(b, 50000, 0.5, false) }

// BenchmarkPathAggMultiPath aggregates along the same chain split into
// several explicit paths, sequentially and with ParallelPaths.
func benchmarkPathAggMultiPath(b *testing.B, parallel bool) {
	f, nodes := pathChainFixture(b, 50000, 1.0)
	f.eng.ParallelPaths = parallel
	q := &PathAggQuery{G: gpath.Closed(nodes...).ToGraph(), Agg: Sum, Paths: []gpath.Path{
		gpath.Closed(nodes[:3]...), gpath.Closed(nodes[1:4]...),
		gpath.Closed(nodes[2:5]...), gpath.Closed(nodes[3:]...),
	}}
	if _, err := f.eng.ExecutePathAggQuery(q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.eng.ExecutePathAggQuery(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPathAggMultiPathSequential(b *testing.B) { benchmarkPathAggMultiPath(b, false) }
func BenchmarkPathAggMultiPathParallel(b *testing.B)   { benchmarkPathAggMultiPath(b, true) }

// The PathAggScalar benchmarks compare the two ways to a scalar MIN over one
// edge of a *paged* (saved-and-reloaded) store: the row plan (per-record
// aggregates, then fold — which must decode every value block) against the
// zone-skipping scalar plan (which proves most blocks irrelevant from their
// zone maps and never decodes them).
func benchmarkPathAggScalar(b *testing.B, zoneSkip bool) {
	f, nodes := pathChainFixture(b, 50000, 1.0)
	// Monotonic measures on the benchmarked edge: only the first block can
	// hold the minimum, so the zone maps prove the rest skippable — the
	// selective-scan regime the plan targets.
	ab, ok := f.reg.Lookup(graph.E(nodes[0], nodes[1]))
	if !ok {
		b.Fatal("fixture lost its first edge")
	}
	for rec := uint32(0); rec < uint32(f.rel.NumRecords()); rec++ {
		f.rel.SetEdgeMeasure(rec, ab, float64(1<<20)+float64(rec))
	}
	dir := b.TempDir()
	if err := f.rel.Save(dir); err != nil {
		b.Fatal(err)
	}
	rel, err := colstore.Load(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer rel.Close()
	// A tight budget keeps the column cold, so each run pays the decode cost
	// its plan actually incurs — the regime paging exists for.
	rel.SetPageCacheBytes(1 << 14)
	eng := NewEngine(rel, f.reg)
	q := NewPathAggQueryAlong(gpath.Closed(nodes[0], nodes[1]), Min, "")
	run := func() {
		if zoneSkip {
			res, err := eng.ExecutePathAggScalar(q)
			if err != nil {
				b.Fatal(err)
			}
			if !res.ZoneSkipped {
				b.Fatal("scalar plan did not engage")
			}
		} else {
			res, err := eng.ExecutePathAggQuery(q)
			if err != nil {
				b.Fatal(err)
			}
			res.FoldAcrossPaths()
		}
	}
	run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

func BenchmarkPathAggScalarMinRows(b *testing.B)     { benchmarkPathAggScalar(b, false) }
func BenchmarkPathAggScalarMinZoneSkip(b *testing.B) { benchmarkPathAggScalar(b, true) }

// BenchmarkPathAggFetchMeasures times the graph-query measure phase (the
// fused AggregateInto scan) over a fixed structural answer.
func BenchmarkPathAggFetchMeasures(b *testing.B) {
	f, nodes := pathChainFixture(b, 50000, 1.0)
	res, err := f.eng.ExecuteGraphQuery(pathQuery(nodes...))
	if err != nil {
		b.Fatal(err)
	}
	res.FetchMeasures()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.FetchMeasures()
	}
}
