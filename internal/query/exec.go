package query

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"grove/internal/agg"
	"grove/internal/bitmap"
	"grove/internal/colstore"
	"grove/internal/gpath"
	"grove/internal/graph"
	"grove/internal/obs"
)

// Engine executes graph queries over a master relation. UseViews controls
// whether the planner rewrites queries against materialized views (§5.3) or
// runs the view-oblivious plan; the Fig. 6–8 experiments compare the two.
//
// Query execution is safe for concurrent use (per-query scratch comes from
// a pool); mutating the exported fields or EnableCache concurrently with
// queries is not.
type Engine struct {
	Rel      *colstore.Relation
	Reg      *graph.Registry
	UseViews bool

	// ParallelPaths, when set, aggregates the maximal paths of a
	// path-aggregation query on separate goroutines (columns are still
	// fetched sequentially, so I/O accounting order is deterministic; the
	// tracker's atomic counters make the fold accounting race-free). It only
	// engages for untraced multi-path queries: a lifecycle trace records
	// per-path phase spans whose ordering interleaved goroutines would
	// scramble.
	ParallelPaths bool

	// cache, when set, memoizes structural answers across repeated queries
	// (invalidated wholesale on any relation mutation).
	cache *ResultCache

	// metrics, when set, records per-query counters and latency histograms
	// (allocation-free). traces, when set, records a span-based lifecycle
	// trace per query into the ring (one allocation per query plus span
	// appends). slow, when set, records queries over its latency threshold
	// into a bounded structured log (sub-threshold queries pay one clock read
	// and an atomic load). All default to nil: the disabled path costs three
	// nil checks and nothing else. Set them before serving queries (like
	// EnableCache, mutating mid-flight is not synchronized).
	metrics *obs.QueryMetrics
	traces  *obs.TraceRing
	slow    *obs.SlowLog

	// shardID labels this engine's traces and slow-log entries with the
	// shard it executes (0 for a single-relation store).
	shardID int
}

// bmsPool recycles the operand slices of the structural AND phase across
// queries and goroutines, so executing a query allocates O(1) bitmaps
// regardless of plan width.
var bmsPool = sync.Pool{New: func() any { return new([]*bitmap.Bitmap) }}

// NewEngine returns a view-aware engine.
func NewEngine(rel *colstore.Relation, reg *graph.Registry) *Engine {
	return &Engine{Rel: rel, Reg: reg, UseViews: true}
}

// Clone returns an engine sharing rel, registry, view setting, result cache
// and observability hooks with e, but with its own scratch — safe to use
// from another goroutine concurrently with e.
func (e *Engine) Clone() *Engine {
	return &Engine{Rel: e.Rel, Reg: e.Reg, UseViews: e.UseViews,
		ParallelPaths: e.ParallelPaths, cache: e.cache,
		metrics: e.metrics, traces: e.traces, slow: e.slow,
		shardID: e.shardID}
}

// SetMetrics attaches a metrics bundle (nil disables). Attach before
// serving queries.
func (e *Engine) SetMetrics(m *obs.QueryMetrics) { e.metrics = m }

// SetTraces attaches a trace ring recording one lifecycle trace per query
// (nil disables). Attach before serving queries.
func (e *Engine) SetTraces(t *obs.TraceRing) { e.traces = t }

// Traces returns the attached trace ring (nil when tracing is disabled).
func (e *Engine) Traces() *obs.TraceRing { return e.traces }

// SetSlowLog attaches a slow-query log (nil disables). Attach before serving
// queries. Batch workers inherit it through Clone.
func (e *Engine) SetSlowLog(l *obs.SlowLog) { e.slow = l }

// SlowLog returns the attached slow-query log (nil when disabled).
func (e *Engine) SlowLog() *obs.SlowLog { return e.slow }

// SetShard labels the engine with the shard index it executes, stamped onto
// every trace and slow-log entry it emits.
func (e *Engine) SetShard(id int) { e.shardID = id }

// Shard returns the engine's shard index.
func (e *Engine) Shard() int { return e.shardID }

// slowObserve appends a slow-log entry when the finished query crossed the
// log's latency threshold. startIO is the tracker snapshot taken at query
// start (exact only single-threaded, like trace I/O deltas).
func (e *Engine) slowObserve(kind, qstr string, start time.Time, startIO obs.IODelta, cached bool, err error) {
	d := time.Since(start)
	if d < e.slow.Threshold() {
		return
	}
	sq := obs.SlowQuery{
		Kind:           kind,
		Query:          qstr,
		Shard:          e.shardID,
		StartUnixNanos: start.UnixNano(),
		DurationNanos:  d.Nanoseconds(),
		Cached:         cached,
		IO:             e.ioNow().Sub(startIO),
	}
	if err != nil {
		sq.Error = err.Error()
		sq.Cancelled = errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	}
	e.slow.Add(sq)
}

// Cache returns the attached result cache (nil when caching is disabled).
func (e *Engine) Cache() *ResultCache { return e.cache }

// ioNow converts the relation tracker's cumulative counters into the obs
// package's I/O shape. Only called on traced paths: six atomic loads.
//
//grove:hotpath
func (e *Engine) ioNow() obs.IODelta {
	s := e.Rel.Tracker().Snapshot()
	return obs.IODelta{
		BitmapColumnsFetched:  int64(s.BitmapColumnsFetched),
		MeasureColumnsFetched: int64(s.MeasureColumnsFetched),
		MeasuresScanned:       s.MeasuresScanned,
		BytesRead:             s.BytesRead,
		PartitionJoins:        s.PartitionJoins,
		RecordsReturned:       s.RecordsReturned,
	}
}

// checkCtx reports the context's cancellation error, recording a terminal
// "cancelled" span on the trace when one is attached. The engine calls it
// between bitmap fetches and between per-path aggregation chunks, so a
// cancelled query abandons its remaining I/O promptly; work already done is
// simply discarded (queries are read-only, there is nothing to roll back).
//
//grove:hotpath
func (e *Engine) checkCtx(ctx context.Context, tr *obs.ActiveTrace) error {
	if err := ctx.Err(); err != nil {
		if tr != nil {
			tr.Begin(obs.PhaseCancelled, e.ioNow())
		}
		return err
	}
	return nil
}

// queryEdgeIDs resolves the structural elements of a query graph to edge
// ids. Elements unknown to the registry resolve to a sentinel id that has an
// empty bitmap, so queries referencing never-seen elements return empty
// answers (after paying for the fetch, as a real column store would).
func (e *Engine) queryEdgeIDs(g *graph.Graph) []colstore.EdgeID {
	elems := g.Elements()
	out := make([]colstore.EdgeID, 0, len(elems))
	seen := make(map[colstore.EdgeID]struct{}, len(elems))
	for _, k := range elems {
		id, ok := e.Reg.Lookup(k)
		if !ok {
			// Stable unseen id outside the registered range.
			id = colstore.EdgeID(uint32(e.Reg.Len()) + uint32(len(out)) + 1<<24)
		}
		if _, dup := seen[id]; !dup {
			seen[id] = struct{}{}
			out = append(out, id)
		}
	}
	return out
}

// Result is the structural answer of a graph query: the set of matching
// record ids, plus the plan that produced it. Measures are fetched
// separately (FetchMeasures) so experiments can time the two phases the way
// Figs. 6–7 break them down.
type Result struct {
	Query  *GraphQuery
	Plan   CoverPlan
	Answer *bitmap.Bitmap

	// Subs holds the per-shard sub-results of a scatter-gathered query (nil
	// for a single-relation execution). Answer is then the offset-translated
	// union of the sub-answers, and FetchMeasures delegates to the subs —
	// each record's measures live in exactly one shard.
	Subs []*Result

	eng    *Engine
	cached bool
}

// FromCache reports whether the answer was served from the result cache.
func (r *Result) FromCache() bool { return r.cached }

// NumRecords returns the answer cardinality.
func (r *Result) NumRecords() int { return r.Answer.Cardinality() }

// ExecuteGraphQuery evaluates the structural part of a graph query:
// plan (greedy rewrite when UseViews), fetch the planned bitmap columns, AND
// them (§4.2). The relation's read lock is held for the whole query, so the
// answer — and any cache entry made from it — is consistent with a single
// relation version even while writers run concurrently.
func (e *Engine) ExecuteGraphQuery(q *GraphQuery) (*Result, error) {
	return e.ExecuteGraphQueryContext(context.Background(), q)
}

// ExecuteGraphQueryContext is ExecuteGraphQuery with cancellation: the
// engine checks ctx between bitmap fetches and abandons the query with
// ctx's error once it is cancelled, recording a "cancelled" span on the
// trace. The read lock is released on every exit path, including a panic
// in a kernel (batch workers recover those).
func (e *Engine) ExecuteGraphQueryContext(ctx context.Context, q *GraphQuery) (*Result, error) {
	if q == nil || q.G == nil || q.G.NumElements() == 0 {
		return nil, fmt.Errorf("query: empty graph query")
	}
	var start time.Time
	if e.metrics != nil || e.slow != nil {
		start = time.Now()
	}
	var slowIO obs.IODelta
	if e.slow != nil {
		slowIO = e.ioNow()
	}
	var tr *obs.ActiveTrace
	if e.traces != nil {
		tr = obs.StartTrace(obs.KindGraph, q.String(), e.ioNow())
		tr.SetShard(e.shardID)
	}
	res, err := func() (*Result, error) {
		e.Rel.BeginRead()
		defer e.Rel.EndRead()
		return e.executeGraphQueryLocked(ctx, q, tr)
	}()
	if tr != nil {
		e.traces.Add(tr.Finish(e.ioNow()))
	}
	if e.metrics != nil && err == nil {
		e.metrics.Record(obs.KindGraph, time.Since(start))
	}
	if e.slow != nil {
		e.slowObserve(obs.KindGraph, q.String(), start, slowIO, res != nil && res.cached, err)
	}
	return res, err
}

// executeGraphQueryLocked is ExecuteGraphQuery with the relation read lock
// already held (BeginRead is not reentrant, so compound executions — path
// aggregation, boolean expressions — route through this). tr, when non-nil,
// receives the plan/fetch/intersect lifecycle spans.
func (e *Engine) executeGraphQueryLocked(ctx context.Context, q *GraphQuery, tr *obs.ActiveTrace) (*Result, error) {
	universe := e.queryEdgeIDs(q.G)
	// Read under the lock: the version cannot move while we hold it, so the
	// cache entry written below is tagged with exactly the version whose
	// data produced the answer.
	version := e.Rel.Version()
	var key string
	if e.cache != nil {
		if tr != nil {
			tr.Begin(obs.PhaseCache, e.ioNow())
		}
		key = cacheKey(universe)
		if answer := e.cache.get(version, key); answer != nil {
			e.Rel.AccountRecordsReturned(answer.Cardinality())
			if tr != nil {
				tr.SetCached()
			}
			return &Result{Query: q, Plan: CoverPlan{}, Answer: answer, eng: e, cached: true}, nil
		}
	}
	if tr != nil {
		tr.Begin(obs.PhasePlan, e.ioNow())
	}
	var plan CoverPlan
	if e.UseViews {
		plan = PlanCover(e.Rel, universe)
	} else {
		plan = PlanWithoutViews(universe)
	}

	if tr != nil {
		tr.Begin(obs.PhaseFetch, e.ioNow())
	}
	scratch := bmsPool.Get().(*[]*bitmap.Bitmap)
	bms := (*scratch)[:0]
	putScratch := func() {
		for i := range bms {
			bms[i] = nil
		}
		*scratch = bms[:0]
		bmsPool.Put(scratch)
	}
	for _, name := range plan.Views {
		if err := e.checkCtx(ctx, tr); err != nil {
			putScratch()
			return nil, err
		}
		b, err := e.Rel.FetchViewBitmap(name)
		if err != nil {
			putScratch()
			return nil, err
		}
		bms = append(bms, b)
	}
	for _, name := range plan.AggViews {
		if err := e.checkCtx(ctx, tr); err != nil {
			putScratch()
			return nil, err
		}
		b, err := e.Rel.FetchAggViewBitmap(name)
		if err != nil {
			putScratch()
			return nil, err
		}
		bms = append(bms, b)
	}
	for _, id := range plan.Edges {
		if err := e.checkCtx(ctx, tr); err != nil {
			putScratch()
			return nil, err
		}
		bms = append(bms, e.Rel.FetchEdgeBitmap(id))
	}
	if tr != nil {
		tr.Begin(obs.PhaseIntersect, e.ioNow())
	}
	// The conjunction intersects into one fresh destination the caller (and
	// the cache) owns; the fetched column bitmaps are never mutated.
	answer := e.Rel.MaskDeleted(bitmap.AndAllInto(bitmap.New(), bms...))
	putScratch() // don't pin column bitmaps from the pool
	if e.cache != nil {
		e.cache.put(version, key, answer)
	}
	e.Rel.AccountRecordsReturned(answer.Cardinality())
	return &Result{Query: q, Plan: plan, Answer: answer, eng: e}, nil
}

// recsPool recycles the decoded answer-set slices of the measure phases
// across queries and goroutines.
var recsPool = sync.Pool{New: func() any { return new([]uint32) }}

// sumReduce is the SUM block-reduce kernel FetchMeasures folds its checksum
// with; resolved once, not per query.
var sumReduce = agg.KernelFor(agg.Sum).Reduce

// FetchMeasures materializes the measures of the matched subgraph for every
// answer record (the mandatory lower part of the Fig. 6 time breakdown).
// It fetches the measure column of every query element, folds the values of
// every answer record with the fused block kernel (no per-record lookups and
// no intermediate value/presence slices), and accounts the cross-partition
// record reassembly joins (§6.1). It returns the number of measure values
// read.
//
//grove:hotpath
func (r *Result) FetchMeasures() int64 {
	if len(r.Subs) > 0 {
		// Scatter-gathered result: every answer record lives in exactly one
		// shard, so the per-shard fetches sum to the single-store total.
		var total int64
		for _, sub := range r.Subs {
			total += sub.FetchMeasures()
		}
		return total
	}
	if r.Answer.IsEmpty() {
		return 0 // nothing qualified; no measure columns are read
	}
	e := r.eng
	e.Rel.BeginRead() //grovevet:ignore lockorder paged measure scans fault value blocks from disk under the read lock by design: readers proceed concurrently, and the scan must see the same cut the filter matched
	defer e.Rel.EndRead()
	elems := r.Query.G.Elements()
	scratch := recsPool.Get().(*[]uint32)
	recs := r.Answer.AppendInto((*scratch)[:0])
	var scanned int64
	var spanEdges []colstore.EdgeID
	var sink float64
	names := append([]string{""}, e.Rel.MeasureNames()...)
	for _, k := range elems {
		id, ok := e.Reg.Lookup(k)
		if !ok {
			continue
		}
		spanned := false
		for _, name := range names {
			if name != "" && e.Rel.MeasureColumnNamed(id, name) == nil {
				continue // column does not exist for this edge; nothing read
			}
			col := e.Rel.FetchMeasureColumnNamed(id, name)
			if col == nil {
				continue
			}
			if !spanned {
				spanEdges = append(spanEdges, id)
				spanned = true
			}
			s, n := col.AggregateInto(recs, sink, sumReduce)
			sink = s
			scanned += int64(n)
		}
	}
	_ = sink
	*scratch = recs[:0]
	recsPool.Put(scratch)
	e.Rel.AccountMeasuresScanned(int(scanned))
	e.Rel.JoinPartitions(e.Rel.PartitionSpan(spanEdges), r.Answer)
	return scanned
}

// EvalExpr evaluates a boolean combination of graph queries (§3.2) and
// returns the combined answer set. The whole expression runs under one read
// lock, so all leaves see the same relation version.
func (e *Engine) EvalExpr(expr Expr) (*bitmap.Bitmap, error) {
	return e.EvalExprContext(context.Background(), expr)
}

// EvalExprContext is EvalExpr with cancellation, checked between the
// leaves' bitmap fetches.
func (e *Engine) EvalExprContext(ctx context.Context, expr Expr) (*bitmap.Bitmap, error) {
	var start time.Time
	if e.metrics != nil || e.slow != nil {
		start = time.Now()
	}
	var slowIO obs.IODelta
	if e.slow != nil {
		slowIO = e.ioNow()
	}
	var tr *obs.ActiveTrace
	if e.traces != nil {
		tr = obs.StartTrace(obs.KindExpr, expr.String(), e.ioNow())
		tr.SetShard(e.shardID)
	}
	b, err := func() (*bitmap.Bitmap, error) {
		e.Rel.BeginRead()
		defer e.Rel.EndRead()
		return e.evalExprLocked(ctx, expr, tr)
	}()
	if tr != nil {
		e.traces.Add(tr.Finish(e.ioNow()))
	}
	if e.metrics != nil && err == nil {
		e.metrics.Record(obs.KindExpr, time.Since(start))
	}
	if e.slow != nil {
		e.slowObserve(obs.KindExpr, expr.String(), start, slowIO, false, err)
	}
	return b, err
}

func (e *Engine) evalExprLocked(ctx context.Context, expr Expr, tr *obs.ActiveTrace) (*bitmap.Bitmap, error) {
	switch x := expr.(type) {
	case Leaf:
		res, err := e.executeGraphQueryLocked(ctx, x.Q, tr)
		if err != nil {
			return nil, err
		}
		return res.Answer, nil
	case And:
		if len(x.Operands) == 0 {
			return nil, fmt.Errorf("query: AND with no operands")
		}
		acc, err := e.evalExprLocked(ctx, x.Operands[0], tr)
		if err != nil {
			return nil, err
		}
		for _, op := range x.Operands[1:] {
			b, err := e.evalExprLocked(ctx, op, tr)
			if err != nil {
				return nil, err
			}
			if tr != nil {
				tr.Begin(obs.PhaseIntersect, e.ioNow())
			}
			acc = acc.And(b)
		}
		return acc, nil
	case Or:
		if len(x.Operands) == 0 {
			return nil, fmt.Errorf("query: OR with no operands")
		}
		acc, err := e.evalExprLocked(ctx, x.Operands[0], tr)
		if err != nil {
			return nil, err
		}
		for _, op := range x.Operands[1:] {
			b, err := e.evalExprLocked(ctx, op, tr)
			if err != nil {
				return nil, err
			}
			if tr != nil {
				tr.Begin(obs.PhaseIntersect, e.ioNow())
			}
			acc = acc.Or(b)
		}
		return acc, nil
	case Diff:
		a, err := e.evalExprLocked(ctx, x.A, tr)
		if err != nil {
			return nil, err
		}
		b, err := e.evalExprLocked(ctx, x.B, tr)
		if err != nil {
			return nil, err
		}
		if tr != nil {
			tr.Begin(obs.PhaseIntersect, e.ioNow())
		}
		return a.AndNot(b), nil
	default:
		return nil, fmt.Errorf("query: unknown expression node %T", expr)
	}
}

// --- path aggregation ---------------------------------------------------------

// pathSegment is one covered stretch of a query path: either a materialized
// aggregate view (ViewName != "") or a single raw edge.
type pathSegment struct {
	ViewName string
	Edge     colstore.EdgeID
	Length   int // edges covered
}

// AggResult holds a path aggregation answer: for every maximal path of the
// query graph and every answer record, the folded aggregate. Values[p][i] is
// aligned with RecordIDs[i]; NaN marks NULL (some measure missing).
type AggResult struct {
	Query     *PathAggQuery
	Answer    *bitmap.Bitmap
	RecordIDs []uint32
	Paths     []gpath.Path
	Values    [][]float64

	// SegmentsPerPath records how each path was covered, for plan inspection
	// and tests: counts of (view segments, raw edge segments).
	SegmentsPerPath [][2]int
}

// FoldAcrossPaths consolidates the per-path aggregates of each record with
// the query's Fold (e.g. MAX over all routes, as in Q3). NULL paths are
// skipped; a record with no non-NULL path folds to NaN.
func (r *AggResult) FoldAcrossPaths() []float64 {
	out := make([]float64, len(r.RecordIDs))
	for i := range out {
		acc := r.Query.Agg.Identity
		any := false
		for p := range r.Paths {
			v := r.Values[p][i]
			if !math.IsNaN(v) {
				acc = r.Query.Agg.Fold(acc, v)
				any = true
			}
		}
		if any {
			out[i] = acc
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}

// coverPath covers a path's edge sequence with materialized aggregate views
// of the same function (longest match at each position), falling back to raw
// edges — the measure-side rewriting of §5.1.2. Views are matched on their
// exact edge sequence so stored folds compose correctly.
func coverPath(rel *colstore.Relation, pathEdges []colstore.EdgeID, funcName, measureName string, useViews bool) []pathSegment {
	var views []*colstore.AggregateView
	if useViews {
		for _, v := range rel.AggViews() {
			if v.Func == funcName && v.MeasureName == measureName && len(v.Path) <= len(pathEdges) {
				views = append(views, v)
			}
		}
		sort.Slice(views, func(i, j int) bool {
			if len(views[i].Path) != len(views[j].Path) {
				return len(views[i].Path) > len(views[j].Path) // longest first
			}
			return views[i].Name < views[j].Name
		})
	}
	var out []pathSegment
	for i := 0; i < len(pathEdges); {
		matched := false
		for _, v := range views {
			if i+len(v.Path) > len(pathEdges) {
				continue
			}
			ok := true
			for j, e := range v.Path {
				if pathEdges[i+j] != e {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, pathSegment{ViewName: v.Name, Length: len(v.Path)})
				i += len(v.Path)
				matched = true
				break
			}
		}
		if !matched {
			out = append(out, pathSegment{Edge: pathEdges[i], Length: 1})
			i++
		}
	}
	return out
}

// ExecutePathAggQuery evaluates F_Gq (§3.4): structural filtering as for a
// graph query, then per-record aggregation along every maximal path, folding
// stored aggregate-view values where the path is covered by views.
func (e *Engine) ExecutePathAggQuery(q *PathAggQuery) (*AggResult, error) {
	return e.ExecutePathAggQueryContext(context.Background(), q)
}

// ExecutePathAggQueryContext is ExecutePathAggQuery with cancellation: ctx
// is checked between bitmap fetches of the structural phase and between
// per-path aggregation chunks.
func (e *Engine) ExecutePathAggQueryContext(ctx context.Context, q *PathAggQuery) (*AggResult, error) {
	var start time.Time
	if e.metrics != nil || e.slow != nil {
		start = time.Now()
	}
	var slowIO obs.IODelta
	if e.slow != nil {
		slowIO = e.ioNow()
	}
	var tr *obs.ActiveTrace
	if e.traces != nil {
		tr = obs.StartTrace(obs.KindPathAgg, q.String(), e.ioNow())
		tr.SetShard(e.shardID)
	}
	res, err := e.executePathAggQuery(ctx, q, tr)
	if tr != nil {
		e.traces.Add(tr.Finish(e.ioNow()))
	}
	if e.metrics != nil && err == nil {
		e.metrics.Record(obs.KindPathAgg, time.Since(start))
	}
	if e.slow != nil {
		e.slowObserve(obs.KindPathAgg, q.String(), start, slowIO, false, err)
	}
	return res, err
}

// segKind says how a planned segment's values enter the path fold.
type segKind uint8

const (
	segRaw  segKind = iota // raw edge measure: Fold(acc, Lift(v)), required
	segView                // stored partial aggregate: Fold(acc, v), required
	segNode                // node measure: Fold(acc, Lift(v)), optional
)

// plannedSeg is one resolved operand of a path fold: a fetched measure
// column (nil when it does not exist — every record folds to NULL) and how
// its values enter the fold.
type plannedSeg struct {
	col  *colstore.MeasureColumn
	kind segKind
}

// gatheredSeg is a plannedSeg after its column was batch-read over the
// answer set: values[i]/present[i] per answer record (windows into the
// pooled scratch slabs), n the number present.
type gatheredSeg struct {
	values  []float64
	present []bool
	n       int
	kind    segKind
}

// pathScratch holds the pooled per-path working state of path aggregation:
// the gather slabs (one values/present window per segment), the shared NULL
// mask, and the segment descriptors. One scratch serves one path at a time.
type pathScratch struct {
	vslab   []float64
	pslab   []bool
	null    []bool
	planned []plannedSeg
	segs    []gatheredSeg
}

var pathScratchPool = sync.Pool{New: func() any { return new(pathScratch) }}

// gather batch-reads every planned column over the answer set into the
// scratch slabs and resets the NULL mask. Missing columns produce a nil
// gatheredSeg window.
//
//grove:hotpath
func (sc *pathScratch) gather(recs []uint32, planned []plannedSeg) {
	n := len(recs)
	if need := len(planned) * n; cap(sc.vslab) < need {
		sc.vslab = make([]float64, need) //grovevet:ignore hotalloc slab grow path; pooled scratch plateaus at the largest answer set, steady state reuses it
		sc.pslab = make([]bool, need)    //grovevet:ignore hotalloc slab grow path; pooled scratch plateaus at the largest answer set, steady state reuses it
	}
	if cap(sc.null) < n {
		sc.null = make([]bool, n) //grovevet:ignore hotalloc mask grow path; pooled scratch plateaus at the largest answer set, steady state reuses it
	}
	sc.null = sc.null[:n]
	for i := range sc.null {
		sc.null[i] = false
	}
	sc.segs = sc.segs[:0]
	for si, ps := range planned {
		if ps.col == nil {
			sc.segs = append(sc.segs, gatheredSeg{kind: ps.kind})
			continue
		}
		v := sc.vslab[si*n : (si+1)*n]
		pr := sc.pslab[si*n : (si+1)*n]
		cnt := ps.col.GatherInto(recs, v, pr)
		sc.segs = append(sc.segs, gatheredSeg{values: v, present: pr, n: cnt, kind: ps.kind})
	}
}

// foldGathered folds the gathered segments column-at-a-time into vals
// (pre-filled with the aggregate identity) with the block kernels, and
// returns how many values were folded (the MeasuresScanned contribution).
// Per record the fold sequence is exactly the scalar per-record loop's —
// required segments in path order until the first missing value, then the
// optional node measures — so results are bit-for-bit identical even for
// order-sensitive user functions. NULL records end as NaN.
//
//grove:hotpath
func foldGathered(k agg.Kernel, vals []float64, sc *pathScratch) (scanned int) {
	nulls := 0
	for _, s := range sc.segs {
		switch {
		case s.kind == segNode:
			if s.values == nil {
				continue
			}
			f, _ := k.Optional(vals, s.values, s.present, sc.null)
			scanned += f
		case s.values == nil:
			// Required segment with no column: every surviving record
			// folds to NULL, nothing is scanned.
			for i, isNull := range sc.null {
				if !isNull {
					sc.null[i] = true
					nulls++
				}
			}
		default:
			fold := k.Raw
			if s.kind == segView {
				fold = k.Stored
			}
			if nulls == 0 && s.n == len(vals) {
				// Every record has a value and none is NULL yet: the
				// branchless dense path.
				f, _ := fold(vals, s.values, nil, nil)
				scanned += f
			} else {
				f, nn := fold(vals, s.values, s.present, sc.null)
				scanned += f
				nulls += nn
			}
		}
	}
	if nulls > 0 {
		for i, isNull := range sc.null {
			if isNull {
				vals[i] = math.NaN()
			}
		}
	}
	return scanned
}

// executePathAggQuery is the body of ExecutePathAggQuery, with lifecycle
// spans recorded on tr when tracing is enabled. The measure side runs
// block-at-a-time: per path, every segment column is batch-gathered over the
// answer set into pooled scratch, then folded column-at-a-time with the
// aggregate's block kernel.
func (e *Engine) executePathAggQuery(ctx context.Context, q *PathAggQuery, tr *obs.ActiveTrace) (*AggResult, error) {
	if q == nil || q.G == nil || q.G.NumElements() == 0 {
		return nil, fmt.Errorf("query: empty path aggregation query")
	}
	if q.Agg.Fold == nil || q.Agg.Lift == nil {
		return nil, fmt.Errorf("query: aggregation function not set")
	}
	// One read lock spans the structural filter and the measure scans, so
	// the aggregates are computed over exactly the records the filter saw.
	e.Rel.BeginRead() //grovevet:ignore lockorder paged measure scans fault value blocks from disk under the read lock by design: readers proceed concurrently, and the aggregate must fold the same cut the filter matched
	defer e.Rel.EndRead()
	return e.executePathAggLocked(ctx, q, tr)
}

// executePathAggLocked is the path-aggregation body with the relation read
// lock already held (the scalar executor routes its general fallback through
// here under its own lock — BeginRead is not reentrant).
func (e *Engine) executePathAggLocked(ctx context.Context, q *PathAggQuery, tr *obs.ActiveTrace) (*AggResult, error) {
	structural, err := e.executeGraphQueryLocked(ctx, &GraphQuery{G: q.G}, tr)
	if err != nil {
		return nil, err
	}
	paths := q.Paths
	if len(paths) == 0 {
		if tr != nil {
			tr.Begin(obs.PhasePlan, e.ioNow())
		}
		paths, err = gpath.MaximalPaths(q.G)
		if err != nil {
			return nil, err
		}
	}
	answer := structural.Answer
	res := &AggResult{
		Query:     q,
		Answer:    answer,
		RecordIDs: answer.AppendInto(nil),
		Paths:     paths,
	}
	k := agg.KernelFor(q.Agg)

	// Column caches so shared segments across paths are fetched once, and
	// per-element sentinel ids for edges the registry has never seen (each
	// unknown element gets its own empty column slot, as in queryEdgeIDs —
	// a shared sentinel would alias distinct unknown edges to one column).
	measureCols := make(map[colstore.EdgeID]*colstore.MeasureColumn)
	viewCols := make(map[string]*colstore.MeasureColumn)
	unknown := make(map[graph.EdgeKey]colstore.EdgeID)
	fetchMeasure := func(id colstore.EdgeID) *colstore.MeasureColumn {
		if c, ok := measureCols[id]; ok {
			return c
		}
		c := e.Rel.FetchMeasureColumnNamed(id, q.Measure)
		measureCols[id] = c
		return c
	}
	fetchView := func(name string) (*colstore.MeasureColumn, error) {
		if c, ok := viewCols[name]; ok {
			return c, nil
		}
		c, err := e.Rel.FetchAggViewMeasure(name)
		if err != nil {
			return nil, err
		}
		viewCols[name] = c
		return c, nil
	}
	resolve := func(p gpath.Path) []colstore.EdgeID {
		ids := make([]colstore.EdgeID, 0, p.Len())
		for _, ek := range p.Edges() {
			id, ok := e.Reg.Lookup(ek)
			if !ok {
				id, ok = unknown[ek]
				if !ok {
					id = colstore.EdgeID(uint32(e.Reg.Len()) + uint32(len(unknown)) + 1<<24)
					unknown[ek] = id
				}
			}
			ids = append(ids, id)
		}
		return ids
	}
	// planPath covers p with aggregate views and fetches every column the
	// fold will read, appending the fold operands to dst: required segments
	// in path order, then the optional node-measure columns. Covering is
	// plan work, fetching is measure-scan work; the span boundary sits
	// between them.
	planPath := func(dst []plannedSeg, p gpath.Path) ([]plannedSeg, [2]int, error) {
		segs := coverPath(e.Rel, resolve(p), q.Agg.Name, q.Measure, e.UseViews)
		if tr != nil {
			tr.Begin(obs.PhaseMeasureScan, e.ioNow())
		}
		viewSegs, rawSegs := 0, 0
		for _, s := range segs {
			if s.ViewName != "" {
				c, err := fetchView(s.ViewName)
				if err != nil {
					return dst, [2]int{}, err
				}
				dst = append(dst, plannedSeg{col: c, kind: segView})
				viewSegs++
			} else {
				dst = append(dst, plannedSeg{col: fetchMeasure(s.Edge), kind: segRaw})
				rawSegs++
			}
		}
		for _, n := range p.MeasuredNodes() {
			if id, ok := e.Reg.Lookup(graph.NodeKey(n)); ok {
				if e.Rel.MeasureColumn(id) != nil {
					dst = append(dst, plannedSeg{col: fetchMeasure(id), kind: segNode})
				}
			}
		}
		return dst, [2]int{viewSegs, rawSegs}, nil
	}
	newVals := func() []float64 {
		vals := make([]float64, len(res.RecordIDs))
		for i := range vals {
			vals[i] = q.Agg.Identity
		}
		return vals
	}

	scanned := 0
	if e.ParallelPaths && tr == nil && len(paths) > 1 {
		// Plan and fetch all paths sequentially (the column caches and the
		// fetch accounting are single-threaded state), then gather and fold
		// each path on its own goroutine with its own pooled scratch. The
		// relation read lock held above keeps writers out for the duration.
		plans := make([][]plannedSeg, len(paths))
		for pi, p := range paths {
			if err := e.checkCtx(ctx, tr); err != nil {
				return nil, err
			}
			var counts [2]int
			plans[pi], counts, err = planPath(nil, p)
			if err != nil {
				return nil, err
			}
			res.SegmentsPerPath = append(res.SegmentsPerPath, counts)
		}
		res.Values = make([][]float64, len(paths))
		perPath := make([]int, len(paths))
		var wg sync.WaitGroup
		var panicked atomic.Value // first worker panic, re-raised on the caller
		for pi := range paths {
			wg.Add(1)
			go func(pi int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						panicked.CompareAndSwap(nil, r) // keep the first panic; later ones repeat the same fold bug
					}
				}()
				sc := pathScratchPool.Get().(*pathScratch)
				sc.gather(res.RecordIDs, plans[pi])
				vals := newVals()
				perPath[pi] = foldGathered(k, vals, sc)
				res.Values[pi] = vals
				pathScratchPool.Put(sc)
			}(pi)
		}
		wg.Wait()
		if r := panicked.Load(); r != nil {
			panic(r) // surface the worker's fault on the query goroutine, where callers can recover
		}
		for _, c := range perPath {
			scanned += c
		}
	} else {
		sc := pathScratchPool.Get().(*pathScratch)
		for _, p := range paths {
			if err := e.checkCtx(ctx, tr); err != nil {
				pathScratchPool.Put(sc)
				return nil, err
			}
			if tr != nil {
				tr.Begin(obs.PhasePlan, e.ioNow()) // cover the path with agg views
			}
			var counts [2]int
			sc.planned, counts, err = planPath(sc.planned[:0], p)
			if err != nil {
				pathScratchPool.Put(sc)
				return nil, err
			}
			sc.gather(res.RecordIDs, sc.planned)
			if tr != nil {
				tr.Begin(obs.PhaseAggregate, e.ioNow())
			}
			vals := newVals()
			scanned += foldGathered(k, vals, sc)
			res.Values = append(res.Values, vals)
			res.SegmentsPerPath = append(res.SegmentsPerPath, counts)
		}
		pathScratchPool.Put(sc)
	}

	e.Rel.AccountMeasuresScanned(scanned)
	spanEdges := make([]colstore.EdgeID, 0, len(measureCols))
	for id := range measureCols {
		spanEdges = append(spanEdges, id)
	}
	e.Rel.JoinPartitions(e.Rel.PartitionSpan(spanEdges), answer)
	if err := e.Rel.PageError(); err != nil {
		// A paged column's block fault failed mid-scan. The gathered values
		// contain zeros standing in for unread data, so the whole answer is
		// suspect — fail the query instead of returning silently wrong folds.
		return nil, err
	}
	return res, nil
}

// --- scalar path aggregation --------------------------------------------------

// ScalarAggResult is the answer of ExecutePathAggScalar: one aggregate value
// folded across every answer record and every maximal path, rather than the
// per-record × per-path matrix of AggResult.
type ScalarAggResult struct {
	Query *PathAggQuery
	// Value is Fold applied over every non-NULL per-record path aggregate, in
	// record order; NaN when no record contributed (empty answer, or every
	// record folded to NULL).
	Value float64
	// Records is the structural answer cardinality.
	Records int
	// Folded is how many values entered the scalar fold: measure values
	// examined by the zone-skipping scan, or non-NULL per-record aggregates
	// when the general row plan answered the query.
	Folded int
	// BlocksScanned and BlocksSkipped count paged storage blocks that were
	// decoded and folded vs. proven irrelevant by their zone maps. Both are 0
	// when the general row plan answered the query.
	BlocksScanned int
	BlocksSkipped int
	// ZoneSkipped reports whether the zone-skipping scalar plan ran. False
	// means the query was ineligible (not MIN/MAX, multi-segment paths, or
	// node measures) and the general per-record plan computed the answer.
	ZoneSkipped bool
}

// ExecutePathAggScalar evaluates a path aggregation and folds it all the way
// down to one scalar: Fold across the per-record path aggregates of every
// answer record. For MIN/MAX queries whose maximal paths each cover to a
// single segment (one raw edge, or one aggregate view spanning the whole
// path) and that touch no node measures, it runs a zone-skipping scan:
// per-block zone maps prove most blocks cannot tighten the accumulator and
// those blocks are never decoded — or even read from disk on a paged store.
// Every other query falls back to the general per-record plan and folds its
// result, so the scalar answer is always exactly Fold over
// AggResult.FoldAcrossPaths() in record order, bit for bit.
func (e *Engine) ExecutePathAggScalar(q *PathAggQuery) (*ScalarAggResult, error) {
	return e.ExecutePathAggScalarContext(context.Background(), q)
}

// ExecutePathAggScalarContext is ExecutePathAggScalar with cancellation,
// checked between bitmap fetches of the structural phase.
func (e *Engine) ExecutePathAggScalarContext(ctx context.Context, q *PathAggQuery) (*ScalarAggResult, error) {
	var start time.Time
	if e.metrics != nil || e.slow != nil {
		start = time.Now()
	}
	var slowIO obs.IODelta
	if e.slow != nil {
		slowIO = e.ioNow()
	}
	var tr *obs.ActiveTrace
	if e.traces != nil {
		tr = obs.StartTrace(obs.KindPathAgg, q.String(), e.ioNow())
		tr.SetShard(e.shardID)
	}
	res, err := e.executePathAggScalar(ctx, q, tr)
	if tr != nil {
		e.traces.Add(tr.Finish(e.ioNow()))
	}
	if e.metrics != nil && err == nil {
		e.metrics.Record(obs.KindPathAgg, time.Since(start))
	}
	if e.slow != nil {
		e.slowObserve(obs.KindPathAgg, q.String(), start, slowIO, false, err)
	}
	return res, err
}

func (e *Engine) executePathAggScalar(ctx context.Context, q *PathAggQuery, tr *obs.ActiveTrace) (*ScalarAggResult, error) {
	if q == nil || q.G == nil || q.G.NumElements() == 0 {
		return nil, fmt.Errorf("query: empty path aggregation query")
	}
	if q.Agg.Fold == nil || q.Agg.Lift == nil {
		return nil, fmt.Errorf("query: aggregation function not set")
	}
	e.Rel.BeginRead() //grovevet:ignore lockorder paged measure scans fault value blocks from disk under the read lock by design: readers proceed concurrently, and the aggregate must fold the same cut the filter matched
	defer e.Rel.EndRead()
	paths := q.Paths
	if len(paths) == 0 {
		if tr != nil {
			tr.Begin(obs.PhasePlan, e.ioNow())
		}
		var err error
		paths, err = gpath.MaximalPaths(q.G)
		if err != nil {
			return nil, err
		}
	}
	isMin := q.Agg.Name == agg.Min.Name

	// Eligibility for the zone-skipping plan: the fold must be MIN or MAX
	// (only those have a "cannot tighten the accumulator" proof from a
	// [min,max] zone), every path must cover to exactly one segment (a
	// multi-segment path folds per record, where one missing segment NULLs
	// the whole record — a property no single column's zones can express),
	// and no path may carry node measures (they enter per-record folds as
	// optional operands, same problem). Decided before any column is fetched,
	// so an ineligible query pays nothing extra on its way to the row plan.
	eligible := isMin || q.Agg.Name == agg.Max.Name
	var plans []pathSegment // the single segment of each path, in path order
	if eligible {
		unknown := make(map[graph.EdgeKey]colstore.EdgeID)
	plan:
		for _, p := range paths {
			for _, nk := range p.MeasuredNodes() {
				if id, ok := e.Reg.Lookup(graph.NodeKey(nk)); ok && e.Rel.MeasureColumn(id) != nil {
					eligible = false
					break plan
				}
			}
			ids := make([]colstore.EdgeID, 0, p.Len())
			for _, ek := range p.Edges() {
				id, ok := e.Reg.Lookup(ek)
				if !ok {
					id, ok = unknown[ek]
					if !ok {
						id = colstore.EdgeID(uint32(e.Reg.Len()) + uint32(len(unknown)) + 1<<24)
						unknown[ek] = id
					}
				}
				ids = append(ids, id)
			}
			segs := coverPath(e.Rel, ids, q.Agg.Name, q.Measure, e.UseViews)
			if len(segs) != 1 {
				eligible = false
				break plan
			}
			plans = append(plans, segs[0])
		}
	}
	if !eligible {
		res, err := e.executePathAggLocked(ctx, q, tr)
		if err != nil {
			return nil, err
		}
		out := &ScalarAggResult{Query: q, Records: len(res.RecordIDs)}
		acc := q.Agg.Identity
		folded := 0
		for _, v := range res.FoldAcrossPaths() {
			if !math.IsNaN(v) {
				acc = q.Agg.Fold(acc, v)
				folded++
			}
		}
		if folded == 0 {
			acc = math.NaN()
		}
		out.Value = acc
		out.Folded = folded
		return out, nil
	}

	structural, err := e.executeGraphQueryLocked(ctx, &GraphQuery{G: q.G}, tr)
	if err != nil {
		return nil, err
	}
	// Fetch the one column of each path (nil when the segment's column does
	// not exist: every record then folds to NULL on that path and it
	// contributes nothing to the scalar).
	if tr != nil {
		tr.Begin(obs.PhaseMeasureScan, e.ioNow())
	}
	cols := make([]*colstore.MeasureColumn, 0, len(plans))
	var spanEdges []colstore.EdgeID
	fetched := make(map[colstore.EdgeID]*colstore.MeasureColumn)
	fetchedViews := make(map[string]*colstore.MeasureColumn)
	for _, s := range plans {
		var col *colstore.MeasureColumn
		if s.ViewName != "" {
			c, ok := fetchedViews[s.ViewName]
			if !ok {
				var err error
				c, err = e.Rel.FetchAggViewMeasure(s.ViewName)
				if err != nil {
					return nil, err
				}
				fetchedViews[s.ViewName] = c
			}
			col = c
		} else {
			c, ok := fetched[s.Edge]
			if !ok {
				c = e.Rel.FetchMeasureColumnNamed(s.Edge, q.Measure)
				fetched[s.Edge] = c
				if c != nil {
					spanEdges = append(spanEdges, s.Edge)
				}
			}
			col = c
		}
		cols = append(cols, col)
	}

	answer := structural.Answer
	out := &ScalarAggResult{Query: q, Records: answer.Cardinality(), ZoneSkipped: true}
	if tr != nil {
		tr.Begin(obs.PhaseBlockSkip, e.ioNow())
	}
	scratch := recsPool.Get().(*[]uint32)
	recs := answer.AppendInto((*scratch)[:0])
	acc := q.Agg.Identity
	for _, col := range cols {
		if col == nil {
			continue
		}
		a, f, s, sk := col.AggregateSkip(recs, acc, isMin)
		acc = a
		out.Folded += f
		out.BlocksScanned += s
		out.BlocksSkipped += sk
	}
	*scratch = recs[:0]
	recsPool.Put(scratch)
	if out.Folded == 0 {
		acc = math.NaN()
	}
	out.Value = acc
	e.Rel.AccountMeasuresScanned(out.Folded)
	e.Rel.JoinPartitions(e.Rel.PartitionSpan(spanEdges), answer)
	if err := e.Rel.PageError(); err != nil {
		return nil, err
	}
	return out, nil
}
