package query

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"grove/internal/bitmap"
	"grove/internal/colstore"
	"grove/internal/gpath"
	"grove/internal/graph"
	"grove/internal/obs"
)

// Engine executes graph queries over a master relation. UseViews controls
// whether the planner rewrites queries against materialized views (§5.3) or
// runs the view-oblivious plan; the Fig. 6–8 experiments compare the two.
//
// Query execution is safe for concurrent use (per-query scratch comes from
// a pool); mutating the exported fields or EnableCache concurrently with
// queries is not.
type Engine struct {
	Rel      *colstore.Relation
	Reg      *graph.Registry
	UseViews bool

	// cache, when set, memoizes structural answers across repeated queries
	// (invalidated wholesale on any relation mutation).
	cache *ResultCache

	// metrics, when set, records per-query counters and latency histograms
	// (allocation-free). traces, when set, records a span-based lifecycle
	// trace per query into the ring (one allocation per query plus span
	// appends). Both default to nil: the disabled path costs two nil checks
	// and nothing else. Set them before serving queries (like EnableCache,
	// mutating mid-flight is not synchronized).
	metrics *obs.QueryMetrics
	traces  *obs.TraceRing
}

// bmsPool recycles the operand slices of the structural AND phase across
// queries and goroutines, so executing a query allocates O(1) bitmaps
// regardless of plan width.
var bmsPool = sync.Pool{New: func() any { return new([]*bitmap.Bitmap) }}

// NewEngine returns a view-aware engine.
func NewEngine(rel *colstore.Relation, reg *graph.Registry) *Engine {
	return &Engine{Rel: rel, Reg: reg, UseViews: true}
}

// Clone returns an engine sharing rel, registry, view setting, result cache
// and observability hooks with e, but with its own scratch — safe to use
// from another goroutine concurrently with e.
func (e *Engine) Clone() *Engine {
	return &Engine{Rel: e.Rel, Reg: e.Reg, UseViews: e.UseViews, cache: e.cache,
		metrics: e.metrics, traces: e.traces}
}

// SetMetrics attaches a metrics bundle (nil disables). Attach before
// serving queries.
func (e *Engine) SetMetrics(m *obs.QueryMetrics) { e.metrics = m }

// SetTraces attaches a trace ring recording one lifecycle trace per query
// (nil disables). Attach before serving queries.
func (e *Engine) SetTraces(t *obs.TraceRing) { e.traces = t }

// Traces returns the attached trace ring (nil when tracing is disabled).
func (e *Engine) Traces() *obs.TraceRing { return e.traces }

// Cache returns the attached result cache (nil when caching is disabled).
func (e *Engine) Cache() *ResultCache { return e.cache }

// ioNow converts the relation tracker's cumulative counters into the obs
// package's I/O shape. Only called on traced paths: six atomic loads.
func (e *Engine) ioNow() obs.IODelta {
	s := e.Rel.Tracker().Snapshot()
	return obs.IODelta{
		BitmapColumnsFetched:  int64(s.BitmapColumnsFetched),
		MeasureColumnsFetched: int64(s.MeasureColumnsFetched),
		MeasuresScanned:       s.MeasuresScanned,
		BytesRead:             s.BytesRead,
		PartitionJoins:        s.PartitionJoins,
		RecordsReturned:       s.RecordsReturned,
	}
}

// queryEdgeIDs resolves the structural elements of a query graph to edge
// ids. Elements unknown to the registry resolve to a sentinel id that has an
// empty bitmap, so queries referencing never-seen elements return empty
// answers (after paying for the fetch, as a real column store would).
func (e *Engine) queryEdgeIDs(g *graph.Graph) []colstore.EdgeID {
	elems := g.Elements()
	out := make([]colstore.EdgeID, 0, len(elems))
	seen := make(map[colstore.EdgeID]struct{}, len(elems))
	for _, k := range elems {
		id, ok := e.Reg.Lookup(k)
		if !ok {
			// Stable unseen id outside the registered range.
			id = colstore.EdgeID(uint32(e.Reg.Len()) + uint32(len(out)) + 1<<24)
		}
		if _, dup := seen[id]; !dup {
			seen[id] = struct{}{}
			out = append(out, id)
		}
	}
	return out
}

// Result is the structural answer of a graph query: the set of matching
// record ids, plus the plan that produced it. Measures are fetched
// separately (FetchMeasures) so experiments can time the two phases the way
// Figs. 6–7 break them down.
type Result struct {
	Query  *GraphQuery
	Plan   CoverPlan
	Answer *bitmap.Bitmap

	eng    *Engine
	cached bool
}

// FromCache reports whether the answer was served from the result cache.
func (r *Result) FromCache() bool { return r.cached }

// NumRecords returns the answer cardinality.
func (r *Result) NumRecords() int { return r.Answer.Cardinality() }

// ExecuteGraphQuery evaluates the structural part of a graph query:
// plan (greedy rewrite when UseViews), fetch the planned bitmap columns, AND
// them (§4.2). The relation's read lock is held for the whole query, so the
// answer — and any cache entry made from it — is consistent with a single
// relation version even while writers run concurrently.
func (e *Engine) ExecuteGraphQuery(q *GraphQuery) (*Result, error) {
	if q == nil || q.G == nil || q.G.NumElements() == 0 {
		return nil, fmt.Errorf("query: empty graph query")
	}
	var start time.Time
	if e.metrics != nil {
		start = time.Now()
	}
	var tr *obs.ActiveTrace
	if e.traces != nil {
		tr = obs.StartTrace(obs.KindGraph, q.String(), e.ioNow())
	}
	e.Rel.BeginRead()
	res, err := e.executeGraphQueryLocked(q, tr)
	e.Rel.EndRead()
	if tr != nil {
		e.traces.Add(tr.Finish(e.ioNow()))
	}
	if e.metrics != nil && err == nil {
		e.metrics.Record(obs.KindGraph, time.Since(start))
	}
	return res, err
}

// executeGraphQueryLocked is ExecuteGraphQuery with the relation read lock
// already held (BeginRead is not reentrant, so compound executions — path
// aggregation, boolean expressions — route through this). tr, when non-nil,
// receives the plan/fetch/intersect lifecycle spans.
func (e *Engine) executeGraphQueryLocked(q *GraphQuery, tr *obs.ActiveTrace) (*Result, error) {
	universe := e.queryEdgeIDs(q.G)
	// Read under the lock: the version cannot move while we hold it, so the
	// cache entry written below is tagged with exactly the version whose
	// data produced the answer.
	version := e.Rel.Version()
	var key string
	if e.cache != nil {
		if tr != nil {
			tr.Begin(obs.PhaseCache, e.ioNow())
		}
		key = cacheKey(universe)
		if answer := e.cache.get(version, key); answer != nil {
			e.Rel.AccountRecordsReturned(answer.Cardinality())
			if tr != nil {
				tr.SetCached()
			}
			return &Result{Query: q, Plan: CoverPlan{}, Answer: answer, eng: e, cached: true}, nil
		}
	}
	if tr != nil {
		tr.Begin(obs.PhasePlan, e.ioNow())
	}
	var plan CoverPlan
	if e.UseViews {
		plan = PlanCover(e.Rel, universe)
	} else {
		plan = PlanWithoutViews(universe)
	}

	if tr != nil {
		tr.Begin(obs.PhaseFetch, e.ioNow())
	}
	scratch := bmsPool.Get().(*[]*bitmap.Bitmap)
	bms := (*scratch)[:0]
	for _, name := range plan.Views {
		b, err := e.Rel.FetchViewBitmap(name)
		if err != nil {
			bmsPool.Put(scratch)
			return nil, err
		}
		bms = append(bms, b)
	}
	for _, name := range plan.AggViews {
		b, err := e.Rel.FetchAggViewBitmap(name)
		if err != nil {
			bmsPool.Put(scratch)
			return nil, err
		}
		bms = append(bms, b)
	}
	for _, id := range plan.Edges {
		bms = append(bms, e.Rel.FetchEdgeBitmap(id))
	}
	if tr != nil {
		tr.Begin(obs.PhaseIntersect, e.ioNow())
	}
	// The conjunction intersects into one fresh destination the caller (and
	// the cache) owns; the fetched column bitmaps are never mutated.
	answer := e.Rel.MaskDeleted(bitmap.AndAllInto(bitmap.New(), bms...))
	for i := range bms {
		bms[i] = nil // don't pin column bitmaps from the pool
	}
	*scratch = bms[:0]
	bmsPool.Put(scratch)
	if e.cache != nil {
		e.cache.put(version, key, answer)
	}
	e.Rel.AccountRecordsReturned(answer.Cardinality())
	return &Result{Query: q, Plan: plan, Answer: answer, eng: e}, nil
}

// FetchMeasures materializes the measures of the matched subgraph for every
// answer record (the mandatory lower part of the Fig. 6 time breakdown).
// It fetches the measure column of every query element, reads the value for
// each answer record, and accounts the cross-partition record reassembly
// joins (§6.1). It returns the number of measure values read.
func (r *Result) FetchMeasures() int64 {
	if r.Answer.IsEmpty() {
		return 0 // nothing qualified; no measure columns are read
	}
	e := r.eng
	e.Rel.BeginRead()
	defer e.Rel.EndRead()
	elems := r.Query.G.Elements()
	recs := r.Answer.ToSlice()
	var scanned int64
	var spanEdges []colstore.EdgeID
	var sink float64
	names := append([]string{""}, e.Rel.MeasureNames()...)
	for _, k := range elems {
		id, ok := e.Reg.Lookup(k)
		if !ok {
			continue
		}
		spanned := false
		for _, name := range names {
			if name != "" && e.Rel.MeasureColumnNamed(id, name) == nil {
				continue // column does not exist for this edge; nothing read
			}
			col := e.Rel.FetchMeasureColumnNamed(id, name)
			if col == nil {
				continue
			}
			if !spanned {
				spanEdges = append(spanEdges, id)
				spanned = true
			}
			values, present := col.ValuesFor(recs)
			for i, has := range present {
				if has {
					sink += values[i]
					scanned++
				}
			}
		}
	}
	_ = sink
	e.Rel.AccountMeasuresScanned(int(scanned))
	e.Rel.JoinPartitions(e.Rel.PartitionSpan(spanEdges), r.Answer)
	return scanned
}

// EvalExpr evaluates a boolean combination of graph queries (§3.2) and
// returns the combined answer set. The whole expression runs under one read
// lock, so all leaves see the same relation version.
func (e *Engine) EvalExpr(expr Expr) (*bitmap.Bitmap, error) {
	var start time.Time
	if e.metrics != nil {
		start = time.Now()
	}
	var tr *obs.ActiveTrace
	if e.traces != nil {
		tr = obs.StartTrace(obs.KindExpr, expr.String(), e.ioNow())
	}
	e.Rel.BeginRead()
	b, err := e.evalExprLocked(expr, tr)
	e.Rel.EndRead()
	if tr != nil {
		e.traces.Add(tr.Finish(e.ioNow()))
	}
	if e.metrics != nil && err == nil {
		e.metrics.Record(obs.KindExpr, time.Since(start))
	}
	return b, err
}

func (e *Engine) evalExprLocked(expr Expr, tr *obs.ActiveTrace) (*bitmap.Bitmap, error) {
	switch x := expr.(type) {
	case Leaf:
		res, err := e.executeGraphQueryLocked(x.Q, tr)
		if err != nil {
			return nil, err
		}
		return res.Answer, nil
	case And:
		if len(x.Operands) == 0 {
			return nil, fmt.Errorf("query: AND with no operands")
		}
		acc, err := e.evalExprLocked(x.Operands[0], tr)
		if err != nil {
			return nil, err
		}
		for _, op := range x.Operands[1:] {
			b, err := e.evalExprLocked(op, tr)
			if err != nil {
				return nil, err
			}
			if tr != nil {
				tr.Begin(obs.PhaseIntersect, e.ioNow())
			}
			acc = acc.And(b)
		}
		return acc, nil
	case Or:
		if len(x.Operands) == 0 {
			return nil, fmt.Errorf("query: OR with no operands")
		}
		acc, err := e.evalExprLocked(x.Operands[0], tr)
		if err != nil {
			return nil, err
		}
		for _, op := range x.Operands[1:] {
			b, err := e.evalExprLocked(op, tr)
			if err != nil {
				return nil, err
			}
			if tr != nil {
				tr.Begin(obs.PhaseIntersect, e.ioNow())
			}
			acc = acc.Or(b)
		}
		return acc, nil
	case Diff:
		a, err := e.evalExprLocked(x.A, tr)
		if err != nil {
			return nil, err
		}
		b, err := e.evalExprLocked(x.B, tr)
		if err != nil {
			return nil, err
		}
		if tr != nil {
			tr.Begin(obs.PhaseIntersect, e.ioNow())
		}
		return a.AndNot(b), nil
	default:
		return nil, fmt.Errorf("query: unknown expression node %T", expr)
	}
}

// --- path aggregation ---------------------------------------------------------

// pathSegment is one covered stretch of a query path: either a materialized
// aggregate view (ViewName != "") or a single raw edge.
type pathSegment struct {
	ViewName string
	Edge     colstore.EdgeID
	Length   int // edges covered
}

// AggResult holds a path aggregation answer: for every maximal path of the
// query graph and every answer record, the folded aggregate. Values[p][i] is
// aligned with RecordIDs[i]; NaN marks NULL (some measure missing).
type AggResult struct {
	Query     *PathAggQuery
	Answer    *bitmap.Bitmap
	RecordIDs []uint32
	Paths     []gpath.Path
	Values    [][]float64

	// SegmentsPerPath records how each path was covered, for plan inspection
	// and tests: counts of (view segments, raw edge segments).
	SegmentsPerPath [][2]int
}

// FoldAcrossPaths consolidates the per-path aggregates of each record with
// the query's Fold (e.g. MAX over all routes, as in Q3). NULL paths are
// skipped; a record with no non-NULL path folds to NaN.
func (r *AggResult) FoldAcrossPaths() []float64 {
	out := make([]float64, len(r.RecordIDs))
	for i := range out {
		acc := r.Query.Agg.Identity
		any := false
		for p := range r.Paths {
			v := r.Values[p][i]
			if !math.IsNaN(v) {
				acc = r.Query.Agg.Fold(acc, v)
				any = true
			}
		}
		if any {
			out[i] = acc
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}

// coverPath covers a path's edge sequence with materialized aggregate views
// of the same function (longest match at each position), falling back to raw
// edges — the measure-side rewriting of §5.1.2. Views are matched on their
// exact edge sequence so stored folds compose correctly.
func coverPath(rel *colstore.Relation, pathEdges []colstore.EdgeID, funcName, measureName string, useViews bool) []pathSegment {
	var views []*colstore.AggregateView
	if useViews {
		for _, v := range rel.AggViews() {
			if v.Func == funcName && v.MeasureName == measureName && len(v.Path) <= len(pathEdges) {
				views = append(views, v)
			}
		}
		sort.Slice(views, func(i, j int) bool {
			if len(views[i].Path) != len(views[j].Path) {
				return len(views[i].Path) > len(views[j].Path) // longest first
			}
			return views[i].Name < views[j].Name
		})
	}
	var out []pathSegment
	for i := 0; i < len(pathEdges); {
		matched := false
		for _, v := range views {
			if i+len(v.Path) > len(pathEdges) {
				continue
			}
			ok := true
			for j, e := range v.Path {
				if pathEdges[i+j] != e {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, pathSegment{ViewName: v.Name, Length: len(v.Path)})
				i += len(v.Path)
				matched = true
				break
			}
		}
		if !matched {
			out = append(out, pathSegment{Edge: pathEdges[i], Length: 1})
			i++
		}
	}
	return out
}

// ExecutePathAggQuery evaluates F_Gq (§3.4): structural filtering as for a
// graph query, then per-record aggregation along every maximal path, folding
// stored aggregate-view values where the path is covered by views.
func (e *Engine) ExecutePathAggQuery(q *PathAggQuery) (*AggResult, error) {
	var start time.Time
	if e.metrics != nil {
		start = time.Now()
	}
	var tr *obs.ActiveTrace
	if e.traces != nil {
		tr = obs.StartTrace(obs.KindPathAgg, q.String(), e.ioNow())
	}
	res, err := e.executePathAggQuery(q, tr)
	if tr != nil {
		e.traces.Add(tr.Finish(e.ioNow()))
	}
	if e.metrics != nil && err == nil {
		e.metrics.Record(obs.KindPathAgg, time.Since(start))
	}
	return res, err
}

// executePathAggQuery is the body of ExecutePathAggQuery, with lifecycle
// spans recorded on tr when tracing is enabled.
func (e *Engine) executePathAggQuery(q *PathAggQuery, tr *obs.ActiveTrace) (*AggResult, error) {
	if q == nil || q.G == nil || q.G.NumElements() == 0 {
		return nil, fmt.Errorf("query: empty path aggregation query")
	}
	if q.Agg.Fold == nil || q.Agg.Lift == nil {
		return nil, fmt.Errorf("query: aggregation function not set")
	}
	// One read lock spans the structural filter and the measure scans, so
	// the aggregates are computed over exactly the records the filter saw.
	e.Rel.BeginRead()
	defer e.Rel.EndRead()
	structural, err := e.executeGraphQueryLocked(&GraphQuery{G: q.G}, tr)
	if err != nil {
		return nil, err
	}
	paths := q.Paths
	if len(paths) == 0 {
		if tr != nil {
			tr.Begin(obs.PhasePlan, e.ioNow())
		}
		paths, err = gpath.MaximalPaths(q.G)
		if err != nil {
			return nil, err
		}
	}
	answer := structural.Answer
	res := &AggResult{
		Query:     q,
		Answer:    answer,
		RecordIDs: answer.ToSlice(),
		Paths:     paths,
	}

	// Column caches so shared segments across paths are fetched once.
	measureCols := make(map[colstore.EdgeID]*colstore.MeasureColumn)
	viewCols := make(map[string]*colstore.MeasureColumn)
	fetchMeasure := func(id colstore.EdgeID) *colstore.MeasureColumn {
		if c, ok := measureCols[id]; ok {
			return c
		}
		c := e.Rel.FetchMeasureColumnNamed(id, q.Measure)
		measureCols[id] = c
		return c
	}
	fetchView := func(name string) (*colstore.MeasureColumn, error) {
		if c, ok := viewCols[name]; ok {
			return c, nil
		}
		c, err := e.Rel.FetchAggViewMeasure(name)
		if err != nil {
			return nil, err
		}
		viewCols[name] = c
		return c, nil
	}

	scanned := 0
	for _, p := range paths {
		if tr != nil {
			tr.Begin(obs.PhasePlan, e.ioNow()) // cover the path with agg views
		}
		ids := make([]colstore.EdgeID, 0, p.Len())
		for _, k := range p.Edges() {
			id, ok := e.Reg.Lookup(k)
			if !ok {
				id = colstore.EdgeID(1<<24) + colstore.EdgeID(e.Reg.Len())
			}
			ids = append(ids, id)
		}
		segs := coverPath(e.Rel, ids, q.Agg.Name, q.Measure, e.UseViews)
		viewSegs, rawSegs := 0, 0
		if tr != nil {
			tr.Begin(obs.PhaseMeasureScan, e.ioNow())
		}

		// Resolve the columns each segment reads and batch-read them
		// column-at-a-time over the answer set.
		type boundSeg struct {
			values  []float64
			present []bool
			isView  bool
		}
		bind := func(col *colstore.MeasureColumn, isView bool) boundSeg {
			if col == nil {
				return boundSeg{isView: isView}
			}
			v, pr := col.ValuesFor(res.RecordIDs)
			return boundSeg{values: v, present: pr, isView: isView}
		}
		bound := make([]boundSeg, 0, len(segs))
		for _, s := range segs {
			if s.ViewName != "" {
				c, err := fetchView(s.ViewName)
				if err != nil {
					return nil, err
				}
				bound = append(bound, bind(c, true))
				viewSegs++
			} else {
				bound = append(bound, bind(fetchMeasure(s.Edge), false))
				rawSegs++
			}
		}
		// Node-measure columns (when the application measured nodes).
		var nodeCols []boundSeg
		for _, n := range p.MeasuredNodes() {
			if id, ok := e.Reg.Lookup(graph.NodeKey(n)); ok {
				if e.Rel.MeasureColumn(id) != nil {
					nodeCols = append(nodeCols, bind(fetchMeasure(id), false))
				}
			}
		}

		if tr != nil {
			tr.Begin(obs.PhaseAggregate, e.ioNow())
		}
		vals := make([]float64, len(res.RecordIDs))
		for i := range res.RecordIDs {
			acc := q.Agg.Identity
			null := false
			for _, bs := range bound {
				if bs.values == nil || !bs.present[i] {
					null = true
					break
				}
				if bs.isView {
					acc = q.Agg.Fold(acc, bs.values[i]) // stored partial fold
				} else {
					acc = q.Agg.Fold(acc, q.Agg.Lift(bs.values[i]))
				}
				scanned++
			}
			if !null {
				for _, nc := range nodeCols {
					if nc.values != nil && nc.present[i] {
						acc = q.Agg.Fold(acc, q.Agg.Lift(nc.values[i]))
						scanned++
					}
				}
				vals[i] = acc
			} else {
				vals[i] = math.NaN()
			}
		}
		res.Values = append(res.Values, vals)
		res.SegmentsPerPath = append(res.SegmentsPerPath, [2]int{viewSegs, rawSegs})
	}

	e.Rel.AccountMeasuresScanned(scanned)
	spanEdges := make([]colstore.EdgeID, 0, len(measureCols))
	for id := range measureCols {
		spanEdges = append(spanEdges, id)
	}
	e.Rel.JoinPartitions(e.Rel.PartitionSpan(spanEdges), answer)
	return res, nil
}
