package query

import (
	"strings"
	"testing"
)

func TestParsePathQuery(t *testing.T) {
	st, err := Parse("[A,D,E]")
	if err != nil {
		t.Fatal(err)
	}
	if st.Agg != nil {
		t.Fatal("path query parsed as aggregation")
	}
	leaf, ok := st.Expr.(Leaf)
	if !ok {
		t.Fatalf("Expr = %T", st.Expr)
	}
	if !leaf.Q.G.HasEdge("A", "D") || !leaf.Q.G.HasEdge("D", "E") {
		t.Errorf("parsed edges: %v", leaf.Q.G.Elements())
	}
}

func TestParseBooleanOps(t *testing.T) {
	cases := map[string]string{
		"[A,B] AND [C,D]":            "(Gq{(A,B)} AND Gq{(C,D)})",
		"[A,B] OR [C,D]":             "(Gq{(A,B)} OR Gq{(C,D)})",
		"[A,B] AND NOT [C,D]":        "(Gq{(A,B)} AND NOT Gq{(C,D)})",
		"[A,B] AND [C,D] AND [E,F]":  "(Gq{(A,B)} AND Gq{(C,D)} AND Gq{(E,F)})",
		"([A,B] OR [C,D]) AND [E,F]": "((Gq{(A,B)} OR Gq{(C,D)}) AND Gq{(E,F)})",
		"[A,B] and not [C,D]":        "(Gq{(A,B)} AND NOT Gq{(C,D)})", // case-insensitive
	}
	for input, want := range cases {
		st, err := Parse(input)
		if err != nil {
			t.Errorf("Parse(%q): %v", input, err)
			continue
		}
		if got := st.Expr.String(); got != want {
			t.Errorf("Parse(%q) = %s, want %s", input, got, want)
		}
	}
}

func TestParseAggregation(t *testing.T) {
	st, err := Parse("SUM [A,D,E,G,I]")
	if err != nil {
		t.Fatal(err)
	}
	if st.Agg == nil {
		t.Fatal("aggregation parsed as expression")
	}
	if st.Agg.Agg.Name != "SUM" || st.Agg.Measure != "" {
		t.Errorf("Agg = %+v", st.Agg)
	}
	if st.Agg.G.NumElements() != 4 {
		t.Errorf("path edges = %d", st.Agg.G.NumElements())
	}
}

func TestParseAggregationWithMeasure(t *testing.T) {
	st, err := Parse("max<cost> [C,H]")
	if err != nil {
		t.Fatal(err)
	}
	if st.Agg == nil || st.Agg.Agg.Name != "MAX" || st.Agg.Measure != "cost" {
		t.Fatalf("Agg = %+v", st.Agg)
	}
}

func TestParseNodeNameCharacters(t *testing.T) {
	st, err := Parse("[Received#2,n_1.a-b]")
	if err != nil {
		t.Fatal(err)
	}
	leaf := st.Expr.(Leaf)
	if !leaf.Q.G.HasEdge("Received#2", "n_1.a-b") {
		t.Errorf("edges = %v", leaf.Q.G.Elements())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"[A]",             // single node
		"[A,B",            // unclosed path
		"A,B]",            // missing open bracket
		"[A,B] AND",       // dangling operator
		"[A,B] [C,D]",     // juxtaposition
		"([A,B]",          // unclosed paren
		"[A,B] XOR [C,D]", // unknown operator
		"SUM",             // aggregation without path
		"SUM<cost [A,B]",  // unclosed measure
		"SUM<> [A,B]",     // empty measure
		"[A,B,A]",         // repeated node
		"[A;B]",           // bad rune
		"[A,B] AND NOT",   // dangling NOT
		"MEDIAN2 [A,B] ]", // trailing token after expr
		"SUM [A,B] [C,D]", // trailing path after agg
	}
	for _, input := range cases {
		if _, err := Parse(input); err == nil {
			t.Errorf("Parse(%q) accepted", input)
		}
	}
}

func TestParseEvalEndToEnd(t *testing.T) {
	f := newFig2Fixture(t)
	st, err := Parse("[A,D,E] AND NOT [E,F]")
	if err != nil {
		t.Fatal(err)
	}
	ids, err := f.eng.EvalExpr(st.Expr)
	if err != nil {
		t.Fatal(err)
	}
	// All three records contain (A,D),(D,E); r2, r3 contain (E,F) → r1 only.
	if got := ids.ToSlice(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("answer = %v, want [0]", got)
	}

	agg, err := Parse("SUM [A,C,E,F]")
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.eng.ExecutePathAggQuery(agg.Agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RecordIDs) != 1 || res.Values[0][0] != 7 {
		t.Fatalf("SUM result = %v / %v", res.RecordIDs, res.Values)
	}
}

func TestParseKeywordsNotNodes(t *testing.T) {
	// AND/OR inside a path are node names (paths are bracketed), outside
	// they are operators.
	st, err := Parse("[AND,OR]")
	if err != nil {
		t.Fatal(err)
	}
	leaf := st.Expr.(Leaf)
	if !leaf.Q.G.HasEdge("AND", "OR") {
		t.Errorf("edges = %v", leaf.Q.G.Elements())
	}
	if _, err := Parse(strings.Repeat("[A,B] AND ", 3) + "[C,D]"); err != nil {
		t.Errorf("chained ANDs rejected: %v", err)
	}
}
