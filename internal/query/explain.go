package query

import (
	"fmt"
	"strings"

	"grove/internal/graph"
)

// Explanation describes how a graph query would be executed: the §5.3
// rewriting outcome and the cost-model figures, without running the query.
type Explanation struct {
	// Universe is the number of distinct query edges.
	Universe int
	// Views / AggViews are the materialized views the rewriter would use.
	Views    []string
	AggViews []string
	// ResidualEdges is the number of single-edge bitmaps still needed.
	ResidualEdges int
	// BitmapsFetched is the structural I/O cost (the paper's unit).
	BitmapsFetched int
	// BitmapsSaved is the reduction versus the view-oblivious plan.
	BitmapsSaved int
	// Partitions is how many sub-relations the query's columns span.
	Partitions int
	// UnknownElements lists query elements never seen by the store; their
	// empty bitmaps force an empty answer.
	UnknownElements []string
}

func (ex Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "universe: %d edges\n", ex.Universe)
	fmt.Fprintf(&b, "plan: %d bitmap fetch(es) = %d view(s) + %d aggregate-view filter(s) + %d edge bitmap(s)\n",
		ex.BitmapsFetched, len(ex.Views), len(ex.AggViews), ex.ResidualEdges)
	if len(ex.Views) > 0 {
		fmt.Fprintf(&b, "views: %s\n", strings.Join(ex.Views, " "))
	}
	if len(ex.AggViews) > 0 {
		fmt.Fprintf(&b, "aggregate views: %s\n", strings.Join(ex.AggViews, " "))
	}
	fmt.Fprintf(&b, "saved vs oblivious plan: %d bitmap fetch(es)\n", ex.BitmapsSaved)
	fmt.Fprintf(&b, "partitions spanned: %d\n", ex.Partitions)
	if len(ex.UnknownElements) > 0 {
		fmt.Fprintf(&b, "WARNING: unknown elements (answer will be empty): %s\n",
			strings.Join(ex.UnknownElements, " "))
	}
	return b.String()
}

// Explain computes the execution plan for a graph query without executing
// it and without touching the I/O accounting.
func (e *Engine) Explain(q *GraphQuery) (Explanation, error) {
	if q == nil || q.G == nil || q.G.NumElements() == 0 {
		return Explanation{}, fmt.Errorf("query: empty graph query")
	}
	var unknown []string
	for _, k := range q.G.Elements() {
		if _, ok := e.Reg.Lookup(k); !ok {
			unknown = append(unknown, k.String())
		}
	}
	universe := e.queryEdgeIDs(q.G)
	e.Rel.BeginRead()
	defer e.Rel.EndRead()
	var plan CoverPlan
	if e.UseViews {
		plan = PlanCover(e.Rel, universe)
	} else {
		plan = PlanWithoutViews(universe)
	}
	return Explanation{
		Universe:        len(universe),
		Views:           plan.Views,
		AggViews:        plan.AggViews,
		ResidualEdges:   len(plan.Edges),
		BitmapsFetched:  plan.NumBitmaps(),
		BitmapsSaved:    len(universe) - plan.NumBitmaps(),
		Partitions:      e.Rel.PartitionSpan(universe),
		UnknownElements: unknown,
	}, nil
}

// ExplainGraph is a convenience wrapper over Explain for a bare graph.
func (e *Engine) ExplainGraph(g *graph.Graph) (Explanation, error) {
	return e.Explain(NewGraphQuery(g))
}
