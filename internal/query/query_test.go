package query

import (
	"math"
	"math/rand"
	"testing"

	"grove/internal/colstore"
	"grove/internal/gpath"
	"grove/internal/graph"
)

func TestAggFuncs(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5}
	if got := Sum.Aggregate(vals); got != 14 {
		t.Errorf("SUM = %v", got)
	}
	if got := Min.Aggregate(vals); got != 1 {
		t.Errorf("MIN = %v", got)
	}
	if got := Max.Aggregate(vals); got != 5 {
		t.Errorf("MAX = %v", got)
	}
	if got := Count.Aggregate(vals); got != 5 {
		t.Errorf("COUNT = %v", got)
	}
	if got := Sum.Aggregate(nil); got != 0 {
		t.Errorf("empty SUM = %v", got)
	}
}

func TestAggByName(t *testing.T) {
	for _, name := range []string{"SUM", "MIN", "MAX", "COUNT"} {
		if f, ok := ByName(name); !ok || f.Name != name {
			t.Errorf("ByName(%s) failed", name)
		}
	}
	if _, ok := ByName("MEDIAN"); ok {
		t.Error("ByName accepted unknown function")
	}
}

func TestAggDistributivity(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	for _, f := range []AggFunc{Sum, Min, Max, Count} {
		whole := f.Aggregate(vals)
		part1 := f.Aggregate(vals[:3])
		part2 := f.Aggregate(vals[3:])
		if got := f.Fold(part1, part2); got != whole {
			t.Errorf("%s not distributive: %v vs %v", f.Name, got, whole)
		}
	}
}

func TestPaperSection34Example(t *testing.T) {
	// SUM(A,C,E,F) retrieves record 2 with aggregate 7 (§3.4).
	f := newFig2Fixture(t)
	q := NewPathAggQuery(gpath.Closed("A", "C", "E", "F").ToGraph(), Sum)
	res, err := f.eng.ExecutePathAggQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RecordIDs) != 1 || res.RecordIDs[0] != 1 {
		t.Fatalf("answer = %v, want [1] (record 2)", res.RecordIDs)
	}
	if len(res.Paths) != 1 {
		t.Fatalf("paths = %v", res.Paths)
	}
	if got := res.Values[0][0]; got != 7 {
		t.Fatalf("SUM = %v, want 7", got)
	}
}

func TestGraphQueryAnswers(t *testing.T) {
	f := newFig2Fixture(t)
	cases := []struct {
		q    *GraphQuery
		want []uint32
	}{
		{pathQuery("A", "B"), []uint32{0}},
		{pathQuery("A", "D", "E"), []uint32{0, 1, 2}},
		{pathQuery("E", "F", "G"), []uint32{1, 2}},
		{pathQuery("A", "C", "E"), []uint32{0, 1}},
		{pathQuery("A", "Z"), nil},
	}
	for _, c := range cases {
		res, err := f.eng.ExecuteGraphQuery(c.q)
		if err != nil {
			t.Fatal(err)
		}
		got := res.Answer.ToSlice()
		if len(got) != len(c.want) {
			t.Errorf("%s answer = %v, want %v", c.q, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s answer = %v, want %v", c.q, got, c.want)
			}
		}
	}
}

func TestEmptyQueryRejected(t *testing.T) {
	f := newFig2Fixture(t)
	if _, err := f.eng.ExecuteGraphQuery(NewGraphQuery(graph.NewGraph())); err == nil {
		t.Error("empty graph query accepted")
	}
	if _, err := f.eng.ExecuteGraphQuery(nil); err == nil {
		t.Error("nil query accepted")
	}
	if _, err := f.eng.ExecutePathAggQuery(&PathAggQuery{G: graph.NewGraph(), Agg: Sum}); err == nil {
		t.Error("empty agg query accepted")
	}
	if _, err := f.eng.ExecutePathAggQuery(&PathAggQuery{G: pathQuery("A", "B").G}); err == nil {
		t.Error("agg query without function accepted")
	}
}

func TestExprEval(t *testing.T) {
	f := newFig2Fixture(t)
	// Records with (A,D,E): all. With (E,F): r2, r3. With (A,B): r1.
	cde := Leaf{Q: pathQuery("A", "D", "E")}
	ef := Leaf{Q: pathQuery("E", "F")}
	ab := Leaf{Q: pathQuery("A", "B")}

	and, err := f.eng.EvalExpr(And{Operands: []Expr{cde, ef}})
	if err != nil {
		t.Fatal(err)
	}
	if got := and.ToSlice(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("AND = %v, want [1 2]", got)
	}

	or, err := f.eng.EvalExpr(Or{Operands: []Expr{ef, ab}})
	if err != nil {
		t.Fatal(err)
	}
	if got := or.ToSlice(); len(got) != 3 {
		t.Errorf("OR = %v, want all three", got)
	}

	diff, err := f.eng.EvalExpr(Diff{A: cde, B: ef})
	if err != nil {
		t.Fatal(err)
	}
	if got := diff.ToSlice(); len(got) != 1 || got[0] != 0 {
		t.Errorf("AND NOT = %v, want [0]", got)
	}

	if _, err := f.eng.EvalExpr(And{}); err == nil {
		t.Error("empty AND accepted")
	}
	if _, err := f.eng.EvalExpr(Or{}); err == nil {
		t.Error("empty OR accepted")
	}
}

func TestPlanCoverUsesSubsetViewsOnly(t *testing.T) {
	f := newFig2Fixture(t)
	e6, _ := f.reg.Lookup(graph.E("E", "F"))
	e7, _ := f.reg.Lookup(graph.E("F", "G"))
	e2, _ := f.reg.Lookup(graph.E("A", "C"))
	// View over {e6,e7} is usable for query {e2,e6,e7}; view over {e2,e6,e7,
	// e1} is NOT usable (not a subset).
	e1, _ := f.reg.Lookup(graph.E("A", "B"))
	if _, err := f.rel.MaterializeView("good", []colstore.EdgeID{e6, e7}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.rel.MaterializeView("toolarge", []colstore.EdgeID{e1, e2, e6, e7}); err != nil {
		t.Fatal(err)
	}
	plan := PlanCover(f.rel, []colstore.EdgeID{e2, e6, e7})
	if len(plan.Views) != 1 || plan.Views[0] != "good" {
		t.Fatalf("plan views = %v, want [good]", plan.Views)
	}
	if len(plan.Edges) != 1 || plan.Edges[0] != e2 {
		t.Fatalf("plan edges = %v, want [%d]", plan.Edges, e2)
	}
	if plan.NumBitmaps() != 2 {
		t.Fatalf("NumBitmaps = %d, want 2", plan.NumBitmaps())
	}
}

func TestPlanCoverFullQueryView(t *testing.T) {
	f := newFig2Fixture(t)
	e2, _ := f.reg.Lookup(graph.E("A", "C"))
	e3, _ := f.reg.Lookup(graph.E("C", "E"))
	if _, err := f.rel.MaterializeView("whole", []colstore.EdgeID{e2, e3}); err != nil {
		t.Fatal(err)
	}
	plan := PlanCover(f.rel, []colstore.EdgeID{e2, e3})
	if len(plan.Views) != 1 || len(plan.Edges) != 0 {
		t.Fatalf("plan = %+v, want single view and no edges", plan)
	}
}

func TestPlanWithoutViews(t *testing.T) {
	plan := PlanWithoutViews([]colstore.EdgeID{5, 3, 4})
	if len(plan.Views)+len(plan.AggViews) != 0 {
		t.Error("oblivious plan uses views")
	}
	if len(plan.Edges) != 3 || plan.Edges[0] != 3 {
		t.Errorf("edges = %v", plan.Edges)
	}
}

func TestViewRewriteSameAnswer(t *testing.T) {
	f := newFig2Fixture(t)
	e3, _ := f.reg.Lookup(graph.E("C", "E"))
	e6, _ := f.reg.Lookup(graph.E("E", "F"))
	if _, err := f.rel.MaterializeView("v36", []colstore.EdgeID{e3, e6}); err != nil {
		t.Fatal(err)
	}
	q := pathQuery("A", "C", "E", "F")

	f.eng.UseViews = false
	oblivious, err := f.eng.ExecuteGraphQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	f.eng.UseViews = true
	rewritten, err := f.eng.ExecuteGraphQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if !oblivious.Answer.Equals(rewritten.Answer) {
		t.Fatal("view rewrite changed the answer")
	}
	if rewritten.Plan.NumBitmaps() >= oblivious.Plan.NumBitmaps() {
		t.Errorf("rewrite did not reduce bitmaps: %d vs %d",
			rewritten.Plan.NumBitmaps(), oblivious.Plan.NumBitmaps())
	}
}

func TestViewReducesIOCost(t *testing.T) {
	f := newFig2Fixture(t)
	e2, _ := f.reg.Lookup(graph.E("A", "C"))
	e3, _ := f.reg.Lookup(graph.E("C", "E"))
	e6, _ := f.reg.Lookup(graph.E("E", "F"))
	if _, err := f.rel.MaterializeView("v", []colstore.EdgeID{e2, e3, e6}); err != nil {
		t.Fatal(err)
	}
	q := pathQuery("A", "C", "E", "F")

	f.eng.UseViews = false
	f.rel.Tracker().Reset()
	if _, err := f.eng.ExecuteGraphQuery(q); err != nil {
		t.Fatal(err)
	}
	without := f.rel.Tracker().Snapshot().BitmapColumnsFetched

	f.eng.UseViews = true
	f.rel.Tracker().Reset()
	if _, err := f.eng.ExecuteGraphQuery(q); err != nil {
		t.Fatal(err)
	}
	with := f.rel.Tracker().Snapshot().BitmapColumnsFetched

	if without != 3 || with != 1 {
		t.Errorf("bitmap fetches = %d (oblivious) / %d (views), want 3/1", without, with)
	}
}

func TestFetchMeasures(t *testing.T) {
	f := newFig2Fixture(t)
	q := pathQuery("A", "D", "E") // e4, e5 — present in all 3 records
	res, err := f.eng.ExecuteGraphQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	f.rel.Tracker().Reset()
	n := res.FetchMeasures()
	if n != 6 { // 2 edges × 3 records
		t.Errorf("measures scanned = %d, want 6", n)
	}
	s := f.rel.Tracker().Snapshot()
	if s.MeasureColumnsFetched != 2 {
		t.Errorf("measure columns fetched = %d, want 2", s.MeasureColumnsFetched)
	}
	if s.MeasuresScanned != 6 {
		t.Errorf("MeasuresScanned = %d, want 6", s.MeasuresScanned)
	}
}

func TestAggViewUsedAndConsistent(t *testing.T) {
	f := newFig2Fixture(t)
	e6, _ := f.reg.Lookup(graph.E("E", "F"))
	e7, _ := f.reg.Lookup(graph.E("F", "G"))
	if _, err := f.rel.MaterializeAggView("p1", []colstore.EdgeID{e6, e7}, Sum); err != nil {
		t.Fatal(err)
	}
	q := NewPathAggQuery(gpath.Closed("E", "F", "G").ToGraph(), Sum)

	f.eng.UseViews = true
	with, err := f.eng.ExecutePathAggQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	f.eng.UseViews = false
	without, err := f.eng.ExecutePathAggQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if !with.Answer.Equals(without.Answer) {
		t.Fatal("agg view changed the structural answer")
	}
	for p := range with.Values {
		for i := range with.Values[p] {
			if with.Values[p][i] != without.Values[p][i] {
				t.Fatalf("path %d rec %d: %v (views) vs %v (raw)",
					p, i, with.Values[p][i], without.Values[p][i])
			}
		}
	}
	// Table 1: mp1 = 5 for r2, 4 for r3.
	if with.Values[0][0] != 5 || with.Values[0][1] != 4 {
		t.Errorf("aggregates = %v, want [5 4]", with.Values[0])
	}
	// The covered path must have used the view: 1 view segment, 0 raw.
	if with.SegmentsPerPath[0] != [2]int{1, 0} {
		t.Errorf("segments = %v, want view-only", with.SegmentsPerPath[0])
	}
	if without.SegmentsPerPath[0] != [2]int{0, 2} {
		t.Errorf("oblivious segments = %v, want raw-only", without.SegmentsPerPath[0])
	}
}

func TestAggViewReducesMeasureColumns(t *testing.T) {
	f := newFig2Fixture(t)
	e4, _ := f.reg.Lookup(graph.E("A", "D"))
	e5, _ := f.reg.Lookup(graph.E("D", "E"))
	e6, _ := f.reg.Lookup(graph.E("E", "F"))
	if _, err := f.rel.MaterializeAggView("p", []colstore.EdgeID{e4, e5, e6}, Sum); err != nil {
		t.Fatal(err)
	}
	q := NewPathAggQuery(gpath.Closed("A", "D", "E", "F", "G").ToGraph(), Sum)

	f.eng.UseViews = false
	f.rel.Tracker().Reset()
	if _, err := f.eng.ExecutePathAggQuery(q); err != nil {
		t.Fatal(err)
	}
	rawCols := f.rel.Tracker().Snapshot().MeasureColumnsFetched

	f.eng.UseViews = true
	f.rel.Tracker().Reset()
	if _, err := f.eng.ExecutePathAggQuery(q); err != nil {
		t.Fatal(err)
	}
	viewCols := f.rel.Tracker().Snapshot().MeasureColumnsFetched

	if rawCols != 4 || viewCols != 2 { // view(e4,e5,e6) + raw e7
		t.Errorf("measure columns = %d (raw) / %d (views), want 4/2", rawCols, viewCols)
	}
}

func TestAggMultiplePaths(t *testing.T) {
	// Diamond query: A→C→E (e2,e3) and A→D→E (e4,e5).
	f := newFig2Fixture(t)
	g := graph.NewGraph()
	g.AddEdge("A", "C")
	g.AddEdge("C", "E")
	g.AddEdge("A", "D")
	g.AddEdge("D", "E")
	q := NewPathAggQuery(g, Sum)
	res, err := f.eng.ExecutePathAggQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	// Only records containing all four edges: r1 and r2.
	if len(res.RecordIDs) != 2 {
		t.Fatalf("answer = %v", res.RecordIDs)
	}
	if len(res.Paths) != 2 {
		t.Fatalf("paths = %v", res.Paths)
	}
	// Locate path [A,C,E] and [A,C,D,E] values for r1 (records 0).
	for p, path := range res.Paths {
		switch path.String() {
		case "[A,C,E]":
			if res.Values[p][0] != 4+2 { // m2+m3 of r1
				t.Errorf("[A,C,E] r1 = %v, want 6", res.Values[p][0])
			}
		case "[A,D,E]":
			if res.Values[p][0] != 1+2 { // m4+m5 of r1
				t.Errorf("[A,D,E] r1 = %v, want 3", res.Values[p][0])
			}
		default:
			t.Errorf("unexpected path %s", path)
		}
	}
	// FoldAcrossPaths with SUM adds the two path sums.
	folded := res.FoldAcrossPaths()
	if folded[0] != 9 {
		t.Errorf("folded r1 = %v, want 9", folded[0])
	}
}

func TestAggNullWhenMeasureMissing(t *testing.T) {
	rel := colstore.NewRelation(0)
	reg := graph.NewRegistry()
	rec := graph.NewRecord()
	if err := rec.SetEdge("A", "B", 1); err != nil {
		t.Fatal(err)
	}
	rec.AddBareElement(graph.E("B", "C")) // structural only, NULL measure
	graph.LoadRecord(rel, reg, rec)
	eng := NewEngine(rel, reg)
	q := NewPathAggQuery(gpath.Closed("A", "B", "C").ToGraph(), Sum)
	res, err := eng.ExecutePathAggQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RecordIDs) != 1 {
		t.Fatalf("answer = %v", res.RecordIDs)
	}
	if !math.IsNaN(res.Values[0][0]) {
		t.Errorf("aggregate over NULL measure = %v, want NaN", res.Values[0][0])
	}
	folded := res.FoldAcrossPaths()
	if !math.IsNaN(folded[0]) {
		t.Errorf("folded = %v, want NaN", folded[0])
	}
}

func TestNodeMeasuresInAggregation(t *testing.T) {
	rel := colstore.NewRelation(0)
	reg := graph.NewRegistry()
	rec := graph.NewRecord()
	for _, err := range []error{
		rec.SetEdge("A", "B", 1),
		rec.SetEdge("B", "C", 2),
		rec.SetNode("B", 10), // internal node measure
		rec.SetNode("A", 100),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	graph.LoadRecord(rel, reg, rec)
	eng := NewEngine(rel, reg)
	// Closed path includes A's node measure; internal B always counted.
	q := NewPathAggQuery(gpath.Closed("A", "B", "C").ToGraph(), Sum)
	res, err := eng.ExecutePathAggQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Values[0][0]; got != 1+2+10+100 {
		t.Errorf("closed-path SUM = %v, want 113", got)
	}
}

func TestQueryPropertyMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := newRandomFixture(t, rng, 300)
	for trial := 0; trial < 100; trial++ {
		qg := f.randomQueryGraph(rng, 5)
		res, err := f.eng.ExecuteGraphQuery(NewGraphQuery(qg))
		if err != nil {
			t.Fatal(err)
		}
		want := f.bruteForceAnswer(qg)
		got := res.Answer.ToSlice()
		if len(got) != len(want) {
			t.Fatalf("trial %d: answer size %d, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: answer %v, want %v", trial, got, want)
			}
		}
	}
}

func TestQueryPropertyViewsNeverChangeAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := newRandomFixture(t, rng, 300)
	// Materialize a few random views drawn from record subgraphs.
	for i := 0; i < 8; i++ {
		qg := f.randomQueryGraph(rng, 4)
		ids := f.reg.GraphIDs(qg)
		_, _ = f.rel.MaterializeView(string(rune('a'+i)), ids)
	}
	for trial := 0; trial < 100; trial++ {
		qg := f.randomQueryGraph(rng, 6)
		f.eng.UseViews = true
		with, err := f.eng.ExecuteGraphQuery(NewGraphQuery(qg))
		if err != nil {
			t.Fatal(err)
		}
		f.eng.UseViews = false
		without, err := f.eng.ExecuteGraphQuery(NewGraphQuery(qg))
		if err != nil {
			t.Fatal(err)
		}
		if !with.Answer.Equals(without.Answer) {
			t.Fatalf("trial %d: view rewrite changed answer for %v", trial, qg.Elements())
		}
		if with.Plan.NumBitmaps() > without.Plan.NumBitmaps() {
			t.Fatalf("trial %d: rewrite used more bitmaps", trial)
		}
	}
}
