package bench

import (
	"fmt"
	"time"

	"grove/internal/colstore"
	"grove/internal/graph"
	"grove/internal/query"
	"grove/internal/view"
	"grove/internal/workload"
)

// ExtCluster measures the §6.1 clustering extension: cross-partition join
// work for a fixed query workload under the default id/width partitioning
// versus the workload-driven clustered assignment.
func ExtCluster(sc Scale) (*Table, error) {
	t := &Table{
		Title:   "Ext: workload-driven column clustering (partition joins per workload)",
		Columns: []string{"EdgeDomain", "Partitions", "Joins (default)", "Joins (clustered)", "Reduction"},
	}
	for _, domain := range []int{2000, 5000, 10000} {
		ds, err := workload.BuildDense("NY", domain, sc.Fig5Records, 0.10, sc.Seed, false)
		if err != nil {
			return nil, err
		}
		queries := ds.Gen.UniformQueries(sc.NumQueries, 10)
		eng := query.NewEngine(ds.Rel, ds.Reg)

		run := func() (int64, error) {
			ds.Rel.Tracker().Reset()
			for _, qg := range queries {
				res, err := eng.ExecuteGraphQuery(query.NewGraphQuery(qg))
				if err != nil {
					return 0, err
				}
				res.FetchMeasures()
			}
			return ds.Rel.Tracker().Snapshot().PartitionJoins, nil
		}
		if err := ds.Rel.SetPartitionMap(nil); err != nil {
			return nil, err
		}
		before, err := run()
		if err != nil {
			return nil, err
		}
		ids := make([][]colstore.EdgeID, len(queries))
		for i, qg := range queries {
			ids[i] = ds.Reg.GraphIDs(qg)
		}
		if _, err := ds.Rel.ClusterPartitions(ids); err != nil {
			return nil, err
		}
		after, err := run()
		if err != nil {
			return nil, err
		}
		red := "-"
		if before > 0 {
			red = fmt.Sprintf("%.0f%%", 100*(1-float64(after)/float64(before)))
		}
		t.AddRow(fmt.Sprint(domain), fmt.Sprint(ds.Rel.NumPartitions()),
			fmt.Sprint(before), fmt.Sprint(after), red)
	}
	t.AddNote("extension of §6.1: \"intelligent clustering of these columns based on the users' query patterns\"")
	return t, nil
}

// ExtMaintenance measures incremental view maintenance: cost of keeping k
// views fresh per inserted record, versus rematerializing all views after a
// batch — the trade-off behind grove's streaming-ingest support.
func ExtMaintenance(sc Scale) (*Table, error) {
	t := &Table{
		Title:   "Ext: incremental view maintenance vs rematerialization",
		Columns: []string{"Views", "Insert+maintain (µs/record)", "Rematerialize all (ms)"},
	}
	spec := workload.NYSpec(sc.SensitivityRecords, sc.Seed)
	spec.KeepRecords = true
	ds, err := workload.Build(spec)
	if err != nil {
		return nil, err
	}
	queries := ds.Gen.UniformQueries(sc.NumQueries, 8)
	adv := view.NewAdvisor(ds.Rel, ds.Reg)

	gen, err := workload.NewGenerator(workload.NewRoadNetwork(1000), 35, 100, sc.Seed+7)
	if err != nil {
		return nil, err
	}
	const batch = 200
	fresh := make([]*graph.Record, batch)
	for i := range fresh {
		if fresh[i], err = gen.NextRecord(); err != nil {
			return nil, err
		}
	}

	for _, k := range []int{10, 50, 100} {
		ds.Rel.DropAllViews()
		names, err := adv.MaterializeGraphViews(queries, k)
		if err != nil {
			return nil, err
		}
		// Insert a batch with incremental maintenance.
		start := time.Now()
		for _, rec := range fresh {
			graph.LoadRecord(ds.Rel, ds.Reg, rec)
		}
		perRecord := float64(time.Since(start).Microseconds()) / batch

		// Rematerialize all views from scratch for comparison.
		edgeSets := make([][]colstore.EdgeID, 0, len(names))
		for _, n := range names {
			edgeSets = append(edgeSets, ds.Rel.View(n).Edges)
		}
		ds.Rel.DropAllViews()
		start = time.Now()
		for i, es := range edgeSets {
			if _, err := ds.Rel.MaterializeView(fmt.Sprintf("r%d", i), es); err != nil {
				return nil, err
			}
		}
		rematMS := float64(time.Since(start).Microseconds()) / 1000
		t.AddRow(fmt.Sprint(len(names)), fmtMS(perRecord), fmtMS(rematMS))
	}
	ds.Rel.DropAllViews()
	t.AddNote("maintenance keeps views exact under the continuous ingest of §2 without periodic rebuild downtime")
	return t, nil
}
