package bench

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"grove"
)

// ExpPaged measures the tentpole trade of the paged columnar store: bytes
// resident in memory vs. scan throughput, as the buffer pool budget shrinks
// from unbounded down to 1% of the logical column bytes. Each budget runs
// the same row-aggregation and scalar zone-skip workload; every answer is
// checked bit-for-bit against the in-memory store the snapshot was saved
// from before any timing is reported, so the table can only show configs
// that return the exact same answers. The checked-in baseline is
// BENCH_paged.json (regenerate with `grovebench -exp paged -json`).
func ExpPaged(sc Scale) (*Table, error) {
	numRecords := sc.NYRecords * 2
	if numRecords <= 0 {
		numRecords = 60000
	}
	rng := rand.New(rand.NewSource(sc.Seed))

	// Measure mix mirrors real columns: a constant leg (run-length), a
	// low-cardinality leg (dictionary), a smooth monotonic leg (XOR delta,
	// and MIN zone-skip fodder), and an incompressible random leg (raw).
	mem := grove.Open()
	for i := 0; i < numRecords; i++ {
		rec := grove.NewRecord()
		if err := rec.SetEdge("A", "B", 3.5); err != nil {
			return nil, err
		}
		if err := rec.SetEdge("B", "C", float64(rng.Intn(12))*0.25); err != nil {
			return nil, err
		}
		if err := rec.SetEdge("C", "D", float64(1<<20+i)); err != nil {
			return nil, err
		}
		if err := rec.SetEdge("D", "E", rng.NormFloat64()*1e6); err != nil {
			return nil, err
		}
		mem.Add(rec)
	}

	dir, err := os.MkdirTemp("", "grove-bench-paged-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if err := mem.Save(dir); err != nil {
		return nil, err
	}

	path := []string{"A", "B", "C", "D", "E"}
	type answers struct {
		rows    []uint64
		minVal  uint64
		skipped int
	}
	workload := func(st *grove.Store) (answers, error) {
		res, err := st.AggregatePath(grove.Sum, path...)
		if err != nil {
			return answers{}, err
		}
		folded := res.FoldAcrossPaths()
		out := answers{rows: make([]uint64, len(folded))}
		for i, v := range folded {
			out.rows[i] = math.Float64bits(v)
		}
		sres, err := st.AggregateScalarPath(grove.Min, "C", "D")
		if err != nil {
			return answers{}, err
		}
		out.minVal = math.Float64bits(sres.Value)
		out.skipped = sres.BlocksSkipped
		return out, nil
	}
	want, err := workload(mem)
	if err != nil {
		return nil, err
	}

	loaded, err := grove.LoadStore(dir)
	if err != nil {
		return nil, err
	}
	defer loaded.Close()
	logical := loaded.StorageStats().LogicalBytes
	if logical <= 0 {
		return nil, fmt.Errorf("bench: paged store reports %d logical bytes", logical)
	}

	t := &Table{
		Title: fmt.Sprintf("Paged storage: resident bytes vs scan throughput, %d records", numRecords),
		Columns: []string{"Pool budget", "Budget bytes", "Resident bytes", "Resident/logical",
			"Scan (ms)", "MIN rows (ms)", "MIN skip (ms)", "Blocks skipped"},
	}

	// The PR 4 way to a scalar MIN: row plan (per-record aggregates) + fold.
	minRows := func(st *grove.Store) {
		res, err := st.AggregatePath(grove.Min, "C", "D")
		if err == nil {
			res.FoldAcrossPaths()
		}
	}
	inMemStats := mem.StorageStats()
	t.AddRow("in-memory", "-", fmt.Sprintf("%d", inMemStats.ResidentBytes), "1.00",
		timeWorkloadMS(func() { _, _ = workload(mem) }), //grovevet:ignore droppederr timing rerun of a workload already verified above
		timeWorkloadMS(func() { minRows(mem) }), "-", "-")

	var worstResident int64
	for _, pct := range []int64{100, 50, 10, 1} {
		budget := logical * pct / 100
		loaded.SetPageCacheBytes(budget)
		got, err := workload(loaded) // also faults the working set in under this budget
		if err != nil {
			return nil, err
		}
		if len(got.rows) != len(want.rows) {
			return nil, fmt.Errorf("bench: paged store at %d%% returned %d rows, want %d",
				pct, len(got.rows), len(want.rows))
		}
		for i := range want.rows {
			if got.rows[i] != want.rows[i] {
				return nil, fmt.Errorf("bench: paged row %d diverges at %d%% budget: %x want %x",
					i, pct, got.rows[i], want.rows[i])
			}
		}
		if got.minVal != want.minVal {
			return nil, fmt.Errorf("bench: paged scalar MIN diverges at %d%% budget: %x want %x",
				pct, got.minVal, want.minVal)
		}

		scanMS := timeWorkloadMS(func() {
			_, _ = loaded.AggregatePath(grove.Sum, path...) //grovevet:ignore droppederr timing rerun of a query already verified above
		})
		minRowsMS := timeWorkloadMS(func() { minRows(loaded) })
		minMS := timeWorkloadMS(func() {
			_, _ = loaded.AggregateScalarPath(grove.Min, "C", "D") //grovevet:ignore droppederr timing rerun of a query already verified above
		})
		resident := loaded.StorageStats().ResidentBytes
		if resident > worstResident {
			worstResident = resident
		}
		t.AddRow(fmt.Sprintf("%d%%", pct), fmt.Sprintf("%d", budget),
			fmt.Sprintf("%d", resident), fmt.Sprintf("%.2f", float64(resident)/float64(logical)),
			scanMS, minRowsMS, minMS, fmt.Sprintf("%d", got.skipped))
	}

	// The tentpole's acceptance bar: the paged store must answer the same
	// workload with at least 2× fewer resident bytes than the in-memory
	// columns at some budget. Columns smaller than a couple of blocks can't
	// page anything out, so tiny scales only note the bar instead of failing.
	loaded.SetPageCacheBytes(logical / 100)
	if _, err := workload(loaded); err != nil {
		return nil, err
	}
	minResident := loaded.StorageStats()
	if logical >= 4*8*4096 && minResident.ResidentBytes*2 > logical {
		return nil, fmt.Errorf("bench: 1%% budget leaves %d of %d logical bytes resident (< 2x reduction)",
			minResident.ResidentBytes, logical)
	}
	t.AddNote("equal answers enforced bit-for-bit (row folds and zone-skipped scalar MIN) before timing")
	t.AddNote("MIN rows = AggregatePath(MIN) + FoldAcrossPaths (the pre-paging row plan); MIN skip = AggregateScalarPath's zone-map plan")
	t.AddNote("resident = decoded measure bytes in memory after the workload; logical = %d bytes", logical)
	t.AddNote("on-disk encoded payload: %d bytes (%.2fx vs logical)",
		minResident.OnDiskBytes, float64(logical)/float64(math.Max(1, float64(minResident.OnDiskBytes))))
	return t, nil
}

// timeWorkloadMS runs f a few times and returns the best wall time in ms.
func timeWorkloadMS(f func()) string {
	f() // warm off the clock
	best := time.Duration(math.MaxInt64)
	for i := 0; i < 3; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return fmtMS(float64(best.Nanoseconds()) / 1e6)
}
