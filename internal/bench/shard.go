package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"grove/internal/graph"
	"grove/internal/query"
	"grove/internal/shard"
	"grove/internal/workload"
)

// shardCounts is the sweep of the sharding experiment: single-shard baseline
// doubling up to 8 shards.
var shardCounts = []int{1, 2, 4, 8}

// concurrentLoad times writers concurrent Add calls pushing every record
// into a fresh n-shard coordinator and returns the elapsed wall time.
func concurrentLoad(n, writers int, records []*graph.Record) time.Duration {
	c := shard.New(n, 0)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		//grovevet:ignore goroleak bench harness: a panicking writer should crash the run loudly, not be recovered into a bogus timing
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(records); i += writers {
				c.Add(records[i])
			}
		}(w)
	}
	wg.Wait()
	return time.Since(start)
}

// sequentialCoordinator loads the records one by one so record ids equal
// arrival order on every shard count — the invariant that makes answers
// comparable bit-for-bit across the sweep.
func sequentialCoordinator(n int, records []*graph.Record) *shard.Coordinator {
	c := shard.New(n, 0)
	for _, rec := range records {
		c.Add(rec)
	}
	c.Optimize()
	return c
}

// ExpShard measures the sharded scatter-gather tentpole: concurrent-writer
// ingest throughput and batch query latency as the shard count doubles from
// 1 to 8. Every shard count's batch answers are checked bit-for-bit against
// the single-shard baseline before any timing is reported.
func ExpShard(sc Scale) (*Table, error) {
	workers := sc.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	const writers = 8
	spec := workload.NYSpec(sc.NYRecords, sc.Seed)
	spec.KeepRecords = true
	ds, err := workload.Build(spec)
	if err != nil {
		return nil, err
	}
	records := ds.Records
	graphs := ds.Gen.UniformQueries(sc.NumQueries, 16)
	queries := make([]*query.GraphQuery, len(graphs))
	for i, g := range graphs {
		queries[i] = query.NewGraphQuery(g)
	}

	t := &Table{
		Title: fmt.Sprintf("Sharded scatter-gather: %d records, %d concurrent writers, %d-query batches",
			len(records), writers, len(queries)),
		Columns: []string{"Shards", "Ingest (ms)", "Ingest speedup", "Ingest (rec/s)", "Batch (ms)", "Batch speedup"},
	}

	ctx := context.Background() //grovevet:ignore ctxflow bench experiments own their root context; there is no caller deadline to thread
	var baseline []*query.Result
	var baseWrite, baseBatch time.Duration
	for _, n := range shardCounts {
		// Warm-up load absorbs allocator growth; the best of two GC-separated
		// timed runs damps collector noise on small machines.
		concurrentLoad(n, writers, records)
		writeDur := time.Duration(1<<62 - 1)
		for run := 0; run < 2; run++ {
			runtime.GC()
			if d := concurrentLoad(n, writers, records); d < writeDur {
				writeDur = d
			}
		}

		c := sequentialCoordinator(n, records)
		if _, errs := c.ExecuteGraphBatchContext(ctx, queries, workers); errs != nil {
			for _, e := range errs {
				if e != nil {
					return nil, e
				}
			}
		}
		batchDur := time.Duration(1<<62 - 1)
		var results []*query.Result
		for run := 0; run < 2; run++ {
			runtime.GC()
			start := time.Now()
			res, errs := c.ExecuteGraphBatchContext(ctx, queries, workers)
			d := time.Since(start)
			for i, e := range errs {
				if e != nil {
					return nil, fmt.Errorf("bench: shard=%d query %d: %w", n, i, e)
				}
			}
			if d < batchDur {
				batchDur, results = d, res
			}
		}
		if n == shardCounts[0] {
			baseline, baseWrite, baseBatch = results, writeDur, batchDur
		} else {
			for i := range results {
				if !results[i].Answer.Equals(baseline[i].Answer) {
					return nil, fmt.Errorf("bench: shard=%d answer %d differs from single-shard baseline", n, i)
				}
			}
		}

		recPerSec := float64(len(records)) / writeDur.Seconds()
		t.AddRow(fmt.Sprint(n),
			fmtMS(float64(writeDur.Microseconds())/1000),
			fmt.Sprintf("%.2fx", float64(baseWrite)/float64(writeDur)),
			fmt.Sprintf("%.0f", recPerSec),
			fmtMS(float64(batchDur.Microseconds())/1000),
			fmt.Sprintf("%.2fx", float64(baseBatch)/float64(batchDur)))
	}
	t.AddNote(fmt.Sprintf("batch answers bit-identical to single-shard at every shard count; GOMAXPROCS=%d — write/query speedup tracks available cores (parity expected on 1 core)", runtime.GOMAXPROCS(0)))
	return t, nil
}
