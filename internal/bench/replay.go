package bench

import (
	"fmt"
	"os"
	"time"

	"grove"
	"grove/internal/workload"
)

// replayShardCounts is the sweep of the self-contained replay experiment:
// the recording baseline plus resharded configurations.
var replayShardCounts = []int{1, 2, 4}

// ExpReplay exercises the workload recorder end to end. Self-contained mode
// (no -replay-log): load the NY dataset into a single-shard store, execute a
// mixed workload — graph matches and path aggregations — with recording on,
// then replay the captured JSONL log against fresh stores at 1, 2 and 4
// shards, verifying every replayed answer's FNV-1a digest against the
// recorded one (answers are bit-identical across shard counts, so every
// digest must match). With Scale.ReplayLog set, it instead replays that
// captured log against the store at Scale.ReplayStore — re-executing a
// production capture against any store configuration.
func ExpReplay(sc Scale) (*Table, error) {
	if sc.ReplayLog != "" {
		return replayExternal(sc)
	}
	spec := workload.NYSpec(sc.NYRecords, sc.Seed)
	spec.KeepRecords = true
	ds, err := workload.Build(spec)
	if err != nil {
		return nil, err
	}
	records := ds.Records
	graphs := ds.Gen.UniformQueries(sc.NumQueries, 8)

	dir, err := os.MkdirTemp("", "grove-replay-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	logPath := dir + "/workload.jsonl"

	load := func(n int) *grove.Store {
		st := grove.NewSharded(n)
		for _, rec := range records {
			st.Add(rec)
		}
		st.Optimize()
		return st
	}

	// Record the workload on the single-shard baseline.
	base := load(1)
	if err := base.StartWorkloadRecording(logPath); err != nil {
		return nil, err
	}
	recStart := time.Now()
	for i, g := range graphs {
		if i%2 == 0 {
			if _, err := base.Match(g); err != nil {
				return nil, err
			}
		} else {
			if _, err := base.Aggregate(g, grove.Sum); err != nil {
				return nil, err
			}
		}
	}
	recDur := time.Since(recStart)
	if err := base.StopWorkloadRecording(); err != nil {
		return nil, err
	}
	events, err := grove.ReadWorkloadLog(logPath)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: fmt.Sprintf("Workload record→replay: %d records, %d recorded queries",
			len(records), sc.NumQueries),
		Columns: []string{"Shards", "Replayed", "Verified", "Mismatched", "Replay (ms)"},
	}
	for _, n := range replayShardCounts {
		st := load(n)
		start := time.Now()
		stats, err := st.ReplayWorkload(events)
		if err != nil {
			return nil, err
		}
		d := time.Since(start)
		if stats.Mismatched != 0 {
			return nil, fmt.Errorf("bench: replay on %d shard(s): %d digest mismatches — replayed answers must be bit-identical to the recording", n, stats.Mismatched)
		}
		if stats.Verified != stats.Replayed {
			return nil, fmt.Errorf("bench: replay on %d shard(s): only %d/%d replayed events carried a verifiable digest", n, stats.Verified, stats.Replayed)
		}
		t.AddRow(fmt.Sprint(n), fmt.Sprint(stats.Replayed), fmt.Sprint(stats.Verified),
			fmt.Sprint(stats.Mismatched), fmtMS(float64(d.Microseconds())/1000))
	}
	t.AddNote(fmt.Sprintf("recording run took %s; every replayed digest matched on every shard count", recDur.Round(time.Millisecond)))
	return t, nil
}

// replayExternal replays a captured workload log against a saved store.
func replayExternal(sc Scale) (*Table, error) {
	if sc.ReplayStore == "" {
		return nil, fmt.Errorf("bench: replay: -replay-log needs -replay-store (the saved store directory to replay against)")
	}
	events, err := grove.ReadWorkloadLog(sc.ReplayLog)
	if err != nil {
		return nil, err
	}
	st, err := grove.LoadStore(sc.ReplayStore)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	stats, err := st.ReplayWorkload(events)
	if err != nil {
		return nil, err
	}
	d := time.Since(start)
	t := &Table{
		Title:   fmt.Sprintf("Workload replay: %s against %s (%d shard(s))", sc.ReplayLog, sc.ReplayStore, st.NumShards()),
		Columns: []string{"Events", "Replayed", "Skipped", "Verified", "Mismatched", "Replay (ms)"},
	}
	t.AddRow(fmt.Sprint(stats.Queries), fmt.Sprint(stats.Replayed), fmt.Sprint(stats.Skipped),
		fmt.Sprint(stats.Verified), fmt.Sprint(stats.Mismatched), fmtMS(float64(d.Microseconds())/1000))
	if stats.Mismatched != 0 {
		t.AddNote("DIGEST MISMATCHES: the store's answers differ from the recorded ones")
	}
	return t, nil
}
