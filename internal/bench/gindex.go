package bench

import (
	"fmt"
	"math/rand"

	"grove/internal/graph"
	"grove/internal/mine"
	"grove/internal/query"
	"grove/internal/view"
	"grove/internal/workload"
)

// gIndexSetup holds everything the Figs. 10–11 experiments share: a dataset,
// a workload, and two discriminative-fragment trainings (§6.3):
//
//	gIndexQ   — mined on a sample of records that answer the workload
//	gIndexQ+D — mined on 80% random records + 20% answering records
type gIndexSetup struct {
	ds       *workload.Dataset
	queries  []*graph.Graph
	fragQ    []mine.Fragment
	fragQD   []mine.Fragment
	trainCap int
}

func newGIndexSetup(sc Scale, pathOnly bool) (*gIndexSetup, error) {
	spec := workload.NYSpec(sc.SensitivityRecords*2, sc.Seed)
	spec.KeepRecords = true
	ds, err := workload.Build(spec)
	if err != nil {
		return nil, err
	}
	var queries []*graph.Graph
	if pathOnly {
		queries = ds.Gen.UniformPathQueries(sc.NumQueries, 4, 8)
	} else {
		queries = ds.Gen.UniformQueries(sc.NumQueries, 8)
	}

	// Records answering the workload (the paper trains gIndexQ on these).
	eng := query.NewEngine(ds.Rel, ds.Reg)
	answering := make(map[uint32]struct{})
	for _, qg := range queries {
		res, err := eng.ExecuteGraphQuery(query.NewGraphQuery(qg))
		if err != nil {
			return nil, err
		}
		res.Answer.Each(func(rec uint32) bool {
			answering[rec] = struct{}{}
			return true
		})
	}
	rng := rand.New(rand.NewSource(sc.Seed + 99))
	const trainCap = 400
	var answerSample []*graph.Record
	for rec := range answering {
		answerSample = append(answerSample, ds.Records[rec])
		if len(answerSample) >= trainCap {
			break
		}
	}
	if len(answerSample) == 0 {
		// Degenerate workload (no answers): train on random records.
		for i := 0; i < trainCap && i < len(ds.Records); i++ {
			answerSample = append(answerSample, ds.Records[i])
		}
	}
	mixedSample := make([]*graph.Record, 0, trainCap)
	for i := 0; i < trainCap*4/5; i++ {
		mixedSample = append(mixedSample, ds.Records[rng.Intn(len(ds.Records))])
	}
	for i := 0; len(mixedSample) < trainCap && i < len(answerSample); i++ {
		mixedSample = append(mixedSample, answerSample[i])
	}

	mineCfg := func(sample []*graph.Record) mine.Config {
		minSup := len(sample) / 20
		if minSup < 2 {
			minSup = 2
		}
		return mine.Config{MinSupport: minSup, MaxEdges: 4, MaxFragments: 50000}
	}
	train := func(sample []*graph.Record) ([]mine.Fragment, error) {
		frags, err := mine.MineFrequent(sample, mineCfg(sample))
		if err != nil {
			return nil, err
		}
		return mine.SelectDiscriminative(frags, len(sample), 1.5), nil
	}
	fragQ, err := train(answerSample)
	if err != nil {
		return nil, err
	}
	fragQD, err := train(mixedSample)
	if err != nil {
		return nil, err
	}
	return &gIndexSetup{ds: ds, queries: queries, fragQ: fragQ, fragQD: fragQD, trainCap: trainCap}, nil
}

// materializeFragments adds the first k fragments as bitmap columns (named
// graph views), returning how many were created.
func (g *gIndexSetup) materializeFragments(frags []mine.Fragment, k int, prefix string) int {
	n := 0
	for _, f := range frags {
		if n >= k {
			break
		}
		edgeIDs := g.ds.Reg.IDs(f.Edges)
		if _, err := g.ds.Rel.MaterializeView(fmt.Sprintf("%s%d", prefix, n), edgeIDs); err != nil {
			continue
		}
		n++
	}
	return n
}

// runGIndexSweep measures workload time at each fragment/view budget for the
// three configurations of Figs. 10–11.
func runGIndexSweep(sc Scale, pathOnly bool, title string) (*Table, error) {
	setup, err := newGIndexSetup(sc, pathOnly)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   title,
		Columns: []string{"Budget", "gIndex_Q+D (ms)", "gIndex_Q (ms)", "Views (ms)"},
	}
	eng := query.NewEngine(setup.ds.Rel, setup.ds.Reg)
	adv := view.NewAdvisor(setup.ds.Rel, setup.ds.Reg)

	run := func() (float64, error) {
		var ms float64
		if pathOnly {
			a, b, err := timedAggWorkload(eng, setup.queries)
			if err != nil {
				return 0, err
			}
			ms = float64((a + b).Microseconds()) / 1000
		} else {
			a, b, err := timedGraphWorkload(eng, setup.queries)
			if err != nil {
				return 0, err
			}
			ms = float64((a + b).Microseconds()) / 1000
		}
		return ms, nil
	}

	for _, pct := range []int{0, 20, 40, 60, 80, 100} {
		k := pct * sc.NumQueries / 100
		row := []string{fmt.Sprintf("%d%%", pct)}

		// gIndex_Q+D fragments as extra bitmap columns.
		setup.ds.Rel.DropAllViews()
		setup.materializeFragments(setup.fragQD, k, "gqd")
		ms, err := run()
		if err != nil {
			return nil, err
		}
		row = append(row, fmtMS(ms))

		// gIndex_Q fragments.
		setup.ds.Rel.DropAllViews()
		setup.materializeFragments(setup.fragQ, k, "gq")
		ms, err = run()
		if err != nil {
			return nil, err
		}
		row = append(row, fmtMS(ms))

		// Advisor-selected views (graph views or aggregate views).
		setup.ds.Rel.DropAllViews()
		if k > 0 {
			if pathOnly {
				_, err = adv.MaterializeAggViews(setup.queries, query.Sum, k)
			} else {
				_, err = adv.MaterializeGraphViews(setup.queries, k)
			}
			if err != nil {
				return nil, err
			}
		}
		ms, err = run()
		if err != nil {
			return nil, err
		}
		row = append(row, fmtMS(ms))

		t.AddRow(row...)
	}
	setup.ds.Rel.DropAllViews()
	t.AddNote("fragments trained on %d-record samples; paper shape: views beat gIndex fragments, up to ~6x on aggregate queries", setup.trainCap)
	return t, nil
}

// Fig10 compares gIndex fragments with graph views on 100 uniform graph
// queries (Fig. 10).
func Fig10(sc Scale) (*Table, error) {
	return runGIndexSweep(sc, false, "Fig 10: gIndex fragments vs graph views (100 uniform graph queries)")
}

// Fig11 compares gIndex fragments with aggregate views on 100 uniform
// aggregate queries (Fig. 11).
func Fig11(sc Scale) (*Table, error) {
	return runGIndexSweep(sc, true, "Fig 11: gIndex fragments vs aggregate views (100 uniform aggregate queries)")
}
