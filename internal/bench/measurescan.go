package bench

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"grove/internal/agg"
	"grove/internal/colstore"
)

// ExpMeasureScan measures the vectorized measure path (GatherInto and the
// fused AggregateInto) against the scalar per-record reference (one
// Get — container binary search plus prefix popcount — per answer record)
// across answer-set selectivities. The crossover it shows motivates the
// 4/5-coverage hybrid threshold inside GatherInto: batch-rank wins on sparse
// answers, the block-decoded merge on near-full ones. Every variant's fold is
// checked bit-for-bit against the scalar sum before any timing is reported.
func ExpMeasureScan(sc Scale) (*Table, error) {
	numRecords := sc.NYRecords * 4
	if numRecords <= 0 {
		numRecords = 100000
	}
	rng := rand.New(rand.NewSource(sc.Seed))
	col := colstore.NewMeasureColumn()
	for rec := 0; rec < numRecords; rec++ {
		if rng.Float64() < 0.9 { // 10% NULLs, as measure columns have
			col.Set(uint32(rec), 1+rng.Float64()*9)
		}
	}
	reduce := agg.KernelFor(agg.Sum).Reduce

	t := &Table{
		Title: fmt.Sprintf("Measure scan: scalar Get vs vectorized kernels, %d-record column",
			numRecords),
		Columns: []string{"Selectivity", "Answer recs", "Scalar (ns/rec)",
			"Gather (ns/rec)", "Fused (ns/rec)", "Gather speedup", "Fused speedup"},
	}

	for _, sel := range []float64{0.001, 0.01, 0.1, 0.5, 1.0} {
		var recs []uint32
		for rec := 0; rec < numRecords; rec++ {
			if rng.Float64() < sel {
				recs = append(recs, uint32(rec))
			}
		}
		if len(recs) == 0 {
			continue
		}
		reps := 1 + 2_000_000/len(recs)

		scalarSum := 0.0
		scalarNS := timePerRec(reps, len(recs), func() {
			s := 0.0
			for _, rec := range recs {
				if v, ok := col.Get(rec); ok {
					s += v
				}
			}
			scalarSum = s
		})

		values := make([]float64, len(recs))
		present := make([]bool, len(recs))
		gatherSum := 0.0
		gatherNS := timePerRec(reps, len(recs), func() {
			col.GatherInto(recs, values, present)
			s := 0.0
			for i, p := range present {
				if p {
					s += values[i]
				}
			}
			gatherSum = s
		})

		fusedSum := 0.0
		fusedNS := timePerRec(reps, len(recs), func() {
			fusedSum, _ = col.AggregateInto(recs, 0, reduce)
		})

		if math.Float64bits(gatherSum) != math.Float64bits(scalarSum) ||
			math.Float64bits(fusedSum) != math.Float64bits(scalarSum) {
			return nil, fmt.Errorf("bench: measurescan folds diverge at selectivity %g: scalar %v gather %v fused %v",
				sel, scalarSum, gatherSum, fusedSum)
		}

		t.AddRow(fmt.Sprintf("%.1f%%", sel*100), fmt.Sprintf("%d", len(recs)),
			fmt.Sprintf("%.1f", scalarNS), fmt.Sprintf("%.1f", gatherNS),
			fmt.Sprintf("%.1f", fusedNS),
			fmt.Sprintf("%.2fx", scalarNS/gatherNS), fmt.Sprintf("%.2fx", scalarNS/fusedNS))
	}
	t.AddNote("scalar = per-record Get (binary search + prefix popcount); gather = GatherInto then sum; fused = AggregateInto")
	t.AddNote("GatherInto switches from batch-rank to merge once the answer covers 4/5 of the column")
	return t, nil
}

// timePerRec runs f reps times and returns nanoseconds per answer record.
func timePerRec(reps, numRecs int, f func()) float64 {
	f() // warm caches off the clock
	start := time.Now()
	for i := 0; i < reps; i++ {
		f()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(reps) / float64(numRecs)
}
