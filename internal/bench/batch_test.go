package bench

import (
	"runtime"
	"testing"

	"grove/internal/query"
)

// benchScale is a NY-like dataset small enough to rebuild per benchmark but
// large enough that per-query work dominates the pool overhead.
func benchScale() Scale {
	return Scale{
		SensitivityRecords: 500,
		NYRecords:          5000,
		GNURecords:         2000,
		Fig5Records:        200,
		NumQueries:         100,
		Seed:               42,
	}
}

func benchmarkBatch(b *testing.B, workers int) {
	eng, queries, err := batchBenchQueries(benchScale())
	if err != nil {
		b.Fatal(err)
	}
	be := query.NewBatchExecutor(eng, workers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := be.ExecuteGraphQueries(queries); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchSequential is the 100-query baseline (one worker).
func BenchmarkBatchSequential(b *testing.B) { benchmarkBatch(b, 1) }

// BenchmarkBatchParallel runs the same batch across runtime.NumCPU() workers;
// compare ns/op against BenchmarkBatchSequential for the speedup.
func BenchmarkBatchParallel(b *testing.B) { benchmarkBatch(b, runtime.NumCPU()) }

// TestBatchExperimentAnswersIdentical runs the registered batch experiment at
// a small scale; ExpBatch itself fails if parallel answers deviate from the
// sequential baseline.
func TestBatchExperimentAnswersIdentical(t *testing.T) {
	sc := benchScale()
	sc.NYRecords = 1000
	sc.NumQueries = 30
	sc.Workers = 4
	if _, err := ExpBatch(sc); err != nil {
		t.Fatal(err)
	}
}
