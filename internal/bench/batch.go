package bench

import (
	"fmt"
	"runtime"
	"time"

	"grove/internal/query"
)

// sequentialGraphWorkload times a plain one-query-at-a-time run and returns
// the results so the parallel run can be checked against them.
func sequentialGraphWorkload(eng *query.Engine, queries []*query.GraphQuery) ([]*query.Result, time.Duration, error) {
	results := make([]*query.Result, len(queries))
	start := time.Now()
	for i, q := range queries {
		res, err := eng.ExecuteGraphQuery(q)
		if err != nil {
			return nil, 0, err
		}
		results[i] = res
	}
	return results, time.Since(start), nil
}

// parallelGraphWorkload times the same batch through the worker pool.
func parallelGraphWorkload(eng *query.Engine, queries []*query.GraphQuery, workers int) ([]*query.Result, time.Duration, error) {
	be := query.NewBatchExecutor(eng, workers)
	start := time.Now()
	results, err := be.ExecuteGraphQueries(queries)
	return results, time.Since(start), err
}

// ExpBatch measures the tentpole: batch query execution across a worker pool
// vs the sequential baseline, on the NY-like dataset with 100 uniform
// queries. The parallel answers are checked bit-for-bit against the
// sequential ones before any timing is reported.
func ExpBatch(sc Scale) (*Table, error) {
	workers := sc.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	t := &Table{
		Title: fmt.Sprintf("Batch execution: %d uniform graph queries, NY, %d workers vs sequential",
			sc.NumQueries, workers),
		Columns: []string{"Mode", "Total (ms)", "Speedup"},
	}
	ds, err := buildNY(sc, false)
	if err != nil {
		return nil, err
	}
	eng := query.NewEngine(ds.Rel, ds.Reg)
	graphs := ds.Gen.UniformQueries(sc.NumQueries, 16)
	queries := make([]*query.GraphQuery, len(graphs))
	for i, g := range graphs {
		queries[i] = query.NewGraphQuery(g)
	}

	// Warm-up pass so page-in and allocator noise doesn't land on either side.
	if _, _, err := sequentialGraphWorkload(eng, queries); err != nil {
		return nil, err
	}
	seq, seqDur, err := sequentialGraphWorkload(eng, queries)
	if err != nil {
		return nil, err
	}
	par, parDur, err := parallelGraphWorkload(eng, queries, workers)
	if err != nil {
		return nil, err
	}
	for i := range seq {
		if !par[i].Answer.Equals(seq[i].Answer) {
			return nil, fmt.Errorf("bench: parallel answer %d differs from sequential", i)
		}
	}

	speedup := float64(seqDur) / float64(parDur)
	t.AddRow("Sequential", fmtMS(float64(seqDur.Microseconds())/1000), "1.00x")
	t.AddRow(fmt.Sprintf("Parallel (%d workers)", workers),
		fmtMS(float64(parDur.Microseconds())/1000), fmt.Sprintf("%.2fx", speedup))
	t.AddNote(fmt.Sprintf("answers bit-identical across modes; GOMAXPROCS=%d — speedup tracks available cores", runtime.GOMAXPROCS(0)))
	return t, nil
}

// batchBenchQueries builds the benchmark workload shared by the Go
// benchmarks below.
func batchBenchQueries(sc Scale) (*query.Engine, []*query.GraphQuery, error) {
	ds, err := buildNY(sc, false)
	if err != nil {
		return nil, nil, err
	}
	graphs := ds.Gen.UniformQueries(sc.NumQueries, 16)
	queries := make([]*query.GraphQuery, len(graphs))
	for i, g := range graphs {
		queries[i] = query.NewGraphQuery(g)
	}
	return query.NewEngine(ds.Rel, ds.Reg), queries, nil
}
