package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tinyScale keeps the full experiment suite runnable inside unit tests.
func tinyScale() Scale {
	return Scale{
		SensitivityRecords: 200,
		NYRecords:          600,
		GNURecords:         400,
		Fig5Records:        60,
		NumQueries:         20,
		Seed:               42,
	}
}

func TestTablePrintAndCSV(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddNote("n=%d", 3)
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	for _, want := range []string{"== T ==", "a  bb", "1  2", "note: n=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("Print output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	tab.CSV(&buf)
	if got := buf.String(); got != "a,bb\n1,2\n" {
		t.Errorf("CSV = %q", got)
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Registry() {
		if e.Run == nil || e.ID == "" || e.Description == "" {
			t.Errorf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	// One experiment per evaluation table/figure of the paper.
	for _, want := range []string{"table2", "fig3a", "fig3b", "fig3c", "fig4",
		"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"} {
		if !ids[want] {
			t.Errorf("experiment %s missing", want)
		}
	}
	if _, err := Lookup("fig6"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup accepted unknown id")
	}
}

// TestAllExperimentsRun executes every experiment at tiny scale and checks
// each produces a non-empty, well-formed table.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	sc := tinyScale()
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(sc)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("%s: row %v does not match columns %v", e.ID, row, tab.Columns)
				}
			}
		})
	}
}

func TestFig6ViewsReduceRestTime(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	sc := tinyScale()
	sc.NYRecords = 3000
	tab, err := Fig6(sc)
	if err != nil {
		t.Fatal(err)
	}
	// The view count column must be monotone in the budget.
	prev := -1
	for _, row := range tab.Rows {
		var views int
		if _, err := parseInt(row[4], &views); err != nil {
			t.Fatalf("bad views cell %q", row[4])
		}
		if views < prev {
			t.Fatalf("view count decreased along the sweep: %v", tab.Rows)
		}
		prev = views
	}
	if prev == 0 {
		t.Fatal("no views were ever materialized")
	}
}

func parseInt(s string, out *int) (int, error) {
	n, err := strconv.Atoi(s)
	*out = n
	return n, err
}
