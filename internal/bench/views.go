package bench

import (
	"fmt"

	"grove/internal/graph"
	"grove/internal/query"
	"grove/internal/view"
	"grove/internal/workload"
)

// budgets is the Fig. 6–8 space-budget sweep: views materialized as a
// percentage of the 100-query workload.
var budgets = []int{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}

// Fig6 reruns the graph-view benefit experiment (Fig. 6): 100 uniform graph
// queries on the NY dataset, total run time vs number of materialized graph
// views, broken into measure-fetch time and the rest.
func Fig6(sc Scale) (*Table, error) {
	ds, err := buildNY(sc, false)
	if err != nil {
		return nil, err
	}
	queries := ds.Gen.UniformQueries(sc.NumQueries, 16)
	return viewBudgetSweep("Fig 6: Run time vs space budget (100 uniform graph queries, NY)",
		ds, queries, sc, false)
}

// Fig7 reruns the aggregate-view benefit experiment (Fig. 7): 100 uniform
// path-aggregation queries on the GNU dataset vs number of aggregate views.
func Fig7(sc Scale) (*Table, error) {
	ds, err := buildGNU(sc, false)
	if err != nil {
		return nil, err
	}
	queries := ds.Gen.UniformPathQueries(sc.NumQueries, 4, 8)
	return viewBudgetSweep("Fig 7: Run time vs space budget (100 uniform aggregate queries, GNU)",
		ds, queries, sc, true)
}

// viewBudgetSweep implements the shared budget loop of Figs. 6 and 7.
func viewBudgetSweep(title string, ds *workload.Dataset, queries []*graph.Graph, sc Scale, aggregate bool) (*Table, error) {
	cols := []string{"Budget", "Q-time fetch measures (ms)", "Q-time rest (ms)", "Total (ms)", "Views", "ViewSpace(%)"}
	t := &Table{Title: title, Columns: cols}
	eng := query.NewEngine(ds.Rel, ds.Reg)
	adv := view.NewAdvisor(ds.Rel, ds.Reg)
	for _, pct := range budgets {
		ds.Rel.DropAllViews()
		k := pct * sc.NumQueries / 100
		var names []string
		var err error
		if k > 0 {
			if aggregate {
				names, err = adv.MaterializeAggViews(queries, query.Sum, k)
			} else {
				names, err = adv.MaterializeGraphViews(queries, k)
			}
			if err != nil {
				return nil, err
			}
		}
		// Two passes; keep the second so allocator/cache warm-up noise does
		// not mask the trend (the paper averages five cold runs instead).
		var fetchMS, restMS float64
		for pass := 0; pass < 2; pass++ {
			if aggregate {
				structural, measure, err := timedAggWorkload(eng, queries)
				if err != nil {
					return nil, err
				}
				fetchMS = float64(measure.Microseconds()) / 1000
				restMS = float64(structural.Microseconds()) / 1000
			} else {
				structural, fetch, err := timedGraphWorkload(eng, queries)
				if err != nil {
					return nil, err
				}
				fetchMS = float64(fetch.Microseconds()) / 1000
				restMS = float64(structural.Microseconds()) / 1000
			}
		}
		space := 100 * float64(ds.Rel.ViewSizeBytes()) / float64(ds.Rel.BaseSizeBytes())
		t.AddRow(fmt.Sprintf("%d%%", pct), fmtMS(fetchMS), fmtMS(restMS),
			fmtMS(fetchMS+restMS), fmt.Sprint(len(names)), fmt.Sprintf("%.2f", space))
	}
	if aggregate {
		t.AddNote("paper shape: aggregate views shrink BOTH parts; up to ~89%% total reduction at full budget (~10%% extra space)")
	} else {
		t.AddNote("paper shape: graph views shrink only the 'rest' part (up to ~57%%); measure fetch is mandatory")
	}
	ds.Rel.DropAllViews()
	return t, nil
}

// Fig8 reruns the Zipf-workload experiment (Fig. 8): relative execution time
// (vs no views) across the budget sweep, for graph and aggregate queries on
// both datasets.
func Fig8(sc Scale) (*Table, error) {
	t := &Table{
		Title: "Fig 8: Relative time of Zipf query workloads vs space budget",
		Columns: []string{"Budget", "Graph-NY", "Graph-GNU",
			"Agg-NY", "Agg-GNU"},
	}
	ny, err := buildNY(sc, false)
	if err != nil {
		return nil, err
	}
	gnu, err := buildGNU(sc, false)
	if err != nil {
		return nil, err
	}
	type series struct {
		ds        *workload.Dataset
		queries   []*graph.Graph
		aggregate bool
		times     map[int]float64
	}
	mk := func(ds *workload.Dataset, aggregate bool) *series {
		pathOnly := aggregate
		size := 16
		if pathOnly {
			size = 8
		}
		return &series{
			ds:        ds,
			queries:   ds.Gen.ZipfQueries(sc.NumQueries, 25, size, pathOnly),
			aggregate: aggregate,
			times:     make(map[int]float64),
		}
	}
	all := []*series{mk(ny, false), mk(gnu, false), mk(ny, true), mk(gnu, true)}
	for _, s := range all {
		eng := query.NewEngine(s.ds.Rel, s.ds.Reg)
		adv := view.NewAdvisor(s.ds.Rel, s.ds.Reg)
		for _, pct := range budgets {
			s.ds.Rel.DropAllViews()
			k := pct * sc.NumQueries / 100
			if k > 0 {
				var err error
				if s.aggregate {
					_, err = adv.MaterializeAggViews(s.queries, query.Sum, k)
				} else {
					_, err = adv.MaterializeGraphViews(s.queries, k)
				}
				if err != nil {
					return nil, err
				}
			}
			var totalMS float64
			for pass := 0; pass < 2; pass++ {
				if s.aggregate {
					a, b, err := timedAggWorkload(eng, s.queries)
					if err != nil {
						return nil, err
					}
					totalMS = float64((a + b).Microseconds()) / 1000
				} else {
					a, b, err := timedGraphWorkload(eng, s.queries)
					if err != nil {
						return nil, err
					}
					totalMS = float64((a + b).Microseconds()) / 1000
				}
			}
			s.times[pct] = totalMS
		}
		s.ds.Rel.DropAllViews()
	}
	for _, pct := range budgets {
		row := []string{fmt.Sprintf("%d%%", pct)}
		for _, s := range all {
			base := s.times[0]
			if base <= 0 {
				base = 1
			}
			row = append(row, fmt.Sprintf("%.2f", s.times[pct]/base))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper shape: skew increases sharing; reductions up to ~34%% (graph) and ~94%% (aggregate) at full budget")
	return t, nil
}

// Fig9 reruns the candidate-view counting experiment (Fig. 9): number of
// candidates vs minimum support, for graph and aggregate views under Zipf
// and uniform workloads.
func Fig9(sc Scale) (*Table, error) {
	t := &Table{
		Title: "Fig 9: Number of candidate views vs min-support",
		Columns: []string{"MinSup", "GraphViews-Zipf", "GraphViews-Uniform",
			"AggViews-Zipf", "AggViews-Uniform"},
	}
	ds, err := buildNY(sc, false)
	if err != nil {
		return nil, err
	}
	uniformG := ds.Gen.UniformQueries(sc.NumQueries, 8)
	zipfG := ds.Gen.ZipfQueries(sc.NumQueries, 25, 8, false)
	uniformP := ds.Gen.UniformPathQueries(sc.NumQueries, 4, 8)
	zipfP := ds.Gen.ZipfQueries(sc.NumQueries, 25, 6, true)

	adv := view.NewAdvisor(ds.Rel, ds.Reg)
	graphCandidates := func(queries []*graph.Graph, minSup int) (int, error) {
		sets := adv.WorkloadEdgeSets(queries)
		cands, err := view.Candidates(sets, minSup)
		if err != nil {
			return 0, err
		}
		return len(cands), nil
	}
	aggCandidates := func(queries []*graph.Graph, minSup int) (int, error) {
		cands, universes, err := view.AggCandidates(queries, ds.Reg)
		if err != nil {
			return 0, err
		}
		if minSup >= 2 {
			cands = view.FilterAggBySupport(cands, universes, minSup)
		}
		return len(cands), nil
	}
	for _, pct := range []int{0, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50} {
		minSup := pct * sc.NumQueries / 100
		row := []string{fmt.Sprintf("%d%%", pct)}
		for _, f := range []struct {
			count func([]*graph.Graph, int) (int, error)
			qs    []*graph.Graph
		}{
			{graphCandidates, zipfG},
			{graphCandidates, uniformG},
			{aggCandidates, zipfP},
			{aggCandidates, uniformP},
		} {
			n, err := f.count(f.qs, minSup)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprint(n))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper shape: an initial increase of minSup sharply reduces the candidate count")
	return t, nil
}
