package bench

import (
	"fmt"
	"sort"
)

// Experiment is a runnable table/figure reproduction.
type Experiment struct {
	ID          string
	Description string
	Run         func(Scale) (*Table, error)
}

// Registry lists every experiment, keyed by the paper's table/figure id.
func Registry() []Experiment {
	return []Experiment{
		{"table2", "Dataset statistics (Table 2)", Table2},
		{"fig3a", "Query time vs dataset size, 4 systems (Fig. 3a)", Fig3a},
		{"fig3b", "Query time vs query size, 4 systems (Fig. 3b)", Fig3b},
		{"fig3c", "Query time vs record density, 4 systems (Fig. 3c)", Fig3c},
		{"fig4", "Disk space vs density, 4 systems (Fig. 4)", Fig4},
		{"fig5", "Query time vs edge-domain size (Fig. 5)", Fig5},
		{"fig6", "Graph-view benefit, uniform queries, NY (Fig. 6)", Fig6},
		{"fig7", "Aggregate-view benefit, uniform queries, GNU (Fig. 7)", Fig7},
		{"fig8", "Zipf workloads, relative time (Fig. 8)", Fig8},
		{"fig9", "Candidate views vs min-support (Fig. 9)", Fig9},
		{"fig10", "gIndex fragments vs graph views (Fig. 10)", Fig10},
		{"fig11", "gIndex fragments vs aggregate views (Fig. 11)", Fig11},
		{"batch", "Parallel batch execution vs sequential (tentpole)", ExpBatch},
		{"shard", "Sharded scatter-gather: concurrent writes and query fan-out (tentpole)", ExpShard},
		{"measurescan", "Vectorized measure-scan kernels vs scalar lookups (tentpole)", ExpMeasureScan},
		{"paged", "Paged compressed columns: resident bytes vs scan throughput across pool budgets (tentpole)", ExpPaged},
		{"obs", "Observability overhead: metrics and tracing vs off", ExpObs},
		{"replay", "Workload record→replay round trip, digests verified across shard counts", ExpReplay},
		{"wal", "Write-ahead log: ingest cost per fsync policy, crash-recovery verified (tentpole)", ExpWAL},
		{"extcluster", "Extension: workload-driven column clustering (§6.1)", ExtCluster},
		{"extmaint", "Extension: incremental view maintenance", ExtMaintenance},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(Registry()))
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids)
}
