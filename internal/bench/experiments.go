package bench

import (
	"fmt"
	"time"

	"grove/internal/graph"
	"grove/internal/graphdb"
	"grove/internal/query"
	"grove/internal/workload"
)

// Scale sets the dataset sizes the experiments run at. The paper's full
// datasets (320M/100M records) would take days on one core; the defaults
// below preserve every comparison while finishing in minutes. Scale up via
// cmd/grovebench flags to approach the paper's regime.
type Scale struct {
	// SensitivityRecords is the ×1 unit of Fig. 3(a) (the paper's 1M).
	SensitivityRecords int
	// NYRecords / GNURecords size the full-scale view experiments
	// (Figs. 6–8; the paper's 320M / 100M).
	NYRecords  int
	GNURecords int
	// Fig5Records sizes the edge-domain sweep datasets (the paper's 10M).
	Fig5Records int
	// NumQueries per workload (the paper uses 100).
	NumQueries int
	// Workers bounds the batch-executor pool for the parallel experiments;
	// 0 means runtime.NumCPU().
	Workers int
	// Seed makes every dataset and workload draw deterministic.
	Seed int64

	// ReplayLog, when set, switches the replay experiment from its
	// self-contained record→replay round trip to replaying this captured
	// workload log against the saved store at ReplayStore.
	ReplayLog   string
	ReplayStore string
}

// DefaultScale finishes the whole suite in a few minutes on one core.
func DefaultScale() Scale {
	return Scale{
		SensitivityRecords: 2000,
		NYRecords:          30000,
		GNURecords:         15000,
		Fig5Records:        400,
		NumQueries:         100,
		Seed:               42,
	}
}

// Table2 rebuilds the dataset-statistics table (§7.1, Table 2) at the given
// scale.
func Table2(sc Scale) (*Table, error) {
	t := &Table{
		Title:   "Table 2: Description of Datasets (scaled stand-ins)",
		Columns: []string{"Statistic", "NY", "GNU"},
	}
	ny, err := workload.Build(workload.NYSpec(sc.NYRecords, sc.Seed))
	if err != nil {
		return nil, err
	}
	gnu, err := workload.Build(workload.GNUSpec(sc.GNURecords, sc.Seed+1))
	if err != nil {
		return nil, err
	}
	a, b := ny.Stats, gnu.Stats
	t.AddRow("Number of graph records", fmt.Sprint(a.NumRecords), fmt.Sprint(b.NumRecords))
	t.AddRow("Total number of measures", fmt.Sprint(a.TotalMeasures), fmt.Sprint(b.TotalMeasures))
	t.AddRow("Size on disk (MB)", fmtMB(a.SizeBytes), fmtMB(b.SizeBytes))
	t.AddRow("Distinct number of edge ids", fmt.Sprint(a.DistinctEdges), fmt.Sprint(b.DistinctEdges))
	t.AddRow("Min edges per record", fmt.Sprint(a.MinEdgesPerRec), fmt.Sprint(b.MinEdgesPerRec))
	t.AddRow("Max edges per record", fmt.Sprint(a.MaxEdgesPerRec), fmt.Sprint(b.MaxEdgesPerRec))
	t.AddRow("Avg edges per record", fmt.Sprintf("%.1f", a.AvgEdgesPerRec), fmt.Sprintf("%.1f", b.AvgEdgesPerRec))
	t.AddNote("paper: 320M/100M records, 27.3B/7.5B measures, 241/68 GB — scaled by the record counts above")
	return t, nil
}

// Fig3a measures total execution time of NumQueries uniform graph queries
// on all four systems as the dataset grows ×1, ×5, ×10 (Fig. 3(a)).
func Fig3a(sc Scale) (*Table, error) {
	t := &Table{
		Title:   "Fig 3(a): Query time vs dataset size (ms total, 100 uniform queries)",
		Columns: []string{"Records", "Column Store", "Neo4j-like Store", "RDF Store", "Row Store"},
	}
	for _, mult := range []int{1, 5, 10} {
		n := sc.SensitivityRecords * mult
		spec := workload.NYSpec(n, sc.Seed)
		spec.KeepRecords = true
		ds, err := workload.Build(spec)
		if err != nil {
			return nil, err
		}
		queries := queriesToElements(ds.Gen.UniformQueries(sc.NumQueries, 4))
		row := []string{fmt.Sprint(n)}
		for _, sys := range AllSystems(ds) {
			d, _ := runWorkload(sys, queries)
			row = append(row, fmtMS(float64(d.Microseconds())/1000))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper shape: column store lowest by orders of magnitude; row store highest; all linear in dataset size")
	return t, nil
}

// Fig3b measures query time as the query graph grows from 1 to 1000 edges on
// the ×1 dataset (Fig. 3(b)).
func Fig3b(sc Scale) (*Table, error) {
	t := &Table{
		Title:   "Fig 3(b): Query time vs query size (ms total, 100 uniform queries)",
		Columns: []string{"QueryEdges", "Column Store", "Neo4j-like Store", "RDF Store", "Row Store"},
	}
	spec := workload.NYSpec(sc.SensitivityRecords, sc.Seed)
	spec.KeepRecords = true
	ds, err := workload.Build(spec)
	if err != nil {
		return nil, err
	}
	systems := AllSystems(ds)
	for _, qe := range []int{1, 10, 100, 1000} {
		queries := queriesToElements(ds.Gen.UniformQueries(sc.NumQueries, qe))
		row := []string{fmt.Sprint(qe)}
		for _, sys := range systems {
			d, _ := runWorkload(sys, queries)
			row = append(row, fmtMS(float64(d.Microseconds())/1000))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper shape: column store improves with larger queries (smaller answers); others grow")
	return t, nil
}

// Fig3c measures query time as record density grows to 10%, 20%, 50% of a
// 1000-edge domain (Fig. 3(c)).
func Fig3c(sc Scale) (*Table, error) {
	t := &Table{
		Title:   "Fig 3(c): Query time vs record density (ms total, 100 uniform queries)",
		Columns: []string{"Density", "Column Store", "Neo4j-like Store", "RDF Store", "Row Store"},
	}
	for _, density := range []float64{0.10, 0.20, 0.50} {
		ds, err := workload.BuildDense("NY", 1000, sc.SensitivityRecords/2, density, sc.Seed, true)
		if err != nil {
			return nil, err
		}
		// Query size tracks density, as in the paper.
		qe := int(density * 40)
		queries := queriesToElements(ds.Gen.UniformQueries(sc.NumQueries, qe))
		row := []string{fmt.Sprintf("%.0f%%", density*100)}
		for _, sys := range AllSystems(ds) {
			d, _ := runWorkload(sys, queries)
			row = append(row, fmtMS(float64(d.Microseconds())/1000))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper shape: column store flat across density; others grow with record size")
	return t, nil
}

// Fig4 measures storage footprint vs record density for the four systems
// (Fig. 4).
func Fig4(sc Scale) (*Table, error) {
	t := &Table{
		Title:   "Fig 4: Disk space vs record density (MB)",
		Columns: []string{"Density", "Column Store", "Neo4j-like Store", "RDF Store", "Row Store"},
	}
	for _, density := range []float64{0.10, 0.20, 0.50} {
		ds, err := workload.BuildDense("NY", 1000, sc.SensitivityRecords/2, density, sc.Seed, true)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%.0f%%", density*100)}
		for _, sys := range AllSystems(ds) {
			row = append(row, fmtMB(sys.DiskSizeBytes()))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper shape: neo4j largest; row store linear in density; column store smallest and flattest")
	return t, nil
}

// Fig5 measures query time as the edge domain grows (vertical partitioning
// kicks in past 1000 columns), column store vs graph database (Fig. 5).
func Fig5(sc Scale) (*Table, error) {
	t := &Table{
		Title:   "Fig 5: Query time vs edge-domain size (ms total, 100 uniform queries, 10% density)",
		Columns: []string{"DistinctEdges", "Column Store", "Neo4j-like Store", "Partitions"},
	}
	for _, domain := range []int{1000, 5000, 10000, 20000} {
		ds, err := workload.BuildDense("NY", domain, sc.Fig5Records, 0.10, sc.Seed, true)
		if err != nil {
			return nil, err
		}
		queries := queriesToElements(ds.Gen.UniformQueries(sc.NumQueries, 10))

		col := NewColumnSystem(ds)
		dCol, _ := runWorkload(col, queries)

		gdb := graphdb.New()
		for _, r := range ds.Records {
			gdb.AddRecord(r)
		}
		start := time.Now()
		for _, q := range queries {
			matched := gdb.MatchQuery(q)
			gdb.FetchMeasures(matched, q)
		}
		dGdb := time.Since(start)

		t.AddRow(fmt.Sprint(domain),
			fmtMS(float64(dCol.Microseconds())/1000),
			fmtMS(float64(dGdb.Microseconds())/1000),
			fmt.Sprint(ds.Rel.NumPartitions()))
	}
	t.AddNote("paper shape: column store degrades slowly as partitions multiply but stays below neo4j through 100K edges")
	return t, nil
}

// uniformGraphWorkload and helpers shared with the view experiments.
func buildNY(sc Scale, keep bool) (*workload.Dataset, error) {
	spec := workload.NYSpec(sc.NYRecords, sc.Seed)
	spec.KeepRecords = keep
	return workload.Build(spec)
}

func buildGNU(sc Scale, keep bool) (*workload.Dataset, error) {
	spec := workload.GNUSpec(sc.GNURecords, sc.Seed+1)
	spec.KeepRecords = keep
	return workload.Build(spec)
}

// timedGraphWorkload runs graph queries against an engine, timing the
// structural phase and the measure-fetch phase separately — the two parts of
// the Fig. 6 breakdown.
func timedGraphWorkload(eng *query.Engine, queries []*graph.Graph) (structural, fetch time.Duration, err error) {
	for _, qg := range queries {
		s0 := time.Now()
		res, e := eng.ExecuteGraphQuery(query.NewGraphQuery(qg))
		if e != nil {
			return 0, 0, e
		}
		structural += time.Since(s0)
		f0 := time.Now()
		res.FetchMeasures()
		fetch += time.Since(f0)
	}
	return structural, fetch, nil
}

// timedAggWorkload runs path-aggregation queries, splitting structural time
// from measure/aggregation time (Fig. 7 breakdown).
func timedAggWorkload(eng *query.Engine, queries []*graph.Graph) (structural, measure time.Duration, err error) {
	for _, qg := range queries {
		t0 := time.Now()
		res, e := eng.ExecutePathAggQuery(query.NewPathAggQuery(qg, query.Sum))
		if e != nil {
			return 0, 0, e
		}
		total := time.Since(t0)
		// Attribute time in proportion to the work split: the structural
		// part is re-run in isolation for an exact split.
		s0 := time.Now()
		if _, e := eng.ExecuteGraphQuery(query.NewGraphQuery(qg)); e != nil {
			return 0, 0, e
		}
		s := time.Since(s0)
		if s > total {
			s = total
		}
		structural += s
		measure += total - s
		_ = res
	}
	return structural, measure, nil
}
