package bench

import "testing"

// TestObsOverheadSmoke is the bench-smoke guard on the tracing budget: on the
// sequential uniform-graph workload, metrics plus full lifecycle tracing must
// stay near the <5% EXPERIMENTS.md expectation (~3% measured at full scale by
// `-exp obs`). The gate budget is 10%, not 5: even interleaved best-of
// measurement leaves ±5–7% residual noise on a contended CI box, and a 5%
// line two points above the ~3% truth trips on noise alone. 10% keeps the
// tripwire well clear of noise while still catching the regression class it
// guards — e.g. losing the query-string cache re-measures at +9–18%. The
// guard also re-measures up to three times and fails only when every attempt
// exceeds the budget.
func TestObsOverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard, skipped with -short")
	}
	// Large enough that a workload pass takes tens of milliseconds — at
	// single-digit-millisecond passes the container's scheduler noise (±8%,
	// EXPERIMENTS.md) swamps a 5% budget even under best-of measurement.
	sc := DefaultScale()
	sc.NYRecords = 8000
	sc.NumQueries = 80
	eng, queries, err := batchBenchQueries(sc)
	if err != nil {
		t.Fatal(err)
	}

	const budget = 0.10
	const attempts = 3
	best := 0.0
	for i := 0; i < attempts; i++ {
		off, _, tracing, err := obsOverheadDurations(eng, queries)
		if err != nil {
			t.Fatal(err)
		}
		overhead := float64(tracing)/float64(off) - 1
		if i == 0 || overhead < best {
			best = overhead
		}
		if best < budget {
			t.Logf("tracing overhead %+.2f%% (attempt %d, budget %+.0f%%)", overhead*100, i+1, budget*100)
			return
		}
		t.Logf("tracing overhead %+.2f%% over budget on attempt %d, re-measuring", overhead*100, i+1)
	}
	t.Errorf("tracing overhead %+.2f%% exceeded the %+.0f%% budget on all %d attempts",
		best*100, budget*100, attempts)
}
