package bench

import (
	"fmt"
	"time"

	"grove/internal/obs"
	"grove/internal/query"
)

// ExpObs measures the observability layer's overhead on the batch workload:
// the same sequential run of uniform graph queries with instrumentation off,
// with the metrics registry attached, and with metrics plus lifecycle
// tracing. Metrics are pure atomics and should be in the noise; tracing
// allocates one trace per query and is the number the <5% expectation in
// EXPERIMENTS.md refers to.
func ExpObs(sc Scale) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Observability overhead: %d uniform graph queries, NY, sequential",
			sc.NumQueries),
		Columns: []string{"Mode", "Total (ms)", "Overhead"},
	}
	eng, queries, err := batchBenchQueries(sc)
	if err != nil {
		return nil, err
	}

	// Each timed run replays the workload several times so a run is long
	// enough to measure, and the best of several runs is kept — single-digit
	// millisecond runs are otherwise dominated by scheduler and GC noise.
	const passes, rounds = 5, 7
	run := func(e *query.Engine) (time.Duration, error) {
		// Warm-up pass so page-in and allocator noise doesn't land on any mode.
		if _, _, err := sequentialGraphWorkload(e, queries); err != nil {
			return 0, err
		}
		best := time.Duration(0)
		for i := 0; i < rounds; i++ {
			total := time.Duration(0)
			for j := 0; j < passes; j++ {
				_, d, err := sequentialGraphWorkload(e, queries)
				if err != nil {
					return 0, err
				}
				total += d
			}
			if best == 0 || total < best {
				best = total
			}
		}
		return best / passes, nil
	}

	off, err := run(eng)
	if err != nil {
		return nil, err
	}

	withMetrics := eng.Clone()
	withMetrics.SetMetrics(obs.NewQueryMetrics(obs.NewRegistry()))
	metricsDur, err := run(withMetrics)
	if err != nil {
		return nil, err
	}

	withTracing := withMetrics.Clone()
	withTracing.SetTraces(obs.NewTraceRing(0))
	tracingDur, err := run(withTracing)
	if err != nil {
		return nil, err
	}

	overhead := func(d time.Duration) string {
		return fmt.Sprintf("%+.2f%%", (float64(d)/float64(off)-1)*100)
	}
	t.AddRow("Instrumentation off", fmtMS(float64(off.Microseconds())/1000), "baseline")
	t.AddRow("Metrics", fmtMS(float64(metricsDur.Microseconds())/1000), overhead(metricsDur))
	t.AddRow("Metrics + tracing", fmtMS(float64(tracingDur.Microseconds())/1000), overhead(tracingDur))
	t.AddNote(fmt.Sprintf("best of %d runs of %d workload passes per mode, after a warm-up pass; tracing records full lifecycle spans into a 128-entry ring", rounds, passes))
	return t, nil
}
