package bench

import (
	"fmt"
	"time"

	"grove/internal/obs"
	"grove/internal/query"
)

// ExpObs measures the observability layer's overhead on the batch workload:
// the same sequential run of uniform graph queries with instrumentation off,
// with the metrics registry attached, and with metrics plus lifecycle
// tracing. Metrics are pure atomics and should be in the noise; tracing
// allocates one trace per query and is the number the <5% expectation in
// EXPERIMENTS.md refers to.
func ExpObs(sc Scale) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Observability overhead: %d uniform graph queries, NY, sequential",
			sc.NumQueries),
		Columns: []string{"Mode", "Total (ms)", "Overhead"},
	}
	eng, queries, err := batchBenchQueries(sc)
	if err != nil {
		return nil, err
	}
	off, metricsDur, tracingDur, err := obsOverheadDurations(eng, queries)
	if err != nil {
		return nil, err
	}

	overhead := func(d time.Duration) string {
		return fmt.Sprintf("%+.2f%%", (float64(d)/float64(off)-1)*100)
	}
	t.AddRow("Instrumentation off", fmtMS(float64(off.Microseconds())/1000), "baseline")
	t.AddRow("Metrics", fmtMS(float64(metricsDur.Microseconds())/1000), overhead(metricsDur))
	t.AddRow("Metrics + tracing", fmtMS(float64(tracingDur.Microseconds())/1000), overhead(tracingDur))
	t.AddNote(fmt.Sprintf("best of %d runs of %d workload passes per mode, after a warm-up pass; tracing records full lifecycle spans into a 128-entry ring", obsRounds, obsPasses))
	return t, nil
}

// Each timed run replays the workload several times so a run is long enough
// to measure, and the best of several runs is kept — single-digit millisecond
// runs are otherwise dominated by scheduler and GC noise.
const obsPasses, obsRounds = 5, 7

// obsOverheadDurations times the same sequential workload with
// instrumentation off, with metrics, and with metrics plus tracing. Shared by
// ExpObs and the bench-smoke overhead guard. The three modes are interleaved
// round-by-round — each round times every mode back to back before the next
// round starts — so a patch of scheduler or GC noise lands on all modes of
// that round rather than skewing one mode's entire measurement window; the
// best round per mode is kept.
func obsOverheadDurations(eng *query.Engine, queries []*query.GraphQuery) (off, withMetrics, withTracing time.Duration, err error) {
	metered := eng.Clone()
	metered.SetMetrics(obs.NewQueryMetrics(obs.NewRegistry()))
	traced := metered.Clone()
	traced.SetTraces(obs.NewTraceRing(0))
	modes := []*query.Engine{eng, metered, traced}

	// Warm-up pass per mode so page-in and allocator noise lands on none.
	for _, e := range modes {
		if _, _, err := sequentialGraphWorkload(e, queries); err != nil {
			return 0, 0, 0, err
		}
	}
	best := make([]time.Duration, len(modes))
	for i := 0; i < obsRounds; i++ {
		for m, e := range modes {
			total := time.Duration(0)
			for j := 0; j < obsPasses; j++ {
				_, d, err := sequentialGraphWorkload(e, queries)
				if err != nil {
					return 0, 0, 0, err
				}
				total += d
			}
			if best[m] == 0 || total < best[m] {
				best[m] = total
			}
		}
	}
	return best[0] / obsPasses, best[1] / obsPasses, best[2] / obsPasses, nil
}
