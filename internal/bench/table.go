// Package bench implements grove's experiment harness: one experiment per
// table and figure of the paper's evaluation (§7), each regenerating the
// corresponding rows/series over synthetic stand-in datasets. Absolute
// numbers differ from the paper's 2014 testbed (and datasets are scaled down
// to run in minutes on one core); the comparisons — who wins, by what
// factor, where the trends bend — are the reproduction target, and
// EXPERIMENTS.md records paper-vs-measured for each.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(&b, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// JSON renders the table as a single JSON object ({title, columns, rows,
// notes}), the shape checked-in baselines like BENCH_pathagg.json use.
func (t *Table) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes,omitempty"`
	}{t.Title, t.Columns, t.Rows, t.Notes})
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintln(&b, strings.Join(t.Columns, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(&b, strings.Join(row, ","))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// fmtMS formats a duration in milliseconds with sensible precision.
func fmtMS(ms float64) string {
	switch {
	case ms >= 100:
		return fmt.Sprintf("%.0f", ms)
	case ms >= 1:
		return fmt.Sprintf("%.1f", ms)
	default:
		return fmt.Sprintf("%.3f", ms)
	}
}

// fmtMB formats bytes as megabytes.
func fmtMB(b int64) string {
	return fmt.Sprintf("%.2f", float64(b)/(1<<20))
}
