package bench

import (
	"time"

	"grove/internal/graph"
	"grove/internal/graphdb"
	"grove/internal/query"
	"grove/internal/rdfstore"
	"grove/internal/rowstore"
	"grove/internal/workload"
)

// System is the uniform surface the sensitivity experiments (§7.2) sweep
// across: grove's column store and the three comparison systems.
type System interface {
	Name() string
	// RunQuery answers one structural query (given as element keys) and
	// fetches the measures of the matched subgraphs, returning the number
	// of matched records.
	RunQuery(elements []graph.EdgeKey) int
	// DiskSizeBytes reports the (simulated) storage footprint.
	DiskSizeBytes() int64
}

// columnSystem wraps grove's engine.
type columnSystem struct {
	eng *query.Engine
}

// NewColumnSystem adapts a built dataset to the System interface.
func NewColumnSystem(ds *workload.Dataset) System {
	return &columnSystem{eng: query.NewEngine(ds.Rel, ds.Reg)}
}

func (c *columnSystem) Name() string { return "Column Store" }

func (c *columnSystem) RunQuery(elements []graph.EdgeKey) int {
	g := graph.NewGraph()
	for _, k := range elements {
		g.AddElement(k)
	}
	res, err := c.eng.ExecuteGraphQuery(query.NewGraphQuery(g))
	if err != nil {
		return 0
	}
	res.FetchMeasures()
	return res.NumRecords()
}

func (c *columnSystem) DiskSizeBytes() int64 { return c.eng.Rel.SizeBytes() }

type rowSystem struct{ st *rowstore.Store }

// NewRowSystem loads the dataset's records into the row-store baseline.
func NewRowSystem(records []*graph.Record) System {
	st := rowstore.New()
	for _, r := range records {
		st.AddRecord(r)
	}
	return &rowSystem{st: st}
}

func (r *rowSystem) Name() string { return "Row Store" }

func (r *rowSystem) RunQuery(elements []graph.EdgeKey) int {
	matched := r.st.MatchQuery(elements)
	r.st.FetchMeasures(matched, elements)
	return len(matched)
}

func (r *rowSystem) DiskSizeBytes() int64 { return r.st.DiskSizeBytes() }

type graphSystem struct{ st *graphdb.Store }

// NewGraphSystem loads the dataset's records into the native-graph baseline.
func NewGraphSystem(records []*graph.Record) System {
	st := graphdb.New()
	for _, r := range records {
		st.AddRecord(r)
	}
	return &graphSystem{st: st}
}

func (g *graphSystem) Name() string { return "Neo4j-like Store" }

func (g *graphSystem) RunQuery(elements []graph.EdgeKey) int {
	matched := g.st.MatchQuery(elements)
	g.st.FetchMeasures(matched, elements)
	return len(matched)
}

func (g *graphSystem) DiskSizeBytes() int64 { return g.st.DiskSizeBytes() }

type rdfSystem struct{ st *rdfstore.Store }

// NewRDFSystem loads the dataset's records into the RDF baseline.
func NewRDFSystem(records []*graph.Record) System {
	st := rdfstore.New()
	for _, r := range records {
		st.AddRecord(r)
	}
	st.Freeze()
	return &rdfSystem{st: st}
}

func (r *rdfSystem) Name() string { return "RDF Store" }

func (r *rdfSystem) RunQuery(elements []graph.EdgeKey) int {
	matched := r.st.MatchQuery(elements)
	r.st.FetchMeasures(matched, elements)
	return len(matched)
}

func (r *rdfSystem) DiskSizeBytes() int64 { return r.st.DiskSizeBytes() }

// AllSystems builds the four systems over one dataset (which must have been
// built with KeepRecords).
func AllSystems(ds *workload.Dataset) []System {
	return []System{
		NewColumnSystem(ds),
		NewGraphSystem(ds.Records),
		NewRDFSystem(ds.Records),
		NewRowSystem(ds.Records),
	}
}

// runWorkload executes every query on a system, returning total wall time
// and total matched records.
func runWorkload(sys System, queries [][]graph.EdgeKey) (time.Duration, int) {
	start := time.Now()
	matched := 0
	for _, q := range queries {
		matched += sys.RunQuery(q)
	}
	return time.Since(start), matched
}

// queriesToElements converts query graphs to element-key slices.
func queriesToElements(queries []*graph.Graph) [][]graph.EdgeKey {
	out := make([][]graph.EdgeKey, len(queries))
	for i, q := range queries {
		out[i] = q.Elements()
	}
	return out
}
