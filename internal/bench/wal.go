package bench

import (
	"fmt"
	"os"
	"time"

	"grove"
	"grove/internal/workload"
)

// walMaxRecords caps the WAL sweep's dataset: SyncAlways pays one fsync per
// sequential append, so the full NYRecords scale would measure the disk, not
// the sweep's relative shape.
const walMaxRecords = 5000

// ExpWAL measures what each fsync policy costs on the ingest path and proves
// what it buys on the recovery path. For every policy the same records are
// appended through a write-ahead-logged store; then, instead of
// checkpointing, the store is abandoned exactly as a crash would leave it —
// bootstrap snapshot plus log — and recovered with LoadStore. The recovered
// store must hold every record and answer a probe workload bit-identically
// to a never-crashed baseline, which also exercises incremental view
// maintenance on the replay path.
func ExpWAL(sc Scale) (*Table, error) {
	n := sc.NYRecords
	if n > walMaxRecords {
		n = walMaxRecords
	}
	spec := workload.NYSpec(n, sc.Seed)
	spec.KeepRecords = true
	ds, err := workload.Build(spec)
	if err != nil {
		return nil, err
	}
	records := ds.Records
	graphs := ds.Gen.UniformQueries(8, 8)

	// No-WAL baseline: the same sequential ingest with nothing logged, and
	// the reference answers recovery must reproduce.
	base := grove.NewSharded(1)
	start := time.Now()
	for _, rec := range records {
		base.Add(rec)
	}
	baseDur := time.Since(start)
	baseline := make([]*grove.Result, len(graphs))
	for i, g := range graphs {
		if baseline[i], err = base.Match(g); err != nil {
			return nil, err
		}
	}

	t := &Table{
		Title: fmt.Sprintf("Write-ahead log: %d records ingested per fsync policy, then crash-recovered",
			len(records)),
		Columns: []string{"Policy", "Ingest (ms)", "Ingest (rec/s)", "vs no-WAL", "Fsyncs", "Recover (ms)", "Replayed", "Verified"},
	}
	t.AddRow("(no wal)",
		fmtMS(float64(baseDur.Microseconds())/1000),
		fmt.Sprintf("%.0f", float64(len(records))/baseDur.Seconds()),
		"1.00x", "0", "-", "-", "-")

	for _, pol := range []grove.SyncPolicy{grove.SyncNever, grove.SyncInterval, grove.SyncAlways} {
		dir, err := os.MkdirTemp("", "grove-wal-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)

		st := grove.NewSharded(1)
		if err := st.EnableWAL(dir, grove.WALConfig{Policy: pol}); err != nil {
			return nil, err
		}
		start := time.Now()
		for _, rec := range records {
			if _, err := st.Append(rec); err != nil {
				return nil, err
			}
		}
		d := time.Since(start)
		// Flush the tail (a no-op under SyncAlways), then abandon the store
		// without checkpointing: the directory now holds exactly what a
		// crash after the last acknowledged fsync leaves behind.
		if err := st.SyncWAL(); err != nil {
			return nil, err
		}
		fsyncs := st.WALStats().Fsyncs

		recStart := time.Now()
		rec, err := grove.LoadStore(dir)
		if err != nil {
			return nil, fmt.Errorf("bench: wal %s: recovery load: %w", pol, err)
		}
		recDur := time.Since(recStart)
		replayed := rec.WALStats().ReplayedOps
		if got := rec.NumRecords(); got != len(records) {
			return nil, fmt.Errorf("bench: wal %s: recovered %d of %d records", pol, got, len(records))
		}
		for i, g := range graphs {
			res, err := rec.Match(g)
			if err != nil {
				return nil, err
			}
			if !res.Answer.Equals(baseline[i].Answer) {
				return nil, fmt.Errorf("bench: wal %s: recovered answer %d differs from never-crashed baseline", pol, i)
			}
		}

		t.AddRow(pol.String(),
			fmtMS(float64(d.Microseconds())/1000),
			fmt.Sprintf("%.0f", float64(len(records))/d.Seconds()),
			fmt.Sprintf("%.2fx", float64(d)/float64(baseDur)),
			fmt.Sprint(fsyncs),
			fmtMS(float64(recDur.Microseconds())/1000),
			fmt.Sprint(replayed),
			"ok")
	}
	t.AddNote("every policy's recovered store held all records and answered the probe workload bit-identically to the never-crashed baseline")
	return t, nil
}
