package agg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBuiltinsValid(t *testing.T) {
	for _, f := range []Func{Sum, Min, Max, Count} {
		if !f.Valid() {
			t.Errorf("%s not valid", f.Name)
		}
	}
	if (Func{}).Valid() {
		t.Error("zero Func valid")
	}
	if (Func{Name: "X", Lift: Sum.Lift}).Valid() {
		t.Error("Func without Fold valid")
	}
}

func TestIdentities(t *testing.T) {
	if Sum.Aggregate(nil) != 0 {
		t.Error("SUM identity")
	}
	if !math.IsInf(Min.Aggregate(nil), 1) {
		t.Error("MIN identity")
	}
	if !math.IsInf(Max.Aggregate(nil), -1) {
		t.Error("MAX identity")
	}
	if Count.Aggregate(nil) != 0 {
		t.Error("COUNT identity")
	}
}

func TestByName(t *testing.T) {
	for _, want := range []Func{Sum, Min, Max, Count} {
		got, ok := ByName(want.Name)
		if !ok || got.Name != want.Name {
			t.Errorf("ByName(%s) failed", want.Name)
		}
	}
	if _, ok := ByName("sum"); ok {
		t.Error("ByName is case-sensitive by contract; lowercase accepted")
	}
	if _, ok := ByName(""); ok {
		t.Error("empty name accepted")
	}
}

// TestQuickDistributivity: for any split point, folding partial aggregates
// equals aggregating the whole — the property aggregate views rely on.
func TestQuickDistributivity(t *testing.T) {
	for _, f := range []Func{Sum, Min, Max, Count} {
		f := f
		prop := func(raw []float64, splitRaw uint8) bool {
			vals := make([]float64, 0, len(raw))
			for _, v := range raw {
				if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
					vals = append(vals, v)
				}
			}
			if len(vals) == 0 {
				return true
			}
			split := int(splitRaw) % len(vals)
			whole := f.Aggregate(vals)
			parts := f.Fold(f.Aggregate(vals[:split]), f.Aggregate(vals[split:]))
			if f.Name == "SUM" {
				return math.Abs(whole-parts) <= 1e-6*math.Max(1, math.Abs(whole))
			}
			return whole == parts
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
	}
}
