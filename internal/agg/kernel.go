package agg

import "math"

// Block-at-a-time fold kernels. The Func representation — one indirect Fold
// call and one indirect Lift call per value — is the right shape for
// correctness and for user-supplied functions, but it is the dominant cost of
// path aggregation once measures arrive as gathered blocks. A Kernel folds a
// whole block with monomorphic loops the compiler can inline and unroll; the
// built-in functions get specialized kernels, everything else falls back to a
// generic kernel that preserves the exact Fold/Lift call sequence.
//
// Block semantics shared by all kernels (they mirror the scalar per-record
// loop of path aggregation, column-at-a-time):
//
//   - acc[i] is record i's running aggregate; null[i] marks records whose
//     aggregate is already NULL (a required segment had no value).
//   - Required folds (Raw/Stored) skip records already NULL, mark records
//     with no value in this block NULL, and fold the rest. Because each
//     record sees its segment values in segment order, the fold sequence is
//     bit-for-bit the scalar one.
//   - Optional folds (node measures) skip NULL records and records with no
//     value, without marking anything NULL.
//   - present == nil asserts every slot has a value AND no accumulator is
//     NULL yet: the branchless fast path. null may then also be nil.
//
// Every fold returns how many values it folded (the MeasuresScanned
// contribution) and how many accumulators it newly marked NULL, so callers
// keep cost-model accounting exact without re-scanning the block.

// BlockFold folds one gathered block of measure values (values[i] is record
// i's value when present[i]) into the per-record accumulators acc.
type BlockFold func(acc, values []float64, present, null []bool) (folded, newNulls int)

// Kernel bundles the block folds of one aggregate function.
type Kernel struct {
	// Raw folds raw measure values: the scalar sequence acc = Fold(acc,
	// Lift(v)).
	Raw BlockFold
	// Stored folds stored partial aggregates (materialized aggregate-view
	// values): acc = Fold(acc, v), Lift skipped — partial folds are already
	// in the aggregation domain.
	Stored BlockFold
	// Optional folds raw values that do not NULL a record when absent
	// (node measures): records already NULL and records without a value are
	// skipped.
	Optional BlockFold
	// Reduce folds one block of raw values into a scalar accumulator:
	// acc = Fold(acc, Lift(v)) for every v. Blocks never carry NULLs (the
	// gather step compacts them away).
	Reduce func(acc float64, values []float64) float64
}

// KernelFor returns the block kernel implementing f: a specialized
// monomorphic kernel for the built-in SUM/MIN/MAX/COUNT functions, and a
// generic kernel wrapping f.Fold/f.Lift for anything user-supplied. The
// generic kernel is semantically identical, just slower.
func KernelFor(f Func) Kernel {
	switch f.Name {
	case Sum.Name:
		return Kernel{Raw: foldSum, Stored: foldSum, Optional: foldSumOpt, Reduce: reduceSum}
	case Min.Name:
		return Kernel{Raw: foldMin, Stored: foldMin, Optional: foldMinOpt, Reduce: reduceMin}
	case Max.Name:
		return Kernel{Raw: foldMax, Stored: foldMax, Optional: foldMaxOpt, Reduce: reduceMax}
	case Count.Name:
		// COUNT lifts every raw value to 1, so raw folds count and stored
		// folds add the materialized partial counts.
		return Kernel{Raw: foldCountRaw, Stored: foldSum, Optional: foldCountRawOpt, Reduce: reduceCount}
	}
	return genericKernel(f)
}

// --- SUM ---------------------------------------------------------------------

//grove:hotpath
func foldSum(acc, values []float64, present, null []bool) (folded, newNulls int) {
	if present == nil {
		for i, v := range values {
			acc[i] += v
		}
		return len(values), 0
	}
	for i, p := range present {
		if null[i] {
			continue
		}
		if !p {
			null[i] = true
			newNulls++
			continue
		}
		acc[i] += values[i]
		folded++
	}
	return folded, newNulls
}

//grove:hotpath
func foldSumOpt(acc, values []float64, present, null []bool) (folded, newNulls int) {
	if present == nil {
		for i, v := range values {
			acc[i] += v
		}
		return len(values), 0
	}
	for i, p := range present {
		if p && !null[i] {
			acc[i] += values[i]
			folded++
		}
	}
	return folded, 0
}

//grove:hotpath
func reduceSum(acc float64, values []float64) float64 {
	// Unrolled 4-wide on the loop control only — the adds stay in scalar
	// order so the result is bit-for-bit the sequential fold (float addition
	// must not be reassociated if the differential tests are to hold).
	i := 0
	for ; i+4 <= len(values); i += 4 {
		acc += values[i]
		acc += values[i+1]
		acc += values[i+2]
		acc += values[i+3]
	}
	for ; i < len(values); i++ {
		acc += values[i]
	}
	return acc
}

// --- MIN ---------------------------------------------------------------------

//grove:hotpath
func foldMin(acc, values []float64, present, null []bool) (folded, newNulls int) {
	if present == nil {
		for i, v := range values {
			if MinReplaces(acc[i], v) {
				acc[i] = v
			}
		}
		return len(values), 0
	}
	for i, p := range present {
		if null[i] {
			continue
		}
		if !p {
			null[i] = true
			newNulls++
			continue
		}
		if MinReplaces(acc[i], values[i]) {
			acc[i] = values[i]
		}
		folded++
	}
	return folded, newNulls
}

//grove:hotpath
func foldMinOpt(acc, values []float64, present, null []bool) (folded, newNulls int) {
	if present == nil {
		for i, v := range values {
			if MinReplaces(acc[i], v) {
				acc[i] = v
			}
		}
		return len(values), 0
	}
	for i, p := range present {
		if p && !null[i] {
			if MinReplaces(acc[i], values[i]) {
				acc[i] = values[i]
			}
			folded++
		}
	}
	return folded, 0
}

//grove:hotpath
func reduceMin(acc float64, values []float64) float64 {
	for _, v := range values {
		if MinReplaces(acc, v) {
			acc = v
		}
	}
	return acc
}

// --- MAX ---------------------------------------------------------------------

//grove:hotpath
func foldMax(acc, values []float64, present, null []bool) (folded, newNulls int) {
	if present == nil {
		for i, v := range values {
			if MaxReplaces(acc[i], v) {
				acc[i] = v
			}
		}
		return len(values), 0
	}
	for i, p := range present {
		if null[i] {
			continue
		}
		if !p {
			null[i] = true
			newNulls++
			continue
		}
		if MaxReplaces(acc[i], values[i]) {
			acc[i] = values[i]
		}
		folded++
	}
	return folded, newNulls
}

//grove:hotpath
func foldMaxOpt(acc, values []float64, present, null []bool) (folded, newNulls int) {
	if present == nil {
		for i, v := range values {
			if MaxReplaces(acc[i], v) {
				acc[i] = v
			}
		}
		return len(values), 0
	}
	for i, p := range present {
		if p && !null[i] {
			if MaxReplaces(acc[i], values[i]) {
				acc[i] = values[i]
			}
			folded++
		}
	}
	return folded, 0
}

//grove:hotpath
func reduceMax(acc float64, values []float64) float64 {
	for _, v := range values {
		if MaxReplaces(acc, v) {
			acc = v
		}
	}
	return acc
}

// --- COUNT -------------------------------------------------------------------

//grove:hotpath
func foldCountRaw(acc, values []float64, present, null []bool) (folded, newNulls int) {
	if present == nil {
		for i := range values {
			acc[i]++
		}
		return len(values), 0
	}
	for i, p := range present {
		if null[i] {
			continue
		}
		if !p {
			null[i] = true
			newNulls++
			continue
		}
		acc[i]++
		folded++
	}
	return folded, newNulls
}

//grove:hotpath
func foldCountRawOpt(acc, values []float64, present, null []bool) (folded, newNulls int) {
	if present == nil {
		for i := range values {
			acc[i]++
		}
		return len(values), 0
	}
	for i, p := range present {
		if p && !null[i] {
			acc[i]++
			folded++
		}
	}
	return folded, 0
}

//grove:hotpath
func reduceCount(acc float64, values []float64) float64 {
	return acc + float64(len(values))
}

// MinReplaces reports whether folding v into acc with math.Min (the scalar
// Min.Fold) would change acc to v. Matching math.Min exactly — including
// Min(+0,-0) = -0 — keeps the kernels bit-for-bit with the scalar path; NaN
// never reaches a kernel (the column format rejects it). MinReplaces(acc, v)
// is exactly "v sorts strictly before acc" in the total order where -0
// precedes +0, which is what makes it safe for the paged zone maps: a block
// whose total-order minimum cannot replace acc holds no value that can.
func MinReplaces(acc, v float64) bool {
	return v < acc || (v == acc && math.Signbit(v) && !math.Signbit(acc))
}

// MaxReplaces is MinReplaces for math.Max: Max(-0,+0) = +0.
func MaxReplaces(acc, v float64) bool {
	return v > acc || (v == acc && !math.Signbit(v) && math.Signbit(acc))
}

// --- generic fallback --------------------------------------------------------

// genericKernel preserves the exact per-value Fold/Lift call sequence for
// user-supplied functions, paying the indirect calls the specialized kernels
// exist to avoid.
func genericKernel(f Func) Kernel {
	fold, lift := f.Fold, f.Lift
	required := func(stored bool) BlockFold {
		return func(acc, values []float64, present, null []bool) (folded, newNulls int) {
			if present == nil {
				for i, v := range values {
					if !stored {
						v = lift(v)
					}
					acc[i] = fold(acc[i], v)
				}
				return len(values), 0
			}
			for i, p := range present {
				if null[i] {
					continue
				}
				if !p {
					null[i] = true
					newNulls++
					continue
				}
				v := values[i]
				if !stored {
					v = lift(v)
				}
				acc[i] = fold(acc[i], v)
				folded++
			}
			return folded, newNulls
		}
	}
	return Kernel{
		Raw:    required(false),
		Stored: required(true),
		Optional: func(acc, values []float64, present, null []bool) (folded, newNulls int) {
			if present == nil {
				for i, v := range values {
					acc[i] = fold(acc[i], lift(v))
				}
				return len(values), 0
			}
			for i, p := range present {
				if p && !null[i] {
					acc[i] = fold(acc[i], lift(values[i]))
					folded++
				}
			}
			return folded, 0
		},
		Reduce: func(acc float64, values []float64) float64 {
			for _, v := range values {
				acc = fold(acc, lift(v))
			}
			return acc
		},
	}
}
