// Package agg defines grove's distributive aggregate functions. It is a leaf
// package shared by the column store (which materializes and incrementally
// maintains aggregate graph views) and the query engine (which folds
// measures along paths, §3.4).
package agg

import "math"

// Func is a distributive aggregate function. Lift maps a raw measure into
// the aggregation domain; Fold combines two aggregation-domain values.
// Distributivity (Fold of partial folds == fold of everything) is what makes
// materialized aggregate views reusable: a stored partial aggregate folds in
// exactly like a run of raw values. Algebraic functions (e.g. AVG) are
// computed from distributive parts: AVG = SUM/COUNT.
type Func struct {
	Name     string
	Identity float64
	Lift     func(v float64) float64
	Fold     func(a, b float64) float64
}

// Aggregate folds a slice of raw measures.
func (f Func) Aggregate(values []float64) float64 {
	acc := f.Identity
	for _, v := range values {
		acc = f.Fold(acc, f.Lift(v))
	}
	return acc
}

// Valid reports whether the function is fully defined.
func (f Func) Valid() bool { return f.Name != "" && f.Lift != nil && f.Fold != nil }

var (
	// Sum adds measures along a path (e.g. total delivery time).
	Sum = Func{
		Name:     "SUM",
		Identity: 0,
		Lift:     func(v float64) float64 { return v },
		Fold:     func(a, b float64) float64 { return a + b },
	}
	// Min tracks the smallest measure along a path.
	Min = Func{
		Name:     "MIN",
		Identity: math.Inf(1),
		Lift:     func(v float64) float64 { return v },
		Fold:     math.Min,
	}
	// Max tracks the largest measure along a path (e.g. longest leg delay).
	Max = Func{
		Name:     "MAX",
		Identity: math.Inf(-1),
		Lift:     func(v float64) float64 { return v },
		Fold:     math.Max,
	}
	// Count counts measured elements along a path. Lift maps every measure
	// to 1, so stored partial counts fold in additively.
	Count = Func{
		Name:     "COUNT",
		Identity: 0,
		Lift:     func(float64) float64 { return 1 },
		Fold:     func(a, b float64) float64 { return a + b },
	}
)

// ByName resolves a function from its persisted name.
func ByName(name string) (Func, bool) {
	switch name {
	case Sum.Name:
		return Sum, true
	case Min.Name:
		return Min, true
	case Max.Name:
		return Max, true
	case Count.Name:
		return Count, true
	}
	return Func{}, false
}
