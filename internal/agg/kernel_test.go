package agg

import (
	"math"
	"math/rand"
	"testing"
)

// scalarRequired is the scalar reference for Raw/Stored folds: the exact
// per-record loop the kernels vectorize.
func scalarRequired(f Func, stored bool, acc, values []float64, present, null []bool) (folded, newNulls int) {
	for i := range acc {
		if null != nil && null[i] {
			continue
		}
		if present != nil && !present[i] {
			null[i] = true
			newNulls++
			continue
		}
		v := values[i]
		if !stored {
			v = f.Lift(v)
		}
		acc[i] = f.Fold(acc[i], v)
		folded++
	}
	return folded, newNulls
}

// scalarOptional is the scalar reference for Optional folds.
func scalarOptional(f Func, acc, values []float64, present, null []bool) (folded int) {
	for i := range acc {
		if null != nil && null[i] {
			continue
		}
		if present != nil && !present[i] {
			continue
		}
		acc[i] = f.Fold(acc[i], f.Lift(values[i]))
		folded++
	}
	return folded
}

// randomValue draws measures that stress float folding: magnitudes across
// many exponents, negatives, exact zeros of both signs, and ±Inf.
func randomValue(rng *rand.Rand) float64 {
	switch rng.Intn(10) {
	case 0:
		return 0.0
	case 1:
		return math.Copysign(0, -1)
	case 2:
		return math.Inf(1)
	case 3:
		return math.Inf(-1)
	default:
		return (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(12)-6))
	}
}

// userAvgLike is a user-supplied (non-builtin) function to exercise the
// generic fallback kernel: a deliberately order-sensitive fold.
var userAvgLike = Func{
	Name:     "HALFSUM",
	Identity: 0,
	Lift:     func(v float64) float64 { return v / 2 },
	Fold:     func(a, b float64) float64 { return a + b },
}

func TestKernelsMatchScalarReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	funcs := []Func{Sum, Min, Max, Count, userAvgLike}
	for _, f := range funcs {
		k := KernelFor(f)
		for trial := 0; trial < 200; trial++ {
			n := rng.Intn(64)
			values := make([]float64, n)
			present := make([]bool, n)
			null := make([]bool, n)
			acc := make([]float64, n)
			for i := range values {
				values[i] = randomValue(rng)
				present[i] = rng.Intn(4) != 0
				null[i] = rng.Intn(5) == 0
				if rng.Intn(2) == 0 {
					acc[i] = randomValue(rng)
				} else {
					acc[i] = f.Identity
				}
			}
			wantAcc := append([]float64(nil), acc...)
			wantNull := append([]bool(nil), null...)

			for _, mode := range []string{"raw", "stored", "optional"} {
				gotAcc := append([]float64(nil), acc...)
				gotNull := append([]bool(nil), null...)
				refAcc := append([]float64(nil), wantAcc...)
				refNull := append([]bool(nil), wantNull...)
				var gf, gn, rf, rn int
				switch mode {
				case "raw":
					gf, gn = k.Raw(gotAcc, values, present, gotNull)
					rf, rn = scalarRequired(f, false, refAcc, values, present, refNull)
				case "stored":
					gf, gn = k.Stored(gotAcc, values, present, gotNull)
					rf, rn = scalarRequired(f, true, refAcc, values, present, refNull)
				case "optional":
					gf, gn = k.Optional(gotAcc, values, present, gotNull)
					rf = scalarOptional(f, refAcc, values, present, refNull)
					rn = 0
				}
				if gf != rf || gn != rn {
					t.Fatalf("%s/%s trial %d: counts (folded=%d nulls=%d), scalar (%d, %d)",
						f.Name, mode, trial, gf, gn, rf, rn)
				}
				for i := range gotAcc {
					if math.Float64bits(gotAcc[i]) != math.Float64bits(refAcc[i]) {
						t.Fatalf("%s/%s trial %d: acc[%d] = %v (bits %x), scalar %v (bits %x)",
							f.Name, mode, trial, i, gotAcc[i], math.Float64bits(gotAcc[i]),
							refAcc[i], math.Float64bits(refAcc[i]))
					}
					if gotNull[i] != refNull[i] {
						t.Fatalf("%s/%s trial %d: null[%d] = %v, scalar %v",
							f.Name, mode, trial, i, gotNull[i], refNull[i])
					}
				}
			}
		}
	}
}

func TestKernelDensePathMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, f := range []Func{Sum, Min, Max, Count, userAvgLike} {
		k := KernelFor(f)
		for trial := 0; trial < 100; trial++ {
			n := rng.Intn(64)
			values := make([]float64, n)
			acc := make([]float64, n)
			for i := range values {
				values[i] = randomValue(rng)
				acc[i] = f.Identity
			}
			for mode, fold := range map[string]BlockFold{
				"raw": k.Raw, "stored": k.Stored, "optional": k.Optional,
			} {
				gotAcc := append([]float64(nil), acc...)
				refAcc := append([]float64(nil), acc...)
				folded, nulls := fold(gotAcc, values, nil, nil)
				if folded != n || nulls != 0 {
					t.Fatalf("%s/%s dense: folded=%d nulls=%d, want %d, 0", f.Name, mode, folded, nulls, n)
				}
				scalarRequired(f, mode == "stored", refAcc, values, nil, nil)
				for i := range gotAcc {
					if math.Float64bits(gotAcc[i]) != math.Float64bits(refAcc[i]) {
						t.Fatalf("%s/%s dense trial %d: acc[%d] = %v, scalar %v",
							f.Name, mode, trial, i, gotAcc[i], refAcc[i])
					}
				}
			}
		}
	}
}

func TestReduceMatchesAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, f := range []Func{Sum, Min, Max, Count, userAvgLike} {
		k := KernelFor(f)
		for trial := 0; trial < 100; trial++ {
			n := rng.Intn(100)
			values := make([]float64, n)
			for i := range values {
				values[i] = randomValue(rng)
			}
			got := k.Reduce(f.Identity, values)
			want := f.Aggregate(values)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s trial %d: Reduce = %v (bits %x), Aggregate = %v (bits %x)",
					f.Name, trial, got, math.Float64bits(got), want, math.Float64bits(want))
			}
			// Reduce must also chain across split blocks (distributivity of
			// the running accumulator, which AggregateInto relies on).
			if n > 1 {
				mid := rng.Intn(n)
				chained := k.Reduce(k.Reduce(f.Identity, values[:mid]), values[mid:])
				if math.Float64bits(chained) != math.Float64bits(want) {
					t.Fatalf("%s trial %d: chained Reduce = %v, want %v", f.Name, trial, chained, want)
				}
			}
		}
	}
}
