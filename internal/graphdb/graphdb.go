// Package graphdb is grove's stand-in for the paper's baseline (ii): a
// native graph database in the mould of neo4j. Each graph record is stored
// as its own property graph — node records pointing into per-node
// relationship chains, with measures as properties — and graph queries are
// answered by traversal: locate candidate records through a node index, then
// walk each candidate's adjacency to verify every query edge.
//
// This reproduces why the native store loses on the paper's workload: query
// cost is per-candidate-record traversal work (plus property reads through
// pointer chases), instead of one bitmap AND over the whole collection, and
// the storage format spends fixed-size node/relationship/property records on
// every element (the paper's Fig. 4 shows neo4j with the largest footprint).
package graphdb

import (
	"sort"

	"grove/internal/graph"
)

// Simulated on-disk record sizes, mirroring neo4j's fixed-size store files
// (node 15 B, relationship 34 B, property 41 B).
const (
	nodeRecordBytes = 15
	relRecordBytes  = 34
	propRecordBytes = 41
)

// relationship is one stored edge with its measure property.
type relationship struct {
	to         string
	measure    float64
	hasMeasure bool
}

// recordGraph is the adjacency representation of one stored graph record.
type recordGraph struct {
	out       map[string][]relationship
	nodeProps map[string]float64
	numNodes  int
	numRels   int
}

// Store is the native graph database.
type Store struct {
	records []*recordGraph
	// nodeIndex lists, per node name, the records containing the node —
	// the label/property index a graph DB uses to anchor traversals.
	nodeIndex map[string][]uint32
}

// New returns an empty store.
func New() *Store {
	return &Store{nodeIndex: make(map[string][]uint32)}
}

// AddRecord stores a graph record, returning its record id.
func (s *Store) AddRecord(rec *graph.Record) uint32 {
	id := uint32(len(s.records))
	rg := &recordGraph{
		out:       make(map[string][]relationship),
		nodeProps: make(map[string]float64),
	}
	for _, n := range rec.Nodes() {
		rg.numNodes++
		s.nodeIndex[n] = append(s.nodeIndex[n], id)
		if m := rec.Measure(graph.NodeKey(n)); m.Valid {
			rg.nodeProps[n] = m.Value
		}
	}
	for _, k := range rec.Elements() {
		if k.IsNode() {
			continue
		}
		m := rec.Measure(k)
		rg.out[k.From] = append(rg.out[k.From], relationship{
			to: k.To, measure: m.Value, hasMeasure: m.Valid,
		})
		rg.numRels++
	}
	s.records = append(s.records, rg)
	return id
}

// NumRecords returns the number of stored records.
func (s *Store) NumRecords() int { return len(s.records) }

// hasEdge walks the relationship chain of k.From looking for k.To — the
// traversal primitive.
func (rg *recordGraph) hasEdge(k graph.EdgeKey) bool {
	if k.IsNode() {
		_, ok := rg.out[k.From]
		if ok {
			return true
		}
		_, ok = rg.nodeProps[k.From]
		return ok
	}
	for _, rel := range rg.out[k.From] {
		if rel.to == k.To {
			return true
		}
	}
	return false
}

// edgeMeasure walks the chain and returns the measure property of edge k.
func (rg *recordGraph) edgeMeasure(k graph.EdgeKey) (float64, bool) {
	if k.IsNode() {
		v, ok := rg.nodeProps[k.From]
		return v, ok
	}
	for _, rel := range rg.out[k.From] {
		if rel.to == k.To {
			return rel.measure, rel.hasMeasure
		}
	}
	return 0, false
}

// candidates returns the records containing the traversal anchor: the
// source node of the query's first edge, located through the node index.
// A traversal engine anchors on one pattern node and expands from there; it
// does not know global selectivities, so every query edge is then verified
// by walking each candidate's relationship chains.
func (s *Store) candidates(elements []graph.EdgeKey) []uint32 {
	return s.nodeIndex[elements[0].From]
}

// MatchQuery returns the ids of records containing every query element,
// verified by per-record traversal. The pattern is matched one weakly
// connected component at a time — the way a traversal engine handles a
// disconnected pattern — each component anchoring on its own start node and
// verifying its edges against every candidate record.
func (s *Store) MatchQuery(elements []graph.EdgeKey) []uint32 {
	if len(elements) == 0 {
		return nil
	}
	var result map[uint32]struct{}
	for _, comp := range connectedComponents(elements) {
		matched := make(map[uint32]struct{})
		for _, id := range s.candidates(comp) {
			if result != nil {
				if _, still := result[id]; !still {
					continue // already eliminated by a previous component
				}
			}
			rg := s.records[id]
			match := true
			for _, k := range comp {
				if !rg.hasEdge(k) {
					match = false
					break
				}
			}
			if match {
				matched[id] = struct{}{}
			}
		}
		result = matched
		if len(result) == 0 {
			break
		}
	}
	out := make([]uint32, 0, len(result))
	for id := range result {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// connectedComponents groups query elements into weakly connected
// components, preserving the order elements first appear.
func connectedComponents(elements []graph.EdgeKey) [][]graph.EdgeKey {
	parent := make(map[string]string)
	var find func(x string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p != x {
			p = find(p)
			parent[x] = p
		}
		return p
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, k := range elements {
		union(k.From, k.To)
	}
	groups := make(map[string][]graph.EdgeKey)
	var order []string
	for _, k := range elements {
		root := find(k.From)
		if _, seen := groups[root]; !seen {
			order = append(order, root)
		}
		groups[root] = append(groups[root], k)
	}
	out := make([][]graph.EdgeKey, 0, len(order))
	for _, root := range order {
		out = append(out, groups[root])
	}
	return out
}

// FetchMeasures traverses each matched record again to read the measure
// properties of the query elements. It returns the sum (forcing the reads)
// and the number of property values read.
func (s *Store) FetchMeasures(records []uint32, elements []graph.EdgeKey) (sum float64, n int64) {
	for _, id := range records {
		rg := s.records[id]
		for _, k := range elements {
			if v, ok := rg.edgeMeasure(k); ok {
				sum += v
				n++
			}
		}
	}
	return sum, n
}

// AggregateAlongPath matches the query and folds the path-edge measures per
// record via traversal.
func (s *Store) AggregateAlongPath(elements []graph.EdgeKey, identity float64, fold func(a, b float64) float64) map[uint32]float64 {
	records := s.MatchQuery(elements)
	out := make(map[uint32]float64, len(records))
	for _, id := range records {
		rg := s.records[id]
		acc := identity
		ok := true
		for _, k := range elements {
			v, has := rg.edgeMeasure(k)
			if !has {
				ok = false
				break
			}
			acc = fold(acc, v)
		}
		if ok {
			out[id] = acc
		}
	}
	return out
}

// DiskSizeBytes reports the simulated footprint using neo4j-style fixed
// record sizes: one node record + one property record per node, one
// relationship record + one property record per edge, plus the node index.
func (s *Store) DiskSizeBytes() int64 {
	var n int64
	for _, rg := range s.records {
		n += int64(rg.numNodes) * (nodeRecordBytes + propRecordBytes)
		n += int64(rg.numRels) * (relRecordBytes + propRecordBytes)
	}
	for _, postings := range s.nodeIndex {
		n += int64(len(postings)) * 8
	}
	return n
}
