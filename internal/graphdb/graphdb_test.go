package graphdb

import (
	"math/rand"
	"testing"

	"grove/internal/graph"
)

func mkRecord(t *testing.T, edges map[[2]string]float64) *graph.Record {
	t.Helper()
	r := graph.NewRecord()
	for e, v := range edges {
		if err := r.SetEdge(e[0], e[1], v); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestMatchQueryTraversal(t *testing.T) {
	s := New()
	s.AddRecord(mkRecord(t, map[[2]string]float64{{"A", "B"}: 1, {"B", "C"}: 2}))
	s.AddRecord(mkRecord(t, map[[2]string]float64{{"A", "B"}: 3, {"C", "D"}: 4}))
	s.AddRecord(mkRecord(t, map[[2]string]float64{{"B", "C"}: 5}))

	got := s.MatchQuery([]graph.EdgeKey{graph.E("A", "B"), graph.E("B", "C")})
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("match = %v", got)
	}
	if got := s.MatchQuery([]graph.EdgeKey{graph.E("Z", "W")}); len(got) != 0 {
		t.Errorf("unknown edge matched: %v", got)
	}
	if got := s.MatchQuery(nil); got != nil {
		t.Errorf("empty query matched: %v", got)
	}
}

func TestNodeElements(t *testing.T) {
	s := New()
	r := graph.NewRecord()
	if err := r.SetEdge("A", "B", 1); err != nil {
		t.Fatal(err)
	}
	if err := r.SetNode("A", 7); err != nil {
		t.Fatal(err)
	}
	s.AddRecord(r)
	got := s.MatchQuery([]graph.EdgeKey{graph.NodeKey("A")})
	if len(got) != 1 {
		t.Fatalf("node query = %v", got)
	}
	sum, n := s.FetchMeasures(got, []graph.EdgeKey{graph.NodeKey("A")})
	if sum != 7 || n != 1 {
		t.Errorf("node measure = %v,%d", sum, n)
	}
}

func TestFetchMeasuresAndAggregate(t *testing.T) {
	s := New()
	s.AddRecord(mkRecord(t, map[[2]string]float64{{"A", "B"}: 1, {"B", "C"}: 2}))
	s.AddRecord(mkRecord(t, map[[2]string]float64{{"A", "B"}: 3, {"B", "C"}: 4}))
	q := []graph.EdgeKey{graph.E("A", "B"), graph.E("B", "C")}
	sum, n := s.FetchMeasures([]uint32{0, 1}, q)
	if sum != 10 || n != 4 {
		t.Errorf("FetchMeasures = %v,%d", sum, n)
	}
	agg := s.AggregateAlongPath(q, 0, func(a, b float64) float64 { return a + b })
	if agg[0] != 3 || agg[1] != 7 {
		t.Errorf("aggregate = %v", agg)
	}
}

func TestAggregateSkipsNullMeasures(t *testing.T) {
	s := New()
	r := graph.NewRecord()
	if err := r.SetEdge("A", "B", 1); err != nil {
		t.Fatal(err)
	}
	r.AddBareElement(graph.E("B", "C"))
	s.AddRecord(r)
	agg := s.AggregateAlongPath(
		[]graph.EdgeKey{graph.E("A", "B"), graph.E("B", "C")},
		0, func(a, b float64) float64 { return a + b })
	if len(agg) != 0 {
		t.Errorf("record with NULL measure aggregated: %v", agg)
	}
}

func TestDiskSize(t *testing.T) {
	s := New()
	s.AddRecord(mkRecord(t, map[[2]string]float64{{"A", "B"}: 1}))
	// 2 nodes + 1 relationship (+props) + 2 index postings.
	want := int64(2*(nodeRecordBytes+propRecordBytes) + relRecordBytes + propRecordBytes + 16)
	if got := s.DiskSizeBytes(); got != want {
		t.Errorf("DiskSizeBytes = %d, want %d", got, want)
	}
}

func TestMatchRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := New()
	var recs []*graph.Record
	names := []string{"A", "B", "C", "D", "E"}
	for i := 0; i < 200; i++ {
		r := graph.NewRecord()
		for j := 0; j < 3+rng.Intn(6); j++ {
			a, b := names[rng.Intn(5)], names[rng.Intn(5)]
			if a == b {
				continue
			}
			if err := r.SetEdge(a, b, 1); err != nil {
				t.Fatal(err)
			}
		}
		recs = append(recs, r)
		s.AddRecord(r)
	}
	for trial := 0; trial < 50; trial++ {
		var q []graph.EdgeKey
		for j := 0; j < 1+rng.Intn(3); j++ {
			a, b := names[rng.Intn(5)], names[rng.Intn(5)]
			if a != b {
				q = append(q, graph.E(a, b))
			}
		}
		if len(q) == 0 {
			continue
		}
		got := s.MatchQuery(q)
		var want []uint32
		for i, r := range recs {
			all := true
			for _, k := range q {
				if !r.HasElement(k) {
					all = false
					break
				}
			}
			if all {
				want = append(want, uint32(i))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v want %v", trial, got, want)
			}
		}
	}
}
