// Package mine implements the frequent-subgraph mining substrate grove uses
// to reproduce the gIndex comparison of §6.3 and Figs. 10–11: a gSpan-style
// pattern-growth miner over a record sample, followed by gIndex-style
// discriminative-fragment selection. The selected fragments become extra
// bitmap columns in the master relation — exactly how the paper integrates
// specialized graph indexes into its framework.
//
// Because grove's records use globally named nodes (§1), two subgraphs match
// iff their edge sets are equal — no subgraph-isomorphism search or DFS-code
// canonization is needed. The miner therefore grows *connected edge sets*,
// which is the gSpan pattern space specialized to unique labels; supports
// are counted with transaction-id bitmaps.
package mine

import (
	"fmt"
	"sort"
	"strings"

	"grove/internal/bitmap"
	"grove/internal/graph"
)

// Fragment is a mined connected subgraph with its support in the training
// sample.
type Fragment struct {
	Edges   []graph.EdgeKey // sorted, unique
	Support int
	// tids is the set of training-record indexes containing the fragment.
	tids *bitmap.Bitmap
}

// Key returns the canonical identity of the fragment.
func (f Fragment) Key() string {
	parts := make([]string, len(f.Edges))
	for i, e := range f.Edges {
		parts[i] = e.String()
	}
	return strings.Join(parts, "")
}

// Size returns the number of edges.
func (f Fragment) Size() int { return len(f.Edges) }

// Config bounds the mining run.
type Config struct {
	MinSupport   int // minimum number of sample records containing a fragment (≥1)
	MaxEdges     int // largest fragment size to grow (gSpan's maxL)
	MaxFragments int // safety cap on the result size (0 = 100000)
}

// MineFrequent grows all frequent connected fragments of the sample records
// by pattern growth: frequent single edges first, then repeated extension of
// each frequent fragment with edges adjacent to it inside its supporting
// records.
func MineFrequent(records []*graph.Record, cfg Config) ([]Fragment, error) {
	if cfg.MinSupport < 1 {
		return nil, fmt.Errorf("mine: MinSupport must be ≥ 1, got %d", cfg.MinSupport)
	}
	if cfg.MaxEdges < 1 {
		return nil, fmt.Errorf("mine: MaxEdges must be ≥ 1, got %d", cfg.MaxEdges)
	}
	maxFragments := cfg.MaxFragments
	if maxFragments <= 0 {
		maxFragments = 100000
	}

	// Level 1: frequent single edges with tid bitmaps.
	tidOf := make(map[graph.EdgeKey]*bitmap.Bitmap)
	for i, rec := range records {
		for _, k := range rec.Elements() {
			b, ok := tidOf[k]
			if !ok {
				b = bitmap.New()
				tidOf[k] = b
			}
			b.Add(uint32(i))
		}
	}
	var level []Fragment
	for k, tids := range tidOf {
		if tids.Cardinality() >= cfg.MinSupport {
			level = append(level, Fragment{Edges: []graph.EdgeKey{k}, Support: tids.Cardinality(), tids: tids})
		}
	}
	sortFragments(level)

	all := append([]Fragment(nil), level...)
	seen := make(map[string]struct{}, len(level))
	for _, f := range level {
		seen[f.Key()] = struct{}{}
	}

	for size := 1; size < cfg.MaxEdges && len(level) > 0; size++ {
		var next []Fragment
		for _, f := range level {
			// Candidate extensions: edges adjacent to f inside supporting
			// records.
			nodes := fragmentNodes(f)
			extTid := make(map[graph.EdgeKey]*bitmap.Bitmap)
			f.tids.Each(func(tid uint32) bool {
				rec := records[tid]
				for n := range nodes {
					for _, s := range rec.Successors(n) {
						consider(extTid, graph.E(n, s), f, tid)
					}
					for _, p := range rec.Predecessors(n) {
						consider(extTid, graph.E(p, n), f, tid)
					}
					if rec.HasElement(graph.NodeKey(n)) {
						consider(extTid, graph.NodeKey(n), f, tid)
					}
				}
				return true
			})
			for ext, tids := range extTid {
				if tids.Cardinality() < cfg.MinSupport {
					continue
				}
				edges := append(append([]graph.EdgeKey(nil), f.Edges...), ext)
				sort.Slice(edges, func(i, j int) bool { return edges[i].Less(edges[j]) })
				nf := Fragment{Edges: edges, Support: tids.Cardinality(), tids: tids}
				key := nf.Key()
				if _, dup := seen[key]; dup {
					continue
				}
				seen[key] = struct{}{}
				next = append(next, nf)
				if len(all)+len(next) > maxFragments {
					return nil, fmt.Errorf("mine: more than %d frequent fragments; raise MinSupport", maxFragments)
				}
			}
		}
		sortFragments(next)
		all = append(all, next...)
		level = next
	}
	return all, nil
}

// consider accumulates the tid of one candidate extension, skipping edges
// already in the fragment.
func consider(extTid map[graph.EdgeKey]*bitmap.Bitmap, e graph.EdgeKey, f Fragment, tid uint32) {
	for _, have := range f.Edges {
		if have == e {
			return
		}
	}
	b, ok := extTid[e]
	if !ok {
		b = bitmap.New()
		extTid[e] = b
	}
	b.Add(tid)
}

func fragmentNodes(f Fragment) map[string]struct{} {
	nodes := make(map[string]struct{}, 2*len(f.Edges))
	for _, e := range f.Edges {
		nodes[e.From] = struct{}{}
		nodes[e.To] = struct{}{}
	}
	return nodes
}

func sortFragments(fs []Fragment) {
	sort.Slice(fs, func(i, j int) bool {
		if len(fs[i].Edges) != len(fs[j].Edges) {
			return len(fs[i].Edges) < len(fs[j].Edges)
		}
		if fs[i].Support != fs[j].Support {
			return fs[i].Support > fs[j].Support
		}
		return fs[i].Key() < fs[j].Key()
	})
}

// SelectDiscriminative applies gIndex's discriminative-fragment test,
// adapted to grove's named-node setting: walk fragments in increasing size
// and keep fragment f only when the already-kept subfragments of f select at
// least gamma× more training records than f itself — i.e. f genuinely
// narrows the candidate set beyond what is already indexed. With no kept
// subfragment the comparison base is the whole sample.
//
// Adaptation note: in the original gIndex the base also intersects size-1
// fragments, but grove's master relation stores an exact bitmap per single
// edge, whose intersection IS the answer — under that base no fragment is
// ever discriminative. What a fragment column buys here is the same thing a
// graph view buys: fewer bitmap fetches per query (§6.3). Measuring
// discriminativeness against kept multi-edge fragments keeps the selection
// non-redundant, which is the property the Figs. 10–11 comparison needs.
// numRecords is the training sample size.
func SelectDiscriminative(fragments []Fragment, numRecords int, gamma float64) []Fragment {
	if gamma < 1 {
		gamma = 1
	}
	ordered := append([]Fragment(nil), fragments...)
	sortFragments(ordered)
	var kept []Fragment
	for _, f := range ordered {
		if f.Size() < 2 || f.Support == 0 {
			continue
		}
		base := intersectSubfragments(f, kept, numRecords)
		if float64(base)/float64(f.Support) >= gamma {
			kept = append(kept, f)
		}
	}
	return kept
}

// intersectSubfragments counts the training records the kept subfragments of
// f select together (the whole sample when none is kept yet).
func intersectSubfragments(f Fragment, kept []Fragment, numRecords int) int {
	var acc *bitmap.Bitmap
	for _, k := range kept {
		if k.Size() < f.Size() && subsetEdges(k.Edges, f.Edges) {
			if acc == nil {
				acc = k.tids.Clone()
			} else {
				acc = acc.And(k.tids)
			}
		}
	}
	if acc == nil {
		return numRecords
	}
	return acc.Cardinality()
}

func subsetEdges(sub, super []graph.EdgeKey) bool {
	i := 0
	for _, e := range sub {
		for i < len(super) && super[i].Less(e) {
			i++
		}
		if i >= len(super) || super[i] != e {
			return false
		}
	}
	return true
}
