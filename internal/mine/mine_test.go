package mine

import (
	"math/rand"
	"testing"

	"grove/internal/graph"
)

func chainRecord(t *testing.T, nodes ...string) *graph.Record {
	t.Helper()
	r := graph.NewRecord()
	for i := 0; i+1 < len(nodes); i++ {
		if err := r.SetEdge(nodes[i], nodes[i+1], 1); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestMineFrequentSingleEdges(t *testing.T) {
	records := []*graph.Record{
		chainRecord(t, "A", "B", "C"),
		chainRecord(t, "A", "B", "D"),
		chainRecord(t, "X", "Y"),
	}
	frags, err := MineFrequent(records, Config{MinSupport: 2, MaxEdges: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Only (A,B) occurs in ≥2 records.
	if len(frags) != 1 || frags[0].Edges[0] != graph.E("A", "B") || frags[0].Support != 2 {
		t.Fatalf("fragments = %+v", frags)
	}
}

func TestMineFrequentGrowsConnected(t *testing.T) {
	records := []*graph.Record{
		chainRecord(t, "A", "B", "C", "D"),
		chainRecord(t, "A", "B", "C", "E"),
		chainRecord(t, "A", "B", "C", "F"),
	}
	frags, err := MineFrequent(records, Config{MinSupport: 3, MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]int{}
	for _, f := range frags {
		keys[f.Key()] = f.Support
	}
	// (A,B), (B,C) and the 2-edge chain (A,B)(B,C) all have support 3.
	if keys["(A,B)"] != 3 || keys["(B,C)"] != 3 {
		t.Fatalf("single-edge supports wrong: %v", keys)
	}
	if keys["(A,B)(B,C)"] != 3 {
		t.Fatalf("chain fragment missing: %v", keys)
	}
	// Nothing of size 3 is frequent (the third edges differ).
	for _, f := range frags {
		if f.Size() >= 3 {
			t.Fatalf("unexpected size-3 fragment %s", f.Key())
		}
	}
}

func TestMineFrequentConnectivity(t *testing.T) {
	// (A,B) and (X,Y) co-occur but are disconnected: no 2-edge fragment.
	records := []*graph.Record{
		chainRecord(t, "A", "B"),
		chainRecord(t, "A", "B"),
	}
	for _, r := range records {
		if err := r.SetEdge("X", "Y", 1); err != nil {
			t.Fatal(err)
		}
	}
	frags, err := MineFrequent(records, Config{MinSupport: 2, MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frags {
		if f.Size() > 1 {
			t.Fatalf("disconnected fragment grown: %s", f.Key())
		}
	}
}

func TestMineFrequentValidation(t *testing.T) {
	if _, err := MineFrequent(nil, Config{MinSupport: 0, MaxEdges: 1}); err == nil {
		t.Error("MinSupport=0 accepted")
	}
	if _, err := MineFrequent(nil, Config{MinSupport: 1, MaxEdges: 0}); err == nil {
		t.Error("MaxEdges=0 accepted")
	}
}

func TestMineFragmentCap(t *testing.T) {
	var records []*graph.Record
	for i := 0; i < 3; i++ {
		records = append(records, chainRecord(t, "A", "B", "C", "D", "E", "F", "G", "H"))
	}
	if _, err := MineFrequent(records, Config{MinSupport: 2, MaxEdges: 7, MaxFragments: 5}); err == nil {
		t.Error("fragment cap not enforced")
	}
}

func TestSelectDiscriminative(t *testing.T) {
	// 10 records with (A,B); of those, 9 also have (B,C); only 2 have the
	// pair (A,B),(B,C) plus (C,D).
	var records []*graph.Record
	for i := 0; i < 10; i++ {
		nodes := []string{"A", "B"}
		if i < 9 {
			nodes = append(nodes, "C")
		}
		if i < 2 {
			nodes = append(nodes, "D")
		}
		records = append(records, chainRecord(t, nodes...))
	}
	frags, err := MineFrequent(records, Config{MinSupport: 2, MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	kept := SelectDiscriminative(frags, len(records), 2.0)
	keys := map[string]bool{}
	for _, f := range kept {
		keys[f.Key()] = true
	}
	// (A,B)(B,C) has support 9 against a 10-record sample: ratio 10/9 < 2 →
	// NOT discriminative.
	if keys["(A,B)(B,C)"] {
		t.Error("non-discriminative fragment kept")
	}
	// (B,C)(C,D) has support 2 against the sample: ratio 5 ≥ 2 → kept.
	if !keys["(B,C)(C,D)"] {
		t.Errorf("discriminative fragment dropped; kept=%v", keys)
	}
	// The 3-edge chain is redundant with the kept (B,C)(C,D): base 2,
	// support 2, ratio 1 → dropped.
	if keys["(A,B)(B,C)(C,D)"] {
		t.Errorf("redundant superset fragment kept; kept=%v", keys)
	}
	// Size-1 fragments never selected.
	for _, f := range kept {
		if f.Size() < 2 {
			t.Error("single edge selected as fragment")
		}
	}
}

func TestSelectDiscriminativeGammaFloor(t *testing.T) {
	records := []*graph.Record{
		chainRecord(t, "A", "B", "C"),
		chainRecord(t, "A", "B", "C"),
	}
	frags, err := MineFrequent(records, Config{MinSupport: 2, MaxEdges: 2})
	if err != nil {
		t.Fatal(err)
	}
	// gamma < 1 is clamped to 1: with ratio exactly 1 everything passes.
	kept := SelectDiscriminative(frags, 2, 0)
	if len(kept) == 0 {
		t.Error("gamma floor dropped everything")
	}
}

func TestMineOnRandomRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	names := []string{"A", "B", "C", "D", "E", "F"}
	var records []*graph.Record
	for i := 0; i < 100; i++ {
		r := graph.NewRecord()
		for j := 0; j < 4+rng.Intn(4); j++ {
			a, b := names[rng.Intn(6)], names[rng.Intn(6)]
			if a == b {
				continue
			}
			if err := r.SetEdge(a, b, 1); err != nil {
				t.Fatal(err)
			}
		}
		records = append(records, r)
	}
	frags, err := MineFrequent(records, Config{MinSupport: 10, MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Every reported support must be exact.
	for _, f := range frags {
		count := 0
		for _, r := range records {
			all := true
			for _, e := range f.Edges {
				if !r.HasElement(e) {
					all = false
					break
				}
			}
			if all {
				count++
			}
		}
		if count != f.Support {
			t.Fatalf("fragment %s support %d, brute force %d", f.Key(), f.Support, count)
		}
		if count < 10 {
			t.Fatalf("fragment %s below MinSupport", f.Key())
		}
	}
}
