package colstore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"grove/internal/agg"
	"grove/internal/bitmap"
	"grove/internal/pagepool"
)

// EdgeID identifies a structural element (edge or node — a node X is the
// special edge [X,X], §4.1) in the universal numbering scheme shared by all
// records and queries.
type EdgeID uint32

// DefaultPartitionWidth is the paper's vertical-partitioning bound: the
// master relation is automatically broken into sub-relations of at most one
// thousand (edge) columns each (§6.1).
const DefaultPartitionWidth = 1000

// GraphView is a materialized graph view (§5.1.1): a single bitmap column
// b_v whose bit r is set iff record r contains every edge in Edges.
type GraphView struct {
	Name  string
	Edges []EdgeID // sorted, unique
	Col   *BitmapColumn

	// uses counts query-visible fetches of the view's columns since the
	// view was created — the evidence a view advisor (or an operator
	// deciding what to drop) needs to justify keeping it materialized.
	uses atomic.Int64
}

// Uses returns how many times a query fetched this view's bitmap.
func (v *GraphView) Uses() int64 { return v.uses.Load() }

// AggregateView is a materialized aggregate graph view (§5.1.2): a measure
// column m_p holding F(measures along path p) for each record containing p,
// plus the bitmap column b_p of those records.
type AggregateView struct {
	Name string
	Path []EdgeID // path edges in traversal order
	Func string   // aggregate function name (e.g. "SUM")
	// MeasureName selects which measure the view aggregates ("" = default;
	// named measures are the m_i^name columns of multi-measure records).
	MeasureName string
	Measure     *MeasureColumn
	Col         *BitmapColumn

	fn   agg.Func     // bound function, used for incremental maintenance
	uses atomic.Int64 // query-visible fetches (bitmap or measure), see GraphView
}

// Uses returns how many times a query fetched this view's bitmap or
// measure column.
func (v *AggregateView) Uses() int64 { return v.uses.Load() }

// Relation is the master relation R of the paper: one row per graph record,
// one (measure, bitmap) column pair per edge id, plus materialized view
// columns. All query-visible fetches go through the Fetch* methods so the
// I/O cost model can account them.
//
// Concurrency: the relation is safe for many concurrent readers alongside
// writers. Every mutator takes the write lock internally; readers bracket
// each query with BeginRead/EndRead (the fetch accessors return shared
// bitmap pointers that are iterated after the fetch call returns, so the
// read lock must span the whole query, not just the fetch). Version and
// NumRecords are atomics so caches can snapshot them without any lock.
type Relation struct {
	mu         sync.RWMutex
	numRecords atomic.Uint32
	partWidth  int
	measures   map[EdgeID]*MeasureColumn            // default measure columns m_i
	named      map[string]map[EdgeID]*MeasureColumn // named measure columns m_i^name
	bitmaps    map[EdgeID]*BitmapColumn
	views      map[string]*GraphView
	aggViews   map[string]*AggregateView
	tags       map[string]map[string]*BitmapColumn // key → value → records
	partMap    map[EdgeID]int                      // optional clustered partition assignment (§6.1)
	deleted    *bitmap.Bitmap                      // soft-deleted record ids
	version    atomic.Uint64                       // bumped on every mutation
	tracker    Tracker

	// saveMu serializes overlapping Save calls: each produces its own
	// complete generation instead of racing on the next sequence number.
	saveMu sync.Mutex
	// snapKeep is how many snapshot generations Save retains (0 selects
	// DefaultSnapshotKeep). Atomic so SetSnapshotKeep needs no lock.
	snapKeep atomic.Int32
	// gcProtect names one generation snapshot GC must never collect: the one
	// a sharded coordinator's durable cross-shard manifest still pins. Nil
	// means no pin. Atomic so the coordinator can repoint it without holding
	// saveMu.
	gcProtect atomic.Pointer[string]

	// pagePool caches decoded measure blocks of paged (v2-snapshot) columns;
	// nil for a purely in-memory relation. pageSrcs are the snapshot files
	// those blocks fault in from, and srcGen names the generation holding
	// them — snapshot GC must never collect it while this relation is alive,
	// or lazy reads would dangle.
	pagePool *pagepool.Pool
	pageSrcs []*pageSource
	srcGen   atomic.Pointer[string]
}

// DefaultSnapshotKeep is how many snapshot generations Save retains on
// disk. Keeping at least two means the previous generation survives as a
// fallback when the newest turns out damaged.
const DefaultSnapshotKeep = 2

// SetSnapshotKeep sets how many snapshot generations Save retains on disk;
// older ones are garbage-collected after each successful Save. n < 1
// resets to DefaultSnapshotKeep.
func (r *Relation) SetSnapshotKeep(n int) {
	if n < 1 {
		n = 0
	}
	r.snapKeep.Store(int32(n))
}

func (r *Relation) snapshotKeep() int {
	if v := r.snapKeep.Load(); v > 0 {
		return int(v)
	}
	return DefaultSnapshotKeep
}

// SetGCProtect pins gen against snapshot garbage collection ("" unpins).
// The sharded coordinator pins the generation its durable manifest names, so
// repeated crashed coordinated saves can never GC the cut Load rolls back to.
func (r *Relation) SetGCProtect(gen string) {
	if gen == "" {
		r.gcProtect.Store(nil)
		return
	}
	r.gcProtect.Store(&gen)
}

func (r *Relation) gcProtectName() string {
	if p := r.gcProtect.Load(); p != nil {
		return *p
	}
	return ""
}

// DefaultPageCacheBytes is the buffer-pool budget a loaded relation starts
// with: 256 MiB of decoded measure blocks.
const DefaultPageCacheBytes = 1 << 28

// SetPageCacheBytes sets the buffer-pool budget for paged measure blocks
// (≤0 = unbounded). A no-op for purely in-memory relations, which have no
// pool; shrinking evicts immediately.
func (r *Relation) SetPageCacheBytes(n int64) {
	if r.pagePool != nil {
		r.pagePool.SetBudget(n)
	}
}

// PagePoolStats returns the buffer pool's counters (zero value when the
// relation has no paged columns).
func (r *Relation) PagePoolStats() pagepool.Stats {
	if r.pagePool == nil {
		return pagepool.Stats{}
	}
	return r.pagePool.Stats()
}

// PageError returns the first sticky page-fault error of the relation's
// snapshot sources, if lazy block loading has failed. Query layers check it
// after scans over paged columns: a fault mid-scan yields zeros in place of
// the unreadable values, and this is how that surfaces.
func (r *Relation) PageError() error {
	for _, s := range r.pageSrcs {
		if err := s.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the relation's cached snapshot file handles. Paged columns
// that have not been materialized cannot fault blocks in afterwards; Close
// is for shutdown, not for returning the relation to in-memory use.
func (r *Relation) Close() error {
	var first error
	for _, s := range r.pageSrcs {
		if err := s.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// setSourceGen records the generation this relation lazily pages from; GC
// in SaveFSGen keeps it on disk for the relation's lifetime.
func (r *Relation) setSourceGen(gen string) {
	if gen == "" {
		r.srcGen.Store(nil)
		return
	}
	r.srcGen.Store(&gen)
}

func (r *Relation) sourceGenName() string {
	if p := r.srcGen.Load(); p != nil {
		return *p
	}
	return ""
}

// SourceGeneration returns the snapshot generation this relation was loaded
// from ("" for a relation never loaded from disk). The write-ahead log's
// header pins this value: a log only replays over the exact generation it
// extends.
func (r *Relation) SourceGeneration() string { return r.sourceGenName() }

// StorageStats describes where a relation's measure bytes live: the logical
// (decoded) size the cost model charges, the encoded on-disk size of paged
// columns, what is actually resident in memory, and the per-encoding block
// mix. Pool carries the buffer pool's hit/miss/eviction counters.
type StorageStats struct {
	LogicalBytes    int64 // decoded payload size of all measure columns
	OnDiskBytes     int64 // encoded block payload bytes of paged columns
	ResidentBytes   int64 // resident column values + block indexes + pooled blocks
	PagedColumns    int
	ResidentColumns int
	BlockEncodings  [numEncodings]int64 // block count per encoding tag
	Pool            pagepool.Stats
}

// BlockEncodingName names slot i of StorageStats.BlockEncodings.
func BlockEncodingName(i int) string { return EncodingName(i) }

// NumBlockEncodings is the number of block encoding tags.
const NumBlockEncodings = numEncodings

// StorageStats reports the relation's storage residency snapshot.
func (r *Relation) StorageStats() StorageStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var st StorageStats
	add := func(m *MeasureColumn) {
		st.LogicalBytes += int64(m.SizeBytes())
		st.OnDiskBytes += m.EncodedValueBytes()
		st.ResidentBytes += m.ResidentValueBytes()
		if m.isPaged() {
			st.PagedColumns++
			for i, n := range m.BlockEncodings() {
				st.BlockEncodings[i] += int64(n)
			}
		} else {
			st.ResidentColumns++
		}
	}
	for _, m := range r.measures {
		add(m)
	}
	for _, cols := range r.named {
		for _, m := range cols {
			add(m)
		}
	}
	for _, v := range r.aggViews {
		add(v.Measure)
	}
	if r.pagePool != nil {
		st.Pool = r.pagePool.Stats()
		st.ResidentBytes += st.Pool.ResidentBytes
	}
	return st
}

// NewRelation creates an empty master relation with the given vertical
// partition width (≤0 selects DefaultPartitionWidth).
func NewRelation(partitionWidth int) *Relation {
	if partitionWidth <= 0 {
		partitionWidth = DefaultPartitionWidth
	}
	return &Relation{
		partWidth: partitionWidth,
		measures:  make(map[EdgeID]*MeasureColumn),
		named:     make(map[string]map[EdgeID]*MeasureColumn),
		bitmaps:   make(map[EdgeID]*BitmapColumn),
		views:     make(map[string]*GraphView),
		aggViews:  make(map[string]*AggregateView),
	}
}

// Tracker returns the relation's I/O accounting tracker.
func (r *Relation) Tracker() *Tracker { return &r.tracker }

// Version returns a counter that changes whenever the relation mutates
// (records, measures, views, deletes). Caches key their entries on it.
func (r *Relation) Version() uint64 { return r.version.Load() }

func (r *Relation) bumpVersion() { r.version.Add(1) }

// BeginRead takes the relation's read lock. Query engines hold it across a
// whole query — the Fetch* accessors hand out shared bitmap pointers that
// the engine iterates after the call returns, so per-fetch locking would
// not be enough. Multiple readers proceed concurrently; writers wait.
// BeginRead must not be nested on the same goroutine (RWMutex read locks
// are not reentrant once a writer is queued).
func (r *Relation) BeginRead() { r.mu.RLock() }

// EndRead releases the read lock taken by BeginRead.
func (r *Relation) EndRead() { r.mu.RUnlock() }

// NewRecord allocates and returns the next record id.
func (r *Relation) NewRecord() uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bumpVersion()
	return r.numRecords.Add(1) - 1
}

// NumRecords returns the number of records loaded.
func (r *Relation) NumRecords() int { return int(r.numRecords.Load()) }

// SetEdge marks record rec as containing edge without recording a measure
// (the paper drops measure columns for elements no application measures).
func (r *Relation) SetEdge(rec uint32, edge EdgeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bumpVersion()
	r.edgeBitmap(edge).Set(rec)
}

// SetEdgeMeasure marks record rec as containing edge with default-measure
// value v.
func (r *Relation) SetEdgeMeasure(rec uint32, edge EdgeID, v float64) {
	r.mu.Lock() //grovevet:ignore lockorder the first Set on a paged column faults its blocks in to materialize it; that one-time I/O must happen under the write lock or a reader could see a half-materialized column
	defer r.mu.Unlock()
	r.setEdgeMeasureLocked(rec, edge, v)
}

func (r *Relation) setEdgeMeasureLocked(rec uint32, edge EdgeID, v float64) {
	r.bumpVersion()
	r.edgeBitmap(edge).Set(rec)
	m, ok := r.measures[edge]
	if !ok {
		m = NewMeasureColumn()
		r.measures[edge] = m
	}
	m.Set(rec, v)
}

// SetEdgeMeasureNamed marks record rec as containing edge with a value in
// the named measure column m_edge^name ("" = default measure).
func (r *Relation) SetEdgeMeasureNamed(rec uint32, edge EdgeID, name string, v float64) {
	r.mu.Lock() //grovevet:ignore lockorder the first Set on a paged column faults its blocks in to materialize it; that one-time I/O must happen under the write lock or a reader could see a half-materialized column
	defer r.mu.Unlock()
	if name == "" {
		r.setEdgeMeasureLocked(rec, edge, v)
		return
	}
	r.bumpVersion()
	r.edgeBitmap(edge).Set(rec)
	cols, ok := r.named[name]
	if !ok {
		cols = make(map[EdgeID]*MeasureColumn)
		r.named[name] = cols
	}
	m, ok := cols[edge]
	if !ok {
		m = NewMeasureColumn()
		cols[edge] = m
	}
	m.Set(rec, v)
}

// MeasureNames lists the named measures stored (excluding the default), in
// sorted order.
func (r *Relation) MeasureNames() []string {
	out := make([]string, 0, len(r.named))
	for name := range r.named {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (r *Relation) edgeBitmap(edge EdgeID) *BitmapColumn {
	b, ok := r.bitmaps[edge]
	if !ok {
		b = NewBitmapColumn()
		r.bitmaps[edge] = b
	}
	return b
}

// HasEdge reports whether any record contains the edge.
func (r *Relation) HasEdge(edge EdgeID) bool {
	_, ok := r.bitmaps[edge]
	return ok
}

// Edges returns all edge ids with at least one record, ascending.
func (r *Relation) Edges() []EdgeID {
	out := make([]EdgeID, 0, len(r.bitmaps))
	for e := range r.bitmaps {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TotalMeasures counts all non-NULL measure values, named included
// (Table 2's "total number of measures").
func (r *Relation) TotalMeasures() int64 {
	var n int64
	for _, m := range r.measures {
		n += int64(m.Count())
	}
	for _, cols := range r.named {
		for _, m := range cols {
			n += int64(m.Count())
		}
	}
	return n
}

// --- tracked fetches (query-visible I/O) ------------------------------------

var emptyBitmap = bitmap.New()

// FetchEdgeBitmap reads bitmap column b_edge, accounting one bitmap-column
// fetch. Unknown edges yield an empty bitmap (still charged: the column is
// fetched before its emptiness is known).
func (r *Relation) FetchEdgeBitmap(edge EdgeID) *bitmap.Bitmap {
	b, ok := r.bitmaps[edge]
	if !ok {
		r.tracker.onBitmapFetch(0)
		return emptyBitmap
	}
	r.tracker.onBitmapFetch(b.SizeBytes())
	return b.Bits()
}

// FetchMeasureColumn reads default measure column m_edge, accounting one
// measure-column fetch. Returns nil when the edge has no measured values.
func (r *Relation) FetchMeasureColumn(edge EdgeID) *MeasureColumn {
	m, ok := r.measures[edge]
	if !ok {
		r.tracker.onMeasureFetch(0)
		return nil
	}
	r.tracker.onMeasureFetch(m.SizeBytes())
	return m
}

// FetchMeasureColumnNamed reads named measure column m_edge^name, accounting
// one measure-column fetch. Returns nil when absent.
func (r *Relation) FetchMeasureColumnNamed(edge EdgeID, name string) *MeasureColumn {
	if name == "" {
		return r.FetchMeasureColumn(edge)
	}
	m, ok := r.named[name][edge]
	if !ok {
		r.tracker.onMeasureFetch(0)
		return nil
	}
	r.tracker.onMeasureFetch(m.SizeBytes())
	return m
}

// FetchViewBitmap reads graph-view column b_v by name.
func (r *Relation) FetchViewBitmap(name string) (*bitmap.Bitmap, error) {
	v, ok := r.views[name]
	if !ok {
		return nil, fmt.Errorf("colstore: unknown graph view %q", name)
	}
	v.uses.Add(1)
	r.tracker.onBitmapFetch(v.Col.SizeBytes())
	return v.Col.Bits(), nil
}

// FetchAggViewBitmap reads aggregate-view bitmap column b_p by name.
func (r *Relation) FetchAggViewBitmap(name string) (*bitmap.Bitmap, error) {
	v, ok := r.aggViews[name]
	if !ok {
		return nil, fmt.Errorf("colstore: unknown aggregate view %q", name)
	}
	v.uses.Add(1)
	r.tracker.onBitmapFetch(v.Col.SizeBytes())
	return v.Col.Bits(), nil
}

// FetchAggViewMeasure reads aggregate-view measure column m_p by name.
func (r *Relation) FetchAggViewMeasure(name string) (*MeasureColumn, error) {
	v, ok := r.aggViews[name]
	if !ok {
		return nil, fmt.Errorf("colstore: unknown aggregate view %q", name)
	}
	v.uses.Add(1)
	r.tracker.onMeasureFetch(v.Measure.SizeBytes())
	return v.Measure, nil
}

// AccountMeasuresScanned records that n individual measure values were
// materialized into a query result.
func (r *Relation) AccountMeasuresScanned(n int) { r.tracker.onMeasuresScanned(n) }

// AccountRecordsReturned records that n graph records entered a query answer.
func (r *Relation) AccountRecordsReturned(n int) { r.tracker.onRecordsReturned(n) }

// --- untracked accessors (loading, view building, tests) --------------------

// EdgeBitmap returns bitmap column b_edge without accounting (nil if absent).
func (r *Relation) EdgeBitmap(edge EdgeID) *bitmap.Bitmap {
	if b, ok := r.bitmaps[edge]; ok {
		return b.Bits()
	}
	return nil
}

// MeasureColumn returns default measure column m_edge without accounting
// (nil if absent).
func (r *Relation) MeasureColumn(edge EdgeID) *MeasureColumn {
	return r.measures[edge]
}

// MeasureColumnNamed returns named measure column m_edge^name without
// accounting (nil if absent).
func (r *Relation) MeasureColumnNamed(edge EdgeID, name string) *MeasureColumn {
	if name == "" {
		return r.measures[edge]
	}
	return r.named[name][edge]
}

// --- vertical partitioning (§6.1) -------------------------------------------

// PartitionWidth returns the maximum number of edge columns per sub-relation.
func (r *Relation) PartitionWidth() int { return r.partWidth }

// PartitionOf returns the sub-relation index holding the columns of edge:
// the clustered assignment when one is installed (SetPartitionMap /
// ClusterPartitions), otherwise the default id/width rule.
func (r *Relation) PartitionOf(edge EdgeID) int {
	if p, ok := r.partMap[edge]; ok {
		return p
	}
	return int(edge) / r.partWidth
}

// NumPartitions returns the number of sub-relations in use.
func (r *Relation) NumPartitions() int {
	if len(r.bitmaps) == 0 {
		return 0
	}
	maxPart := 0
	for e := range r.bitmaps {
		if p := r.PartitionOf(e); p > maxPart {
			maxPart = p
		}
	}
	return maxPart + 1
}

// PartitionSpan returns how many distinct sub-relations the given edges touch.
func (r *Relation) PartitionSpan(edges []EdgeID) int {
	seen := make(map[int]struct{}, 4)
	for _, e := range edges {
		seen[r.PartitionOf(e)] = struct{}{}
	}
	return len(seen)
}

// JoinPartitions simulates the recid-joins needed to reassemble records whose
// columns span several sub-relations: (span-1) hash probes per answer record.
// It both accounts the joins and burns the corresponding CPU work so
// wall-clock measurements show the Fig. 5 trend.
func (r *Relation) JoinPartitions(span int, answer *bitmap.Bitmap) {
	if span <= 1 {
		return
	}
	joins := span - 1
	r.tracker.onPartitionJoin(joins * answer.Cardinality())
	// Simulate the probe work: one pass over the answer per extra partition.
	for i := 0; i < joins; i++ {
		var sink uint32
		answer.Each(func(rec uint32) bool {
			sink ^= rec
			return true
		})
		_ = sink
	}
}

// --- materialized views ------------------------------------------------------

// MaterializeView computes and stores graph view b_v = AND of the bitmaps of
// the given edges. Building is a bulk operation and is not charged to query
// I/O. The edge list is defensively copied, sorted and deduplicated.
func (r *Relation) MaterializeView(name string, edges []EdgeID) (*GraphView, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bumpVersion()
	if name == "" {
		return nil, fmt.Errorf("colstore: graph view needs a name")
	}
	if _, dup := r.views[name]; dup {
		return nil, fmt.Errorf("colstore: graph view %q already exists", name)
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("colstore: graph view %q has no edges", name)
	}
	es := normalizeEdges(edges)
	bms := make([]*bitmap.Bitmap, 0, len(es))
	for _, e := range es {
		if b := r.EdgeBitmap(e); b != nil {
			bms = append(bms, b)
		} else {
			bms = append(bms, emptyBitmap)
		}
	}
	v := &GraphView{
		Name:  name,
		Edges: es,
		Col:   NewBitmapColumnFrom(bitmap.AndAll(bms...)),
	}
	r.views[name] = v
	return v, nil
}

// MaterializeAggView computes and stores an aggregate graph view for the
// given path and aggregate function fn (§5.1.2). fn folds the per-edge
// measures of one record (in path order) into the stored aggregate; records
// missing a measure on any path edge are excluded from the view (their m_p
// is NULL and their b_p bit unset), matching the NULL semantics of §5.1.2.
// The bound function is retained so the view stays maintained as new records
// are loaded.
func (r *Relation) MaterializeAggView(name string, path []EdgeID, fn agg.Func) (*AggregateView, error) {
	return r.MaterializeAggViewOn(name, path, fn, "")
}

// MaterializeAggViewOn is MaterializeAggView over a named measure column
// ("" = default): the view stores F(m_e^measureName along path).
func (r *Relation) MaterializeAggViewOn(name string, path []EdgeID, fn agg.Func, measureName string) (*AggregateView, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bumpVersion()
	if name == "" {
		return nil, fmt.Errorf("colstore: aggregate view needs a name")
	}
	if _, dup := r.aggViews[name]; dup {
		return nil, fmt.Errorf("colstore: aggregate view %q already exists", name)
	}
	if len(path) < 2 {
		return nil, fmt.Errorf("colstore: aggregate view %q: path must have ≥2 edges (single edges are already stored)", name)
	}
	if !fn.Valid() {
		return nil, fmt.Errorf("colstore: aggregate view %q: invalid aggregate function", name)
	}
	bms := make([]*bitmap.Bitmap, 0, len(path))
	for _, e := range path {
		if b := r.EdgeBitmap(e); b != nil {
			bms = append(bms, b)
		} else {
			bms = append(bms, emptyBitmap)
		}
	}
	contains := bitmap.AndAll(bms...)

	measure := NewMeasureColumn()
	col := NewBitmapColumn()
	vals := make([]float64, len(path))
	contains.Each(func(rec uint32) bool {
		if r.pathMeasures(rec, path, measureName, vals) {
			measure.Set(rec, fn.Aggregate(vals))
			col.Set(rec)
		}
		return true
	})

	v := &AggregateView{
		Name:        name,
		Path:        append([]EdgeID(nil), path...),
		Func:        fn.Name,
		MeasureName: measureName,
		Measure:     measure,
		Col:         col,
		fn:          fn,
	}
	r.aggViews[name] = v
	return v, nil
}

// pathMeasures reads the measures of path's edges (under measureName) for
// one record into vals, reporting whether all are present.
func (r *Relation) pathMeasures(rec uint32, path []EdgeID, measureName string, vals []float64) bool {
	for i, e := range path {
		m := r.MeasureColumnNamed(e, measureName)
		if m == nil {
			return false
		}
		v, has := m.Get(rec)
		if !has {
			return false
		}
		vals[i] = v
	}
	return true
}

// UpdateViewsForRecord incrementally maintains every materialized view for a
// freshly loaded record: loaders call it once after all of the record's
// edges and measures are set, so views never go stale as the collection
// grows. Aggregate views loaded from disk whose function could not be
// re-bound are skipped (Load rejects unknown function names, so this cannot
// happen for stores grove wrote itself).
func (r *Relation) UpdateViewsForRecord(rec uint32) {
	r.mu.Lock() //grovevet:ignore lockorder aggregate-view maintenance reads the record's measures, which may fault paged blocks in; views must be updated under the same write lock as the row they reflect
	defer r.mu.Unlock()
	r.bumpVersion()
	for _, v := range r.views {
		all := true
		for _, e := range v.Edges {
			b, ok := r.bitmaps[e]
			if !ok || !b.Contains(rec) {
				all = false
				break
			}
		}
		if all {
			v.Col.Set(rec)
		}
	}
	for _, v := range r.aggViews {
		if !v.fn.Valid() {
			continue
		}
		vals := make([]float64, len(v.Path))
		contains := true
		for _, e := range v.Path {
			b, ok := r.bitmaps[e]
			if !ok || !b.Contains(rec) {
				contains = false
				break
			}
		}
		if contains && r.pathMeasures(rec, v.Path, v.MeasureName, vals) {
			v.Measure.Set(rec, v.fn.Aggregate(vals))
			v.Col.Set(rec)
		}
	}
}

// HasViews reports whether any view (graph or aggregate) is materialized.
func (r *Relation) HasViews() bool { return len(r.views) > 0 || len(r.aggViews) > 0 }

// View returns a graph view by name, or nil.
func (r *Relation) View(name string) *GraphView { return r.views[name] }

// AggView returns an aggregate view by name, or nil.
func (r *Relation) AggView(name string) *AggregateView { return r.aggViews[name] }

// Views returns all graph views sorted by name.
func (r *Relation) Views() []*GraphView {
	out := make([]*GraphView, 0, len(r.views))
	for _, v := range r.views {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AggViews returns all aggregate views sorted by name.
func (r *Relation) AggViews() []*AggregateView {
	out := make([]*AggregateView, 0, len(r.aggViews))
	for _, v := range r.aggViews {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ViewUsage returns the per-view query-visible fetch counts (graph and
// aggregate views together), keyed by view name.
func (r *Relation) ViewUsage() map[string]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.views)+len(r.aggViews))
	for name, v := range r.views {
		out[name] = v.Uses()
	}
	for name, v := range r.aggViews {
		out[name] = v.Uses()
	}
	return out
}

// DropView removes a graph view.
func (r *Relation) DropView(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bumpVersion()
	if _, ok := r.views[name]; !ok {
		return false
	}
	delete(r.views, name)
	return true
}

// DropAggView removes an aggregate view.
func (r *Relation) DropAggView(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bumpVersion()
	if _, ok := r.aggViews[name]; !ok {
		return false
	}
	delete(r.aggViews, name)
	return true
}

// DropAllViews removes every materialized view, returning the relation to its
// base (indexes-only) state.
func (r *Relation) DropAllViews() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bumpVersion()
	r.views = make(map[string]*GraphView)
	r.aggViews = make(map[string]*AggregateView)
}

// --- sizing ------------------------------------------------------------------

// BaseSizeBytes is the payload size of base data: measure (default and
// named) and bitmap columns.
func (r *Relation) BaseSizeBytes() int64 {
	var n int64
	for _, m := range r.measures {
		n += int64(m.SizeBytes())
	}
	for _, cols := range r.named {
		for _, m := range cols {
			n += int64(m.SizeBytes())
		}
	}
	for _, b := range r.bitmaps {
		n += int64(b.SizeBytes())
	}
	return n
}

// ViewSizeBytes is the payload size of all materialized view columns.
func (r *Relation) ViewSizeBytes() int64 {
	var n int64
	for _, v := range r.views {
		n += int64(v.Col.SizeBytes())
	}
	for _, v := range r.aggViews {
		n += int64(v.Col.SizeBytes()) + int64(v.Measure.SizeBytes())
	}
	return n
}

// SizeBytes is the total payload size (base + views).
func (r *Relation) SizeBytes() int64 { return r.BaseSizeBytes() + r.ViewSizeBytes() }

// RunOptimize converts all bitmap columns to their most compact layouts.
// Call after bulk loading.
func (r *Relation) RunOptimize() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, b := range r.bitmaps {
		b.Bits().RunOptimize()
	}
	for _, m := range r.measures {
		m.Present().RunOptimize()
	}
	for _, cols := range r.named {
		for _, m := range cols {
			m.Present().RunOptimize()
		}
	}
	for _, v := range r.views {
		v.Col.Bits().RunOptimize()
	}
	for _, v := range r.aggViews {
		v.Col.Bits().RunOptimize()
		v.Measure.Present().RunOptimize()
	}
}

func normalizeEdges(edges []EdgeID) []EdgeID {
	es := append([]EdgeID(nil), edges...)
	sort.Slice(es, func(i, j int) bool { return es[i] < es[j] })
	out := es[:0]
	var prev EdgeID
	for i, e := range es {
		if i == 0 || e != prev {
			out = append(out, e)
		}
		prev = e
	}
	return out
}
