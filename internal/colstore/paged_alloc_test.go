package colstore

import (
	"math"
	"testing"
)

// TestDecodeBlockAllocs pins the block decoders' steady-state allocation
// count at zero: they run on every buffer pool miss, and the hotalloc lint's
// static proof deserves a dynamic witness.
func TestDecodeBlockAllocs(t *testing.T) {
	enc := &blockEncoder{}
	cases := map[string][]float64{
		"rle":  {7, 7, 7, 7, 7, 7, 7, 7},
		"dict": {1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3, 1},
		"xor":  {1048576, 1048577, 1048578, 1048579, 1048580, 1048581},
		"raw":  {math.Pi, -math.E, 1e-300, math.Copysign(0, -1), 2.5e17, -9e-8},
	}
	for name, vals := range cases {
		tag, payload, err := enc.encode(vals)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := EncodingName(int(tag)); got != name {
			t.Fatalf("fixture %q encoded as %q; fix the fixture", name, got)
		}
		dst := make([]float64, len(vals))
		allocs := testing.AllocsPerRun(100, func() {
			if err := decodeBlock(tag, payload, dst); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s decode allocates %v per run, want 0", name, allocs)
		}
	}
}

// TestAggregateSkipAllocs pins the zone-skipping scan's steady-state
// allocations: once the touched blocks are resident (pool hits) and the rank
// scratch has plateaued, repeated scans must not allocate.
func TestAggregateSkipAllocs(t *testing.T) {
	r := NewRelation(0)
	const n = 2*BlockValues + 100
	recs := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		rec := r.NewRecord()
		r.SetEdgeMeasure(rec, 1, float64(1<<20+i))
		recs = append(recs, rec)
	}
	dir := t.TempDir()
	if err := r.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	col := loaded.MeasureColumn(1)
	if col == nil {
		t.Fatal("loaded relation lost column 1")
	}

	// Warm: fault the blocks in and let the rank scratch grow.
	if _, folded, _, _ := col.AggregateSkip(recs, math.Inf(1), true); folded == 0 {
		t.Fatal("warm scan folded nothing")
	}
	allocs := testing.AllocsPerRun(50, func() {
		col.AggregateSkip(recs, math.Inf(1), true)
	})
	if allocs > 0 {
		t.Errorf("steady-state AggregateSkip allocates %v per run, want 0", allocs)
	}
	if err := loaded.PageError(); err != nil {
		t.Fatal(err)
	}
}
