package colstore

import "testing"

func TestTagBasics(t *testing.T) {
	r := buildSmallRelation(t)
	if err := r.Tag(0, "type", "fast-track"); err != nil {
		t.Fatal(err)
	}
	if err := r.Tag(1, "type", "regular"); err != nil {
		t.Fatal(err)
	}
	if err := r.Tag(2, "type", "fast-track"); err != nil {
		t.Fatal(err)
	}
	if err := r.Tag(0, "customer", "acme"); err != nil {
		t.Fatal(err)
	}

	got := r.FetchTagBitmap("type", "fast-track").ToSlice()
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("fast-track = %v", got)
	}
	if r.FetchTagBitmap("type", "unknown").Cardinality() != 0 {
		t.Error("unknown tag value non-empty")
	}
	if r.FetchTagBitmap("nope", "x").Cardinality() != 0 {
		t.Error("unknown tag key non-empty")
	}

	keys := r.TagKeys()
	if len(keys) != 2 || keys[0] != "customer" || keys[1] != "type" {
		t.Errorf("TagKeys = %v", keys)
	}
	vals := r.TagValues("type")
	if len(vals) != 2 || vals[0] != "fast-track" || vals[1] != "regular" {
		t.Errorf("TagValues = %v", vals)
	}
	if r.TagSizeBytes() <= 0 {
		t.Error("TagSizeBytes = 0")
	}
}

func TestTagValidation(t *testing.T) {
	r := buildSmallRelation(t)
	if err := r.Tag(0, "", "x"); err == nil {
		t.Error("empty key accepted")
	}
	if err := r.Tag(99, "k", "v"); err == nil {
		t.Error("unknown record accepted")
	}
}

func TestTagFetchAccounted(t *testing.T) {
	r := buildSmallRelation(t)
	if err := r.Tag(0, "k", "v"); err != nil {
		t.Fatal(err)
	}
	r.Tracker().Reset()
	_ = r.FetchTagBitmap("k", "v")
	if got := r.Tracker().Snapshot().BitmapColumnsFetched; got != 1 {
		t.Errorf("tag fetch accounted %d bitmap columns, want 1", got)
	}
}

func TestTagsSurviveSaveLoad(t *testing.T) {
	dir := t.TempDir()
	r := buildSmallRelation(t)
	if err := r.Tag(1, "type", "regular"); err != nil {
		t.Fatal(err)
	}
	if err := r.Tag(2, "type", "fast"); err != nil {
		t.Fatal(err)
	}
	if err := r.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if b := got.FetchTagBitmap("type", "regular"); b.Cardinality() != 1 || !b.Contains(1) {
		t.Errorf("regular tag after reload = %v", b.ToSlice())
	}
	if b := got.FetchTagBitmap("type", "fast"); !b.Contains(2) {
		t.Error("fast tag lost in reload")
	}
}
