// Package colstore implements grove's column-oriented storage engine: the
// "master relation" R(recid, m1..mn, b1..bn, views...) of the paper (§4.1,
// §5.1.3). Measures are stored as sparse NULL-compressed columns, edge
// presence as compressed bitmap columns, and the relation is vertically
// partitioned into sub-relations of bounded width (§6.1).
package colstore

import (
	"fmt"
	"math"

	"grove/internal/bitmap"
)

// MeasureColumn stores one float64 measure per record, with NULLs compressed
// away: a presence bitmap plus a dense slice of the non-NULL values in record
// id order. This is the columnar analogue of "vertical compression of columns
// with many NULL values" (§4.1).
type MeasureColumn struct {
	present *bitmap.Bitmap
	values  []float64
}

// NewMeasureColumn returns an empty measure column.
func NewMeasureColumn() *MeasureColumn {
	return &MeasureColumn{present: bitmap.New()}
}

// Set stores v for record rec, replacing any prior value. Appending in
// ascending record order is O(1); out-of-order sets pay an O(n) insert.
func (c *MeasureColumn) Set(rec uint32, v float64) {
	if c.present.Contains(rec) {
		c.values[c.present.Rank(rec)-1] = v
		return
	}
	idx := c.present.Rank(rec)
	c.present.Add(rec)
	if idx == len(c.values) {
		c.values = append(c.values, v)
		return
	}
	c.values = append(c.values, 0)
	copy(c.values[idx+1:], c.values[idx:])
	c.values[idx] = v
}

// Get returns the value for rec; ok is false when the record has a NULL in
// this column (the record does not contain the edge).
func (c *MeasureColumn) Get(rec uint32) (v float64, ok bool) {
	if !c.present.Contains(rec) {
		return 0, false
	}
	return c.values[c.present.Rank(rec)-1], true
}

// Present returns the presence bitmap. Callers must not mutate it.
func (c *MeasureColumn) Present() *bitmap.Bitmap { return c.present }

// Count returns the number of non-NULL entries.
func (c *MeasureColumn) Count() int { return len(c.values) }

// ForEach visits all non-NULL (rec, value) pairs in ascending record order.
func (c *MeasureColumn) ForEach(f func(rec uint32, v float64) bool) {
	i := 0
	c.present.Each(func(rec uint32) bool {
		ok := f(rec, c.values[i])
		i++
		return ok
	})
}

// ValuesFor reads the column for the given ascending record ids in one
// batch, returning a value and a presence flag per id. It is the allocating
// convenience form of GatherInto; hot paths should pool their buffers and
// call GatherInto directly.
func (c *MeasureColumn) ValuesFor(recs []uint32) (values []float64, present []bool) {
	values = make([]float64, len(recs))
	present = make([]bool, len(recs))
	c.GatherInto(recs, values, present)
	return values, present
}

// SizeBytes reports the approximate payload size (presence bitmap + values).
func (c *MeasureColumn) SizeBytes() int {
	return c.present.SizeBytes() + 8*len(c.values)
}

// validate checks internal invariants; used by tests and loaders.
func (c *MeasureColumn) validate() error {
	if c.present.Cardinality() != len(c.values) {
		return fmt.Errorf("colstore: measure column presence/value mismatch: %d vs %d",
			c.present.Cardinality(), len(c.values))
	}
	for _, v := range c.values {
		if math.IsNaN(v) {
			return fmt.Errorf("colstore: NaN measure value")
		}
	}
	return nil
}

// BitmapColumn is a boolean column over the record id space: bit r is set iff
// record r satisfies the column's predicate (contains an edge, matches a
// view's edge set, or contains a view's path).
type BitmapColumn struct {
	bits *bitmap.Bitmap
}

// NewBitmapColumn returns an empty bitmap column.
func NewBitmapColumn() *BitmapColumn {
	return &BitmapColumn{bits: bitmap.New()}
}

// NewBitmapColumnFrom wraps an existing bitmap (taking ownership).
func NewBitmapColumnFrom(b *bitmap.Bitmap) *BitmapColumn {
	return &BitmapColumn{bits: b}
}

// Set marks record rec.
func (c *BitmapColumn) Set(rec uint32) { c.bits.Add(rec) }

// Contains reports whether rec is marked.
func (c *BitmapColumn) Contains(rec uint32) bool { return c.bits.Contains(rec) }

// Bits exposes the underlying bitmap. Callers must not mutate it; use Clone
// for derived computations (binary ops already allocate fresh results).
func (c *BitmapColumn) Bits() *bitmap.Bitmap { return c.bits }

// Cardinality returns the number of marked records.
func (c *BitmapColumn) Cardinality() int { return c.bits.Cardinality() }

// SizeBytes reports the approximate payload size.
func (c *BitmapColumn) SizeBytes() int { return c.bits.SizeBytes() }
