// Package colstore implements grove's column-oriented storage engine: the
// "master relation" R(recid, m1..mn, b1..bn, views...) of the paper (§4.1,
// §5.1.3). Measures are stored as sparse NULL-compressed columns, edge
// presence as compressed bitmap columns, and the relation is vertically
// partitioned into sub-relations of bounded width (§6.1).
package colstore

import (
	"fmt"
	"math"

	"grove/internal/bitmap"
)

// MeasureColumn stores one float64 measure per record, with NULLs compressed
// away: a presence bitmap plus the non-NULL values in record id order. This
// is the columnar analogue of "vertical compression of columns with many
// NULL values" (§4.1).
//
// The values live in exactly one of two places: a resident dense slice
// (columns being written, and v1 snapshots) or a paged block index backed by
// a snapshot file (v2 snapshots), faulted in block-at-a-time through the
// relation's buffer pool. Readers go through valueReader / the paged
// accessors so both representations answer identically; the first mutation
// of a paged column materializes it (see paged.go).
type MeasureColumn struct {
	present *bitmap.Bitmap
	values  []float64
	paged   *pagedData
}

// NewMeasureColumn returns an empty measure column.
func NewMeasureColumn() *MeasureColumn {
	return &MeasureColumn{present: bitmap.New()}
}

// Set stores v for record rec, replacing any prior value. Appending in
// ascending record order is O(1); out-of-order sets pay an O(n) insert. A
// paged column is materialized in full on its first Set: written columns are
// resident columns, and re-paging happens at the next Save/Load cycle.
func (c *MeasureColumn) Set(rec uint32, v float64) {
	if c.paged != nil {
		if err := c.materialize(); err != nil {
			// Materialization failed (disk fault). Drop the write rather than
			// corrupt the column; the sticky source error is surfaced through
			// Relation.PageError.
			return
		}
	}
	if c.present.Contains(rec) {
		c.values[c.present.Rank(rec)-1] = v
		return
	}
	idx := c.present.Rank(rec)
	c.present.Add(rec)
	if idx == len(c.values) {
		c.values = append(c.values, v)
		return
	}
	c.values = append(c.values, 0)
	copy(c.values[idx+1:], c.values[idx:])
	c.values[idx] = v
}

// Get returns the value for rec; ok is false when the record has a NULL in
// this column (the record does not contain the edge).
func (c *MeasureColumn) Get(rec uint32) (v float64, ok bool) {
	if !c.present.Contains(rec) {
		return 0, false
	}
	return c.valueAt(c.present.Rank(rec) - 1), true
}

// Present returns the presence bitmap. Callers must not mutate it.
func (c *MeasureColumn) Present() *bitmap.Bitmap { return c.present }

// Count returns the number of non-NULL entries.
func (c *MeasureColumn) Count() int { return c.valueCount() }

// ForEach visits all non-NULL (rec, value) pairs in ascending record order.
func (c *MeasureColumn) ForEach(f func(rec uint32, v float64) bool) {
	var rd valueReader
	rd.init(c)
	i := 0
	c.present.Each(func(rec uint32) bool {
		ok := f(rec, rd.at(i))
		i++
		return ok
	})
}

// ValuesFor reads the column for the given ascending record ids in one
// batch, returning a value and a presence flag per id. It is the allocating
// convenience form of GatherInto; hot paths should pool their buffers and
// call GatherInto directly.
func (c *MeasureColumn) ValuesFor(recs []uint32) (values []float64, present []bool) {
	values = make([]float64, len(recs))
	present = make([]bool, len(recs))
	c.GatherInto(recs, values, present)
	return values, present
}

// SizeBytes reports the approximate logical payload size (presence bitmap +
// values). For a paged column this is deliberately the decoded size, not the
// bytes currently resident: the cost model charges what a fetch logically
// touches, and cache state must not change query costs. Residency is
// reported separately by ResidentValueBytes/EncodedValueBytes.
func (c *MeasureColumn) SizeBytes() int {
	return c.present.SizeBytes() + 8*c.valueCount()
}

// validate checks internal invariants; used by tests and loaders. For a
// paged column only the cheap structural invariant is checked here — NaN
// rejection happens at encode time (Save) and corruption is caught by the
// snapshot checksum and the hardened block decoders.
func (c *MeasureColumn) validate() error {
	if c.present.Cardinality() != c.valueCount() {
		return fmt.Errorf("colstore: measure column presence/value mismatch: %d vs %d",
			c.present.Cardinality(), c.valueCount())
	}
	for _, v := range c.values {
		if math.IsNaN(v) {
			return fmt.Errorf("colstore: NaN measure value")
		}
	}
	return nil
}

// BitmapColumn is a boolean column over the record id space: bit r is set iff
// record r satisfies the column's predicate (contains an edge, matches a
// view's edge set, or contains a view's path).
type BitmapColumn struct {
	bits *bitmap.Bitmap
}

// NewBitmapColumn returns an empty bitmap column.
func NewBitmapColumn() *BitmapColumn {
	return &BitmapColumn{bits: bitmap.New()}
}

// NewBitmapColumnFrom wraps an existing bitmap (taking ownership).
func NewBitmapColumnFrom(b *bitmap.Bitmap) *BitmapColumn {
	return &BitmapColumn{bits: b}
}

// Set marks record rec.
func (c *BitmapColumn) Set(rec uint32) { c.bits.Add(rec) }

// Contains reports whether rec is marked.
func (c *BitmapColumn) Contains(rec uint32) bool { return c.bits.Contains(rec) }

// Bits exposes the underlying bitmap. Callers must not mutate it; use Clone
// for derived computations (binary ops already allocate fresh results).
func (c *BitmapColumn) Bits() *bitmap.Bitmap { return c.bits }

// Cardinality returns the number of marked records.
func (c *BitmapColumn) Cardinality() int { return c.bits.Cardinality() }

// SizeBytes reports the approximate payload size.
func (c *BitmapColumn) SizeBytes() int { return c.bits.SizeBytes() }
