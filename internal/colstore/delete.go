package colstore

import (
	"fmt"

	"grove/internal/bitmap"
)

// Soft deletion. The master relation is append-only — its columns are
// positional — so deletion is logical: deleted record ids are collected in
// one bitmap that query answers subtract. This is the standard
// column-store/Data-Warehouse delete-vector technique; the space cost is one
// bitmap regardless of how many views exist, and views need no maintenance
// on delete.

// Delete marks a record as deleted. Idempotent; reports whether the record
// was live before.
func (r *Relation) Delete(rec uint32) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := r.numRecords.Load(); rec >= n {
		return false, fmt.Errorf("colstore: delete of unknown record %d (have %d)", rec, n)
	}
	if r.deleted == nil {
		r.deleted = bitmap.New()
	}
	r.bumpVersion()
	return r.deleted.Add(rec), nil
}

// Undelete restores a deleted record; reports whether it was deleted.
func (r *Relation) Undelete(rec uint32) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.deleted == nil {
		return false
	}
	r.bumpVersion()
	return r.deleted.Remove(rec)
}

// IsDeleted reports whether a record is deleted.
func (r *Relation) IsDeleted(rec uint32) bool {
	return r.deleted != nil && r.deleted.Contains(rec)
}

// NumDeleted returns the number of deleted records.
func (r *Relation) NumDeleted() int {
	if r.deleted == nil {
		return 0
	}
	return r.deleted.Cardinality()
}

// MaskDeleted subtracts the deleted records from an answer set. Executors
// call it once per query, after the bitmap conjunction.
func (r *Relation) MaskDeleted(answer *bitmap.Bitmap) *bitmap.Bitmap {
	if r.deleted == nil || r.deleted.IsEmpty() {
		return answer
	}
	return answer.AndNot(r.deleted)
}
