package colstore

import (
	"fmt"
	"sort"
)

// Column clustering (§6.1): the paper partitions the master relation into
// sub-relations of ≤1000 columns by edge id and notes that "intelligent
// clustering of these columns based on the users' query patterns is
// possible" but out of scope. grove implements that extension: given a query
// workload, ClusterPartitions greedily co-locates the columns each query
// touches, so record reassembly crosses fewer sub-relations and the Fig. 5
// partition-join cost shrinks.

// SetPartitionMap overrides the default id/width partition assignment with
// an explicit edge→partition map. Edges absent from the map fall back to the
// default rule. Pass nil to restore the default.
func (r *Relation) SetPartitionMap(m map[EdgeID]int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.setPartitionMapLocked(m)
}

func (r *Relation) setPartitionMapLocked(m map[EdgeID]int) error {
	if m != nil {
		counts := make(map[int]int)
		for _, p := range m {
			if p < 0 {
				return fmt.Errorf("colstore: negative partition index %d", p)
			}
			counts[p]++
			if counts[p] > r.partWidth {
				return fmt.Errorf("colstore: partition %d over capacity (%d > %d)",
					p, counts[p], r.partWidth)
			}
		}
	}
	r.partMap = m
	return nil
}

// ClusterPartitions computes a workload-aware partition assignment: queries
// are processed heaviest-first (by total edge count, a proxy for their
// share of the workload), and each query's columns are packed into the
// partition already holding most of them, capacity permitting. Remaining
// edges fill leftover slots. The assignment is applied with SetPartitionMap
// and also returned.
func (r *Relation) ClusterPartitions(workload [][]EdgeID) (map[EdgeID]int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	type part struct {
		id   int
		free int
	}
	assign := make(map[EdgeID]int)
	var parts []*part
	newPart := func() *part {
		p := &part{id: len(parts), free: r.partWidth}
		parts = append(parts, p)
		return p
	}

	queries := make([][]EdgeID, len(workload))
	copy(queries, workload)
	sort.SliceStable(queries, func(i, j int) bool { return len(queries[i]) > len(queries[j]) })

	for _, q := range queries {
		var unplaced []EdgeID
		votes := make(map[int]int)
		seen := make(map[EdgeID]struct{}, len(q))
		for _, e := range q {
			if _, dup := seen[e]; dup {
				continue
			}
			seen[e] = struct{}{}
			if p, ok := assign[e]; ok {
				votes[p]++
			} else {
				unplaced = append(unplaced, e)
			}
		}
		if len(unplaced) == 0 {
			continue
		}
		// Prefer the partition already holding most of this query's edges
		// and with room for every unplaced one; else the roomiest; else new.
		best := -1
		for pid, v := range votes {
			if parts[pid].free >= len(unplaced) && (best < 0 || v > votes[best]) {
				best = pid
			}
		}
		if best < 0 {
			for _, p := range parts {
				if p.free >= len(unplaced) && (best < 0 || p.free > parts[best].free) {
					best = p.id
				}
			}
		}
		if best < 0 {
			if len(unplaced) > r.partWidth {
				// A single query wider than a partition can never be
				// co-located entirely; spill across fresh partitions.
				for len(unplaced) > 0 {
					p := newPart()
					n := p.free
					if n > len(unplaced) {
						n = len(unplaced)
					}
					for _, e := range unplaced[:n] {
						assign[e] = p.id
					}
					p.free -= n
					unplaced = unplaced[n:]
				}
				continue
			}
			best = newPart().id
		}
		for _, e := range unplaced {
			assign[e] = best
		}
		parts[best].free -= len(unplaced)
	}

	// Pack edges untouched by the workload into leftover slots.
	for _, e := range r.Edges() {
		if _, ok := assign[e]; ok {
			continue
		}
		placed := false
		for _, p := range parts {
			if p.free > 0 {
				assign[e] = p.id
				p.free--
				placed = true
				break
			}
		}
		if !placed {
			p := newPart()
			assign[e] = p.id
			p.free--
		}
	}
	if err := r.setPartitionMapLocked(assign); err != nil {
		return nil, err
	}
	return assign, nil
}
