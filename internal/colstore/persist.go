package colstore

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"strings"

	"grove/internal/agg"
	"grove/internal/bitmap"
	"grove/internal/fsio"
	"grove/internal/pagepool"
)

// On-disk layout: a store directory holding snapshot generations (see
// generation.go); each generation directory holds
//
//	manifest.json — schema: record count, partition width, edge ids, views
//	data.bin      — column payloads, in manifest order
//
// Measure columns are stored as presence bitmap + value payload, so NULLs
// occupy no space on disk either. Format version 2 stores the values paged:
// a block index (per-block encoding tag, payload length, value count and
// zone map, see paged.go) followed by the compressed block payloads. Version
// 2 snapshots load lazily — only the presence bitmaps and block indexes are
// decoded up front; value blocks fault in through the relation's buffer
// pool on first access. Version 1 snapshots (packed raw float64 values)
// still load, eagerly, exactly as before.

type manifest struct {
	FormatVersion int    `json:"format_version"`
	NumRecords    uint32 `json:"num_records"`
	PartWidth     int    `json:"partition_width"`
	// DataChecksum is the CRC-32C of data.bin, verified on Load so silent
	// corruption is caught before a damaged column is queried.
	DataChecksum uint32         `json:"data_checksum"`
	Edges        []manifestEdge `json:"edges"`
	Views        []manifestView `json:"views"`
	AggViews     []manifestAgg  `json:"agg_views"`
	Tags         []manifestTag  `json:"tags,omitempty"`
	// HasDeleted marks that a deleted-records bitmap follows the tag
	// bitmaps in data.bin.
	HasDeleted bool `json:"has_deleted,omitempty"`
}

type manifestTag struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

type manifestEdge struct {
	ID         EdgeID `json:"id"`
	HasMeasure bool   `json:"has_measure"`
	// MeasureNames lists the named measure columns of this edge, sorted.
	MeasureNames []string `json:"measure_names,omitempty"`
}

type manifestView struct {
	Name  string   `json:"name"`
	Edges []EdgeID `json:"edges"`
}

type manifestAgg struct {
	Name    string   `json:"name"`
	Path    []EdgeID `json:"path"`
	Func    string   `json:"func"`
	Measure string   `json:"measure,omitempty"` // measure name ("" = default)
}

// formatVersion is what Save writes. Load additionally accepts
// formatVersionV1 (eager packed-value measure columns).
const (
	formatVersionV1 = 1
	formatVersion   = 2
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Save writes the relation to dir as a new snapshot generation and
// atomically installs it (see generation.go for the layout). A crash or I/O
// failure at any point leaves the previously installed generation intact
// and loadable — Save never modifies an existing snapshot in place.
func (r *Relation) Save(dir string) error { return r.SaveFS(fsio.OS(), dir) }

// SaveFS is Save against an explicit filesystem; the fault-injection tests
// use it to crash the save at every individual I/O operation.
//
// Overlapping SaveFS calls serialize on an internal mutex, each producing
// its own complete generation. The relation's read lock is held only while
// the snapshot bytes are written, so concurrent queries proceed throughout
// and writers wait only for that phase.
func (r *Relation) SaveFS(fs fsio.FS, dir string) error {
	_, err := r.SaveFSGen(fs, dir)
	return err
}

// SaveFSGen is SaveFS reporting the name of the generation it installed. The
// sharded coordinator records that name in its cross-shard manifest so Load
// can pin every shard to one consistent generation cut.
func (r *Relation) SaveFSGen(fs fsio.FS, dir string) (string, error) {
	r.saveMu.Lock() //grovevet:ignore lockorder saveMu exists to serialize whole snapshot commits; blocking on I/O under it is its job
	defer r.saveMu.Unlock()
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("colstore: save: %w", err)
	}
	ents, err := fs.ReadDir(dir)
	if err != nil {
		return "", fmt.Errorf("colstore: save: %w", err)
	}
	next := uint64(1)
	for _, ent := range ents {
		if ent.IsDir() && strings.HasPrefix(ent.Name(), tmpPrefix) {
			// Debris of a save that crashed before installing.
			if err := fs.RemoveAll(filepath.Join(dir, ent.Name())); err != nil {
				return "", fmt.Errorf("colstore: save: clear stale %s: %w", ent.Name(), err)
			}
			continue
		}
		if n, ok := parseGenName(ent.Name()); ok && n >= next {
			next = n + 1
		}
	}
	gen := genDirName(next)
	tmp := filepath.Join(dir, tmpPrefix+gen)
	if err := fs.MkdirAll(tmp, 0o755); err != nil {
		return "", fmt.Errorf("colstore: save: %w", err)
	}
	if err := r.writeSnapshot(fs, tmp); err != nil {
		fs.RemoveAll(tmp) //grovevet:ignore droppederr best-effort cleanup; the write error is already being returned
		return "", err
	}
	// The snapshot's files are synced; sync its directory so the files'
	// names are durable, rename the whole directory into place, and sync
	// the store directory so the rename is durable. Only then repoint
	// CURRENT — a crash anywhere before that leaves CURRENT on the old,
	// complete generation.
	if err := fs.SyncDir(tmp); err != nil {
		fs.RemoveAll(tmp) //grovevet:ignore droppederr best-effort cleanup; the sync error is already being returned
		return "", fmt.Errorf("colstore: save: %w", err)
	}
	if err := fs.Rename(tmp, filepath.Join(dir, gen)); err != nil {
		fs.RemoveAll(tmp) //grovevet:ignore droppederr best-effort cleanup; the rename error is already being returned
		return "", fmt.Errorf("colstore: save: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return "", fmt.Errorf("colstore: save: %w", err)
	}
	if err := installCurrent(fs, dir, gen); err != nil {
		return "", err
	}
	return gen, gcGenerations(fs, dir, r.snapshotKeep(), gen, r.gcProtectName(), r.sourceGenName())
}

// LoadGenerationFS loads one specific snapshot generation of dir, ignoring
// the CURRENT pointer. The sharded coordinator uses it to pin each shard to
// the generation its cross-shard manifest recorded — following the per-shard
// CURRENT could mix generations from different coordinated saves.
func LoadGenerationFS(fs fsio.FS, dir, gen string) (*Relation, error) {
	if _, ok := parseGenName(gen); !ok {
		return nil, fmt.Errorf("colstore: load: %q is not a generation name", gen)
	}
	r, err := loadSnapshot(fs, filepath.Join(dir, gen))
	if err != nil {
		return nil, err
	}
	r.setSourceGen(gen)
	return r, nil
}

// writeSnapshot writes one complete snapshot — data.bin then manifest.json,
// both fsynced — into dir, which must already exist. It holds the
// relation's read lock for the duration so the two files describe one
// consistent state.
func (r *Relation) writeSnapshot(fs fsio.FS, dir string) error {
	r.mu.RLock() //grovevet:ignore lockorder the read lock must span the file writes so data.bin and manifest.json describe one cut; writers stall, readers proceed
	defer r.mu.RUnlock()
	m := manifest{
		FormatVersion: formatVersion,
		NumRecords:    r.numRecords.Load(),
		PartWidth:     r.partWidth,
	}
	for _, e := range r.Edges() {
		_, hasM := r.measures[e]
		var names []string
		for _, name := range r.MeasureNames() {
			if _, ok := r.named[name][e]; ok {
				names = append(names, name)
			}
		}
		m.Edges = append(m.Edges, manifestEdge{ID: e, HasMeasure: hasM, MeasureNames: names})
	}
	for _, v := range r.Views() {
		m.Views = append(m.Views, manifestView{Name: v.Name, Edges: v.Edges})
	}
	for _, v := range r.AggViews() {
		m.AggViews = append(m.AggViews, manifestAgg{Name: v.Name, Path: v.Path, Func: v.Func, Measure: v.MeasureName})
	}
	for _, key := range r.TagKeys() {
		for _, value := range r.TagValues(key) {
			m.Tags = append(m.Tags, manifestTag{Key: key, Value: value})
		}
	}
	m.HasDeleted = r.deleted != nil && !r.deleted.IsEmpty()

	crc := crc32.New(castagnoli)
	f, err := fs.Create(filepath.Join(dir, "data.bin"))
	if err != nil {
		return fmt.Errorf("colstore: save data: %w", err)
	}
	w := bufio.NewWriterSize(io.MultiWriter(f, crc), 1<<20)
	if err := r.writeColumns(w, &m); err != nil {
		f.Close() //grovevet:ignore droppederr the column write error is already being returned
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close() //grovevet:ignore droppederr the flush error is already being returned
		return fmt.Errorf("colstore: save data: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close() //grovevet:ignore droppederr the sync error is already being returned
		return fmt.Errorf("colstore: save data: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("colstore: save data: %w", err)
	}

	m.DataChecksum = crc.Sum32()
	mb, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("colstore: save manifest: %w", err)
	}
	mf, err := fs.Create(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return fmt.Errorf("colstore: save manifest: %w", err)
	}
	if _, err := mf.Write(mb); err != nil {
		mf.Close() //grovevet:ignore droppederr the write error is already being returned
		return fmt.Errorf("colstore: save manifest: %w", err)
	}
	if err := mf.Sync(); err != nil {
		mf.Close() //grovevet:ignore droppederr the sync error is already being returned
		return fmt.Errorf("colstore: save manifest: %w", err)
	}
	if err := mf.Close(); err != nil {
		return fmt.Errorf("colstore: save manifest: %w", err)
	}
	return nil
}

// writeColumns streams every column payload to w in manifest order. The
// caller holds the relation's read lock.
func (r *Relation) writeColumns(w io.Writer, m *manifest) error {
	for _, me := range m.Edges {
		if _, err := r.bitmaps[me.ID].Bits().WriteTo(w); err != nil {
			return fmt.Errorf("colstore: save edge %d bitmap: %w", me.ID, err)
		}
		if me.HasMeasure {
			if err := writeMeasureColumn(w, r.measures[me.ID]); err != nil {
				return fmt.Errorf("colstore: save edge %d measures: %w", me.ID, err)
			}
		}
		for _, name := range me.MeasureNames {
			if err := writeMeasureColumn(w, r.named[name][me.ID]); err != nil {
				return fmt.Errorf("colstore: save edge %d measure %q: %w", me.ID, name, err)
			}
		}
	}
	for _, mv := range m.Views {
		if _, err := r.views[mv.Name].Col.Bits().WriteTo(w); err != nil {
			return fmt.Errorf("colstore: save view %q: %w", mv.Name, err)
		}
	}
	for _, ma := range m.AggViews {
		av := r.aggViews[ma.Name]
		if _, err := av.Col.Bits().WriteTo(w); err != nil {
			return fmt.Errorf("colstore: save agg view %q bitmap: %w", ma.Name, err)
		}
		if err := writeMeasureColumn(w, av.Measure); err != nil {
			return fmt.Errorf("colstore: save agg view %q measures: %w", ma.Name, err)
		}
	}
	for _, mt := range m.Tags {
		if _, err := r.tags[mt.Key][mt.Value].Bits().WriteTo(w); err != nil {
			return fmt.Errorf("colstore: save tag %s=%s: %w", mt.Key, mt.Value, err)
		}
	}
	if m.HasDeleted {
		if _, err := r.deleted.WriteTo(w); err != nil {
			return fmt.Errorf("colstore: save deleted bitmap: %w", err)
		}
	}
	return nil
}

// Load reads a relation previously written with Save. It follows the
// CURRENT pointer; when the installed generation is missing or damaged it
// falls back to the newest older generation that still loads, counting the
// recovery in PersistRecoveries. Stores written before the generational
// layout (manifest.json at the directory root) load transparently.
func Load(dir string) (*Relation, error) { return LoadFS(fsio.OS(), dir) }

// LoadFS is Load against an explicit filesystem.
func LoadFS(fs fsio.FS, dir string) (*Relation, error) {
	gens := listGenerations(fs, dir)
	cur, curOK := readCurrent(fs, dir)
	if !curOK && len(gens) == 0 {
		// Legacy flat layout (or a missing store — loadSnapshot reports
		// that as its own error).
		return loadSnapshot(fs, dir)
	}
	cands := make([]string, 0, len(gens)+1)
	if curOK {
		cands = append(cands, cur)
	}
	for _, g := range gens {
		if !curOK || g != cur {
			cands = append(cands, g)
		}
	}
	var firstErr error
	for i, g := range cands {
		r, err := loadSnapshot(fs, filepath.Join(dir, g))
		if err == nil {
			if i > 0 || !curOK {
				// The generation CURRENT designated was not usable (or the
				// pointer itself was lost); an older snapshot saved the day.
				persistRecoveries.Add(1)
			}
			// Pin the generation we now lazily page value blocks from: a
			// later Save's GC must not collect it out from under the pool.
			r.setSourceGen(g)
			return r, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, fmt.Errorf("colstore: no loadable generation in %s: %w", dir, firstErr)
}

// readManifest reads and validates dir's manifest.json.
func readManifest(fs fsio.FS, dir string) (*manifest, error) {
	mb, err := fsio.ReadFile(fs, filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("colstore: load manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(mb, &m); err != nil {
		return nil, fmt.Errorf("colstore: load manifest: %w", err)
	}
	if m.FormatVersion != formatVersion && m.FormatVersion != formatVersionV1 {
		return nil, fmt.Errorf("colstore: unsupported format version %d", m.FormatVersion)
	}
	return &m, nil
}

// verifyChecksum streams dir's data.bin and compares it against the
// manifest checksum. A zero checksum means the store predates checksumming
// (or, vanishingly rarely, really hashes to zero); verification is skipped
// for those.
func verifyChecksum(fs fsio.FS, dir string, m *manifest) error {
	if m.DataChecksum == 0 {
		return nil
	}
	f, err := fs.Open(filepath.Join(dir, "data.bin"))
	if err != nil {
		return fmt.Errorf("colstore: load data: %w", err)
	}
	defer f.Close()
	crc := crc32.New(castagnoli)
	if _, err := io.Copy(crc, f); err != nil {
		return fmt.Errorf("colstore: load data: %w", err)
	}
	if got := crc.Sum32(); got != m.DataChecksum {
		return fmt.Errorf("colstore: data.bin checksum mismatch (got %#x, manifest says %#x)",
			got, m.DataChecksum)
	}
	return nil
}

// verifySnapshot checks that dir holds a well-formed snapshot: the manifest
// parses, the format version is supported, and data.bin matches the
// manifest checksum. Cheaper than a full load (no column decode).
func verifySnapshot(fs fsio.FS, dir string) error {
	m, err := readManifest(fs, dir)
	if err != nil {
		return err
	}
	return verifyChecksum(fs, dir, m)
}

// loadSnapshot decodes the single snapshot in dir. Integrity is verified up
// front: a flipped bit deep in a column must not surface later as a
// silently wrong answer — for a v2 snapshot the full-file checksum is what
// lets the value blocks stay on disk unread until first access.
func loadSnapshot(fs fsio.FS, dir string) (*Relation, error) {
	m, err := readManifest(fs, dir)
	if err != nil {
		return nil, err
	}
	if err := verifyChecksum(fs, dir, m); err != nil {
		return nil, err
	}
	f, err := fs.Open(filepath.Join(dir, "data.bin"))
	if err != nil {
		return nil, fmt.Errorf("colstore: load data: %w", err)
	}
	defer f.Close()
	// The counting reader tracks the absolute data.bin offset so the block
	// indexes of a v2 snapshot can record where each payload lives.
	rd := &countingReader{r: bufio.NewReaderSize(f, 1<<20)}

	r := NewRelation(m.PartWidth)
	r.numRecords.Store(m.NumRecords)

	ld := snapLoader{cr: rd, ver: m.FormatVersion}
	if m.FormatVersion >= formatVersion {
		ld.src = newPageSource(fs, filepath.Join(dir, "data.bin"))
		ld.pool = pagepool.New(DefaultPageCacheBytes)
		r.pagePool = ld.pool
		r.pageSrcs = append(r.pageSrcs, ld.src)
	}

	for _, me := range m.Edges {
		b := bitmap.New()
		if _, err := b.ReadFrom(rd); err != nil {
			return nil, fmt.Errorf("colstore: load edge %d bitmap: %w", me.ID, err)
		}
		r.bitmaps[me.ID] = NewBitmapColumnFrom(b)
		if me.HasMeasure {
			mc, err := ld.measureColumn()
			if err != nil {
				return nil, fmt.Errorf("colstore: load edge %d measures: %w", me.ID, err)
			}
			r.measures[me.ID] = mc
		}
		for _, name := range me.MeasureNames {
			mc, err := ld.measureColumn()
			if err != nil {
				return nil, fmt.Errorf("colstore: load edge %d measure %q: %w", me.ID, name, err)
			}
			cols, ok := r.named[name]
			if !ok {
				cols = make(map[EdgeID]*MeasureColumn)
				r.named[name] = cols
			}
			cols[me.ID] = mc
		}
	}
	for _, mv := range m.Views {
		b := bitmap.New()
		if _, err := b.ReadFrom(rd); err != nil {
			return nil, fmt.Errorf("colstore: load view %q: %w", mv.Name, err)
		}
		r.views[mv.Name] = &GraphView{Name: mv.Name, Edges: mv.Edges, Col: NewBitmapColumnFrom(b)}
	}
	for _, ma := range m.AggViews {
		b := bitmap.New()
		if _, err := b.ReadFrom(rd); err != nil {
			return nil, fmt.Errorf("colstore: load agg view %q bitmap: %w", ma.Name, err)
		}
		mc, err := ld.measureColumn()
		if err != nil {
			return nil, fmt.Errorf("colstore: load agg view %q measures: %w", ma.Name, err)
		}
		fn, ok := agg.ByName(ma.Func)
		if !ok {
			return nil, fmt.Errorf("colstore: load agg view %q: unknown aggregate function %q", ma.Name, ma.Func)
		}
		r.aggViews[ma.Name] = &AggregateView{
			Name: ma.Name, Path: ma.Path, Func: ma.Func, MeasureName: ma.Measure,
			Measure: mc, Col: NewBitmapColumnFrom(b), fn: fn,
		}
	}
	for _, mt := range m.Tags {
		b := bitmap.New()
		if _, err := b.ReadFrom(rd); err != nil {
			return nil, fmt.Errorf("colstore: load tag %s=%s: %w", mt.Key, mt.Value, err)
		}
		if r.tags == nil {
			r.tags = make(map[string]map[string]*BitmapColumn)
		}
		byValue, ok := r.tags[mt.Key]
		if !ok {
			byValue = make(map[string]*BitmapColumn)
			r.tags[mt.Key] = byValue
		}
		byValue[mt.Value] = NewBitmapColumnFrom(b)
	}
	if m.HasDeleted {
		b := bitmap.New()
		if _, err := b.ReadFrom(rd); err != nil {
			return nil, fmt.Errorf("colstore: load deleted bitmap: %w", err)
		}
		r.deleted = b
	}
	return r, nil
}

// DiskSizeBytes returns the on-disk footprint of the installed snapshot
// (manifest.json + data.bin of the CURRENT generation, or of the directory
// itself for a legacy flat store).
func DiskSizeBytes(dir string) (int64, error) {
	fs := fsio.OS()
	snap := snapshotDir(fs, dir)
	var n int64
	for _, name := range []string{"manifest.json", "data.bin"} {
		fi, err := fs.Stat(filepath.Join(snap, name))
		if err != nil {
			return 0, err
		}
		n += fi.Size()
	}
	return n, nil
}

// countingReader tracks the absolute offset of a sequential read stream.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// snapLoader dispatches measure-column decoding by snapshot format version.
type snapLoader struct {
	cr   *countingReader
	ver  int
	src  *pageSource // v2 only
	pool *pagepool.Pool
}

func (l *snapLoader) measureColumn() (*MeasureColumn, error) {
	if l.ver == formatVersionV1 {
		return readMeasureColumnV1(l.cr)
	}
	return readPagedMeasureColumn(l.cr, l.src, l.pool)
}

// writeMeasureColumn writes a measure column in the v2 paged format:
// presence bitmap, u32 value count, u32 block count, the block index
// (per-block u32 payload length, u8 encoding, u16 value count, u64 zone min
// bits, u64 zone max bits), then the concatenated block payloads.
//
// The writer streams the values block-at-a-time — a paged column is saved by
// decoding each block straight from its source, never materializing the
// whole column — and the per-block encoding choice is deterministic, so
// saving a loaded snapshot reproduces it byte for byte (the crash sweep's
// bit-exactness check depends on this).
func writeMeasureColumn(w io.Writer, m *MeasureColumn) error {
	if err := m.validate(); err != nil {
		return err
	}
	if _, err := m.present.WriteTo(w); err != nil {
		return err
	}
	count := m.valueCount()
	numBlocks := (count + BlockValues - 1) / BlockValues
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(count))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(numBlocks))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var enc blockEncoder
	index := make([]byte, 0, numBlocks*blockMetaDiskSize)
	payloads := make([]byte, 0, 8*min(count, BlockValues))
	var meta [blockMetaDiskSize]byte
	for bi := 0; bi < numBlocks; bi++ {
		vals, err := m.blockValuesInto(bi, nil)
		if err != nil {
			return err
		}
		tag, payload, err := enc.encode(vals)
		if err != nil {
			return err
		}
		minBits, maxBits := zoneOf(vals)
		binary.LittleEndian.PutUint32(meta[0:], uint32(len(payload)))
		meta[4] = tag
		binary.LittleEndian.PutUint16(meta[5:], uint16(len(vals)))
		binary.LittleEndian.PutUint64(meta[7:], minBits)
		binary.LittleEndian.PutUint64(meta[15:], maxBits)
		index = append(index, meta[:]...)
		payloads = append(payloads, payload...)
	}
	if _, err := w.Write(index); err != nil {
		return err
	}
	_, err := w.Write(payloads)
	return err
}

// readBlockIndex reads and validates a v2 column's value count and block
// index from rd. Every field is treated as hostile input: block counts must
// be exactly ceil(count/BlockValues), per-block value counts must tile the
// column, encoding tags and payload lengths are bounded. Offsets are NOT
// assigned here — the caller derives them from its stream position.
func readBlockIndex(rd io.Reader) (count int, metas []blockMeta, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		return 0, nil, err
	}
	count = int(binary.LittleEndian.Uint32(hdr[:4]))
	numBlocks := int(binary.LittleEndian.Uint32(hdr[4:]))
	if want := (count + BlockValues - 1) / BlockValues; numBlocks != want {
		return 0, nil, fmt.Errorf("colstore: block index claims %d blocks for %d values (want %d)",
			numBlocks, count, want)
	}
	// Read metas one at a time so allocation tracks bytes actually read, not
	// the header's claim (a tiny corrupt file must not allocate gigabytes).
	var mb [blockMetaDiskSize]byte
	for bi := 0; bi < numBlocks; bi++ {
		if _, err := io.ReadFull(rd, mb[:]); err != nil {
			return 0, nil, err
		}
		m := blockMeta{
			encLen:  binary.LittleEndian.Uint32(mb[0:]),
			enc:     mb[4],
			count:   binary.LittleEndian.Uint16(mb[5:]),
			minBits: binary.LittleEndian.Uint64(mb[7:]),
			maxBits: binary.LittleEndian.Uint64(mb[15:]),
		}
		wantCnt := BlockValues
		if bi == numBlocks-1 {
			wantCnt = count - bi*BlockValues
		}
		if int(m.count) != wantCnt {
			return 0, nil, fmt.Errorf("colstore: block %d holds %d values, want %d", bi, m.count, wantCnt)
		}
		if m.enc >= numEncodings {
			return 0, nil, fmt.Errorf("colstore: block %d has unknown encoding %d", bi, m.enc)
		}
		if m.encLen < 1 || m.encLen > maxBlockEncLen {
			return 0, nil, fmt.Errorf("colstore: block %d payload length %d out of range", bi, m.encLen)
		}
		metas = append(metas, m)
	}
	return count, metas, nil
}

// readPagedMeasureColumn reads a v2 column header and block index from the
// stream, skips over the payloads, and returns a lazily paged column whose
// blocks fault in from src through pool.
func readPagedMeasureColumn(cr *countingReader, src *pageSource, pool *pagepool.Pool) (*MeasureColumn, error) {
	m := NewMeasureColumn()
	if _, err := m.present.ReadFrom(cr); err != nil {
		return nil, err
	}
	count, metas, err := readBlockIndex(cr)
	if err != nil {
		return nil, err
	}
	if count != m.present.Cardinality() {
		return nil, fmt.Errorf("colstore: measure count %d does not match presence %d",
			count, m.present.Cardinality())
	}
	var total int64
	base := cr.n
	for i := range metas {
		metas[i].off = base + total
		total += int64(metas[i].encLen)
	}
	if _, err := io.CopyN(io.Discard, cr, total); err != nil {
		return nil, fmt.Errorf("colstore: skip %d payload bytes: %w", total, err)
	}
	if count == 0 {
		return m, nil
	}
	m.paged = &pagedData{
		count: count,
		metas: metas,
		src:   src,
		token: pageTokens.Add(1),
		pool:  pool,
	}
	return m, m.validate()
}

// readMeasureColumn eagerly decodes a v2 measure column from rd into a
// resident column: the round-trip complement of writeMeasureColumn for
// contexts without a seekable source (fuzzers, tools).
func readMeasureColumn(rd io.Reader) (*MeasureColumn, error) {
	m := NewMeasureColumn()
	if _, err := m.present.ReadFrom(rd); err != nil {
		return nil, err
	}
	count, metas, err := readBlockIndex(rd)
	if err != nil {
		return nil, err
	}
	if count != m.present.Cardinality() {
		return nil, fmt.Errorf("colstore: measure count %d does not match presence %d",
			count, m.present.Cardinality())
	}
	m.values = make([]float64, 0, min(count, BlockValues))
	payload := make([]byte, 0, maxBlockEncLen)
	var block [BlockValues]float64
	for bi, meta := range metas {
		payload = payload[:meta.encLen]
		if _, err := io.ReadFull(rd, payload); err != nil {
			return nil, err
		}
		dst := block[:meta.count]
		if err := decodeBlock(meta.enc, payload, dst); err != nil {
			return nil, fmt.Errorf("colstore: block %d: %w", bi, err)
		}
		m.values = append(m.values, dst...)
	}
	return m, m.validate()
}

// readMeasureColumnV1 decodes the version-1 packed-value layout: presence
// bitmap, u32 count, count raw little-endian float64s.
func readMeasureColumnV1(rd io.Reader) (*MeasureColumn, error) {
	m := NewMeasureColumn()
	if _, err := m.present.ReadFrom(rd); err != nil {
		return nil, err
	}
	var hdr [4]byte
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n != m.present.Cardinality() {
		return nil, fmt.Errorf("colstore: measure count %d does not match presence %d",
			n, m.present.Cardinality())
	}
	// Read the values in bounded chunks: the count is attacker-controlled
	// input (run-compressed presence bitmaps can claim a huge cardinality
	// from a few bytes), so allocation must track bytes actually read
	// rather than the header's claim.
	const chunk = 1 << 16
	buf := make([]byte, 8*min(n, chunk))
	m.values = make([]float64, 0, min(n, chunk))
	for remaining := n; remaining > 0; {
		c := min(remaining, chunk)
		if _, err := io.ReadFull(rd, buf[:8*c]); err != nil {
			return nil, err
		}
		for i := 0; i < c; i++ {
			m.values = append(m.values, floatFromBits(binary.LittleEndian.Uint64(buf[8*i:])))
		}
		remaining -= c
	}
	return m, m.validate()
}
