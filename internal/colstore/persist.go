package colstore

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"grove/internal/agg"
	"grove/internal/bitmap"
)

// On-disk layout: a directory holding
//
//	manifest.json — schema: record count, partition width, edge ids, views
//	data.bin      — column payloads, in manifest order
//
// Measure columns are stored as presence bitmap + packed float64 values, so
// NULLs occupy no space on disk either.

type manifest struct {
	FormatVersion int    `json:"format_version"`
	NumRecords    uint32 `json:"num_records"`
	PartWidth     int    `json:"partition_width"`
	// DataChecksum is the CRC-32C of data.bin, verified on Load so silent
	// corruption is caught before a damaged column is queried.
	DataChecksum uint32         `json:"data_checksum"`
	Edges        []manifestEdge `json:"edges"`
	Views        []manifestView `json:"views"`
	AggViews     []manifestAgg  `json:"agg_views"`
	Tags         []manifestTag  `json:"tags,omitempty"`
	// HasDeleted marks that a deleted-records bitmap follows the tag
	// bitmaps in data.bin.
	HasDeleted bool `json:"has_deleted,omitempty"`
}

type manifestTag struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

type manifestEdge struct {
	ID         EdgeID `json:"id"`
	HasMeasure bool   `json:"has_measure"`
	// MeasureNames lists the named measure columns of this edge, sorted.
	MeasureNames []string `json:"measure_names,omitempty"`
}

type manifestView struct {
	Name  string   `json:"name"`
	Edges []EdgeID `json:"edges"`
}

type manifestAgg struct {
	Name    string   `json:"name"`
	Path    []EdgeID `json:"path"`
	Func    string   `json:"func"`
	Measure string   `json:"measure,omitempty"` // measure name ("" = default)
}

const formatVersion = 1

// Save writes the relation to dir, creating it if needed. It holds the read
// lock for the duration, so concurrent queries proceed but writers wait until
// the snapshot is on disk.
func (r *Relation) Save(dir string) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("colstore: save: %w", err)
	}
	m := manifest{
		FormatVersion: formatVersion,
		NumRecords:    r.numRecords.Load(),
		PartWidth:     r.partWidth,
	}
	crc := crc32.New(crc32.MakeTable(crc32.Castagnoli))
	for _, e := range r.Edges() {
		_, hasM := r.measures[e]
		var names []string
		for _, name := range r.MeasureNames() {
			if _, ok := r.named[name][e]; ok {
				names = append(names, name)
			}
		}
		m.Edges = append(m.Edges, manifestEdge{ID: e, HasMeasure: hasM, MeasureNames: names})
	}
	for _, v := range r.Views() {
		m.Views = append(m.Views, manifestView{Name: v.Name, Edges: v.Edges})
	}
	for _, v := range r.AggViews() {
		m.AggViews = append(m.AggViews, manifestAgg{Name: v.Name, Path: v.Path, Func: v.Func, Measure: v.MeasureName})
	}
	for _, key := range r.TagKeys() {
		for _, value := range r.TagValues(key) {
			m.Tags = append(m.Tags, manifestTag{Key: key, Value: value})
		}
	}
	m.HasDeleted = r.deleted != nil && !r.deleted.IsEmpty()

	f, err := os.Create(filepath.Join(dir, "data.bin"))
	if err != nil {
		return fmt.Errorf("colstore: save data: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriterSize(io.MultiWriter(f, crc), 1<<20)

	for _, me := range m.Edges {
		if _, err := r.bitmaps[me.ID].Bits().WriteTo(w); err != nil {
			return fmt.Errorf("colstore: save edge %d bitmap: %w", me.ID, err)
		}
		if me.HasMeasure {
			if err := writeMeasureColumn(w, r.measures[me.ID]); err != nil {
				return fmt.Errorf("colstore: save edge %d measures: %w", me.ID, err)
			}
		}
		for _, name := range me.MeasureNames {
			if err := writeMeasureColumn(w, r.named[name][me.ID]); err != nil {
				return fmt.Errorf("colstore: save edge %d measure %q: %w", me.ID, name, err)
			}
		}
	}
	for _, mv := range m.Views {
		if _, err := r.views[mv.Name].Col.Bits().WriteTo(w); err != nil {
			return fmt.Errorf("colstore: save view %q: %w", mv.Name, err)
		}
	}
	for _, ma := range m.AggViews {
		av := r.aggViews[ma.Name]
		if _, err := av.Col.Bits().WriteTo(w); err != nil {
			return fmt.Errorf("colstore: save agg view %q bitmap: %w", ma.Name, err)
		}
		if err := writeMeasureColumn(w, av.Measure); err != nil {
			return fmt.Errorf("colstore: save agg view %q measures: %w", ma.Name, err)
		}
	}
	for _, mt := range m.Tags {
		if _, err := r.tags[mt.Key][mt.Value].Bits().WriteTo(w); err != nil {
			return fmt.Errorf("colstore: save tag %s=%s: %w", mt.Key, mt.Value, err)
		}
	}
	if m.HasDeleted {
		if _, err := r.deleted.WriteTo(w); err != nil {
			return fmt.Errorf("colstore: save deleted bitmap: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("colstore: save data: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("colstore: save data: %w", err)
	}

	m.DataChecksum = crc.Sum32()
	mb, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("colstore: save manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), mb, 0o644); err != nil {
		return fmt.Errorf("colstore: save manifest: %w", err)
	}
	return nil
}

// Load reads a relation previously written with Save.
func Load(dir string) (*Relation, error) {
	mb, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("colstore: load manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(mb, &m); err != nil {
		return nil, fmt.Errorf("colstore: load manifest: %w", err)
	}
	if m.FormatVersion != formatVersion {
		return nil, fmt.Errorf("colstore: unsupported format version %d", m.FormatVersion)
	}

	f, err := os.Open(filepath.Join(dir, "data.bin"))
	if err != nil {
		return nil, fmt.Errorf("colstore: load data: %w", err)
	}
	defer f.Close()
	// Verify integrity up front: a flipped bit deep in a column must not
	// surface later as a silently wrong answer. A zero checksum means the
	// store predates checksumming (or, vanishingly rarely, really hashes to
	// zero); verification is skipped for those.
	if m.DataChecksum != 0 {
		crc := crc32.New(crc32.MakeTable(crc32.Castagnoli))
		if _, err := io.Copy(crc, f); err != nil {
			return nil, fmt.Errorf("colstore: load data: %w", err)
		}
		if got := crc.Sum32(); got != m.DataChecksum {
			return nil, fmt.Errorf("colstore: data.bin checksum mismatch (got %#x, manifest says %#x)",
				got, m.DataChecksum)
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, fmt.Errorf("colstore: load data: %w", err)
		}
	}
	rd := bufio.NewReaderSize(f, 1<<20)

	r := NewRelation(m.PartWidth)
	r.numRecords.Store(m.NumRecords)

	for _, me := range m.Edges {
		b := bitmap.New()
		if _, err := b.ReadFrom(rd); err != nil {
			return nil, fmt.Errorf("colstore: load edge %d bitmap: %w", me.ID, err)
		}
		r.bitmaps[me.ID] = NewBitmapColumnFrom(b)
		if me.HasMeasure {
			mc, err := readMeasureColumn(rd)
			if err != nil {
				return nil, fmt.Errorf("colstore: load edge %d measures: %w", me.ID, err)
			}
			r.measures[me.ID] = mc
		}
		for _, name := range me.MeasureNames {
			mc, err := readMeasureColumn(rd)
			if err != nil {
				return nil, fmt.Errorf("colstore: load edge %d measure %q: %w", me.ID, name, err)
			}
			cols, ok := r.named[name]
			if !ok {
				cols = make(map[EdgeID]*MeasureColumn)
				r.named[name] = cols
			}
			cols[me.ID] = mc
		}
	}
	for _, mv := range m.Views {
		b := bitmap.New()
		if _, err := b.ReadFrom(rd); err != nil {
			return nil, fmt.Errorf("colstore: load view %q: %w", mv.Name, err)
		}
		r.views[mv.Name] = &GraphView{Name: mv.Name, Edges: mv.Edges, Col: NewBitmapColumnFrom(b)}
	}
	for _, ma := range m.AggViews {
		b := bitmap.New()
		if _, err := b.ReadFrom(rd); err != nil {
			return nil, fmt.Errorf("colstore: load agg view %q bitmap: %w", ma.Name, err)
		}
		mc, err := readMeasureColumn(rd)
		if err != nil {
			return nil, fmt.Errorf("colstore: load agg view %q measures: %w", ma.Name, err)
		}
		fn, ok := agg.ByName(ma.Func)
		if !ok {
			return nil, fmt.Errorf("colstore: load agg view %q: unknown aggregate function %q", ma.Name, ma.Func)
		}
		r.aggViews[ma.Name] = &AggregateView{
			Name: ma.Name, Path: ma.Path, Func: ma.Func, MeasureName: ma.Measure,
			Measure: mc, Col: NewBitmapColumnFrom(b), fn: fn,
		}
	}
	for _, mt := range m.Tags {
		b := bitmap.New()
		if _, err := b.ReadFrom(rd); err != nil {
			return nil, fmt.Errorf("colstore: load tag %s=%s: %w", mt.Key, mt.Value, err)
		}
		if r.tags == nil {
			r.tags = make(map[string]map[string]*BitmapColumn)
		}
		byValue, ok := r.tags[mt.Key]
		if !ok {
			byValue = make(map[string]*BitmapColumn)
			r.tags[mt.Key] = byValue
		}
		byValue[mt.Value] = NewBitmapColumnFrom(b)
	}
	if m.HasDeleted {
		b := bitmap.New()
		if _, err := b.ReadFrom(rd); err != nil {
			return nil, fmt.Errorf("colstore: load deleted bitmap: %w", err)
		}
		r.deleted = b
	}
	return r, nil
}

// DiskSizeBytes returns the total on-disk footprint of a saved relation.
func DiskSizeBytes(dir string) (int64, error) {
	var n int64
	for _, name := range []string{"manifest.json", "data.bin"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			return 0, err
		}
		n += fi.Size()
	}
	return n, nil
}

func writeMeasureColumn(w io.Writer, m *MeasureColumn) error {
	if err := m.validate(); err != nil {
		return err
	}
	if _, err := m.present.WriteTo(w); err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(m.values)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 8*len(m.values))
	for i, v := range m.values {
		binary.LittleEndian.PutUint64(buf[8*i:], floatBits(v))
	}
	_, err := w.Write(buf)
	return err
}

func readMeasureColumn(rd io.Reader) (*MeasureColumn, error) {
	m := NewMeasureColumn()
	if _, err := m.present.ReadFrom(rd); err != nil {
		return nil, err
	}
	var hdr [4]byte
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n != m.present.Cardinality() {
		return nil, fmt.Errorf("colstore: measure count %d does not match presence %d",
			n, m.present.Cardinality())
	}
	// Read the values in bounded chunks: the count is attacker-controlled
	// input (run-compressed presence bitmaps can claim a huge cardinality
	// from a few bytes), so allocation must track bytes actually read
	// rather than the header's claim.
	const chunk = 1 << 16
	buf := make([]byte, 8*min(n, chunk))
	m.values = make([]float64, 0, min(n, chunk))
	for remaining := n; remaining > 0; {
		c := min(remaining, chunk)
		if _, err := io.ReadFull(rd, buf[:8*c]); err != nil {
			return nil, err
		}
		for i := 0; i < c; i++ {
			m.values = append(m.values, floatFromBits(binary.LittleEndian.Uint64(buf[8*i:])))
		}
		remaining -= c
	}
	return m, m.validate()
}
