package colstore

import (
	"math/rand"
	"testing"
)

func TestSetPartitionMapValidation(t *testing.T) {
	r := NewRelation(2)
	if err := r.SetPartitionMap(map[EdgeID]int{1: -1}); err == nil {
		t.Error("negative partition accepted")
	}
	if err := r.SetPartitionMap(map[EdgeID]int{1: 0, 2: 0, 3: 0}); err == nil {
		t.Error("over-capacity partition accepted")
	}
	if err := r.SetPartitionMap(map[EdgeID]int{1: 0, 2: 0}); err != nil {
		t.Errorf("valid map rejected: %v", err)
	}
	if got := r.PartitionOf(1); got != 0 {
		t.Errorf("PartitionOf(1) = %d", got)
	}
	// Unmapped edges fall back to the default rule.
	if got := r.PartitionOf(7); got != 3 {
		t.Errorf("PartitionOf(7) fallback = %d, want 3", got)
	}
	if err := r.SetPartitionMap(nil); err != nil {
		t.Errorf("reset rejected: %v", err)
	}
	if got := r.PartitionOf(1); got != 0 {
		t.Errorf("PartitionOf(1) after reset = %d", got)
	}
}

func TestClusterPartitionsCoLocatesQueries(t *testing.T) {
	r := NewRelation(4)
	rec := r.NewRecord()
	for e := EdgeID(0); e < 12; e++ {
		r.SetEdgeMeasure(rec, e, 1)
	}
	// Two queries whose edges are spread across the default partitioning:
	// q1 = {0, 5, 10}, q2 = {1, 6, 11}.
	q1 := []EdgeID{0, 5, 10}
	q2 := []EdgeID{1, 6, 11}
	if span := r.PartitionSpan(q1); span != 3 {
		t.Fatalf("default span = %d, want 3", span)
	}
	if _, err := r.ClusterPartitions([][]EdgeID{q1, q2}); err != nil {
		t.Fatal(err)
	}
	if span := r.PartitionSpan(q1); span != 1 {
		t.Errorf("clustered span(q1) = %d, want 1", span)
	}
	if span := r.PartitionSpan(q2); span != 1 {
		t.Errorf("clustered span(q2) = %d, want 1", span)
	}
}

func TestClusterPartitionsRespectsCapacity(t *testing.T) {
	r := NewRelation(3)
	rec := r.NewRecord()
	for e := EdgeID(0); e < 10; e++ {
		r.SetEdgeMeasure(rec, e, 1)
	}
	// A query wider than one partition must spill, not overflow.
	wide := []EdgeID{0, 1, 2, 3, 4, 5, 6}
	if _, err := r.ClusterPartitions([][]EdgeID{wide}); err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	for e := EdgeID(0); e < 10; e++ {
		counts[r.PartitionOf(e)]++
	}
	for p, n := range counts {
		if n > 3 {
			t.Errorf("partition %d holds %d > 3 columns", p, n)
		}
	}
	if span := r.PartitionSpan(wide); span > 3 {
		t.Errorf("wide query span = %d after clustering", span)
	}
}

func TestClusterPartitionsNeverWorseOnWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	r := NewRelation(10)
	rec := r.NewRecord()
	for e := EdgeID(0); e < 100; e++ {
		r.SetEdgeMeasure(rec, e, 1)
	}
	var workload [][]EdgeID
	for i := 0; i < 20; i++ {
		var q []EdgeID
		for j := 0; j < 2+rng.Intn(6); j++ {
			q = append(q, EdgeID(rng.Intn(100)))
		}
		workload = append(workload, q)
	}
	before := 0
	for _, q := range workload {
		before += r.PartitionSpan(q)
	}
	if _, err := r.ClusterPartitions(workload); err != nil {
		t.Fatal(err)
	}
	after := 0
	for _, q := range workload {
		after += r.PartitionSpan(q)
	}
	if after > before {
		t.Errorf("clustering increased total span: %d -> %d", before, after)
	}
	// Every edge must still be assigned somewhere valid.
	for e := EdgeID(0); e < 100; e++ {
		if r.PartitionOf(e) < 0 {
			t.Fatalf("edge %d unassigned", e)
		}
	}
}
