package colstore

import (
	"math/rand"
	"testing"
)

// benchColumn builds a measure column with ~density fraction of numRecords
// present.
func benchColumn(numRecords int, density float64, seed int64) *MeasureColumn {
	rng := rand.New(rand.NewSource(seed))
	c := NewMeasureColumn()
	for rec := 0; rec < numRecords; rec++ {
		if rng.Float64() < density {
			c.Set(uint32(rec), rng.Float64())
		}
	}
	return c
}

func benchAnswer(numRecords, n int, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[uint32]struct{}, n)
	out := make([]uint32, 0, n)
	for len(out) < n {
		v := uint32(rng.Intn(numRecords))
		if _, dup := seen[v]; !dup {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	sortU32(out)
	return out
}

func sortU32(s []uint32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// BenchmarkValuesForMerge vs BenchmarkValuesForGets: the batched merge
// access path against per-record point lookups (the ablation behind
// MeasureColumn.ValuesFor's hybrid).
func BenchmarkValuesForMerge(b *testing.B) {
	c := benchColumn(100000, 0.1, 1)
	recs := benchAnswer(100000, 5000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ValuesFor(recs)
	}
}

func BenchmarkValuesForGets(b *testing.B) {
	c := benchColumn(100000, 0.1, 1)
	recs := benchAnswer(100000, 5000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rec := range recs {
			c.Get(rec)
		}
	}
}

func BenchmarkMeasureColumnSetSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := NewMeasureColumn()
		for rec := uint32(0); rec < 10000; rec++ {
			c.Set(rec, float64(rec))
		}
	}
}

func BenchmarkMaterializeView(b *testing.B) {
	r := NewRelation(0)
	rng := rand.New(rand.NewSource(4))
	for rec := 0; rec < 20000; rec++ {
		id := r.NewRecord()
		for j := 0; j < 30; j++ {
			r.SetEdgeMeasure(id, EdgeID(rng.Intn(500)), 1)
		}
	}
	edges := []EdgeID{1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := "v" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
		if _, err := r.MaterializeView(name, edges); err != nil {
			b.Fatal(err)
		}
		r.DropView(name)
	}
}

func BenchmarkUpdateViewsForRecord(b *testing.B) {
	r := NewRelation(0)
	rng := rand.New(rand.NewSource(5))
	for rec := 0; rec < 1000; rec++ {
		id := r.NewRecord()
		for j := 0; j < 30; j++ {
			r.SetEdgeMeasure(id, EdgeID(rng.Intn(200)), 1)
		}
	}
	for i := 0; i < 20; i++ {
		if _, err := r.MaterializeView("v"+string(rune('a'+i)), []EdgeID{EdgeID(i), EdgeID(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := r.NewRecord()
		for j := 0; j < 30; j++ {
			r.SetEdgeMeasure(id, EdgeID(rng.Intn(200)), 1)
		}
		r.UpdateViewsForRecord(id)
	}
}
