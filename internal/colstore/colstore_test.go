package colstore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"grove/internal/agg"
)

func TestMeasureColumnSetGet(t *testing.T) {
	c := NewMeasureColumn()
	c.Set(5, 1.5)
	c.Set(2, 2.5)
	c.Set(9, 3.5)
	c.Set(5, 9.9) // replace

	if v, ok := c.Get(5); !ok || v != 9.9 {
		t.Errorf("Get(5) = %v,%v want 9.9,true", v, ok)
	}
	if v, ok := c.Get(2); !ok || v != 2.5 {
		t.Errorf("Get(2) = %v,%v want 2.5,true", v, ok)
	}
	if v, ok := c.Get(9); !ok || v != 3.5 {
		t.Errorf("Get(9) = %v,%v want 3.5,true", v, ok)
	}
	if _, ok := c.Get(3); ok {
		t.Error("Get(3) reported present for NULL")
	}
	if c.Count() != 3 {
		t.Errorf("Count = %d, want 3", c.Count())
	}
}

func TestMeasureColumnForEachOrder(t *testing.T) {
	c := NewMeasureColumn()
	c.Set(30, 3)
	c.Set(10, 1)
	c.Set(20, 2)
	var recs []uint32
	var vals []float64
	c.ForEach(func(rec uint32, v float64) bool {
		recs = append(recs, rec)
		vals = append(vals, v)
		return true
	})
	wantRecs := []uint32{10, 20, 30}
	wantVals := []float64{1, 2, 3}
	for i := range wantRecs {
		if recs[i] != wantRecs[i] || vals[i] != wantVals[i] {
			t.Fatalf("ForEach order = %v/%v, want %v/%v", recs, vals, wantRecs, wantVals)
		}
	}
}

func TestQuickMeasureColumnMatchesMap(t *testing.T) {
	f := func(pairs []struct {
		Rec uint32
		V   float64
	}) bool {
		c := NewMeasureColumn()
		ref := map[uint32]float64{}
		for _, p := range pairs {
			rec := p.Rec % 100000
			v := p.V
			if v != v { // NaN guard: NaN measures are rejected elsewhere
				v = 0
			}
			c.Set(rec, v)
			ref[rec] = v
		}
		if c.Count() != len(ref) {
			return false
		}
		for rec, want := range ref {
			if got, ok := c.Get(rec); !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func buildSmallRelation(t *testing.T) *Relation {
	t.Helper()
	// The three records of paper Fig. 2 / Table 1. Edge ids 1..7.
	r := NewRelation(0)
	r1 := r.NewRecord()
	r2 := r.NewRecord()
	r3 := r.NewRecord()
	set := func(rec uint32, pairs map[EdgeID]float64) {
		for e, v := range pairs {
			r.SetEdgeMeasure(rec, e, v)
		}
	}
	set(r1, map[EdgeID]float64{1: 3, 2: 4, 3: 2, 4: 1, 5: 2})
	set(r2, map[EdgeID]float64{2: 1, 3: 2, 4: 2, 5: 1, 6: 4, 7: 1})
	set(r3, map[EdgeID]float64{4: 5, 5: 4, 6: 3, 7: 1})
	return r
}

func TestRelationTable1Bitmaps(t *testing.T) {
	r := buildSmallRelation(t)
	if r.NumRecords() != 3 {
		t.Fatalf("NumRecords = %d, want 3", r.NumRecords())
	}
	// Table 1: b1 = (1,0,0), b4 = (1,1,1), b6 = (0,1,1).
	cases := []struct {
		edge EdgeID
		want []uint32
	}{
		{1, []uint32{0}},
		{4, []uint32{0, 1, 2}},
		{6, []uint32{1, 2}},
	}
	for _, c := range cases {
		got := r.EdgeBitmap(c.edge).ToSlice()
		if len(got) != len(c.want) {
			t.Fatalf("edge %d bitmap = %v, want %v", c.edge, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("edge %d bitmap = %v, want %v", c.edge, got, c.want)
			}
		}
	}
}

func TestRelationTable1Views(t *testing.T) {
	r := buildSmallRelation(t)
	// bv1: AND of e1..e4 → only r1 (Table 1, column bv1 = 1,0,0).
	v, err := r.MaterializeView("bv1", []EdgeID{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Col.Bits().ToSlice(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("bv1 = %v, want [0]", got)
	}
	// Aggregate view p1 = [e6,e7], SUM: mp1 = NULL,5,4; bp1 = 0,1,1.
	av, err := r.MaterializeAggView("p1", []EdgeID{6, 7}, agg.Sum)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := av.Measure.Get(0); ok {
		t.Error("r1 should be NULL in mp1")
	}
	if got, ok := av.Measure.Get(1); !ok || got != 5 {
		t.Errorf("mp1[r2] = %v,%v want 5,true", got, ok)
	}
	if got, ok := av.Measure.Get(2); !ok || got != 4 {
		t.Errorf("mp1[r3] = %v,%v want 4,true", got, ok)
	}
	if got := av.Col.Bits().ToSlice(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("bp1 = %v, want [1 2]", got)
	}
}

func TestMaterializeViewErrors(t *testing.T) {
	r := buildSmallRelation(t)
	if _, err := r.MaterializeView("", []EdgeID{1}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := r.MaterializeView("v", nil); err == nil {
		t.Error("empty edge set accepted")
	}
	if _, err := r.MaterializeView("v", []EdgeID{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.MaterializeView("v", []EdgeID{2}); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := r.MaterializeAggView("a", []EdgeID{1}, agg.Sum); err == nil {
		t.Error("single-edge aggregate view accepted")
	}
	if _, err := r.MaterializeAggView("a", []EdgeID{1, 2}, agg.Func{}); err == nil {
		t.Error("invalid aggregate function accepted")
	}
}

func TestViewDrop(t *testing.T) {
	r := buildSmallRelation(t)
	if _, err := r.MaterializeView("v", []EdgeID{1, 2}); err != nil {
		t.Fatal(err)
	}
	if !r.DropView("v") {
		t.Error("DropView failed")
	}
	if r.DropView("v") {
		t.Error("second DropView succeeded")
	}
	if r.View("v") != nil {
		t.Error("view still present after drop")
	}
}

func TestTrackerAccounting(t *testing.T) {
	r := buildSmallRelation(t)
	r.Tracker().Reset()
	_ = r.FetchEdgeBitmap(1)
	_ = r.FetchEdgeBitmap(2)
	_ = r.FetchMeasureColumn(1)
	s := r.Tracker().Snapshot()
	if s.BitmapColumnsFetched != 2 {
		t.Errorf("BitmapColumnsFetched = %d, want 2", s.BitmapColumnsFetched)
	}
	if s.MeasureColumnsFetched != 1 {
		t.Errorf("MeasureColumnsFetched = %d, want 1", s.MeasureColumnsFetched)
	}
	if s.ColumnsFetched() != 3 {
		t.Errorf("ColumnsFetched = %d, want 3", s.ColumnsFetched())
	}
	if s.BytesRead == 0 {
		t.Error("BytesRead = 0, want > 0")
	}
	// Unknown columns are still charged as a fetch.
	_ = r.FetchEdgeBitmap(999)
	if got := r.Tracker().Snapshot().BitmapColumnsFetched; got != 3 {
		t.Errorf("after unknown edge fetch, BitmapColumnsFetched = %d, want 3", got)
	}
}

func TestStatsAddSub(t *testing.T) {
	a := Stats{BitmapColumnsFetched: 3, MeasureColumnsFetched: 1, BytesRead: 100}
	b := Stats{BitmapColumnsFetched: 1, MeasureColumnsFetched: 1, BytesRead: 40}
	sum := a.Add(b)
	if sum.BitmapColumnsFetched != 4 || sum.BytesRead != 140 {
		t.Errorf("Add = %+v", sum)
	}
	diff := sum.Sub(b)
	if diff != a {
		t.Errorf("Sub = %+v, want %+v", diff, a)
	}
}

func TestPartitioning(t *testing.T) {
	r := NewRelation(10)
	rec := r.NewRecord()
	for e := EdgeID(0); e < 35; e++ {
		r.SetEdgeMeasure(rec, e, 1)
	}
	if r.PartitionWidth() != 10 {
		t.Errorf("PartitionWidth = %d", r.PartitionWidth())
	}
	if got := r.PartitionOf(0); got != 0 {
		t.Errorf("PartitionOf(0) = %d", got)
	}
	if got := r.PartitionOf(34); got != 3 {
		t.Errorf("PartitionOf(34) = %d", got)
	}
	if got := r.NumPartitions(); got != 4 {
		t.Errorf("NumPartitions = %d, want 4", got)
	}
	if got := r.PartitionSpan([]EdgeID{1, 2, 11, 29}); got != 3 {
		t.Errorf("PartitionSpan = %d, want 3", got)
	}
}

func TestDefaultPartitionWidth(t *testing.T) {
	r := NewRelation(0)
	if r.PartitionWidth() != DefaultPartitionWidth {
		t.Errorf("default width = %d, want %d", r.PartitionWidth(), DefaultPartitionWidth)
	}
}

func TestJoinPartitionsAccounting(t *testing.T) {
	r := buildSmallRelation(t)
	r.Tracker().Reset()
	answer := r.EdgeBitmap(4) // all three records
	r.JoinPartitions(3, answer)
	if got := r.Tracker().Snapshot().PartitionJoins; got != 6 { // 2 joins × 3 records
		t.Errorf("PartitionJoins = %d, want 6", got)
	}
	r.Tracker().Reset()
	r.JoinPartitions(1, answer)
	if got := r.Tracker().Snapshot().PartitionJoins; got != 0 {
		t.Errorf("single-partition join accounted %d", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := buildSmallRelation(t)
	if _, err := r.MaterializeView("bv1", []EdgeID{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.MaterializeAggView("p1", []EdgeID{6, 7}, agg.Sum); err != nil {
		t.Fatal(err)
	}
	if err := r.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRecords() != r.NumRecords() {
		t.Errorf("NumRecords = %d, want %d", got.NumRecords(), r.NumRecords())
	}
	if got.TotalMeasures() != r.TotalMeasures() {
		t.Errorf("TotalMeasures = %d, want %d", got.TotalMeasures(), r.TotalMeasures())
	}
	for _, e := range r.Edges() {
		want := r.EdgeBitmap(e)
		if !got.EdgeBitmap(e).Equals(want) {
			t.Errorf("edge %d bitmap mismatch", e)
		}
		wm, gm := r.MeasureColumn(e), got.MeasureColumn(e)
		if (wm == nil) != (gm == nil) {
			t.Fatalf("edge %d measure presence mismatch", e)
		}
		if wm != nil {
			wm.ForEach(func(rec uint32, v float64) bool {
				if gv, ok := gm.Get(rec); !ok || gv != v {
					t.Errorf("edge %d rec %d: %v vs %v", e, rec, gv, v)
				}
				return true
			})
		}
	}
	v := got.View("bv1")
	if v == nil || !v.Col.Bits().Equals(r.View("bv1").Col.Bits()) {
		t.Error("graph view bv1 did not survive round trip")
	}
	av := got.AggView("p1")
	if av == nil || av.Func != "SUM" || len(av.Path) != 2 {
		t.Fatalf("agg view p1 metadata lost: %+v", av)
	}
	if mv, ok := av.Measure.Get(1); !ok || mv != 5 {
		t.Errorf("agg view measure lost: %v,%v", mv, ok)
	}
	if sz, err := DiskSizeBytes(dir); err != nil || sz <= 0 {
		t.Errorf("DiskSizeBytes = %d, %v", sz, err)
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(t.TempDir() + "/nope"); err == nil {
		t.Fatal("Load of missing dir succeeded")
	}
}

func TestSaveLoadLargeRandom(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(42))
	r := NewRelation(100)
	for i := 0; i < 2000; i++ {
		rec := r.NewRecord()
		n := 5 + rng.Intn(20)
		for j := 0; j < n; j++ {
			e := EdgeID(rng.Intn(300))
			r.SetEdgeMeasure(rec, e, float64(rng.Intn(1000))/10)
		}
	}
	r.RunOptimize()
	if err := r.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRecords() != 2000 {
		t.Fatalf("NumRecords = %d", got.NumRecords())
	}
	if got.TotalMeasures() != r.TotalMeasures() {
		t.Fatalf("TotalMeasures mismatch: %d vs %d", got.TotalMeasures(), r.TotalMeasures())
	}
	for _, e := range r.Edges() {
		if !got.EdgeBitmap(e).Equals(r.EdgeBitmap(e)) {
			t.Fatalf("edge %d bitmap mismatch after round trip", e)
		}
	}
}

func TestSizeAccounting(t *testing.T) {
	r := buildSmallRelation(t)
	base := r.BaseSizeBytes()
	if base <= 0 {
		t.Fatal("BaseSizeBytes = 0")
	}
	if r.ViewSizeBytes() != 0 {
		t.Fatalf("ViewSizeBytes = %d before materialization", r.ViewSizeBytes())
	}
	if _, err := r.MaterializeView("v", []EdgeID{4, 5}); err != nil {
		t.Fatal(err)
	}
	if r.ViewSizeBytes() <= 0 {
		t.Error("ViewSizeBytes = 0 after materialization")
	}
	if r.SizeBytes() != r.BaseSizeBytes()+r.ViewSizeBytes() {
		t.Error("SizeBytes != base + views")
	}
}
