package colstore

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// buildColumn decodes the fuzz input as (rec uint32, value float64) pairs,
// 12 bytes each, into a measure column. NaNs are remapped (the column
// contract rejects them) and record ids are folded into a bounded space so
// the dense value slice stays proportional to the input.
func buildColumn(data []byte) *MeasureColumn {
	m := NewMeasureColumn()
	for len(data) >= 12 {
		rec := binary.LittleEndian.Uint32(data[:4]) % (1 << 20)
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[4:12]))
		if math.IsNaN(v) {
			v = 0
		}
		m.Set(rec, v)
		data = data[12:]
	}
	return m
}

// FuzzMeasureColumnRoundTrip checks decode(encode(column)) == column for
// arbitrary constructed columns, comparing values bitwise (so -0, ±Inf and
// denormals must all survive the trip).
func FuzzMeasureColumnRoundTrip(f *testing.F) {
	f.Add([]byte{})
	seed := make([]byte, 0, 36)
	for _, e := range []struct {
		rec uint32
		v   float64
	}{{0, 1.5}, {7, math.Inf(-1)}, {1 << 19, math.Copysign(0, -1)}} {
		seed = binary.LittleEndian.AppendUint32(seed, e.rec)
		seed = binary.LittleEndian.AppendUint64(seed, math.Float64bits(e.v))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 12*4096 {
			return // cap the column size, not the value space
		}
		orig := buildColumn(data)
		var buf bytes.Buffer
		if err := writeMeasureColumn(&buf, orig); err != nil {
			t.Fatalf("encode of a valid column failed: %v", err)
		}
		got, err := readMeasureColumn(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode of a fresh encoding failed: %v", err)
		}
		if got.Count() != orig.Count() {
			t.Fatalf("count = %d, want %d", got.Count(), orig.Count())
		}
		orig.ForEach(func(rec uint32, want float64) bool {
			have, ok := got.Get(rec)
			if !ok || math.Float64bits(have) != math.Float64bits(want) {
				t.Fatalf("record %d = %v (present=%v), want %v", rec, have, ok, want)
			}
			return true
		})
	})
}

// FuzzReadMeasureColumn feeds arbitrary bytes to the column decoder: it must
// reject or accept but never panic or over-allocate, and anything it accepts
// must survive a second round trip unchanged.
func FuzzReadMeasureColumn(f *testing.F) {
	f.Add([]byte{})
	var buf bytes.Buffer
	if err := writeMeasureColumn(&buf, buildColumn(nil)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := readMeasureColumn(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as we got here without a panic
		}
		var out bytes.Buffer
		if err := writeMeasureColumn(&out, m); err != nil {
			t.Fatalf("decoded column does not re-encode: %v", err)
		}
		again, err := readMeasureColumn(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded column does not decode: %v", err)
		}
		if again.Count() != m.Count() {
			t.Fatalf("second trip count = %d, want %d", again.Count(), m.Count())
		}
	})
}

// FuzzLoadCorrupt writes fuzzed manifest.json and data.bin files and checks
// Load either succeeds or errors — a corrupt on-disk relation must never
// panic the loader. Seeds include a real v2 (paged) snapshot so the fuzzer
// mutates block indexes and zone maps, not just v1 bytes; when a corrupted
// store does load, every measure column is scanned to fault its value blocks
// in — corrupt payloads must surface as sticky page errors, never panics.
func FuzzLoadCorrupt(f *testing.F) {
	f.Add([]byte(`{"format_version":1}`), []byte{})
	f.Add([]byte(`{"format_version":1,"num_records":3,"partition_width":1000,"edges":[1]}`), []byte{0x42, 0x56, 0x52, 0x47})
	// A genuine v2 snapshot: its manifest and data bytes seed the mutation
	// space with valid block-index and zone-map layout.
	{
		dir := f.TempDir()
		r := NewRelation(0)
		for i := 0; i < 3*BlockValues/2; i++ {
			rec := r.NewRecord()
			r.SetEdgeMeasure(rec, 1, float64(i%7))
			r.SetEdgeMeasureNamed(rec, 1, "w", float64(i))
		}
		if err := r.Save(dir); err != nil {
			f.Fatal(err)
		}
		gen, err := os.ReadFile(filepath.Join(dir, "CURRENT"))
		if err != nil {
			f.Fatal(err)
		}
		gdir := filepath.Join(dir, string(bytes.TrimSpace(gen)))
		manifest, err := os.ReadFile(filepath.Join(gdir, "manifest.json"))
		if err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(gdir, "data.bin"))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(manifest, data)
	}
	f.Fuzz(func(t *testing.T, manifest, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "manifest.json"), manifest, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "data.bin"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if r, err := Load(dir); err == nil && r == nil {
			t.Fatal("Load returned nil relation with nil error")
		}
		// The same bytes inside a generational layout: a fuzzed snapshot
		// behind a valid CURRENT pointer must also never panic Load.
		gdir := t.TempDir()
		gen := filepath.Join(gdir, "gen-000001")
		if err := os.MkdirAll(gen, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(gen, "manifest.json"), manifest, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(gen, "data.bin"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(gdir, "CURRENT"), []byte("gen-000001\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Load(gdir)
		if err == nil && r == nil {
			t.Fatal("generational Load returned nil relation with nil error")
		}
		if err == nil {
			// A v2 load is lazy: corrupt block payloads only show up when a
			// block faults in. Scan every column — any corruption must come
			// back as zero values plus a sticky page error, never a panic.
			scan := func(c *MeasureColumn) {
				c.ForEach(func(uint32, float64) bool { return true })
			}
			for _, c := range r.measures {
				scan(c)
			}
			for _, cols := range r.named {
				for _, c := range cols {
					scan(c)
				}
			}
			_ = r.PageError()
			_ = r.Close()
		}
	})
}

// FuzzDecodeBlock feeds arbitrary payload bytes, encoding tags and value
// counts straight into the block decoder — the exact surface a corrupt page
// hits after the block index passed validation. It must reject or fill dst
// exactly, never panic or over-read.
func FuzzDecodeBlock(f *testing.F) {
	enc := &blockEncoder{}
	for _, vals := range [][]float64{
		{1, 2, 3, 4},
		{5, 5, 5, 5, 5, 5, 5, 5},
		{math.Inf(1), math.Copysign(0, -1), 1e-308, -1e300},
	} {
		tag, payload, err := enc.encode(vals)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(tag, uint16(len(vals)), append([]byte(nil), payload...))
	}
	f.Add(uint8(encRLE), uint16(BlockValues), []byte{0xff, 0xff})
	f.Fuzz(func(t *testing.T, tag uint8, count uint16, payload []byte) {
		n := int(count) % (BlockValues + 1)
		dst := make([]float64, n)
		if err := decodeBlock(tag, payload, dst); err != nil {
			return // rejected without panic: the contract for corrupt pages
		}
		if tag >= numEncodings {
			t.Fatalf("decoder accepted unknown encoding %d", tag)
		}
	})
}

// FuzzBlockIndex feeds arbitrary bytes to the v2 block-index reader. It must
// never panic, and anything it accepts must satisfy the tiling invariants
// the paged read path depends on (per-block counts tile the column, bounded
// payload lengths, known encodings).
func FuzzBlockIndex(f *testing.F) {
	f.Add([]byte{})
	var buf bytes.Buffer
	col := NewMeasureColumn()
	for i := 0; i < BlockValues+3; i++ {
		col.Set(uint32(i), float64(i))
	}
	if err := writeMeasureColumn(&buf, col); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		count, metas, err := readBlockIndex(bytes.NewReader(data))
		if err != nil {
			return
		}
		total := 0
		for i, m := range metas {
			if m.enc >= numEncodings {
				t.Fatalf("block %d: accepted unknown encoding %d", i, m.enc)
			}
			if m.count == 0 || int(m.count) > BlockValues {
				t.Fatalf("block %d: accepted count %d", i, m.count)
			}
			if m.encLen < 1 || m.encLen > maxBlockEncLen {
				t.Fatalf("block %d: accepted payload length %d", i, m.encLen)
			}
			total += int(m.count)
		}
		if total != count {
			t.Fatalf("accepted index where blocks hold %d values but column claims %d", total, count)
		}
	})
}

// FuzzCurrentPointer feeds arbitrary bytes as the CURRENT pointer file of a
// store holding one valid generation. Whatever the pointer claims — garbage,
// a missing generation, a path-traversal attempt — Load must recover via the
// generation scan and never panic.
func FuzzCurrentPointer(f *testing.F) {
	f.Add([]byte("gen-000001\n"))
	f.Add([]byte("gen-999999"))
	f.Add([]byte("../../../etc/passwd\n"))
	f.Add([]byte{0x00, 0xff, 0x0a})
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, cur []byte) {
		dir := t.TempDir()
		r := NewRelation(0)
		rec := r.NewRecord()
		r.SetEdgeMeasure(rec, 1, 2)
		if err := r.Save(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "CURRENT"), cur, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := Load(dir)
		if err != nil || got == nil {
			t.Fatalf("Load with fuzzed CURRENT did not recover: %v", err)
		}
		if got.NumRecords() != 1 {
			t.Fatalf("recovered relation has %d records", got.NumRecords())
		}
	})
}
