package colstore

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// buildColumn decodes the fuzz input as (rec uint32, value float64) pairs,
// 12 bytes each, into a measure column. NaNs are remapped (the column
// contract rejects them) and record ids are folded into a bounded space so
// the dense value slice stays proportional to the input.
func buildColumn(data []byte) *MeasureColumn {
	m := NewMeasureColumn()
	for len(data) >= 12 {
		rec := binary.LittleEndian.Uint32(data[:4]) % (1 << 20)
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[4:12]))
		if math.IsNaN(v) {
			v = 0
		}
		m.Set(rec, v)
		data = data[12:]
	}
	return m
}

// FuzzMeasureColumnRoundTrip checks decode(encode(column)) == column for
// arbitrary constructed columns, comparing values bitwise (so -0, ±Inf and
// denormals must all survive the trip).
func FuzzMeasureColumnRoundTrip(f *testing.F) {
	f.Add([]byte{})
	seed := make([]byte, 0, 36)
	for _, e := range []struct {
		rec uint32
		v   float64
	}{{0, 1.5}, {7, math.Inf(-1)}, {1 << 19, math.Copysign(0, -1)}} {
		seed = binary.LittleEndian.AppendUint32(seed, e.rec)
		seed = binary.LittleEndian.AppendUint64(seed, math.Float64bits(e.v))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 12*4096 {
			return // cap the column size, not the value space
		}
		orig := buildColumn(data)
		var buf bytes.Buffer
		if err := writeMeasureColumn(&buf, orig); err != nil {
			t.Fatalf("encode of a valid column failed: %v", err)
		}
		got, err := readMeasureColumn(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode of a fresh encoding failed: %v", err)
		}
		if got.Count() != orig.Count() {
			t.Fatalf("count = %d, want %d", got.Count(), orig.Count())
		}
		orig.ForEach(func(rec uint32, want float64) bool {
			have, ok := got.Get(rec)
			if !ok || math.Float64bits(have) != math.Float64bits(want) {
				t.Fatalf("record %d = %v (present=%v), want %v", rec, have, ok, want)
			}
			return true
		})
	})
}

// FuzzReadMeasureColumn feeds arbitrary bytes to the column decoder: it must
// reject or accept but never panic or over-allocate, and anything it accepts
// must survive a second round trip unchanged.
func FuzzReadMeasureColumn(f *testing.F) {
	f.Add([]byte{})
	var buf bytes.Buffer
	if err := writeMeasureColumn(&buf, buildColumn(nil)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := readMeasureColumn(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as we got here without a panic
		}
		var out bytes.Buffer
		if err := writeMeasureColumn(&out, m); err != nil {
			t.Fatalf("decoded column does not re-encode: %v", err)
		}
		again, err := readMeasureColumn(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded column does not decode: %v", err)
		}
		if again.Count() != m.Count() {
			t.Fatalf("second trip count = %d, want %d", again.Count(), m.Count())
		}
	})
}

// FuzzLoadCorrupt writes fuzzed manifest.json and data.bin files and checks
// Load either succeeds or errors — a corrupt on-disk relation must never
// panic the loader.
func FuzzLoadCorrupt(f *testing.F) {
	f.Add([]byte(`{"format_version":1}`), []byte{})
	f.Add([]byte(`{"format_version":1,"num_records":3,"partition_width":1000,"edges":[1]}`), []byte{0x42, 0x56, 0x52, 0x47})
	f.Fuzz(func(t *testing.T, manifest, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "manifest.json"), manifest, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "data.bin"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if r, err := Load(dir); err == nil && r == nil {
			t.Fatal("Load returned nil relation with nil error")
		}
		// The same bytes inside a generational layout: a fuzzed snapshot
		// behind a valid CURRENT pointer must also never panic Load.
		gdir := t.TempDir()
		gen := filepath.Join(gdir, "gen-000001")
		if err := os.MkdirAll(gen, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(gen, "manifest.json"), manifest, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(gen, "data.bin"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(gdir, "CURRENT"), []byte("gen-000001\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if r, err := Load(gdir); err == nil && r == nil {
			t.Fatal("generational Load returned nil relation with nil error")
		}
	})
}

// FuzzCurrentPointer feeds arbitrary bytes as the CURRENT pointer file of a
// store holding one valid generation. Whatever the pointer claims — garbage,
// a missing generation, a path-traversal attempt — Load must recover via the
// generation scan and never panic.
func FuzzCurrentPointer(f *testing.F) {
	f.Add([]byte("gen-000001\n"))
	f.Add([]byte("gen-999999"))
	f.Add([]byte("../../../etc/passwd\n"))
	f.Add([]byte{0x00, 0xff, 0x0a})
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, cur []byte) {
		dir := t.TempDir()
		r := NewRelation(0)
		rec := r.NewRecord()
		r.SetEdgeMeasure(rec, 1, 2)
		if err := r.Save(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "CURRENT"), cur, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := Load(dir)
		if err != nil || got == nil {
			t.Fatalf("Load with fuzzed CURRENT did not recover: %v", err)
		}
		if got.NumRecords() != 1 {
			t.Fatalf("recovered relation has %d records", got.NumRecords())
		}
	})
}
