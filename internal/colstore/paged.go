package colstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"grove/internal/agg"
	"grove/internal/fsio"
	"grove/internal/pagepool"
)

// Paged measure columns. The v2 snapshot format stores a measure column's
// values as fixed-size blocks of BlockValues values in rank space (value
// index x lives in block x/BlockValues). Each block carries a zone map
// (total-order min/max of its values) and is compressed with whichever of
// four lightweight encodings is smallest for its data. Loading a v2 snapshot
// decodes nothing: blocks are paged in lazily through the relation's
// pagepool.Pool on first access and evicted under memory pressure, so the
// resident footprint tracks the working set instead of the dataset.
//
// Zone-map skipping: MinReplaces/MaxReplaces define a total order on
// non-NaN float64 (with -0 ordered before +0), and a block's zone min is its
// total-order minimum. For a MIN aggregate with running accumulator acc,
// !MinReplaces(acc, zoneMin) implies !MinReplaces(acc, v) for every v in the
// block, and acc only tightens as the fold proceeds — so a skipped block can
// never influence the final accumulator, at any pool size, bit for bit.

// BlockValues is the number of measure values per storage block.
const BlockValues = 4096

// Block encodings, chosen per block at write time by encoded size.
const (
	encRaw       = 0 // 8 bytes per value, little-endian float64 bits
	encXor       = 1 // first value raw, then uvarint(bits XOR prev bits) per value
	encDict      = 2 // u16 dict size (≤256), dict of raw values, u8 index per value
	encRLE       = 3 // runs of uvarint(length) + raw value
	numEncodings = 4
)

// EncodingName returns the human-readable name of a block encoding tag.
func EncodingName(enc int) string {
	switch enc {
	case encRaw:
		return "raw"
	case encXor:
		return "xor"
	case encDict:
		return "dict"
	case encRLE:
		return "rle"
	}
	return fmt.Sprintf("enc%d", enc)
}

// maxBlockEncLen bounds a single block's encoded payload. The worst real
// encoding is XOR at 8 + 10·(BlockValues-1) bytes; anything larger in a
// manifest is corruption.
const maxBlockEncLen = 8 + 10*BlockValues

// blockMeta is the in-memory block index entry: where the block's payload
// sits in data.bin, how it is encoded, and its zone map.
type blockMeta struct {
	off     int64 // absolute payload offset in data.bin
	encLen  uint32
	enc     uint8
	count   uint16 // values in this block (BlockValues except the last)
	minBits uint64 // Float64bits of the total-order minimum
	maxBits uint64 // Float64bits of the total-order maximum
}

// blockMetaDiskSize is the on-disk size of one block index entry:
// u32 encLen + u8 enc + u16 count + u64 min + u64 max.
const blockMetaDiskSize = 4 + 1 + 2 + 8 + 8

// pageTokens hands out process-unique column tokens for pool keys, so blocks
// of dropped or reloaded columns can never be served to a new column that
// happens to reuse memory.
var pageTokens atomic.Uint64

// blocksSkipped counts measure blocks whose zone map proved they cannot
// affect a MIN/MAX aggregate. Exposed as grove_scan_blocks_skipped_total.
var blocksSkipped atomic.Int64

// BlocksSkipped returns how many measure blocks zone maps skipped in this
// process.
func BlocksSkipped() int64 { return blocksSkipped.Load() }

// --- page source -------------------------------------------------------------

// pageSource reads block payloads from one snapshot's data.bin. The file
// handle is opened lazily on the first fault and kept for the relation's
// lifetime; I/O or decode errors latch sticky (the first error wins) so the
// query layer can distinguish "zero because absent" from "zero because the
// disk failed" after a scan.
type pageSource struct {
	fs   fsio.FS
	path string

	mu  sync.Mutex
	f   fsio.File
	err atomic.Pointer[error]
}

func newPageSource(fs fsio.FS, path string) *pageSource {
	return &pageSource{fs: fs, path: path}
}

// fail latches err as the source's sticky error (first one wins).
func (s *pageSource) fail(err error) {
	s.err.CompareAndSwap(nil, &err)
}

// Err returns the sticky error, if any fault has failed.
func (s *pageSource) Err() error {
	if p := s.err.Load(); p != nil {
		return *p
	}
	return nil
}

// readAt fills p from the absolute offset off. Serialized: lazy open and the
// positional read share one mutex — block faults are already amortized by
// the pool, and fsio.File only guarantees ReadAt is safe per-handle.
func (s *pageSource) readAt(p []byte, off int64) error {
	if err := s.Err(); err != nil {
		return err
	}
	s.mu.Lock() //grovevet:ignore lockorder the mutex exists to serialize the lazy open with positional reads on one shared handle; waiting for that I/O is its purpose
	defer s.mu.Unlock()
	if s.f == nil {
		f, err := s.fs.Open(s.path)
		if err != nil {
			err = fmt.Errorf("colstore: page source %s: %w", s.path, err)
			s.fail(err)
			return err
		}
		s.f = f
	}
	if _, err := s.f.ReadAt(p, off); err != nil {
		err = fmt.Errorf("colstore: page read %s @%d: %w", s.path, off, err)
		s.fail(err)
		return err
	}
	return nil
}

// close releases the cached file handle (idempotent).
func (s *pageSource) close() error {
	s.mu.Lock() //grovevet:ignore lockorder close must not race the lazy open or an in-flight positional read on the shared handle; blocking on them is the point
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// --- paged column data -------------------------------------------------------

// pagedData is the lazy half of a MeasureColumn loaded from a v2 snapshot:
// the block index plus the machinery to fault blocks in. values on the
// owning column stays nil until the column is materialized for writing.
type pagedData struct {
	count int
	metas []blockMeta
	src   *pageSource
	token uint64
	pool  *pagepool.Pool
}

func (p *pagedData) numBlocks() int { return len(p.metas) }

// block returns the decoded block containing value index x along with the
// [lo, hi) value-index window it covers. A nil slice means the fault failed;
// the error is latched on the source.
//
//grove:hotpath
func (p *pagedData) block(x int) (vals []float64, lo, hi int) {
	bi := x / BlockValues
	if bi < 0 || bi >= len(p.metas) {
		return nil, 0, 0
	}
	vals = p.pageIn(uint32(bi))
	lo = bi * BlockValues
	return vals, lo, lo + len(vals)
}

// pageIn returns block bi decoded, consulting the pool first.
//
//grove:hotpath
func (p *pagedData) pageIn(bi uint32) []float64 {
	if p.pool != nil {
		if vals := p.pool.Get(pagepool.Key{Col: p.token, Block: bi}); vals != nil {
			return vals
		}
	}
	vals := p.readBlock(int(bi))
	if vals == nil {
		return nil
	}
	if p.pool != nil {
		vals = p.pool.Put(pagepool.Key{Col: p.token, Block: bi}, vals)
	}
	return vals
}

// readBlock reads and decodes block bi from the snapshot file, bypassing the
// pool. The allocations live here, outside the hotpath-annotated callers.
func (p *pagedData) readBlock(bi int) []float64 {
	m := p.metas[bi]
	buf := make([]byte, m.encLen)
	if err := p.src.readAt(buf, m.off); err != nil {
		return nil
	}
	vals := make([]float64, m.count)
	if err := decodeBlock(m.enc, buf, vals); err != nil {
		p.src.fail(fmt.Errorf("colstore: block %d of %s: %w", bi, p.src.path, err))
		return nil
	}
	return vals
}

// invalidate drops the column's cached blocks from the pool.
func (p *pagedData) invalidate() {
	if p.pool != nil {
		p.pool.InvalidateColumn(p.token)
	}
}

// --- per-column paged accessors ----------------------------------------------

// isPaged reports whether the column's values still live on disk.
func (c *MeasureColumn) isPaged() bool { return c.paged != nil }

// valueCount is Count without assuming residency.
func (c *MeasureColumn) valueCount() int {
	if c.paged != nil {
		return c.paged.count
	}
	return len(c.values)
}

// valueAt reads value index x through the pool. Only for cold paths (Get,
// ForEach); kernels use valueReader to amortize the block lookup.
func (c *MeasureColumn) valueAt(x int) float64 {
	if c.paged == nil {
		return c.values[x]
	}
	vals, lo, _ := c.paged.block(x)
	if vals == nil {
		return 0
	}
	return vals[x-lo]
}

// blockRange returns the value-index window of block bi.
func blockRange(bi, count int) (lo, hi int) {
	lo = bi * BlockValues
	hi = lo + BlockValues
	if hi > count {
		hi = count
	}
	return lo, hi
}

// blockValuesInto decodes block bi into dst (resident columns just slice),
// bypassing the pool: the save path and materialization stream every block
// exactly once, so caching them would only evict the query working set.
func (c *MeasureColumn) blockValuesInto(bi int, dst []float64) ([]float64, error) {
	if c.paged == nil {
		lo, hi := blockRange(bi, len(c.values))
		return c.values[lo:hi], nil
	}
	vals := c.paged.readBlock(bi)
	if vals == nil {
		return nil, c.paged.src.Err()
	}
	return vals, nil
}

// materialize decodes the whole column into a resident values slice and
// detaches the paged data. Called (under the relation's write lock) before
// any mutation: written columns are resident columns.
func (c *MeasureColumn) materialize() error {
	p := c.paged
	if p == nil {
		return nil
	}
	values := make([]float64, 0, p.count)
	for bi := 0; bi < p.numBlocks(); bi++ {
		vals := p.readBlock(bi)
		if vals == nil {
			return p.src.Err()
		}
		values = append(values, vals...)
	}
	c.values = values
	c.paged = nil
	p.invalidate()
	return nil
}

// pageError returns the sticky fault error of the column's source, if any.
func (c *MeasureColumn) pageError() error {
	if c.paged == nil {
		return nil
	}
	return c.paged.src.Err()
}

// ResidentValueBytes reports how many of the column's value bytes are
// resident in memory right now: all of them for an in-memory column, the
// pool-resident blocks' worth for a paged one (pool bytes are reported by
// the pool itself; a paged column's own footprint is just its block index).
func (c *MeasureColumn) ResidentValueBytes() int64 {
	if c.paged != nil {
		return int64(len(c.paged.metas)) * blockMetaDiskSize
	}
	return 8 * int64(len(c.values))
}

// EncodedValueBytes reports the on-disk encoded size of the column's values
// (0 for a purely in-memory column, which has no encoded form yet).
func (c *MeasureColumn) EncodedValueBytes() int64 {
	if c.paged == nil {
		return 0
	}
	var n int64
	for _, m := range c.paged.metas {
		n += int64(m.encLen)
	}
	return n
}

// BlockEncodings counts the column's blocks per encoding tag. All zeros for
// an in-memory column.
func (c *MeasureColumn) BlockEncodings() [numEncodings]int {
	var out [numEncodings]int
	if c.paged == nil {
		return out
	}
	for _, m := range c.paged.metas {
		out[m.enc]++
	}
	return out
}

// --- value reader cursor -----------------------------------------------------

// valueReader is the kernels' cursor over a column's values: a resident
// column is one full-width window, a paged column a sliding per-block window.
// The in-window fast path is branch-predictable and allocation-free; the
// block fault lives in a separate, unannotated method.
type valueReader struct {
	c      *MeasureColumn
	blk    []float64
	lo, hi int // value-index window [lo, hi) covered by blk
}

//grove:hotpath
func (rd *valueReader) init(c *MeasureColumn) {
	rd.c = c
	if c.paged == nil {
		rd.blk = c.values
		rd.lo, rd.hi = 0, len(c.values)
	} else {
		rd.blk, rd.lo, rd.hi = nil, 0, 0
	}
}

// at returns value index x, faulting its block in when the window misses.
//
//grove:hotpath
func (rd *valueReader) at(x int) float64 {
	if x >= rd.lo && x < rd.hi {
		return rd.blk[x-rd.lo]
	}
	return rd.fault(x)
}

// fault repositions the window over x's block. On a failed fault (sticky
// error on the source) it returns 0 and leaves the window empty; callers'
// results are discarded by the error check at the end of the operation.
func (rd *valueReader) fault(x int) float64 {
	vals, lo, hi := rd.c.paged.block(x)
	if vals == nil {
		rd.blk, rd.lo, rd.hi = nil, 0, 0
		return 0
	}
	rd.blk, rd.lo, rd.hi = vals, lo, hi
	return vals[x-lo]
}

// window returns the contiguous value slice [off, off+n) when it fits inside
// one block window, faulting that block in if needed; nil means the span
// straddles a block boundary (or the fault failed) and the caller must fall
// back to per-value reads.
//
//grove:hotpath
func (rd *valueReader) window(off, n int) []float64 {
	if off >= rd.lo && off+n <= rd.hi {
		return rd.blk[off-rd.lo : off-rd.lo+n]
	}
	if rd.c.paged == nil {
		return nil
	}
	if off/BlockValues != (off+n-1)/BlockValues {
		return nil
	}
	if rd.fault(off); rd.blk == nil {
		return nil
	}
	if off >= rd.lo && off+n <= rd.hi {
		return rd.blk[off-rd.lo : off-rd.lo+n]
	}
	return nil
}

// --- zone-skipping aggregate scan --------------------------------------------

// AggregateSkip folds the column's values for the given strictly ascending
// record ids into a scalar MIN (isMin) or MAX accumulator, skipping whole
// storage blocks whose zone map proves they cannot change the accumulator.
// It returns the folded accumulator, how many values were actually examined
// (the exact MeasuresScanned contribution), and how many blocks were scanned
// vs. skipped. Resident columns have no zone maps and scan every block.
//
// acc is the running accumulator (the aggregate's identity to start). The
// result is bit-identical to folding every present value in record order:
// MIN/MAX folds are order-independent under the MinReplaces/MaxReplaces
// total order, and skipped blocks are proven unable to replace acc.
//
//grove:hotpath
func (c *MeasureColumn) AggregateSkip(recs []uint32, acc float64, isMin bool) (out float64, folded, scanned, skipped int) {
	if len(recs) == 0 || c.valueCount() == 0 {
		return acc, 0, 0, 0
	}
	scratch := rankScratchPool.Get().(*[]int32)
	idx := *scratch
	if cap(idx) < len(recs) {
		idx = make([]int32, len(recs)) //grovevet:ignore hotalloc pooled-scratch grow path; plateaus at the largest answer set
	}
	idx = idx[:len(recs)]
	c.present.RanksInto(recs, idx)
	// Compact to present ranks only; they stay ascending.
	n := 0
	for _, x := range idx {
		if x >= 0 {
			idx[n] = x
			n++
		}
	}
	p := c.paged
	i := 0
	for i < n {
		x := int(idx[i])
		bi := x / BlockValues
		end := int32((bi + 1) * BlockValues)
		j := i + 1
		for j < n && idx[j] < end {
			j++
		}
		if p != nil {
			zm := &p.metas[bi]
			if isMin {
				if !agg.MinReplaces(acc, math.Float64frombits(zm.minBits)) {
					skipped++
					i = j
					continue
				}
			} else {
				if !agg.MaxReplaces(acc, math.Float64frombits(zm.maxBits)) {
					skipped++
					i = j
					continue
				}
			}
			vals := p.pageIn(uint32(bi))
			if vals == nil {
				// Fault failed; sticky error is latched, result discarded.
				i = j
				continue
			}
			lo := bi * BlockValues
			if isMin {
				for k := i; k < j; k++ {
					if v := vals[int(idx[k])-lo]; agg.MinReplaces(acc, v) {
						acc = v
					}
				}
			} else {
				for k := i; k < j; k++ {
					if v := vals[int(idx[k])-lo]; agg.MaxReplaces(acc, v) {
						acc = v
					}
				}
			}
		} else {
			if isMin {
				for k := i; k < j; k++ {
					if v := c.values[idx[k]]; agg.MinReplaces(acc, v) {
						acc = v
					}
				}
			} else {
				for k := i; k < j; k++ {
					if v := c.values[idx[k]]; agg.MaxReplaces(acc, v) {
						acc = v
					}
				}
			}
		}
		folded += j - i
		scanned++
		i = j
	}
	*scratch = idx
	rankScratchPool.Put(scratch)
	if skipped > 0 {
		blocksSkipped.Add(int64(skipped))
	}
	return acc, folded, scanned, skipped
}

// --- block encoding ----------------------------------------------------------

// zoneOf computes a block's zone map: the total-order min and max of vals
// under the MinReplaces/MaxReplaces order (-0 sorts before +0).
func zoneOf(vals []float64) (minBits, maxBits uint64) {
	zmin, zmax := vals[0], vals[0]
	for _, v := range vals[1:] {
		if agg.MinReplaces(zmin, v) {
			zmin = v
		}
		if agg.MaxReplaces(zmax, v) {
			zmax = v
		}
	}
	return math.Float64bits(zmin), math.Float64bits(zmax)
}

// blockEncoder holds the reusable scratch of the per-block encoding choice.
type blockEncoder struct {
	buf  []byte           // winning payload
	alt  []byte           // candidate payload
	dict map[uint64]uint8 // value bits → dict index
}

// encode compresses one block of values, returning the chosen encoding tag
// and its payload (valid until the next encode call). The choice is purely
// by encoded size with ties broken in tag order (raw first), so re-encoding
// a decoded block always reproduces identical bytes — Save stays
// deterministic, which the crash-sweep's bit-exactness check relies on.
func (e *blockEncoder) encode(vals []float64) (uint8, []byte, error) {
	for _, v := range vals {
		if math.IsNaN(v) {
			return 0, nil, fmt.Errorf("colstore: NaN measure value")
		}
	}
	e.buf = appendRaw(e.buf[:0], vals)
	best := uint8(encRaw)
	if alt, ok := e.appendXor(vals, len(e.buf)); ok {
		e.buf, e.alt = alt, e.buf
		best = encXor
	}
	if alt, ok := e.appendDict(vals, len(e.buf)); ok {
		e.buf, e.alt = alt, e.buf
		best = encDict
	}
	if alt, ok := e.appendRLE(vals, len(e.buf)); ok {
		e.buf, e.alt = alt, e.buf
		best = encRLE
	}
	return best, e.buf, nil
}

func appendRaw(dst []byte, vals []float64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// appendXor encodes vals as first-value-raw + uvarint XOR deltas, reporting
// success only when strictly smaller than limit.
func (e *blockEncoder) appendXor(vals []float64, limit int) ([]byte, bool) {
	dst := e.alt[:0]
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(vals[0]))
	prev := math.Float64bits(vals[0])
	for _, v := range vals[1:] {
		bits := math.Float64bits(v)
		dst = binary.AppendUvarint(dst, bits^prev)
		prev = bits
		if len(dst) >= limit {
			e.alt = dst
			return nil, false
		}
	}
	e.alt = dst
	return dst, len(dst) < limit
}

// appendDict encodes vals as a ≤256-entry dictionary + one index byte per
// value, reporting success only when the cardinality fits and the result is
// strictly smaller than limit.
func (e *blockEncoder) appendDict(vals []float64, limit int) ([]byte, bool) {
	size := 2 + len(vals) // header + indexes; dict entries added below
	if e.dict == nil {
		e.dict = make(map[uint64]uint8, 256)
	}
	clear(e.dict)
	dst := e.alt[:0]
	dst = append(dst, 0, 0) // dict size, patched below
	var entries [256]uint64
	n := 0
	idxs := make([]uint8, 0, len(vals))
	for _, v := range vals {
		bits := math.Float64bits(v)
		id, ok := e.dict[bits]
		if !ok {
			if n == 256 {
				e.alt = dst
				return nil, false
			}
			id = uint8(n)
			e.dict[bits] = id
			entries[n] = bits
			n++
		}
		idxs = append(idxs, id)
	}
	size += 8 * n
	if size >= limit {
		e.alt = dst
		return nil, false
	}
	binary.LittleEndian.PutUint16(dst[:2], uint16(n))
	for i := 0; i < n; i++ {
		dst = binary.LittleEndian.AppendUint64(dst, entries[i])
	}
	dst = append(dst, idxs...)
	e.alt = dst
	return dst, true
}

// appendRLE encodes vals as (uvarint run length, raw value) runs, reporting
// success only when strictly smaller than limit.
func (e *blockEncoder) appendRLE(vals []float64, limit int) ([]byte, bool) {
	dst := e.alt[:0]
	for i := 0; i < len(vals); {
		bits := math.Float64bits(vals[i])
		j := i + 1
		for j < len(vals) && math.Float64bits(vals[j]) == bits {
			j++
		}
		dst = binary.AppendUvarint(dst, uint64(j-i))
		dst = binary.LittleEndian.AppendUint64(dst, bits)
		if len(dst) >= limit {
			e.alt = dst
			return nil, false
		}
		i = j
	}
	e.alt = dst
	return dst, len(dst) < limit
}

// --- block decoding ----------------------------------------------------------

// Decoder failures are sentinel errors, not formatted ones: the decoders are
// //grove:hotpath (the hotalloc lint proves them allocation-free), and
// fmt.Errorf would box its arguments on the success-path's stack frame. The
// callers wrap with the block index, which locates the damage well enough.
var (
	errUnknownEncoding = errors.New("unknown block encoding")
	errRawCorrupt      = errors.New("raw block: payload size mismatch")
	errXorCorrupt      = errors.New("xor block: corrupt payload")
	errDictCorrupt     = errors.New("dict block: corrupt payload")
	errRLECorrupt      = errors.New("rle block: corrupt payload")
)

// decodeBlock decodes one block payload into dst (len(dst) = the block's
// value count). Every branch bounds-checks against the payload before
// reading: the payload is disk input, and a corrupt page must fail cleanly —
// never panic or over-read. Strictness (the payload must be consumed
// exactly) doubles as a save-determinism check.
//
//grove:hotpath
func decodeBlock(enc uint8, payload []byte, dst []float64) error {
	switch enc {
	case encRaw:
		return decodeRaw(payload, dst)
	case encXor:
		return decodeXor(payload, dst)
	case encDict:
		return decodeDict(payload, dst)
	case encRLE:
		return decodeRLE(payload, dst)
	}
	return errUnknownEncoding
}

//grove:hotpath
func decodeRaw(payload []byte, dst []float64) error {
	if len(payload) != 8*len(dst) {
		return errRawCorrupt
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return nil
}

//grove:hotpath
func decodeXor(payload []byte, dst []float64) error {
	if len(dst) == 0 || len(payload) < 8 {
		return errXorCorrupt
	}
	prev := binary.LittleEndian.Uint64(payload)
	dst[0] = math.Float64frombits(prev)
	pos := 8
	for i := 1; i < len(dst); i++ {
		delta, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return errXorCorrupt
		}
		pos += n
		prev ^= delta
		dst[i] = math.Float64frombits(prev)
	}
	if pos != len(payload) {
		return errXorCorrupt
	}
	return nil
}

//grove:hotpath
func decodeDict(payload []byte, dst []float64) error {
	if len(payload) < 2 {
		return errDictCorrupt
	}
	n := int(binary.LittleEndian.Uint16(payload))
	if n < 1 || n > 256 {
		return errDictCorrupt
	}
	if len(payload) != 2+8*n+len(dst) {
		return errDictCorrupt
	}
	var dict [256]float64
	for i := 0; i < n; i++ {
		dict[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[2+8*i:]))
	}
	idxs := payload[2+8*n:]
	for i := range dst {
		id := int(idxs[i])
		if id >= n {
			return errDictCorrupt
		}
		dst[i] = dict[id]
	}
	return nil
}

//grove:hotpath
func decodeRLE(payload []byte, dst []float64) error {
	pos, out := 0, 0
	for out < len(dst) {
		runLen, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return errRLECorrupt
		}
		pos += n
		if runLen == 0 || runLen > uint64(len(dst)-out) {
			return errRLECorrupt
		}
		if pos+8 > len(payload) {
			return errRLECorrupt
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(payload[pos:]))
		pos += 8
		for i := uint64(0); i < runLen; i++ {
			dst[out] = v
			out++
		}
	}
	if pos != len(payload) {
		return errRLECorrupt
	}
	return nil
}
