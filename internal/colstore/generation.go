package colstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"grove/internal/fsio"
)

// Generational snapshot layout: a store directory holds
//
//	gen-000001/            — one complete snapshot (manifest.json + data.bin)
//	gen-000002/
//	CURRENT                — name of the installed generation ("gen-000002\n")
//	tmp-gen-000003/        — a save in progress (invisible to Load)
//
// Save writes the next generation into a tmp- directory, fsyncs everything,
// renames it into place and then atomically repoints CURRENT, so a crash at
// any step leaves the previous generation installed and loadable. Load
// follows CURRENT and, if the installed generation turns out damaged, falls
// back to the newest older generation that still loads.
//
// Stores written before this layout existed keep manifest.json + data.bin at
// the directory root; Load and DiskSizeBytes fall back to that flat layout
// when no generation is present.

const (
	currentFile = "CURRENT"
	genPrefix   = "gen-"
	tmpPrefix   = "tmp-"
)

// persistRecoveries counts Loads that could not use the generation CURRENT
// points at and recovered from a fallback generation instead. Exposed as the
// grove_persist_recoveries_total metric.
var persistRecoveries atomic.Int64

// PersistRecoveries returns how many Loads in this process recovered from a
// fallback generation because the installed one was missing or damaged.
func PersistRecoveries() int64 { return persistRecoveries.Load() }

func genDirName(n uint64) string { return fmt.Sprintf("%s%06d", genPrefix, n) }

// parseGenName reports the sequence number of a generation directory name.
// Only "gen-" followed by decimal digits qualifies; anything else (including
// path separators smuggled into a corrupt CURRENT file) is rejected.
func parseGenName(name string) (uint64, bool) {
	digits, ok := strings.CutPrefix(name, genPrefix)
	if !ok || digits == "" {
		return 0, false
	}
	n, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listGenerations returns the generation directory names under dir, newest
// first. A missing or unreadable directory yields nil: the caller treats
// that the same as "no generations".
func listGenerations(fs fsio.FS, dir string) []string {
	ents, err := fs.ReadDir(dir)
	if err != nil {
		return nil
	}
	return gensFromEntries(ents)
}

// gensFromEntries filters directory entries down to generation names,
// newest first.
func gensFromEntries(ents []os.DirEntry) []string {
	type gen struct {
		name string
		seq  uint64
	}
	var gens []gen
	for _, ent := range ents {
		if !ent.IsDir() {
			continue
		}
		if n, ok := parseGenName(ent.Name()); ok {
			gens = append(gens, gen{ent.Name(), n})
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].seq > gens[j].seq })
	out := make([]string, len(gens))
	for i, g := range gens {
		out[i] = g.name
	}
	return out
}

// readCurrent reads the CURRENT pointer file and returns the generation name
// it designates. ok is false when the file is missing, unreadable, or does
// not hold a well-formed generation name — a corrupt pointer must degrade to
// the fallback scan, never to following an arbitrary path.
func readCurrent(fs fsio.FS, dir string) (string, bool) {
	b, err := fsio.ReadFile(fs, filepath.Join(dir, currentFile))
	if err != nil {
		return "", false
	}
	name := strings.TrimSpace(string(b))
	if _, ok := parseGenName(name); !ok {
		return "", false
	}
	return name, true
}

// installCurrent durably repoints CURRENT at gen (write temp, fsync, rename,
// fsync dir). After it returns, a crashed-and-restarted Load follows gen.
func installCurrent(fs fsio.FS, dir, gen string) error {
	if err := fsio.WriteFileAtomic(fs, filepath.Join(dir, currentFile), []byte(gen+"\n")); err != nil {
		return fmt.Errorf("colstore: install %s: %w", gen, err)
	}
	return nil
}

// snapshotDir resolves the directory holding the currently installed
// snapshot: the CURRENT generation, else the newest generation, else dir
// itself (legacy flat layout).
func snapshotDir(fs fsio.FS, dir string) string {
	if cur, ok := readCurrent(fs, dir); ok {
		return filepath.Join(dir, cur)
	}
	if gens := listGenerations(fs, dir); len(gens) > 0 {
		return filepath.Join(dir, gens[0])
	}
	return dir
}

// GenerationInfo describes one on-disk generation for operator tooling
// (`grovecli recover`).
type GenerationInfo struct {
	// Name is the generation directory name ("gen-000002"), or "(flat)" for
	// a legacy store with manifest.json at the directory root.
	Name string
	// SizeBytes is the combined size of manifest.json and data.bin.
	SizeBytes int64
	// Current reports whether CURRENT points at this generation.
	Current bool
	// Status is "ok" when the manifest parses and the data checksum
	// verifies, otherwise the failure text.
	Status string
}

// Generations inventories the snapshot generations in dir, newest first,
// verifying each one's checksum. It works on damaged stores — a generation
// that fails verification is reported with its failure, not skipped.
func Generations(dir string) ([]GenerationInfo, error) {
	fs := fsio.OS()
	gens := listGenerations(fs, dir)
	cur, curOK := readCurrent(fs, dir)
	if len(gens) == 0 {
		if _, err := fs.Stat(filepath.Join(dir, "manifest.json")); err == nil {
			info := inspectSnapshot(fs, dir)
			info.Name = "(flat)"
			info.Current = true
			return []GenerationInfo{info}, nil
		}
		return nil, fmt.Errorf("colstore: no generations in %s", dir)
	}
	out := make([]GenerationInfo, 0, len(gens))
	for _, g := range gens {
		info := inspectSnapshot(fs, filepath.Join(dir, g))
		info.Name = g
		info.Current = curOK && g == cur
		out = append(out, info)
	}
	return out, nil
}

func inspectSnapshot(fs fsio.FS, dir string) GenerationInfo {
	var info GenerationInfo
	for _, name := range []string{"manifest.json", "data.bin"} {
		if fi, err := fs.Stat(filepath.Join(dir, name)); err == nil {
			info.SizeBytes += fi.Size()
		}
	}
	if err := verifySnapshot(fs, dir); err != nil {
		info.Status = err.Error()
	} else {
		info.Status = "ok"
	}
	return info
}

// CurrentGeneration returns the generation name CURRENT points at, or ""
// for a legacy flat store (or a store whose pointer is missing/corrupt).
func CurrentGeneration(dir string) string {
	cur, _ := readCurrent(fsio.OS(), dir)
	return cur
}

// Rollback force-installs gen as the store's CURRENT generation. The target
// must exist and pass checksum verification; the previously installed
// generation is left on disk (a later Save garbage-collects it).
func Rollback(dir, gen string) error {
	fs := fsio.OS()
	if _, ok := parseGenName(gen); !ok {
		return fmt.Errorf("colstore: rollback: %q is not a generation name", gen)
	}
	if err := verifySnapshot(fs, filepath.Join(dir, gen)); err != nil {
		return fmt.Errorf("colstore: rollback to %s: %w", gen, err)
	}
	return installCurrent(fs, dir, gen)
}

// gcGenerations removes generations beyond the keep-count, never touching
// the one CURRENT points at nor any protected one: the generation a sharded
// coordinator's durable manifest still pins (collecting it would destroy
// the cross-shard cut a crashed coordinated save must roll back to), and
// the generation a live relation lazily pages its measure blocks from
// (collecting it would turn every later block fault into an I/O error).
// Failures are returned but the snapshot the caller just installed is
// already durable.
func gcGenerations(fs fsio.FS, dir string, keep int, current string, protects ...string) error {
	if keep < 1 {
		keep = 1
	}
	ents, err := fs.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("colstore: gc: %w", err)
	}
	gens := gensFromEntries(ents)
	kept := 0
	for _, g := range gens {
		protected := g == current
		for _, p := range protects {
			if p != "" && g == p {
				protected = true
			}
		}
		if protected || kept < keep {
			kept++
			continue
		}
		if err := fs.RemoveAll(filepath.Join(dir, g)); err != nil {
			return fmt.Errorf("colstore: gc %s: %w", g, err)
		}
	}
	return nil
}
