package colstore

import (
	"fmt"
	"sync/atomic"
)

// Stats is a snapshot of the I/O accounting the column store keeps while
// answering queries. The paper's cost model (§5.1.1) charges a query
// proportionally to the number of columns it fetches — all bitmap columns
// have the same length (one bit per record) and thus the same unit cost —
// so the counters below are the primary experimental metric. Byte counts are
// kept as well so physical trends can be cross-checked.
type Stats struct {
	BitmapColumnsFetched  int   // b_i, b_v and b_p columns read
	MeasureColumnsFetched int   // m_i and m_p columns read
	MeasuresScanned       int64 // individual measure values materialized
	BytesRead             int64 // physical payload bytes touched
	PartitionJoins        int64 // recid-joins across vertical partitions
	RecordsReturned       int64 // graph records in query answers
}

// ColumnsFetched returns the total number of columns fetched, the unit of the
// paper's cost model.
func (s Stats) ColumnsFetched() int {
	return s.BitmapColumnsFetched + s.MeasureColumnsFetched
}

// Add returns the pairwise sum of two snapshots.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		BitmapColumnsFetched:  s.BitmapColumnsFetched + o.BitmapColumnsFetched,
		MeasureColumnsFetched: s.MeasureColumnsFetched + o.MeasureColumnsFetched,
		MeasuresScanned:       s.MeasuresScanned + o.MeasuresScanned,
		BytesRead:             s.BytesRead + o.BytesRead,
		PartitionJoins:        s.PartitionJoins + o.PartitionJoins,
		RecordsReturned:       s.RecordsReturned + o.RecordsReturned,
	}
}

// Sub returns s - o; useful for measuring a single query given cumulative
// counters.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		BitmapColumnsFetched:  s.BitmapColumnsFetched - o.BitmapColumnsFetched,
		MeasureColumnsFetched: s.MeasureColumnsFetched - o.MeasureColumnsFetched,
		MeasuresScanned:       s.MeasuresScanned - o.MeasuresScanned,
		BytesRead:             s.BytesRead - o.BytesRead,
		PartitionJoins:        s.PartitionJoins - o.PartitionJoins,
		RecordsReturned:       s.RecordsReturned - o.RecordsReturned,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("stats{bitmapCols=%d measureCols=%d measures=%d bytes=%d partJoins=%d records=%d}",
		s.BitmapColumnsFetched, s.MeasureColumnsFetched, s.MeasuresScanned,
		s.BytesRead, s.PartitionJoins, s.RecordsReturned)
}

// StatsSink receives every accounting event the tracker records, as it
// happens. It is the tap observability layers hook to mirror the cost-model
// counters into externally visible metrics: unlike Snapshot, a sink is
// monotonic — Reset zeroes the tracker but never rewinds what a sink has
// already seen. Implementations must be safe for concurrent use (events
// arrive from every querying goroutine).
type StatsSink interface {
	OnBitmapFetch(bytes int64)
	OnMeasureFetch(bytes int64)
	OnMeasuresScanned(n int64)
	OnPartitionJoins(n int64)
	OnRecordsReturned(n int64)
}

// Tracker accumulates Stats. A Relation owns one tracker; the query engine
// resets or snapshots it around query execution. Counters are atomic so that
// concurrent read-only queries (which account their I/O as a side effect)
// stay race-free; Reset/Snapshot around concurrent queries see a consistent
// total once those queries finish.
type Tracker struct {
	bitmapCols  atomic.Int64
	measureCols atomic.Int64
	measures    atomic.Int64
	bytes       atomic.Int64
	joins       atomic.Int64
	records     atomic.Int64

	// sink, when set, mirrors every event. Set it before serving queries
	// (like Engine.EnableCache, attaching mid-flight is not synchronized).
	sink StatsSink
}

// SetSink attaches a sink mirroring every subsequent accounting event
// (nil detaches). Attach before serving queries.
func (t *Tracker) SetSink(s StatsSink) { t.sink = s }

// Reset zeroes the counters.
func (t *Tracker) Reset() {
	t.bitmapCols.Store(0)
	t.measureCols.Store(0)
	t.measures.Store(0)
	t.bytes.Store(0)
	t.joins.Store(0)
	t.records.Store(0)
}

// Snapshot returns the current counters.
func (t *Tracker) Snapshot() Stats {
	return Stats{
		BitmapColumnsFetched:  int(t.bitmapCols.Load()),
		MeasureColumnsFetched: int(t.measureCols.Load()),
		MeasuresScanned:       t.measures.Load(),
		BytesRead:             t.bytes.Load(),
		PartitionJoins:        t.joins.Load(),
		RecordsReturned:       t.records.Load(),
	}
}

func (t *Tracker) onBitmapFetch(bytes int) {
	t.bitmapCols.Add(1)
	t.bytes.Add(int64(bytes))
	if t.sink != nil {
		t.sink.OnBitmapFetch(int64(bytes))
	}
}

func (t *Tracker) onMeasureFetch(bytes int) {
	t.measureCols.Add(1)
	t.bytes.Add(int64(bytes))
	if t.sink != nil {
		t.sink.OnMeasureFetch(int64(bytes))
	}
}

func (t *Tracker) onMeasuresScanned(n int) {
	t.measures.Add(int64(n))
	if t.sink != nil {
		t.sink.OnMeasuresScanned(int64(n))
	}
}

func (t *Tracker) onPartitionJoin(n int) {
	t.joins.Add(int64(n))
	if t.sink != nil {
		t.sink.OnPartitionJoins(int64(n))
	}
}

func (t *Tracker) onRecordsReturned(n int) {
	t.records.Add(int64(n))
	if t.sink != nil {
		t.sink.OnRecordsReturned(int64(n))
	}
}
