package colstore

import (
	"os"
	"path/filepath"
	"testing"

	"grove/internal/agg"
	"grove/internal/fsio"
)

// savedFixture writes a populated relation (views, tags, named measures) to
// a temp dir and returns the dir.
func savedFixture(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	r := buildSmallRelation(t)
	r.SetEdgeMeasureNamed(0, 1, "cost", 9)
	if _, err := r.MaterializeView("v", []EdgeID{4, 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.MaterializeAggView("p", []EdgeID{6, 7}, agg.Sum); err != nil {
		t.Fatal(err)
	}
	if err := r.Tag(0, "k", "x"); err != nil {
		t.Fatal(err)
	}
	if err := r.Save(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

// installedDir resolves the directory holding the installed snapshot's
// manifest.json + data.bin, so corruption tests can damage the real files.
func installedDir(t *testing.T, dir string) string {
	t.Helper()
	snap := snapshotDir(fsio.OS(), dir)
	if _, err := os.Stat(filepath.Join(snap, "manifest.json")); err != nil {
		t.Fatalf("no installed snapshot under %s: %v", dir, err)
	}
	return snap
}

func TestLoadRejectsTruncatedData(t *testing.T) {
	dir := savedFixture(t)
	path := filepath.Join(installedDir(t, dir), "data.bin")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []int{2, 4, 10} {
		if err := os.WriteFile(path, data[:len(data)/frac], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(dir); err == nil {
			t.Errorf("Load accepted data truncated to 1/%d", frac)
		}
	}
}

func TestLoadRejectsCorruptManifest(t *testing.T) {
	dir := savedFixture(t)
	path := filepath.Join(installedDir(t, dir), "manifest.json")
	cases := map[string]string{
		"not json":        "{{{",
		"bad version":     `{"format_version": 99}`,
		"unknown aggfunc": `{"format_version":1,"num_records":3,"partition_width":1000,"agg_views":[{"name":"p","path":[6,7],"func":"MEDIAN"}]}`,
	}
	for name, content := range cases {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(dir); err == nil {
			t.Errorf("Load accepted manifest case %q", name)
		}
	}
}

func TestLoadRejectsFlippedBitmapMagic(t *testing.T) {
	dir := savedFixture(t)
	path := filepath.Join(installedDir(t, dir), "data.bin")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xff // first bitmap's magic
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("Load accepted corrupted bitmap header")
	}
}

func TestLoadRejectsMissingDataFile(t *testing.T) {
	dir := savedFixture(t)
	if err := os.Remove(filepath.Join(installedDir(t, dir), "data.bin")); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("Load accepted missing data.bin")
	}
	if _, err := DiskSizeBytes(dir); err == nil {
		t.Error("DiskSizeBytes accepted missing data.bin")
	}
}

func TestSaveIntoUncreatablePath(t *testing.T) {
	r := buildSmallRelation(t)
	// A path under an existing *file* cannot be created as a directory.
	f := filepath.Join(t.TempDir(), "plainfile")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.Save(filepath.Join(f, "sub")); err == nil {
		t.Error("Save succeeded under a plain file")
	}
}

// TestLoadRoundTripAfterEveryFeature is the belt-and-braces round trip with
// every persisted feature engaged at once.
func TestLoadRoundTripAfterEveryFeature(t *testing.T) {
	dir := savedFixture(t)
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRecords() != 3 {
		t.Errorf("records = %d", got.NumRecords())
	}
	if v, ok := got.MeasureColumnNamed(1, "cost").Get(0); !ok || v != 9 {
		t.Errorf("named measure = %v,%v", v, ok)
	}
	if got.View("v") == nil || got.AggView("p") == nil {
		t.Error("views lost")
	}
	if !got.FetchTagBitmap("k", "x").Contains(0) {
		t.Error("tag lost")
	}
}

// TestLoadDetectsSilentBitFlip: a single flipped bit anywhere in data.bin —
// even one that would still parse — must fail the checksum.
func TestLoadDetectsSilentBitFlip(t *testing.T) {
	dir := savedFixture(t)
	path := filepath.Join(installedDir(t, dir), "data.bin")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the middle of the payload (not a header).
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("Load accepted a silently corrupted data file")
	}
}
