package colstore

import (
	"sync"

	"grove/internal/bitmap"
)

// Block-at-a-time measure access. GatherInto and AggregateInto are the
// vectorized successors of ValuesFor: they read a column for a sorted answer
// set with the bitmap batch kernels (RanksInto for sparse answers, block
// decode for dense ones) instead of per-record binary searches or per-bit
// closure calls, and they write into caller-owned (poolable) buffers so the
// steady-state measure path allocates nothing.

// rankScratchPool recycles the dense-index scratch of the sparse gather path
// across queries and goroutines.
var rankScratchPool = sync.Pool{New: func() any { return new([]int32) }}

// mergeGather reports whether an answer of len(recs) records should read a
// column of cnt values with the block-decode merge instead of the batch-rank
// kernel. The merge pays O(cnt) to decode every present value, so it only
// wins when the answer covers most of the column (measured crossover ≈ 4/5
// on run-optimized columns — see the grovebench measurescan experiment);
// everything sparser runs RanksInto, which skips absent regions at
// word-popcount granularity.
//
//grove:hotpath
func mergeGather(numRecs, cnt int) bool { return numRecs*5 >= cnt*4 }

// GatherInto reads the column for the given strictly ascending record ids in
// one batch, filling values[i] and present[i] per id (absent slots are
// zeroed, so dirty pooled buffers are safe to pass). values and present must
// have at least len(recs) entries. It returns the number of present values.
//
// This is ValuesFor with the allocation and the per-value overheads removed:
// small answer sets run the cursored batch-rank kernel (one container walk
// for the whole batch), large ones a single merge against block-decoded
// presence ids.
//
//grove:hotpath
func (c *MeasureColumn) GatherInto(recs []uint32, values []float64, present []bool) int {
	values = values[:len(recs)]
	present = present[:len(recs)]
	if len(recs) == 0 {
		return 0
	}
	var rd valueReader
	rd.init(c)
	if !mergeGather(len(recs), c.Count()) {
		scratch := rankScratchPool.Get().(*[]int32)
		idx := *scratch
		if cap(idx) < len(recs) {
			idx = make([]int32, len(recs)) //grovevet:ignore hotalloc pooled-scratch grow path; plateaus at the largest answer set
		}
		idx = idx[:len(recs)]
		c.present.RanksInto(recs, idx)
		n := 0
		for i, x := range idx {
			if x >= 0 {
				values[i] = rd.at(int(x))
				present[i] = true
				n++
			} else {
				values[i] = 0
				present[i] = false
			}
		}
		*scratch = idx
		rankScratchPool.Put(scratch)
		return n
	}
	for i := range present {
		values[i] = 0
		present[i] = false
	}
	var ids [bitmap.BlockSize]uint32
	it := c.present.Iterator()
	i := 0 // index into recs
	off := 0
	n := 0
	for i < len(recs) {
		m := it.NextMany(ids[:])
		if m == 0 {
			break
		}
		// Optimistic aligned prefix: in the common near-full-cover case the
		// decoded block IS the next stretch of recs, and the intersection
		// degenerates to a straight copy.
		k := 0
		for k < m && i < len(recs) && recs[i] == ids[k] {
			values[i] = rd.at(off + k)
			present[i] = true
			i++
			k++
		}
		n += k
		for ; k < m; k++ {
			rec := ids[k]
			for i < len(recs) && recs[i] < rec {
				i++
			}
			if i >= len(recs) {
				break
			}
			if recs[i] == rec {
				values[i] = rd.at(off + k)
				present[i] = true
				n++
				i++
			}
		}
		off += m
	}
	return n
}

// AggregateInto folds the column's values for the given strictly ascending
// record ids into acc with the block-reduce kernel, without materializing
// values/present slices: matched values are gathered into a stack block and
// reduced block-at-a-time. It returns the folded accumulator and how many
// values were present (the MeasuresScanned contribution). Absent records
// contribute nothing.
//
//grove:hotpath
func (c *MeasureColumn) AggregateInto(recs []uint32, acc float64, reduce func(acc float64, values []float64) float64) (float64, int) {
	if len(recs) == 0 || c.valueCount() == 0 {
		return acc, 0
	}
	var rd valueReader
	rd.init(c)
	var block [bitmap.BlockSize]float64 //grovevet:ignore hotalloc the block escapes through the reduce func value: one fixed-size buffer per call, amortized over BlockSize-wide folds
	bn, n := 0, 0
	if !mergeGather(len(recs), c.Count()) {
		scratch := rankScratchPool.Get().(*[]int32)
		idx := *scratch
		if cap(idx) < len(recs) {
			idx = make([]int32, len(recs)) //grovevet:ignore hotalloc pooled-scratch grow path; plateaus at the largest answer set
		}
		idx = idx[:len(recs)]
		c.present.RanksInto(recs, idx)
		for _, x := range idx {
			if x < 0 {
				continue
			}
			block[bn] = rd.at(int(x))
			bn++
			if bn == len(block) {
				acc = reduce(acc, block[:])
				n += bn
				bn = 0
			}
		}
		*scratch = idx
		rankScratchPool.Put(scratch)
	} else {
		var ids [bitmap.BlockSize]uint32
		it := c.present.Iterator()
		i, off := 0, 0
		for i < len(recs) {
			m := it.NextMany(ids[:])
			if m == 0 {
				break
			}
			// Aligned fast path: when the block matches recs one-for-one
			// and the fold block is empty, reduce the column values
			// directly — no copy at all. window is nil when the span
			// straddles a storage-block boundary of a paged column; the
			// per-value loop below then preserves the exact fold order.
			if bn == 0 && m <= len(recs)-i && recs[i] == ids[0] &&
				recs[i+m-1] == ids[m-1] && alignedU32(recs[i:i+m], ids[:m]) {
				if vals := rd.window(off, m); vals != nil {
					acc = reduce(acc, vals)
					n += m
					i += m
					off += m
					continue
				}
			}
			for k := 0; k < m; k++ {
				rec := ids[k]
				for i < len(recs) && recs[i] < rec {
					i++
				}
				if i >= len(recs) {
					break
				}
				if recs[i] == rec {
					block[bn] = rd.at(off + k)
					bn++
					i++
					if bn == len(block) {
						acc = reduce(acc, block[:])
						n += bn
						bn = 0
					}
				}
			}
			off += m
		}
	}
	if bn > 0 {
		acc = reduce(acc, block[:bn])
		n += bn
	}
	return acc, n
}

// alignedU32 reports whether a and b are element-wise equal. Callers have
// already matched both endpoints of two strictly ascending sequences, so a
// mismatch is rare and the scan usually runs to completion.
//
//grove:hotpath
func alignedU32(a, b []uint32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
