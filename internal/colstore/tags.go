package colstore

import (
	"fmt"
	"sort"

	"grove/internal/bitmap"
)

// Record metadata (§3.1): grove stores key=value tags per record as bitmap
// columns — one column per (key, value) pair, exactly like the bitmap
// indexes data warehouses keep on low-cardinality dimension attributes.
// Tags link sub-orders into logical units, carry order types for slicing
// analytical results, and so on; combined with structural answers they stay
// in the bitmap algebra.

// Tag marks record rec with key=value.
func (r *Relation) Tag(rec uint32, key, value string) error {
	if key == "" {
		return fmt.Errorf("colstore: empty tag key")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := r.numRecords.Load(); rec >= n {
		return fmt.Errorf("colstore: tag on unknown record %d (have %d)", rec, n)
	}
	if r.tags == nil {
		r.tags = make(map[string]map[string]*BitmapColumn)
	}
	byValue, ok := r.tags[key]
	if !ok {
		byValue = make(map[string]*BitmapColumn)
		r.tags[key] = byValue
	}
	col, ok := byValue[value]
	if !ok {
		col = NewBitmapColumn()
		byValue[value] = col
	}
	col.Set(rec)
	r.bumpVersion()
	return nil
}

// FetchTagBitmap reads the bitmap column of key=value, accounting one bitmap
// fetch. Unknown tags yield an empty bitmap.
func (r *Relation) FetchTagBitmap(key, value string) *bitmap.Bitmap {
	col, ok := r.tags[key][value]
	if !ok {
		r.tracker.onBitmapFetch(0)
		return emptyBitmap
	}
	r.tracker.onBitmapFetch(col.SizeBytes())
	return col.Bits()
}

// TagKeys lists the tag keys stored, sorted.
func (r *Relation) TagKeys() []string {
	out := make([]string, 0, len(r.tags))
	for k := range r.tags {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TagValues lists the values stored under a key, sorted.
func (r *Relation) TagValues(key string) []string {
	byValue := r.tags[key]
	out := make([]string, 0, len(byValue))
	for v := range byValue {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// TagSizeBytes is the payload size of all tag columns.
func (r *Relation) TagSizeBytes() int64 {
	var n int64
	for _, byValue := range r.tags {
		for _, col := range byValue {
			n += int64(col.SizeBytes())
		}
	}
	return n
}
