package colstore

import "math"

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
