package colstore

import (
	"testing"

	"grove/internal/agg"
)

// TestViewsStayFreshAcrossLoads verifies incremental view maintenance: views
// materialized before a record arrives must include it afterwards, exactly
// as if they had been materialized later.
func TestViewsStayFreshAcrossLoads(t *testing.T) {
	r := buildSmallRelation(t)
	if _, err := r.MaterializeView("v45", []EdgeID{4, 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.MaterializeAggView("p45", []EdgeID{4, 5}, agg.Sum); err != nil {
		t.Fatal(err)
	}

	// New record containing e4, e5 arrives after materialization.
	rec := r.NewRecord()
	r.SetEdgeMeasure(rec, 4, 10)
	r.SetEdgeMeasure(rec, 5, 20)
	r.UpdateViewsForRecord(rec)

	if !r.View("v45").Col.Contains(rec) {
		t.Error("graph view missed the new record")
	}
	av := r.AggView("p45")
	if !av.Col.Contains(rec) {
		t.Error("aggregate view bitmap missed the new record")
	}
	if v, ok := av.Measure.Get(rec); !ok || v != 30 {
		t.Errorf("aggregate view measure = %v,%v want 30,true", v, ok)
	}

	// A record NOT containing the view edges must stay excluded.
	rec2 := r.NewRecord()
	r.SetEdgeMeasure(rec2, 4, 1) // e5 missing
	r.UpdateViewsForRecord(rec2)
	if r.View("v45").Col.Contains(rec2) {
		t.Error("graph view includes a non-matching record")
	}
	if av.Col.Contains(rec2) {
		t.Error("aggregate view includes a non-matching record")
	}
}

// TestMaintainedViewEqualsRematerialized cross-checks incremental
// maintenance against a from-scratch rebuild.
func TestMaintainedViewEqualsRematerialized(t *testing.T) {
	r := buildSmallRelation(t)
	if _, err := r.MaterializeAggView("p", []EdgeID{6, 7}, agg.Max); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		rec := r.NewRecord()
		if i%2 == 0 {
			r.SetEdgeMeasure(rec, 6, float64(i))
			r.SetEdgeMeasure(rec, 7, float64(2*i))
		} else {
			r.SetEdgeMeasure(rec, 6, float64(i))
		}
		r.UpdateViewsForRecord(rec)
	}
	maintained := r.AggView("p")
	r.DropAggView("p")
	rebuilt, err := r.MaterializeAggView("p", []EdgeID{6, 7}, agg.Max)
	if err != nil {
		t.Fatal(err)
	}
	if !maintained.Col.Bits().Equals(rebuilt.Col.Bits()) {
		t.Fatal("maintained bitmap differs from rebuilt")
	}
	rebuilt.Measure.ForEach(func(rec uint32, v float64) bool {
		got, ok := maintained.Measure.Get(rec)
		if !ok || got != v {
			t.Errorf("rec %d: maintained %v,%v want %v", rec, got, ok, v)
		}
		return true
	})
}

// TestLoadedAggViewIsMaintainable verifies that views reloaded from disk can
// still be maintained (the function is re-bound by name).
func TestLoadedAggViewIsMaintainable(t *testing.T) {
	dir := t.TempDir()
	r := buildSmallRelation(t)
	if _, err := r.MaterializeAggView("p", []EdgeID{6, 7}, agg.Sum); err != nil {
		t.Fatal(err)
	}
	if err := r.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := got.NewRecord()
	got.SetEdgeMeasure(rec, 6, 7)
	got.SetEdgeMeasure(rec, 7, 8)
	got.UpdateViewsForRecord(rec)
	if v, ok := got.AggView("p").Measure.Get(rec); !ok || v != 15 {
		t.Errorf("reloaded view not maintained: %v,%v", v, ok)
	}
}
