package colstore

import (
	"math"
	"math/rand"
	"testing"

	"grove/internal/agg"
)

// randomColumn builds a column whose presence bitmap mixes all three
// container layouts: a sparse chunk, a dense chunk, and a run-heavy chunk,
// with a hole at chunk 2.
func randomColumn(rng *rand.Rand) *MeasureColumn {
	c := NewMeasureColumn()
	set := func(rec uint32) {
		c.Set(rec, (rng.Float64()-0.5)*math.Pow(10, float64(rng.Intn(8)-4)))
	}
	for i := 0; i < rng.Intn(200); i++ {
		set(uint32(rng.Intn(1 << 16)))
	}
	if rng.Intn(2) == 0 {
		for i := 0; i < 3000+rng.Intn(4000); i++ {
			set(1<<16 + uint32(rng.Intn(1<<16)))
		}
	}
	if rng.Intn(2) == 0 {
		lo := 3<<16 + uint32(rng.Intn(60000))
		for k := uint32(0); k < uint32(rng.Intn(2000)); k++ {
			set(lo + k)
		}
	}
	c.present.RunOptimize()
	return c
}

// randomRecs draws a strictly ascending query set mixing present records,
// absent records, and records in empty chunks.
func randomRecs(rng *rand.Rand, c *MeasureColumn, n int) []uint32 {
	seen := make(map[uint32]bool)
	var recs []uint32
	add := func(rec uint32) {
		if !seen[rec] {
			seen[rec] = true
			recs = append(recs, rec)
		}
	}
	c.ForEach(func(rec uint32, _ float64) bool {
		if rng.Intn(3) == 0 && len(recs) < n {
			add(rec)
		}
		return true
	})
	for len(recs) < n {
		add(uint32(rng.Intn(5 << 16)))
	}
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j-1] > recs[j]; j-- {
			recs[j-1], recs[j] = recs[j], recs[j-1]
		}
	}
	return recs
}

func checkGather(t *testing.T, c *MeasureColumn, recs []uint32, label string) {
	t.Helper()
	// Dirty buffers: GatherInto must overwrite every slot.
	values := make([]float64, len(recs))
	present := make([]bool, len(recs))
	for i := range values {
		values[i] = math.Inf(-1)
		present[i] = true
	}
	n := c.GatherInto(recs, values, present)
	wantN := 0
	for i, rec := range recs {
		wantV, wantP := c.Get(rec)
		if wantP {
			wantN++
		}
		if present[i] != wantP || math.Float64bits(values[i]) != math.Float64bits(wantV) {
			t.Fatalf("%s: rec %d: GatherInto (%v, %v), Get (%v, %v)",
				label, rec, values[i], present[i], wantV, wantP)
		}
	}
	if n != wantN {
		t.Fatalf("%s: GatherInto returned %d present, want %d", label, n, wantN)
	}
	// ValuesFor is a wrapper and must agree.
	vv, pp := c.ValuesFor(recs)
	for i := range recs {
		if pp[i] != present[i] || math.Float64bits(vv[i]) != math.Float64bits(values[i]) {
			t.Fatalf("%s: ValuesFor diverges from GatherInto at %d", label, i)
		}
	}
}

func TestGatherIntoMatchesGet(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		c := randomColumn(rng)
		for _, n := range []int{0, 1, 7, 100, 1000} {
			checkGather(t, c, randomRecs(rng, c, n), "random")
		}
	}
}

// TestGatherIntoThresholdBoundary pins both sides of the batch-rank/merge
// cutoff (merge when len(recs)*5 >= Count()*4) to the same answers.
func TestGatherIntoThresholdBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	c := NewMeasureColumn()
	for i := 0; i < 16*64; i++ { // Count = 1024, cutoff near len(recs) == 820
		c.Set(uint32(i*3), rng.Float64())
	}
	cut := c.Count() * 4 / 5
	if mergeGather(cut-1, c.Count()) || !mergeGather(cut+1, c.Count()) {
		t.Fatalf("cutoff moved: mergeGather around %d of %d", cut, c.Count())
	}
	for _, n := range []int{cut - 1, cut, cut + 1} {
		checkGather(t, c, randomRecs(rng, c, n), "boundary")
	}
}

func TestGatherIntoEmptyColumn(t *testing.T) {
	c := NewMeasureColumn()
	recs := []uint32{1, 5, 70000}
	values := make([]float64, len(recs))
	present := []bool{true, true, true}
	if n := c.GatherInto(recs, values, present); n != 0 {
		t.Fatalf("empty column gathered %d values", n)
	}
	for i := range recs {
		if present[i] || values[i] != 0 {
			t.Fatalf("empty column: slot %d not cleared", i)
		}
	}
}

func TestAggregateIntoMatchesScalarFold(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	funcs := []agg.Func{agg.Sum, agg.Min, agg.Max, agg.Count}
	for trial := 0; trial < 40; trial++ {
		c := randomColumn(rng)
		for _, n := range []int{0, 1, 50, 400, 2000} {
			recs := randomRecs(rng, c, n)
			for _, f := range funcs {
				k := agg.KernelFor(f)
				got, gotN := c.AggregateInto(recs, f.Identity, k.Reduce)
				want := f.Identity
				wantN := 0
				for _, rec := range recs {
					if v, ok := c.Get(rec); ok {
						want = f.Fold(want, f.Lift(v))
						wantN++
					}
				}
				if gotN != wantN {
					t.Fatalf("%s n=%d: AggregateInto scanned %d, scalar %d", f.Name, n, gotN, wantN)
				}
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("%s n=%d: AggregateInto = %v (bits %x), scalar %v (bits %x)",
						f.Name, n, got, math.Float64bits(got), want, math.Float64bits(want))
				}
			}
		}
	}
}

// TestAggregateIntoBlockSplit forces multi-block reduction (>BlockSize
// matches) on both the sparse and merge paths.
func TestAggregateIntoBlockSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	c := NewMeasureColumn()
	for i := 0; i < 20000; i++ {
		c.Set(uint32(i*2), rng.Float64())
	}
	k := agg.KernelFor(agg.Sum)
	// Merge path: nearly the whole column.
	dense := randomRecs(rng, c, 15000)
	// Sparse path: well under Count()/16 but over BlockSize.
	sparse := randomRecs(rng, c, 700)
	for _, recs := range [][]uint32{dense, sparse} {
		got, gotN := c.AggregateInto(recs, 0, k.Reduce)
		want := 0.0
		wantN := 0
		for _, rec := range recs {
			if v, ok := c.Get(rec); ok {
				want += v
				wantN++
			}
		}
		if gotN != wantN || math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("len(recs)=%d: AggregateInto = (%v, %d), scalar (%v, %d)",
				len(recs), got, gotN, want, wantN)
		}
	}
}
