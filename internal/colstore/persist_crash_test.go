package colstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"grove/internal/fsio"
)

// refBytes saves r into a fresh directory and returns the installed
// snapshot's manifest.json + data.bin bytes. Save is deterministic (every
// accessor sorts), so two relations with equal state produce equal bytes —
// the sweep uses this for bit-exact old-or-new assertions.
func refBytes(tb testing.TB, r *Relation) []byte {
	tb.Helper()
	dir := tb.TempDir()
	if err := r.Save(dir); err != nil {
		tb.Fatal(err)
	}
	return installedSnapshotBytes(tb, dir)
}

func installedSnapshotBytes(tb testing.TB, dir string) []byte {
	tb.Helper()
	snap := snapshotDir(fsio.OS(), dir)
	var buf []byte
	for _, name := range []string{"manifest.json", "data.bin"} {
		b, err := os.ReadFile(filepath.Join(snap, name))
		if err != nil {
			tb.Fatal(err)
		}
		buf = append(buf, b...)
		buf = append(buf, 0)
	}
	return buf
}

// TestSaveFaultSweep is the durability claim, tested exhaustively: crash
// Save at every single I/O operation (with and without torn writes) and
// assert that Load afterwards yields the complete old snapshot or the
// complete new one, bit-exactly — never an error, never a mix.
func TestSaveFaultSweep(t *testing.T) {
	oldRel := buildSmallRelation(t)
	newRel := buildSmallRelation(t)
	newRel.SetEdgeMeasure(0, 9, 7)
	newRel.SetEdgeMeasureNamed(1, 2, "cost", 5)
	if _, err := newRel.MaterializeView("v", []EdgeID{4, 5}); err != nil {
		t.Fatal(err)
	}
	refOld := refBytes(t, oldRel)
	refNew := refBytes(t, newRel)
	if bytes.Equal(refOld, refNew) {
		t.Fatal("fixtures must differ for the sweep to mean anything")
	}

	seed := func() string {
		dir := t.TempDir()
		if err := oldRel.Save(dir); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	// One unarmed run counts the save's total operations T; the sweep then
	// crashes at every k in [1, T].
	fault := fsio.NewFaultFS(fsio.OS())
	fault.FailAt(0)
	if err := newRel.SaveFS(fault, seed()); err != nil {
		t.Fatal(err)
	}
	total := fault.Ops()
	if total < 15 {
		t.Fatalf("suspiciously few operations counted: %d\n%s", total, strings.Join(fault.OpLog(), "\n"))
	}

	for _, torn := range []bool{false, true} {
		fault.SetTornWrites(torn)
		var sawOld, sawNew bool
		for k := int64(1); k <= total; k++ {
			dir := seed()
			fault.FailAt(k)
			saveErr := newRel.SaveFS(fault, dir)
			opLog := fault.OpLog()
			fault.FailAt(0)
			if saveErr == nil {
				t.Fatalf("k=%d torn=%v: injected fault did not surface from Save", k, torn)
			}
			got, err := Load(dir)
			if err != nil {
				t.Fatalf("k=%d torn=%v: Load after crashed save failed: %v\nops:\n%s",
					k, torn, err, strings.Join(opLog, "\n"))
			}
			switch b := refBytes(t, got); {
			case bytes.Equal(b, refOld):
				sawOld = true
			case bytes.Equal(b, refNew):
				sawNew = true
			default:
				t.Fatalf("k=%d torn=%v: Load yielded a state that is neither old nor new\nops:\n%s",
					k, torn, strings.Join(opLog, "\n"))
			}
		}
		// The sweep must actually span the commit point: early crashes keep
		// the old snapshot, late ones land the new one.
		if !sawOld || !sawNew {
			t.Fatalf("torn=%v: sweep did not cross the commit point (old=%v new=%v)", torn, sawOld, sawNew)
		}
	}
}

// buildMultiBlockRelation builds a relation whose measure columns span
// several v2 value blocks with different encodings: edge 1 is constant
// (run-length blocks), edge 2 monotonic (XOR-delta blocks).
func buildMultiBlockRelation(t *testing.T) *Relation {
	t.Helper()
	r := NewRelation(0)
	for i := 0; i < 2*BlockValues+17; i++ {
		rec := r.NewRecord()
		r.SetEdgeMeasure(rec, 1, 7)
		r.SetEdgeMeasure(rec, 2, float64(1<<20+i))
	}
	return r
}

// TestSaveFaultSweepMultiBlock repeats the crash sweep over a relation whose
// columns span several compressed blocks, so the sweep crosses block-payload
// and block-index writes of the v2 layout, not just the tiny single-block
// case. refBytes re-saves the loaded (lazily paged) relation, so each probe
// also proves a paged load re-encodes to the exact installed bytes.
func TestSaveFaultSweepMultiBlock(t *testing.T) {
	oldRel := buildMultiBlockRelation(t)
	newRel := buildMultiBlockRelation(t)
	newRel.SetEdgeMeasure(3, 2, 42) // perturb mid-block: re-encodes edge 2's first block
	refOld := refBytes(t, oldRel)
	refNew := refBytes(t, newRel)
	if bytes.Equal(refOld, refNew) {
		t.Fatal("fixtures must differ for the sweep to mean anything")
	}

	seed := func() string {
		dir := t.TempDir()
		if err := oldRel.Save(dir); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	fault := fsio.NewFaultFS(fsio.OS())
	fault.FailAt(0)
	if err := newRel.SaveFS(fault, seed()); err != nil {
		t.Fatal(err)
	}
	total := fault.Ops()

	fault.SetTornWrites(true) // the harsher mode; the plain mode is TestSaveFaultSweep's
	var sawOld, sawNew bool
	for k := int64(1); k <= total; k++ {
		dir := seed()
		fault.FailAt(k)
		saveErr := newRel.SaveFS(fault, dir)
		opLog := fault.OpLog()
		fault.FailAt(0)
		if saveErr == nil {
			t.Fatalf("k=%d: injected fault did not surface from Save", k)
		}
		got, err := Load(dir)
		if err != nil {
			t.Fatalf("k=%d: Load after crashed save failed: %v\nops:\n%s",
				k, err, strings.Join(opLog, "\n"))
		}
		switch b := refBytes(t, got); {
		case bytes.Equal(b, refOld):
			sawOld = true
		case bytes.Equal(b, refNew):
			sawNew = true
		default:
			t.Fatalf("k=%d: Load yielded a state that is neither old nor new\nops:\n%s",
				k, strings.Join(opLog, "\n"))
		}
	}
	if !sawOld || !sawNew {
		t.Fatalf("sweep did not cross the commit point (old=%v new=%v)", sawOld, sawNew)
	}
}

// TestSaveFaultSweepSnapshotGC crashes Save at every I/O operation of a save
// whose keep policy garbage-collects THREE older generations: the sweep
// crosses the CURRENT flip and then each RemoveAll, proving GC runs strictly
// after the commit point — a crash mid-collection leaves extra directories,
// never a missing or half-installed state.
func TestSaveFaultSweepSnapshotGC(t *testing.T) {
	oldRel := buildSmallRelation(t)
	oldRel.SetSnapshotKeep(1000) // seeds must pile up generations for GC to chew
	newRel := buildSmallRelation(t)
	newRel.SetEdgeMeasure(0, 9, 7)
	newRel.SetSnapshotKeep(1)
	refOld := refBytes(t, oldRel)
	refNew := refBytes(t, newRel)
	if bytes.Equal(refOld, refNew) {
		t.Fatal("fixtures must differ for the sweep to mean anything")
	}

	seed := func() string {
		dir := t.TempDir()
		for i := 0; i < 3; i++ {
			if err := oldRel.Save(dir); err != nil {
				t.Fatal(err)
			}
		}
		return dir
	}

	fault := fsio.NewFaultFS(fsio.OS())
	fault.FailAt(0)
	cleanDir := seed()
	if err := newRel.SaveFS(fault, cleanDir); err != nil {
		t.Fatal(err)
	}
	total := fault.Ops()
	// The clean run must actually have collected: keep=1 leaves one gen.
	if gens := listGenerations(fsio.OS(), cleanDir); len(gens) != 1 {
		t.Fatalf("generations after keep=1 save = %v", gens)
	}

	for _, torn := range []bool{false, true} {
		fault.SetTornWrites(torn)
		var sawOld, sawNew, sawPartialGC bool
		for k := int64(1); k <= total; k++ {
			dir := seed()
			fault.FailAt(k)
			saveErr := newRel.SaveFS(fault, dir)
			opLog := fault.OpLog()
			fault.FailAt(0)
			if saveErr == nil {
				t.Fatalf("k=%d torn=%v: injected fault did not surface from Save", k, torn)
			}
			got, err := Load(dir)
			if err != nil {
				t.Fatalf("k=%d torn=%v: Load after crashed save failed: %v\nops:\n%s",
					k, torn, err, strings.Join(opLog, "\n"))
			}
			gens := listGenerations(fsio.OS(), dir)
			switch b := refBytes(t, got); {
			case bytes.Equal(b, refOld):
				sawOld = true
				// Pre-commit crash: GC has not started, all three seed
				// generations must still be intact (plus at most the
				// uncommitted new one).
				if len(gens) < 3 {
					t.Fatalf("k=%d torn=%v: crash before commit lost seed generations: %v\nops:\n%s",
						k, torn, gens, strings.Join(opLog, "\n"))
				}
			case bytes.Equal(b, refNew):
				sawNew = true
				if len(gens) > 1 {
					sawPartialGC = true // crashed mid-collection: extra dirs, still loadable
				}
			default:
				t.Fatalf("k=%d torn=%v: Load yielded a state that is neither old nor new\nops:\n%s",
					k, torn, strings.Join(opLog, "\n"))
			}
		}
		if !sawOld || !sawNew {
			t.Fatalf("torn=%v: sweep did not cross the commit point (old=%v new=%v)", torn, sawOld, sawNew)
		}
		// With three generations to remove, some crash point must land
		// between the flip and the last RemoveAll.
		if !sawPartialGC {
			t.Fatalf("torn=%v: sweep never observed a partially-collected directory", torn)
		}
	}
}

// TestLoadFallbackRecovery corrupts the installed generation and asserts
// Load falls back to the previous one, counting the recovery.
func TestLoadFallbackRecovery(t *testing.T) {
	oldRel := buildSmallRelation(t)
	newRel := buildSmallRelation(t)
	newRel.SetEdgeMeasure(2, 9, 1)
	refOld := refBytes(t, oldRel)

	dir := t.TempDir()
	if err := oldRel.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := newRel.Save(dir); err != nil {
		t.Fatal(err)
	}
	cur := CurrentGeneration(dir)
	data := filepath.Join(dir, cur, "data.bin")
	b, err := os.ReadFile(data)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x01
	if err := os.WriteFile(data, b, 0o644); err != nil {
		t.Fatal(err)
	}

	before := PersistRecoveries()
	got, err := Load(dir)
	if err != nil {
		t.Fatalf("Load did not recover from corrupt installed generation: %v", err)
	}
	if !bytes.Equal(refBytes(t, got), refOld) {
		t.Fatal("recovered relation is not the previous generation")
	}
	if PersistRecoveries() != before+1 {
		t.Fatalf("recoveries = %d, want %d", PersistRecoveries(), before+1)
	}

	// Losing CURRENT as well still recovers via the newest-first scan.
	if err := os.Remove(filepath.Join(dir, currentFile)); err != nil {
		t.Fatal(err)
	}
	if got, err = Load(dir); err != nil {
		t.Fatalf("Load without CURRENT failed: %v", err)
	}
	if !bytes.Equal(refBytes(t, got), refOld) {
		t.Fatal("pointerless recovery is not the previous generation")
	}
}

func TestSnapshotGCKeepCount(t *testing.T) {
	r := buildSmallRelation(t)
	dir := t.TempDir()
	for i := 0; i < 4; i++ {
		if err := r.Save(dir); err != nil {
			t.Fatal(err)
		}
	}
	if gens := listGenerations(fsio.OS(), dir); len(gens) != DefaultSnapshotKeep {
		t.Fatalf("generations after 4 saves = %v, want %d", gens, DefaultSnapshotKeep)
	}
	if cur := CurrentGeneration(dir); cur != genDirName(4) {
		t.Fatalf("CURRENT = %q, want %q", cur, genDirName(4))
	}
	r.SetSnapshotKeep(3)
	if err := r.Save(dir); err != nil {
		t.Fatal(err)
	}
	if gens := listGenerations(fsio.OS(), dir); len(gens) != 3 {
		t.Fatalf("generations with keep=3 = %v", gens)
	}
}

func TestGenerationsInventoryAndRollback(t *testing.T) {
	oldRel := buildSmallRelation(t)
	newRel := buildSmallRelation(t)
	newRel.SetEdgeMeasure(1, 9, 6)
	refOld := refBytes(t, oldRel)

	dir := t.TempDir()
	if err := oldRel.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := newRel.Save(dir); err != nil {
		t.Fatal(err)
	}

	infos, err := Generations(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("generations = %+v", infos)
	}
	if infos[0].Name != genDirName(2) || !infos[0].Current || infos[0].Status != "ok" {
		t.Fatalf("newest = %+v", infos[0])
	}
	if infos[1].Name != genDirName(1) || infos[1].Current || infos[1].Status != "ok" {
		t.Fatalf("oldest = %+v", infos[1])
	}
	if infos[0].SizeBytes <= 0 {
		t.Fatalf("size = %d", infos[0].SizeBytes)
	}

	if err := Rollback(dir, genDirName(1)); err != nil {
		t.Fatal(err)
	}
	if cur := CurrentGeneration(dir); cur != genDirName(1) {
		t.Fatalf("CURRENT after rollback = %q", cur)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refBytes(t, got), refOld) {
		t.Fatal("rollback did not restore the old generation")
	}

	if err := Rollback(dir, "gen-9"); err == nil {
		t.Fatal("Rollback accepted a missing generation")
	}
	if err := Rollback(dir, "../escape"); err == nil {
		t.Fatal("Rollback accepted a non-generation name")
	}

	// A generation that fails verification is reported, not hidden, and is
	// not a valid rollback target.
	data := filepath.Join(dir, genDirName(2), "data.bin")
	b, err := os.ReadFile(data)
	if err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if err := os.WriteFile(data, b, 0o644); err != nil {
		t.Fatal(err)
	}
	infos, err = Generations(dir)
	if err != nil {
		t.Fatal(err)
	}
	if infos[0].Status == "ok" {
		t.Fatal("corrupt generation reported as ok")
	}
	if err := Rollback(dir, genDirName(2)); err == nil {
		t.Fatal("Rollback accepted a corrupt generation")
	}
}

// TestConcurrentSaveLoadMutate runs overlapping Saves, Loads and a mutating
// writer under the race detector: snapshot installation must never be
// observed half-done, and every Save lands its own complete generation.
func TestConcurrentSaveLoadMutate(t *testing.T) {
	r := buildSmallRelation(t)
	r.SetSnapshotKeep(1000) // no GC: every generation must survive and verify
	dir := t.TempDir()
	if err := r.Save(dir); err != nil {
		t.Fatal(err)
	}

	const savers, savesEach = 2, 6
	stop := make(chan struct{})
	var saverWG, bgWG sync.WaitGroup

	bgWG.Add(1)
	go func() { // writer
		defer bgWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				r.SetEdgeMeasure(uint32(i%3), EdgeID(10+i%5), float64(i))
			}
		}
	}()
	errc := make(chan error, savers*savesEach+64)
	for s := 0; s < savers; s++ {
		saverWG.Add(1)
		go func() {
			defer saverWG.Done()
			for i := 0; i < savesEach; i++ {
				if err := r.Save(dir); err != nil {
					errc <- fmt.Errorf("save: %w", err)
				}
			}
		}()
	}
	for l := 0; l < 2; l++ {
		bgWG.Add(1)
		go func() {
			defer bgWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if _, err := Load(dir); err != nil {
						errc <- fmt.Errorf("load: %w", err)
						return
					}
				}
			}
		}()
	}
	// Savers finish first; then stop the writer and loaders.
	saverWG.Wait()
	close(stop)
	bgWG.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Overlapping saves must have serialized into distinct generations —
	// the initial one plus one per Save — and every one verifies.
	infos, err := Generations(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 + savers*savesEach; len(infos) != want {
		t.Fatalf("generations = %d, want %d", len(infos), want)
	}
	for _, info := range infos {
		if info.Status != "ok" {
			t.Errorf("generation %s: %s", info.Name, info.Status)
		}
	}
	if _, err := Load(dir); err != nil {
		t.Fatal(err)
	}
}

func benchRelation() *Relation {
	r := NewRelation(0)
	for rec := 0; rec < 2000; rec++ {
		id := r.NewRecord()
		for e := 0; e < 20; e++ {
			r.SetEdgeMeasure(id, EdgeID(1+(rec+e*7)%60), float64(e))
		}
	}
	return r
}

func BenchmarkSave(b *testing.B) {
	r := benchRelation()
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Save(dir); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoad(b *testing.B) {
	r := benchRelation()
	dir := b.TempDir()
	if err := r.Save(dir); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Load(dir); err != nil {
			b.Fatal(err)
		}
	}
}
