// Package workload synthesizes grove's experimental datasets and query
// workloads (paper §7.1). The paper builds graph records by running random
// walks over two base networks — the DIMACS New York road graph and the
// Gnutella-04 P2P snapshot — and draws query graphs uniformly or
// Zipf-distributed from the walk paths. Those exact files are not
// redistributable here, so this package generates structurally equivalent
// stand-ins: a grid-with-diagonals road network ("NY-like") and a
// preferential-attachment power-law network ("GNU-like"), then reproduces
// the walk-based record synthesis and the query draws.
//
// Records are kept acyclic by construction: every network carries a fixed
// topological orientation (edges point from lower to higher node index), so
// unions of walk paths are DAGs and path aggregation needs no flattening —
// mirroring the paper's observation that sequencing is usually already
// encoded in the trace data (§6.2).
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Network is a base graph whose forward (index-increasing) edges form the
// universe of edge ids that records and queries draw from.
type Network struct {
	Name string
	// adj[i] lists the forward neighbours of node i (all > i).
	adj      [][]int32
	numEdges int
}

// NumNodes returns the node count.
func (n *Network) NumNodes() int { return len(n.adj) }

// NumEdges returns the directed forward-edge count — the edge-domain size of
// datasets built over this network.
func (n *Network) NumEdges() int { return n.numEdges }

// NodeName renders the universal identifier of node i.
func (n *Network) NodeName(i int32) string { return fmt.Sprintf("n%d", i) }

// Successors returns the forward neighbours of node i.
func (n *Network) Successors(i int32) []int32 { return n.adj[i] }

func (n *Network) addEdge(a, b int32) {
	if a == b {
		return
	}
	if a > b {
		a, b = b, a
	}
	for _, x := range n.adj[a] {
		if x == b {
			return
		}
	}
	n.adj[a] = append(n.adj[a], b)
	n.numEdges++
}

// NewRoadNetwork builds the NY-like road network: a near-square grid with
// street and avenue segments plus occasional diagonal shortcuts, sized so
// the forward-edge count is close to targetEdges (the experiments' edge
// domain; 1000 by default, up to 100K in the Fig. 5 sweep).
func NewRoadNetwork(targetEdges int) *Network {
	if targetEdges < 4 {
		targetEdges = 4
	}
	// A r×c grid has ~2rc forward edges (plus ~rc/8 diagonals).
	side := int(math.Sqrt(float64(targetEdges) / 2.1))
	if side < 2 {
		side = 2
	}
	rows, cols := side, side
	n := &Network{Name: "NY-like road grid"}
	n.adj = make([][]int32, rows*cols)
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				n.addEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				n.addEdge(id(r, c), id(r+1, c))
			}
			// Sparse diagonals model highway shortcuts.
			if r+1 < rows && c+1 < cols && (r+c)%8 == 0 {
				n.addEdge(id(r, c), id(r+1, c+1))
			}
		}
	}
	return n
}

// NewP2PNetwork builds the GNU-like peer-to-peer network by preferential
// attachment: each new node links to m existing nodes chosen proportionally
// to their degree, yielding the power-law degree distribution of Gnutella
// snapshots. Deterministic for a given seed.
func NewP2PNetwork(targetEdges int, seed int64) *Network {
	const m = 3
	numNodes := targetEdges/m + m + 1
	rng := rand.New(rand.NewSource(seed))
	n := &Network{Name: "GNU-like P2P network"}
	n.adj = make([][]int32, numNodes)
	// Repeated-endpoint list implements preferential attachment.
	var endpoints []int32
	for v := int32(1); v < int32(numNodes); v++ {
		attached := make(map[int32]struct{}, m)
		for len(attached) < m && len(attached) < int(v) {
			var target int32
			if len(endpoints) == 0 || rng.Intn(4) == 0 {
				target = int32(rng.Intn(int(v)))
			} else {
				target = endpoints[rng.Intn(len(endpoints))]
			}
			if target == v {
				continue
			}
			attached[target] = struct{}{}
		}
		for t := range attached {
			n.addEdge(t, v)
			endpoints = append(endpoints, t, v)
		}
	}
	return n
}

// RandomWalk performs one self-avoiding forward walk of at most maxLen edges
// starting from a random node, returning the visited node sequence
// (≥ 2 nodes, or nil when the start is a sink). Forward orientation makes
// every walk a simple path.
func (n *Network) RandomWalk(rng *rand.Rand, maxLen int) []int32 {
	if len(n.adj) == 0 {
		return nil
	}
	// Bias starts away from the highest-index nodes, which have few or no
	// forward neighbours.
	start := int32(rng.Intn(len(n.adj)))
	if len(n.adj[start]) == 0 {
		start = int32(rng.Intn(len(n.adj) * 3 / 4)) // retry in the denser region
	}
	walk := []int32{start}
	cur := start
	for len(walk) <= maxLen {
		next := n.adj[cur]
		if len(next) == 0 {
			break
		}
		cur = next[rng.Intn(len(next))]
		walk = append(walk, cur)
	}
	if len(walk) < 2 {
		return nil
	}
	return walk
}
