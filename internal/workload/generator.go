package workload

import (
	"fmt"
	"math/rand"

	"grove/internal/graph"
)

// Generator synthesizes graph records from a base network by unioning
// random-walk paths until a per-record edge-count target is met, assigning a
// random real measure to every edge (§7.1). It remembers the walk paths so
// query generators can draw query graphs "from the set of paths resulting
// from the random walk processes".
type Generator struct {
	Net *Network
	// MinEdges/MaxEdges bound the record size (Table 2: 35–100 for NY,
	// 45–100 for GNU).
	MinEdges int
	MaxEdges int

	rng   *rand.Rand
	paths [][]int32 // retained walk node sequences for query generation
}

// NewGenerator returns a deterministic generator for the given network and
// record-size bounds.
func NewGenerator(net *Network, minEdges, maxEdges int, seed int64) (*Generator, error) {
	if net == nil {
		return nil, fmt.Errorf("workload: nil network")
	}
	if minEdges < 1 || maxEdges < minEdges {
		return nil, fmt.Errorf("workload: bad record size bounds [%d,%d]", minEdges, maxEdges)
	}
	return &Generator{
		Net:      net,
		MinEdges: minEdges,
		MaxEdges: maxEdges,
		rng:      rand.New(rand.NewSource(seed)),
	}, nil
}

// NextRecord synthesizes one graph record.
func (g *Generator) NextRecord() (*graph.Record, error) {
	target := g.MinEdges
	if g.MaxEdges > g.MinEdges {
		target += g.rng.Intn(g.MaxEdges - g.MinEdges + 1)
	}
	rec := graph.NewRecord()
	edges := 0
	for attempts := 0; edges < target && attempts < 50*target; attempts++ {
		walk := g.Net.RandomWalk(g.rng, 8+g.rng.Intn(12))
		if walk == nil {
			continue
		}
		g.paths = append(g.paths, walk)
		for i := 0; i+1 < len(walk) && edges < target; i++ {
			from, to := g.Net.NodeName(walk[i]), g.Net.NodeName(walk[i+1])
			if rec.HasEdge(from, to) {
				continue
			}
			if err := rec.SetEdge(from, to, g.rng.Float64()*100); err != nil {
				return nil, err
			}
			edges++
		}
	}
	if edges == 0 {
		return nil, fmt.Errorf("workload: could not grow a record on %s", g.Net.Name)
	}
	// Keep the retained path pool bounded.
	if len(g.paths) > 1<<16 {
		g.paths = g.paths[len(g.paths)-1<<15:]
	}
	return rec, nil
}

// walkPool returns the retained walk paths, generating a few if none exist
// yet (query generation before any record generation).
func (g *Generator) walkPool() [][]int32 {
	for len(g.paths) < 16 {
		if w := g.Net.RandomWalk(g.rng, 16); w != nil {
			g.paths = append(g.paths, w)
		}
	}
	return g.paths
}

// QueryPath draws one query path of exactly nEdges edges (or as many as the
// sampled walk allows) from the walk-path pool: a contiguous subpath of a
// retained random walk, so path-aggregation queries line up with stored
// records.
func (g *Generator) QueryPath(nEdges int) []string {
	if nEdges < 1 {
		nEdges = 1
	}
	pool := g.walkPool()
	best := pool[g.rng.Intn(len(pool))]
	for tries := 0; tries < 16 && len(best) < nEdges+1; tries++ {
		cand := pool[g.rng.Intn(len(pool))]
		if len(cand) > len(best) {
			best = cand
		}
	}
	if len(best) > nEdges+1 {
		off := g.rng.Intn(len(best) - nEdges)
		best = best[off : off+nEdges+1]
	}
	out := make([]string, len(best))
	for i, n := range best {
		out[i] = g.Net.NodeName(n)
	}
	return out
}

// QueryGraph draws a query graph with roughly nEdges edges by unioning query
// paths. Small queries are single paths; larger ones union several, the way
// complex structural conditions are posed over multiple routes. Generation
// stops early when the walk pool saturates (it cannot produce more distinct
// edges than the pool covers), so very large requests may return fewer
// edges — matching how the paper's largest query graphs exceed any single
// record and return empty answers.
func (g *Generator) QueryGraph(nEdges int) *graph.Graph {
	out := graph.NewGraph()
	stall := 0
	for out.NumElements() < nEdges && stall < 20 {
		before := out.NumElements()
		nodes := g.QueryPath(minInt(nEdges-out.NumElements(), 12))
		for i := 0; i+1 < len(nodes); i++ {
			out.AddEdge(nodes[i], nodes[i+1])
		}
		if out.NumElements() == before {
			stall++
		} else {
			stall = 0
		}
	}
	return out
}

// UniformQueries draws n query graphs of size nEdges each, uniformly over
// the walk pool.
func (g *Generator) UniformQueries(n, nEdges int) []*graph.Graph {
	out := make([]*graph.Graph, n)
	for i := range out {
		out[i] = g.QueryGraph(nEdges)
	}
	return out
}

// UniformPathQueries draws n single-path query graphs with sizes in
// [minEdges, maxEdges], for path-aggregation workloads.
func (g *Generator) UniformPathQueries(n, minEdges, maxEdges int) []*graph.Graph {
	out := make([]*graph.Graph, n)
	for i := range out {
		size := minEdges
		if maxEdges > minEdges {
			size += g.rng.Intn(maxEdges - minEdges + 1)
		}
		nodes := g.QueryPath(size)
		q := graph.NewGraph()
		for j := 0; j+1 < len(nodes); j++ {
			q.AddEdge(nodes[j], nodes[j+1])
		}
		out[i] = q
	}
	return out
}

// ZipfQueries draws n queries from a pool of poolSize distinct query graphs
// with Zipf(s=1.2) rank skew, so popular queries recur — the increased
// sharing behind the larger view gains of Fig. 8.
func (g *Generator) ZipfQueries(n, poolSize, nEdges int, pathOnly bool) []*graph.Graph {
	if poolSize < 1 {
		poolSize = 1
	}
	pool := make([]*graph.Graph, poolSize)
	for i := range pool {
		if pathOnly {
			nodes := g.QueryPath(nEdges)
			q := graph.NewGraph()
			for j := 0; j+1 < len(nodes); j++ {
				q.AddEdge(nodes[j], nodes[j+1])
			}
			pool[i] = q
		} else {
			pool[i] = g.QueryGraph(nEdges)
		}
	}
	z := rand.NewZipf(g.rng, 1.2, 1, uint64(poolSize-1))
	out := make([]*graph.Graph, n)
	for i := range out {
		out[i] = pool[z.Uint64()]
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
