package workload

import (
	"math/rand"
	"testing"

	"grove/internal/graph"
	"grove/internal/query"
)

func TestRoadNetworkShape(t *testing.T) {
	n := NewRoadNetwork(1000)
	if n.NumNodes() == 0 {
		t.Fatal("empty network")
	}
	// Edge count should be near the target (within a factor of 2).
	if n.NumEdges() < 500 || n.NumEdges() > 2000 {
		t.Errorf("NumEdges = %d, want ≈1000", n.NumEdges())
	}
	// Forward orientation: every successor has a higher index.
	for i := int32(0); int(i) < n.NumNodes(); i++ {
		for _, s := range n.Successors(i) {
			if s <= i {
				t.Fatalf("edge %d→%d violates forward orientation", i, s)
			}
		}
	}
}

func TestRoadNetworkTinyTarget(t *testing.T) {
	n := NewRoadNetwork(1)
	if n.NumNodes() < 4 || n.NumEdges() == 0 {
		t.Errorf("tiny network: nodes=%d edges=%d", n.NumNodes(), n.NumEdges())
	}
}

func TestP2PNetworkShape(t *testing.T) {
	n := NewP2PNetwork(1000, 1)
	if n.NumEdges() < 500 || n.NumEdges() > 2000 {
		t.Errorf("NumEdges = %d, want ≈1000", n.NumEdges())
	}
	for i := int32(0); int(i) < n.NumNodes(); i++ {
		for _, s := range n.Successors(i) {
			if s <= i {
				t.Fatalf("edge %d→%d violates forward orientation", i, s)
			}
		}
	}
	// Power-law-ish: the maximum forward degree should be well above the mean.
	maxDeg, sum := 0, 0
	for i := range n.adj {
		d := len(n.adj[i])
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(sum) / float64(n.NumNodes())
	if float64(maxDeg) < 3*mean {
		t.Errorf("max degree %d vs mean %.1f: not heavy tailed", maxDeg, mean)
	}
}

func TestP2PNetworkDeterministic(t *testing.T) {
	a := NewP2PNetwork(500, 7)
	b := NewP2PNetwork(500, 7)
	if a.NumEdges() != b.NumEdges() || a.NumNodes() != b.NumNodes() {
		t.Fatal("same seed produced different networks")
	}
}

func TestRandomWalkIsForwardSimplePath(t *testing.T) {
	n := NewRoadNetwork(1000)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		w := n.RandomWalk(rng, 20)
		if w == nil {
			continue
		}
		if len(w) > 21 {
			t.Fatalf("walk too long: %d", len(w))
		}
		seen := map[int32]bool{}
		for j, node := range w {
			if seen[node] {
				t.Fatal("walk revisits a node")
			}
			seen[node] = true
			if j > 0 && w[j-1] >= node {
				t.Fatal("walk not forward")
			}
		}
	}
}

func TestGeneratorRecordBounds(t *testing.T) {
	net := NewRoadNetwork(1000)
	gen, err := NewGenerator(net, 35, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		rec, err := gen.NextRecord()
		if err != nil {
			t.Fatal(err)
		}
		n := rec.NumElements()
		if n < 1 || n > 100 {
			t.Fatalf("record %d has %d edges, want ≤ 100", i, n)
		}
		if rec.HasCycle() {
			t.Fatalf("record %d has a cycle despite forward orientation", i)
		}
		if rec.NumMeasures() != n {
			t.Fatalf("record %d: %d measures for %d edges", i, rec.NumMeasures(), n)
		}
	}
}

func TestGeneratorValidatesBounds(t *testing.T) {
	net := NewRoadNetwork(100)
	if _, err := NewGenerator(net, 0, 5, 1); err == nil {
		t.Error("minEdges=0 accepted")
	}
	if _, err := NewGenerator(net, 10, 5, 1); err == nil {
		t.Error("max<min accepted")
	}
	if _, err := NewGenerator(nil, 1, 5, 1); err == nil {
		t.Error("nil network accepted")
	}
}

func TestQueryPathSizes(t *testing.T) {
	net := NewRoadNetwork(1000)
	gen, err := NewGenerator(net, 35, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []int{1, 3, 6} {
		nodes := gen.QueryPath(want)
		if len(nodes) < 2 {
			t.Fatalf("QueryPath(%d) = %v", want, nodes)
		}
		if len(nodes)-1 > want {
			t.Fatalf("QueryPath(%d) returned %d edges", want, len(nodes)-1)
		}
	}
}

func TestQueryGraphSize(t *testing.T) {
	net := NewRoadNetwork(1000)
	gen, err := NewGenerator(net, 35, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []int{1, 5, 30} {
		g := gen.QueryGraph(want)
		if g.NumElements() < 1 {
			t.Fatalf("QueryGraph(%d) empty", want)
		}
		if g.NumElements() > want+12 {
			t.Fatalf("QueryGraph(%d) has %d edges", want, g.NumElements())
		}
	}
}

func TestZipfQueriesRepeat(t *testing.T) {
	net := NewRoadNetwork(1000)
	gen, err := NewGenerator(net, 35, 100, 6)
	if err != nil {
		t.Fatal(err)
	}
	qs := gen.ZipfQueries(100, 50, 4, true)
	if len(qs) != 100 {
		t.Fatalf("got %d queries", len(qs))
	}
	distinct := map[string]bool{}
	for _, q := range qs {
		key := ""
		for _, e := range q.Elements() {
			key += e.String()
		}
		distinct[key] = true
	}
	// Zipf skew must produce repeats: far fewer distinct than drawn.
	if len(distinct) > 80 {
		t.Errorf("%d distinct queries out of 100: no skew", len(distinct))
	}
}

func TestBuildDatasetStats(t *testing.T) {
	ds, err := Build(DatasetSpec{
		Name: "T", EdgeDomain: 500, NumRecords: 200,
		MinEdges: 10, MaxEdges: 30, Seed: 1, KeepRecords: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := ds.Stats
	if s.NumRecords != 200 {
		t.Errorf("NumRecords = %d", s.NumRecords)
	}
	if s.MinEdgesPerRec < 1 || s.MaxEdgesPerRec > 30 {
		t.Errorf("edge bounds = [%d,%d]", s.MinEdgesPerRec, s.MaxEdgesPerRec)
	}
	if s.AvgEdgesPerRec < float64(s.MinEdgesPerRec) || s.AvgEdgesPerRec > float64(s.MaxEdgesPerRec) {
		t.Errorf("avg %v outside [min,max]", s.AvgEdgesPerRec)
	}
	if s.TotalMeasures == 0 || s.SizeBytes == 0 {
		t.Error("empty stats")
	}
	if s.DistinctEdges == 0 || s.DistinctEdges > 2*500 {
		t.Errorf("DistinctEdges = %d", s.DistinctEdges)
	}
	if len(ds.Records) != 200 {
		t.Errorf("kept %d records", len(ds.Records))
	}
}

func TestBuildDense(t *testing.T) {
	ds, err := BuildDense("D", 200, 50, 0.2, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	want := int(0.2 * 200)
	if ds.Stats.MaxEdgesPerRec > want || ds.Stats.MinEdgesPerRec < want/2 {
		t.Errorf("dense records: min=%d max=%d want ≈%d",
			ds.Stats.MinEdgesPerRec, ds.Stats.MaxEdgesPerRec, want)
	}
	if _, err := BuildDense("D", 200, 10, 0.001, 2, false); err == nil {
		t.Error("absurd density accepted")
	}
}

func TestDatasetQueriesHaveAnswers(t *testing.T) {
	ds, err := Build(DatasetSpec{
		Name: "T", EdgeDomain: 500, NumRecords: 500,
		MinEdges: 20, MaxEdges: 50, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := query.NewEngine(ds.Rel, ds.Reg)
	queries := ds.Gen.UniformPathQueries(50, 2, 4)
	nonEmpty := 0
	for _, qg := range queries {
		res, err := eng.ExecuteGraphQuery(query.NewGraphQuery(qg))
		if err != nil {
			t.Fatal(err)
		}
		if res.NumRecords() > 0 {
			nonEmpty++
		}
	}
	// Queries are drawn from the record-generating walks, so a healthy
	// fraction must match stored records.
	if nonEmpty < 10 {
		t.Errorf("only %d/50 queries matched anything", nonEmpty)
	}
}

func TestDatasetRecordsMatchRelation(t *testing.T) {
	ds, err := Build(DatasetSpec{
		Name: "T", EdgeDomain: 300, NumRecords: 100,
		MinEdges: 5, MaxEdges: 15, Seed: 4, KeepRecords: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range ds.Records {
		for _, k := range rec.Elements() {
			id, ok := ds.Reg.Lookup(k)
			if !ok {
				t.Fatalf("record %d element %s unregistered", i, k)
			}
			if !ds.Rel.EdgeBitmap(id).Contains(uint32(i)) {
				t.Fatalf("record %d bit unset for %s", i, k)
			}
			m := rec.Measure(k)
			v, has := ds.Rel.MeasureColumn(id).Get(uint32(i))
			if !has || v != m.Value {
				t.Fatalf("record %d measure mismatch for %s", i, k)
			}
		}
	}
	_ = graph.NewGraph() // keep import for clarity of fixture types
}

func TestGeneratorDeterminism(t *testing.T) {
	build := func() []string {
		net := NewRoadNetwork(500)
		gen, err := NewGenerator(net, 10, 20, 77)
		if err != nil {
			t.Fatal(err)
		}
		var sigs []string
		for i := 0; i < 20; i++ {
			rec, err := gen.NextRecord()
			if err != nil {
				t.Fatal(err)
			}
			sig := ""
			for _, k := range rec.Elements() {
				sig += k.String()
			}
			sigs = append(sigs, sig)
		}
		return sigs
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs between identically-seeded runs", i)
		}
	}
}

func TestBuildDeterminism(t *testing.T) {
	s1, err := Build(NYSpec(100, 5))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Build(NYSpec(100, 5))
	if err != nil {
		t.Fatal(err)
	}
	if s1.Stats.TotalMeasures != s2.Stats.TotalMeasures ||
		s1.Stats.DistinctEdges != s2.Stats.DistinctEdges {
		t.Fatalf("same-seed builds differ: %+v vs %+v", s1.Stats, s2.Stats)
	}
}
