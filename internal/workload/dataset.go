package workload

import (
	"fmt"

	"grove/internal/colstore"
	"grove/internal/graph"
)

// DatasetSpec describes one synthesized dataset in the shape of Table 2.
type DatasetSpec struct {
	Name        string
	EdgeDomain  int // distinct edge ids in the universe
	NumRecords  int
	MinEdges    int // min edges per record
	MaxEdges    int // max edges per record
	Seed        int64
	IsP2P       bool // GNU-like instead of NY-like
	PartitionW  int  // vertical partition width (0 = default 1000)
	KeepRecords bool // retain the generated records (baseline loading, tests)
}

// NYSpec returns the NY-like dataset spec scaled to numRecords (paper
// defaults: 1000-edge domain, 35–100 edges per record).
func NYSpec(numRecords int, seed int64) DatasetSpec {
	return DatasetSpec{
		Name: "NY", EdgeDomain: 1000, NumRecords: numRecords,
		MinEdges: 35, MaxEdges: 100, Seed: seed,
	}
}

// GNUSpec returns the GNU-like dataset spec (45–100 edges per record).
func GNUSpec(numRecords int, seed int64) DatasetSpec {
	return DatasetSpec{
		Name: "GNU", EdgeDomain: 1000, NumRecords: numRecords,
		MinEdges: 45, MaxEdges: 100, Seed: seed, IsP2P: true,
	}
}

// DatasetStats summarizes a built dataset — the rows of Table 2.
type DatasetStats struct {
	Name           string
	NumRecords     int
	TotalMeasures  int64
	SizeBytes      int64
	DistinctEdges  int
	MinEdgesPerRec int
	MaxEdgesPerRec int
	AvgEdgesPerRec float64
}

func (s DatasetStats) String() string {
	return fmt.Sprintf("%s: records=%d measures=%d size=%dB distinctEdges=%d edges/rec min=%d max=%d avg=%.1f",
		s.Name, s.NumRecords, s.TotalMeasures, s.SizeBytes, s.DistinctEdges,
		s.MinEdgesPerRec, s.MaxEdgesPerRec, s.AvgEdgesPerRec)
}

// Dataset is a built dataset: the master relation, its registry, the
// generator (for drawing query workloads over the same walk pool), and
// optionally the raw records for loading into baseline systems.
type Dataset struct {
	Spec    DatasetSpec
	Rel     *colstore.Relation
	Reg     *graph.Registry
	Gen     *Generator
	Stats   DatasetStats
	Records []*graph.Record // nil unless Spec.KeepRecords
}

// Build synthesizes the dataset described by spec.
func Build(spec DatasetSpec) (*Dataset, error) {
	var net *Network
	if spec.IsP2P {
		net = NewP2PNetwork(spec.EdgeDomain, spec.Seed)
	} else {
		net = NewRoadNetwork(spec.EdgeDomain)
	}
	gen, err := NewGenerator(net, spec.MinEdges, spec.MaxEdges, spec.Seed)
	if err != nil {
		return nil, err
	}
	rel := colstore.NewRelation(spec.PartitionW)
	reg := graph.NewRegistry()
	ds := &Dataset{Spec: spec, Rel: rel, Reg: reg, Gen: gen}

	minE, maxE, sumE := int(^uint(0)>>1), 0, 0
	for i := 0; i < spec.NumRecords; i++ {
		rec, err := gen.NextRecord()
		if err != nil {
			return nil, fmt.Errorf("workload: record %d: %w", i, err)
		}
		graph.LoadRecord(rel, reg, rec)
		if spec.KeepRecords {
			ds.Records = append(ds.Records, rec)
		}
		n := rec.NumElements()
		if n < minE {
			minE = n
		}
		if n > maxE {
			maxE = n
		}
		sumE += n
	}
	rel.RunOptimize()
	ds.Stats = DatasetStats{
		Name:           spec.Name,
		NumRecords:     rel.NumRecords(),
		TotalMeasures:  rel.TotalMeasures(),
		SizeBytes:      rel.SizeBytes(),
		DistinctEdges:  reg.Len(),
		MinEdgesPerRec: minE,
		MaxEdgesPerRec: maxE,
		AvgEdgesPerRec: float64(sumE) / float64(maxInt(1, spec.NumRecords)),
	}
	return ds, nil
}

// BuildDense synthesizes a density-controlled dataset for the Fig. 3(c) and
// Fig. 4 experiments: every record contains density×edgeDomain edges.
func BuildDense(name string, edgeDomain, numRecords int, density float64, seed int64, keep bool) (*Dataset, error) {
	edges := int(density * float64(edgeDomain))
	if edges < 1 {
		return nil, fmt.Errorf("workload: density %v too low for domain %d", density, edgeDomain)
	}
	spec := DatasetSpec{
		Name: name, EdgeDomain: edgeDomain, NumRecords: numRecords,
		MinEdges: edges, MaxEdges: edges, Seed: seed, KeepRecords: keep,
	}
	return Build(spec)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
