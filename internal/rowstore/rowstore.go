// Package rowstore is grove's stand-in for the paper's baseline (iii): a
// commercial RDBMS with row-oriented storage, holding graph records as
// (recid, edgeid, measure) triplet rows with "appropriate indexes" (§7.2).
//
// The implementation reproduces the structural reasons the paper's row store
// loses by orders of magnitude: evaluating a k-edge graph query runs k−1
// self-joins over the triplet relation as index-nested-loop joins — one
// B-tree probe per intermediate row per join — and every access touches a
// full slotted-page tuple (header + all attributes), materializing fat
// intermediate results between the join operators. (The paper's gap is
// further widened by random HDD I/O, which an in-memory simulation cannot
// charge; the shape — slowest of the four systems, growing with query size
// and density — is preserved.)
package rowstore

import "grove/internal/graph"

// row is one triplet tuple. The padding models the per-tuple overhead of a
// slotted-page layout (tuple header, MVCC columns, alignment); it is copied
// whenever the executor materializes an intermediate result, as a row engine
// copies whole tuples between operators.
type row struct {
	rec     uint32
	edge    uint32
	measure float64
	header  [48]byte // tuple header: null bitmap, MVCC info, padding …
}

// rowOverheadBytes is the simulated on-disk footprint of one row.
const rowOverheadBytes = 64

// indexEntryBytes models a B-tree leaf entry (key + row pointer).
const indexEntryBytes = 12

// Store is the row-oriented triplet store.
type Store struct {
	rows []row
	// edgeIndex maps an edge id to the positions of its rows, ascending by
	// record id — the "appropriate index" on the edge column.
	edgeIndex map[uint32][]int32
	// edgeIDs interns edge keys; the row store keeps its own dictionary just
	// as a standalone RDBMS schema would.
	edgeIDs map[graph.EdgeKey]uint32
	numRecs uint32
}

// New returns an empty store.
func New() *Store {
	return &Store{
		edgeIndex: make(map[uint32][]int32),
		edgeIDs:   make(map[graph.EdgeKey]uint32),
	}
}

func (s *Store) edgeID(k graph.EdgeKey) uint32 {
	if id, ok := s.edgeIDs[k]; ok {
		return id
	}
	id := uint32(len(s.edgeIDs))
	s.edgeIDs[k] = id
	return id
}

// AddRecord appends a graph record, returning its record id. Elements
// without measures are stored with a 0 measure (the row exists either way —
// a row store cannot drop the attribute).
func (s *Store) AddRecord(rec *graph.Record) uint32 {
	id := s.numRecs
	s.numRecs++
	for _, k := range rec.Elements() {
		e := s.edgeID(k)
		m := rec.Measure(k)
		pos := int32(len(s.rows))
		s.rows = append(s.rows, row{rec: id, edge: e, measure: m.Value})
		s.edgeIndex[e] = append(s.edgeIndex[e], pos)
	}
	return id
}

// NumRecords returns the number of records loaded.
func (s *Store) NumRecords() int { return int(s.numRecs) }

// NumRows returns the triplet count.
func (s *Store) NumRows() int { return len(s.rows) }

// recordsWithEdge returns the ascending record ids holding the edge.
// Row positions per edge are appended in record order, so no sort is needed.
func (s *Store) recordsWithEdge(k graph.EdgeKey) []uint32 {
	id, ok := s.edgeIDs[k]
	if !ok {
		return nil
	}
	positions := s.edgeIndex[id]
	out := make([]uint32, len(positions))
	for i, p := range positions {
		out[i] = s.rows[p].rec
	}
	return out
}

// MatchQuery returns the record ids containing every query element,
// evaluated the way a row store executes the SQL self-join chain: an index
// scan on the first edge followed by an index-nested-loop join per further
// edge — one B-tree probe and one full-tuple read per intermediate row —
// with fat materialized intermediates between operators.
func (s *Store) MatchQuery(elements []graph.EdgeKey) []uint32 {
	if len(elements) == 0 {
		return nil
	}
	// The executor opens an index scan per query edge before joining: each
	// scan materializes its full tuples, whether or not the join above it
	// ends up consuming them.
	scans := make([][]row, len(elements))
	for i, k := range elements {
		scans[i] = s.scanEdgeRows(k)
	}
	// Left-deep index-nested-loop join chain over the scans.
	intermediate := scans[0]
	for _, k := range elements[1:] {
		if len(intermediate) == 0 {
			intermediate = nil
			break
		}
		id, ok := s.edgeIDs[k]
		if !ok {
			intermediate = nil
			break
		}
		posting := s.edgeIndex[id]
		next := make([]row, 0, len(intermediate))
		for _, outer := range intermediate {
			if pos, found := s.probe(posting, outer.rec); found {
				inner := s.rows[pos] // full-tuple read + copy
				inner.rec = outer.rec
				next = append(next, inner)
			}
		}
		intermediate = next
	}
	out := make([]uint32, len(intermediate))
	for i, r := range intermediate {
		out[i] = r.rec
	}
	return out
}

// scanEdgeRows materializes the full tuples of one edge's index scan.
func (s *Store) scanEdgeRows(k graph.EdgeKey) []row {
	id, ok := s.edgeIDs[k]
	if !ok {
		return nil
	}
	positions := s.edgeIndex[id]
	out := make([]row, len(positions))
	for i, p := range positions {
		out[i] = s.rows[p] // full-tuple copy into the operator's output
	}
	return out
}

// probe binary-searches an edge's posting list for a record id — the B-tree
// descent a row store pays per index-nested-loop probe.
func (s *Store) probe(posting []int32, rec uint32) (int32, bool) {
	lo, hi := 0, len(posting)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.rows[posting[mid]].rec < rec {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(posting) && s.rows[posting[lo]].rec == rec {
		return posting[lo], true
	}
	return 0, false
}

// FetchMeasures reads the measures of the given elements for the given
// record ids, simulating row-at-a-time access: one B-tree probe and one
// full-tuple read per (record, edge) pair. It returns the sum of the fetched
// measures (forcing the reads) and the number of values read.
func (s *Store) FetchMeasures(records []uint32, elements []graph.EdgeKey) (sum float64, n int64) {
	for _, k := range elements {
		id, ok := s.edgeIDs[k]
		if !ok {
			continue
		}
		posting := s.edgeIndex[id]
		for _, rec := range records {
			if pos, found := s.probe(posting, rec); found {
				tuple := s.rows[pos] // full-tuple read
				_ = tuple.header
				sum += tuple.measure
				n++
			}
		}
	}
	return sum, n
}

// AggregateAlongPath evaluates a path aggregation: match, then fold measures
// of the path edges per record with fold (identity start).
func (s *Store) AggregateAlongPath(elements []graph.EdgeKey, identity float64, fold func(a, b float64) float64) map[uint32]float64 {
	records := s.MatchQuery(elements)
	out := make(map[uint32]float64, len(records))
	for _, r := range records {
		out[r] = identity
	}
	for _, k := range elements {
		id, ok := s.edgeIDs[k]
		if !ok {
			continue
		}
		for _, p := range s.edgeIndex[id] {
			row := s.rows[p]
			if acc, hit := out[row.rec]; hit {
				out[row.rec] = fold(acc, row.measure)
			}
		}
	}
	return out
}

// DiskSizeBytes reports the simulated on-disk footprint: heap rows plus the
// edge B-tree.
func (s *Store) DiskSizeBytes() int64 {
	return int64(len(s.rows)) * (rowOverheadBytes + indexEntryBytes)
}
