package rowstore

import (
	"math/rand"
	"testing"

	"grove/internal/graph"
)

func mkRecord(t *testing.T, edges map[[2]string]float64) *graph.Record {
	t.Helper()
	r := graph.NewRecord()
	for e, v := range edges {
		if err := r.SetEdge(e[0], e[1], v); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestMatchQuery(t *testing.T) {
	s := New()
	s.AddRecord(mkRecord(t, map[[2]string]float64{{"A", "B"}: 1, {"B", "C"}: 2}))
	s.AddRecord(mkRecord(t, map[[2]string]float64{{"A", "B"}: 3, {"C", "D"}: 4}))
	s.AddRecord(mkRecord(t, map[[2]string]float64{{"B", "C"}: 5}))

	got := s.MatchQuery([]graph.EdgeKey{graph.E("A", "B")})
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("match (A,B) = %v", got)
	}
	got = s.MatchQuery([]graph.EdgeKey{graph.E("A", "B"), graph.E("B", "C")})
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("match (A,B)&(B,C) = %v", got)
	}
	if got := s.MatchQuery([]graph.EdgeKey{graph.E("X", "Y")}); len(got) != 0 {
		t.Errorf("match unknown = %v", got)
	}
	if got := s.MatchQuery(nil); got != nil {
		t.Errorf("match empty = %v", got)
	}
}

func TestFetchMeasures(t *testing.T) {
	s := New()
	s.AddRecord(mkRecord(t, map[[2]string]float64{{"A", "B"}: 1, {"B", "C"}: 2}))
	s.AddRecord(mkRecord(t, map[[2]string]float64{{"A", "B"}: 3}))
	sum, n := s.FetchMeasures([]uint32{0, 1}, []graph.EdgeKey{graph.E("A", "B"), graph.E("B", "C")})
	if sum != 6 || n != 3 {
		t.Errorf("FetchMeasures = %v,%d want 6,3", sum, n)
	}
}

func TestAggregateAlongPath(t *testing.T) {
	s := New()
	s.AddRecord(mkRecord(t, map[[2]string]float64{{"A", "B"}: 1, {"B", "C"}: 2}))
	s.AddRecord(mkRecord(t, map[[2]string]float64{{"A", "B"}: 3, {"B", "C"}: 4}))
	s.AddRecord(mkRecord(t, map[[2]string]float64{{"A", "B"}: 9}))
	got := s.AggregateAlongPath(
		[]graph.EdgeKey{graph.E("A", "B"), graph.E("B", "C")},
		0, func(a, b float64) float64 { return a + b })
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Errorf("aggregate = %v", got)
	}
}

func TestSizing(t *testing.T) {
	s := New()
	if s.DiskSizeBytes() != 0 {
		t.Error("empty store has size")
	}
	s.AddRecord(mkRecord(t, map[[2]string]float64{{"A", "B"}: 1, {"B", "C"}: 2}))
	if s.NumRows() != 2 || s.NumRecords() != 1 {
		t.Errorf("rows=%d records=%d", s.NumRows(), s.NumRecords())
	}
	if s.DiskSizeBytes() != 2*(rowOverheadBytes+indexEntryBytes) {
		t.Errorf("size = %d", s.DiskSizeBytes())
	}
}

func TestMatchRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := New()
	var recs []*graph.Record
	names := []string{"A", "B", "C", "D", "E"}
	for i := 0; i < 200; i++ {
		r := graph.NewRecord()
		for j := 0; j < 4+rng.Intn(6); j++ {
			a, b := names[rng.Intn(5)], names[rng.Intn(5)]
			if a == b {
				continue
			}
			if err := r.SetEdge(a, b, 1); err != nil {
				t.Fatal(err)
			}
		}
		recs = append(recs, r)
		s.AddRecord(r)
	}
	for trial := 0; trial < 50; trial++ {
		var q []graph.EdgeKey
		for j := 0; j < 1+rng.Intn(3); j++ {
			a, b := names[rng.Intn(5)], names[rng.Intn(5)]
			if a != b {
				q = append(q, graph.E(a, b))
			}
		}
		if len(q) == 0 {
			continue
		}
		got := s.MatchQuery(q)
		var want []uint32
		for i, r := range recs {
			all := true
			for _, k := range q {
				if !r.HasElement(k) {
					all = false
					break
				}
			}
			if all {
				want = append(want, uint32(i))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v want %v", trial, got, want)
			}
		}
	}
}
