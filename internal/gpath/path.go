// Package gpath implements the path formalism of paper §3.3 (after Bleco &
// Kotidis, BEWEB 2012): paths as the fundamental structural unit of graph
// queries, open-ended paths that exclude endpoint node measures, composite
// paths, the path-join operator ⋈, and maximal-path enumeration.
package gpath

import (
	"fmt"
	"strings"

	"grove/internal/graph"
)

// Path is a sequence of adjacent nodes. Open endpoints exclude the endpoint
// node's own measure from aggregation, analogous to an open numeric
// interval: [D,E,G] includes the node measures of D and G, (D,E,G) excludes
// them; internal node measures are always included.
type Path struct {
	Nodes     []string
	OpenStart bool
	OpenEnd   bool
}

// Closed returns the closed path over the given nodes.
func Closed(nodes ...string) Path { return Path{Nodes: nodes} }

// Open returns the fully open path over the given nodes.
func Open(nodes ...string) Path {
	return Path{Nodes: nodes, OpenStart: true, OpenEnd: true}
}

// Node returns the single-node closed path [x,x] that denotes node x.
func Node(x string) Path { return Path{Nodes: []string{x}} }

// Len returns the number of edges in the path (0 for a single node).
func (p Path) Len() int {
	if len(p.Nodes) == 0 {
		return 0
	}
	return len(p.Nodes) - 1
}

// Start returns the first node.
func (p Path) Start() string { return p.Nodes[0] }

// End returns the last node.
func (p Path) End() string { return p.Nodes[len(p.Nodes)-1] }

// Valid reports whether the path is well formed: non-empty, no repeated
// nodes (a path, not a walk — records are flattened to DAGs before path
// analysis, §6.2).
func (p Path) Valid() bool {
	if len(p.Nodes) == 0 {
		return false
	}
	seen := make(map[string]struct{}, len(p.Nodes))
	for _, n := range p.Nodes {
		if _, dup := seen[n]; dup {
			return false
		}
		seen[n] = struct{}{}
	}
	return true
}

// Edges returns the constituent proper edges in traversal order. These are
// the structural elements used for containment testing: a record contains
// the path iff it contains every edge.
func (p Path) Edges() []graph.EdgeKey {
	if len(p.Nodes) < 2 {
		return nil
	}
	out := make([]graph.EdgeKey, 0, len(p.Nodes)-1)
	for i := 0; i+1 < len(p.Nodes); i++ {
		out = append(out, graph.E(p.Nodes[i], p.Nodes[i+1]))
	}
	return out
}

// MeasuredNodes returns the nodes whose measures participate in aggregation
// along the path: all internal nodes, plus each endpoint when its side is
// closed. A single-node path contributes its node unless either side is
// open.
func (p Path) MeasuredNodes() []string {
	if len(p.Nodes) == 0 {
		return nil
	}
	if len(p.Nodes) == 1 {
		if p.OpenStart || p.OpenEnd {
			return nil
		}
		return []string{p.Nodes[0]}
	}
	var out []string
	if !p.OpenStart {
		out = append(out, p.Nodes[0])
	}
	out = append(out, p.Nodes[1:len(p.Nodes)-1]...)
	if !p.OpenEnd {
		out = append(out, p.Nodes[len(p.Nodes)-1])
	}
	return out
}

// Elements returns every structural element whose measure participates in
// aggregation along the path: the edges plus the measured nodes as [X,X]
// elements.
func (p Path) Elements() []graph.EdgeKey {
	out := p.Edges()
	for _, n := range p.MeasuredNodes() {
		out = append(out, graph.NodeKey(n))
	}
	return out
}

// ToGraph returns the path's edge structure as a graph.
func (p Path) ToGraph() *graph.Graph {
	g := graph.NewGraph()
	if len(p.Nodes) == 1 {
		g.AddNode(p.Nodes[0])
		return g
	}
	for _, e := range p.Edges() {
		g.AddElement(e)
	}
	return g
}

// ContainsSubpath reports whether q's node sequence appears as a contiguous
// subsequence of p's (edge containment; openness is ignored).
func (p Path) ContainsSubpath(q Path) bool {
	if len(q.Nodes) == 0 || len(q.Nodes) > len(p.Nodes) {
		return false
	}
	for i := 0; i+len(q.Nodes) <= len(p.Nodes); i++ {
		match := true
		for j := range q.Nodes {
			if p.Nodes[i+j] != q.Nodes[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// Equal reports structural equality including openness.
func (p Path) Equal(q Path) bool {
	if len(p.Nodes) != len(q.Nodes) || p.OpenStart != q.OpenStart || p.OpenEnd != q.OpenEnd {
		return false
	}
	for i := range p.Nodes {
		if p.Nodes[i] != q.Nodes[i] {
			return false
		}
	}
	return true
}

// Join implements the path-join operator ⋈ (§3.3): p ⋈ q concatenates the
// paths when p ends where q starts and exactly one of the two paths is open
// at the shared node (so its measure is counted exactly once). ok is false
// when the join is undefined.
func (p Path) Join(q Path) (Path, bool) {
	if len(p.Nodes) == 0 || len(q.Nodes) == 0 {
		return Path{}, false
	}
	if p.End() != q.Start() {
		return Path{}, false
	}
	if p.OpenEnd == q.OpenStart {
		// Both closed: shared node counted twice; both open: not counted.
		return Path{}, false
	}
	nodes := make([]string, 0, len(p.Nodes)+len(q.Nodes)-1)
	nodes = append(nodes, p.Nodes...)
	nodes = append(nodes, q.Nodes[1:]...)
	out := Path{Nodes: nodes, OpenStart: p.OpenStart, OpenEnd: q.OpenEnd}
	if !out.Valid() {
		// Concatenation revisits a node (e.g. [A,D,E] ⋈ (E,D,…)); the result
		// is not a path.
		return Path{}, false
	}
	return out, true
}

// String renders the path with interval-style brackets: [A,B,C], (A,B,C],
// [A,B,C), (A,B,C).
func (p Path) String() string {
	var sb strings.Builder
	if p.OpenStart {
		sb.WriteByte('(')
	} else {
		sb.WriteByte('[')
	}
	sb.WriteString(strings.Join(p.Nodes, ","))
	if p.OpenEnd {
		sb.WriteByte(')')
	} else {
		sb.WriteByte(']')
	}
	return sb.String()
}

// Composite is a composite path [A,G]* — a set of paths (§3.3).
type Composite struct {
	Paths []Path
}

// Join applies ⋈ pairwise between all paths of c and d, keeping the defined
// results.
func (c Composite) Join(d Composite) Composite {
	var out Composite
	for _, p := range c.Paths {
		for _, q := range d.Paths {
			if r, ok := p.Join(q); ok {
				out.Paths = append(out.Paths, r)
			}
		}
	}
	return out
}

// Len returns the number of member paths.
func (c Composite) Len() int { return len(c.Paths) }

func (c Composite) String() string {
	parts := make([]string, len(c.Paths))
	for i, p := range c.Paths {
		parts[i] = p.String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// enumeration limits guard against pathological query graphs.
const maxEnumeratedPaths = 100000

// AllPaths returns every simple path in g from one of sources to one of
// targets, in deterministic order. The openness flags are applied to every
// returned path. An error is returned if enumeration exceeds an internal
// safety limit.
func AllPaths(g *graph.Graph, sources, targets []string, openStart, openEnd bool) ([]Path, error) {
	targetSet := make(map[string]struct{}, len(targets))
	for _, t := range targets {
		targetSet[t] = struct{}{}
	}
	var out []Path
	var stack []string
	onStack := make(map[string]struct{})
	var visit func(n string) error
	visit = func(n string) error {
		stack = append(stack, n)
		onStack[n] = struct{}{}
		defer func() {
			stack = stack[:len(stack)-1]
			delete(onStack, n)
		}()
		if _, hit := targetSet[n]; hit && len(stack) >= 1 {
			if len(out) >= maxEnumeratedPaths {
				return fmt.Errorf("gpath: more than %d paths", maxEnumeratedPaths)
			}
			nodes := make([]string, len(stack))
			copy(nodes, stack)
			out = append(out, Path{Nodes: nodes, OpenStart: openStart, OpenEnd: openEnd})
		}
		for _, s := range g.Successors(n) {
			if _, cyc := onStack[s]; cyc {
				continue
			}
			if err := visit(s); err != nil {
				return err
			}
		}
		return nil
	}
	for _, s := range sources {
		if !g.HasNode(s) {
			continue
		}
		if err := visit(s); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MaximalPaths returns the maximal paths of g: the simple paths from the
// sources of g to its terminals (§3.3). For a DAG these are exactly the
// paths not contained in any other path of g.
func MaximalPaths(g *graph.Graph) ([]Path, error) {
	return AllPaths(g, g.Sources(), g.Terminals(), false, false)
}

// Between returns the composite path [from, to]* of g: all simple paths
// between the two node sets, closed at both ends.
func Between(g *graph.Graph, from, to []string) (Composite, error) {
	paths, err := AllPaths(g, from, to, false, false)
	if err != nil {
		return Composite{}, err
	}
	return Composite{Paths: paths}, nil
}
