package gpath

import (
	"fmt"

	"grove/internal/graph"
)

// PathsThrough implements the region expression of §3.3:
//
//	[Src(Gq), Src(R)) ⋈ [Src(R), Ter(R)] ⋈ (Ter(R), Ter(Gq)]
//
// — the composite path of all maximal paths of g that enter region r at one
// of its sources, traverse it to one of its terminals, and continue to a
// terminal of g. Paths of g that bypass the region (the paper's [C,H,K]
// example) are excluded by construction, because the path-join requires the
// region segment.
//
// The middle segment is enumerated within r's own edges, so the region's
// internal structure can also be swapped for a materialized aggregate view
// when only its precomputed measures matter.
func PathsThrough(g, r *graph.Graph, opts ...RegionOption) (Composite, error) {
	var cfg regionConfig
	for _, o := range opts {
		o(&cfg)
	}
	if r.NumElements() == 0 {
		return Composite{}, fmt.Errorf("gpath: empty region")
	}
	for _, n := range r.Nodes() {
		if !g.HasNode(n) {
			return Composite{}, fmt.Errorf("gpath: region node %q not in graph", n)
		}
	}
	rSrc, rTer := r.Sources(), r.Terminals()

	// [Src(Gq), Src(R)): closed at the query source, open where the region
	// begins (the region's own node measures belong to the middle segment).
	head, err := AllPaths(g, g.Sources(), rSrc, false, true)
	if err != nil {
		return Composite{}, err
	}
	// Exclude head paths that wander through the region interior before
	// reaching a region source: entering twice would double-count.
	head = filterPaths(head, func(p Path) bool {
		for _, n := range p.Nodes[:len(p.Nodes)-1] {
			if r.HasNode(n) {
				return false
			}
		}
		return true
	})

	// [Src(R), Ter(R)]: the region traversal, closed on both sides, using
	// only region edges.
	middle, err := AllPaths(r, rSrc, rTer, false, false)
	if err != nil {
		return Composite{}, err
	}

	// (Ter(R), Ter(Gq)]: open where the region ends, closed at the query
	// terminal.
	tail, err := AllPaths(g, rTer, g.Terminals(), true, false)
	if err != nil {
		return Composite{}, err
	}
	tail = filterPaths(tail, func(p Path) bool {
		for _, n := range p.Nodes[1:] {
			if r.HasNode(n) {
				return false
			}
		}
		return true
	})

	out := Composite{Paths: head}.Join(Composite{Paths: middle}).Join(Composite{Paths: tail})
	if cfg.requireAll {
		// Keep only paths visiting every region node (the §3.3 "articles
		// that pass through all hubs of region 2" reading).
		out.Paths = filterPaths(out.Paths, func(p Path) bool {
			seen := make(map[string]struct{}, len(p.Nodes))
			for _, n := range p.Nodes {
				seen[n] = struct{}{}
			}
			for _, n := range r.Nodes() {
				if _, ok := seen[n]; !ok {
					return false
				}
			}
			return true
		})
	}
	return out, nil
}

// RegionOption tunes PathsThrough.
type RegionOption func(*regionConfig)

type regionConfig struct {
	requireAll bool
}

// VisitAllRegionNodes keeps only paths that traverse every node of the
// region, not just some source→terminal route through it.
func VisitAllRegionNodes() RegionOption {
	return func(c *regionConfig) { c.requireAll = true }
}

func filterPaths(in []Path, keep func(Path) bool) []Path {
	out := in[:0]
	for _, p := range in {
		if keep(p) {
			out = append(out, p)
		}
	}
	return out
}

// Coalesce returns a copy of g where the region's nodes are replaced by a
// single aggregate node (§2's "aggregate node" / the zoom-out operator of
// the authors' prior work): edges internal to the region disappear, edges
// crossing the region boundary are redirected to the aggregate node. The
// region's hidden detail is then typically served by a materialized
// aggregate view keyed on the aggregate node's boundary paths.
func Coalesce(g *graph.Graph, region *graph.Graph, aggNode string) (*graph.Graph, error) {
	if region.NumElements() == 0 && len(region.Nodes()) == 0 {
		return nil, fmt.Errorf("gpath: empty region")
	}
	if g.HasNode(aggNode) && !region.HasNode(aggNode) {
		return nil, fmt.Errorf("gpath: aggregate node %q already exists outside the region", aggNode)
	}
	inRegion := make(map[string]struct{})
	for _, n := range region.Nodes() {
		inRegion[n] = struct{}{}
	}
	rename := func(n string) string {
		if _, ok := inRegion[n]; ok {
			return aggNode
		}
		return n
	}
	out := graph.NewGraph()
	for _, k := range g.Elements() {
		if k.IsNode() {
			out.AddNode(rename(k.From))
			continue
		}
		from, to := rename(k.From), rename(k.To)
		if from == to && from == aggNode {
			continue // internal region edge: hidden at this granularity
		}
		out.AddEdge(from, to)
	}
	out.AddNode(aggNode)
	return out, nil
}
