package gpath

import (
	"testing"

	"grove/internal/graph"
)

// region2 is the Fig. 1 region 2: hubs D, E, F, G with edges (D,E), (E,G),
// (B,F)? No — region 2 contains D, E, F, G and the internal edges (D,E),
// (E,G). (B,F) crosses the boundary. For the §3.3 expression the region
// graph holds the internal structure only.
func region2() *graph.Graph {
	r := graph.NewGraph()
	r.AddEdge("D", "E")
	r.AddEdge("E", "G")
	r.AddNode("F")
	return r
}

func TestPathsThroughRegion(t *testing.T) {
	g := paperFig1()
	comp, err := PathsThrough(g, region2())
	if err != nil {
		t.Fatal(err)
	}
	// Region sources: {D, F are sources? F has no incoming edges *inside the
	// region*, D likewise}. Region terminals: {G, F}. Maximal paths of g
	// passing through D..G: A,D,E,G,I and A,D,E,G,K. F is an isolated region
	// node: head [A,B,F) joins middle [F,F]? Single node path [F] from
	// AllPaths(r, ...) has Len 0 — middle requires source→terminal paths;
	// [F] is such a path (F is both). Then (F, J, K] continues. So A,B,F,J,K
	// also qualifies.
	found := map[string]bool{}
	for _, p := range comp.Paths {
		found[p.String()] = true
	}
	for _, want := range []string{"[A,D,E,G,I]", "[A,D,E,G,K]", "[A,B,F,J,K]"} {
		if !found[want] {
			t.Errorf("missing path %s; got %v", want, comp.Paths)
		}
	}
	// The paper's point: [C,H,K] does NOT pass through region 2.
	if found["[C,H,K]"] {
		t.Error("[C,H,K] wrongly included")
	}
}

func TestPathsThroughVisitAll(t *testing.T) {
	g := paperFig1()
	comp, err := PathsThrough(g, region2(), VisitAllRegionNodes())
	if err != nil {
		t.Fatal(err)
	}
	// No single maximal path visits D, E, G AND F.
	if comp.Len() != 0 {
		t.Errorf("VisitAllRegionNodes kept %v", comp.Paths)
	}

	small := graph.NewGraph()
	small.AddEdge("D", "E")
	small.AddEdge("E", "G")
	comp, err = PathsThrough(g, small, VisitAllRegionNodes())
	if err != nil {
		t.Fatal(err)
	}
	if comp.Len() != 2 { // A,D,E,G,I and A,D,E,G,K
		t.Errorf("paths through D-E-G = %v", comp.Paths)
	}
}

func TestPathsThroughErrors(t *testing.T) {
	g := paperFig1()
	if _, err := PathsThrough(g, graph.NewGraph()); err == nil {
		t.Error("empty region accepted")
	}
	bad := graph.NewGraph()
	bad.AddEdge("X", "Y")
	if _, err := PathsThrough(g, bad); err == nil {
		t.Error("region outside graph accepted")
	}
}

func TestCoalesce(t *testing.T) {
	g := paperFig1()
	r := graph.NewGraph()
	r.AddEdge("D", "E")
	r.AddEdge("E", "G")
	out, err := Coalesce(g, r, "R2")
	if err != nil {
		t.Fatal(err)
	}
	if !out.HasEdge("A", "R2") {
		t.Error("boundary edge (A,D) not redirected to (A,R2)")
	}
	if !out.HasEdge("R2", "I") || !out.HasEdge("R2", "K") {
		t.Error("outgoing boundary edges not redirected")
	}
	if out.HasNode("D") || out.HasNode("E") || out.HasNode("G") {
		t.Error("region internals leaked")
	}
	if !out.HasEdge("A", "B") || !out.HasEdge("C", "H") {
		t.Error("unrelated edges lost")
	}
	// Internal edges (D,E),(E,G) are hidden; the aggregate node itself is a
	// [R2,R2] node element.
	if !out.HasNode("R2") {
		t.Error("aggregate node missing")
	}
	if out.HasEdge("R2", "R2") {
		t.Error("internal edge survived as a proper self-edge")
	}
}

func TestCoalesceErrors(t *testing.T) {
	g := paperFig1()
	if _, err := Coalesce(g, graph.NewGraph(), "R"); err == nil {
		t.Error("empty region accepted")
	}
	r := graph.NewGraph()
	r.AddEdge("D", "E")
	if _, err := Coalesce(g, r, "A"); err == nil {
		t.Error("aggregate node clashing with existing node accepted")
	}
}

func TestCoalesceIdempotentName(t *testing.T) {
	// Using a region node's own name as the aggregate node is allowed.
	g := paperFig1()
	r := graph.NewGraph()
	r.AddEdge("D", "E")
	out, err := Coalesce(g, r, "D")
	if err != nil {
		t.Fatal(err)
	}
	if !out.HasEdge("A", "D") || !out.HasEdge("D", "G") {
		t.Errorf("coalesce onto member name failed: %v", out.Elements())
	}
}
