package gpath

import (
	"testing"

	"grove/internal/graph"
)

func TestPathBasics(t *testing.T) {
	p := Closed("A", "D", "E", "G", "I")
	if p.Len() != 4 {
		t.Errorf("Len = %d, want 4", p.Len())
	}
	if p.Start() != "A" || p.End() != "I" {
		t.Error("endpoints wrong")
	}
	if !p.Valid() {
		t.Error("valid path reported invalid")
	}
	edges := p.Edges()
	want := []graph.EdgeKey{graph.E("A", "D"), graph.E("D", "E"), graph.E("E", "G"), graph.E("G", "I")}
	if len(edges) != len(want) {
		t.Fatalf("Edges = %v", edges)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("Edges[%d] = %v, want %v", i, edges[i], want[i])
		}
	}
}

func TestPathValidity(t *testing.T) {
	if (Path{}).Valid() {
		t.Error("empty path valid")
	}
	if !Node("A").Valid() {
		t.Error("single node invalid")
	}
	if Closed("A", "B", "A").Valid() {
		t.Error("repeated node accepted")
	}
}

func TestMeasuredNodesOpenness(t *testing.T) {
	cases := []struct {
		p    Path
		want []string
	}{
		{Closed("D", "E", "G"), []string{"D", "E", "G"}},
		{Open("D", "E", "G"), []string{"E"}},
		{Path{Nodes: []string{"D", "E", "G"}, OpenEnd: true}, []string{"D", "E"}},
		{Path{Nodes: []string{"D", "E", "G"}, OpenStart: true}, []string{"E", "G"}},
		{Node("A"), []string{"A"}},
		{Open("A"), nil},
	}
	for _, c := range cases {
		got := c.p.MeasuredNodes()
		if len(got) != len(c.want) {
			t.Errorf("%s MeasuredNodes = %v, want %v", c.p, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s MeasuredNodes = %v, want %v", c.p, got, c.want)
			}
		}
	}
}

func TestElementsIncludeNodeKeys(t *testing.T) {
	p := Path{Nodes: []string{"D", "E", "G"}, OpenStart: true, OpenEnd: true}
	elems := p.Elements()
	// 2 edges + node E.
	if len(elems) != 3 {
		t.Fatalf("Elements = %v", elems)
	}
	if elems[2] != graph.NodeKey("E") {
		t.Errorf("Elements = %v", elems)
	}
}

func TestPathString(t *testing.T) {
	cases := map[string]Path{
		"[A,B,C]": Closed("A", "B", "C"),
		"(A,B,C)": Open("A", "B", "C"),
		"[A,B,C)": {Nodes: []string{"A", "B", "C"}, OpenEnd: true},
		"(A,B,C]": {Nodes: []string{"A", "B", "C"}, OpenStart: true},
	}
	for want, p := range cases {
		if got := p.String(); got != want {
			t.Errorf("String = %s, want %s", got, want)
		}
	}
}

func TestPathJoinPaperExample(t *testing.T) {
	// [A,B,F) ⋈ [F,J,K) = [A,B,F,J,K) (§3.3).
	p1 := Path{Nodes: []string{"A", "B", "F"}, OpenEnd: true}
	p2 := Path{Nodes: []string{"F", "J", "K"}, OpenEnd: true}
	got, ok := p1.Join(p2)
	if !ok {
		t.Fatal("join failed")
	}
	want := Path{Nodes: []string{"A", "B", "F", "J", "K"}, OpenEnd: true}
	if !got.Equal(want) {
		t.Fatalf("join = %s, want %s", got, want)
	}
}

func TestPathJoinRejectsDoubleCount(t *testing.T) {
	// [A,D,E] ⋈ [E,G,I] undefined: E would be counted twice (§3.3).
	if _, ok := Closed("A", "D", "E").Join(Closed("E", "G", "I")); ok {
		t.Error("closed-closed join accepted")
	}
	// Both open at the shared node: E counted zero times — also undefined.
	p1 := Path{Nodes: []string{"A", "E"}, OpenEnd: true}
	p2 := Path{Nodes: []string{"E", "G"}, OpenStart: true}
	if _, ok := p1.Join(p2); ok {
		t.Error("open-open join accepted")
	}
}

func TestPathJoinMismatchedEndpoints(t *testing.T) {
	p1 := Path{Nodes: []string{"A", "B"}, OpenEnd: true}
	p2 := Path{Nodes: []string{"C", "D"}}
	if _, ok := p1.Join(p2); ok {
		t.Error("disjoint join accepted")
	}
	if _, ok := (Path{}).Join(p2); ok {
		t.Error("empty join accepted")
	}
}

func TestPathJoinRevisit(t *testing.T) {
	p1 := Path{Nodes: []string{"A", "B", "C"}, OpenEnd: true}
	p2 := Path{Nodes: []string{"C", "A"}}
	if _, ok := p1.Join(p2); ok {
		t.Error("join that revisits A accepted")
	}
}

func TestContainsSubpath(t *testing.T) {
	p := Closed("A", "B", "C", "D")
	if !p.ContainsSubpath(Closed("B", "C")) {
		t.Error("subpath not found")
	}
	if !p.ContainsSubpath(p) {
		t.Error("self subpath not found")
	}
	if p.ContainsSubpath(Closed("A", "C")) {
		t.Error("non-contiguous pair accepted")
	}
	if p.ContainsSubpath(Closed("A", "B", "C", "D", "E")) {
		t.Error("longer path accepted")
	}
	if p.ContainsSubpath(Path{}) {
		t.Error("empty path accepted")
	}
}

func TestCompositeJoin(t *testing.T) {
	c := Composite{Paths: []Path{
		{Nodes: []string{"A", "B", "F"}, OpenEnd: true},
		{Nodes: []string{"A", "D"}, OpenEnd: true},
	}}
	d := Composite{Paths: []Path{
		{Nodes: []string{"F", "J", "K"}},
		{Nodes: []string{"D", "E"}},
	}}
	got := c.Join(d)
	if got.Len() != 2 {
		t.Fatalf("composite join size = %d, want 2: %s", got.Len(), got)
	}
}

func paperFig1() *graph.Graph {
	g := graph.NewGraph()
	for _, e := range [][2]string{
		{"A", "D"}, {"A", "B"}, {"B", "F"}, {"C", "H"},
		{"D", "E"}, {"E", "G"}, {"F", "J"}, {"G", "I"},
		{"H", "K"}, {"J", "K"}, {"G", "K"},
	} {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func TestMaximalPathsFig1(t *testing.T) {
	g := paperFig1()
	paths, err := MaximalPaths(g)
	if err != nil {
		t.Fatal(err)
	}
	// Sources {A, C}, terminals {I, K}:
	// A,D,E,G,I / A,D,E,G,K / A,B,F,J,K / C,H,K.
	if len(paths) != 4 {
		t.Fatalf("MaximalPaths = %v", paths)
	}
	found := map[string]bool{}
	for _, p := range paths {
		found[p.String()] = true
	}
	for _, want := range []string{"[A,D,E,G,I]", "[A,D,E,G,K]", "[A,B,F,J,K]", "[C,H,K]"} {
		if !found[want] {
			t.Errorf("missing maximal path %s (got %v)", want, paths)
		}
	}
}

func TestAllPathsOpenness(t *testing.T) {
	g := paperFig1()
	paths, err := AllPaths(g, []string{"A"}, []string{"G"}, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0].String() != "(A,D,E,G)" {
		t.Fatalf("AllPaths = %v", paths)
	}
}

func TestAllPathsMissingNodes(t *testing.T) {
	g := paperFig1()
	paths, err := AllPaths(g, []string{"ZZ"}, []string{"I"}, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 0 {
		t.Fatalf("paths from missing node: %v", paths)
	}
}

func TestAllPathsWithCycle(t *testing.T) {
	g := graph.NewGraph()
	g.AddEdge("A", "B")
	g.AddEdge("B", "A")
	g.AddEdge("B", "C")
	paths, err := AllPaths(g, []string{"A"}, []string{"C"}, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0].String() != "[A,B,C]" {
		t.Fatalf("AllPaths through cycle = %v", paths)
	}
}

func TestBetween(t *testing.T) {
	g := paperFig1()
	c, err := Between(g, []string{"A"}, []string{"K"})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 { // A,D,E,G,K and A,B,F,J,K
		t.Fatalf("Between = %s", c)
	}
}

func TestSingleNodeAsTarget(t *testing.T) {
	g := paperFig1()
	paths, err := AllPaths(g, []string{"A"}, []string{"A"}, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0].Len() != 0 {
		t.Fatalf("self path = %v", paths)
	}
}

func TestToGraph(t *testing.T) {
	p := Closed("A", "B", "C")
	g := p.ToGraph()
	if !g.HasEdge("A", "B") || !g.HasEdge("B", "C") || g.NumElements() != 2 {
		t.Errorf("ToGraph = %v", g.Elements())
	}
	ng := Node("X").ToGraph()
	if !ng.HasElement(graph.NodeKey("X")) {
		t.Error("single-node ToGraph missing node element")
	}
}

// --- property-style tests ----------------------------------------------------

func TestJoinPreservesElementMultiset(t *testing.T) {
	// When p ⋈ q is defined, the joined path's measured elements are exactly
	// the union of the operands' (the shared endpoint counted once).
	p1 := Path{Nodes: []string{"A", "B", "C"}, OpenEnd: true}
	p2 := Path{Nodes: []string{"C", "D"}}
	joined, ok := p1.Join(p2)
	if !ok {
		t.Fatal("join failed")
	}
	count := func(paths ...Path) map[graph.EdgeKey]int {
		m := map[graph.EdgeKey]int{}
		for _, p := range paths {
			for _, e := range p.Elements() {
				m[e]++
			}
		}
		return m
	}
	want := count(p1, p2)
	got := count(joined)
	if len(got) != len(want) {
		t.Fatalf("element sets differ: %v vs %v", got, want)
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("element %s: joined %d, operands %d", k, got[k], n)
		}
	}
}

func TestJoinAssociativityWhenDefined(t *testing.T) {
	a := Path{Nodes: []string{"A", "B"}, OpenEnd: true}
	b := Path{Nodes: []string{"B", "C"}, OpenEnd: true}
	c := Path{Nodes: []string{"C", "D"}}
	ab, ok := a.Join(b)
	if !ok {
		t.Fatal("a⋈b failed")
	}
	left, ok := ab.Join(c)
	if !ok {
		t.Fatal("(a⋈b)⋈c failed")
	}
	bc, ok := b.Join(c)
	if !ok {
		t.Fatal("b⋈c failed")
	}
	right, ok := a.Join(bc)
	if !ok {
		t.Fatal("a⋈(b⋈c) failed")
	}
	if !left.Equal(right) {
		t.Fatalf("join not associative: %s vs %s", left, right)
	}
}

func TestMaximalPathsAreMaximal(t *testing.T) {
	g := paperFig1()
	paths, err := MaximalPaths(g)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range paths {
		for j, q := range paths {
			if i != j && q.ContainsSubpath(p) {
				t.Errorf("maximal path %s contained in %s", p, q)
			}
		}
	}
}
