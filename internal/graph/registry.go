package graph

import (
	"encoding/json"
	"fmt"
	"sync"

	"grove/internal/colstore"
	"grove/internal/fsio"
)

// Registry implements the "universally adopted schema" of §3.1: it assigns a
// stable column id to every structural element name so all records and
// queries refer to common identifiers. Ids are dense (0, 1, 2, …) and double
// as the column indexes of the master relation.
//
// The registry is safe for concurrent use: loaders assign ids while query
// engines look names up, so both paths take an internal RWMutex (lookups
// share the read lock).
type Registry struct {
	mu   sync.RWMutex
	ids  map[EdgeKey]colstore.EdgeID
	keys []EdgeKey
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ids: make(map[EdgeKey]colstore.EdgeID)}
}

// ID returns the edge id of k, assigning the next free id on first use.
func (r *Registry) ID(k EdgeKey) colstore.EdgeID {
	r.mu.RLock()
	id, ok := r.ids[k]
	r.mu.RUnlock()
	if ok {
		return id
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.ids[k]; ok { // assigned between the two locks
		return id
	}
	id = colstore.EdgeID(len(r.keys))
	r.ids[k] = id
	r.keys = append(r.keys, k)
	return id
}

// Lookup returns the id of k without assigning.
func (r *Registry) Lookup(k EdgeKey) (colstore.EdgeID, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id, ok := r.ids[k]
	return id, ok
}

// Key returns the element named by id.
func (r *Registry) Key(id colstore.EdgeID) (EdgeKey, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if int(id) >= len(r.keys) {
		return EdgeKey{}, false
	}
	return r.keys[id], true
}

// Len returns the number of registered elements (the edge-domain size).
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.keys)
}

// IDs maps a set of element keys to ids, assigning as needed.
func (r *Registry) IDs(keys []EdgeKey) []colstore.EdgeID {
	out := make([]colstore.EdgeID, len(keys))
	for i, k := range keys {
		out[i] = r.ID(k)
	}
	return out
}

// GraphIDs returns the ids of all elements of g, assigning as needed.
func (r *Registry) GraphIDs(g *Graph) []colstore.EdgeID {
	return r.IDs(g.Elements())
}

// Save writes the registry to path as JSON.
func (r *Registry) Save(path string) error { return r.SaveFS(fsio.OS(), path) }

// SaveFS is Save against an explicit filesystem, so the fault-injection
// tests can crash a coordinated save inside the registry write too.
func (r *Registry) SaveFS(fs fsio.FS, path string) error {
	type entry struct {
		From string `json:"from"`
		To   string `json:"to"`
	}
	r.mu.RLock()
	entries := make([]entry, len(r.keys))
	for i, k := range r.keys {
		entries[i] = entry{From: k.From, To: k.To}
	}
	r.mu.RUnlock()
	b, err := json.Marshal(entries)
	if err != nil {
		return fmt.Errorf("graph: save registry: %w", err)
	}
	// Durable and atomic (temp + fsync + rename): a crash mid-save must not
	// leave a truncated registry next to an intact relation snapshot.
	return fsio.WriteFileAtomic(fs, path, b)
}

// LoadRegistry reads a registry written by Save.
func LoadRegistry(path string) (*Registry, error) {
	return LoadRegistryFS(fsio.OS(), path)
}

// LoadRegistryFS is LoadRegistry against an explicit filesystem.
func LoadRegistryFS(fs fsio.FS, path string) (*Registry, error) {
	b, err := fsio.ReadFile(fs, path)
	if err != nil {
		return nil, fmt.Errorf("graph: load registry: %w", err)
	}
	type entry struct {
		From string `json:"from"`
		To   string `json:"to"`
	}
	var entries []entry
	if err := json.Unmarshal(b, &entries); err != nil {
		return nil, fmt.Errorf("graph: load registry: %w", err)
	}
	r := NewRegistry()
	for _, e := range entries {
		r.ID(EdgeKey{From: e.From, To: e.To})
	}
	return r, nil
}

// LoadRecord appends a record to the master relation, assigning ids for any
// new elements, and returns the record id. Records containing cycles are
// flattened to DAGs first (§6.2), so path aggregation downstream behaves as
// intended.
func LoadRecord(rel *colstore.Relation, reg *Registry, rec *Record) uint32 {
	if rec.HasCycle() {
		rec = FlattenToDAG(rec)
	}
	id := rel.NewRecord()
	names := rec.MeasureNames()
	for _, k := range rec.Elements() {
		eid := reg.ID(k)
		if m := rec.Measure(k); m.Valid {
			rel.SetEdgeMeasure(id, eid, m.Value)
		} else {
			rel.SetEdge(id, eid)
		}
		for _, name := range names {
			if m := rec.MeasureNamed(k, name); m.Valid {
				rel.SetEdgeMeasureNamed(id, eid, name, m.Value)
			}
		}
	}
	rel.UpdateViewsForRecord(id)
	return id
}
