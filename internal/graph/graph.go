// Package graph implements grove's graph data model (paper §3.1): directed
// graph records over a universe of named nodes, with numeric measures on
// nodes and edges, plus the universal edge-id registry that maps structural
// elements to master-relation columns and the DAG-flattening preprocessing
// step for cyclic traces (§6.2).
package graph

import (
	"fmt"
	"sort"
)

// EdgeKey names a structural element. A node X is represented as the special
// self-edge [X,X] (§4.1), so nodes and edges are treated identically by the
// storage layer.
type EdgeKey struct {
	From string
	To   string
}

// NodeKey returns the EdgeKey representing node x.
func NodeKey(x string) EdgeKey { return EdgeKey{From: x, To: x} }

// E is shorthand for constructing an edge key.
func E(from, to string) EdgeKey { return EdgeKey{From: from, To: to} }

// IsNode reports whether the key denotes a node element.
func (k EdgeKey) IsNode() bool { return k.From == k.To }

func (k EdgeKey) String() string {
	if k.IsNode() {
		return "[" + k.From + "]"
	}
	return "(" + k.From + "," + k.To + ")"
}

// Less orders edge keys lexicographically; used for deterministic iteration.
func (k EdgeKey) Less(o EdgeKey) bool {
	if k.From != o.From {
		return k.From < o.From
	}
	return k.To < o.To
}

// Graph is a directed graph over named nodes. It stores the structural
// elements (proper edges and node elements) of a record or a query. The zero
// value is not usable; call NewGraph.
type Graph struct {
	elems map[EdgeKey]struct{}
	out   map[string]map[string]struct{} // proper edges only
	in    map[string]map[string]struct{}
	nodes map[string]struct{} // endpoint or explicit node element
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		elems: make(map[EdgeKey]struct{}),
		out:   make(map[string]map[string]struct{}),
		in:    make(map[string]map[string]struct{}),
		nodes: make(map[string]struct{}),
	}
}

// AddEdge adds the directed edge (from, to). Adding a self-loop (from == to)
// registers the node element instead, mirroring the [X,X] convention.
func (g *Graph) AddEdge(from, to string) {
	if from == to {
		g.AddNode(from)
		return
	}
	g.elems[E(from, to)] = struct{}{}
	addAdj(g.out, from, to)
	addAdj(g.in, to, from)
	g.nodes[from] = struct{}{}
	g.nodes[to] = struct{}{}
}

// AddNode registers node x as a structural element [X,X].
func (g *Graph) AddNode(x string) {
	g.elems[NodeKey(x)] = struct{}{}
	g.nodes[x] = struct{}{}
}

// AddElement adds a structural element by key.
func (g *Graph) AddElement(k EdgeKey) {
	if k.IsNode() {
		g.AddNode(k.From)
	} else {
		g.AddEdge(k.From, k.To)
	}
}

func addAdj(m map[string]map[string]struct{}, a, b string) {
	s, ok := m[a]
	if !ok {
		s = make(map[string]struct{})
		m[a] = s
	}
	s[b] = struct{}{}
}

// HasElement reports whether the structural element is present.
func (g *Graph) HasElement(k EdgeKey) bool {
	_, ok := g.elems[k]
	return ok
}

// HasEdge reports whether the proper edge (from, to) is present.
func (g *Graph) HasEdge(from, to string) bool {
	return from != to && g.HasElement(E(from, to))
}

// HasNode reports whether x appears in the graph (as an element or as an
// edge endpoint).
func (g *Graph) HasNode(x string) bool {
	_, ok := g.nodes[x]
	return ok
}

// NumElements returns the number of structural elements (edges + node
// elements).
func (g *Graph) NumElements() int { return len(g.elems) }

// Elements returns all structural elements in deterministic order.
func (g *Graph) Elements() []EdgeKey {
	out := make([]EdgeKey, 0, len(g.elems))
	for k := range g.elems {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Nodes returns all node names in sorted order.
func (g *Graph) Nodes() []string {
	out := make([]string, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Successors returns the sorted out-neighbours of x via proper edges.
func (g *Graph) Successors(x string) []string {
	return sortedKeys(g.out[x])
}

// Predecessors returns the sorted in-neighbours of x via proper edges.
func (g *Graph) Predecessors(x string) []string {
	return sortedKeys(g.in[x])
}

// OutDegree returns the number of proper edges leaving x.
func (g *Graph) OutDegree(x string) int { return len(g.out[x]) }

// InDegree returns the number of proper edges entering x.
func (g *Graph) InDegree(x string) int { return len(g.in[x]) }

// Sources returns the nodes with no incoming proper edges (Src(G), §3.3).
func (g *Graph) Sources() []string {
	var out []string
	for n := range g.nodes {
		if len(g.in[n]) == 0 {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Terminals returns the nodes with no outgoing proper edges (Ter(G), §3.3).
func (g *Graph) Terminals() []string {
	var out []string
	for n := range g.nodes {
		if len(g.out[n]) == 0 {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// IsSubgraphOf reports whether every structural element of g appears in h.
// Because nodes are named entities, this is plain containment — no
// isomorphism search is needed (§1).
func (g *Graph) IsSubgraphOf(h *Graph) bool {
	for k := range g.elems {
		if !h.HasElement(k) {
			return false
		}
	}
	return true
}

// Intersect returns the common subgraph of g and h (shared elements).
func (g *Graph) Intersect(h *Graph) *Graph {
	out := NewGraph()
	small, large := g, h
	if len(h.elems) < len(g.elems) {
		small, large = h, g
	}
	for k := range small.elems {
		if large.HasElement(k) {
			out.AddElement(k)
		}
	}
	return out
}

// Union returns the union of g and h.
func (g *Graph) Union(h *Graph) *Graph {
	out := NewGraph()
	for k := range g.elems {
		out.AddElement(k)
	}
	for k := range h.elems {
		out.AddElement(k)
	}
	return out
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	out := NewGraph()
	for k := range g.elems {
		out.AddElement(k)
	}
	for n := range g.nodes {
		out.nodes[n] = struct{}{}
	}
	return out
}

// Equals reports element-set equality.
func (g *Graph) Equals(h *Graph) bool {
	if len(g.elems) != len(h.elems) {
		return false
	}
	for k := range g.elems {
		if !h.HasElement(k) {
			return false
		}
	}
	return true
}

// HasCycle reports whether the proper-edge structure contains a directed
// cycle.
func (g *Graph) HasCycle() bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := make(map[string]int, len(g.nodes))
	var visit func(string) bool
	visit = func(n string) bool {
		state[n] = grey
		for s := range g.out[n] {
			switch state[s] {
			case grey:
				return true
			case white:
				if visit(s) {
					return true
				}
			}
		}
		state[n] = black
		return false
	}
	for n := range g.nodes {
		if state[n] == white && visit(n) {
			return true
		}
	}
	return false
}

func (g *Graph) String() string {
	return fmt.Sprintf("Graph{%d elements, %d nodes}", len(g.elems), len(g.nodes))
}

func sortedKeys(m map[string]struct{}) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
