package graph

import (
	"strings"
	"testing"
)

func TestWriteDOTStructure(t *testing.T) {
	g := NewGraph()
	g.AddEdge("A", "B")
	g.AddEdge("B", "C")
	var sb strings.Builder
	if err := WriteDOT(&sb, "test", g, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`digraph "test"`, `"A" -> "B";`, `"B" -> "C";`} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTWithMeasures(t *testing.T) {
	rec := NewRecord()
	if err := rec.SetEdge("A", "B", 2.5); err != nil {
		t.Fatal(err)
	}
	if err := rec.SetNode("A", 7); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteDOT(&sb, "", rec.Graph, rec); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `label="2.5"`) {
		t.Errorf("edge measure missing:\n%s", out)
	}
	if !strings.Contains(out, `label="A\\n7"`) {
		t.Errorf("node measure missing:\n%s", out)
	}
}

func TestWriteDOTNil(t *testing.T) {
	var sb strings.Builder
	if err := WriteDOT(&sb, "x", nil, nil); err == nil {
		t.Error("nil graph accepted")
	}
}
