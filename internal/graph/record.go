package graph

import (
	"fmt"
	"math"
	"sort"
)

// Measure is an optional numeric annotation on a structural element.
type Measure struct {
	Value float64
	Valid bool
}

// DefaultMeasure is the name of the unnamed measure. Applications recording
// a single value per element (the paper's presentation default, §3.1) never
// need another name; applications recording several — e.g. time AND cost in
// the SCM scenario of §2 — use named measures, which become additional
// m_i^name columns in the master relation.
const DefaultMeasure = ""

// Record is a graph record (§3.1): a directed graph whose nodes and edges
// carry measure values. Elements may also be present without a measure (the
// master relation then has a bit in b_i but NULL in m_i).
type Record struct {
	*Graph
	measures map[EdgeKey]float64            // the default measure
	named    map[string]map[EdgeKey]float64 // additional named measures
}

// NewRecord returns an empty graph record.
func NewRecord() *Record {
	return &Record{Graph: NewGraph(), measures: make(map[EdgeKey]float64)}
}

// SetEdge adds edge (from, to) with measure v.
func (r *Record) SetEdge(from, to string, v float64) error {
	return r.SetElement(E(from, to), v)
}

// SetNode adds node x with measure v.
func (r *Record) SetNode(x string, v float64) error {
	return r.SetElement(NodeKey(x), v)
}

// SetElement adds a structural element with measure v, replacing any prior
// measure.
func (r *Record) SetElement(k EdgeKey, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("graph: measure for %s must be finite, got %v", k, v)
	}
	r.AddElement(k)
	r.measures[k] = v
	return nil
}

// AddBareElement adds a structural element without a measure.
func (r *Record) AddBareElement(k EdgeKey) {
	r.AddElement(k)
}

// SetElementNamed adds a structural element with a named measure, replacing
// any prior value under that name. The empty name is the default measure.
func (r *Record) SetElementNamed(k EdgeKey, name string, v float64) error {
	if name == DefaultMeasure {
		return r.SetElement(k, v)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("graph: measure %q for %s must be finite, got %v", name, k, v)
	}
	r.AddElement(k)
	if r.named == nil {
		r.named = make(map[string]map[EdgeKey]float64)
	}
	m, ok := r.named[name]
	if !ok {
		m = make(map[EdgeKey]float64)
		r.named[name] = m
	}
	m[k] = v
	return nil
}

// SetEdgeNamed adds edge (from, to) with a named measure.
func (r *Record) SetEdgeNamed(from, to, name string, v float64) error {
	return r.SetElementNamed(E(from, to), name, v)
}

// Measure returns the default measure for element k.
func (r *Record) Measure(k EdgeKey) Measure {
	v, ok := r.measures[k]
	return Measure{Value: v, Valid: ok}
}

// MeasureNamed returns the named measure for element k.
func (r *Record) MeasureNamed(k EdgeKey, name string) Measure {
	if name == DefaultMeasure {
		return r.Measure(k)
	}
	v, ok := r.named[name][k]
	return Measure{Value: v, Valid: ok}
}

// MeasureNames lists the named measures present (excluding the default), in
// sorted order.
func (r *Record) MeasureNames() []string {
	out := make([]string, 0, len(r.named))
	for name := range r.named {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NumMeasures counts the measured (element, name) pairs, default included.
func (r *Record) NumMeasures() int {
	n := len(r.measures)
	for _, m := range r.named {
		n += len(m)
	}
	return n
}

// ForEachMeasure visits measured elements in deterministic order.
func (r *Record) ForEachMeasure(f func(k EdgeKey, v float64) bool) {
	for _, k := range r.Elements() {
		if v, ok := r.measures[k]; ok {
			if !f(k, v) {
				return
			}
		}
	}
}

// Clone returns a deep copy of the record.
func (r *Record) Clone() *Record {
	out := NewRecord()
	out.Graph = r.Graph.Clone()
	for k, v := range r.measures {
		out.measures[k] = v
	}
	for name, m := range r.named {
		for k, v := range m {
			_ = out.SetElementNamed(k, name, v) //grovevet:ignore droppederr v passed SetElementNamed's finiteness check when it entered r
		}
	}
	return out
}

// FlattenSequence turns a visit sequence (an RFID-style trace of node stops
// with per-leg measures) into an acyclic record, renaming revisited nodes
// with occurrence aliases: A,B,C,A,D ⇒ edges (A,B),(B,C),(C,A#2),(A#2,D)
// (§6.2). legMeasures[i] is the measure of the leg stops[i]→stops[i+1] and
// must have length len(stops)-1 (or be nil for no measures).
func FlattenSequence(stops []string, legMeasures []float64) (*Record, error) {
	if len(stops) < 2 {
		return nil, fmt.Errorf("graph: sequence needs at least 2 stops, got %d", len(stops))
	}
	if legMeasures != nil && len(legMeasures) != len(stops)-1 {
		return nil, fmt.Errorf("graph: %d stops need %d leg measures, got %d",
			len(stops), len(stops)-1, len(legMeasures))
	}
	rec := NewRecord()
	occ := make(map[string]int, len(stops))
	alias := func(s string) string {
		occ[s]++
		if occ[s] == 1 {
			return s
		}
		return fmt.Sprintf("%s#%d", s, occ[s])
	}
	prev := alias(stops[0])
	for i := 1; i < len(stops); i++ {
		cur := alias(stops[i])
		if legMeasures != nil {
			if err := rec.SetEdge(prev, cur, legMeasures[i-1]); err != nil {
				return nil, err
			}
		} else {
			rec.AddBareElement(E(prev, cur))
		}
		prev = cur
	}
	return rec, nil
}

// FlattenToDAG returns an acyclic copy of the record. Back edges discovered
// by depth-first search are redirected to fresh occurrence aliases of their
// targets (A ⇒ A#2, …), preserving measures. Records that are already
// acyclic are returned as a plain clone.
func FlattenToDAG(r *Record) *Record {
	if !r.HasCycle() {
		return r.Clone()
	}
	out := NewRecord()
	// Copy node elements and their measures first.
	for _, k := range r.Elements() {
		if k.IsNode() {
			if m := r.Measure(k); m.Valid {
				_ = out.SetElement(k, m.Value) //grovevet:ignore droppederr measures already stored in r are finite
			} else {
				out.AddBareElement(k)
			}
			for _, name := range r.MeasureNames() {
				if m := r.MeasureNamed(k, name); m.Valid {
					_ = out.SetElementNamed(k, name, m.Value) //grovevet:ignore droppederr measures already stored in r are finite
				}
			}
		}
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := make(map[string]int)
	aliasN := make(map[string]int)
	nextAlias := func(s string) string {
		aliasN[s]++
		return fmt.Sprintf("%s#%d", s, aliasN[s]+1)
	}
	copyEdge := func(from, origFrom, to, origTo string) {
		k := E(origFrom, origTo)
		if m := r.Measure(k); m.Valid {
			_ = out.SetEdge(from, to, m.Value) //grovevet:ignore droppederr measures already stored in r are finite
		} else {
			out.AddBareElement(E(from, to))
		}
		for _, name := range r.MeasureNames() {
			if m := r.MeasureNamed(k, name); m.Valid {
				_ = out.SetElementNamed(E(from, to), name, m.Value) //grovevet:ignore droppederr measures already stored in r are finite
			}
		}
	}
	var visit func(n string)
	visit = func(n string) {
		state[n] = grey
		for _, s := range r.Successors(n) {
			switch state[s] {
			case grey:
				// Back edge: redirect to a fresh alias of s.
				copyEdge(n, n, nextAlias(s), s)
			case white:
				copyEdge(n, n, s, s)
				visit(s)
			default:
				copyEdge(n, n, s, s)
			}
		}
		state[n] = black
	}
	for _, n := range r.Nodes() {
		if state[n] == white {
			visit(n)
		}
	}
	return out
}
