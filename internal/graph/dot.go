package graph

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDOT renders a graph in Graphviz DOT format, for quick visual
// inspection of query graphs and reconstructed records. If rec is non-nil,
// its measures annotate the corresponding elements.
func WriteDOT(w io.Writer, name string, g *Graph, rec *Record) error {
	if g == nil {
		return fmt.Errorf("graph: nil graph")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", sanitizeDOT(name))
	b.WriteString("  rankdir=LR;\n")
	for _, n := range g.Nodes() {
		label := n
		if rec != nil {
			if m := rec.Measure(NodeKey(n)); m.Valid {
				label = fmt.Sprintf("%s\\n%.3g", n, m.Value)
			}
		}
		fmt.Fprintf(&b, "  %q [label=%q];\n", n, label)
	}
	elems := g.Elements()
	sort.Slice(elems, func(i, j int) bool { return elems[i].Less(elems[j]) })
	for _, k := range elems {
		if k.IsNode() {
			continue
		}
		if rec != nil {
			if m := rec.Measure(k); m.Valid {
				fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", k.From, k.To, fmt.Sprintf("%.3g", m.Value))
				continue
			}
		}
		fmt.Fprintf(&b, "  %q -> %q;\n", k.From, k.To)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func sanitizeDOT(s string) string {
	if s == "" {
		return "g"
	}
	return strings.Map(func(r rune) rune {
		if r == '"' || r == '\n' {
			return '_'
		}
		return r
	}, s)
}
