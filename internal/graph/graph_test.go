package graph

import (
	"path/filepath"
	"testing"

	"grove/internal/colstore"
)

// paperFigure1 builds the SCM record of paper Fig. 1 (structure only).
func paperFigure1() *Graph {
	g := NewGraph()
	for _, e := range [][2]string{
		{"A", "D"}, {"A", "B"}, {"B", "F"}, {"C", "H"},
		{"D", "E"}, {"E", "G"}, {"F", "J"}, {"G", "I"},
		{"H", "K"}, {"J", "K"}, {"G", "K"},
	} {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := paperFigure1()
	if !g.HasEdge("A", "D") {
		t.Error("missing edge (A,D)")
	}
	if g.HasEdge("D", "A") {
		t.Error("reverse edge should not exist")
	}
	if g.NumElements() != 11 {
		t.Errorf("NumElements = %d, want 11", g.NumElements())
	}
	if !g.HasNode("K") || g.HasNode("Z") {
		t.Error("node membership wrong")
	}
}

func TestNodeAsSelfEdge(t *testing.T) {
	g := NewGraph()
	g.AddEdge("X", "X") // self-loop becomes node element
	if !g.HasElement(NodeKey("X")) {
		t.Error("self-loop not registered as node element")
	}
	if g.HasEdge("X", "X") {
		t.Error("HasEdge true for node element")
	}
	if NodeKey("X").String() != "[X]" {
		t.Errorf("NodeKey string = %s", NodeKey("X"))
	}
	if E("A", "B").String() != "(A,B)" {
		t.Errorf("edge string = %s", E("A", "B"))
	}
}

func TestSourcesTerminals(t *testing.T) {
	g := paperFigure1()
	wantSrc := []string{"A", "B", "C"}
	// B is a source? B has incoming edge (A,B). Sources: A, C only.
	wantSrc = []string{"A", "C"}
	gotSrc := g.Sources()
	if len(gotSrc) != len(wantSrc) {
		t.Fatalf("Sources = %v, want %v", gotSrc, wantSrc)
	}
	for i := range wantSrc {
		if gotSrc[i] != wantSrc[i] {
			t.Fatalf("Sources = %v, want %v", gotSrc, wantSrc)
		}
	}
	wantTer := []string{"I", "K"}
	gotTer := g.Terminals()
	if len(gotTer) != 2 || gotTer[0] != wantTer[0] || gotTer[1] != wantTer[1] {
		t.Fatalf("Terminals = %v, want %v", gotTer, wantTer)
	}
}

func TestSuccessorsPredecessors(t *testing.T) {
	g := paperFigure1()
	succ := g.Successors("G")
	if len(succ) != 2 || succ[0] != "I" || succ[1] != "K" {
		t.Errorf("Successors(G) = %v", succ)
	}
	pred := g.Predecessors("K")
	if len(pred) != 3 { // G, H, J
		t.Errorf("Predecessors(K) = %v", pred)
	}
	if g.OutDegree("A") != 2 || g.InDegree("A") != 0 {
		t.Error("degree bookkeeping wrong")
	}
}

func TestSubgraphContainment(t *testing.T) {
	g := paperFigure1()
	q := NewGraph()
	q.AddEdge("A", "D")
	q.AddEdge("D", "E")
	if !q.IsSubgraphOf(g) {
		t.Error("path A,D,E should be contained")
	}
	q.AddEdge("E", "Z")
	if q.IsSubgraphOf(g) {
		t.Error("graph with foreign edge reported contained")
	}
	empty := NewGraph()
	if !empty.IsSubgraphOf(g) {
		t.Error("empty graph must be contained in anything")
	}
}

func TestIntersectUnion(t *testing.T) {
	a := NewGraph()
	a.AddEdge("A", "B")
	a.AddEdge("B", "C")
	b := NewGraph()
	b.AddEdge("B", "C")
	b.AddEdge("C", "D")
	inter := a.Intersect(b)
	if inter.NumElements() != 1 || !inter.HasEdge("B", "C") {
		t.Errorf("Intersect = %v", inter.Elements())
	}
	uni := a.Union(b)
	if uni.NumElements() != 3 {
		t.Errorf("Union = %v", uni.Elements())
	}
	if !a.Intersect(NewGraph()).Equals(NewGraph()) {
		t.Error("intersect with empty not empty")
	}
}

func TestCloneEqualsIndependence(t *testing.T) {
	a := paperFigure1()
	c := a.Clone()
	if !a.Equals(c) {
		t.Fatal("clone not equal")
	}
	c.AddEdge("Z", "W")
	if a.Equals(c) {
		t.Fatal("mutating clone affected equality")
	}
	if a.HasEdge("Z", "W") {
		t.Fatal("mutating clone affected original")
	}
}

func TestHasCycle(t *testing.T) {
	g := paperFigure1()
	if g.HasCycle() {
		t.Error("Fig. 1 record is acyclic")
	}
	g.AddEdge("K", "A")
	if !g.HasCycle() {
		t.Error("back edge K→A not detected")
	}
	single := NewGraph()
	single.AddNode("A")
	if single.HasCycle() {
		t.Error("single node reported cyclic")
	}
}

func TestRecordMeasures(t *testing.T) {
	r := NewRecord()
	if err := r.SetEdge("A", "B", 1.5); err != nil {
		t.Fatal(err)
	}
	if err := r.SetNode("A", 0.5); err != nil {
		t.Fatal(err)
	}
	r.AddBareElement(E("B", "C"))
	if m := r.Measure(E("A", "B")); !m.Valid || m.Value != 1.5 {
		t.Errorf("edge measure = %+v", m)
	}
	if m := r.Measure(NodeKey("A")); !m.Valid || m.Value != 0.5 {
		t.Errorf("node measure = %+v", m)
	}
	if m := r.Measure(E("B", "C")); m.Valid {
		t.Error("bare element has measure")
	}
	if r.NumMeasures() != 2 {
		t.Errorf("NumMeasures = %d, want 2", r.NumMeasures())
	}
	if err := r.SetEdge("X", "Y", nan()); err == nil {
		t.Error("NaN measure accepted")
	}
}

func TestFlattenSequence(t *testing.T) {
	// Paper §6.2 example: A, B, C, A, D, E.
	rec, err := FlattenSequence([]string{"A", "B", "C", "A", "D", "E"}, []float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	wantEdges := []EdgeKey{E("A", "B"), E("B", "C"), E("C", "A#2"), E("A#2", "D"), E("D", "E")}
	for _, k := range wantEdges {
		if !rec.HasElement(k) {
			t.Errorf("missing %s", k)
		}
	}
	if rec.HasCycle() {
		t.Error("flattened sequence has a cycle")
	}
	if m := rec.Measure(E("C", "A#2")); !m.Valid || m.Value != 3 {
		t.Errorf("leg measure lost: %+v", m)
	}
}

func TestFlattenSequenceErrors(t *testing.T) {
	if _, err := FlattenSequence([]string{"A"}, nil); err == nil {
		t.Error("single stop accepted")
	}
	if _, err := FlattenSequence([]string{"A", "B"}, []float64{1, 2}); err == nil {
		t.Error("wrong measure count accepted")
	}
}

func TestFlattenSequenceNoMeasures(t *testing.T) {
	rec, err := FlattenSequence([]string{"A", "B", "A", "B"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.NumMeasures() != 0 {
		t.Errorf("NumMeasures = %d", rec.NumMeasures())
	}
	if !rec.HasElement(E("A#2", "B#2")) {
		t.Errorf("aliasing wrong: %v", rec.Elements())
	}
}

func TestFlattenToDAG(t *testing.T) {
	r := NewRecord()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(r.SetEdge("A", "B", 1))
	must(r.SetEdge("B", "C", 2))
	must(r.SetEdge("C", "A", 3)) // cycle
	must(r.SetNode("A", 9))
	flat := FlattenToDAG(r)
	if flat.HasCycle() {
		t.Fatal("FlattenToDAG left a cycle")
	}
	if flat.NumElements() != r.NumElements() {
		t.Errorf("element count changed: %d -> %d", r.NumElements(), flat.NumElements())
	}
	if m := flat.Measure(NodeKey("A")); !m.Valid || m.Value != 9 {
		t.Error("node measure lost in flattening")
	}
	// Total edge measure mass preserved.
	sum := 0.0
	flat.ForEachMeasure(func(k EdgeKey, v float64) bool {
		if !k.IsNode() {
			sum += v
		}
		return true
	})
	if sum != 6 {
		t.Errorf("edge measure mass = %v, want 6", sum)
	}
}

func TestFlattenToDAGAcyclicIsClone(t *testing.T) {
	r := NewRecord()
	if err := r.SetEdge("A", "B", 1); err != nil {
		t.Fatal(err)
	}
	flat := FlattenToDAG(r)
	if !flat.Graph.Equals(r.Graph) {
		t.Error("acyclic record altered by flattening")
	}
	flat.AddBareElement(E("X", "Y"))
	if r.HasElement(E("X", "Y")) {
		t.Error("flatten shares storage with original")
	}
}

func TestRegistryAssignment(t *testing.T) {
	reg := NewRegistry()
	a := reg.ID(E("A", "B"))
	b := reg.ID(E("B", "C"))
	if a == b {
		t.Fatal("distinct keys share an id")
	}
	if got := reg.ID(E("A", "B")); got != a {
		t.Fatal("id not stable")
	}
	if id, ok := reg.Lookup(E("A", "B")); !ok || id != a {
		t.Fatal("Lookup broken")
	}
	if _, ok := reg.Lookup(E("Z", "Z")); ok {
		t.Fatal("Lookup invented an id")
	}
	if k, ok := reg.Key(a); !ok || k != E("A", "B") {
		t.Fatal("Key broken")
	}
	if _, ok := reg.Key(999); ok {
		t.Fatal("Key out of range reported ok")
	}
	if reg.Len() != 2 {
		t.Fatalf("Len = %d", reg.Len())
	}
}

func TestRegistrySaveLoad(t *testing.T) {
	reg := NewRegistry()
	reg.ID(E("A", "B"))
	reg.ID(NodeKey("C"))
	path := filepath.Join(t.TempDir(), "registry.json")
	if err := reg.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRegistry(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("Len = %d", got.Len())
	}
	if id, ok := got.Lookup(NodeKey("C")); !ok || id != 1 {
		t.Fatalf("ids not preserved: %d,%v", id, ok)
	}
}

func TestLoadRecord(t *testing.T) {
	rel := colstore.NewRelation(0)
	reg := NewRegistry()
	r := NewRecord()
	if err := r.SetEdge("A", "B", 2.5); err != nil {
		t.Fatal(err)
	}
	r.AddBareElement(E("B", "C"))
	id := LoadRecord(rel, reg, r)
	if id != 0 {
		t.Fatalf("first record id = %d", id)
	}
	ab, _ := reg.Lookup(E("A", "B"))
	bc, _ := reg.Lookup(E("B", "C"))
	if !rel.EdgeBitmap(ab).Contains(0) || !rel.EdgeBitmap(bc).Contains(0) {
		t.Error("record bits not set")
	}
	if v, ok := rel.MeasureColumn(ab).Get(0); !ok || v != 2.5 {
		t.Errorf("measure = %v,%v", v, ok)
	}
	if rel.MeasureColumn(bc) != nil {
		t.Error("bare element grew a measure column")
	}
}

func TestLoadRecordFlattensCycles(t *testing.T) {
	rel := colstore.NewRelation(0)
	reg := NewRegistry()
	r := NewRecord()
	for _, e := range [][2]string{{"A", "B"}, {"B", "A"}} {
		if err := r.SetEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	LoadRecord(rel, reg, r)
	// After flattening either (B,A) became (B,A#2) or (A,B) became (A,B#2)
	// depending on DFS start; in both cases some alias id must exist.
	found := false
	for id := colstore.EdgeID(0); int(id) < reg.Len(); id++ {
		k, _ := reg.Key(id)
		if len(k.From) > 1 || len(k.To) > 1 {
			found = true
		}
	}
	if !found {
		t.Error("no aliased element registered for cyclic record")
	}
}

func nan() float64 {
	var z float64
	return z / z
}
