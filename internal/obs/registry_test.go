package obs

import (
	"strconv"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("grove_test_total", "help")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	g := r.Gauge("grove_test_gauge", "help")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %d", g.Value())
	}
	// Re-registration returns the same handle.
	if r.Counter("grove_test_total", "help") != c {
		t.Error("re-registration returned a new counter")
	}
}

func TestRegisterKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("grove_conflict", "")
	defer func() {
		if recover() == nil {
			t.Error("kind conflict did not panic")
		}
	}()
	r.Gauge("grove_conflict", "")
}

func TestSplitName(t *testing.T) {
	for _, tc := range []struct{ in, family, labels string }{
		{"grove_queries_total", "grove_queries_total", ""},
		{`grove_queries_total{kind="graph"}`, "grove_queries_total", `kind="graph"`},
		{`x{a="1",b="2"}`, "x", `a="1",b="2"`},
	} {
		f, l := splitName(tc.in)
		if f != tc.family || l != tc.labels {
			t.Errorf("splitName(%q) = %q, %q", tc.in, f, l)
		}
	}
}

func TestLabelsEscaping(t *testing.T) {
	got := Labels("kind", "graph", "q", "a\"b\\c\nd")
	want := `kind="graph",q="a\"b\\c\nd"`
	if got != want {
		t.Errorf("Labels = %s, want %s", got, want)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 560.5 {
		t.Errorf("sum = %v", h.Sum())
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("bucket shape: %d bounds, %d counts", len(bounds), len(cum))
	}
	// Cumulative: ≤1 → 1, ≤10 → 3, ≤100 → 4, +Inf → 5.
	for i, want := range []int64{1, 3, 4, 5} {
		if cum[i] != want {
			t.Errorf("cum[%d] = %d, want %d", i, cum[i], want)
		}
	}
}

// TestWritePrometheusFormat exercises every metric kind and checks the
// exposition parses line-by-line: families get one HELP/TYPE header, every
// sample line is `name{labels} value` with a parseable float.
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(`grove_queries_total{kind="graph"}`, "Queries.").Add(3)
	r.Counter(`grove_queries_total{kind="expr"}`, "Queries.").Add(1)
	r.Gauge("grove_workers_busy", "Busy workers.").Set(2)
	r.Histogram(`grove_latency_seconds{kind="graph"}`, "Latency.", []float64{0.1, 1}).Observe(0.5)
	r.CounterFunc("grove_hits_total", "Hits.", func() float64 { return 42 })
	r.GaugeFunc("grove_size_bytes", "Size.", func() float64 { return 1024 })
	r.CounterVecFunc("grove_view_uses_total", "View uses.", func() map[string]float64 {
		return map[string]float64{Labels("view", "v1"): 5, Labels("view", "v2"): 7}
	})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE grove_queries_total counter",
		`grove_queries_total{kind="expr"} 1`,
		`grove_queries_total{kind="graph"} 3`,
		"# TYPE grove_latency_seconds histogram",
		`grove_latency_seconds_bucket{kind="graph",le="0.1"} 0`,
		`grove_latency_seconds_bucket{kind="graph",le="+Inf"} 1`,
		`grove_latency_seconds_sum{kind="graph"} 0.5`,
		`grove_latency_seconds_count{kind="graph"} 1`,
		"grove_hits_total 42",
		"grove_size_bytes 1024",
		`grove_view_uses_total{view="v1"} 5`,
		`grove_view_uses_total{view="v2"} 7`,
		"grove_workers_busy 2",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// One HELP/TYPE pair per family, and every sample line parses.
	types := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fam := strings.Fields(line)[2]
			if types[fam] {
				t.Errorf("duplicate TYPE header for %s", fam)
			}
			types[fam] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Errorf("unparseable value in %q: %v", line, err)
		}
	}
}
