package obs

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): one HELP/TYPE header per metric
// family, then one line per series, families in sorted order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, family := range r.snapshotMetrics() {
		head := family[0]
		if head.help != "" {
			if _, err := fmt.Fprintf(bw, "# HELP %s %s\n", head.family, head.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(bw, "# TYPE %s %s\n", head.family, head.kind.promType()); err != nil {
			return err
		}
		for _, m := range family {
			if err := writeMetric(bw, m); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func writeMetric(w io.Writer, m *metric) error {
	switch m.kind {
	case kindCounter:
		return writeSample(w, m.family, m.labels, float64(m.counter.Value()))
	case kindGauge:
		return writeSample(w, m.family, m.labels, float64(m.gauge.Value()))
	case kindCounterFunc, kindGaugeFunc:
		return writeSample(w, m.family, m.labels, m.fn())
	case kindCounterVecFunc, kindGaugeVecFunc:
		vals := m.vecFn()
		labels := make([]string, 0, len(vals))
		for l := range vals {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			if err := writeSample(w, m.family, l, vals[l]); err != nil {
				return err
			}
		}
	case kindHistogram:
		bounds, cum := m.hist.Buckets()
		for i, b := range bounds {
			if err := writeSample(w, m.family+"_bucket", joinLabels(m.labels, `le="`+formatFloat(b)+`"`), float64(cum[i])); err != nil {
				return err
			}
		}
		if err := writeSample(w, m.family+"_bucket", joinLabels(m.labels, `le="+Inf"`), float64(cum[len(cum)-1])); err != nil {
			return err
		}
		if err := writeSample(w, m.family+"_sum", m.labels, m.hist.Sum()); err != nil {
			return err
		}
		return writeSample(w, m.family+"_count", m.labels, float64(m.hist.Count()))
	}
	return nil
}

func writeSample(w io.Writer, name, labels string, v float64) error {
	var err error
	if labels == "" {
		_, err = fmt.Fprintf(w, "%s %s\n", name, formatFloat(v))
	} else {
		_, err = fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatFloat(v))
	}
	return err
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		//grovevet:ignore droppederr a failed write means the scraper hung up; nothing to report it to
		_ = r.WritePrometheus(w)
	})
}

// Server is a minimal HTTP server for metrics/trace endpoints, bound to a
// concrete listener so callers (and tests) can use ":0" and read back the
// assigned address.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts serving h on addr in a background goroutine.
func Serve(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: h}
	//grovevet:ignore droppederr,goroleak Serve always returns ErrServerClosed once Close is called; net/http recovers per-connection handler panics itself
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address, e.g. "127.0.0.1:39041".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately.
func (s *Server) Close() error { return s.srv.Close() }
