// Package obs is grove's observability layer: a concurrency-safe metrics
// registry (counters, gauges, fixed-bucket latency histograms) with
// Prometheus text exposition, and span-based query-lifecycle tracing kept in
// a ring buffer of recent traces.
//
// The package is stdlib-only and dependency-free so every layer of grove —
// from the column store's I/O tracker up to the CLI — can feed it. All
// metric operations after registration are lock-free atomics, so the hot
// query path pays a few atomic adds and no allocations; tracing allocates
// (one trace per query) and is therefore opt-in.
//
// Per-span I/O deltas are computed from the column store's shared cumulative
// tracker: when queries run concurrently the deltas of one trace may include
// another query's fetches. For exact attribution — EXPLAIN ANALYZE — run the
// query without concurrent load.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
//
//grove:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 for the exposition to stay Prometheus-legal).
//
//grove:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer-valued metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
//
//grove:hotpath
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
//
//grove:hotpath
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metricKind discriminates the exposition format of a registered metric.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
	kindCounterVecFunc
	kindGaugeVecFunc
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc, kindCounterVecFunc:
		return "counter"
	case kindGauge, kindGaugeFunc, kindGaugeVecFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// metric is one registered time series (or, for vec funcs, a family of them
// enumerated at scrape time).
type metric struct {
	family string // metric name without labels
	labels string // label pairs inside the braces, "" if none
	help   string
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64            // kindCounterFunc / kindGaugeFunc
	vecFn   func() map[string]float64 // label-set → value, enumerated per scrape
}

// Registry holds named metrics and renders them in Prometheus text format.
// Registration takes a lock; the returned metric handles are lock-free.
// Registering the same full name twice returns the original handle, so
// packages can idempotently declare the metrics they touch.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric // full name → metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// splitName splits `family{labels}` into its parts. A bare name has no
// labels.
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// register installs (or retrieves) a metric under its full name. It panics
// on a kind conflict — metric names are compile-time constants in grove, so
// a conflict is a programming error, not an operational condition.
func (r *Registry) register(name, help string, kind metricKind) *metric {
	family, labels := splitName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind.promType(), m.kind.promType()))
		}
		return m
	}
	m := &metric{family: family, labels: labels, help: help, kind: kind}
	r.metrics[name] = m
	return m
}

// Counter registers (or retrieves) a counter. The name may carry a fixed
// label set, e.g. `grove_queries_total{kind="graph"}`.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, help, kindCounter)
	if m.counter == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// Gauge registers (or retrieves) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, help, kindGauge)
	if m.gauge == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// Histogram registers (or retrieves) a histogram with the given upper
// bucket bounds (ascending; +Inf is implicit). Nil bounds select
// DefaultLatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.register(name, help, kindHistogram)
	if m.hist == nil {
		m.hist = NewHistogram(bounds)
	}
	return m.hist
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for counters owned elsewhere (e.g. the result cache's hit count).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, kindCounterFunc).fn = fn
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGaugeFunc).fn = fn
}

// CounterVecFunc registers a family of counters enumerated at scrape time:
// fn returns label-set → value, where each key is a pre-rendered label list
// (use Labels). Used for per-view usage counts, whose label values are only
// known at runtime.
func (r *Registry) CounterVecFunc(family, help string, fn func() map[string]float64) {
	r.register(family, help, kindCounterVecFunc).vecFn = fn
}

// GaugeVecFunc is CounterVecFunc for gauge semantics.
func (r *Registry) GaugeVecFunc(family, help string, fn func() map[string]float64) {
	r.register(family, help, kindGaugeVecFunc).vecFn = fn
}

// Labels renders key/value pairs as a Prometheus label list (without
// braces), escaping backslashes, quotes and newlines in the values.
func Labels(kv ...string) string {
	if len(kv)%2 != 0 {
		panic("obs: Labels needs key/value pairs")
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// snapshotMetrics returns the registered metrics grouped by family in
// sorted order (families sorted by name, series within a family by label).
func (r *Registry) snapshotMetrics() [][]*metric {
	r.mu.Lock()
	all := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		all = append(all, m)
	}
	r.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].family != all[j].family {
			return all[i].family < all[j].family
		}
		return all[i].labels < all[j].labels
	})
	var groups [][]*metric
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].family == all[i].family {
			j++
		}
		groups = append(groups, all[i:j])
		i = j
	}
	return groups
}
