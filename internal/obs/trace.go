package obs

import (
	"sync"
	"time"
)

// Query kinds, matching the engine's entry points.
const (
	KindGraph     = "graph"     // structural graph query
	KindPathAgg   = "pathagg"   // path aggregation F_Gq
	KindExpr      = "expr"      // boolean combination of graph queries
	KindStatement = "statement" // parsed text-language statement

	// WAL lifecycle traces (not queries, but the same ring and tooling
	// observe them): a replay at load time, a checkpoint at save time.
	KindWALReplay     = "wal-replay"
	KindWALCheckpoint = "wal-checkpoint"
)

// Lifecycle phases, in the order a query passes through them. A trace holds
// one span per contiguous stretch of a phase; compound queries (path
// aggregations, expressions) may revisit a phase, yielding several spans
// with the same name — PhaseTotals merges them.
const (
	PhaseParse       = "parse"        // text → statement
	PhasePlan        = "plan"         // view rewrite / path cover
	PhaseFetch       = "fetch"        // bitmap column fetches
	PhaseIntersect   = "intersect"    // AND kernel + delete masking
	PhaseMeasureScan = "measure-scan" // measure column reads (ValuesFor)
	PhaseAggregate   = "aggregate"    // per-record folding
	PhaseCache       = "cache"        // answer served from the result cache
	PhaseCancelled   = "cancelled"    // query abandoned on context cancellation
	PhaseBlockSkip   = "block-skip"   // zone-map block skipping on a paged measure scan

	// Coordinator phases of a scatter-gathered query (DESIGN.md §8, §12).
	PhaseFanOut    = "fan-out"    // shard sub-queries dispatched and awaited
	PhaseQueueWait = "queue-wait" // dispatch → execution start, one span per shard
	PhaseMerge     = "merge"      // per-shard partials combined

	// WAL phases (DESIGN.md §14). Replay traces carry one wal-apply span per
	// shard; checkpoint traces a snapshot span and a wal-truncate span.
	PhaseWALApply    = "wal-apply"    // decoded ops re-applied atop the snapshot
	PhaseSnapshot    = "snapshot"     // generational save inside a checkpoint
	PhaseWALTruncate = "wal-truncate" // log reset after the commit point
)

// ShardCoordinator is the Shard label of a coordinator-level root trace or
// span — one that belongs to the scatter-gather itself rather than to any
// single shard. Engine-emitted traces carry their shard's index (0 for a
// single-shard store).
const ShardCoordinator = -1

// IODelta is the column-store I/O attributed to a span or trace — the same
// counters as colstore.Stats, duplicated here so the obs package stays
// dependency-free (colstore feeds obs, not the reverse).
type IODelta struct {
	BitmapColumnsFetched  int64 `json:"bitmapColumnsFetched"`
	MeasureColumnsFetched int64 `json:"measureColumnsFetched"`
	MeasuresScanned       int64 `json:"measuresScanned"`
	BytesRead             int64 `json:"bytesRead"`
	PartitionJoins        int64 `json:"partitionJoins"`
	RecordsReturned       int64 `json:"recordsReturned"`
}

// Sub returns d - o.
func (d IODelta) Sub(o IODelta) IODelta {
	return IODelta{
		BitmapColumnsFetched:  d.BitmapColumnsFetched - o.BitmapColumnsFetched,
		MeasureColumnsFetched: d.MeasureColumnsFetched - o.MeasureColumnsFetched,
		MeasuresScanned:       d.MeasuresScanned - o.MeasuresScanned,
		BytesRead:             d.BytesRead - o.BytesRead,
		PartitionJoins:        d.PartitionJoins - o.PartitionJoins,
		RecordsReturned:       d.RecordsReturned - o.RecordsReturned,
	}
}

// Add returns d + o.
func (d IODelta) Add(o IODelta) IODelta {
	return IODelta{
		BitmapColumnsFetched:  d.BitmapColumnsFetched + o.BitmapColumnsFetched,
		MeasureColumnsFetched: d.MeasureColumnsFetched + o.MeasureColumnsFetched,
		MeasuresScanned:       d.MeasuresScanned + o.MeasuresScanned,
		BytesRead:             d.BytesRead + o.BytesRead,
		PartitionJoins:        d.PartitionJoins + o.PartitionJoins,
		RecordsReturned:       d.RecordsReturned + o.RecordsReturned,
	}
}

// Span is one timed phase of a query's lifecycle with its I/O delta. Shard
// is the shard the span executed on (ShardCoordinator for coordinator-level
// phases of a scatter-gathered query).
type Span struct {
	Phase         string  `json:"phase"`
	Shard         int     `json:"shard"`
	DurationNanos int64   `json:"durationNanos"`
	IO            IODelta `json:"io"`
}

// Duration returns the span's wall time.
func (s Span) Duration() time.Duration { return time.Duration(s.DurationNanos) }

// Trace is the complete record of one query's execution. On a sharded store
// a scatter-gathered query records one root trace (Shard == ShardCoordinator,
// spans fan-out / queue-wait / merge) whose Children are the per-shard engine
// traces; a single-shard query records a flat trace with Shard 0 and no
// Children.
type Trace struct {
	Kind           string  `json:"kind"`
	Query          string  `json:"query,omitempty"`
	Shard          int     `json:"shard"`
	StartUnixNanos int64   `json:"startUnixNanos"`
	DurationNanos  int64   `json:"durationNanos"`
	Cached         bool    `json:"cached,omitempty"`
	Spans          []Span  `json:"spans,omitempty"`
	Children       []Trace `json:"children,omitempty"`
	IO             IODelta `json:"io"`
}

// Duration returns the trace's total wall time.
func (t Trace) Duration() time.Duration { return time.Duration(t.DurationNanos) }

// PhaseTotals merges spans by phase (summing wall time and I/O), preserving
// the order of first appearance — the per-phase breakdown EXPLAIN ANALYZE
// prints.
func (t Trace) PhaseTotals() []Span {
	var out []Span
	idx := make(map[string]int, len(t.Spans))
	for _, s := range t.Spans {
		if i, ok := idx[s.Phase]; ok {
			out[i].DurationNanos += s.DurationNanos
			out[i].IO = out[i].IO.Add(s.IO)
			continue
		}
		idx[s.Phase] = len(out)
		out = append(out, s)
	}
	return out
}

// ActiveTrace accumulates spans for one in-flight query. It is owned by a
// single goroutine (the query's executor) and costs one allocation per
// query plus one per span append — which is why tracing is opt-in while
// counters are always cheap.
type ActiveTrace struct {
	trace     Trace
	start     time.Time
	startIO   IODelta
	spanPhase string
	spanStart time.Time
	spanIO    IODelta
}

// StartTrace opens a trace. io is the current cumulative I/O snapshot; the
// trace's deltas are computed against it.
func StartTrace(kind, query string, io IODelta) *ActiveTrace {
	now := time.Now()
	return &ActiveTrace{
		// Pre-size for the common lifecycle (plan, fetch, intersect,
		// measure-scan, aggregate, + slack) so span appends don't reallocate.
		trace: Trace{Kind: kind, Query: query, StartUnixNanos: now.UnixNano(),
			Spans: make([]Span, 0, 8)},
		start:   now,
		startIO: io,
	}
}

// Begin closes the open span (if any) and starts a new one for phase. io is
// the current cumulative I/O snapshot.
func (a *ActiveTrace) Begin(phase string, io IODelta) {
	if a == nil {
		return
	}
	now := time.Now()
	a.closeSpan(now, io)
	a.spanPhase, a.spanStart, a.spanIO = phase, now, io
}

func (a *ActiveTrace) closeSpan(now time.Time, io IODelta) {
	if a.spanPhase == "" {
		return
	}
	a.trace.Spans = append(a.trace.Spans, Span{
		Phase:         a.spanPhase,
		Shard:         a.trace.Shard,
		DurationNanos: now.Sub(a.spanStart).Nanoseconds(),
		IO:            io.Sub(a.spanIO),
	})
	a.spanPhase = ""
}

// SetShard labels the trace (and every span it closes from here on) with the
// shard it executes on. Engines set their own shard index at StartTrace time;
// a coordinator root uses ShardCoordinator.
func (a *ActiveTrace) SetShard(shard int) {
	if a == nil {
		return
	}
	a.trace.Shard = shard
}

// AddSpan appends a pre-built span (e.g. a per-shard queue-wait measured by
// the coordinator) without disturbing the currently open phase span.
func (a *ActiveTrace) AddSpan(s Span) {
	if a == nil {
		return
	}
	a.trace.Spans = append(a.trace.Spans, s)
}

// AddChild attaches a finished sub-trace — a shard engine's trace of its
// scatter-gather sub-query — to the in-flight trace.
func (a *ActiveTrace) AddChild(t Trace) {
	if a == nil {
		return
	}
	a.trace.Children = append(a.trace.Children, t)
}

// SetCached marks the trace as served from the result cache.
func (a *ActiveTrace) SetCached() {
	if a == nil {
		return
	}
	a.trace.Cached = true
}

// Finish closes the open span, totals the trace and returns it.
func (a *ActiveTrace) Finish(io IODelta) Trace {
	if a == nil {
		return Trace{}
	}
	now := time.Now()
	a.closeSpan(now, io)
	a.trace.DurationNanos = now.Sub(a.start).Nanoseconds()
	a.trace.IO = io.Sub(a.startIO)
	return a.trace
}

// TraceRing keeps the most recent traces in a fixed-capacity ring buffer.
// It is safe for concurrent use.
type TraceRing struct {
	mu    sync.Mutex
	buf   []Trace
	size  int
	next  int
	total uint64
}

// DefaultTraceCapacity is the ring size when none is given.
const DefaultTraceCapacity = 128

// NewTraceRing returns a ring holding up to capacity traces (≤ 0 selects
// DefaultTraceCapacity).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceRing{buf: make([]Trace, capacity)}
}

// Add records a finished trace, evicting the oldest when full.
func (r *TraceRing) Add(t Trace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.size < len(r.buf) {
		r.size++
	}
	r.total++
	r.mu.Unlock()
}

// Recent returns the stored traces, newest first.
func (r *TraceRing) Recent() []Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Trace, r.size)
	for i := 0; i < r.size; i++ {
		out[i] = r.buf[(r.next-1-i+len(r.buf))%len(r.buf)]
	}
	return out
}

// Len returns how many traces are currently stored.
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.size
}

// Total returns how many traces were ever recorded (including evicted ones).
func (r *TraceRing) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
