package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"grove/internal/fsio"
)

// Workload event types.
const (
	EventQuery = "query" // one executed query
	EventViews = "views" // a per-view usage snapshot
)

// RecordedPath is the normalized form of an explicit aggregation path
// (AggregateAlong): the node sequence plus its open-endpoint flags.
type RecordedPath struct {
	Nodes     []string `json:"nodes"`
	OpenStart bool     `json:"openStart,omitempty"`
	OpenEnd   bool     `json:"openEnd,omitempty"`
}

// WorkloadEvent is one line of a recorded workload log. Query events carry a
// normalized, replayable description of the query — either parseable
// statement text (Statement == true) or the structural element list plus
// aggregation parameters — along with the observed outcome: duration, error,
// and a digest of the answer so a replay can verify it reproduced identical
// results. Views events snapshot the per-view usage counters, the feed a
// workload-driven view advisor trains on.
type WorkloadEvent struct {
	Type      string `json:"type"`
	Seq       uint64 `json:"seq"`
	UnixNanos int64  `json:"unixNanos"`

	// Query events.
	Kind      string      `json:"kind,omitempty"`
	Text      string      `json:"text,omitempty"`      // display or statement text
	Statement bool        `json:"statement,omitempty"` // Text re-executes through the text grammar
	Edges     [][2]string `json:"edges,omitempty"`     // structural elements ([x,x] = node)
	Agg       string      `json:"agg,omitempty"`       // aggregate function name
	Measure   string      `json:"measure,omitempty"`   // named measure ("" = default)

	Paths []RecordedPath `json:"paths,omitempty"` // explicit aggregation paths

	DurationNanos int64  `json:"durationNanos,omitempty"`
	Error         string `json:"error,omitempty"`
	Digest        string `json:"digest,omitempty"` // hex FNV-1a of the answer

	// Views events.
	ViewUsage map[string]int64 `json:"viewUsage,omitempty"`
}

// WorkloadRecorder appends workload events to a JSONL log through an fsio.FS.
// The fsio seam has no append operation — a recorder owns its Create handle
// for its whole lifetime, buffering writes and fsyncing on Sync/Close. Record
// is safe for concurrent use.
type WorkloadRecorder struct {
	mu  sync.Mutex
	f   fsio.File
	w   *bufio.Writer
	enc *json.Encoder
	seq uint64
}

// NewWorkloadRecorder opens (truncating) a workload log at path.
func NewWorkloadRecorder(fs fsio.FS, path string) (*WorkloadRecorder, error) {
	f, err := fs.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: workload recorder: %w", err)
	}
	w := bufio.NewWriter(f)
	return &WorkloadRecorder{f: f, w: w, enc: json.NewEncoder(w)}, nil
}

// Record stamps ev with the next sequence number and the current time, and
// appends it to the log.
func (r *WorkloadRecorder) Record(ev WorkloadEvent) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return fmt.Errorf("obs: workload recorder closed")
	}
	r.seq++
	ev.Seq = r.seq
	if ev.UnixNanos == 0 {
		ev.UnixNanos = time.Now().UnixNano()
	}
	return r.enc.Encode(ev)
}

// Events returns how many events were recorded so far.
func (r *WorkloadRecorder) Events() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Sync flushes buffered events and fsyncs the log.
func (r *WorkloadRecorder) Sync() error {
	r.mu.Lock() //grovevet:ignore lockorder fsync under the lock is the durability contract: no event may be appended between flush and sync
	defer r.mu.Unlock()
	if r.f == nil {
		return fmt.Errorf("obs: workload recorder closed")
	}
	if err := r.w.Flush(); err != nil {
		return err
	}
	return r.f.Sync()
}

// Close flushes, fsyncs and closes the log. The recorder is unusable after.
func (r *WorkloadRecorder) Close() error {
	r.mu.Lock() //grovevet:ignore lockorder final flush+sync+close must exclude concurrent Record appends; the wait is the point
	defer r.mu.Unlock()
	if r.f == nil {
		return nil
	}
	err := r.w.Flush()
	if serr := r.f.Sync(); err == nil {
		err = serr
	}
	if cerr := r.f.Close(); err == nil {
		err = cerr
	}
	r.f, r.w, r.enc = nil, nil, nil
	return err
}

// ReadWorkload parses a workload log written by a WorkloadRecorder, in
// recorded order.
func ReadWorkload(fs fsio.FS, path string) ([]WorkloadEvent, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: read workload: %w", err)
	}
	defer func() { _ = f.Close() }() //grovevet:ignore droppederr read-only close after full scan
	var out []WorkloadEvent
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev WorkloadEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("obs: workload line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
