// Package obs_test holds the engine-facing overhead guards: they import
// internal/query (which imports obs), so they must live outside package obs.
package obs_test

import (
	"testing"

	"grove/internal/colstore"
	"grove/internal/gpath"
	"grove/internal/graph"
	"grove/internal/obs"
	"grove/internal/query"
)

// buildEngine loads the paper's Fig. 2 running example and returns an engine
// plus a query matching record 2 (path A,C,E,F).
func buildEngine(tb testing.TB) (*query.Engine, *query.GraphQuery) {
	tb.Helper()
	rel := colstore.NewRelation(0)
	reg := graph.NewRegistry()
	for _, edges := range [][]string{
		{"A", "B", "A", "C", "C", "E", "A", "D", "D", "E"},
		{"A", "C", "C", "E", "A", "D", "D", "E", "E", "F", "F", "G"},
		{"A", "D", "D", "E", "E", "F", "F", "G"},
	} {
		rec := graph.NewRecord()
		for i := 0; i < len(edges); i += 2 {
			if err := rec.SetEdge(edges[i], edges[i+1], float64(i+1)); err != nil {
				tb.Fatal(err)
			}
		}
		graph.LoadRecord(rel, reg, rec)
	}
	return query.NewEngine(rel, reg), query.FromPath(gpath.Closed("A", "C", "E", "F"))
}

// TestMetricsPathAddsNoAllocations is the acceptance guard for the
// disabled-by-default promise: attaching the metrics registry must not add a
// single allocation to Engine.ExecuteGraphQuery — the instrumentation is
// atomics and time.Now only.
func TestMetricsPathAddsNoAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops a random 1/4 of Puts under the race detector, so allocation counts are nondeterministic")
	}
	off, q := buildEngine(t)
	baseline := testing.AllocsPerRun(200, func() {
		if _, err := off.ExecuteGraphQuery(q); err != nil {
			t.Fatal(err)
		}
	})

	on := off.Clone()
	on.SetMetrics(obs.NewQueryMetrics(obs.NewRegistry()))
	metered := testing.AllocsPerRun(200, func() {
		if _, err := on.ExecuteGraphQuery(q); err != nil {
			t.Fatal(err)
		}
	})
	if metered > baseline {
		t.Errorf("metrics added allocations: %.1f/op with metrics vs %.1f/op without", metered, baseline)
	}
}

// TestTracingRecordsLifecycle sanity-checks the traced path end to end
// through the engine: phases in order, I/O attributed, plan fetch count
// observed exactly (single-threaded, so deltas are exact).
func TestTracingRecordsLifecycle(t *testing.T) {
	eng, q := buildEngine(t)
	ring := obs.NewTraceRing(4)
	eng.SetTraces(ring)
	res, err := eng.ExecuteGraphQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	traces := ring.Recent()
	if len(traces) != 1 {
		t.Fatalf("traces = %d", len(traces))
	}
	tr := traces[0]
	if tr.Kind != obs.KindGraph || tr.Cached {
		t.Errorf("trace header = %+v", tr)
	}
	var phases []string
	for _, s := range tr.Spans {
		phases = append(phases, s.Phase)
	}
	want := []string{obs.PhasePlan, obs.PhaseFetch, obs.PhaseIntersect}
	if len(phases) != len(want) {
		t.Fatalf("phases = %v, want %v", phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phases = %v, want %v", phases, want)
		}
	}
	if got := tr.IO.BitmapColumnsFetched; got != int64(res.Plan.NumBitmaps()) {
		t.Errorf("traced fetches = %d, plan = %d", got, res.Plan.NumBitmaps())
	}
	if tr.IO.RecordsReturned != int64(res.NumRecords()) {
		t.Errorf("traced records = %d, answer = %d", tr.IO.RecordsReturned, res.NumRecords())
	}
}

// The benchmark trio quantifies the per-query cost of each instrumentation
// level; ExpObs in internal/bench reports the same comparison on the full
// NY-scale batch workload.
func BenchmarkExecuteObsOff(b *testing.B) {
	eng, q := buildEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.ExecuteGraphQuery(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteMetrics(b *testing.B) {
	eng, q := buildEngine(b)
	eng.SetMetrics(obs.NewQueryMetrics(obs.NewRegistry()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.ExecuteGraphQuery(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteMetricsAndTracing(b *testing.B) {
	eng, q := buildEngine(b)
	eng.SetMetrics(obs.NewQueryMetrics(obs.NewRegistry()))
	eng.SetTraces(obs.NewTraceRing(0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.ExecuteGraphQuery(q); err != nil {
			b.Fatal(err)
		}
	}
}
