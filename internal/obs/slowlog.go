package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// ShardTiming is one shard's contribution to a scatter-gathered slow query:
// how long the sub-query waited for a goroutine slot and how long it ran.
type ShardTiming struct {
	Shard         int   `json:"shard"`
	QueueNanos    int64 `json:"queueNanos"`
	DurationNanos int64 `json:"durationNanos"`
}

// SlowQuery is one structured slow-query log entry. Entries marshal to JSON
// one per line (JSONL) — the shape /debug/slow and `grovecli slow` serve.
type SlowQuery struct {
	Kind           string  `json:"kind"`
	Query          string  `json:"query,omitempty"`
	Shard          int     `json:"shard"` // emitting shard; ShardCoordinator for merged entries
	StartUnixNanos int64   `json:"startUnixNanos"`
	DurationNanos  int64   `json:"durationNanos"`
	Cached         bool    `json:"cached,omitempty"`
	Cancelled      bool    `json:"cancelled,omitempty"`
	Error          string  `json:"error,omitempty"`
	IO             IODelta `json:"io"`

	// Shards carries the per-shard queue-wait/execution breakdown of a
	// coordinator-level entry (nil for single-shard / engine-level entries).
	Shards []ShardTiming `json:"shards,omitempty"`
}

// Duration returns the entry's total wall time.
func (q SlowQuery) Duration() time.Duration { return time.Duration(q.DurationNanos) }

// DefaultSlowLogCapacity is the ring size when none is given.
const DefaultSlowLogCapacity = 128

// SlowLog is a bounded ring of SlowQuery entries over a configurable latency
// threshold. Add is safe for concurrent use; the threshold is an atomic so
// the hot path's "is this slow?" check is one load, and it can be retuned
// while serving.
type SlowLog struct {
	mu    sync.Mutex
	buf   []SlowQuery
	size  int
	next  int
	total atomic.Uint64

	thresholdNanos atomic.Int64
}

// NewSlowLog returns a log holding up to capacity entries (≤ 0 selects
// DefaultSlowLogCapacity) for queries at or above threshold.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity <= 0 {
		capacity = DefaultSlowLogCapacity
	}
	l := &SlowLog{buf: make([]SlowQuery, capacity)}
	l.thresholdNanos.Store(threshold.Nanoseconds())
	return l
}

// Threshold returns the current latency threshold.
func (l *SlowLog) Threshold() time.Duration {
	return time.Duration(l.thresholdNanos.Load())
}

// SetThreshold retunes the latency threshold (0 logs every query).
func (l *SlowLog) SetThreshold(d time.Duration) {
	l.thresholdNanos.Store(d.Nanoseconds())
}

// Add records a slow query, evicting the oldest entry when full. Callers
// check Threshold first; Add itself takes any entry.
func (l *SlowLog) Add(q SlowQuery) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.buf[l.next] = q
	l.next = (l.next + 1) % len(l.buf)
	if l.size < len(l.buf) {
		l.size++
	}
	l.mu.Unlock()
	l.total.Add(1)
}

// Recent returns the stored entries, newest first.
func (l *SlowLog) Recent() []SlowQuery {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQuery, l.size)
	for i := 0; i < l.size; i++ {
		out[i] = l.buf[(l.next-1-i+len(l.buf))%len(l.buf)]
	}
	return out
}

// Len returns how many entries are currently stored.
func (l *SlowLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Total returns how many slow queries were ever recorded (including evicted
// entries) — the grove_slow_queries_total reading.
func (l *SlowLog) Total() uint64 {
	if l == nil {
		return 0
	}
	return l.total.Load()
}

// WriteJSONL writes the stored entries to w, newest first, one JSON object
// per line.
func (l *SlowLog) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, q := range l.Recent() {
		if err := enc.Encode(q); err != nil {
			return err
		}
	}
	return nil
}
