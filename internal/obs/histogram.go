package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefaultLatencyBuckets spans grove's query-latency range: from
// cache-hit microseconds up to multi-second full-dataset aggregations.
var DefaultLatencyBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10,
}

// Histogram is a fixed-bucket histogram with cumulative Prometheus
// semantics. Observe is lock-free (atomic adds) and allocation-free, so it
// sits on the per-query hot path.
type Histogram struct {
	bounds  []float64      // upper bounds, ascending; +Inf implicit
	counts  []atomic.Int64 // len(bounds)+1; last bucket is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// NewHistogram returns a histogram over the given upper bounds (nil selects
// DefaultLatencyBuckets). Bounds are copied and sorted.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{
		bounds: bs,
		counts: make([]atomic.Int64, len(bs)+1),
	}
}

// Observe records one value.
//
//grove:hotpath
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (≤ ~12) and the scan is
	// branch-predictable, beating a binary search at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		newBits := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, newBits) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Buckets returns the upper bounds and the cumulative count at each bound
// (the +Inf bucket equals Count()). Used by the exposition and tests.
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64) {
	bounds = h.bounds
	cumulative = make([]int64, len(h.counts))
	var acc int64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return bounds, cumulative
}
