package obs

import (
	"os"
	"strings"
	"testing"

	"grove/internal/fsio"
)

func TestWorkloadRecorderRoundTrip(t *testing.T) {
	path := t.TempDir() + "/w.jsonl"
	r, err := NewWorkloadRecorder(fsio.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	evs := []WorkloadEvent{
		{Type: EventQuery, Kind: KindGraph, Text: "[A,D]", Edges: [][2]string{{"A", "D"}}, Digest: "abc"},
		{Type: EventQuery, Kind: KindPathAgg, Agg: "SUM", Measure: "cost",
			Paths: []RecordedPath{{Nodes: []string{"A", "D", "E"}, OpenEnd: true}}},
		{Type: EventViews, ViewUsage: map[string]int64{"vADE": 3}},
	}
	for _, ev := range evs {
		if err := r.Record(ev); err != nil {
			t.Fatal(err)
		}
	}
	if r.Events() != 3 {
		t.Fatalf("events = %d", r.Events())
	}
	if err := r.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Closing twice is a no-op; recording after close errors.
	if err := r.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := r.Record(WorkloadEvent{Type: EventQuery}); err == nil {
		t.Fatal("record after close accepted")
	}
	if err := r.Sync(); err == nil {
		t.Fatal("sync after close accepted")
	}

	got, err := ReadWorkload(fsio.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d events", len(got))
	}
	for i, ev := range got {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d seq = %d", i, ev.Seq)
		}
		if ev.UnixNanos == 0 {
			t.Errorf("event %d missing timestamp", i)
		}
	}
	if got[0].Kind != KindGraph || got[0].Digest != "abc" || len(got[0].Edges) != 1 {
		t.Errorf("event 0 = %+v", got[0])
	}
	if got[1].Agg != "SUM" || got[1].Measure != "cost" ||
		len(got[1].Paths) != 1 || !got[1].Paths[0].OpenEnd {
		t.Errorf("event 1 = %+v", got[1])
	}
	if got[2].Type != EventViews || got[2].ViewUsage["vADE"] != 3 {
		t.Errorf("event 2 = %+v", got[2])
	}
}

func TestReadWorkloadTolerantAndStrict(t *testing.T) {
	dir := t.TempDir()
	// Blank lines are tolerated (a crash can leave a trailing newline).
	ok := dir + "/ok.jsonl"
	if err := os.WriteFile(ok, []byte(`{"type":"query","seq":1}`+"\n\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadWorkload(fsio.OS(), ok)
	if err != nil || len(evs) != 1 {
		t.Fatalf("events = %d, err = %v", len(evs), err)
	}
	// Malformed JSON is an error naming the line.
	bad := dir + "/bad.jsonl"
	if err := os.WriteFile(bad, []byte(`{"type":"query"}`+"\n{oops}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadWorkload(fsio.OS(), bad); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("bad line error = %v", err)
	}
	if _, err := ReadWorkload(fsio.OS(), dir+"/missing.jsonl"); err == nil {
		t.Fatal("missing file accepted")
	}
}
