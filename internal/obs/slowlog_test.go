package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSlowLogRingEvictsOldest(t *testing.T) {
	l := NewSlowLog(3, 0)
	for i := 0; i < 5; i++ {
		l.Add(SlowQuery{Kind: KindGraph, DurationNanos: int64(i)})
	}
	got := l.Recent()
	if len(got) != 3 || l.Len() != 3 {
		t.Fatalf("len = %d/%d, want 3", len(got), l.Len())
	}
	// Newest first: durations 4, 3, 2 survive.
	for i, want := range []int64{4, 3, 2} {
		if got[i].DurationNanos != want {
			t.Errorf("entry %d duration = %d, want %d", i, got[i].DurationNanos, want)
		}
	}
	if l.Total() != 5 {
		t.Errorf("total = %d, want 5 including evicted entries", l.Total())
	}
}

func TestSlowLogThreshold(t *testing.T) {
	l := NewSlowLog(0, 25*time.Millisecond)
	if l.Threshold() != 25*time.Millisecond {
		t.Fatalf("threshold = %v", l.Threshold())
	}
	l.SetThreshold(time.Second)
	if l.Threshold() != time.Second {
		t.Fatalf("retuned threshold = %v", l.Threshold())
	}
	if len(l.buf) != DefaultSlowLogCapacity {
		t.Errorf("capacity = %d, want default %d", len(l.buf), DefaultSlowLogCapacity)
	}
}

func TestSlowLogNilSafety(t *testing.T) {
	var l *SlowLog
	l.Add(SlowQuery{}) // must not panic
	if l.Recent() != nil || l.Len() != 0 || l.Total() != 0 {
		t.Error("nil log should read as empty")
	}
	var sb strings.Builder
	if err := l.WriteJSONL(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("nil WriteJSONL = %q, %v", sb.String(), err)
	}
}

func TestSlowLogWriteJSONL(t *testing.T) {
	l := NewSlowLog(4, 0)
	l.Add(SlowQuery{Kind: KindGraph, Query: "[A,D]", Shard: 0, DurationNanos: 10})
	l.Add(SlowQuery{Kind: KindPathAgg, Shard: ShardCoordinator, DurationNanos: 20,
		Shards: []ShardTiming{{Shard: 0, QueueNanos: 1, DurationNanos: 2}, {Shard: 1, QueueNanos: 3, DurationNanos: 4}}})
	var sb strings.Builder
	if err := l.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), sb.String())
	}
	var first SlowQuery
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Kind != KindPathAgg || first.Shard != ShardCoordinator || len(first.Shards) != 2 {
		t.Errorf("newest entry = %+v, want the coordinator pathagg entry with 2 shard timings", first)
	}
	if first.Duration() != 20*time.Nanosecond {
		t.Errorf("duration = %v", first.Duration())
	}
}
