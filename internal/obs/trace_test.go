package obs

import (
	"encoding/json"
	"testing"
)

func TestActiveTraceSpans(t *testing.T) {
	io := IODelta{}
	tr := StartTrace(KindGraph, "[A,B]", io)
	io.BitmapColumnsFetched = 2
	tr.Begin(PhasePlan, io)
	io.BitmapColumnsFetched = 5
	io.BytesRead = 100
	tr.Begin(PhaseFetch, io)
	io.BitmapColumnsFetched = 7
	io.BytesRead = 300
	trace := tr.Finish(io)

	if trace.Kind != KindGraph || trace.Query != "[A,B]" {
		t.Errorf("trace header = %+v", trace)
	}
	if len(trace.Spans) != 2 {
		t.Fatalf("spans = %d", len(trace.Spans))
	}
	if trace.Spans[0].Phase != PhasePlan || trace.Spans[0].IO.BitmapColumnsFetched != 3 {
		t.Errorf("plan span = %+v", trace.Spans[0])
	}
	if trace.Spans[1].Phase != PhaseFetch || trace.Spans[1].IO.BitmapColumnsFetched != 2 ||
		trace.Spans[1].IO.BytesRead != 200 {
		t.Errorf("fetch span = %+v", trace.Spans[1])
	}
	// The trace total is the delta against the starting snapshot.
	if trace.IO.BitmapColumnsFetched != 7 || trace.IO.BytesRead != 300 {
		t.Errorf("trace IO = %+v", trace.IO)
	}
	if trace.DurationNanos < 0 {
		t.Errorf("duration = %d", trace.DurationNanos)
	}
}

func TestPhaseTotalsMergesRepeatedPhases(t *testing.T) {
	trace := Trace{Spans: []Span{
		{Phase: PhasePlan, DurationNanos: 10, IO: IODelta{BitmapColumnsFetched: 1}},
		{Phase: PhaseFetch, DurationNanos: 20, IO: IODelta{BitmapColumnsFetched: 2}},
		{Phase: PhasePlan, DurationNanos: 5, IO: IODelta{BitmapColumnsFetched: 3}},
	}}
	totals := trace.PhaseTotals()
	if len(totals) != 2 {
		t.Fatalf("totals = %+v", totals)
	}
	if totals[0].Phase != PhasePlan || totals[0].DurationNanos != 15 ||
		totals[0].IO.BitmapColumnsFetched != 4 {
		t.Errorf("merged plan = %+v", totals[0])
	}
	if totals[1].Phase != PhaseFetch || totals[1].DurationNanos != 20 {
		t.Errorf("fetch = %+v", totals[1])
	}
}

func TestNilActiveTraceIsSafe(t *testing.T) {
	var tr *ActiveTrace
	tr.Begin(PhasePlan, IODelta{})
	tr.SetCached()
	if got := tr.Finish(IODelta{}); len(got.Spans) != 0 {
		t.Errorf("nil trace produced spans: %+v", got)
	}
}

func TestTraceRingEviction(t *testing.T) {
	r := NewTraceRing(3)
	for i := 0; i < 5; i++ {
		r.Add(Trace{StartUnixNanos: int64(i)})
	}
	if r.Len() != 3 || r.Total() != 5 {
		t.Errorf("len = %d, total = %d", r.Len(), r.Total())
	}
	recent := r.Recent()
	// Newest first: 4, 3, 2.
	for i, want := range []int64{4, 3, 2} {
		if recent[i].StartUnixNanos != want {
			t.Errorf("recent[%d] = %d, want %d", i, recent[i].StartUnixNanos, want)
		}
	}
	var nilRing *TraceRing
	nilRing.Add(Trace{})
	if nilRing.Recent() != nil || nilRing.Len() != 0 || nilRing.Total() != 0 {
		t.Error("nil ring not inert")
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	in := Trace{Kind: KindGraph, Query: "[A,B]", DurationNanos: 42, Cached: true,
		Spans: []Span{{Phase: PhaseCache, DurationNanos: 42}}}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Trace
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != in.Kind || out.Cached != in.Cached || len(out.Spans) != 1 ||
		out.Spans[0].Phase != PhaseCache {
		t.Errorf("round trip = %+v", out)
	}
}
