package obs

import "time"

// Metric names, kept in one place so docs, tests and dashboards agree.
const (
	MetricQueriesTotal      = "grove_queries_total"
	MetricQueryDuration     = "grove_query_duration_seconds"
	MetricBatchesTotal      = "grove_batch_batches_total"
	MetricBatchQueriesTotal = "grove_batch_queries_total"
	MetricBatchWorkersBusy  = "grove_batch_workers_busy"
)

// QueryMetrics is the bundle of engine-side metrics the query package
// records on its hot paths. All fields are plain atomics; recording is
// allocation-free.
type QueryMetrics struct {
	GraphQueries     *Counter
	PathAggQueries   *Counter
	ExprQueries      *Counter
	StatementQueries *Counter

	GraphLatency     *Histogram
	PathAggLatency   *Histogram
	ExprLatency      *Histogram
	StatementLatency *Histogram

	// Batch-executor metrics: batches/queries submitted and a live gauge of
	// busy workers (pool utilization).
	BatchBatches     *Counter
	BatchQueries     *Counter
	BatchWorkersBusy *Gauge
}

// NewQueryMetrics registers the engine metric set on r and returns the
// handles.
func NewQueryMetrics(r *Registry) *QueryMetrics {
	queries := func(kind string) *Counter {
		return r.Counter(MetricQueriesTotal+"{"+Labels("kind", kind)+"}",
			"Queries executed, by kind.")
	}
	latency := func(kind string) *Histogram {
		return r.Histogram(MetricQueryDuration+"{"+Labels("kind", kind)+"}",
			"Query wall time in seconds, by kind.", nil)
	}
	return &QueryMetrics{
		GraphQueries:     queries(KindGraph),
		PathAggQueries:   queries(KindPathAgg),
		ExprQueries:      queries(KindExpr),
		StatementQueries: queries(KindStatement),
		GraphLatency:     latency(KindGraph),
		PathAggLatency:   latency(KindPathAgg),
		ExprLatency:      latency(KindExpr),
		StatementLatency: latency(KindStatement),
		BatchBatches: r.Counter(MetricBatchesTotal,
			"Query batches submitted to the batch executor."),
		BatchQueries: r.Counter(MetricBatchQueriesTotal,
			"Queries submitted through the batch executor."),
		BatchWorkersBusy: r.Gauge(MetricBatchWorkersBusy,
			"Batch-executor workers currently executing a query."),
	}
}

// Record counts one finished query of the given kind and observes its
// latency. Unknown kinds are ignored.
func (m *QueryMetrics) Record(kind string, d time.Duration) {
	if m == nil {
		return
	}
	secs := d.Seconds()
	switch kind {
	case KindGraph:
		m.GraphQueries.Inc()
		m.GraphLatency.Observe(secs)
	case KindPathAgg:
		m.PathAggQueries.Inc()
		m.PathAggLatency.Observe(secs)
	case KindExpr:
		m.ExprQueries.Inc()
		m.ExprLatency.Observe(secs)
	case KindStatement:
		m.StatementQueries.Inc()
		m.StatementLatency.Observe(secs)
	}
}
