package view

import (
	"sort"

	"grove/internal/colstore"
)

// SelectGraphViews solves the extended set cover problem of §5.2 greedily:
// the universes are the query edge sets, the coverable sets are the
// candidate views plus the implicit single-edge bitmaps, and each step picks
// the set covering the most still-uncovered edges across all universes. A
// candidate can only cover a universe it is a subset of (ANDing a non-subset
// view over-filters). Selection stops after k views, or as soon as no
// candidate beats a single-edge bitmap — whichever comes first. The
// complexity is O(Σ|Ui| × k), linear in the workload size.
//
// The return value lists the selected views in pick order, so prefixes of
// the result are exactly the selections for smaller budgets — this is what
// lets the Fig. 6–8 budget sweeps reuse one selection run.
func SelectGraphViews(cands []EdgeSet, queries []EdgeSet, k int) []EdgeSet {
	if k <= 0 || len(cands) == 0 || len(queries) == 0 {
		return nil
	}
	// uncovered[qi] tracks the not-yet-covered edges of each universe.
	uncovered := make([]map[colstore.EdgeID]struct{}, len(queries))
	for i, q := range queries {
		m := make(map[colstore.EdgeID]struct{}, len(q))
		for _, e := range q {
			m[e] = struct{}{}
		}
		uncovered[i] = m
	}
	// usable[ci] lists the universes candidate ci is a subset of.
	usable := make([][]int, len(cands))
	for ci, c := range cands {
		for qi, q := range queries {
			if c.SubsetOf(q) {
				usable[ci] = append(usable[ci], qi)
			}
		}
	}
	picked := make([]bool, len(cands))
	var out []EdgeSet
	for len(out) < k {
		bestIdx, bestGain := -1, 1 // must beat a single-edge bitmap (gain 1)
		for ci, c := range cands {
			if picked[ci] {
				continue
			}
			gain := 0
			for _, qi := range usable[ci] {
				for _, e := range c {
					if _, ok := uncovered[qi][e]; ok {
						gain++
					}
				}
			}
			if gain > bestGain {
				bestIdx, bestGain = ci, gain
			}
		}
		if bestIdx < 0 {
			break // a single-edge bitmap is as good as anything left (§5.2)
		}
		picked[bestIdx] = true
		c := cands[bestIdx]
		out = append(out, c)
		for _, qi := range usable[bestIdx] {
			for _, e := range c {
				delete(uncovered[qi], e)
			}
		}
	}
	return out
}

// PathSeq is an ordered edge-id sequence — the edges of a path in traversal
// order. Unlike EdgeSet it is NOT sorted: aggregate views must match
// contiguous stretches of query paths.
type PathSeq []colstore.EdgeID

// pathSeqKey builds a canonical key.
func pathSeqKey(p PathSeq) string {
	b := make([]byte, 0, len(p)*5)
	for _, e := range p {
		b = append(b, byte(e), byte(e>>8), byte(e>>16), byte(e>>24), ';')
	}
	return string(b)
}

// occurrencesIn returns the start offsets of p as a contiguous subsequence
// of path.
func (p PathSeq) occurrencesIn(path PathSeq) []int {
	if len(p) == 0 || len(p) > len(path) {
		return nil
	}
	var out []int
	for i := 0; i+len(p) <= len(path); i++ {
		match := true
		for j := range p {
			if path[i+j] != p[j] {
				match = false
				break
			}
		}
		if match {
			out = append(out, i)
		}
	}
	return out
}

// SelectAggViews greedily selects up to k aggregate graph views from the
// candidate paths (§5.4). The universes are the maximal paths of the
// workload queries (one per occurrence); a candidate's benefit is the number
// of still-uncovered edge positions it covers across all universes —
// proportional to path length, as the paper's cost model prescribes, since
// covering L edges with one stored column saves L−1 measure fetches.
// Occurrences within one path are taken leftmost, non-overlapping.
// Selection stops early when no candidate covers more than one position.
func SelectAggViews(cands []PathSeq, queryPaths []PathSeq, k int) []PathSeq {
	if k <= 0 || len(cands) == 0 || len(queryPaths) == 0 {
		return nil
	}
	covered := make([][]bool, len(queryPaths))
	for i, p := range queryPaths {
		covered[i] = make([]bool, len(p))
	}
	gainOf := func(c PathSeq) int {
		total := 0
		for pi, p := range queryPaths {
			occ := c.occurrencesIn(p)
			last := -len(c)
			for _, o := range occ {
				if o < last+len(c) {
					continue // overlap with previous occurrence
				}
				g := 0
				for j := 0; j < len(c); j++ {
					if !covered[pi][o+j] {
						g++
					}
				}
				total += g
				last = o
			}
		}
		return total
	}
	markCovered := func(c PathSeq) {
		for pi, p := range queryPaths {
			occ := c.occurrencesIn(p)
			last := -len(c)
			for _, o := range occ {
				if o < last+len(c) {
					continue
				}
				for j := 0; j < len(c); j++ {
					covered[pi][o+j] = true
				}
				last = o
			}
		}
	}
	picked := make([]bool, len(cands))
	var out []PathSeq
	for len(out) < k {
		bestIdx, bestGain := -1, 1 // must beat a raw single-edge column
		for ci, c := range cands {
			if picked[ci] {
				continue
			}
			if g := gainOf(c); g > bestGain {
				bestIdx, bestGain = ci, g
			}
		}
		if bestIdx < 0 {
			break
		}
		picked[bestIdx] = true
		out = append(out, cands[bestIdx])
		markCovered(cands[bestIdx])
	}
	return out
}

// NaiveTopKByFrequency is the ablation baseline for SelectGraphViews: it
// ranks whole query graphs by how often they recur in the workload and
// materializes the k most frequent, ignoring shared subgraphs entirely.
func NaiveTopKByFrequency(queries []EdgeSet, k int) []EdgeSet {
	type freq struct {
		set   EdgeSet
		count int
	}
	index := make(map[string]*freq)
	var order []*freq
	for _, q := range queries {
		if len(q) < 2 {
			continue
		}
		key := q.Key()
		if f, ok := index[key]; ok {
			f.count++
			continue
		}
		f := &freq{set: q, count: 1}
		index[key] = f
		order = append(order, f)
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].count != order[j].count {
			return order[i].count > order[j].count
		}
		return len(order[i].set) > len(order[j].set)
	})
	if k > len(order) {
		k = len(order)
	}
	out := make([]EdgeSet, 0, k)
	for _, f := range order[:k] {
		out = append(out, f.set)
	}
	return out
}
