package view

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// SelectionReport describes a view selection against its workload: what each
// chosen view covers and what the rewriting saves overall.
type SelectionReport struct {
	// Entries, in selection (pick) order.
	Entries []ReportEntry
	// WorkloadQueries is the number of queries considered.
	WorkloadQueries int
	// BitmapsBefore / BitmapsAfter are the workload's total structural
	// bitmap fetches without and with the selected views (greedy rewriting).
	BitmapsBefore int
	BitmapsAfter  int
}

// ReportEntry is one selected view in a report.
type ReportEntry struct {
	Edges        EdgeSet
	QueriesUsing int // queries this view is a subgraph of
}

// Savings returns the fractional reduction in bitmap fetches (0..1).
func (r SelectionReport) Savings() float64 {
	if r.BitmapsBefore == 0 {
		return 0
	}
	return 1 - float64(r.BitmapsAfter)/float64(r.BitmapsBefore)
}

// Report evaluates a graph-view selection against a workload: per-view usage
// counts plus the before/after bitmap cost of the whole workload under the
// §5.3 greedy rewriting.
func Report(selected []EdgeSet, queries []EdgeSet) SelectionReport {
	rep := SelectionReport{WorkloadQueries: len(queries)}
	for _, v := range selected {
		e := ReportEntry{Edges: v}
		for _, q := range queries {
			if v.SubsetOf(q) {
				e.QueriesUsing++
			}
		}
		rep.Entries = append(rep.Entries, e)
	}
	for _, q := range queries {
		rep.BitmapsBefore += len(q)
	}
	rep.BitmapsAfter = workloadCost(queries, selected)
	return rep
}

// workloadCost replays the greedy query-time rewriting against the selection
// and totals the bitmaps fetched.
func workloadCost(queries, views []EdgeSet) int {
	total := 0
	for _, q := range queries {
		uncovered := make(map[uint32]struct{}, len(q))
		for _, e := range q {
			uncovered[uint32(e)] = struct{}{}
		}
		for {
			best, gain := -1, 1
			for vi, v := range views {
				if !v.SubsetOf(q) {
					continue
				}
				g := 0
				for _, e := range v {
					if _, ok := uncovered[uint32(e)]; ok {
						g++
					}
				}
				if g > gain {
					best, gain = vi, g
				}
			}
			if best < 0 {
				break
			}
			total++
			for _, e := range views[best] {
				delete(uncovered, uint32(e))
			}
		}
		total += len(uncovered)
	}
	return total
}

// Render writes a human-readable report.
func (r SelectionReport) Render(w io.Writer, describe func(EdgeSet) string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "workload: %d queries, %d bitmap fetches without views\n",
		r.WorkloadQueries, r.BitmapsBefore)
	fmt.Fprintf(&b, "with %d views: %d fetches (%.1f%% saved)\n",
		len(r.Entries), r.BitmapsAfter, 100*r.Savings())
	entries := append([]ReportEntry(nil), r.Entries...)
	sort.SliceStable(entries, func(i, j int) bool {
		return entries[i].QueriesUsing > entries[j].QueriesUsing
	})
	for i, e := range entries {
		desc := e.Edges.Key()
		if describe != nil {
			desc = describe(e.Edges)
		}
		fmt.Fprintf(&b, "  %2d. %d edges, used by %d queries: %s\n",
			i+1, len(e.Edges), e.QueriesUsing, desc)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
