package view

import (
	"math/rand"
	"testing"

	"grove/internal/colstore"
	"grove/internal/graph"
)

func benchWorkload(n, edgesPer, domain int, seed int64) []EdgeSet {
	rng := rand.New(rand.NewSource(seed))
	out := make([]EdgeSet, n)
	for i := range out {
		ids := make([]colstore.EdgeID, edgesPer)
		base := rng.Intn(domain)
		for j := range ids {
			// Overlapping windows so queries share subgraphs.
			ids[j] = colstore.EdgeID((base + j + rng.Intn(3)) % domain)
		}
		out[i] = NewEdgeSet(ids)
	}
	return out
}

func BenchmarkCandidatesClosure(b *testing.B) {
	queries := benchWorkload(100, 8, 300, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CandidatesByIntersection(queries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCandidatesApriori(b *testing.B) {
	queries := benchWorkload(100, 8, 300, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CandidatesApriori(queries, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterSuperseded(b *testing.B) {
	queries := benchWorkload(100, 8, 300, 1)
	cands, err := CandidatesByIntersection(queries)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FilterSuperseded(cands, queries)
	}
}

// BenchmarkSelectGreedy vs BenchmarkSelectNaive: the §5.2 greedy extended
// set cover against the naive frequency heuristic — both timed, with the
// resulting workload cost reported so the quality gap is visible too.
func BenchmarkSelectGreedy(b *testing.B) {
	queries := benchWorkload(100, 8, 300, 1)
	cands, err := Candidates(queries, 0)
	if err != nil {
		b.Fatal(err)
	}
	var sel []EdgeSet
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel = SelectGraphViews(cands, queries, 50)
	}
	b.StopTimer()
	b.ReportMetric(float64(workloadBitmapCost(queries, sel)), "bitmaps/workload")
}

func BenchmarkSelectNaiveTopK(b *testing.B) {
	queries := benchWorkload(100, 8, 300, 1)
	var sel []EdgeSet
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel = NaiveTopKByFrequency(queries, 50)
	}
	b.StopTimer()
	b.ReportMetric(float64(workloadBitmapCost(queries, sel)), "bitmaps/workload")
}

// workloadBitmapCost replays the greedy query-time rewriting (§5.3) against
// a view selection and totals the bitmaps each query would fetch.
func workloadBitmapCost(queries, views []EdgeSet) int {
	total := 0
	for _, q := range queries {
		uncovered := make(map[colstore.EdgeID]struct{}, len(q))
		for _, e := range q {
			uncovered[e] = struct{}{}
		}
		for {
			best, gain := -1, 1
			for vi, v := range views {
				if !v.SubsetOf(q) {
					continue
				}
				g := 0
				for _, e := range v {
					if _, ok := uncovered[e]; ok {
						g++
					}
				}
				if g > gain {
					best, gain = vi, g
				}
			}
			if best < 0 {
				break
			}
			total++
			for _, e := range views[best] {
				delete(uncovered, e)
			}
		}
		total += len(uncovered)
	}
	return total
}

func BenchmarkAggCandidates(b *testing.B) {
	// Path workloads as graphs.
	rng := rand.New(rand.NewSource(2))
	gs := benchPathGraphs(rng, 50, 6)
	reg := benchRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := AggCandidates(gs, reg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPathGraphs builds overlapping path query graphs over a chain
// namespace n0..n99.
func benchPathGraphs(rng *rand.Rand, n, length int) []*graph.Graph {
	out := make([]*graph.Graph, n)
	for i := range out {
		g := graph.NewGraph()
		start := rng.Intn(90)
		for j := 0; j < length; j++ {
			g.AddEdge(nodeName(start+j), nodeName(start+j+1))
		}
		out[i] = g
	}
	return out
}

func nodeName(i int) string { return "n" + string(rune('0'+i/10)) + string(rune('0'+i%10)) }

func benchRegistry() *graph.Registry { return graph.NewRegistry() }
