package view

import (
	"fmt"
	"sort"

	"grove/internal/colstore"
	"grove/internal/gpath"
	"grove/internal/graph"
)

// AggCandidates computes the candidate aggregate graph views Cp of §5.4 for
// a workload of path-aggregation query graphs:
//
//  1. P_All — the maximal paths of every query; G_All — the union graph.
//  2. A node of G_All is *interesting* when it is (a) the origin or endpoint
//     of a maximal path, (b) the start of ≥2 distinct edges traversed by
//     maximal paths, or (c) the end of ≥2 such edges.
//  3. Cp = all simple paths of length ≥ 2 edges between interesting nodes.
//
// By the aggregate-view monotonicity property, any path omitted from this
// set is dominated by a candidate that contains it. The returned candidates
// are edge-id sequences ready for SelectAggViews; the function also returns
// the maximal paths (as sequences) for use as selection universes.
func AggCandidates(queries []*graph.Graph, reg *graph.Registry) (cands []PathSeq, universes []PathSeq, err error) {
	gAll := graph.NewGraph()
	var pAll []gpath.Path
	for _, q := range queries {
		paths, err := gpath.MaximalPaths(q)
		if err != nil {
			return nil, nil, fmt.Errorf("view: enumerating maximal paths: %w", err)
		}
		pAll = append(pAll, paths...)
		for _, k := range q.Elements() {
			gAll.AddElement(k)
		}
	}
	if len(pAll) == 0 {
		return nil, nil, nil
	}

	// Traversed-edge bookkeeping for the interesting-node rules.
	startFanout := make(map[string]map[string]struct{}) // node → distinct next hops on maximal paths
	endFanin := make(map[string]map[string]struct{})    // node → distinct previous hops
	interesting := make(map[string]struct{})
	for _, p := range pAll {
		interesting[p.Start()] = struct{}{}
		interesting[p.End()] = struct{}{}
		for _, e := range p.Edges() {
			addTo(startFanout, e.From, e.To)
			addTo(endFanin, e.To, e.From)
		}
	}
	for n, outs := range startFanout {
		if len(outs) >= 2 {
			interesting[n] = struct{}{}
		}
	}
	for n, ins := range endFanin {
		if len(ins) >= 2 {
			interesting[n] = struct{}{}
		}
	}

	nodes := make([]string, 0, len(interesting))
	for n := range interesting {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	// All simple paths between interesting nodes with ≥ 2 edges. Paths are
	// enumerated within each query graph rather than within G_All: a
	// candidate that is not a path of some query graph can never cover a
	// query path, and per-query enumeration avoids the combinatorial blowup
	// of dense union graphs. (On the paper's §5.4 example the two
	// enumerations coincide.)
	seen := make(map[string]struct{})
	for _, q := range queries {
		qNodes := make([]string, 0, len(nodes))
		for _, n := range nodes {
			if q.HasNode(n) {
				qNodes = append(qNodes, n)
			}
		}
		paths, err := gpath.AllPaths(q, qNodes, qNodes, false, false)
		if err != nil {
			return nil, nil, fmt.Errorf("view: enumerating candidate paths: %w", err)
		}
		for _, p := range paths {
			if p.Len() < 2 {
				continue // single edges are already stored (§5.4)
			}
			seq := pathToSeq(p, reg)
			key := pathSeqKey(seq)
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			cands = append(cands, seq)
		}
	}
	for _, p := range pAll {
		universes = append(universes, pathToSeq(p, reg))
	}
	return cands, universes, nil
}

func addTo(m map[string]map[string]struct{}, k, v string) {
	s, ok := m[k]
	if !ok {
		s = make(map[string]struct{})
		m[k] = s
	}
	s[v] = struct{}{}
}

// pathToSeq maps a path's edges to their registry ids in traversal order.
func pathToSeq(p gpath.Path, reg *graph.Registry) PathSeq {
	edges := p.Edges()
	out := make(PathSeq, len(edges))
	for i, e := range edges {
		out[i] = reg.ID(e)
	}
	return out
}

// SeqToPathEdges converts a selected PathSeq back to edge ids for
// materialization.
func SeqToPathEdges(s PathSeq) []colstore.EdgeID {
	return append([]colstore.EdgeID(nil), s...)
}
