package view

import (
	"fmt"

	"grove/internal/colstore"
	"grove/internal/graph"
	"grove/internal/query"
)

// Advisor runs the complete §5 pipeline against a master relation: candidate
// generation from a query workload, greedy selection under a budget of k
// views, and materialization into the relation's schema.
type Advisor struct {
	Rel *colstore.Relation
	Reg *graph.Registry
	// MinSup < 2 uses the exhaustive intersection-closure candidate
	// generator; ≥ 2 uses the a-priori frequent-itemset generator with that
	// minimum support (§5.2).
	MinSup int
}

// NewAdvisor returns an advisor with exhaustive candidate generation.
func NewAdvisor(rel *colstore.Relation, reg *graph.Registry) *Advisor {
	return &Advisor{Rel: rel, Reg: reg}
}

// WorkloadEdgeSets maps query graphs to edge-id sets via the registry.
func (a *Advisor) WorkloadEdgeSets(queries []*graph.Graph) []EdgeSet {
	out := make([]EdgeSet, len(queries))
	for i, q := range queries {
		out[i] = NewEdgeSet(a.Reg.GraphIDs(q))
	}
	return out
}

// SelectGraphViews generates candidates for the workload and selects up to k
// graph views, without materializing them.
func (a *Advisor) SelectGraphViews(queries []*graph.Graph, k int) ([]EdgeSet, error) {
	sets := a.WorkloadEdgeSets(queries)
	cands, err := Candidates(sets, a.MinSup)
	if err != nil {
		return nil, err
	}
	return SelectGraphViews(cands, sets, k), nil
}

// MaterializeGraphViews selects and materializes up to k graph views for the
// workload, returning the created view names (v0, v1, … in pick order).
func (a *Advisor) MaterializeGraphViews(queries []*graph.Graph, k int) ([]string, error) {
	selected, err := a.SelectGraphViews(queries, k)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(selected))
	for i, s := range selected {
		name := fmt.Sprintf("v%d", i)
		for a.Rel.View(name) != nil {
			name = "x" + name
		}
		if _, err := a.Rel.MaterializeView(name, s); err != nil {
			return names, fmt.Errorf("view: materializing %s: %w", name, err)
		}
		names = append(names, name)
	}
	return names, nil
}

// SelectAggViews generates aggregate-view candidates for the workload and
// selects up to k, without materializing.
func (a *Advisor) SelectAggViews(queries []*graph.Graph, k int) ([]PathSeq, error) {
	cands, universes, err := AggCandidates(queries, a.Reg)
	if err != nil {
		return nil, err
	}
	if a.MinSup >= 2 {
		cands = FilterAggBySupport(cands, universes, a.MinSup)
	}
	return SelectAggViews(cands, universes, k), nil
}

// FilterAggBySupport keeps candidates occurring in at least minSup workload
// paths, mirroring the a-priori support threshold for aggregate views.
func FilterAggBySupport(cands, universes []PathSeq, minSup int) []PathSeq {
	var out []PathSeq
	for _, c := range cands {
		sup := 0
		for _, u := range universes {
			if len(c.occurrencesIn(u)) > 0 {
				sup++
				if sup >= minSup {
					break
				}
			}
		}
		if sup >= minSup {
			out = append(out, c)
		}
	}
	return out
}

// MaterializeAggViews selects and materializes up to k aggregate graph views
// for the workload under aggregate function agg, returning the created view
// names (p0, p1, … in pick order).
func (a *Advisor) MaterializeAggViews(queries []*graph.Graph, agg query.AggFunc, k int) ([]string, error) {
	selected, err := a.SelectAggViews(queries, k)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(selected))
	for i, seq := range selected {
		name := fmt.Sprintf("p%d", i)
		for a.Rel.AggView(name) != nil {
			name = "x" + name
		}
		if _, err := a.Rel.MaterializeAggView(name, SeqToPathEdges(seq), agg); err != nil {
			return names, fmt.Errorf("view: materializing %s: %w", name, err)
		}
		names = append(names, name)
	}
	return names, nil
}
