package view

import (
	"math/rand"
	"testing"

	"grove/internal/colstore"
	"grove/internal/graph"
)

func es(ids ...colstore.EdgeID) EdgeSet { return NewEdgeSet(ids) }

func TestEdgeSetBasics(t *testing.T) {
	s := NewEdgeSet([]colstore.EdgeID{3, 1, 2, 3, 1})
	if len(s) != 3 || s[0] != 1 || s[2] != 3 {
		t.Fatalf("NewEdgeSet = %v", s)
	}
	if s.Key() != "1,2,3" {
		t.Errorf("Key = %q", s.Key())
	}
	if !s.Contains(2) || s.Contains(4) {
		t.Error("Contains wrong")
	}
	if !es(1, 2).SubsetOf(s) || es(1, 4).SubsetOf(s) {
		t.Error("SubsetOf wrong")
	}
	if !es(1, 2).ProperSubsetOf(s) || s.ProperSubsetOf(s) {
		t.Error("ProperSubsetOf wrong")
	}
	inter := es(1, 2, 5).Intersect(es(2, 5, 9))
	if inter.Key() != "2,5" {
		t.Errorf("Intersect = %v", inter)
	}
}

func TestCandidatesContainAllQueries(t *testing.T) {
	queries := []EdgeSet{es(1, 2, 3), es(2, 3, 4), es(5, 6)}
	cands, err := Candidates(queries, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, c := range cands {
		keys[c.Key()] = true
	}
	// Every multi-edge query graph must be a candidate (§5.2, first bullet).
	for _, q := range queries {
		if !keys[q.Key()] {
			t.Errorf("query %v missing from candidates %v", q, cands)
		}
	}
	// The pairwise intersection {2,3} must be a candidate (second bullet).
	if !keys["2,3"] {
		t.Errorf("intersection {2,3} missing from %v", cands)
	}
}

func TestCandidatesSubsetQueryNotSuperseded(t *testing.T) {
	// Gqi ⊂ Gqj does NOT imply the view Gqi is superseded (§5.2 proof by
	// contradiction): both must be kept.
	queries := []EdgeSet{es(1, 2), es(1, 2, 3)}
	cands, err := Candidates(queries, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, c := range cands {
		keys[c.Key()] = true
	}
	if !keys["1,2"] || !keys["1,2,3"] {
		t.Fatalf("candidates = %v, want both queries kept", cands)
	}
}

func TestFilterSupersededDropsDominated(t *testing.T) {
	queries := []EdgeSet{es(1, 2, 3)}
	// {1,2} is superseded by {1,2,3}: every query containing {1,2} (just the
	// one) also contains {1,2,3}.
	cands := []EdgeSet{es(1, 2), es(1, 2, 3)}
	got := FilterSuperseded(cands, queries)
	if len(got) != 1 || got[0].Key() != "1,2,3" {
		t.Fatalf("FilterSuperseded = %v, want [{1,2,3}]", got)
	}
}

func TestFilterSupersededKeepsSharedSubgraph(t *testing.T) {
	queries := []EdgeSet{es(1, 2, 3), es(2, 3, 4)}
	cands := []EdgeSet{es(1, 2, 3), es(2, 3, 4), es(2, 3)}
	got := FilterSuperseded(cands, queries)
	if len(got) != 3 {
		t.Fatalf("FilterSuperseded = %v, want all three kept", got)
	}
}

func TestIntersectionClosureIteratesDeep(t *testing.T) {
	// The intersection of intersections must appear (footnote 1 in §5.2):
	// Q1∩Q2 = {2,3,4,7}, Q3∩(Q1∩Q2) = {2,3}.
	queries := []EdgeSet{es(1, 2, 3, 4, 7), es(2, 3, 4, 5, 7), es(2, 3, 6)}
	cands, err := CandidatesByIntersection(queries)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, c := range cands {
		keys[c.Key()] = true
	}
	if !keys["2,3,4,7"] || !keys["2,3"] {
		t.Fatalf("closure missing nested intersections: %v", cands)
	}
}

func TestAprioriSupport(t *testing.T) {
	queries := []EdgeSet{
		es(1, 2, 3), es(1, 2, 3), es(1, 2, 4), es(5, 6),
	}
	cands, err := CandidatesApriori(queries, 3)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, c := range cands {
		keys[c.Key()] = true
	}
	// {1,2} has support 3; {1,2,3} only 2; {5,6} only 1.
	if !keys["1,2"] {
		t.Errorf("frequent set {1,2} missing: %v", cands)
	}
	if keys["1,2,3"] || keys["5,6"] {
		t.Errorf("infrequent sets leaked: %v", cands)
	}
}

func TestAprioriRejectsLowMinSup(t *testing.T) {
	if _, err := CandidatesApriori([]EdgeSet{es(1, 2)}, 1); err == nil {
		t.Error("minSup=1 accepted")
	}
}

func TestAprioriMonotoneInMinSup(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var queries []EdgeSet
	for i := 0; i < 40; i++ {
		var ids []colstore.EdgeID
		n := 3 + rng.Intn(4)
		for j := 0; j < n; j++ {
			ids = append(ids, colstore.EdgeID(rng.Intn(15)))
		}
		queries = append(queries, NewEdgeSet(ids))
	}
	prev := -1
	for _, minSup := range []int{2, 4, 8, 16} {
		cands, err := Candidates(queries, minSup)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && len(cands) > prev {
			t.Errorf("candidates grew from %d to %d when minSup rose to %d",
				prev, len(cands), minSup)
		}
		prev = len(cands)
	}
}

func TestSelectSingleQueryPicksWholeQuery(t *testing.T) {
	// With a single query, the optimal single view is the whole query (§5.2).
	queries := []EdgeSet{es(1, 2, 3, 4)}
	cands, err := Candidates(queries, 0)
	if err != nil {
		t.Fatal(err)
	}
	sel := SelectGraphViews(cands, queries, 1)
	if len(sel) != 1 || sel[0].Key() != "1,2,3,4" {
		t.Fatalf("selection = %v, want whole query", sel)
	}
}

func TestSelectBudgetAndPrefixProperty(t *testing.T) {
	queries := []EdgeSet{
		es(1, 2, 3), es(1, 2, 3), es(4, 5, 6), es(7, 8),
	}
	cands, err := Candidates(queries, 0)
	if err != nil {
		t.Fatal(err)
	}
	k1 := SelectGraphViews(cands, queries, 1)
	k3 := SelectGraphViews(cands, queries, 3)
	if len(k1) != 1 || len(k3) < 2 {
		t.Fatalf("selection sizes: %d, %d", len(k1), len(k3))
	}
	if k1[0].Key() != k3[0].Key() {
		t.Error("greedy selection is not prefix-stable")
	}
	// Highest-benefit pick first: {1,2,3} covers 6 uncovered edges (twice in
	// the workload).
	if k1[0].Key() != "1,2,3" {
		t.Errorf("first pick = %v, want {1,2,3}", k1[0])
	}
}

func TestSelectStopsWhenSingleEdgesWin(t *testing.T) {
	// Disjoint single-edge universes: no multi-edge candidate exists, so the
	// greedy algorithm should stop immediately.
	queries := []EdgeSet{es(1), es(2)}
	cands, err := Candidates(queries, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sel := SelectGraphViews(cands, queries, 5); len(sel) != 0 {
		t.Fatalf("selection = %v, want empty", sel)
	}
}

func TestSelectZeroBudget(t *testing.T) {
	queries := []EdgeSet{es(1, 2)}
	if sel := SelectGraphViews([]EdgeSet{es(1, 2)}, queries, 0); sel != nil {
		t.Fatal("k=0 selected views")
	}
}

func TestNaiveTopKByFrequency(t *testing.T) {
	queries := []EdgeSet{es(1, 2), es(1, 2), es(3, 4), es(5)}
	sel := NaiveTopKByFrequency(queries, 2)
	if len(sel) != 2 || sel[0].Key() != "1,2" || sel[1].Key() != "3,4" {
		t.Fatalf("naive selection = %v", sel)
	}
}

// --- aggregate view candidates (§5.4 worked example) -------------------------

// fig2AsQueries builds the three Fig. 2 graphs used as queries in the §5.4
// example, with geometry e1=(A,B) e2=(A,C) e3=(C,E) e4=(A,D) e5=(D,E)
// e6=(E,F) e7=(F,G).
func fig2AsQueries() []*graph.Graph {
	mk := func(edges ...[2]string) *graph.Graph {
		g := graph.NewGraph()
		for _, e := range edges {
			g.AddEdge(e[0], e[1])
		}
		return g
	}
	r1 := mk([2]string{"A", "B"}, [2]string{"A", "C"}, [2]string{"C", "E"},
		[2]string{"A", "D"}, [2]string{"D", "E"})
	r2 := mk([2]string{"A", "C"}, [2]string{"C", "E"}, [2]string{"A", "D"},
		[2]string{"D", "E"}, [2]string{"E", "F"}, [2]string{"F", "G"})
	r3 := mk([2]string{"A", "D"}, [2]string{"D", "E"}, [2]string{"E", "F"},
		[2]string{"F", "G"})
	return []*graph.Graph{r1, r2, r3}
}

func TestAggCandidatesPaperExample(t *testing.T) {
	reg := graph.NewRegistry()
	cands, universes, err := AggCandidates(fig2AsQueries(), reg)
	if err != nil {
		t.Fatal(err)
	}
	// §5.4: interesting nodes are A, B, E, G; candidates are [A,C,E],
	// [A,D,E], [A,C,E,F,G], [A,D,E,F,G] and [E,F,G] — exactly 5.
	if len(cands) != 5 {
		t.Fatalf("got %d candidates, want 5 (paper example): %v", len(cands), cands)
	}
	toSeq := func(nodes ...string) string {
		var seq PathSeq
		for i := 0; i+1 < len(nodes); i++ {
			seq = append(seq, reg.ID(graph.E(nodes[i], nodes[i+1])))
		}
		return pathSeqKey(seq)
	}
	want := map[string]string{
		"[A,C,E]":     toSeq("A", "C", "E"),
		"[A,D,E]":     toSeq("A", "D", "E"),
		"[A,C,E,F,G]": toSeq("A", "C", "E", "F", "G"),
		"[A,D,E,F,G]": toSeq("A", "D", "E", "F", "G"),
		"[E,F,G]":     toSeq("E", "F", "G"),
	}
	got := map[string]bool{}
	for _, c := range cands {
		got[pathSeqKey(c)] = true
	}
	for name, key := range want {
		if !got[key] {
			t.Errorf("candidate %s missing", name)
		}
	}
	// Universes: the maximal paths of the three queries (6 total:
	// [A,B],[A,C,E],[A,D,E] / [A,C,E,F,G],[A,D,E,F,G] / [A,D,E,F,G]).
	if len(universes) != 6 {
		t.Errorf("got %d universes, want 6", len(universes))
	}
}

func TestAggCandidatesEmptyWorkload(t *testing.T) {
	reg := graph.NewRegistry()
	cands, universes, err := AggCandidates(nil, reg)
	if err != nil || cands != nil || universes != nil {
		t.Fatalf("empty workload: %v %v %v", cands, universes, err)
	}
}

func TestSelectAggViewsPaperExample(t *testing.T) {
	reg := graph.NewRegistry()
	cands, universes, err := AggCandidates(fig2AsQueries(), reg)
	if err != nil {
		t.Fatal(err)
	}
	sel := SelectAggViews(cands, universes, 2)
	if len(sel) != 2 {
		t.Fatalf("selected %d views, want 2", len(sel))
	}
	// First pick must be a 4-edge path ([A,C,E,F,G] or [A,D,E,F,G]): it
	// covers the most uncovered positions (A,D,E,F,G occurs twice).
	if len(sel[0]) != 4 {
		t.Errorf("first pick has %d edges, want 4: %v", len(sel[0]), sel[0])
	}
}

func TestSelectAggViewsOccurrenceOverlap(t *testing.T) {
	// Candidate [1,2] occurs twice non-overlapping in path [1,2,1,2]:
	// covering gain 4.
	cands := []PathSeq{{1, 2}}
	paths := []PathSeq{{1, 2, 1, 2}}
	sel := SelectAggViews(cands, paths, 5)
	if len(sel) != 1 {
		t.Fatalf("selection = %v", sel)
	}
}

func TestOccurrencesIn(t *testing.T) {
	p := PathSeq{1, 2}
	if got := p.occurrencesIn(PathSeq{1, 2, 3, 1, 2}); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("occurrences = %v", got)
	}
	if got := p.occurrencesIn(PathSeq{2, 1}); got != nil {
		t.Errorf("occurrences = %v, want none", got)
	}
	if got := (PathSeq{}).occurrencesIn(PathSeq{1}); got != nil {
		t.Errorf("empty pattern matched: %v", got)
	}
}
