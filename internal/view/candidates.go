// Package view implements grove's materialized graph-view framework, the
// core contribution of the paper (§5): generation of candidate graph views
// (intersection closure and a-priori frequent-itemset formulations, §5.2),
// monotonicity-based supersession pruning, candidate aggregate graph views
// via interesting nodes (§5.4), and greedy extended-set-cover selection
// under a space budget of k views.
package view

import (
	"fmt"
	"sort"
	"strings"

	"grove/internal/colstore"
)

// EdgeSet is a sorted, deduplicated set of edge ids — the edge set of a
// query graph or a candidate view.
type EdgeSet []colstore.EdgeID

// NewEdgeSet normalizes a slice of ids into an EdgeSet.
func NewEdgeSet(ids []colstore.EdgeID) EdgeSet {
	s := append([]colstore.EdgeID(nil), ids...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:0]
	var prev colstore.EdgeID
	for i, e := range s {
		if i == 0 || e != prev {
			out = append(out, e)
		}
		prev = e
	}
	return EdgeSet(out)
}

// Key returns a canonical map key for the set.
func (s EdgeSet) Key() string {
	var sb strings.Builder
	for i, e := range s {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", e)
	}
	return sb.String()
}

// Contains reports whether e ∈ s (binary search).
func (s EdgeSet) Contains(e colstore.EdgeID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= e })
	return i < len(s) && s[i] == e
}

// SubsetOf reports s ⊆ t.
func (s EdgeSet) SubsetOf(t EdgeSet) bool {
	if len(s) > len(t) {
		return false
	}
	i := 0
	for _, e := range s {
		for i < len(t) && t[i] < e {
			i++
		}
		if i >= len(t) || t[i] != e {
			return false
		}
	}
	return true
}

// ProperSubsetOf reports s ⊂ t.
func (s EdgeSet) ProperSubsetOf(t EdgeSet) bool {
	return len(s) < len(t) && s.SubsetOf(t)
}

// Intersect returns s ∩ t.
func (s EdgeSet) Intersect(t EdgeSet) EdgeSet {
	var out EdgeSet
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// maxClosureCandidates bounds intersection-closure growth; workloads with
// pathological overlap (§5.2's |Cv| = O(2^|Gq|) case) should use the
// a-priori generator instead.
const maxClosureCandidates = 1 << 16

// CandidatesByIntersection computes the candidate view set Cv of §5.2 by
// closure: every query graph, plus the common subgraphs of every subset of
// query graphs — obtained by iteratively intersecting pairs until a fixpoint
// (the "intersections of intersections" refinement). The result is then
// pruned with FilterSuperseded by the caller or via Candidates.
func CandidatesByIntersection(queries []EdgeSet) ([]EdgeSet, error) {
	index := make(map[string]EdgeSet)
	var order []EdgeSet
	add := func(s EdgeSet) bool {
		if len(s) == 0 {
			return false
		}
		k := s.Key()
		if _, dup := index[k]; dup {
			return false
		}
		index[k] = s
		order = append(order, s)
		return true
	}
	for _, q := range queries {
		add(q)
	}
	// Fixpoint: intersect every new set with every existing set.
	frontier := append([]EdgeSet(nil), order...)
	for len(frontier) > 0 {
		var next []EdgeSet
		for _, a := range frontier {
			for _, b := range order {
				inter := a.Intersect(b)
				if len(inter) == 0 || len(inter) == len(a) || len(inter) == len(b) {
					continue
				}
				if add(inter) {
					next = append(next, inter)
					if len(order) > maxClosureCandidates {
						return nil, fmt.Errorf("view: intersection closure exceeded %d candidates; use a-priori generation with a minimum support", maxClosureCandidates)
					}
				}
			}
		}
		frontier = next
	}
	return order, nil
}

// CandidatesApriori computes candidate views as frequent edge sets: each
// query is a transaction of edge "items", and a set of edges is a candidate
// when at least minSup queries contain all of it (§5.2's frequent-itemset
// formulation, after Agrawal & Srikant). minSup ≥ 1; minSup = 1 degenerates
// to all subsets of single queries and is rejected in favour of the closure
// generator.
func CandidatesApriori(queries []EdgeSet, minSup int) ([]EdgeSet, error) {
	if minSup < 2 {
		return nil, fmt.Errorf("view: a-priori needs minSup ≥ 2, got %d (use CandidatesByIntersection for exhaustive generation)", minSup)
	}
	// L1: frequent single edges.
	counts := make(map[colstore.EdgeID]int)
	for _, q := range queries {
		for _, e := range q {
			counts[e]++
		}
	}
	var l1 []EdgeSet
	for e, c := range counts {
		if c >= minSup {
			l1 = append(l1, EdgeSet{e})
		}
	}
	sort.Slice(l1, func(i, j int) bool { return l1[i][0] < l1[j][0] })

	var all []EdgeSet
	prev := l1
	for len(prev) > 0 {
		all = append(all, prev...)
		if len(all) > maxClosureCandidates {
			return nil, fmt.Errorf("view: a-priori exceeded %d candidates; raise minSup", maxClosureCandidates)
		}
		// Candidate generation: join sets sharing all but their last element.
		var cands []EdgeSet
		for i := 0; i < len(prev); i++ {
			for j := i + 1; j < len(prev); j++ {
				a, b := prev[i], prev[j]
				if !samePrefix(a, b) {
					continue
				}
				c := make(EdgeSet, len(a)+1)
				copy(c, a)
				last := b[len(b)-1]
				if last < a[len(a)-1] {
					continue
				}
				c[len(a)] = last
				cands = append(cands, c)
			}
		}
		// Support counting.
		var next []EdgeSet
		for _, c := range cands {
			sup := 0
			for _, q := range queries {
				if c.SubsetOf(q) {
					sup++
				}
			}
			if sup >= minSup {
				next = append(next, c)
			}
		}
		prev = next
	}
	// Single-edge itemsets are not views (their bitmaps already exist).
	out := all[:0]
	for _, s := range all {
		if len(s) >= 2 {
			out = append(out, s)
		}
	}
	return out, nil
}

func samePrefix(a, b EdgeSet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i+1 < len(a); i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FilterSuperseded removes candidates superseded under the monotonicity
// property of §5.2: Gv ≺ Gv' iff Gv ⊂ Gv' and every query containing Gv also
// contains Gv'. A superseded view can never beat its superseder in any
// rewriting, so it is dropped from Cv.
func FilterSuperseded(cands []EdgeSet, queries []EdgeSet) []EdgeSet {
	// Deduplicate candidates and precompute each candidate's supporting
	// query index set.
	uniq := make(map[string]EdgeSet, len(cands))
	var order []EdgeSet
	for _, c := range cands {
		k := c.Key()
		if _, dup := uniq[k]; !dup && len(c) > 0 {
			uniq[k] = c
			order = append(order, c)
		}
	}
	support := make([][]int, len(order))
	for i, c := range order {
		for qi, q := range queries {
			if c.SubsetOf(q) {
				support[i] = append(support[i], qi)
			}
		}
	}
	superseded := make([]bool, len(order))
	for i, small := range order {
		for j, big := range order {
			if i == j || superseded[i] {
				continue
			}
			if small.ProperSubsetOf(big) && equalInts(support[i], support[j]) {
				superseded[i] = true
				break
			}
		}
	}
	var out []EdgeSet
	for i, c := range order {
		if !superseded[i] {
			out = append(out, c)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Candidates is the full §5.2 pipeline: generate (closure when minSup < 2,
// a-priori otherwise) and prune superseded views. Single-edge sets are never
// candidates — their bitmaps are already stored.
func Candidates(queries []EdgeSet, minSup int) ([]EdgeSet, error) {
	var (
		raw []EdgeSet
		err error
	)
	if minSup < 2 {
		raw, err = CandidatesByIntersection(queries)
	} else {
		raw, err = CandidatesApriori(queries, minSup)
	}
	if err != nil {
		return nil, err
	}
	var multi []EdgeSet
	for _, s := range raw {
		if len(s) >= 2 {
			multi = append(multi, s)
		}
	}
	return FilterSuperseded(multi, queries), nil
}
