package view

import (
	"math/rand"
	"testing"

	"grove/internal/colstore"
	"grove/internal/gpath"
	"grove/internal/graph"
	"grove/internal/query"
)

// buildWorkloadFixture loads random layered-DAG records and returns a
// workload of query graphs drawn from them.
func buildWorkloadFixture(t *testing.T, rng *rand.Rand) (*colstore.Relation, *graph.Registry, []*graph.Graph) {
	t.Helper()
	rel := colstore.NewRelation(0)
	reg := graph.NewRegistry()
	name := func(layer, i int) string {
		return string(rune('A'+layer)) + string(rune('0'+i))
	}
	var chains [][]string
	for i := 0; i < 200; i++ {
		nodes := []string{name(0, rng.Intn(4))}
		for layer := 1; layer < 5; layer++ {
			nodes = append(nodes, name(layer, rng.Intn(4)))
		}
		chains = append(chains, nodes)
		measures := make([]float64, len(nodes)-1)
		for j := range measures {
			measures[j] = float64(1 + rng.Intn(9))
		}
		rec, err := graph.FlattenSequence(nodes, measures)
		if err != nil {
			t.Fatal(err)
		}
		graph.LoadRecord(rel, reg, rec)
	}
	var queries []*graph.Graph
	for i := 0; i < 30; i++ {
		nodes := chains[rng.Intn(len(chains))]
		lo := rng.Intn(len(nodes) - 2)
		hi := lo + 2 + rng.Intn(len(nodes)-lo-2)
		queries = append(queries, gpath.Closed(nodes[lo:hi+1]...).ToGraph())
	}
	return rel, reg, queries
}

func TestAdvisorMaterializeGraphViews(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	rel, reg, queries := buildWorkloadFixture(t, rng)
	adv := NewAdvisor(rel, reg)
	names, err := adv.MaterializeGraphViews(queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("no views materialized")
	}
	if len(names) > 5 {
		t.Fatalf("budget exceeded: %d views", len(names))
	}
	for _, n := range names {
		if rel.View(n) == nil {
			t.Errorf("view %s not in relation", n)
		}
	}

	// Rewritten queries must keep their answers and never fetch more bitmaps.
	eng := query.NewEngine(rel, reg)
	for _, qg := range queries {
		q := query.NewGraphQuery(qg)
		eng.UseViews = true
		with, err := eng.ExecuteGraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		eng.UseViews = false
		without, err := eng.ExecuteGraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if !with.Answer.Equals(without.Answer) {
			t.Fatalf("answer changed for %v", qg.Elements())
		}
		if with.Plan.NumBitmaps() > without.Plan.NumBitmaps() {
			t.Fatalf("rewriting increased cost for %v", qg.Elements())
		}
	}
}

func TestAdvisorViewsReduceWorkloadCost(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	rel, reg, queries := buildWorkloadFixture(t, rng)
	eng := query.NewEngine(rel, reg)

	cost := func() int {
		rel.Tracker().Reset()
		for _, qg := range queries {
			if _, err := eng.ExecuteGraphQuery(query.NewGraphQuery(qg)); err != nil {
				t.Fatal(err)
			}
		}
		return rel.Tracker().Snapshot().BitmapColumnsFetched
	}
	before := cost()
	adv := NewAdvisor(rel, reg)
	if _, err := adv.MaterializeGraphViews(queries, len(queries)); err != nil {
		t.Fatal(err)
	}
	after := cost()
	if after >= before {
		t.Fatalf("views did not reduce bitmap fetches: %d -> %d", before, after)
	}
}

func TestAdvisorMaterializeAggViews(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rel, reg, queries := buildWorkloadFixture(t, rng)
	adv := NewAdvisor(rel, reg)
	names, err := adv.MaterializeAggViews(queries, query.Sum, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("no aggregate views materialized")
	}
	eng := query.NewEngine(rel, reg)
	for _, qg := range queries[:10] {
		q := query.NewPathAggQuery(qg, query.Sum)
		eng.UseViews = true
		with, err := eng.ExecutePathAggQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		eng.UseViews = false
		without, err := eng.ExecutePathAggQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		for p := range with.Values {
			for i := range with.Values[p] {
				if with.Values[p][i] != without.Values[p][i] {
					t.Fatalf("aggregate changed: %v vs %v",
						with.Values[p][i], without.Values[p][i])
				}
			}
		}
	}
}

func TestAdvisorMinSupFiltersAggCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	rel, reg, queries := buildWorkloadFixture(t, rng)
	advAll := &Advisor{Rel: rel, Reg: reg, MinSup: 0}
	advSup := &Advisor{Rel: rel, Reg: reg, MinSup: 4}
	all, err := advAll.SelectAggViews(queries, 1000)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := advSup.SelectAggViews(queries, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(sup) > len(all) {
		t.Fatalf("minSup grew the selection: %d vs %d", len(sup), len(all))
	}
}
