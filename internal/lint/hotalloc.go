package lint

import (
	"go/token"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// HotAlloc proves that functions annotated //grove:hotpath are free of heap
// allocations. The annotation marks the kernels the benchmarks guard with
// testing.AllocsPerRun — bitmap intersections, fold/reduce aggregation,
// column gathers — where a single escaping value turns an O(1)-allocation
// steady state into GC pressure proportional to the record count.
//
// The proof comes from the real compiler, not from AST heuristics: the
// analyzer shells out to `go build -gcflags=-m ./...` in the module root and
// parses the escape-analysis diagnostics ("x escapes to heap", "moved to
// heap: y"). Any such diagnostic landing inside an annotated function's body
// is reported at the allocation site. The Go build cache replays -gcflags
// diagnostics on cache hits, so steady-state runs cost one cache probe, not
// a rebuild.
//
// When no function carries the annotation the analyzer is free: it never
// invokes the toolchain. A failed build (the module must compile for escape
// analysis to run) is itself reported, at the first annotated function.
var HotAlloc = &Analyzer{
	Name:      "hotalloc",
	Doc:       "//grove:hotpath functions must be free of heap allocations (compiler-verified)",
	RunModule: runHotAlloc,
}

func runHotAlloc(pass *ModulePass) {
	m := pass.Module
	cg := m.CallGraph()
	var hot []*FuncInfo
	for _, fi := range cg.Funcs {
		if fi.Hotpath {
			hot = append(hot, fi)
		}
	}
	if len(hot) == 0 {
		return
	}

	out, err := escapeDiagnostics(m.Dir)
	if err != nil {
		pass.Reportf(hot[0].Decl.Pos(),
			"hotalloc cannot verify //grove:hotpath annotations: %v", err)
		return
	}

	for _, d := range out {
		abs := d.file
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(m.Dir, d.file)
		}
		for _, fi := range hot {
			tf := m.Fset.File(fi.Decl.Pos())
			if tf == nil || tf.Name() != abs {
				continue
			}
			start := m.Fset.Position(fi.Decl.Pos()).Line
			end := m.Fset.Position(fi.Decl.End()).Line
			if d.line < start || d.line > end {
				continue
			}
			pass.Reportf(escapePos(tf, d.line, d.col),
				"heap allocation in //grove:hotpath function %s: %s; keep the hot path allocation-free or drop the annotation",
				fi.Name(), d.msg)
		}
	}
}

// escapeDiag is one parsed compiler escape diagnostic.
type escapeDiag struct {
	file string // as printed: relative to the build dir, or absolute
	line int
	col  int
	msg  string
}

// escapeDiagnostics runs the compiler's escape analysis over the module and
// returns the heap-allocation findings.
func escapeDiagnostics(dir string) ([]escapeDiag, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m", "./...")
	cmd.Dir = dir
	raw, err := cmd.CombinedOutput()
	if err != nil {
		excerpt := strings.TrimSpace(string(raw))
		if len(excerpt) > 400 {
			excerpt = excerpt[:400] + " ..."
		}
		return nil, &buildError{excerpt: excerpt, err: err}
	}
	var out []escapeDiag
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		if d, ok := parseEscapeLine(line); ok {
			out = append(out, d)
		}
	}
	return out, nil
}

type buildError struct {
	excerpt string
	err     error
}

func (e *buildError) Error() string {
	return "go build -gcflags=-m failed (" + e.err.Error() + "): " + e.excerpt
}

// parseEscapeLine splits "path/file.go:12:6: x escapes to heap" into its
// parts. Lines that do not match the file:line:col prefix are dropped.
func parseEscapeLine(line string) (escapeDiag, bool) {
	line = strings.TrimSpace(line)
	// Split from the left: file may contain no colon on linux (and a drive
	// colon never appears here), so the first three colon fields are
	// file, line, col.
	parts := strings.SplitN(line, ":", 4)
	if len(parts) != 4 || !strings.HasSuffix(parts[0], ".go") {
		return escapeDiag{}, false
	}
	ln, err1 := strconv.Atoi(parts[1])
	col, err2 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil {
		return escapeDiag{}, false
	}
	return escapeDiag{
		file: parts[0],
		line: ln,
		col:  col,
		msg:  strings.TrimSpace(parts[3]),
	}, true
}

// escapePos converts a (line, col) from compiler output into a token.Pos in
// tf, clamping out-of-range values to the closest valid position.
func escapePos(tf *token.File, line, col int) token.Pos {
	if line < 1 {
		line = 1
	}
	if line > tf.LineCount() {
		line = tf.LineCount()
	}
	pos := tf.LineStart(line)
	if col > 1 {
		p := pos + token.Pos(col-1)
		if tf.Pos(tf.Size()) >= p {
			pos = p
		}
	}
	return pos
}
