package lint

import (
	"strconv"
	"strings"
)

// StdlibOnly enforces grove's from-scratch constraint: every import must be
// either a standard-library package (first path segment has no dot) or a
// package of this module. Third-party modules — including golang.org/x — and
// cgo (`import "C"`) are reported. The rule is what keeps the reproduction
// self-contained and the build dependency-free.
var StdlibOnly = &Analyzer{
	Name: "stdlibonly",
	Doc:  "imports must be stdlib or module-local",
	Run:  runStdlibOnly,
}

func runStdlibOnly(pass *Pass) {
	mod := pass.Module.Path
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch {
			case path == "C":
				pass.Reportf(imp.Pos(), `import "C": cgo is not allowed in this stdlib-only module`)
			case path == mod || strings.HasPrefix(path, mod+"/"):
				// module-local: fine
			case !strings.Contains(firstSegment(path), "."):
				// stdlib: fine
			default:
				pass.Reportf(imp.Pos(), "import %q is neither standard library nor module-local; grove is stdlib-only by design", path)
			}
		}
	}
}

func firstSegment(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}
