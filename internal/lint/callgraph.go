package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// The interprocedural layer: a module-wide call graph over go/types with one
// summary node per declared function. Per-package analyzers see one function
// at a time; the graph lets the ctxflow, goroleak, lockorder and hotalloc
// passes reason about what a callee does (acquire locks, block on I/O,
// recover panics, accept a context) and about reachability from the public
// *Context facades.
//
// The graph is static and intentionally modest: only calls that resolve to a
// declared module function become edges (interface dispatch and function
// values do not), and calls made inside function literals are attributed to
// the enclosing declaration. Both are over- and under-approximations the
// analyzers tolerate — grove's invariants live on concrete types, and a
// literal runs with its encloser's obligations.

// FuncInfo is one declared function or method in the module, with the
// summary facts the interprocedural analyzers consume.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// Calls lists the static calls to other module functions, in source
	// order, including calls made inside nested function literals.
	Calls []CallSite

	// CtxParamName is the name of the function's own context.Context
	// parameter ("" when the function does not accept a context, "_" when it
	// accepts and discards one).
	CtxParamName string

	// Hotpath records a //grove:hotpath annotation in the doc comment.
	Hotpath bool

	// RecoversDeferred is true when the body (not a nested literal) defers a
	// recover — `defer func() { ... recover() ... }()` — so a panic anywhere
	// in the function is caught.
	RecoversDeferred bool

	// DoneReceivers lists the rendered receivers of sync.WaitGroup Done()
	// calls in the body, e.g. "wg" — goroleak's join evidence for spawns of
	// named functions.
	DoneReceivers []string
}

// CallSite is one resolved call edge.
type CallSite struct {
	Callee *FuncInfo
	Call   *ast.CallExpr
}

// Name returns the diagnostic-friendly qualified name, e.g.
// "(*Engine).ExecuteGraphQueryContext" or "scatterError".
func (f *FuncInfo) Name() string {
	if recv := f.Decl.Recv; recv != nil && len(recv.List) > 0 {
		return "(" + types.ExprString(recv.List[0].Type) + ")." + f.Decl.Name.Name
	}
	return f.Decl.Name.Name
}

// CallGraph indexes every declared function in the module.
type CallGraph struct {
	Funcs  []*FuncInfo // declaration order (per sorted package)
	byObj  map[*types.Func]*FuncInfo
	byName map[string]*FuncInfo // scope key (see scopeKey) → function
}

// hotpathMarker annotates a function whose body the hotalloc analyzer must
// prove free of heap allocations.
const hotpathMarker = "grove:hotpath"

// CallGraph builds (once) and returns the module's call graph.
func (m *Module) CallGraph() *CallGraph {
	if m.cg != nil {
		return m.cg
	}
	cg := &CallGraph{
		byObj:  map[*types.Func]*FuncInfo{},
		byName: map[string]*FuncInfo{},
	}
	// First pass: one node per declaration.
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fi := &FuncInfo{Decl: fd, Pkg: pkg}
				if pkg.Info != nil {
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						fi.Obj = obj
						cg.byObj[obj] = fi
					}
				}
				fi.CtxParamName = ctxParamName(fd.Type)
				fi.Hotpath = docHasMarker(fd.Doc, hotpathMarker)
				cg.Funcs = append(cg.Funcs, fi)
				cg.byName[scopeKey(pkg, fd)] = fi
			}
		}
	}
	// Second pass: edges and body facts.
	for _, fi := range cg.Funcs {
		cg.summarize(fi)
	}
	m.cg = cg
	return cg
}

// Lookup resolves a used function object to its module declaration, or nil
// for stdlib / interface-method / unresolved callees.
func (cg *CallGraph) Lookup(obj *types.Func) *FuncInfo {
	if obj == nil {
		return nil
	}
	return cg.byObj[obj]
}

// Sibling returns the function named name in the same scope as f — the same
// receiver type for methods, the same package for plain functions.
func (cg *CallGraph) Sibling(f *FuncInfo, name string) *FuncInfo {
	key := scopeKey(f.Pkg, f.Decl)
	if i := strings.LastIndexByte(key, '.'); i >= 0 {
		key = key[:i]
	}
	return cg.byName[key+"."+name]
}

// Reachable computes the functions reachable from roots over call edges,
// including the roots themselves.
func (cg *CallGraph) Reachable(roots []*FuncInfo) map[*FuncInfo]bool {
	seen := make(map[*FuncInfo]bool, len(roots))
	var walk func(f *FuncInfo)
	walk = func(f *FuncInfo) {
		if f == nil || seen[f] {
			return
		}
		seen[f] = true
		for _, cs := range f.Calls {
			walk(cs.Callee)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return seen
}

// ContextFacades returns the module's context-carrying facade set: every
// declared function whose name ends in "Context" and that accepts a
// context.Context parameter. These are the roots the ctxflow reachability
// rule bans context.Background()/TODO() under.
func (cg *CallGraph) ContextFacades() []*FuncInfo {
	var roots []*FuncInfo
	for _, f := range cg.Funcs {
		if f.CtxParamName != "" && strings.HasSuffix(f.Decl.Name.Name, "Context") {
			roots = append(roots, f)
		}
	}
	return roots
}

// summarize fills a node's call edges and body facts.
func (cg *CallGraph) summarize(fi *FuncInfo) {
	info := fi.Pkg.Info
	var walk func(n ast.Node, litDepth int)
	walk = func(n ast.Node, litDepth int) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				walk(n.Body, litDepth+1)
				return false
			case *ast.CallExpr:
				if callee := cg.Lookup(usedFunc(info, n)); callee != nil {
					fi.Calls = append(fi.Calls, CallSite{Callee: callee, Call: n})
				}
				if recv, name, _, ok := methodCall(n); ok && name == "Done" &&
					receiverIsType(info, recv, "sync", "WaitGroup") {
					fi.DoneReceivers = append(fi.DoneReceivers, types.ExprString(recv))
				}
			case *ast.DeferStmt:
				// Only a top-level deferred recover protects the whole
				// function; one deferred inside a nested literal protects
				// that literal.
				if fl, ok := n.Call.Fun.(*ast.FuncLit); ok && callsRecover(fl.Body) && litDepth == 0 {
					fi.RecoversDeferred = true
				}
			}
			return true
		})
	}
	walk(fi.Decl.Body, 0)
}

// usedFunc resolves the called function object of a call expression.
func usedFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	if info == nil {
		return nil
	}
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// scopeKey renders "pkgpath.RecvType.name" for methods and "pkgpath..name"
// for plain functions — the sibling-lookup namespace.
func scopeKey(pkg *Package, fd *ast.FuncDecl) string {
	recv := ""
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
			t = idx.X
		}
		if id, ok := t.(*ast.Ident); ok {
			recv = id.Name
		}
	}
	return pkg.Path + "." + recv + "." + fd.Name.Name
}

// ctxParamName returns the name of ft's context.Context parameter, or "".
// The check is syntactic-first (context.Context / ctx aliases resolve via
// types when available) so fixture code with partial type info still works.
func ctxParamName(ft *ast.FuncType) string {
	if ft.Params == nil {
		return ""
	}
	for _, fld := range ft.Params.List {
		if !isContextType(fld.Type) {
			continue
		}
		if len(fld.Names) == 0 {
			return "_"
		}
		return fld.Names[0].Name
	}
	return ""
}

// isContextType matches the syntactic form context.Context.
func isContextType(e ast.Expr) bool {
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "context"
}

// sigAcceptsContext reports whether the called function's static signature
// has a context.Context parameter.
func sigAcceptsContext(info *types.Info, call *ast.CallExpr) bool {
	if info == nil {
		return false
	}
	tv, ok := info.Types[unparen(call.Fun)]
	if !ok || tv.Type == nil {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextParamType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextParamType reports whether t is context.Context.
func isContextParamType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// receiverIsType reports whether recv's static type is (a pointer to) the
// named type pkgPath.typeName. Unlike receiverNamed it requires resolved
// type info and an exact package match.
func receiverIsType(info *types.Info, recv ast.Expr, pkgPath, typeName string) bool {
	if info == nil {
		return false
	}
	tv, ok := info.Types[unparen(recv)]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// callsRecover reports whether the block contains a direct recover() call
// (not inside a nested function literal).
func callsRecover(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "recover" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// docHasMarker reports whether a doc comment group contains marker as a
// directive-style line.
func docHasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}
