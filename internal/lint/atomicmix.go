package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicMix reports struct fields that are accessed both through sync/atomic
// functions (atomic.AddInt64(&s.f, 1)) and through plain reads or writes
// (s.f) in the same package. Mixing the two is a data race the race detector
// only catches when the schedule cooperates; the fix is to route every
// access through sync/atomic or, better, to use the typed atomic.Int64-style
// wrappers (which this analyzer's sibling, mutexbyvalue, keeps from being
// copied).
//
// The check is per-package and keys on the field's types.Object, so embedded
// and pointer accesses resolve to the same field.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "no mixed atomic and plain access to the same field",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	info := pass.Pkg.Info
	if info == nil {
		return
	}
	atomicUse := map[types.Object]token.Pos{} // field → first atomic access
	exempt := map[*ast.SelectorExpr]bool{}    // selectors inside &arg of atomic calls

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isAtomicFunc(info, call.Fun) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if obj := fieldObject(info, sel); obj != nil {
					exempt[sel] = true
					if _, seen := atomicUse[obj]; !seen {
						atomicUse[obj] = sel.Pos()
					}
				}
			}
			return true
		})
	}
	if len(atomicUse) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || exempt[sel] {
				return true
			}
			obj := fieldObject(info, sel)
			if obj == nil {
				return true
			}
			if first, ok := atomicUse[obj]; ok {
				pass.Reportf(sel.Pos(), "field %s is accessed atomically elsewhere (e.g. %s) but plainly here; mixed access races",
					obj.Name(), pass.Module.Fset.Position(first))
			}
			return true
		})
	}
}

// fieldObject resolves sel to the struct field it reads, or nil when it is a
// method, package member, or unresolved.
func fieldObject(info *types.Info, sel *ast.SelectorExpr) types.Object {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj()
}

// isAtomicFunc matches selector calls into package sync/atomic.
func isAtomicFunc(info *types.Info, fun ast.Expr) bool {
	sel, ok := unparen(fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return false
	}
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(sel.Sel.Name, prefix) {
			return true
		}
	}
	return false
}
