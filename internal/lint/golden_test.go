package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestGolden runs each analyzer over its fixture module under
// testdata/src/<name> and checks its diagnostics against the fixture's
// `// want "regex"` comments: every diagnostic must be claimed by a want on
// its line, and every want must claim a diagnostic. Several wants on one
// line are written as `// want "a" "b"`.
func TestGolden(t *testing.T) {
	cases := []struct {
		fixture  string
		analyzer *Analyzer
	}{
		{"lockpair", LockPair},
		{"droppederr", DroppedErr},
		{"fsioonly", FsioOnly},
		{"metricname", MetricName},
		{"stdlibonly", StdlibOnly},
		{"mutexbyvalue", MutexByValue},
		{"atomicmix", AtomicMix},
		{"ctxflow", CtxFlow},
		{"goroleak", GoroLeak},
		{"lockorder", LockOrder},
		{"hotalloc", HotAlloc},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.fixture)
			m, err := LoadModule(dir)
			if err != nil {
				t.Fatalf("LoadModule(%s): %v", dir, err)
			}
			for _, p := range m.Pkgs {
				for _, terr := range p.TypeErrors {
					t.Logf("tolerated type error in %s: %v", p.Path, terr)
				}
			}
			diags := Run(m, []*Analyzer{tc.analyzer}, nil)
			wants, err := collectWants(m.Dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diags {
				if !claimWant(wants, d) {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.claimed {
					t.Errorf("%s:%d: no %s diagnostic matched want %q",
						relTo(m.Dir, w.file), w.line, tc.analyzer.Name, w.re)
				}
			}
		})
	}
}

// want is one expectation parsed from a fixture source line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	claimed bool
}

// claimWant marks the first unclaimed want on the diagnostic's line whose
// regexp matches the message.
func claimWant(wants []*want, d Diagnostic) bool {
	for _, w := range wants {
		if w.claimed || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.claimed = true
			return true
		}
	}
	return false
}

// collectWants scans every .go file under dir — including _test.go files,
// where a want could only be satisfied if the loader wrongly parsed them —
// for `// want` comments.
func collectWants(dir string) ([]*want, error) {
	var wants []*want
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			i := strings.Index(text, "// want ")
			if i < 0 {
				continue
			}
			patterns, err := parseWantPatterns(text[i+len("// want "):])
			if err != nil {
				return fmt.Errorf("%s:%d: %v", path, line, err)
			}
			if len(patterns) == 0 {
				return fmt.Errorf("%s:%d: want comment without a pattern", path, line)
			}
			for _, p := range patterns {
				re, err := regexp.Compile(p)
				if err != nil {
					return fmt.Errorf("%s:%d: bad want pattern %q: %v", path, line, p, err)
				}
				wants = append(wants, &want{file: path, line: line, re: re})
			}
		}
		return sc.Err()
	})
	return wants, err
}

// parseWantPatterns reads a sequence of `"..."` or backquoted strings.
func parseWantPatterns(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			return out, nil
		}
		quote := s[0]
		if quote != '"' && quote != '`' {
			return out, nil // trailing prose after the patterns is allowed
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated %c-quoted want pattern", quote)
		}
		out = append(out, s[1:1+end])
		s = s[end+2:]
	}
}

func relTo(dir, path string) string {
	if rel, err := filepath.Rel(dir, path); err == nil {
		return rel
	}
	return path
}
