module fixture/hotalloc

go 1.22
