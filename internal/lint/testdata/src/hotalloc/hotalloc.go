// Package hotalloc exercises the compiler-escape-backed analyzer. Unlike the
// other fixtures this one must genuinely compile: hotalloc shells out to
// `go build -gcflags=-m` and maps the escape diagnostics onto annotated
// declarations.
package hotalloc

// Concat's string concatenation escapes to the heap: the seeded true
// positive the analyzer must catch.
//
//grove:hotpath
func Concat(a, b string) string {
	return a + b // want "heap allocation in"
}

// Sum is allocation-free and must stay silent.
//
//grove:hotpath
func Sum(vals []float64) float64 {
	var s float64
	for _, v := range vals {
		s += v
	}
	return s
}

// Box allocates, but carries no annotation: not hotalloc's business.
func Box(n int) *int {
	return &n
}
