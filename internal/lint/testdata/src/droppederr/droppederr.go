// Package droppederr is the golden fixture for the droppederr analyzer.
package droppederr

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func twoResults() (int, error) { return 0, errors.New("boom") }

func use(int) {}

var _ = mayFail() // want "error discarded into _"

func discardedCall() {
	mayFail() // want "contains an error that is discarded"
}

func blankAssign() {
	_ = mayFail() // want "error discarded into _"
}

func blankSpread() {
	n, _ := twoResults() // want "error discarded into _"
	use(n)
}

func handledOK() error {
	if err := mayFail(); err != nil {
		return err
	}
	n, err := twoResults()
	if err != nil {
		return err
	}
	use(n)
	return nil
}

func cleanupIdiomsOK() {
	defer mayFail()
	go mayFail()
}

func infallibleWritersOK() string {
	var b strings.Builder
	var buf bytes.Buffer
	b.WriteString("builder writes never fail")
	buf.WriteByte('!')
	fmt.Fprintf(&b, "%d", 1)
	fmt.Fprintln(&buf, "nor do Fprints directed at them")
	return b.String() + buf.String()
}

func acknowledgedOK() {
	_ = mayFail() //grovevet:ignore droppederr the fixture discards on purpose
}

func acknowledgedAboveOK() {
	//grovevet:ignore droppederr a pragma on the line above also covers the discard
	_ = mayFail()
}
