module fixture/droppederr

go 1.22
