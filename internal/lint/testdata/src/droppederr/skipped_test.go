// This file is deliberately full of discarded errors: the loader never
// parses _test.go files, so none of them may surface as diagnostics. A want
// comment here would fail the golden test — its absence is the assertion.
package droppederr

func init() {
	_ = mayFail()
	mayFail()
}
