// Package stdlibonly is the golden fixture for the stdlibonly analyzer.
package stdlibonly

import (
	"fmt"

	_ "fixture/stdlibonly/sub"

	_ "github.com/acme/widgets" // want "neither standard library nor module-local"
)

func use() string { return fmt.Sprint("stdlib and module-local imports pass") }
