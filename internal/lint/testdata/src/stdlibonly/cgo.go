package stdlibonly

import "C" // want "cgo is not allowed"
