// Package sub exists so the fixture can exercise a module-local import.
package sub
