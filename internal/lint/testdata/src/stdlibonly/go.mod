module fixture/stdlibonly

go 1.22
