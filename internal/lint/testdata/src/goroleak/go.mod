module fixture/goroleak

go 1.22
