// Package goroleak exercises the goroutine join/termination and
// panic-recovery obligations across literal and named spawns.
package goroleak

import (
	"fmt"
	"sync"
)

func work(i int) { _ = i }

// waitGroupJoined pairs Add with a deferred Done and recovers: clean.
func waitGroupJoined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { recover() }()
			work(i)
		}()
	}
	wg.Wait()
}

// doneWithoutAdd calls Done on a waitgroup it never visibly Adds to.
func doneWithoutAdd(wg *sync.WaitGroup) {
	go func() { // want "Add before spawning" "does not recover panics"
		defer wg.Done()
	}()
}

// detached has no join evidence at all.
func detached() {
	go func() { // want "no provable join or termination path" "does not recover panics"
		work(0)
	}()
}

// channelJoined hands its completion over a channel and recovers: clean.
func channelJoined(done chan struct{}) {
	go func() {
		defer func() { recover() }()
		work(1)
		done <- struct{}{}
	}()
	<-done
}

// spawnsOpaque launches a function the module call graph cannot see into.
func spawnsOpaque() {
	go fmt.Println("x") // want "cannot see into"
}

// worker ranges over its job channel and recovers: a compliant named spawn.
func worker(jobs chan int) {
	defer func() { recover() }()
	for j := range jobs {
		work(j)
	}
}

func spawnsWorker(jobs chan int) {
	go worker(jobs)
}

// plain neither joins nor recovers.
func plain() { work(2) }

func spawnsPlain() {
	go plain() // want "no provable join or termination path" "does not recover panics"
}

// safeCall is the batch executor's recovery idiom: the panic-prone work runs
// entirely inside a callee that defers a recover.
func safeCall(f func()) {
	defer func() { recover() }()
	f()
}

func spawnsSafe(wg *sync.WaitGroup, f func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		safeCall(f)
	}()
}
