// Package lockpair is the golden fixture for the lockpair analyzer. The
// local Relation type stands in for colstore.Relation — the analyzer matches
// any named type Relation with BeginRead/EndRead methods.
package lockpair

type Relation struct{ n int }

func (r *Relation) BeginRead() {}
func (r *Relation) EndRead()   {}

func deferredOK(r *Relation) int {
	r.BeginRead()
	defer r.EndRead()
	return r.n
}

func straightOK(r *Relation) int {
	r.BeginRead()
	n := r.n
	r.EndRead()
	return n
}

func wrapperOK(r *Relation) int {
	r.BeginRead()
	defer func() { r.EndRead() }()
	return r.n
}

func twoRelationsOK(a, b *Relation) {
	a.BeginRead()
	b.BeginRead()
	b.EndRead()
	a.EndRead()
}

func panicPathOK(r *Relation, bad bool) {
	r.BeginRead()
	if bad {
		panic("diverges before the unlock")
	}
	r.EndRead()
}

var sink int

func leak(r *Relation) {
	r.BeginRead() // want "BeginRead without matching EndRead"
	sink = r.n
}

func returnPath(r *Relation, early bool) int {
	r.BeginRead() // want "not paired with an EndRead on every return path"
	if early {
		return 0
	}
	r.EndRead()
	return r.n
}

func nested(r *Relation) {
	r.BeginRead()
	r.BeginRead() // want "nested BeginRead"
	r.EndRead()
	r.EndRead()
}

func strayEnd(r *Relation) {
	r.EndRead() // want "EndRead without a matching BeginRead"
}

func doubleUnlock(r *Relation) {
	r.BeginRead()
	defer r.EndRead()
	r.EndRead() // want "double unlock"
}

func branchImbalance(r *Relation, cold bool) {
	r.BeginRead()
	if cold { // want "branches disagree"
		r.EndRead()
	}
}

func loopImbalance(r *Relation, n int) {
	for i := 0; i < n; i++ { // want "loop body changes the read-lock state"
		r.BeginRead()
	}
}

func goroutineScope(r *Relation) {
	go func() {
		r.BeginRead() // want "BeginRead without matching EndRead"
	}()
}
