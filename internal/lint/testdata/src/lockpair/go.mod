module fixture/lockpair

go 1.22
