module fixture/atomicmix

go 1.22
