// Package atomicmix is the golden fixture for the atomicmix analyzer.
package atomicmix

import "sync/atomic"

type stats struct {
	hits     int64
	misses   int64
	unsynced int64
}

func bump(s *stats) {
	atomic.AddInt64(&s.hits, 1)
	atomic.AddInt64(&s.misses, 1)
}

func readMissesOK(s *stats) int64 {
	return atomic.LoadInt64(&s.misses)
}

func plainOnlyOK(s *stats) int64 {
	s.unsynced++
	return s.unsynced
}

func readHits(s *stats) int64 {
	return s.hits // want "accessed atomically elsewhere"
}

func resetHits(s *stats) {
	s.hits = 0 // want "accessed atomically elsewhere"
}
