// Package metricname is the golden fixture for the metricname analyzer. The
// local Registry mirrors the constructor-method shapes of obs.Registry; the
// analyzer matches any receiver whose named type is Registry.
package metricname

type Registry struct{}

func (r *Registry) Counter(name, help string) int                        { return 0 }
func (r *Registry) CounterFunc(name, help string, fn func() float64) int { return 0 }
func (r *Registry) Gauge(name, help string) int                          { return 0 }
func (r *Registry) Histogram(name, help string, buckets []float64) int   { return 0 }

const (
	metricJobs  = "grove_jobs_total"
	metricWait  = "grove_wait_seconds"
	metricMerge = "grove_merge_seconds"
)

func register(r *Registry, dyn string) {
	r.Counter("grove_ops_total", "ok")
	r.CounterFunc("grove_reads_total", "ok", nil)
	r.Gauge("grove_queue_depth", "ok")
	r.Histogram("grove_latency_seconds", "ok", nil)
	r.Counter(metricJobs, "names fold through constants")
	r.Counter(`grove_hits_total{kind="read"}`, "labelled series are fine")
	r.Counter("grove_dyn_total"+dyn, "constant prefix of a computed name is still vetted")
	// Per-shard histogram families register one labelled series per shard with
	// a computed label value; the constant family prefix is still vetted, and
	// re-registering the family under the same kind with other labels is fine.
	r.Histogram(metricWait+`{shard="`+dyn+`"}`, "ok", nil)
	r.Histogram(metricMerge, "ok", nil)
	r.Histogram(metricMerge+`{shard="`+dyn+`"}`, "labelled series of a known histogram family", nil)

	r.Histogram("grove_waits_total", "x", nil)      // want "must not end in _total"
	r.Counter(metricMerge+`{shard="`+dyn+`"}`, "x") // want "must end in _total" "registered both as histogram and as counter"

	r.Counter("jobs_done_total", "x")              // want "must carry the grove_ prefix"
	r.Counter("grove_ops", "x")                    // want "must end in _total"
	r.Gauge("grove_depth_total", "x")              // want "must not end in _total"
	r.Counter("grove_bad-name_total", "x")         // want "not a valid Prometheus metric name"
	r.Counter("grove_ops_total", "x")              // want "registered more than once"
	r.Gauge(`grove_latency_seconds{q="p99"}`, "x") // want "registered both as histogram and as gauge"
	r.Counter(dyn, "x")                            // want "does not start with a constant"
	r.Counter(`grove_lbl_total{1bad="v"}`, "x")    // want "not a valid Prometheus label name"
	r.Counter(`grove_quote_total{kind=read}`, "x") // want "label value must be double-quoted"
}
