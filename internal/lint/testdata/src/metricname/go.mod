module fixture/metricname

go 1.22
