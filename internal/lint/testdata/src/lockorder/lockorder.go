// Package lockorder exercises the global lock-acquisition graph: ordering
// cycles across mutex fields, and channel/fsio waits while a lock is held
// (directly or through a callee).
package lockorder

import (
	"sync"

	"fixture/lockorder/internal/fsio"
)

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

// Pair holds both lock owners so the two orderings share identities.
type Pair struct {
	a A
	b B
}

func lockAB(p *Pair) {
	p.a.mu.Lock()
	defer p.a.mu.Unlock()
	p.b.mu.Lock() // want "lock-order cycle"
	p.b.mu.Unlock()
}

func lockBA(p *Pair) {
	p.b.mu.Lock()
	defer p.b.mu.Unlock()
	p.a.mu.Lock() // want "lock-order cycle"
	p.a.mu.Unlock()
}

// Q owns a mutex and a channel.
type Q struct {
	mu sync.Mutex
	ch chan int
}

func sendWhileLocked(q *Q) {
	q.mu.Lock() // want "channel send"
	q.ch <- 1
	q.mu.Unlock()
}

// sendAfterUnlock releases first: clean.
func sendAfterUnlock(q *Q) {
	q.mu.Lock()
	q.mu.Unlock()
	q.ch <- 1
}

type S struct{ mu sync.Mutex }

func syncWhileLocked(s *S, fs fsio.FS) error {
	s.mu.Lock() // want "fsio call"
	defer s.mu.Unlock()
	return fs.Sync()
}

// drain blocks on a channel receive; holders of any lock inherit the wait.
func drain(q *Q) {
	<-q.ch
}

func drainWhileLocked(s *S, q *Q) {
	s.mu.Lock() // want "channel receive"
	drain(q)
	s.mu.Unlock()
}
