// Package fsio is the fixture's stand-in for grove's I/O boundary: lockorder
// treats any call into a package path ending in internal/fsio as a
// potentially unbounded wait.
package fsio

// FS is the filesystem seam.
type FS interface {
	Sync() error
}
