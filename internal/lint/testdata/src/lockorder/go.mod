module fixture/lockorder

go 1.22
