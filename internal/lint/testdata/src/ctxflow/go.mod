module fixture/ctxflow

go 1.22
