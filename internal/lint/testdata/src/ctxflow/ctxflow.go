// Package ctxflow exercises the three context-threading rules: severing a
// received ctx, dropping ctx when a *Context sibling exists, and creating
// root contexts on facade-reachable paths or outside the wrapper shape.
package ctxflow

import "context"

// Engine is the fixture's query engine stand-in.
type Engine struct{ n int }

// RunContext is a *Context facade: it seeds the reachability rule.
func (e *Engine) RunContext(ctx context.Context, q int) int {
	helper(e, q)
	sub := context.Background() // want "severs cancellation"
	_ = sub
	return e.n + q
}

// Run is the convenience wrapper: its Background() is passed directly to the
// context-aware sibling, which is the accepted shape.
func (e *Engine) Run(q int) int {
	return e.RunContext(context.Background(), q)
}

// process carries a ctx, so calling the ctx-less Run drops it.
func process(ctx context.Context, e *Engine, q int) int {
	_ = ctx
	return e.Run(q) // want "drops ctx; call RunContext"
}

// helper is reachable from the RunContext facade.
func helper(e *Engine, q int) {
	ctx := context.Background() // want "reachable from the .Context API facades"
	_ = ctx
	e.n += q
}

// stray is unreachable from any facade, but stores its root context instead
// of passing it straight into a context-accepting callee.
func stray(e *Engine) {
	ctx := context.TODO() // want "outside the convenience-wrapper shape"
	_ = ctx
	_ = e
}
