module fixture/mutexbyvalue

go 1.22
