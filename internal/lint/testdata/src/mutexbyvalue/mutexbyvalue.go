// Package mutexbyvalue is the golden fixture for the mutexbyvalue analyzer.
package mutexbyvalue

import (
	"sync"
	"sync/atomic"
)

type Guarded struct {
	mu sync.Mutex
	n  int
}

type Counted struct {
	hits atomic.Int64
}

func use(int) {}

func ptrParamOK(g *Guarded) int { return g.n }

func constructOK() *Guarded {
	g := Guarded{}
	return &g
}

func byValueParam(g Guarded) int { return g.n } // want "parameter passes a lock by value"

func byValueResult() Guarded { // want "result passes a lock by value"
	return Guarded{}
}

func derefCopy(p *Guarded) {
	local := *p // want "assignment copies a lock"
	use(local.n)
}

func aliasCopy(p *Guarded) {
	tmp := *p    // want "assignment copies a lock"
	other := tmp // want "assignment copies a lock"
	use(other.n)
}

func rangeCopy(gs []Guarded) int {
	total := 0
	for _, g := range gs { // want "range clause copies a lock"
		total += g.n
	}
	return total
}

func passByValue(p *Guarded) int {
	return byValueParam(*p) // want "call argument copies a lock"
}

func atomicCopy(c *Counted) {
	snapshot := *c // want "assignment copies a lock"
	use(int(snapshot.hits.Load()))
}
