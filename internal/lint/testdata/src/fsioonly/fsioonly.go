// Package fsioonly is the golden fixture for the fsioonly analyzer.
package fsioonly

import (
	"os"
	"path/filepath"
)

func directCalls(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil { // want `os\.MkdirAll bypasses the fsio\.FS abstraction`
		return err
	}
	f, err := os.Create(filepath.Join(dir, "data.bin")) // want `os\.Create bypasses the fsio\.FS abstraction`
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if _, err := os.ReadFile(filepath.Join(dir, "data.bin")); err != nil { // want `os\.ReadFile bypasses the fsio\.FS abstraction`
		return err
	}
	if err := os.Rename(dir, dir+".bak"); err != nil { // want `os\.Rename bypasses the fsio\.FS abstraction`
		return err
	}
	return os.RemoveAll(dir + ".bak") // want `os\.RemoveAll bypasses the fsio\.FS abstraction`
}

// Metadata helpers and error predicates are not filesystem mutations; they
// stay allowed.
func allowedHelpers(err error) (string, bool) {
	_ = os.IsNotExist(err)
	var ent os.DirEntry
	_ = ent
	return os.Getenv("HOME"), os.IsPermission(err)
}

// A pragma with a reason acknowledges a deliberate bypass.
func acknowledged(dir string) error {
	return os.Remove(dir) //grovevet:ignore fsioonly boot-time cleanup before any FS exists
}

// A local identifier named os must not be mistaken for the package.
type fakeOS struct{}

func (fakeOS) Stat(string) error { return nil }

func shadowed(dir string) error {
	var os fakeOS
	return os.Stat(dir)
}
