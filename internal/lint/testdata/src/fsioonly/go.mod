module fixture/fsioonly

go 1.22
