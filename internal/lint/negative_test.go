package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFiles writes files (path → contents, plus a go.mod if absent) into a
// fresh temp module and loads it.
func loadFiles(t *testing.T, files map[string]string) *Module {
	t.Helper()
	dir := t.TempDir()
	if _, ok := files["go.mod"]; !ok {
		files["go.mod"] = "module fixture/neg\n\ngo 1.22\n"
	}
	for name, src := range files {
		full := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	m, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	return m
}

const relationDecl = `
type Relation struct{ n int }

func (r *Relation) BeginRead() {}
func (r *Relation) EndRead()   {}
`

// TestNegatives drives each analyzer over sources that must NOT trip it (or
// must trip it an exact number of times), covering the idioms the analyzers
// promise to tolerate.
func TestNegatives(t *testing.T) {
	tests := []struct {
		name     string
		analyzer *Analyzer
		files    map[string]string
		// wantMsgs is matched 1:1 (substring) against the diagnostics; empty
		// means the source must be clean.
		wantMsgs []string
	}{
		{
			name:     "lockpair deferred unlock is balanced",
			analyzer: LockPair,
			files: map[string]string{"a.go": `package neg
` + relationDecl + `
func f(r *Relation) int {
	r.BeginRead()
	defer r.EndRead()
	return r.n
}
`},
		},
		{
			name:     "lockpair deferred wrapper literal is credited",
			analyzer: LockPair,
			files: map[string]string{"a.go": `package neg
` + relationDecl + `
func f(r *Relation) int {
	r.BeginRead()
	defer func() { r.EndRead() }()
	return r.n
}
`},
		},
		{
			name:     "lockpair unlock before every return is balanced",
			analyzer: LockPair,
			files: map[string]string{"a.go": `package neg
` + relationDecl + `
func f(r *Relation, early bool) int {
	r.BeginRead()
	if early {
		r.EndRead()
		return 0
	}
	n := r.n
	r.EndRead()
	return n
}
`},
		},
		{
			name:     "lockpair path that panics needs no unlock",
			analyzer: LockPair,
			files: map[string]string{"a.go": `package neg
` + relationDecl + `
func f(r *Relation, bad bool) {
	r.BeginRead()
	defer r.EndRead()
	if bad {
		panic("no unlock needed past here")
	}
}
`},
		},
		{
			name:     "droppederr pragma with a reason suppresses",
			analyzer: DroppedErr,
			files: map[string]string{"a.go": `package neg

import "errors"

func mayFail() error { return errors.New("x") }

func f() {
	_ = mayFail() //grovevet:ignore droppederr the test acknowledges this discard
}
`},
		},
		{
			name:     "droppederr bare pragma suppresses nothing and is itself flagged",
			analyzer: DroppedErr,
			files: map[string]string{"a.go": `package neg

import "errors"

func mayFail() error { return errors.New("x") }

func f() {
	_ = mayFail() //grovevet:ignore
}
`},
			wantMsgs: []string{
				"error discarded into _",
				"pragma needs an explanation",
			},
		},
		{
			name:     "droppederr violations in _test.go files are never loaded",
			analyzer: DroppedErr,
			files: map[string]string{
				"a.go": `package neg

import "errors"

func mayFail() error { return errors.New("x") }
`,
				"a_test.go": `package neg

func init() {
	_ = mayFail()
	mayFail()
}
`,
			},
		},
		{
			name:     "fsioonly fsio-mediated operations pass",
			analyzer: FsioOnly,
			files: map[string]string{"a.go": `package neg

import "os"

type FS interface {
	Create(string) (*os.File, error)
	MkdirAll(string, os.FileMode) error
}

func save(fs FS, dir string) error {
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := fs.Create(dir + "/data.bin")
	if err != nil {
		return err
	}
	return f.Close()
}

func notExist(err error) bool { return os.IsNotExist(err) }
`},
		},
		{
			name:     "fsioonly direct os call is reported once",
			analyzer: FsioOnly,
			files: map[string]string{"a.go": `package neg

import "os"

func nuke(dir string) error { return os.RemoveAll(dir) }
`},
			wantMsgs: []string{"os.RemoveAll bypasses the fsio.FS abstraction"},
		},
		{
			name:     "stdlibonly stdlib and module-local imports pass",
			analyzer: StdlibOnly,
			files: map[string]string{
				"a.go": `package neg

import (
	"fmt"

	"fixture/neg/sub"
)

var _ = fmt.Sprint(sub.X)
`,
				"sub/sub.go": `package sub

var X = 1
`,
			},
		},
		{
			name:     "mutexbyvalue pointers and fresh constructions pass",
			analyzer: MutexByValue,
			files: map[string]string{"a.go": `package neg

import "sync"

type G struct {
	mu sync.Mutex
	n  int
}

func ptr(g *G) int { return g.n }

func fresh() *G {
	g := G{}
	return &g
}
`},
		},
		{
			name:     "atomicmix uniformly atomic access passes",
			analyzer: AtomicMix,
			files: map[string]string{"a.go": `package neg

import "sync/atomic"

type s struct{ hits int64 }

func bump(v *s) { atomic.AddInt64(&v.hits, 1) }

func read(v *s) int64 { return atomic.LoadInt64(&v.hits) }
`},
		},
		{
			name:     "metricname conforming registrations pass",
			analyzer: MetricName,
			files: map[string]string{"a.go": `package neg

type Registry struct{}

func (r *Registry) Counter(name, help string) int { return 0 }
func (r *Registry) Gauge(name, help string) int   { return 0 }

func f(r *Registry) {
	r.Counter("grove_ops_total", "ok")
	r.Gauge("grove_queue_depth", "ok")
}
`},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			m := loadFiles(t, tc.files)
			diags := Run(m, []*Analyzer{tc.analyzer}, nil)
			if len(diags) != len(tc.wantMsgs) {
				for _, d := range diags {
					t.Logf("got: %s", d)
				}
				t.Fatalf("got %d diagnostics, want %d", len(diags), len(tc.wantMsgs))
			}
			for i, msg := range tc.wantMsgs {
				if !strings.Contains(diags[i].Message, msg) {
					t.Errorf("diagnostic %d = %q, want substring %q", i, diags[i].Message, msg)
				}
			}
		})
	}
}
