package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFiles writes files (path → contents, plus a go.mod if absent) into a
// fresh temp module and loads it.
func loadFiles(t *testing.T, files map[string]string) *Module {
	t.Helper()
	dir := t.TempDir()
	if _, ok := files["go.mod"]; !ok {
		files["go.mod"] = "module fixture/neg\n\ngo 1.22\n"
	}
	for name, src := range files {
		full := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	m, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	return m
}

const relationDecl = `
type Relation struct{ n int }

func (r *Relation) BeginRead() {}
func (r *Relation) EndRead()   {}
`

// TestNegatives drives each analyzer over sources that must NOT trip it (or
// must trip it an exact number of times), covering the idioms the analyzers
// promise to tolerate.
func TestNegatives(t *testing.T) {
	tests := []struct {
		name     string
		analyzer *Analyzer
		files    map[string]string
		// wantMsgs is matched 1:1 (substring) against the diagnostics; empty
		// means the source must be clean.
		wantMsgs []string
	}{
		{
			name:     "lockpair deferred unlock is balanced",
			analyzer: LockPair,
			files: map[string]string{"a.go": `package neg
` + relationDecl + `
func f(r *Relation) int {
	r.BeginRead()
	defer r.EndRead()
	return r.n
}
`},
		},
		{
			name:     "lockpair deferred wrapper literal is credited",
			analyzer: LockPair,
			files: map[string]string{"a.go": `package neg
` + relationDecl + `
func f(r *Relation) int {
	r.BeginRead()
	defer func() { r.EndRead() }()
	return r.n
}
`},
		},
		{
			name:     "lockpair unlock before every return is balanced",
			analyzer: LockPair,
			files: map[string]string{"a.go": `package neg
` + relationDecl + `
func f(r *Relation, early bool) int {
	r.BeginRead()
	if early {
		r.EndRead()
		return 0
	}
	n := r.n
	r.EndRead()
	return n
}
`},
		},
		{
			name:     "lockpair path that panics needs no unlock",
			analyzer: LockPair,
			files: map[string]string{"a.go": `package neg
` + relationDecl + `
func f(r *Relation, bad bool) {
	r.BeginRead()
	defer r.EndRead()
	if bad {
		panic("no unlock needed past here")
	}
}
`},
		},
		{
			name:     "droppederr pragma with a reason suppresses",
			analyzer: DroppedErr,
			files: map[string]string{"a.go": `package neg

import "errors"

func mayFail() error { return errors.New("x") }

func f() {
	_ = mayFail() //grovevet:ignore droppederr the test acknowledges this discard
}
`},
		},
		{
			name:     "droppederr bare pragma suppresses nothing and is itself flagged",
			analyzer: DroppedErr,
			files: map[string]string{"a.go": `package neg

import "errors"

func mayFail() error { return errors.New("x") }

func f() {
	_ = mayFail() //grovevet:ignore
}
`},
			wantMsgs: []string{
				"error discarded into _",
				"pragma needs an explanation",
			},
		},
		{
			name:     "droppederr violations in _test.go files are never loaded",
			analyzer: DroppedErr,
			files: map[string]string{
				"a.go": `package neg

import "errors"

func mayFail() error { return errors.New("x") }
`,
				"a_test.go": `package neg

func init() {
	_ = mayFail()
	mayFail()
}
`,
			},
		},
		{
			name:     "fsioonly fsio-mediated operations pass",
			analyzer: FsioOnly,
			files: map[string]string{"a.go": `package neg

import "os"

type FS interface {
	Create(string) (*os.File, error)
	MkdirAll(string, os.FileMode) error
}

func save(fs FS, dir string) error {
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := fs.Create(dir + "/data.bin")
	if err != nil {
		return err
	}
	return f.Close()
}

func notExist(err error) bool { return os.IsNotExist(err) }
`},
		},
		{
			name:     "fsioonly direct os call is reported once",
			analyzer: FsioOnly,
			files: map[string]string{"a.go": `package neg

import "os"

func nuke(dir string) error { return os.RemoveAll(dir) }
`},
			wantMsgs: []string{"os.RemoveAll bypasses the fsio.FS abstraction"},
		},
		{
			name:     "stdlibonly stdlib and module-local imports pass",
			analyzer: StdlibOnly,
			files: map[string]string{
				"a.go": `package neg

import (
	"fmt"

	"fixture/neg/sub"
)

var _ = fmt.Sprint(sub.X)
`,
				"sub/sub.go": `package sub

var X = 1
`,
			},
		},
		{
			name:     "mutexbyvalue pointers and fresh constructions pass",
			analyzer: MutexByValue,
			files: map[string]string{"a.go": `package neg

import "sync"

type G struct {
	mu sync.Mutex
	n  int
}

func ptr(g *G) int { return g.n }

func fresh() *G {
	g := G{}
	return &g
}
`},
		},
		{
			name:     "atomicmix uniformly atomic access passes",
			analyzer: AtomicMix,
			files: map[string]string{"a.go": `package neg

import "sync/atomic"

type s struct{ hits int64 }

func bump(v *s) { atomic.AddInt64(&v.hits, 1) }

func read(v *s) int64 { return atomic.LoadInt64(&v.hits) }
`},
		},
		{
			name:     "ctxflow convenience wrapper and ctx-scoped literals pass",
			analyzer: CtxFlow,
			files: map[string]string{"a.go": `package neg

import "context"

type E struct{}

func (e *E) MatchContext(ctx context.Context, q int) int { return q }

func (e *E) Match(q int) int { return e.MatchContext(context.Background(), q) }

func run(ctx context.Context, e *E) {
	f := func(ctx context.Context) { _ = e.MatchContext(ctx, 1) }
	f(ctx)
}
`},
		},
		{
			name:     "ctxflow root contexts in main packages pass",
			analyzer: CtxFlow,
			files: map[string]string{"a.go": `package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
`},
		},
		{
			name:     "ctxflow pragma acknowledges an intentional root",
			analyzer: CtxFlow,
			files: map[string]string{"a.go": `package neg

import "context"

func daemon() {
	ctx := context.Background() //grovevet:ignore ctxflow the daemon loop owns its root; there is no caller to inherit from
	_ = ctx
}
`},
		},
		{
			name:     "goroleak channel-joined workers with recovering helper pass",
			analyzer: GoroLeak,
			files: map[string]string{"a.go": `package neg

import "sync"

func safeCall(f func()) {
	defer func() { recover() }()
	f()
}

func pool(n int, jobs chan func()) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				safeCall(j)
			}
		}()
	}
	wg.Wait()
}
`},
		},
		{
			name:     "goroleak pragma acknowledges a detached goroutine",
			analyzer: GoroLeak,
			files: map[string]string{"a.go": `package neg

func serve(accept func() bool) {
	//grovevet:ignore goroleak accept loop exits when the listener closes; a panic here must crash loudly
	go func() {
		for accept() {
		}
	}()
}
`},
		},
		{
			name:     "lockorder consistent global order passes",
			analyzer: LockOrder,
			files: map[string]string{"a.go": `package neg

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func f(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
}

func g(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}
`},
		},
		{
			name:     "lockorder local mutexes and released locks pass",
			analyzer: LockOrder,
			files: map[string]string{"a.go": `package neg

import "sync"

func h(ch chan int) {
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
	ch <- 1
}
`},
		},
		{
			name:     "hotalloc unannotated module never invokes the toolchain",
			analyzer: HotAlloc,
			files: map[string]string{"a.go": `package neg

func box(n int) *int { return &n }
`},
		},
		{
			name:     "metricname conforming registrations pass",
			analyzer: MetricName,
			files: map[string]string{"a.go": `package neg

type Registry struct{}

func (r *Registry) Counter(name, help string) int { return 0 }
func (r *Registry) Gauge(name, help string) int   { return 0 }

func f(r *Registry) {
	r.Counter("grove_ops_total", "ok")
	r.Gauge("grove_queue_depth", "ok")
}
`},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			m := loadFiles(t, tc.files)
			diags := Run(m, []*Analyzer{tc.analyzer}, nil)
			if len(diags) != len(tc.wantMsgs) {
				for _, d := range diags {
					t.Logf("got: %s", d)
				}
				t.Fatalf("got %d diagnostics, want %d", len(diags), len(tc.wantMsgs))
			}
			for i, msg := range tc.wantMsgs {
				if !strings.Contains(diags[i].Message, msg) {
					t.Errorf("diagnostic %d = %q, want substring %q", i, diags[i].Message, msg)
				}
			}
		})
	}
}
