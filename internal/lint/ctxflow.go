package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces grove's cancellation-threading discipline over the module
// call graph. Three rules, in order of directness:
//
//  1. A function that receives a context.Context must thread it: passing
//     context.Background() or context.TODO() to a callee from inside a
//     context-carrying function severs the caller's deadline and
//     cancellation.
//
//  2. A context-carrying function must use the context-aware variant of a
//     callee when one exists: calling Engine.ExecuteGraphQuery(q) where
//     ExecuteGraphQueryContext(ctx, q) is declared silently drops ctx on the
//     floor even though no Background() appears at the call site.
//
//  3. context.Background()/TODO() are banned in library code reachable from
//     the *Context API facades (any function whose name ends in "Context"
//     and accepts a ctx): on those paths a root context always masks a
//     caller deadline. Elsewhere in library code a root context is legal
//     only in the convenience-wrapper shape — a function with no ctx
//     parameter passing Background() directly as a call argument to a
//     context-accepting callee (e.g. `func (s *Store) Match(g) { return
//     s.MatchContext(context.Background(), g) }`). Any other creation —
//     stored in a variable, returned, captured — needs a reasoned
//     //grovevet:ignore ctxflow pragma.
//
// The analyzer skips main packages (cmd/, examples/): binaries own their
// root contexts.
var CtxFlow = &Analyzer{
	Name:      "ctxflow",
	Doc:       "context.Context must thread through context-carrying call paths",
	RunModule: runCtxFlow,
}

func runCtxFlow(pass *ModulePass) {
	cg := pass.Module.CallGraph()
	reach := cg.Reachable(cg.ContextFacades())
	for _, fi := range cg.Funcs {
		if fi.Pkg.Name == "main" {
			continue
		}
		w := &ctxWalker{pass: pass, cg: cg, fi: fi, reachable: reach[fi]}
		w.walk(fi.Decl.Body, fi.CtxParamName)
	}
}

type ctxWalker struct {
	pass      *ModulePass
	cg        *CallGraph
	fi        *FuncInfo
	reachable bool // fi is reachable from a *Context facade
}

// walk scans one scope. ctxName is the context parameter visible in this
// scope ("" = none, "_" = accepted but discarded); a nested function literal
// that declares its own context parameter opens a fresh scope, one that does
// not inherits the encloser's (it closes over ctx).
func (w *ctxWalker) walk(body *ast.BlockStmt, ctxName string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inner := ctxName
			if own := ctxParamName(n.Type); own != "" {
				inner = own
			}
			w.walk(n.Body, inner)
			return false
		case *ast.CallExpr:
			w.call(n, ctxName)
		}
		return true
	})
}

func (w *ctxWalker) call(call *ast.CallExpr, ctxName string) {
	info := w.fi.Pkg.Info
	if isCtxRootCall(call) {
		w.rootCall(call, ctxName)
		return
	}
	if ctxName == "" || ctxName == "_" {
		return
	}
	// Rule 2: context-carrying scope calling a ctx-less module callee that
	// has a context-aware sibling.
	callee := w.cg.Lookup(usedFunc(info, call))
	if callee == nil || callee.CtxParamName != "" {
		return
	}
	name := callee.Decl.Name.Name
	if strings.HasSuffix(name, "Context") {
		return
	}
	if sib := w.cg.Sibling(callee, name+"Context"); sib != nil && sib.CtxParamName != "" {
		w.pass.Reportf(call.Pos(),
			"%s is called from a context-carrying function but drops ctx; call %s(ctx, ...) instead",
			name, name+"Context")
	}
}

// rootCall handles one context.Background()/TODO() creation site.
func (w *ctxWalker) rootCall(call *ast.CallExpr, ctxName string) {
	fun := types.ExprString(call.Fun)
	switch {
	case ctxName != "" && ctxName != "_":
		// Rule 1.
		w.pass.Reportf(call.Pos(),
			"%s() inside a function that already receives %q severs cancellation; pass %s through",
			fun, ctxName, ctxName)
	case w.reachable:
		// Rule 3, strong form.
		w.pass.Reportf(call.Pos(),
			"%s() in library code reachable from the *Context API facades masks caller deadlines; thread the caller's ctx",
			fun)
	case !w.wrapperShaped(call):
		// Rule 3, weak form.
		w.pass.Reportf(call.Pos(),
			"%s() creates a root context outside the convenience-wrapper shape; thread a ctx or add a //grovevet:ignore ctxflow pragma naming why this is a root",
			fun)
	}
}

// wrapperShaped reports whether the Background()/TODO() call is passed
// directly as an argument to a context-accepting callee — the recognized
// convenience-facade idiom.
func (w *ctxWalker) wrapperShaped(root *ast.CallExpr) bool {
	found := false
	ast.Inspect(w.fi.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		outer, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range outer.Args {
			if unparen(arg) == root {
				found = sigAcceptsContext(w.fi.Pkg.Info, outer) ||
					calleeAcceptsCtxSyntactically(w.cg, w.fi.Pkg.Info, outer)
				return false
			}
		}
		return true
	})
	return found
}

// calleeAcceptsCtxSyntactically is the fixture-friendly fallback for
// wrapperShaped: when the outer call's type did not resolve, a module callee
// with a declared ctx parameter still counts.
func calleeAcceptsCtxSyntactically(cg *CallGraph, info *types.Info, call *ast.CallExpr) bool {
	callee := cg.Lookup(usedFunc(info, call))
	return callee != nil && callee.CtxParamName != ""
}

// isCtxRootCall matches context.Background() and context.TODO().
func isCtxRootCall(call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "context"
}
