// Package lint is grove's in-tree static-analysis framework: it loads the
// module's packages as typed ASTs using nothing but the standard library
// (go/parser, go/ast, go/types — no golang.org/x/tools), runs a set of
// project-specific analyzers over them, and reports file:line diagnostics.
//
// Analyzers enforce invariants that `go vet` cannot see because they are
// grove conventions rather than language rules: the colstore read-lock
// protocol (lockpair), the no-silently-dropped-errors rule for engine
// packages (droppederr), the fsio-mediated-I/O rule for the persistence
// layer (fsioonly), the Prometheus metric-name contract of the obs registry
// (metricname), the module's stdlib-only dependency policy (stdlibonly), and
// lock/atomic hygiene (mutexbyvalue, atomicmix).
//
// A second, interprocedural tier builds a module-wide call graph with
// per-function summaries (see callgraph.go) and reasons across function
// boundaries: context threading from the *Context API facades (ctxflow),
// goroutine join/termination and panic-recovery obligations (goroleak), a
// global lock-acquisition order free of cycles and of blocking operations
// under locks (lockorder), and compiler-verified allocation-freedom of
// //grove:hotpath kernels (hotalloc).
//
// A finding can be acknowledged in source with a pragma comment on the same
// line or the line directly above:
//
//	_ = srv.Serve(ln) //grovevet:ignore droppederr Serve only returns after Close
//
// The pragma must name a reason; a bare `grovevet:ignore` is itself reported.
// Naming analyzers (comma-separated) limits the suppression to them; with no
// leading analyzer list the pragma silences every analyzer on that line.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a resolved source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Analyzer is one named check. Run, when set, is invoked once per package;
// RunModule, when set, is invoked once with the whole module after the
// per-package passes, for checks that need cross-package state (e.g.
// duplicate metric registrations).
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// Pass is the per-package unit of work handed to an Analyzer's Run.
type Pass struct {
	Analyzer *Analyzer
	Module   *Module
	Pkg      *Package

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Module.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModulePass is the module-wide unit of work handed to RunModule.
type ModulePass struct {
	Analyzer *Analyzer
	Module   *Module

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Module.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns grove's full analyzer suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		LockPair, DroppedErr, FsioOnly, MetricName, StdlibOnly, MutexByValue, AtomicMix,
		CtxFlow, GoroLeak, LockOrder, HotAlloc,
	}
}

// DefaultFilter scopes analyzers the way `make lint` runs them: droppederr
// applies only to internal/... packages (cmd and example binaries may
// legitimately best-effort print), fsioonly only to the persistence layer
// (internal/colstore and internal/wal — the packages whose crash-fault
// sweeps depend on every file op routing through the fsio seam; elsewhere
// direct os calls are fine), everything else module-wide.
func DefaultFilter(m *Module) func(*Analyzer, *Package) bool {
	internalPrefix := m.Path + "/internal/"
	colstorePath := m.Path + "/internal/colstore"
	walPath := m.Path + "/internal/wal"
	return func(a *Analyzer, p *Package) bool {
		switch a.Name {
		case DroppedErr.Name:
			return strings.HasPrefix(p.Path, internalPrefix)
		case FsioOnly.Name:
			return p.Path == colstorePath || strings.HasPrefix(p.Path, colstorePath+"/") ||
				p.Path == walPath || strings.HasPrefix(p.Path, walPath+"/")
		}
		return true
	}
}

// Run executes the analyzers over the module's packages, applies pragma
// suppression, and returns the surviving diagnostics sorted by position.
// filter, when non-nil, limits which packages each per-package analyzer
// visits (module-wide passes always see every package).
func Run(m *Module, analyzers []*Analyzer, filter func(*Analyzer, *Package) bool) []Diagnostic {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		if a.Run != nil {
			for _, pkg := range m.Pkgs {
				if filter != nil && !filter(a, pkg) {
					continue
				}
				a.Run(&Pass{Analyzer: a, Module: m, Pkg: pkg, report: report})
			}
		}
		if a.RunModule != nil {
			a.RunModule(&ModulePass{Analyzer: a, Module: m, report: report})
		}
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	out := diags[:0]
	for _, d := range diags {
		if !m.suppressed(d, known) {
			out = append(out, d)
		}
	}
	out = append(out, m.pragmaHygiene(known)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// pragmaMarker introduces a suppression comment.
const pragmaMarker = "grovevet:ignore"

// pragma is one grovevet:ignore comment, parsed at load time.
type pragma struct {
	pos  token.Position
	rest string // everything after the marker, trimmed
}

// split separates the optional analyzer list from the reason. The first
// whitespace-delimited token counts as an analyzer list only when every
// comma-separated element is a known analyzer name; otherwise the whole rest
// is the reason and the pragma applies to all analyzers.
func (p pragma) split(known map[string]bool) (names []string, reason string) {
	fields := strings.Fields(p.rest)
	if len(fields) == 0 {
		return nil, ""
	}
	first := strings.Split(fields[0], ",")
	allKnown := true
	for _, n := range first {
		if !known[n] {
			allKnown = false
			break
		}
	}
	if allKnown {
		return first, strings.Join(fields[1:], " ")
	}
	return nil, strings.Join(fields, " ")
}

// covers reports whether the pragma silences analyzer a.
func (p pragma) covers(a string, known map[string]bool) bool {
	names, reason := p.split(known)
	if reason == "" {
		return false // reason-less pragmas never suppress; pragmaHygiene flags them
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if n == a {
			return true
		}
	}
	return false
}

// suppressed reports whether d is covered by a pragma on its line or the
// line directly above.
func (m *Module) suppressed(d Diagnostic, known map[string]bool) bool {
	for _, p := range m.pragmas[d.Pos.Filename] {
		if (p.pos.Line == d.Pos.Line || p.pos.Line == d.Pos.Line-1) && p.covers(d.Analyzer, known) {
			return true
		}
	}
	return false
}

// pragmaHygiene reports pragmas that cannot suppress anything: missing a
// reason, or naming no known analyzer while reading like a bare marker.
func (m *Module) pragmaHygiene(known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, ps := range m.pragmas {
		for _, p := range ps {
			if _, reason := p.split(known); reason == "" {
				out = append(out, Diagnostic{
					Analyzer: "grovevet",
					Pos:      p.pos,
					Message:  "grovevet:ignore pragma needs an explanation (and optionally a comma-separated analyzer list)",
				})
			}
		}
	}
	return out
}
