package lint

import (
	"go/ast"
	"go/types"
)

// MutexByValue is a copylocks check for the sync and sync/atomic state grove
// threads through its concurrent read path: values whose type (transitively)
// contains a sync.Mutex/RWMutex/WaitGroup/Once/Cond/Map/Pool or a
// sync/atomic value type must never be copied — a copied RWMutex forks the
// lock and a copied atomic forks the counter, and both fail silently.
//
// Flagged copies: by-value receivers, parameters and results; assignments
// whose right-hand side is an addressable value (variable, field, *p
// dereference, index expression); and range clauses that copy elements.
// Constructing a fresh value (composite literal, call result) is allowed —
// the function returning it by value is flagged at its own declaration.
var MutexByValue = &Analyzer{
	Name: "mutexbyvalue",
	Doc:  "no copying of values containing sync or sync/atomic state",
	Run:  runMutexByValue,
}

func runMutexByValue(pass *Pass) {
	c := &copyChecker{pass: pass, seen: map[types.Type]string{}}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					c.checkFieldList(n.Recv, "receiver")
				}
				c.checkSignature(n.Type)
			case *ast.FuncLit:
				c.checkSignature(n.Type)
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					c.checkCopy(rhs, "assignment")
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					c.checkCopy(v, "assignment")
				}
			case *ast.RangeStmt:
				c.checkRangeVar(n.Key)
				c.checkRangeVar(n.Value)
			case *ast.CallExpr:
				for _, arg := range n.Args {
					c.checkCopy(arg, "call argument")
				}
			}
			return true
		})
	}
}

type copyChecker struct {
	pass *Pass
	seen map[types.Type]string // type → contained lock description ("" = none)
}

func (c *copyChecker) checkSignature(ft *ast.FuncType) {
	c.checkFieldList(ft.Params, "parameter")
	if ft.Results != nil {
		c.checkFieldList(ft.Results, "result")
	}
}

func (c *copyChecker) checkFieldList(fl *ast.FieldList, what string) {
	if fl == nil || c.pass.Pkg.Info == nil {
		return
	}
	for _, field := range fl.List {
		tv, ok := c.pass.Pkg.Info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if lock := c.lockIn(tv.Type); lock != "" {
			c.pass.Reportf(field.Type.Pos(), "%s passes a lock by value: %s", what, describeLock(tv.Type, lock))
		}
	}
}

// checkCopy flags e when it reads an existing lock-containing value (as
// opposed to constructing one).
func (c *copyChecker) checkCopy(e ast.Expr, what string) {
	e = unparen(e)
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return // composite literals, calls, &x, literals: not a copy of an existing value
	}
	info := c.pass.Pkg.Info
	if info == nil {
		return
	}
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil || tv.IsType() {
		return
	}
	if lock := c.lockIn(tv.Type); lock != "" {
		c.pass.Reportf(e.Pos(), "%s copies a lock: %s", what, describeLock(tv.Type, lock))
	}
}

func (c *copyChecker) checkRangeVar(e ast.Expr) {
	if e == nil || isBlank(e) {
		return
	}
	info := c.pass.Pkg.Info
	if info == nil {
		return
	}
	var t types.Type
	if id, ok := e.(*ast.Ident); ok {
		if obj, ok := info.Defs[id]; ok && obj != nil {
			t = obj.Type()
		}
	}
	if t == nil {
		if tv, ok := info.Types[e]; ok {
			t = tv.Type
		}
	}
	if t == nil {
		return
	}
	if lock := c.lockIn(t); lock != "" {
		c.pass.Reportf(e.Pos(), "range clause copies a lock: %s", describeLock(t, lock))
	}
}

func describeLock(t types.Type, lock string) string {
	if t.String() == lock {
		return lock + " must not be copied"
	}
	return t.String() + " contains " + lock
}

// lockIn returns the description of a lock type contained (transitively, by
// value) in t, or "".
func (c *copyChecker) lockIn(t types.Type) string {
	if d, ok := c.seen[t]; ok {
		return d
	}
	c.seen[t] = "" // breaks recursive types; overwritten below
	d := c.lockIn1(t)
	c.seen[t] = d
	return d
}

func (c *copyChecker) lockIn1(t types.Type) string {
	switch t := t.(type) {
	case *types.Named:
		if isLockType(t) {
			return t.String()
		}
		return c.lockIn(t.Underlying())
	case *types.Alias:
		return c.lockIn(types.Unalias(t))
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if d := c.lockIn(t.Field(i).Type()); d != "" {
				return d
			}
		}
	case *types.Array:
		return c.lockIn(t.Elem())
	}
	return ""
}

// syncLockTypes are the by-value-uncopyable types of package sync;
// everything in sync/atomic counts.
var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Cond": true, "Once": true, "Map": true, "Pool": true,
}

func isLockType(named *types.Named) bool {
	obj := named.Obj()
	pkg := obj.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "sync":
		return syncLockTypes[obj.Name()]
	case "sync/atomic":
		return true
	}
	return false
}
