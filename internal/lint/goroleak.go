package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak audits every `go` statement in library (non-main) packages for
// two obligations the scatter-gather path established:
//
// Join/termination — a spawned goroutine must have a provable way to finish
// and be observed. Accepted evidence, checked in the goroutine body (the
// function literal, or the declared module function being spawned):
//
//   - sync.WaitGroup pairing: the body calls wg.Done() (usually deferred)
//     and, for literals, a wg.Add(...) on the same waitgroup appears before
//     the spawn in the enclosing function;
//   - a channel operation: a send, receive, close, select communication, or
//     ranging over a channel — the goroutine participates in a handshake
//     its owner can drain;
//   - a reasoned //grovevet:ignore goroleak pragma for genuinely detached
//     goroutines (e.g. a server accept loop that exits on listener Close).
//
// Panic recovery — a library goroutine that panics kills the whole process
// (nothing above it on the stack can recover), so the body must defer a
// recover, or call a module function that defers one (the batch executor's
// safeCall idiom), or carry a pragma naming why a crash is the intent.
var GoroLeak = &Analyzer{
	Name:      "goroleak",
	Doc:       "go statements need a provable join/termination path and panic recovery",
	RunModule: runGoroLeak,
}

func runGoroLeak(pass *ModulePass) {
	cg := pass.Module.CallGraph()
	for _, fi := range cg.Funcs {
		if fi.Pkg.Name == "main" {
			continue
		}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, cg, fi, g)
			return true
		})
	}
}

func checkGoStmt(pass *ModulePass, cg *CallGraph, fi *FuncInfo, g *ast.GoStmt) {
	info := fi.Pkg.Info
	if fl, ok := g.Call.Fun.(*ast.FuncLit); ok {
		checkLitSpawn(pass, cg, fi, g, fl)
		return
	}
	callee := cg.Lookup(usedFunc(info, g.Call))
	if callee == nil {
		pass.Reportf(g.Pos(),
			"go statement spawns %s, which this analysis cannot see into; spawn a function literal with explicit join and recovery, or add a //grovevet:ignore goroleak pragma",
			types.ExprString(g.Call.Fun))
		return
	}
	if len(callee.DoneReceivers) == 0 && !bodyHasChanOp(callee.Pkg.Info, callee.Decl.Body) {
		pass.Reportf(g.Pos(),
			"goroutine %s has no provable join or termination path (no WaitGroup Done, no channel operation); add one or a //grovevet:ignore goroleak pragma",
			callee.Name())
	}
	if !recoversPanics(callee.Decl.Body, cg, callee.Pkg.Info) {
		pass.Reportf(g.Pos(),
			"library goroutine %s does not recover panics; a panic here kills the process — defer a recover or add a //grovevet:ignore goroleak pragma",
			callee.Name())
	}
}

func checkLitSpawn(pass *ModulePass, cg *CallGraph, fi *FuncInfo, g *ast.GoStmt, fl *ast.FuncLit) {
	info := fi.Pkg.Info
	done := doneReceivers(info, fl.Body)
	joined := false
	for _, recv := range done {
		if addBeforeSpawn(info, fi.Decl.Body, recv, g.Pos()) {
			joined = true
			break
		}
	}
	if !joined && len(done) > 0 {
		// Done with no visible Add before the spawn: either an un-Added Done
		// (a real bug: Wait can return early / panic on negative counter) or
		// an Add hidden behind a helper. Flag it distinctly.
		pass.Reportf(g.Pos(),
			"goroutine calls %s.Done() but no %s.Add(...) precedes the go statement in %s; Add before spawning",
			done[0], done[0], fi.Name())
		joined = true // the Done still joins; don't double-report below
	}
	if !joined && !bodyHasChanOp(info, fl.Body) {
		pass.Reportf(g.Pos(),
			"goroutine has no provable join or termination path (no WaitGroup Done, no channel operation); add one or a //grovevet:ignore goroleak pragma")
	}
	if !recoversPanics(fl.Body, cg, info) {
		pass.Reportf(g.Pos(),
			"library goroutine does not recover panics; a panic here kills the process — defer a recover or add a //grovevet:ignore goroleak pragma")
	}
}

// doneReceivers collects rendered receivers of sync.WaitGroup Done() calls
// in body (not inside nested literals).
func doneReceivers(info *types.Info, body *ast.BlockStmt) []string {
	var out []string
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if recv, name, _, ok := methodCall(call); ok && name == "Done" &&
				waitGroupRecv(info, recv) {
				out = append(out, types.ExprString(recv))
			}
		}
		return true
	})
	return out
}

// addBeforeSpawn reports whether recv.Add(...) appears before pos in the
// spawning function's body.
func addBeforeSpawn(info *types.Info, body *ast.BlockStmt, recv string, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() >= pos {
			return !found && (n == nil || n.Pos() < pos)
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if r, name, _, ok := methodCall(call); ok && name == "Add" &&
				waitGroupRecv(info, r) && types.ExprString(r) == recv {
				found = true
			}
		}
		return true
	})
	return found
}

// waitGroupRecv reports whether recv is a sync.WaitGroup. Without type info
// (fixture code) any receiver whose rendering mentions "wg" is accepted.
func waitGroupRecv(info *types.Info, recv ast.Expr) bool {
	if info != nil {
		if _, ok := info.Types[unparen(recv)]; ok {
			return receiverIsType(info, recv, "sync", "WaitGroup")
		}
	}
	return receiverNamed(info, recv, "WaitGroup")
}

// bodyHasChanOp reports whether body performs any channel operation: send,
// receive, close, a select communication, or ranging over a channel.
func bodyHasChanOp(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			if len(n.Body.List) > 0 {
				found = true
			}
		case *ast.RangeStmt:
			if isChanExpr(info, n.X) {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				found = true
			}
		}
		return !found
	})
	return found
}

// isChanExpr reports whether e's static type is a channel. Without type info
// it errs toward true, so fixture worker loops still count as joined.
func isChanExpr(info *types.Info, e ast.Expr) bool {
	if info == nil {
		return true
	}
	tv, ok := info.Types[unparen(e)]
	if !ok || tv.Type == nil {
		return true
	}
	_, ok = tv.Type.Underlying().(*types.Chan)
	return ok
}

// recoversPanics reports whether body defers a recover directly, or calls a
// module function that defers one (the safeCall idiom: the panic-prone work
// runs entirely inside the recovering callee).
func recoversPanics(body *ast.BlockStmt, cg *CallGraph, info *types.Info) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok && callsRecover(fl.Body) {
				found = true
				return false
			}
			if callee := cg.Lookup(usedFunc(info, n.Call)); callee != nil && callee.RecoversDeferred {
				found = true
				return false
			}
		case *ast.CallExpr:
			if callee := cg.Lookup(usedFunc(info, n)); callee != nil && callee.RecoversDeferred {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
