package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DroppedErr reports error results that vanish silently: a call whose error
// result is discarded by using it as a statement, and error values assigned
// to the blank identifier. Deferred and go'd calls are exempt (both are
// established cleanup idioms), as are _test.go files (the loader never
// parses them). An intentional discard must carry a pragma naming its
// reason:
//
//	_ = bw.Flush() //grovevet:ignore droppederr the write error was already returned
//
// `make lint` scopes this analyzer to internal/... — the engine must never
// lose an error, while cmd/ and examples/ may best-effort print.
var DroppedErr = &Analyzer{
	Name: "droppederr",
	Doc:  "no silently discarded error results in engine packages",
	Run:  runDroppedErr,
}

func runDroppedErr(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, ok := unparen(s.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				if writesToInfallible(info, call) {
					return true
				}
				for _, t := range resultTypes(info, call) {
					if isErrorType(t) {
						pass.Reportf(s.Pos(), "result of %s contains an error that is discarded; handle it or assign it with a //grovevet:ignore pragma",
							types.ExprString(call.Fun))
						break
					}
				}
			case *ast.AssignStmt:
				checkBlankErrAssign(pass, info, s.Lhs, s.Rhs)
			case *ast.ValueSpec:
				// `var _ = f()` — same rule as assignment.
				var lhs []ast.Expr
				for _, n := range s.Names {
					lhs = append(lhs, n)
				}
				checkBlankErrAssign(pass, info, lhs, s.Values)
			}
			return true
		})
	}
}

// checkBlankErrAssign flags blank identifiers that swallow an error, in both
// the 1:1 form (`_ = err`, `_, _ = a, b`) and the call-spread form
// (`v, _ := f()`).
func checkBlankErrAssign(pass *Pass, info *types.Info, lhs, rhs []ast.Expr) {
	if len(rhs) == 0 {
		return
	}
	report := func(e ast.Expr, src string) {
		pass.Reportf(e.Pos(), "error discarded into _ (from %s); handle it or add a //grovevet:ignore pragma explaining why it is safe", src)
	}
	if len(rhs) == 1 && len(lhs) > 1 {
		call, ok := unparen(rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		results := resultTypes(info, call)
		if len(results) != len(lhs) {
			return
		}
		for i, l := range lhs {
			if isBlank(l) && isErrorType(results[i]) {
				report(l, types.ExprString(call.Fun))
			}
		}
		return
	}
	if len(lhs) != len(rhs) || info == nil {
		return
	}
	for i, l := range lhs {
		if !isBlank(l) {
			continue
		}
		if tv, ok := info.Types[rhs[i]]; ok && isErrorType(tv.Type) {
			report(l, types.ExprString(rhs[i]))
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// writesToInfallible exempts calls whose error result is structurally always
// nil: methods on strings.Builder / bytes.Buffer (both documented never to
// fail), and fmt.Fprint* directed at such a writer (Fprint only forwards the
// writer's error).
func writesToInfallible(info *types.Info, call *ast.CallExpr) bool {
	if recv, _, _, ok := methodCall(call); ok {
		if isInfallibleWriter(info, recv) {
			return true
		}
		if pkg, ok := unparen(recv).(*ast.Ident); ok && pkg.Name == "fmt" {
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok &&
				strings.HasPrefix(sel.Sel.Name, "Fprint") && len(call.Args) > 0 {
				return isInfallibleWriter(info, call.Args[0])
			}
		}
	}
	return false
}

func isInfallibleWriter(info *types.Info, e ast.Expr) bool {
	if info == nil {
		return false
	}
	tv, ok := info.Types[unparen(e)]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}
