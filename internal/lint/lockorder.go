package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds a global lock-acquisition graph across the module's
// mutexes — every sync.Mutex/sync.RWMutex field or package-level variable,
// plus the colstore Relation BeginRead/EndRead protocol, identified by
// "pkg.Type.field" — and reports two classes of deadlock risk:
//
// Cycles: if any code path acquires A and then (directly or through any
// chain of module calls) B, while another acquires B and then A, two
// goroutines can deadlock. Lock identity is per mutex *field*, not per
// instance, which is the useful granularity for a partitioned executor:
// shard 0's relation mutex and shard 1's are interchangeable from an
// ordering standpoint.
//
// Blocking while locked: a channel operation (send, receive, select, range)
// or an fsio filesystem call made while holding a lock extends the lock's
// hold time by an unbounded wait — the classic way a partitioned executor's
// "fast" mutex becomes a convoy. One diagnostic per (function, lock) is
// reported at the acquisition site, so an intentional design (a save mutex
// that exists precisely to serialize snapshot I/O) is acknowledged with one
// //grovevet:ignore lockorder pragma on that line. The fsio package itself
// is exempt: it is the blocking boundary.
//
// The held-set tracking is linear over each function body (lockpair owns
// branch-sensitive pairing); function literals are analyzed as their own
// scopes with an empty held set, and their facts fold into the enclosing
// function's summary.
var LockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "no lock-order cycles; no channel/fsio blocking while holding a lock",
	RunModule: runLockOrder,
}

// loFact is one direct lock acquisition in a function body.
type loFact struct {
	key string
	pos token.Pos
}

// loBlock is one direct potentially-blocking operation.
type loBlock struct {
	desc string // "channel receive", "fsio call fs.Create", ...
	pos  token.Pos
}

// loSummary is the per-function fact set, before and after the transitive
// closure.
type loSummary struct {
	fi       *FuncInfo
	acquires []loFact
	blocks   []loBlock

	transAcquires map[string]token.Pos // key → a representative acquisition site
	transBlock    *loBlock             // a representative blocking operation, or nil
}

// loEdge is one observed "A held while B acquired" ordering.
type loEdge struct {
	pos   token.Pos // where B was acquired (or the call that acquires it)
	via   string    // "" for a direct acquisition, else the callee name
	after string    // the edge target key (B)
}

func runLockOrder(pass *ModulePass) {
	cg := pass.Module.CallGraph()
	sums := make(map[*FuncInfo]*loSummary, len(cg.Funcs))
	for _, fi := range cg.Funcs {
		sums[fi] = collectLockFacts(fi)
	}
	closeLockFacts(sums)

	// Walk every body with held-set tracking, collecting ordering edges and
	// reporting blocking-while-locked.
	edges := map[string]map[string]loEdge{} // from → to → representative site
	for _, fi := range cg.Funcs {
		w := &lockOrderWalker{pass: pass, cg: cg, fi: fi, sums: sums, edges: edges}
		w.walkBody(fi.Decl.Body)
	}
	reportLockCycles(pass, edges)
}

// collectLockFacts gathers a function's direct acquisitions and blocking
// operations, including those inside nested literals.
func collectLockFacts(fi *FuncInfo) *loSummary {
	s := &loSummary{fi: fi}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if key, acquire, _ := lockOpKey(fi.Pkg, n); key != "" && acquire {
				s.acquires = append(s.acquires, loFact{key: key, pos: n.Pos()})
			}
			if desc := fsioCallDesc(fi.Pkg, n); desc != "" {
				s.blocks = append(s.blocks, loBlock{desc: desc, pos: n.Pos()})
			}
		case *ast.SendStmt:
			s.blocks = append(s.blocks, loBlock{desc: "channel send", pos: n.Pos()})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				s.blocks = append(s.blocks, loBlock{desc: "channel receive", pos: n.Pos()})
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				s.blocks = append(s.blocks, loBlock{desc: "blocking select", pos: n.Pos()})
			}
			// A select with default polls; its clauses are still visited.
		case *ast.RangeStmt:
			if isChanRange(fi.Pkg.Info, n) {
				s.blocks = append(s.blocks, loBlock{desc: "range over channel", pos: n.Pos()})
			}
		}
		return true
	})
	return s
}

// closeLockFacts computes each function's transitive acquire/block sets to a
// fixpoint over the call graph.
func closeLockFacts(sums map[*FuncInfo]*loSummary) {
	for _, s := range sums {
		s.transAcquires = map[string]token.Pos{}
		for _, f := range s.acquires {
			s.transAcquires[f.key] = f.pos
		}
		if len(s.blocks) > 0 {
			b := s.blocks[0]
			s.transBlock = &b
		}
	}
	for changed := true; changed; {
		changed = false
		for _, s := range sums {
			for _, cs := range s.fi.Calls {
				callee := sums[cs.Callee]
				if callee == nil {
					continue
				}
				for k := range callee.transAcquires {
					if _, ok := s.transAcquires[k]; !ok {
						s.transAcquires[k] = cs.Call.Pos()
						changed = true
					}
				}
				if s.transBlock == nil && callee.transBlock != nil {
					s.transBlock = &loBlock{
						desc: callee.transBlock.desc + " (via " + cs.Callee.Name() + ")",
						pos:  cs.Call.Pos(),
					}
					changed = true
				}
			}
		}
	}
}

// heldLock is one lock in the walker's held set.
type heldLock struct {
	key      string
	pos      token.Pos // acquisition site (where blocking findings anchor)
	reported bool      // a blocking-while-locked finding was already issued
}

type lockOrderWalker struct {
	pass  *ModulePass
	cg    *CallGraph
	fi    *FuncInfo
	sums  map[*FuncInfo]*loSummary
	edges map[string]map[string]loEdge

	held []*heldLock
}

// walkBody runs the held-set scan over one scope. Nested literals restart
// with an empty held set (they execute later, on their own goroutine or
// deferred).
func (w *lockOrderWalker) walkBody(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			saved := w.held
			w.held = nil
			w.walkBody(n.Body)
			w.held = saved
			return false
		case *ast.DeferStmt:
			// A deferred unlock keeps the lock held to function end — leave
			// the held entry in place. A deferred unlock-wrapper literal too.
			if key, acquire, _ := lockOpKey(w.fi.Pkg, n.Call); key != "" && !acquire {
				return false
			}
			return true
		case *ast.CallExpr:
			w.call(n)
		case *ast.SendStmt:
			w.blockingOp("channel send", n.Pos())
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.blockingOp("channel receive", n.Pos())
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				w.blockingOp("blocking select", n.Pos())
			}
		case *ast.RangeStmt:
			if isChanRange(w.fi.Pkg.Info, n) {
				w.blockingOp("range over channel", n.Pos())
			}
		}
		return true
	})
	w.held = nil
}

func (w *lockOrderWalker) call(call *ast.CallExpr) {
	if key, acquire, _ := lockOpKey(w.fi.Pkg, call); key != "" {
		if acquire {
			w.acquired(key, call.Pos(), "")
			w.held = append(w.held, &heldLock{key: key, pos: call.Pos()})
		} else {
			for i := len(w.held) - 1; i >= 0; i-- {
				if w.held[i].key == key {
					w.held = append(w.held[:i], w.held[i+1:]...)
					break
				}
			}
		}
		return
	}
	if len(w.held) == 0 {
		return
	}
	if desc := fsioCallDesc(w.fi.Pkg, call); desc != "" {
		w.blockingOp(desc, call.Pos())
	}
	callee := w.cg.Lookup(usedFunc(w.fi.Pkg.Info, call))
	if callee == nil {
		return
	}
	if sum := w.sums[callee]; sum != nil {
		for k := range sum.transAcquires {
			w.acquired(k, call.Pos(), callee.Name())
		}
		if sum.transBlock != nil {
			w.blockingOp(sum.transBlock.desc+" (via "+callee.Name()+")", call.Pos())
		}
	}
}

// acquired records ordering edges from every held lock to key.
func (w *lockOrderWalker) acquired(key string, pos token.Pos, via string) {
	for _, h := range w.held {
		if h.key == key {
			continue // lockpair owns same-lock nesting
		}
		m := w.edges[h.key]
		if m == nil {
			m = map[string]loEdge{}
			w.edges[h.key] = m
		}
		if _, ok := m[key]; !ok {
			m[key] = loEdge{pos: pos, via: via, after: key}
		}
	}
}

// blockingOp reports a potentially-blocking operation performed while any
// lock is held — once per (function, lock), anchored at the acquisition.
func (w *lockOrderWalker) blockingOp(desc string, pos token.Pos) {
	for _, h := range w.held {
		if h.reported {
			continue
		}
		h.reported = true
		w.pass.Reportf(h.pos,
			"%s at line %d may block for unbounded time while %s is held (acquired here); release first or add a //grovevet:ignore lockorder pragma naming why the wait is the point",
			desc, w.pass.Module.Fset.Position(pos).Line, h.key)
	}
}

// reportLockCycles reports every edge that participates in a cycle.
func reportLockCycles(pass *ModulePass, edges map[string]map[string]loEdge) {
	reaches := func(from, to string) (bool, token.Pos) {
		seen := map[string]bool{}
		var dfs func(k string) (bool, token.Pos)
		dfs = func(k string) (bool, token.Pos) {
			if seen[k] {
				return false, token.NoPos
			}
			seen[k] = true
			for next, e := range edges[k] {
				if next == to {
					return true, e.pos
				}
				if ok, p := dfs(next); ok {
					return true, p
				}
			}
			return false, token.NoPos
		}
		return dfs(from)
	}
	type finding struct {
		pos        token.Pos
		a, b       string
		reversePos token.Pos
	}
	var findings []finding
	for from, m := range edges {
		for to, e := range m {
			if ok, rp := reaches(to, from); ok {
				findings = append(findings, finding{pos: e.pos, a: from, b: to, reversePos: rp})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		pass.Reportf(f.pos,
			"lock-order cycle: %s is acquired while %s is held here, but elsewhere (line %d) the order reverses; pick one global order",
			f.b, f.a, pass.Module.Fset.Position(f.reversePos).Line)
	}
}

// --- fact extraction ---------------------------------------------------------

// lockOpKey classifies a call as a lock acquisition/release and returns the
// lock's module-wide identity: "pkg.Type.field" for mutex fields,
// "pkg.var" for package-level mutex variables, and the owning Relation's
// read-lock identity for BeginRead/EndRead. Local mutex variables return ""
// (they have no cross-function ordering meaning).
func lockOpKey(pkg *Package, call *ast.CallExpr) (key string, acquire, read bool) {
	recv, name, _, ok := methodCall(call)
	if !ok {
		return "", false, false
	}
	switch name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	case "BeginRead", "EndRead":
		if !receiverNamed(pkg.Info, recv, "Relation") {
			return "", false, false
		}
		return namedRecvKey(pkg, recv) + ".mu", name == "BeginRead", true
	default:
		return "", false, false
	}
	if !mutexExpr(pkg.Info, recv) {
		return "", false, false
	}
	read = name == "RLock" || name == "RUnlock"
	switch r := unparen(recv).(type) {
	case *ast.SelectorExpr:
		return namedRecvKey(pkg, r.X) + "." + r.Sel.Name, acquire, read
	case *ast.Ident:
		if pkg.Info != nil {
			if obj, ok := pkg.Info.Uses[r]; ok && obj.Parent() != nil && obj.Parent().Parent() == types.Universe {
				// Package-scope variable.
				return pkg.Path + "." + r.Name, acquire, read
			}
		}
		return "", false, false // local mutex
	}
	return "", false, false
}

// mutexExpr reports whether e's static type is sync.Mutex or sync.RWMutex.
// Unresolved expressions in fixtures count when they render like a mutex
// field ("mu" suffix).
func mutexExpr(info *types.Info, e ast.Expr) bool {
	if info != nil {
		if tv, ok := info.Types[unparen(e)]; ok && tv.Type != nil {
			return receiverIsType(info, e, "sync", "Mutex") || receiverIsType(info, e, "sync", "RWMutex")
		}
	}
	return strings.HasSuffix(strings.ToLower(types.ExprString(e)), "mu")
}

// namedRecvKey renders the named type (or failing that, the expression) that
// owns a lock field: "grove/internal/colstore.Relation".
func namedRecvKey(pkg *Package, recv ast.Expr) string {
	if pkg.Info != nil {
		if tv, ok := pkg.Info.Types[unparen(recv)]; ok && tv.Type != nil {
			t := tv.Type
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				if named.Obj().Pkg() != nil {
					return named.Obj().Pkg().Path() + "." + named.Obj().Name()
				}
				return named.Obj().Name()
			}
		}
	}
	return pkg.Path + "." + types.ExprString(unparen(recv))
}

// fsioCallDesc matches calls into the fsio layer — package functions of, or
// methods on types declared in, a package whose import path ends in
// "internal/fsio" — from outside that package.
func fsioCallDesc(pkg *Package, call *ast.CallExpr) string {
	if strings.HasSuffix(pkg.Path, "internal/fsio") {
		return ""
	}
	obj := usedFuncAny(pkg.Info, call)
	if obj == nil || obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/fsio") {
		return ""
	}
	return "fsio call " + types.ExprString(call.Fun)
}

// usedFuncAny resolves the called object including interface methods (which
// usedFunc also returns; this name documents intent at call sites that care
// about fsio interface methods).
func usedFuncAny(info *types.Info, call *ast.CallExpr) *types.Func {
	return usedFunc(info, call)
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func isChanRange(info *types.Info, n *ast.RangeStmt) bool {
	if info == nil {
		return false
	}
	tv, ok := info.Types[unparen(n.X)]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}
