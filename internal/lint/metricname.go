package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// MetricName guards the obs registry's naming contract, module-wide:
//
//   - metric families match the Prometheus grammar
//     [a-zA-Z_:][a-zA-Z0-9_:]* and label keys [a-zA-Z_][a-zA-Z0-9_]*;
//   - every family carries the grove_ prefix so dashboards can select the
//     system's metrics with one matcher;
//   - counters end in _total and gauges/histograms do not (the Prometheus
//     counter convention — name drift between kinds is how dashboards
//     silently break);
//   - no full metric name is registered from more than one call site, and
//     no family is registered under two different kinds.
//
// Names are resolved through go/types constant folding, so the check
// follows the Metric* constants; for computed names (family + rendered
// labels, as in NewQueryMetrics) the constant prefix is still validated.
var MetricName = &Analyzer{
	Name:      "metricname",
	Doc:       "obs registry metric names follow the Prometheus contract",
	RunModule: runMetricName,
}

// registryKinds maps obs.Registry constructor methods to the metric kind
// they register.
var registryKinds = map[string]string{
	"Counter":        "counter",
	"CounterFunc":    "counter",
	"CounterVecFunc": "counter",
	"Gauge":          "gauge",
	"GaugeFunc":      "gauge",
	"GaugeVecFunc":   "gauge",
	"Histogram":      "histogram",
}

type metricSite struct {
	pos  token.Pos
	kind string
}

func runMetricName(pass *ModulePass) {
	fullNames := map[string]metricSite{} // exact full name → first registration
	kinds := map[string]metricSite{}     // complete family → first kind seen
	for _, pkg := range pass.Module.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				e, ok := n.(ast.Expr)
				if !ok {
					return true
				}
				recv, method, call, ok := methodCall(e)
				if !ok {
					return true
				}
				kind, ok := registryKinds[method]
				if !ok || len(call.Args) == 0 || !receiverNamed(info, recv, "Registry") {
					return true
				}
				name, exact := stringPrefix(info, call.Args[0])
				checkMetricName(pass, call.Args[0].Pos(), name, exact, kind, fullNames, kinds)
				return true
			})
		}
	}
}

// stringPrefix resolves the static value of a string expression: the full
// constant value when go/types can fold it, otherwise the constant prefix
// of a `+` chain (exact=false).
func stringPrefix(info *types.Info, e ast.Expr) (value string, exact bool) {
	if info != nil {
		if tv, ok := info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			return constant.StringVal(tv.Value), true
		}
	}
	if b, ok := unparen(e).(*ast.BinaryExpr); ok && b.Op == token.ADD {
		s, _ := stringPrefix(info, b.X)
		return s, false
	}
	return "", false
}

func checkMetricName(pass *ModulePass, pos token.Pos, name string, exact bool, kind string, fullNames, kinds map[string]metricSite) {
	if name == "" && !exact {
		pass.Reportf(pos, "metric name does not start with a constant: name the family with a Metric* constant so it can be checked")
		return
	}
	family, rest, hasLabels := strings.Cut(name, "{")
	familyComplete := exact || hasLabels

	for i, c := range family {
		if !isMetricNameChar(c, i == 0) {
			pass.Reportf(pos, "%q is not a valid Prometheus metric name (offending character %q)", family, c)
			break
		}
	}
	if familyComplete && family == "" {
		pass.Reportf(pos, "metric name has an empty family")
	}
	if !strings.HasPrefix(family, "grove_") && !strings.HasPrefix("grove_", family) {
		pass.Reportf(pos, "metric family %q must carry the grove_ prefix", family)
	}
	if familyComplete {
		switch {
		case kind == "counter" && !strings.HasSuffix(family, "_total"):
			pass.Reportf(pos, "counter %q must end in _total (Prometheus counter convention)", family)
		case kind != "counter" && strings.HasSuffix(family, "_total"):
			pass.Reportf(pos, "%s %q must not end in _total (that suffix is the counter convention)", kind, family)
		}
		if first, ok := kinds[family]; ok {
			if first.kind != kind {
				pass.Reportf(pos, "metric family %q registered both as %s and as %s (first at %s)",
					family, first.kind, kind, pass.Module.Fset.Position(first.pos))
			}
		} else {
			kinds[family] = metricSite{pos: pos, kind: kind}
		}
	}
	if exact {
		if hasLabels {
			checkLabels(pass, pos, rest)
		}
		if first, ok := fullNames[name]; ok {
			pass.Reportf(pos, "metric %q is registered more than once (first at %s); re-registration at a second call site hides which handle owns the series",
				name, pass.Module.Fset.Position(first.pos))
		} else {
			fullNames[name] = metricSite{pos: pos, kind: kind}
		}
	}
}

func isMetricNameChar(c rune, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func isLabelKeyChar(c rune, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

// checkLabels validates the `key="value",...}` tail of a full metric name.
func checkLabels(pass *ModulePass, pos token.Pos, rest string) {
	malformed := func(why string) {
		pass.Reportf(pos, "metric labels {%s are malformed: %s", rest, why)
	}
	s, ok := strings.CutSuffix(rest, "}")
	if !ok {
		malformed("missing closing brace")
		return
	}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			malformed("expected key=\"value\"")
			return
		}
		key := s[:eq]
		for i, c := range key {
			if !isLabelKeyChar(c, i == 0) {
				pass.Reportf(pos, "label key %q is not a valid Prometheus label name", key)
				return
			}
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			malformed("label value must be double-quoted")
			return
		}
		s = s[1:]
		for {
			if len(s) == 0 {
				malformed("unterminated label value")
				return
			}
			if s[0] == '\\' {
				if len(s) < 2 {
					malformed("dangling escape in label value")
					return
				}
				s = s[2:]
				continue
			}
			if s[0] == '"' {
				s = s[1:]
				break
			}
			s = s[1:]
		}
		if len(s) > 0 {
			if s[0] != ',' {
				malformed("expected , between label pairs")
				return
			}
			s = s[1:]
			if len(s) == 0 {
				malformed("trailing comma")
				return
			}
		}
	}
}
