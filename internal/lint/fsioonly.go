package lint

import (
	"go/ast"
	"go/types"
)

// fsioEntryPoints are the os-package filesystem mutators and readers that the
// colstore persistence layer must route through fsio.FS so the fault-injection
// harness sees every operation. Pure path/metadata helpers (os.Getenv,
// os.DirEntry, os.IsNotExist, ...) are not listed and stay allowed.
var fsioEntryPoints = map[string]bool{
	"Create":    true,
	"Open":      true,
	"OpenFile":  true,
	"Rename":    true,
	"Remove":    true,
	"RemoveAll": true,
	"Mkdir":     true,
	"MkdirAll":  true,
	"WriteFile": true,
	"ReadFile":  true,
	"ReadDir":   true,
	"Stat":      true,
	"Lstat":     true,
	"Truncate":  true,
	"Chmod":     true,
	"Symlink":   true,
	"Link":      true,
}

// FsioOnly enforces the crash-safety contract of the persistence layer: in
// the packages it is scoped to (internal/colstore, via DefaultFilter), every
// filesystem operation must go through a grove/internal/fsio.FS value, never
// through the os package directly. A direct os call is invisible to the
// FaultFS fault-injection harness, so the crash sweep would no longer prove
// that Save is atomic at every I/O operation. Test files may use os freely
// (the loader never parses them).
var FsioOnly = &Analyzer{
	Name: "fsioonly",
	Doc:  "persistence code must do filesystem I/O through fsio.FS, not package os",
	Run:  runFsioOnly,
}

func runFsioOnly(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := unparen(sel.X).(*ast.Ident)
			if !ok || !fsioEntryPoints[sel.Sel.Name] {
				return true
			}
			if !isPackageNamed(info, id, "os") {
				return true
			}
			pass.Reportf(sel.Pos(), "os.%s bypasses the fsio.FS abstraction; route the operation through an fsio.FS so fault injection covers it",
				sel.Sel.Name)
			return true
		})
	}
}

// isPackageNamed reports whether id refers to the import of the package with
// the given path. Without type information (a fixture that failed to resolve)
// it falls back to the identifier's spelling, erring toward reporting.
func isPackageNamed(info *types.Info, id *ast.Ident, path string) bool {
	if info != nil {
		if obj, ok := info.Uses[id]; ok {
			pkg, ok := obj.(*types.PkgName)
			return ok && pkg.Imported().Path() == path
		}
	}
	return id.Name == path
}
