package lint

import (
	"go/ast"
	"go/types"
)

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// methodCall matches a call of the form recv.Name(...) and returns the
// receiver expression and method name.
func methodCall(e ast.Expr) (recv ast.Expr, name string, call *ast.CallExpr, ok bool) {
	c, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, "", nil, false
	}
	sel, ok := unparen(c.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", nil, false
	}
	return sel.X, sel.Sel.Name, c, true
}

// receiverNamed reports whether the static type of recv is (a pointer to) a
// named type called typeName. When type information is unavailable (the
// expression failed to type-check) it errs toward true so analyzers stay
// effective on fixture code with unresolved imports.
func receiverNamed(info *types.Info, recv ast.Expr, typeName string) bool {
	if info == nil {
		return true
	}
	tv, ok := info.Types[recv]
	if !ok || tv.Type == nil {
		return true
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == typeName
}

var errorType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is exactly the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// resultTypes flattens the static result type of a call: nil for a void
// call, one element for a single result, the tuple components otherwise.
// Returns nil when the call did not type-check.
func resultTypes(info *types.Info, call *ast.CallExpr) []types.Type {
	if info == nil {
		return nil
	}
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return nil
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		out := make([]types.Type, t.Len())
		for i := 0; i < t.Len(); i++ {
			out[i] = t.At(i).Type()
		}
		return out
	default:
		if tv.IsVoid() {
			return nil
		}
		return []types.Type{t}
	}
}
