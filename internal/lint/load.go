package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded module package: parsed files plus (best-effort)
// type information. Type errors never abort a load — packages that import
// something unresolvable are still analyzed with whatever types resolved,
// which is what lets fixture packages reference fake import paths.
type Package struct {
	Path  string // import path, e.g. "grove/internal/colstore"
	Name  string // package name
	Dir   string
	Files []*ast.File

	Types      *types.Package
	Info       *types.Info
	TypeErrors []error
}

// Module is a loaded Go module: every package under its root (test files
// and testdata trees excluded), type-checked in dependency order.
type Module struct {
	Path string // module path from go.mod
	Dir  string // absolute module root
	Fset *token.FileSet
	Pkgs []*Package // sorted by import path

	pragmas map[string][]pragma // filename → grovevet:ignore comments
	cg      *CallGraph          // built lazily by CallGraph()
}

// Lookup returns the package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package {
	for _, p := range m.Pkgs {
		if p.Path == path {
			return p
		}
	}
	return nil
}

// The FileSet and the stdlib source importer are process-wide: the importer
// caches each stdlib package the first time any load touches it, which keeps
// repeated fixture loads in tests from re-type-checking fmt and friends.
var (
	sharedFset   = token.NewFileSet()
	stdOnce      sync.Once
	stdImporter  types.Importer
	stdLoadMu    sync.Mutex // srcimporter instances are not concurrency-safe
	stdFakeCache = map[string]*types.Package{}
)

func stdlibImporter() types.Importer {
	stdOnce.Do(func() {
		// The source importer type-checks stdlib packages from $GOROOT/src.
		// Disabling cgo selects the pure-Go variants (net, os/user), so the
		// whole load stays in-process with no compiled artifacts needed.
		build.Default.CgoEnabled = false
		stdImporter = importer.ForCompiler(sharedFset, "source", nil)
	})
	return stdImporter
}

// LoadModule loads the Go module containing dir: it locates go.mod, parses
// every package beneath the module root (skipping _test.go files, testdata
// trees, hidden directories and nested modules), and type-checks them with a
// stdlib-only importer chain — module-local imports resolve recursively from
// source, standard-library imports through the go/importer source importer,
// and anything else becomes an empty placeholder package whose uses surface
// as tolerated type errors.
func LoadModule(dir string) (*Module, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	m := &Module{Path: modPath, Dir: root, Fset: sharedFset, pragmas: map[string][]pragma{}}

	ld := &loader{m: m, srcs: map[string]*Package{}, done: map[string]bool{}, loading: map[string]bool{}}
	if err := ld.parseTree(); err != nil {
		return nil, err
	}
	for _, p := range ld.srcs {
		ld.check(p)
	}
	for _, p := range ld.srcs {
		m.Pkgs = append(m.Pkgs, p)
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
	return m, nil
}

// findModule walks up from dir to the nearest go.mod and returns the module
// root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.Trim(strings.TrimSpace(rest), `"`), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

type loader struct {
	m       *Module
	srcs    map[string]*Package // import path → parsed package
	done    map[string]bool
	loading map[string]bool
}

// parseTree discovers and parses every package directory under the module
// root.
func (l *loader) parseTree() error {
	return filepath.WalkDir(l.m.Dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.m.Dir {
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		return l.parseDir(path)
	})
}

func (l *loader) parseDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var files []*ast.File
	pkgName := ""
	for _, e := range entries {
		fn := e.Name()
		if e.IsDir() || !strings.HasSuffix(fn, ".go") || strings.HasSuffix(fn, "_test.go") {
			continue
		}
		full := filepath.Join(dir, fn)
		f, err := parser.ParseFile(l.m.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("lint: parse %s: %w", full, err)
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name != pkgName {
			continue // stray file from another (e.g. build-tagged) package
		}
		files = append(files, f)
		l.collectPragmas(full, f)
	}
	if len(files) == 0 {
		return nil
	}
	rel, err := filepath.Rel(l.m.Dir, dir)
	if err != nil {
		return err
	}
	path := l.m.Path
	if rel != "." {
		path = l.m.Path + "/" + filepath.ToSlash(rel)
	}
	l.srcs[path] = &Package{Path: path, Name: pkgName, Dir: dir, Files: files}
	return nil
}

func (l *loader) collectPragmas(filename string, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			i := strings.Index(text, pragmaMarker)
			if i < 0 {
				continue
			}
			l.m.pragmas[filename] = append(l.m.pragmas[filename], pragma{
				pos:  l.m.Fset.Position(c.Pos()),
				rest: strings.TrimSpace(text[i+len(pragmaMarker):]),
			})
		}
	}
}

// Import implements types.Importer over the chain described in LoadModule.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.m.Path || strings.HasPrefix(path, l.m.Path+"/") {
		p, ok := l.srcs[path]
		if !ok {
			return nil, fmt.Errorf("lint: module package %q not found on disk", path)
		}
		if l.loading[p.Path] {
			return nil, fmt.Errorf("lint: import cycle through %q", path)
		}
		l.check(p)
		return p.Types, nil
	}
	stdLoadMu.Lock()
	defer stdLoadMu.Unlock()
	if pkg, err := stdlibImporter().Import(path); err == nil {
		return pkg, nil
	}
	// Unresolvable (non-stdlib, non-module) import: hand back an empty
	// placeholder so checking continues; stdlibonly reports the import
	// itself and uses of its members surface as tolerated type errors.
	if fake, ok := stdFakeCache[path]; ok {
		return fake, nil
	}
	fake := types.NewPackage(path, pathBase(path))
	fake.MarkComplete()
	stdFakeCache[path] = fake
	return fake, nil
}

func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// check type-checks one parsed package (and, via Import, its module-local
// dependencies first). Errors are collected, never fatal.
func (l *loader) check(p *Package) {
	if l.done[p.Path] || l.loading[p.Path] {
		return
	}
	l.loading[p.Path] = true
	defer func() {
		delete(l.loading, p.Path)
		l.done[p.Path] = true
	}()

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(p.Path, l.m.Fset, p.Files, info) //grovevet:ignore droppederr type errors are collected via conf.Error; Check only repeats the first one
	p.Types, p.Info = tpkg, info
}
