package lint

import (
	"path/filepath"
	"testing"
)

// TestModuleIsLintClean runs the full analyzer suite over grove itself with
// the same filter `make lint` uses. The tree must stay clean: a failure here
// means a commit introduced a finding (or an unexplained pragma) that
// `go run ./cmd/grovevet` would reject.
func TestModuleIsLintClean(t *testing.T) {
	m, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(m.Pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	for _, d := range Run(m, Analyzers(), DefaultFilter(m)) {
		t.Errorf("finding: %s", d)
	}
}
