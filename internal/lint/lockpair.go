package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// LockPair enforces the colstore read-lock protocol documented on
// Relation.BeginRead: every BeginRead is released — by a defer or by an
// EndRead on every return path — and BeginRead is never nested on the same
// relation within one function (RWMutex read locks are not reentrant once a
// writer is queued, so nesting deadlocks under write load).
//
// The analysis is intra-procedural over the statement tree: branches of
// if/switch/select are explored separately and joined on the set of locks
// that are definitely held, loops must leave the lock state unchanged, and
// function literals are analyzed as their own scopes (a deferred literal
// that just calls EndRead counts as releasing the enclosing lock).
var LockPair = &Analyzer{
	Name: "lockpair",
	Doc:  "BeginRead must pair with EndRead on all paths and never nest",
	Run:  runLockPair,
}

func runLockPair(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass}
			w.analyzeFunc(fd.Body)
		}
	}
}

// lpLock is one BeginRead whose release is being tracked. Branch analysis
// clones locks; origin points at the instance made at the BeginRead site so
// reporting dedupes across branches.
type lpLock struct {
	pos      token.Pos
	recv     string // rendering of the receiver expression, e.g. "e.Rel"
	deferred bool   // a defer EndRead covers it
	origin   *lpLock
	reported bool // meaningful on the origin instance only
}

func (l *lpLock) reportOnce(w *lockWalker, format string, args ...any) {
	if !l.origin.reported {
		l.origin.reported = true
		w.pass.Reportf(l.pos, format, args...)
	}
}

// lpState is the abstract lock state at one program point.
type lpState struct {
	locks    []*lpLock
	diverged bool // this path returned, panicked, or broke out
}

func (s *lpState) clone() *lpState {
	ls := make([]*lpLock, len(s.locks))
	for i, l := range s.locks {
		c := *l
		ls[i] = &c
	}
	return &lpState{locks: ls, diverged: s.diverged}
}

// sig identifies the set of locks that still need an explicit EndRead
// (deferred locks are safe on every path, so they are excluded).
func (s *lpState) sig() string {
	var b strings.Builder
	for _, l := range s.locks {
		if !l.deferred {
			b.WriteString(l.recv)
			b.WriteByte('@')
			b.WriteString(strconv.Itoa(int(l.origin.pos)))
			b.WriteByte(';')
		}
	}
	return b.String()
}

func (s *lpState) find(origin *lpLock) *lpLock {
	for _, l := range s.locks {
		if l.origin == origin {
			return l
		}
	}
	return nil
}

type lockWalker struct {
	pass *Pass
}

// lockCall matches recv.BeginRead() / recv.EndRead() on a *colstore.Relation
// (any named type Relation, so fixtures can define their own).
func (w *lockWalker) lockCall(e ast.Expr) (recvStr, name string, ok bool) {
	recv, name, _, ok := methodCall(e)
	if !ok || (name != "BeginRead" && name != "EndRead") {
		return "", "", false
	}
	if !receiverNamed(w.pass.Pkg.Info, recv, "Relation") {
		return "", "", false
	}
	return types.ExprString(recv), name, true
}

func (w *lockWalker) analyzeFunc(body *ast.BlockStmt) {
	st := &lpState{}
	w.stmts(body.List, st)
	if !st.diverged {
		for _, l := range st.locks {
			if !l.deferred {
				l.reportOnce(w, "BeginRead without matching EndRead")
			}
		}
	}
}

func (w *lockWalker) stmts(list []ast.Stmt, st *lpState) {
	for _, s := range list {
		if st.diverged {
			w.scanFuncLits(s) // unreachable here, but literals still run elsewhere
			continue
		}
		w.stmt(s, st)
	}
}

func (w *lockWalker) stmt(s ast.Stmt, st *lpState) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.stmts(s.List, st)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, st)
	case *ast.ExprStmt:
		if recv, name, ok := w.lockCall(s.X); ok {
			w.lockOp(s.Pos(), recv, name, st)
			return
		}
		w.scanFuncLits(s)
		if isNoReturnCall(s.X) {
			st.diverged = true
		}
	case *ast.DeferStmt:
		if recv, name, ok := w.lockCall(s.Call); ok && name == "EndRead" {
			w.deferEnd(s.Pos(), recv, st)
			return
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			if recv, found := w.funcLitEndRead(fl); found {
				w.deferEnd(s.Pos(), recv, st)
				return // the literal's EndRead was credited; don't re-analyze it
			}
		}
		w.scanFuncLits(s)
	case *ast.ReturnStmt:
		w.scanFuncLits(s)
		for _, l := range st.locks {
			if !l.deferred {
				l.reportOnce(w, "BeginRead is not paired with an EndRead on every return path")
			}
		}
		st.diverged = true
	case *ast.BranchStmt:
		st.diverged = true // break/continue/goto: stop tracking this path
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.scanFuncLitsExpr(s.Cond)
		then := st.clone()
		w.stmt(s.Body, then)
		els := st.clone()
		if s.Else != nil {
			w.stmt(s.Else, els)
		}
		w.join(s.Pos(), st, then, els)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.scanFuncLitsExpr(s.Cond)
		body := st.clone()
		w.stmt(s.Body, body)
		if s.Post != nil && !body.diverged {
			w.stmt(s.Post, body)
		}
		w.loopCheck(s.Pos(), st, body)
	case *ast.RangeStmt:
		w.scanFuncLitsExpr(s.X)
		body := st.clone()
		w.stmt(s.Body, body)
		w.loopCheck(s.Pos(), st, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.scanFuncLitsExpr(s.Tag)
		w.caseClauses(s.Pos(), s.Body.List, st, hasDefaultClause(s.Body.List))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.scanFuncLits(s.Assign)
		w.caseClauses(s.Pos(), s.Body.List, st, hasDefaultClause(s.Body.List))
	case *ast.SelectStmt:
		// A select without default blocks until some clause runs, so the
		// clauses are exhaustive either way.
		w.caseClauses(s.Pos(), s.Body.List, st, true)
	default:
		w.scanFuncLits(s)
	}
}

func (w *lockWalker) lockOp(pos token.Pos, recvStr, name string, st *lpState) {
	switch name {
	case "BeginRead":
		for _, l := range st.locks {
			if l.recv == recvStr {
				w.pass.Reportf(pos, "nested BeginRead: the read lock on %s is already held (line %d); RWMutex read locks must not nest",
					recvStr, w.pass.Module.Fset.Position(l.origin.pos).Line)
			}
		}
		l := &lpLock{pos: pos, recv: recvStr}
		l.origin = l
		st.locks = append(st.locks, l)
	case "EndRead":
		for i := len(st.locks) - 1; i >= 0; i-- {
			l := st.locks[i]
			if l.recv != recvStr {
				continue
			}
			if l.deferred {
				w.pass.Reportf(pos, "EndRead releases a lock on %s already scheduled for release by defer (double unlock)", recvStr)
			}
			st.locks = append(st.locks[:i], st.locks[i+1:]...)
			return
		}
		w.pass.Reportf(pos, "EndRead without a matching BeginRead in this function")
	}
}

func (w *lockWalker) deferEnd(pos token.Pos, recvStr string, st *lpState) {
	for i := len(st.locks) - 1; i >= 0; i-- {
		l := st.locks[i]
		if l.recv == recvStr && !l.deferred {
			l.deferred = true
			return
		}
	}
	w.pass.Reportf(pos, "defer EndRead without a BeginRead in this function")
}

// join merges branch outcomes back into st: it reports when two paths that
// both fall through disagree on which locks still need releasing, and keeps
// only the locks held on every live path.
func (w *lockWalker) join(pos token.Pos, st *lpState, branches ...*lpState) {
	var live []*lpState
	for _, b := range branches {
		if !b.diverged {
			live = append(live, b)
		}
	}
	if len(live) == 0 {
		st.diverged = true
		return
	}
	first := live[0]
	for _, b := range live[1:] {
		if b.sig() != first.sig() {
			w.pass.Reportf(pos, "BeginRead/EndRead imbalance: branches disagree on whether the read lock is held afterwards")
			break
		}
	}
	var locks []*lpLock
	for _, l := range first.locks {
		inAll := true
		for _, b := range live[1:] {
			if b.find(l.origin) == nil {
				inAll = false
				break
			}
		}
		if inAll {
			locks = append(locks, l)
		}
	}
	st.locks = locks
	st.diverged = false
}

func (w *lockWalker) loopCheck(pos token.Pos, entry, body *lpState) {
	if !body.diverged && body.sig() != entry.sig() {
		w.pass.Reportf(pos, "BeginRead/EndRead imbalance: the loop body changes the read-lock state between iterations")
	}
}

func (w *lockWalker) caseClauses(pos token.Pos, clauses []ast.Stmt, st *lpState, exhaustive bool) {
	var branches []*lpState
	for _, c := range clauses {
		b := st.clone()
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				w.scanFuncLitsExpr(e)
			}
			w.stmts(cc.Body, b)
		case *ast.CommClause:
			if cc.Comm != nil {
				w.stmt(cc.Comm, b)
			}
			w.stmts(cc.Body, b)
		}
		branches = append(branches, b)
	}
	if !exhaustive || len(branches) == 0 {
		branches = append(branches, st.clone())
	}
	w.join(pos, st, branches...)
}

// scanFuncLits analyzes every function literal syntactically contained in s
// as an independent scope (goroutine bodies, callbacks).
func (w *lockWalker) scanFuncLits(s ast.Stmt) {
	if s == nil {
		return
	}
	ast.Inspect(s, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			w.analyzeFunc(fl.Body)
			return false
		}
		return true
	})
}

func (w *lockWalker) scanFuncLitsExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			w.analyzeFunc(fl.Body)
			return false
		}
		return true
	})
}

// funcLitEndRead reports whether the literal's body is (just) an unlock
// wrapper: it contains an EndRead call statement and no BeginRead.
func (w *lockWalker) funcLitEndRead(fl *ast.FuncLit) (recvStr string, found bool) {
	for _, s := range fl.Body.List {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		recv, name, ok := w.lockCall(es.X)
		if !ok {
			continue
		}
		if name == "BeginRead" {
			return "", false
		}
		recvStr, found = recv, true
	}
	return recvStr, found
}

func hasDefaultClause(clauses []ast.Stmt) bool {
	for _, c := range clauses {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// isNoReturnCall matches calls that terminate the path: panic and os.Exit.
func isNoReturnCall(e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok {
			return pkg.Name == "os" && fun.Sel.Name == "Exit"
		}
	}
	return false
}
