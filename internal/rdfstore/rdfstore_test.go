package rdfstore

import (
	"math/rand"
	"testing"

	"grove/internal/graph"
)

func mkRecord(t *testing.T, edges map[[2]string]float64) *graph.Record {
	t.Helper()
	r := graph.NewRecord()
	for e, v := range edges {
		if err := r.SetEdge(e[0], e[1], v); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestMatchQueryJoins(t *testing.T) {
	s := New()
	s.AddRecord(mkRecord(t, map[[2]string]float64{{"A", "B"}: 1, {"B", "C"}: 2}))
	s.AddRecord(mkRecord(t, map[[2]string]float64{{"A", "B"}: 3, {"C", "D"}: 4}))
	s.AddRecord(mkRecord(t, map[[2]string]float64{{"B", "C"}: 5}))
	s.Freeze()

	got := s.MatchQuery([]graph.EdgeKey{graph.E("A", "B"), graph.E("B", "C")})
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("match = %v", got)
	}
	if got := s.MatchQuery([]graph.EdgeKey{graph.E("Z", "W")}); len(got) != 0 {
		t.Errorf("unknown predicate matched: %v", got)
	}
	if s.NumTriples() != 5 || s.NumRecords() != 3 {
		t.Errorf("triples=%d records=%d", s.NumTriples(), s.NumRecords())
	}
}

func TestAutoFreezeOnQuery(t *testing.T) {
	s := New()
	s.AddRecord(mkRecord(t, map[[2]string]float64{{"A", "B"}: 1}))
	// No explicit Freeze: MatchQuery must freeze lazily.
	if got := s.MatchQuery([]graph.EdgeKey{graph.E("A", "B")}); len(got) != 1 {
		t.Errorf("lazy freeze failed: %v", got)
	}
	// Adding after freeze must invalidate and refreeze.
	s.AddRecord(mkRecord(t, map[[2]string]float64{{"A", "B"}: 2}))
	if got := s.MatchQuery([]graph.EdgeKey{graph.E("A", "B")}); len(got) != 2 {
		t.Errorf("refreeze failed: %v", got)
	}
}

func TestFetchMeasuresAndAggregate(t *testing.T) {
	s := New()
	s.AddRecord(mkRecord(t, map[[2]string]float64{{"A", "B"}: 1, {"B", "C"}: 2}))
	s.AddRecord(mkRecord(t, map[[2]string]float64{{"A", "B"}: 3, {"B", "C"}: 4}))
	s.Freeze()
	q := []graph.EdgeKey{graph.E("A", "B"), graph.E("B", "C")}
	sum, n := s.FetchMeasures([]uint32{0, 1}, q)
	if sum != 10 || n != 4 {
		t.Errorf("FetchMeasures = %v,%d", sum, n)
	}
	agg := s.AggregateAlongPath(q, 0, func(a, b float64) float64 { return a + b })
	if agg[0] != 3 || agg[1] != 7 {
		t.Errorf("aggregate = %v", agg)
	}
}

func TestDiskSize(t *testing.T) {
	s := New()
	s.AddRecord(mkRecord(t, map[[2]string]float64{{"A", "B"}: 1, {"B", "C"}: 2}))
	if got := s.DiskSizeBytes(); got != 2*tripleBytes*3 {
		t.Errorf("DiskSizeBytes = %d", got)
	}
}

func TestMatchRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New()
	var recs []*graph.Record
	names := []string{"A", "B", "C", "D", "E"}
	for i := 0; i < 200; i++ {
		r := graph.NewRecord()
		for j := 0; j < 3+rng.Intn(6); j++ {
			a, b := names[rng.Intn(5)], names[rng.Intn(5)]
			if a == b {
				continue
			}
			if err := r.SetEdge(a, b, float64(rng.Intn(10))); err != nil {
				t.Fatal(err)
			}
		}
		recs = append(recs, r)
		s.AddRecord(r)
	}
	s.Freeze()
	for trial := 0; trial < 50; trial++ {
		var q []graph.EdgeKey
		for j := 0; j < 1+rng.Intn(3); j++ {
			a, b := names[rng.Intn(5)], names[rng.Intn(5)]
			if a != b {
				q = append(q, graph.E(a, b))
			}
		}
		if len(q) == 0 {
			continue
		}
		got := s.MatchQuery(q)
		var want []uint32
		for i, r := range recs {
			all := true
			for _, k := range q {
				if !r.HasElement(k) {
					all = false
					break
				}
			}
			if all {
				want = append(want, uint32(i))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v want %v", trial, got, want)
			}
		}
	}
}
