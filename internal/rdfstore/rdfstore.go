// Package rdfstore is grove's stand-in for the paper's baseline (ii): a
// commercial RDF triple store. Graph records are shredded into triples —
// (record, edge-predicate, measure) — held in the three sorted permutation
// indexes native stores maintain (SPO, POS, OSP, after RDF-3X/Hexastore),
// and graph queries become conjunctive triple patterns answered by merge
// joins over predicate-bound scans of the POS index.
//
// The store is faster than the row store (sorted scans, no tuple headers)
// but still pays one join per query edge and re-reads measures inline with
// the triples, which is why it trails the column store in Fig. 3.
package rdfstore

import (
	"sort"

	"grove/internal/graph"
)

// triple is (subject=record id, predicate=edge id, object=measure).
type triple struct {
	s uint32
	p uint32
	o float64
}

// tripleBytes models the per-triple footprint of ONE permutation index
// (compressed id triples).
const tripleBytes = 16

// Store is the RDF triple store.
type Store struct {
	// spo, pos, osp are the three permutation indexes, each fully sorted.
	spo []triple
	pos []triple
	osp []triple
	// predIDs interns edge keys as predicate ids.
	predIDs map[graph.EdgeKey]uint32
	// posOffsets[p] is the [start,end) slice of pos holding predicate p,
	// built at Freeze time.
	posOffsets map[uint32][2]int
	numRecs    uint32
	frozen     bool
}

// New returns an empty store.
func New() *Store {
	return &Store{
		predIDs:    make(map[graph.EdgeKey]uint32),
		posOffsets: make(map[uint32][2]int),
	}
}

func (s *Store) predID(k graph.EdgeKey) uint32 {
	if id, ok := s.predIDs[k]; ok {
		return id
	}
	id := uint32(len(s.predIDs))
	s.predIDs[k] = id
	return id
}

// AddRecord shreds a record into triples. Call Freeze before querying.
func (s *Store) AddRecord(rec *graph.Record) uint32 {
	id := s.numRecs
	s.numRecs++
	for _, k := range rec.Elements() {
		m := rec.Measure(k)
		s.spo = append(s.spo, triple{s: id, p: s.predID(k), o: m.Value})
	}
	s.frozen = false
	return id
}

// Freeze sorts the permutation indexes; queries require a frozen store.
func (s *Store) Freeze() {
	s.pos = append(s.pos[:0], s.spo...)
	sort.Slice(s.pos, func(i, j int) bool {
		if s.pos[i].p != s.pos[j].p {
			return s.pos[i].p < s.pos[j].p
		}
		if s.pos[i].o != s.pos[j].o {
			return s.pos[i].o < s.pos[j].o
		}
		return s.pos[i].s < s.pos[j].s
	})
	s.osp = append(s.osp[:0], s.spo...)
	sort.Slice(s.osp, func(i, j int) bool {
		if s.osp[i].o != s.osp[j].o {
			return s.osp[i].o < s.osp[j].o
		}
		return s.osp[i].s < s.osp[j].s
	})
	sort.Slice(s.spo, func(i, j int) bool {
		if s.spo[i].s != s.spo[j].s {
			return s.spo[i].s < s.spo[j].s
		}
		return s.spo[i].p < s.spo[j].p
	})
	// Build predicate offsets over POS.
	s.posOffsets = make(map[uint32][2]int)
	start := 0
	for i := 1; i <= len(s.pos); i++ {
		if i == len(s.pos) || s.pos[i].p != s.pos[start].p {
			s.posOffsets[s.pos[start].p] = [2]int{start, i}
			start = i
		}
	}
	s.frozen = true
}

// NumRecords returns the number of loaded records.
func (s *Store) NumRecords() int { return int(s.numRecs) }

// NumTriples returns the triple count.
func (s *Store) NumTriples() int { return len(s.spo) }

// scanPredicate returns the ascending subject ids of one predicate-bound
// pattern (?r, p, ?m) from the POS index.
func (s *Store) scanPredicate(k graph.EdgeKey) []uint32 {
	id, ok := s.predIDs[k]
	if !ok {
		return nil
	}
	off, ok := s.posOffsets[id]
	if !ok {
		return nil
	}
	out := make([]uint32, 0, off[1]-off[0])
	for _, t := range s.pos[off[0]:off[1]] {
		out = append(out, t.s)
	}
	// POS is sorted by (p, o, s): subjects of a predicate are not globally
	// sorted, so the engine sorts before the merge join, as a real optimizer
	// would for a sort-merge plan.
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MatchQuery evaluates the conjunctive pattern { (?r, e, ?m) : e ∈ elements }
// with successive sorted merge joins on ?r.
func (s *Store) MatchQuery(elements []graph.EdgeKey) []uint32 {
	if !s.frozen {
		s.Freeze()
	}
	if len(elements) == 0 {
		return nil
	}
	lists := make([][]uint32, 0, len(elements))
	for _, k := range elements {
		lists = append(lists, s.scanPredicate(k))
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	acc := lists[0]
	for _, next := range lists[1:] {
		if len(acc) == 0 {
			return nil
		}
		acc = intersectSorted(acc, next)
	}
	return acc
}

func intersectSorted(a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// FetchMeasures reads the measure objects for the given records and
// elements via SPO lookups. Returns the sum and count of values read.
func (s *Store) FetchMeasures(records []uint32, elements []graph.EdgeKey) (sum float64, n int64) {
	if !s.frozen {
		s.Freeze()
	}
	want := make(map[uint32]struct{}, len(elements))
	for _, k := range elements {
		if id, ok := s.predIDs[k]; ok {
			want[id] = struct{}{}
		}
	}
	for _, r := range records {
		// Binary search the SPO index for the record's triple run.
		lo := sort.Search(len(s.spo), func(i int) bool { return s.spo[i].s >= r })
		for i := lo; i < len(s.spo) && s.spo[i].s == r; i++ {
			if _, hit := want[s.spo[i].p]; hit {
				sum += s.spo[i].o
				n++
			}
		}
	}
	return sum, n
}

// AggregateAlongPath matches the pattern and folds the path measures per
// record.
func (s *Store) AggregateAlongPath(elements []graph.EdgeKey, identity float64, fold func(a, b float64) float64) map[uint32]float64 {
	records := s.MatchQuery(elements)
	out := make(map[uint32]float64, len(records))
	want := make(map[uint32]struct{}, len(elements))
	for _, k := range elements {
		if id, ok := s.predIDs[k]; ok {
			want[id] = struct{}{}
		}
	}
	for _, r := range records {
		acc := identity
		lo := sort.Search(len(s.spo), func(i int) bool { return s.spo[i].s >= r })
		for i := lo; i < len(s.spo) && s.spo[i].s == r; i++ {
			if _, hit := want[s.spo[i].p]; hit {
				acc = fold(acc, s.spo[i].o)
			}
		}
		out[r] = acc
	}
	return out
}

// DiskSizeBytes reports the simulated footprint of the three permutation
// indexes.
func (s *Store) DiskSizeBytes() int64 {
	return int64(len(s.spo)) * tripleBytes * 3
}
