package bitmap

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyBitmap(t *testing.T) {
	b := New()
	if !b.IsEmpty() {
		t.Fatal("new bitmap not empty")
	}
	if b.Cardinality() != 0 {
		t.Fatalf("cardinality = %d, want 0", b.Cardinality())
	}
	if b.Contains(0) || b.Contains(1<<31) {
		t.Fatal("empty bitmap contains values")
	}
	if _, ok := b.Minimum(); ok {
		t.Fatal("Minimum on empty reported ok")
	}
	if _, ok := b.Maximum(); ok {
		t.Fatal("Maximum on empty reported ok")
	}
}

func TestAddContainsRemove(t *testing.T) {
	b := New()
	values := []uint32{0, 1, 5, 65535, 65536, 65537, 1 << 20, 1<<32 - 1}
	for _, v := range values {
		if !b.Add(v) {
			t.Errorf("Add(%d) reported already-present", v)
		}
		if b.Add(v) {
			t.Errorf("second Add(%d) reported newly-added", v)
		}
	}
	for _, v := range values {
		if !b.Contains(v) {
			t.Errorf("Contains(%d) = false after Add", v)
		}
	}
	if b.Cardinality() != len(values) {
		t.Fatalf("cardinality = %d, want %d", b.Cardinality(), len(values))
	}
	if b.Contains(2) {
		t.Error("Contains(2) = true, never added")
	}
	for _, v := range values {
		if !b.Remove(v) {
			t.Errorf("Remove(%d) reported absent", v)
		}
		if b.Remove(v) {
			t.Errorf("second Remove(%d) reported present", v)
		}
	}
	if !b.IsEmpty() {
		t.Fatal("bitmap not empty after removing everything")
	}
}

func TestMinimumMaximum(t *testing.T) {
	b := FromSlice([]uint32{42, 7, 1 << 18, 99999})
	if v, ok := b.Minimum(); !ok || v != 7 {
		t.Errorf("Minimum = %d,%v want 7,true", v, ok)
	}
	if v, ok := b.Maximum(); !ok || v != 1<<18 {
		t.Errorf("Maximum = %d,%v want %d,true", v, ok, 1<<18)
	}
}

func TestAddRange(t *testing.T) {
	b := New()
	b.AddRange(10, 20)
	if b.Cardinality() != 10 {
		t.Fatalf("cardinality = %d, want 10", b.Cardinality())
	}
	for v := uint32(10); v < 20; v++ {
		if !b.Contains(v) {
			t.Errorf("missing %d", v)
		}
	}
	if b.Contains(9) || b.Contains(20) {
		t.Error("range endpoints leaked")
	}
}

func TestAddRangeAcrossChunks(t *testing.T) {
	b := New()
	lo, hi := uint32(65000), uint32(131500)
	b.AddRange(lo, hi)
	if got, want := b.Cardinality(), int(hi-lo); got != want {
		t.Fatalf("cardinality = %d, want %d", got, want)
	}
	for _, v := range []uint32{65000, 65535, 65536, 131071, 131072, 131499} {
		if !b.Contains(v) {
			t.Errorf("missing %d", v)
		}
	}
	if b.Contains(64999) || b.Contains(131500) {
		t.Error("range endpoints leaked")
	}
}

func TestAddRangeEmpty(t *testing.T) {
	b := New()
	b.AddRange(10, 10)
	b.AddRange(20, 5)
	if !b.IsEmpty() {
		t.Fatal("empty ranges added values")
	}
}

func TestAddRangeOverExisting(t *testing.T) {
	b := FromSlice([]uint32{5, 15, 25})
	b.AddRange(10, 20)
	want := []uint32{5, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 25}
	if got := b.ToSlice(); !equalU32(got, want) {
		t.Fatalf("ToSlice = %v, want %v", got, want)
	}
}

func TestArrayToBitsetPromotion(t *testing.T) {
	b := New()
	for v := uint32(0); v <= arrayMaxCardinality; v++ {
		b.Add(v * 2) // spaced out so no runs form
	}
	if got, want := b.Cardinality(), arrayMaxCardinality+1; got != want {
		t.Fatalf("cardinality = %d, want %d", got, want)
	}
	if _, ok := b.containers[0].(*bitsetContainer); !ok {
		t.Fatalf("container is %T, want *bitsetContainer", b.containers[0])
	}
	for v := uint32(0); v <= arrayMaxCardinality; v++ {
		if !b.Contains(v * 2) {
			t.Fatalf("missing %d after promotion", v*2)
		}
	}
}

func TestBitsetToArrayDemotion(t *testing.T) {
	b := New()
	for v := uint32(0); v < 5000; v++ {
		b.Add(v * 2)
	}
	for v := uint32(1000); v < 5000; v++ {
		b.Remove(v * 2)
	}
	if _, ok := b.containers[0].(*arrayContainer); !ok {
		t.Fatalf("container is %T, want *arrayContainer after demotion", b.containers[0])
	}
	if b.Cardinality() != 1000 {
		t.Fatalf("cardinality = %d, want 1000", b.Cardinality())
	}
}

func TestAndBasic(t *testing.T) {
	a := FromSlice([]uint32{1, 2, 3, 100000, 200000})
	b := FromSlice([]uint32{2, 3, 4, 200000})
	got := a.And(b).ToSlice()
	want := []uint32{2, 3, 200000}
	if !equalU32(got, want) {
		t.Fatalf("And = %v, want %v", got, want)
	}
}

func TestOrBasic(t *testing.T) {
	a := FromSlice([]uint32{1, 3, 100000})
	b := FromSlice([]uint32{2, 3, 200000})
	got := a.Or(b).ToSlice()
	want := []uint32{1, 2, 3, 100000, 200000}
	if !equalU32(got, want) {
		t.Fatalf("Or = %v, want %v", got, want)
	}
}

func TestAndNotBasic(t *testing.T) {
	a := FromSlice([]uint32{1, 2, 3, 100000})
	b := FromSlice([]uint32{2, 200000})
	got := a.AndNot(b).ToSlice()
	want := []uint32{1, 3, 100000}
	if !equalU32(got, want) {
		t.Fatalf("AndNot = %v, want %v", got, want)
	}
}

func TestXorBasic(t *testing.T) {
	a := FromSlice([]uint32{1, 2, 3})
	b := FromSlice([]uint32{2, 3, 4})
	got := a.Xor(b).ToSlice()
	want := []uint32{1, 4}
	if !equalU32(got, want) {
		t.Fatalf("Xor = %v, want %v", got, want)
	}
}

func TestOpsDoNotMutateOperands(t *testing.T) {
	a := FromSlice([]uint32{1, 2, 3, 70000})
	b := FromSlice([]uint32{2, 3, 4, 70001})
	aBefore, bBefore := a.ToSlice(), b.ToSlice()
	_ = a.And(b)
	_ = a.Or(b)
	_ = a.AndNot(b)
	_ = a.Xor(b)
	if !equalU32(a.ToSlice(), aBefore) {
		t.Error("a mutated by binary ops")
	}
	if !equalU32(b.ToSlice(), bBefore) {
		t.Error("b mutated by binary ops")
	}
}

func TestAndAllOrder(t *testing.T) {
	a := FromRange(0, 1000)
	b := FromRange(500, 1500)
	c := FromRange(900, 2000)
	got := AndAll(a, b, c)
	want := FromRange(900, 1000)
	if !got.Equals(want) {
		t.Fatalf("AndAll = %s, want %s", got, want)
	}
	if AndAll().Cardinality() != 0 {
		t.Error("AndAll() not empty")
	}
	if !AndAll(a).Equals(a) {
		t.Error("AndAll(a) != a")
	}
}

func TestOrAll(t *testing.T) {
	got := OrAll(FromSlice([]uint32{1}), FromSlice([]uint32{2}), FromSlice([]uint32{1, 3}))
	want := FromSlice([]uint32{1, 2, 3})
	if !got.Equals(want) {
		t.Fatalf("OrAll = %s, want %s", got, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]uint32{1, 2, 3})
	c := a.Clone()
	c.Add(4)
	a.Remove(1)
	if !equalU32(c.ToSlice(), []uint32{1, 2, 3, 4}) {
		t.Errorf("clone affected by original: %v", c.ToSlice())
	}
	if !equalU32(a.ToSlice(), []uint32{2, 3}) {
		t.Errorf("original affected by clone: %v", a.ToSlice())
	}
}

func TestEquals(t *testing.T) {
	a := FromSlice([]uint32{1, 2, 3})
	b := FromSlice([]uint32{3, 2, 1, 2})
	if !a.Equals(b) {
		t.Error("equal bitmaps reported unequal")
	}
	b.Add(99)
	if a.Equals(b) {
		t.Error("unequal bitmaps reported equal")
	}
}

func TestEachEarlyStop(t *testing.T) {
	b := FromRange(0, 100)
	n := 0
	b.Each(func(v uint32) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("visited %d values, want 10", n)
	}
}

func TestAndCardinality(t *testing.T) {
	a := FromRange(0, 10000)
	b := FromRange(5000, 20000)
	if got := a.AndCardinality(b); got != 5000 {
		t.Fatalf("AndCardinality = %d, want 5000", got)
	}
	if got := a.AndCardinality(New()); got != 0 {
		t.Fatalf("AndCardinality vs empty = %d, want 0", got)
	}
}

func TestRunOptimizeKeepsValues(t *testing.T) {
	b := FromRange(100, 90000)
	b.Add(100000)
	before := b.Cardinality()
	sizeBefore := b.SizeBytes()
	b.RunOptimize()
	if b.Cardinality() != before {
		t.Fatalf("cardinality changed: %d -> %d", before, b.Cardinality())
	}
	if b.SizeBytes() > sizeBefore {
		t.Errorf("RunOptimize grew the bitmap: %d -> %d", sizeBefore, b.SizeBytes())
	}
	for _, v := range []uint32{100, 50000, 89999, 100000} {
		if !b.Contains(v) {
			t.Errorf("missing %d after RunOptimize", v)
		}
	}
	if b.Contains(99) || b.Contains(90000) {
		t.Error("RunOptimize leaked values")
	}
}

func TestRunContainerSplitOnRemove(t *testing.T) {
	b := FromRange(0, 100)
	b.RunOptimize()
	if !b.Remove(50) {
		t.Fatal("Remove(50) failed")
	}
	if b.Contains(50) {
		t.Fatal("50 still present")
	}
	if b.Cardinality() != 99 {
		t.Fatalf("cardinality = %d, want 99", b.Cardinality())
	}
	if !b.Contains(49) || !b.Contains(51) {
		t.Fatal("split damaged neighbours")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	cases := []*Bitmap{
		New(),
		FromSlice([]uint32{1, 2, 3, 70000, 1 << 30}),
		FromRange(0, 100000),
		func() *Bitmap {
			b := FromRange(0, 100000)
			b.RunOptimize()
			return b
		}(),
		func() *Bitmap {
			b := New()
			for v := uint32(0); v < 10000; v++ {
				b.Add(v * 3)
			}
			return b
		}(),
	}
	for i, b := range cases {
		var buf bytes.Buffer
		n, err := b.WriteTo(&buf)
		if err != nil {
			t.Fatalf("case %d: WriteTo: %v", i, err)
		}
		if n != int64(buf.Len()) {
			t.Errorf("case %d: WriteTo returned %d, wrote %d", i, n, buf.Len())
		}
		got := New()
		if _, err := got.ReadFrom(&buf); err != nil {
			t.Fatalf("case %d: ReadFrom: %v", i, err)
		}
		if !got.Equals(b) {
			t.Errorf("case %d: round trip mismatch: got %s want %s", i, got, b)
		}
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	var b Bitmap
	if _, err := b.ReadFrom(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("ReadFrom accepted bad magic")
	}
	if _, err := b.ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Fatal("ReadFrom accepted empty input")
	}
}

// --- property-based tests ---------------------------------------------------

// refSet is a reference implementation as a plain map.
type refSet map[uint32]bool

func buildPair(values []uint32) (*Bitmap, refSet) {
	b := New()
	ref := refSet{}
	for _, v := range values {
		b.Add(v)
		ref[v] = true
	}
	return b, ref
}

func (r refSet) slice() []uint32 {
	out := make([]uint32, 0, len(r))
	for v := range r {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// clampValues keeps quick-generated values in a few chunks so containers of
// all three kinds get exercised, while still crossing chunk boundaries.
func clampValues(in []uint32) []uint32 {
	out := make([]uint32, len(in))
	for i, v := range in {
		out[i] = v % 200000
	}
	return out
}

func TestQuickAddMatchesReference(t *testing.T) {
	f := func(values []uint32) bool {
		values = clampValues(values)
		b, ref := buildPair(values)
		return equalU32(b.ToSlice(), ref.slice()) && b.Cardinality() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAndMatchesReference(t *testing.T) {
	f := func(av, bv []uint32) bool {
		a, aref := buildPair(clampValues(av))
		b, bref := buildPair(clampValues(bv))
		want := refSet{}
		for v := range aref {
			if bref[v] {
				want[v] = true
			}
		}
		return equalU32(a.And(b).ToSlice(), want.slice())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOrMatchesReference(t *testing.T) {
	f := func(av, bv []uint32) bool {
		a, aref := buildPair(clampValues(av))
		b, bref := buildPair(clampValues(bv))
		want := refSet{}
		for v := range aref {
			want[v] = true
		}
		for v := range bref {
			want[v] = true
		}
		return equalU32(a.Or(b).ToSlice(), want.slice())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAndNotMatchesReference(t *testing.T) {
	f := func(av, bv []uint32) bool {
		a, aref := buildPair(clampValues(av))
		b, bref := buildPair(clampValues(bv))
		want := refSet{}
		for v := range aref {
			if !bref[v] {
				want[v] = true
			}
		}
		return equalU32(a.AndNot(b).ToSlice(), want.slice())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickXorMatchesReference(t *testing.T) {
	f := func(av, bv []uint32) bool {
		a, aref := buildPair(clampValues(av))
		b, bref := buildPair(clampValues(bv))
		want := refSet{}
		for v := range aref {
			if !bref[v] {
				want[v] = true
			}
		}
		for v := range bref {
			if !aref[v] {
				want[v] = true
			}
		}
		return equalU32(a.Xor(b).ToSlice(), want.slice())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// a AndNot b == a AndNot (a And b); and Xor == (a Or b) AndNot (a And b).
	f := func(av, bv []uint32) bool {
		a, _ := buildPair(clampValues(av))
		b, _ := buildPair(clampValues(bv))
		lhs := a.AndNot(b)
		rhs := a.AndNot(a.And(b))
		if !lhs.Equals(rhs) {
			return false
		}
		x1 := a.Xor(b)
		x2 := a.Or(b).AndNot(a.And(b))
		return x1.Equals(x2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSerializeRoundTrip(t *testing.T) {
	f := func(values []uint32) bool {
		b, _ := buildPair(clampValues(values))
		b.RunOptimize()
		var buf bytes.Buffer
		if _, err := b.WriteTo(&buf); err != nil {
			return false
		}
		got := New()
		if _, err := got.ReadFrom(&buf); err != nil {
			return false
		}
		return got.Equals(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRemoveMatchesReference(t *testing.T) {
	f := func(values, removals []uint32) bool {
		values = clampValues(values)
		removals = clampValues(removals)
		b, ref := buildPair(values)
		for _, v := range removals {
			b.Remove(v)
			delete(ref, v)
		}
		return equalU32(b.ToSlice(), ref.slice())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeRandomStress(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := New()
	ref := refSet{}
	for i := 0; i < 200000; i++ {
		v := uint32(rng.Intn(1 << 21))
		if rng.Intn(4) == 0 {
			b.Remove(v)
			delete(ref, v)
		} else {
			b.Add(v)
			ref[v] = true
		}
	}
	if b.Cardinality() != len(ref) {
		t.Fatalf("cardinality = %d, want %d", b.Cardinality(), len(ref))
	}
	if !equalU32(b.ToSlice(), ref.slice()) {
		t.Fatal("stress: contents diverged from reference")
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
