package bitmap

// Intersects reports whether b and other share at least one value, with
// early exit — cheaper than And(...).IsEmpty() when an intersection exists.
func (b *Bitmap) Intersects(other *Bitmap) bool {
	i, j := 0, 0
	for i < len(b.keys) && j < len(other.keys) {
		switch {
		case b.keys[i] < other.keys[j]:
			i++
		case b.keys[i] > other.keys[j]:
			j++
		default:
			if containersIntersect(b.containers[i], other.containers[j]) {
				return true
			}
			i++
			j++
		}
	}
	return false
}

func containersIntersect(a, b container) bool {
	// Iterate the smaller container, probing the larger.
	if a.cardinality() > b.cardinality() {
		a, b = b, a
	}
	hit := false
	a.each(func(v uint16) bool {
		if b.contains(v) {
			hit = true
			return false
		}
		return true
	})
	return hit
}

// OrCardinality returns |b ∪ other| without materializing the union:
// |A| + |B| − |A ∩ B|.
func (b *Bitmap) OrCardinality(other *Bitmap) int {
	return b.Cardinality() + other.Cardinality() - b.AndCardinality(other)
}

// AndNotCardinality returns |b − other| without materializing the
// difference.
func (b *Bitmap) AndNotCardinality(other *Bitmap) int {
	return b.Cardinality() - b.AndCardinality(other)
}

// RemoveRange deletes every value in [lo, hi). It operates at container
// granularity: chunks fully inside the range are dropped whole, and only the
// (at most two) boundary chunks are rewritten — O(chunks + boundary work)
// rather than O(n·remove) collect-then-delete.
func (b *Bitmap) RemoveRange(lo, hi uint32) {
	if hi <= lo || len(b.keys) == 0 {
		return
	}
	hiIncl := hi - 1
	loKey, hiKey := uint16(lo>>16), uint16(hiIncl>>16)
	start, _ := b.chunkIndex(loKey)
	write := start
	for i := start; i < len(b.keys); i++ {
		key := b.keys[i]
		if key > hiKey {
			// Past the range: slide the surviving tail down.
			b.keys[write] = key
			b.containers[write] = b.containers[i]
			write++
			continue
		}
		chunkLo, chunkHi := uint16(0), uint16(0xffff)
		if key == loKey {
			chunkLo = uint16(lo)
		}
		if key == hiKey {
			chunkHi = uint16(hiIncl)
		}
		if chunkLo == 0 && chunkHi == 0xffff {
			continue // chunk fully covered: drop it whole
		}
		doomed := &runContainer{runs: []interval16{{start: chunkLo, length: chunkHi - chunkLo}}}
		if c := b.containers[i].andNot(doomed); c != nil && c.cardinality() > 0 {
			b.keys[write] = key
			b.containers[write] = c
			write++
		}
	}
	for k := write; k < len(b.containers); k++ {
		b.containers[k] = nil
	}
	b.keys = b.keys[:write]
	b.containers = b.containers[:write]
}
