package bitmap

// Intersects reports whether b and other share at least one value, with
// early exit — cheaper than And(...).IsEmpty() when an intersection exists.
func (b *Bitmap) Intersects(other *Bitmap) bool {
	i, j := 0, 0
	for i < len(b.keys) && j < len(other.keys) {
		switch {
		case b.keys[i] < other.keys[j]:
			i++
		case b.keys[i] > other.keys[j]:
			j++
		default:
			if containersIntersect(b.containers[i], other.containers[j]) {
				return true
			}
			i++
			j++
		}
	}
	return false
}

func containersIntersect(a, b container) bool {
	// Iterate the smaller container, probing the larger.
	if a.cardinality() > b.cardinality() {
		a, b = b, a
	}
	hit := false
	a.each(func(v uint16) bool {
		if b.contains(v) {
			hit = true
			return false
		}
		return true
	})
	return hit
}

// OrCardinality returns |b ∪ other| without materializing the union:
// |A| + |B| − |A ∩ B|.
func (b *Bitmap) OrCardinality(other *Bitmap) int {
	return b.Cardinality() + other.Cardinality() - b.AndCardinality(other)
}

// AndNotCardinality returns |b − other| without materializing the
// difference.
func (b *Bitmap) AndNotCardinality(other *Bitmap) int {
	return b.Cardinality() - b.AndCardinality(other)
}

// RemoveRange deletes every value in [lo, hi).
func (b *Bitmap) RemoveRange(lo, hi uint32) {
	if hi <= lo {
		return
	}
	// Collect then delete to keep iteration simple; ranges in grove are
	// small (record-id windows).
	var doomed []uint32
	b.Each(func(v uint32) bool {
		if v >= hi {
			return false
		}
		if v >= lo {
			doomed = append(doomed, v)
		}
		return true
	})
	for _, v := range doomed {
		b.Remove(v)
	}
}
