// Package bitmap implements compressed bitmaps in the style of Roaring
// bitmaps (Chambi et al.): the 32-bit value space is chunked by the high 16
// bits, and each chunk is stored in whichever of three container layouts —
// sorted array, bitset, or run list — is most compact for its density.
//
// Within grove, a bitmap column b_i over the master relation holds the record
// ids that contain edge e_i (paper §4.2); all structural query evaluation
// reduces to And/Or/AndNot over these bitmaps.
package bitmap

import (
	"fmt"
	"sort"
	"strings"
)

// Bitmap is a compressed set of uint32 values.
//
// The zero value is an empty bitmap ready to use. Bitmap is not safe for
// concurrent mutation; concurrent readers are safe once construction is done.
type Bitmap struct {
	keys       []uint16 // sorted high-16-bit chunk keys
	containers []container
}

// New returns an empty bitmap.
func New() *Bitmap { return &Bitmap{} }

// FromSlice builds a bitmap from arbitrary (unsorted, possibly duplicated)
// values.
func FromSlice(values []uint32) *Bitmap {
	sorted := make([]uint32, len(values))
	copy(sorted, values)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	b := New()
	for _, v := range sorted {
		b.Add(v)
	}
	return b
}

// FromRange builds a bitmap holding all values in [lo, hi).
func FromRange(lo, hi uint32) *Bitmap {
	b := New()
	b.AddRange(lo, hi)
	return b
}

func (b *Bitmap) chunkIndex(key uint16) (int, bool) {
	lo, hi := 0, len(b.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if b.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(b.keys) && b.keys[lo] == key
}

func (b *Bitmap) insertChunk(i int, key uint16, c container) {
	b.keys = append(b.keys, 0)
	copy(b.keys[i+1:], b.keys[i:])
	b.keys[i] = key
	b.containers = append(b.containers, nil)
	copy(b.containers[i+1:], b.containers[i:])
	b.containers[i] = c
}

func (b *Bitmap) removeChunk(i int) {
	b.keys = append(b.keys[:i], b.keys[i+1:]...)
	b.containers = append(b.containers[:i], b.containers[i+1:]...)
}

// Add inserts v, reporting whether it was absent before.
func (b *Bitmap) Add(v uint32) bool {
	key, low := uint16(v>>16), uint16(v)
	i, found := b.chunkIndex(key)
	if !found {
		c := newArrayContainer()
		c.values = append(c.values, low)
		b.insertChunk(i, key, c)
		return true
	}
	c, added := b.containers[i].add(low)
	b.containers[i] = c
	return added
}

// AddRange inserts every value in [lo, hi).
func (b *Bitmap) AddRange(lo, hi uint32) {
	if hi <= lo {
		return
	}
	for v := uint64(lo); v < uint64(hi); {
		key := uint16(v >> 16)
		chunkEnd := (v | 0xffff) + 1
		end := chunkEnd
		if uint64(hi) < end {
			end = uint64(hi)
		}
		runLen := end - v // ≥1
		run := interval16{start: uint16(v), length: uint16(runLen - 1)}
		i, found := b.chunkIndex(key)
		if !found {
			b.insertChunk(i, key, &runContainer{runs: []interval16{run}})
		} else {
			merged := b.containers[i].or(&runContainer{runs: []interval16{run}})
			b.containers[i] = merged
		}
		v = end
	}
}

// Remove deletes v, reporting whether it was present.
func (b *Bitmap) Remove(v uint32) bool {
	key, low := uint16(v>>16), uint16(v)
	i, found := b.chunkIndex(key)
	if !found {
		return false
	}
	c, removed := b.containers[i].remove(low)
	if c.cardinality() == 0 {
		b.removeChunk(i)
	} else {
		b.containers[i] = c
	}
	return removed
}

// Contains reports whether v is in the bitmap.
func (b *Bitmap) Contains(v uint32) bool {
	key, low := uint16(v>>16), uint16(v)
	i, found := b.chunkIndex(key)
	return found && b.containers[i].contains(low)
}

// Cardinality returns the number of values in the bitmap.
func (b *Bitmap) Cardinality() int {
	n := 0
	for _, c := range b.containers {
		n += c.cardinality()
	}
	return n
}

// IsEmpty reports whether the bitmap holds no values.
func (b *Bitmap) IsEmpty() bool { return len(b.containers) == 0 }

// Minimum returns the smallest value; ok is false when empty.
func (b *Bitmap) Minimum() (v uint32, ok bool) {
	if b.IsEmpty() {
		return 0, false
	}
	b.containers[0].each(func(low uint16) bool {
		v = uint32(b.keys[0])<<16 | uint32(low)
		return false
	})
	return v, true
}

// Maximum returns the largest value; ok is false when empty.
func (b *Bitmap) Maximum() (v uint32, ok bool) {
	if b.IsEmpty() {
		return 0, false
	}
	last := len(b.containers) - 1
	b.containers[last].each(func(low uint16) bool {
		v = uint32(b.keys[last])<<16 | uint32(low)
		return true
	})
	return v, true
}

// And returns the intersection of b and other as a new bitmap.
func (b *Bitmap) And(other *Bitmap) *Bitmap {
	out := New()
	i, j := 0, 0
	for i < len(b.keys) && j < len(other.keys) {
		switch {
		case b.keys[i] < other.keys[j]:
			i++
		case b.keys[i] > other.keys[j]:
			j++
		default:
			if c := b.containers[i].and(other.containers[j]); c != nil && c.cardinality() > 0 {
				out.keys = append(out.keys, b.keys[i])
				out.containers = append(out.containers, c)
			}
			i++
			j++
		}
	}
	return out
}

// Or returns the union of b and other as a new bitmap.
func (b *Bitmap) Or(other *Bitmap) *Bitmap {
	out := New()
	i, j := 0, 0
	for i < len(b.keys) || j < len(other.keys) {
		switch {
		case j >= len(other.keys) || (i < len(b.keys) && b.keys[i] < other.keys[j]):
			out.keys = append(out.keys, b.keys[i])
			out.containers = append(out.containers, b.containers[i].clone())
			i++
		case i >= len(b.keys) || b.keys[i] > other.keys[j]:
			out.keys = append(out.keys, other.keys[j])
			out.containers = append(out.containers, other.containers[j].clone())
			j++
		default:
			out.keys = append(out.keys, b.keys[i])
			out.containers = append(out.containers, b.containers[i].or(other.containers[j]))
			i++
			j++
		}
	}
	return out
}

// AndNot returns the difference b − other as a new bitmap.
func (b *Bitmap) AndNot(other *Bitmap) *Bitmap {
	out := New()
	j := 0
	for i := 0; i < len(b.keys); i++ {
		for j < len(other.keys) && other.keys[j] < b.keys[i] {
			j++
		}
		if j < len(other.keys) && other.keys[j] == b.keys[i] {
			if c := b.containers[i].andNot(other.containers[j]); c != nil && c.cardinality() > 0 {
				out.keys = append(out.keys, b.keys[i])
				out.containers = append(out.containers, c)
			}
		} else {
			out.keys = append(out.keys, b.keys[i])
			out.containers = append(out.containers, b.containers[i].clone())
		}
	}
	return out
}

// Xor returns the symmetric difference of b and other as a new bitmap.
func (b *Bitmap) Xor(other *Bitmap) *Bitmap {
	out := New()
	i, j := 0, 0
	for i < len(b.keys) || j < len(other.keys) {
		switch {
		case j >= len(other.keys) || (i < len(b.keys) && b.keys[i] < other.keys[j]):
			out.keys = append(out.keys, b.keys[i])
			out.containers = append(out.containers, b.containers[i].clone())
			i++
		case i >= len(b.keys) || b.keys[i] > other.keys[j]:
			out.keys = append(out.keys, other.keys[j])
			out.containers = append(out.containers, other.containers[j].clone())
			j++
		default:
			if c := b.containers[i].xor(other.containers[j]); c != nil && c.cardinality() > 0 {
				out.keys = append(out.keys, b.keys[i])
				out.containers = append(out.containers, c)
			}
			i++
			j++
		}
	}
	return out
}

// AndCardinality returns |b ∩ other| without materializing the intersection
// beyond per-chunk results.
func (b *Bitmap) AndCardinality(other *Bitmap) int {
	n := 0
	i, j := 0, 0
	for i < len(b.keys) && j < len(other.keys) {
		switch {
		case b.keys[i] < other.keys[j]:
			i++
		case b.keys[i] > other.keys[j]:
			j++
		default:
			if c := b.containers[i].and(other.containers[j]); c != nil {
				n += c.cardinality()
			}
			i++
			j++
		}
	}
	return n
}

// AndAll intersects all given bitmaps. With no arguments it returns an empty
// bitmap. Bitmaps are intersected smallest-cardinality-first so intermediate
// results shrink as early as possible. The argument slice is left untouched;
// callers that own their operand slice and an accumulator should use
// AndAllInto directly to skip the defensive copy.
func AndAll(bitmaps ...*Bitmap) *Bitmap {
	scratch := make([]*Bitmap, len(bitmaps))
	copy(scratch, bitmaps)
	return AndAllInto(New(), scratch...)
}

// OrAll unions all given bitmaps.
func OrAll(bitmaps ...*Bitmap) *Bitmap {
	out := New()
	for _, bm := range bitmaps {
		out = out.Or(bm)
	}
	return out
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	out := New()
	out.keys = make([]uint16, len(b.keys))
	copy(out.keys, b.keys)
	out.containers = make([]container, len(b.containers))
	for i, c := range b.containers {
		out.containers[i] = c.clone()
	}
	return out
}

// Equals reports whether b and other hold exactly the same values.
func (b *Bitmap) Equals(other *Bitmap) bool {
	if b.Cardinality() != other.Cardinality() {
		return false
	}
	equal := true
	i := 0
	vals := other.ToSlice()
	b.Each(func(v uint32) bool {
		if i >= len(vals) || vals[i] != v {
			equal = false
			return false
		}
		i++
		return true
	})
	return equal && i == len(vals)
}

// Each calls f for every value in ascending order; stops early if f returns
// false.
func (b *Bitmap) Each(f func(v uint32) bool) {
	for i, c := range b.containers {
		high := uint32(b.keys[i]) << 16
		if !c.each(func(low uint16) bool { return f(high | uint32(low)) }) {
			return
		}
	}
}

// ToSlice returns all values in ascending order.
func (b *Bitmap) ToSlice() []uint32 {
	out := make([]uint32, 0, b.Cardinality())
	b.Each(func(v uint32) bool {
		out = append(out, v)
		return true
	})
	return out
}

// SizeBytes reports the approximate in-memory payload size, used by grove's
// space-budget accounting (a materialized graph view is one bitmap column;
// the paper charges all bitmap columns the same unit cost, but we also expose
// the physical size).
func (b *Bitmap) SizeBytes() int {
	n := 2 * len(b.keys)
	for _, c := range b.containers {
		n += c.sizeBytes()
	}
	return n
}

// RunOptimize converts containers to run layout where that is smaller.
func (b *Bitmap) RunOptimize() {
	for i, c := range b.containers {
		if rc := toRunsIfSmaller(c); rc != nil {
			b.containers[i] = rc
		}
	}
}

// toRunsIfSmaller rebuilds c as a run container when that representation is
// strictly smaller; returns nil when it is not worth converting.
func toRunsIfSmaller(c container) container {
	if _, ok := c.(*runContainer); ok {
		return nil
	}
	var runs []interval16
	start, prev := -1, -2
	c.each(func(v uint16) bool {
		iv := int(v)
		if iv != prev+1 {
			if start >= 0 {
				runs = append(runs, interval16{start: uint16(start), length: uint16(prev - start)})
			}
			start = iv
		}
		prev = iv
		return true
	})
	if start >= 0 {
		runs = append(runs, interval16{start: uint16(start), length: uint16(prev - start)})
	}
	rc := &runContainer{runs: runs}
	if rc.sizeBytes() < c.sizeBytes() {
		return rc
	}
	return nil
}

// String renders a short human-readable description.
func (b *Bitmap) String() string {
	card := b.Cardinality()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Bitmap{card=%d", card)
	if card > 0 && card <= 16 {
		sb.WriteString(", values=[")
		first := true
		b.Each(func(v uint32) bool {
			if !first {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d", v)
			first = false
			return true
		})
		sb.WriteByte(']')
	}
	sb.WriteByte('}')
	return sb.String()
}
