package bitmap

import (
	"math/rand"
	"testing"
)

// mixedLayoutBitmap builds a bitmap whose chunks exercise all three container
// layouts: sparse arrays, dense bitsets, and long runs.
func mixedLayoutBitmap(rng *rand.Rand) *Bitmap {
	b := New()
	// Chunk 0: sparse array.
	for i := 0; i < rng.Intn(100); i++ {
		b.Add(uint32(rng.Intn(1 << 16)))
	}
	// Chunk 1: dense bitset (over the array→bitset threshold).
	if rng.Intn(2) == 0 {
		for i := 0; i < 5000+rng.Intn(5000); i++ {
			b.Add(1<<16 + uint32(rng.Intn(1<<16)))
		}
	}
	// Chunk 3 (gap at 2): runs.
	if rng.Intn(2) == 0 {
		for i := 0; i < rng.Intn(5); i++ {
			lo := 3<<16 + uint32(rng.Intn(60000))
			b.AddRange(lo, lo+uint32(rng.Intn(3000)))
		}
	}
	b.RunOptimize()
	return b
}

func TestIteratorNextManyMatchesEach(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		b := mixedLayoutBitmap(rng)
		want := b.ToSlice()
		// Decode with an awkward buffer size so blocks split containers,
		// words and runs at odd boundaries.
		bufSize := 1 + rng.Intn(300)
		buf := make([]uint32, bufSize)
		var got []uint32
		it := b.Iterator()
		for {
			n := it.NextMany(buf)
			if n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d (buf %d): NextMany yielded %d values, Each %d",
				trial, bufSize, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (buf %d): value %d: NextMany %d, Each %d",
					trial, bufSize, i, got[i], want[i])
			}
		}
		// Exhausted iterators stay exhausted.
		if n := it.NextMany(buf); n != 0 {
			t.Fatalf("trial %d: exhausted iterator produced %d values", trial, n)
		}
	}
}

func TestIteratorEmptyBitmap(t *testing.T) {
	it := New().Iterator()
	if n := it.NextMany(make([]uint32, 8)); n != 0 {
		t.Fatalf("empty bitmap decoded %d values", n)
	}
	var zero Iterator
	if n := zero.NextMany(make([]uint32, 8)); n != 0 {
		t.Fatalf("zero-value iterator decoded %d values", n)
	}
}

func TestAppendIntoMatchesToSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		b := mixedLayoutBitmap(rng)
		want := b.ToSlice()
		// Reuse one buffer across appends to prove capacity recycling works.
		buf := make([]uint32, 0, 4)
		buf = append(buf, 99) // pre-existing content must survive
		got := b.AppendInto(buf)
		if got[0] != 99 {
			t.Fatalf("trial %d: AppendInto clobbered existing prefix", trial)
		}
		got = got[1:]
		if len(got) != len(want) {
			t.Fatalf("trial %d: AppendInto yielded %d values, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: value %d: got %d want %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestRanksIntoMatchesRank(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		b := mixedLayoutBitmap(rng)
		// Query a mix of present and absent values, sorted ascending, with
		// duplicates and values in empty chunks.
		var vs []uint32
		b.Each(func(v uint32) bool {
			if rng.Intn(3) == 0 {
				vs = append(vs, v)
			}
			return true
		})
		for i := 0; i < 200; i++ {
			vs = append(vs, uint32(rng.Intn(5<<16)))
		}
		sortU32(vs)
		idx := make([]int32, len(vs))
		b.RanksInto(vs, idx)
		for i, v := range vs {
			var want int32 = -1
			if b.Contains(v) {
				want = int32(b.Rank(v) - 1)
			}
			if idx[i] != want {
				t.Fatalf("trial %d: RanksInto(%d) = %d, want %d", trial, v, idx[i], want)
			}
		}
	}
}

func TestRanksIntoEmpty(t *testing.T) {
	b := New()
	vs := []uint32{0, 1, 70000}
	idx := make([]int32, len(vs))
	b.RanksInto(vs, idx)
	for i, x := range idx {
		if x != -1 {
			t.Fatalf("empty bitmap: idx[%d] = %d, want -1", i, x)
		}
	}
	b.RanksInto(nil, nil) // no-op, must not panic
}

func sortU32(vs []uint32) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j-1] > vs[j]; j-- {
			vs[j-1], vs[j] = vs[j], vs[j-1]
		}
	}
}
