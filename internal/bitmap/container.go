package bitmap

// Container is the per-64K-chunk storage unit of a Bitmap. The low 16 bits of
// the values in a chunk are held in one of three physical layouts — a sorted
// uint16 array, a 1024-word bitset, or a sequence of runs — mirroring the
// Roaring bitmap design. Containers are immutable from the point of view of
// binary operations: And/Or/AndNot always return fresh containers (or nil for
// empty results), while add/remove mutate in place and may change layout.
type container interface {
	// add inserts the low bits v, returning the (possibly new) container and
	// whether the value was absent before.
	add(v uint16) (container, bool)
	// remove deletes v, returning the (possibly new) container and whether
	// the value was present.
	remove(v uint16) (container, bool)
	contains(v uint16) bool
	cardinality() int
	and(other container) container
	or(other container) container
	andNot(other container) container
	xor(other container) container
	// each calls f for every value in ascending order; f returning false
	// stops the iteration and each returns false.
	each(f func(v uint16) bool) bool
	clone() container
	// sizeBytes reports the in-memory payload size of the container,
	// used for space accounting.
	sizeBytes() int
}

const (
	arrayMaxCardinality = 4096 // beyond this an array converts to a bitset
	bitsetWords         = 1024 // 65536 bits
)

// --- array container -------------------------------------------------------

// arrayContainer stores a sorted slice of uint16 values. It is the layout of
// choice for sparse chunks (≤4096 values).
type arrayContainer struct {
	values []uint16
}

func newArrayContainer() *arrayContainer {
	return &arrayContainer{}
}

func (a *arrayContainer) indexOf(v uint16) (int, bool) {
	lo, hi := 0, len(a.values)
	for lo < hi {
		mid := (lo + hi) / 2
		if a.values[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(a.values) && a.values[lo] == v
}

func (a *arrayContainer) add(v uint16) (container, bool) {
	i, found := a.indexOf(v)
	if found {
		return a, false
	}
	if len(a.values) >= arrayMaxCardinality {
		b := a.toBitset()
		b.set(v)
		return b, true
	}
	a.values = append(a.values, 0)
	copy(a.values[i+1:], a.values[i:])
	a.values[i] = v
	return a, true
}

func (a *arrayContainer) remove(v uint16) (container, bool) {
	i, found := a.indexOf(v)
	if !found {
		return a, false
	}
	a.values = append(a.values[:i], a.values[i+1:]...)
	return a, true
}

func (a *arrayContainer) contains(v uint16) bool {
	_, found := a.indexOf(v)
	return found
}

func (a *arrayContainer) cardinality() int { return len(a.values) }

func (a *arrayContainer) toBitset() *bitsetContainer {
	b := newBitsetContainer()
	for _, v := range a.values {
		b.words[v>>6] |= 1 << (v & 63)
	}
	b.card = len(a.values)
	return b
}

func (a *arrayContainer) and(other container) container {
	switch o := other.(type) {
	case *arrayContainer:
		out := intersectSorted(a.values, o.values)
		if len(out) == 0 {
			return nil
		}
		return &arrayContainer{values: out}
	case *bitsetContainer:
		var out []uint16
		for _, v := range a.values {
			if o.get(v) {
				out = append(out, v)
			}
		}
		if len(out) == 0 {
			return nil
		}
		return &arrayContainer{values: out}
	case *runContainer:
		var out []uint16
		for _, v := range a.values {
			if o.contains(v) {
				out = append(out, v)
			}
		}
		if len(out) == 0 {
			return nil
		}
		return &arrayContainer{values: out}
	}
	return nil
}

func (a *arrayContainer) or(other container) container {
	switch o := other.(type) {
	case *arrayContainer:
		out := unionSorted(a.values, o.values)
		if len(out) > arrayMaxCardinality {
			return (&arrayContainer{values: out}).toBitset()
		}
		return &arrayContainer{values: out}
	case *bitsetContainer:
		return o.or(a)
	case *runContainer:
		return o.or(a)
	}
	return a.clone()
}

func (a *arrayContainer) andNot(other container) container {
	var out []uint16
	switch o := other.(type) {
	case *arrayContainer:
		out = differenceSorted(a.values, o.values)
	default:
		for _, v := range a.values {
			if !other.contains(v) {
				out = append(out, v)
			}
		}
		_ = o
	}
	if len(out) == 0 {
		return nil
	}
	return &arrayContainer{values: out}
}

func (a *arrayContainer) xor(other container) container {
	switch o := other.(type) {
	case *arrayContainer:
		out := symmetricDiffSorted(a.values, o.values)
		if len(out) == 0 {
			return nil
		}
		if len(out) > arrayMaxCardinality {
			return (&arrayContainer{values: out}).toBitset()
		}
		return &arrayContainer{values: out}
	default:
		return genericXor(a, other)
	}
}

func (a *arrayContainer) each(f func(uint16) bool) bool {
	for _, v := range a.values {
		if !f(v) {
			return false
		}
	}
	return true
}

func (a *arrayContainer) clone() container {
	out := make([]uint16, len(a.values))
	copy(out, a.values)
	return &arrayContainer{values: out}
}

func (a *arrayContainer) sizeBytes() int { return 2 * len(a.values) }

// --- bitset container ------------------------------------------------------

// bitsetContainer stores a full 65536-bit bitset plus a cached cardinality.
// It is the layout of choice for dense chunks (>4096 values).
type bitsetContainer struct {
	words []uint64
	card  int
}

func newBitsetContainer() *bitsetContainer {
	return &bitsetContainer{words: make([]uint64, bitsetWords)}
}

func (b *bitsetContainer) get(v uint16) bool {
	return b.words[v>>6]&(1<<(v&63)) != 0
}

func (b *bitsetContainer) set(v uint16) bool {
	w, m := v>>6, uint64(1)<<(v&63)
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	b.card++
	return true
}

func (b *bitsetContainer) clear(v uint16) bool {
	w, m := v>>6, uint64(1)<<(v&63)
	if b.words[w]&m == 0 {
		return false
	}
	b.words[w] &^= m
	b.card--
	return true
}

func (b *bitsetContainer) add(v uint16) (container, bool) {
	return b, b.set(v)
}

func (b *bitsetContainer) remove(v uint16) (container, bool) {
	changed := b.clear(v)
	if changed && b.card <= arrayMaxCardinality {
		return b.toArray(), true
	}
	return b, changed
}

func (b *bitsetContainer) contains(v uint16) bool { return b.get(v) }

func (b *bitsetContainer) cardinality() int { return b.card }

func (b *bitsetContainer) toArray() *arrayContainer {
	out := make([]uint16, 0, b.card)
	for wi, w := range b.words {
		for w != 0 {
			t := w & -w
			out = append(out, uint16(wi*64+popcountTrailing(w)))
			w ^= t
		}
	}
	return &arrayContainer{values: out}
}

func (b *bitsetContainer) and(other container) container {
	switch o := other.(type) {
	case *arrayContainer:
		return o.and(b)
	case *bitsetContainer:
		out := newBitsetContainer()
		card := 0
		for i := range out.words {
			w := b.words[i] & o.words[i]
			out.words[i] = w
			card += popcount(w)
		}
		if card == 0 {
			return nil
		}
		out.card = card
		if card <= arrayMaxCardinality {
			return out.toArray()
		}
		return out
	case *runContainer:
		return o.and(b)
	}
	return nil
}

func (b *bitsetContainer) or(other container) container {
	out := b.clone().(*bitsetContainer)
	switch o := other.(type) {
	case *arrayContainer:
		for _, v := range o.values {
			out.set(v)
		}
	case *bitsetContainer:
		card := 0
		for i := range out.words {
			w := out.words[i] | o.words[i]
			out.words[i] = w
			card += popcount(w)
		}
		out.card = card
	case *runContainer:
		for _, r := range o.runs {
			for v := int(r.start); v <= int(r.start)+int(r.length); v++ {
				out.set(uint16(v))
			}
		}
	}
	return out
}

func (b *bitsetContainer) andNot(other container) container {
	out := b.clone().(*bitsetContainer)
	switch o := other.(type) {
	case *arrayContainer:
		for _, v := range o.values {
			out.clear(v)
		}
	case *bitsetContainer:
		card := 0
		for i := range out.words {
			w := out.words[i] &^ o.words[i]
			out.words[i] = w
			card += popcount(w)
		}
		out.card = card
	case *runContainer:
		for _, r := range o.runs {
			for v := int(r.start); v <= int(r.start)+int(r.length); v++ {
				out.clear(uint16(v))
			}
		}
	}
	if out.card == 0 {
		return nil
	}
	if out.card <= arrayMaxCardinality {
		return out.toArray()
	}
	return out
}

func (b *bitsetContainer) xor(other container) container {
	switch o := other.(type) {
	case *bitsetContainer:
		out := newBitsetContainer()
		card := 0
		for i := range out.words {
			w := b.words[i] ^ o.words[i]
			out.words[i] = w
			card += popcount(w)
		}
		if card == 0 {
			return nil
		}
		out.card = card
		if card <= arrayMaxCardinality {
			return out.toArray()
		}
		return out
	default:
		return genericXor(b, other)
	}
}

func (b *bitsetContainer) each(f func(uint16) bool) bool {
	for wi, w := range b.words {
		for w != 0 {
			t := w & -w
			if !f(uint16(wi*64 + popcountTrailing(w))) {
				return false
			}
			w ^= t
		}
	}
	return true
}

func (b *bitsetContainer) clone() container {
	out := newBitsetContainer()
	copy(out.words, b.words)
	out.card = b.card
	return out
}

func (b *bitsetContainer) sizeBytes() int { return 8 * bitsetWords }

// --- run container ---------------------------------------------------------

// interval16 is a closed run [start, start+length].
type interval16 struct {
	start  uint16
	length uint16
}

// runContainer stores sorted, non-overlapping, non-adjacent runs. It is the
// layout of choice for chunks with long consecutive stretches, which arise
// naturally in grove when record ids are assigned sequentially.
type runContainer struct {
	runs []interval16
}

func (r *runContainer) searchRun(v uint16) (int, bool) {
	lo, hi := 0, len(r.runs)
	for lo < hi {
		mid := (lo + hi) / 2
		run := r.runs[mid]
		switch {
		case v < run.start:
			hi = mid
		case uint32(v) > uint32(run.start)+uint32(run.length):
			lo = mid + 1
		default:
			return mid, true
		}
	}
	return lo, false
}

func (r *runContainer) contains(v uint16) bool {
	_, found := r.searchRun(v)
	return found
}

func (r *runContainer) cardinality() int {
	n := 0
	for _, run := range r.runs {
		n += int(run.length) + 1
	}
	return n
}

func (r *runContainer) add(v uint16) (container, bool) {
	i, found := r.searchRun(v)
	if found {
		return r, false
	}
	// Try extending the previous or next run, merging if they now touch.
	extendPrev := i > 0 && uint32(r.runs[i-1].start)+uint32(r.runs[i-1].length)+1 == uint32(v)
	extendNext := i < len(r.runs) && uint32(r.runs[i].start) == uint32(v)+1
	switch {
	case extendPrev && extendNext:
		r.runs[i-1].length += r.runs[i].length + 2
		r.runs = append(r.runs[:i], r.runs[i+1:]...)
	case extendPrev:
		r.runs[i-1].length++
	case extendNext:
		r.runs[i].start = v
		r.runs[i].length++
	default:
		r.runs = append(r.runs, interval16{})
		copy(r.runs[i+1:], r.runs[i:])
		r.runs[i] = interval16{start: v}
	}
	return r, true
}

func (r *runContainer) remove(v uint16) (container, bool) {
	i, found := r.searchRun(v)
	if !found {
		return r, false
	}
	run := r.runs[i]
	end := uint32(run.start) + uint32(run.length)
	switch {
	case run.length == 0:
		r.runs = append(r.runs[:i], r.runs[i+1:]...)
	case v == run.start:
		r.runs[i].start++
		r.runs[i].length--
	case uint32(v) == end:
		r.runs[i].length--
	default:
		// Split the run in two.
		r.runs = append(r.runs, interval16{})
		copy(r.runs[i+2:], r.runs[i+1:])
		r.runs[i] = interval16{start: run.start, length: v - run.start - 1}
		r.runs[i+1] = interval16{start: v + 1, length: uint16(end - uint32(v) - 1)}
	}
	if len(r.runs) == 0 {
		return newArrayContainer(), true
	}
	return r, true
}

func (r *runContainer) toGeneric() container {
	card := r.cardinality()
	if card > arrayMaxCardinality {
		b := newBitsetContainer()
		for _, run := range r.runs {
			for v := uint32(run.start); v <= uint32(run.start)+uint32(run.length); v++ {
				b.words[v>>6] |= 1 << (v & 63)
			}
		}
		b.card = card
		return b
	}
	out := make([]uint16, 0, card)
	for _, run := range r.runs {
		for v := uint32(run.start); v <= uint32(run.start)+uint32(run.length); v++ {
			out = append(out, uint16(v))
		}
	}
	return &arrayContainer{values: out}
}

func (r *runContainer) and(other container) container {
	switch o := other.(type) {
	case *runContainer:
		var out []interval16
		i, j := 0, 0
		for i < len(r.runs) && j < len(o.runs) {
			a, b := r.runs[i], o.runs[j]
			aEnd := uint32(a.start) + uint32(a.length)
			bEnd := uint32(b.start) + uint32(b.length)
			lo := maxU32(uint32(a.start), uint32(b.start))
			hi := minU32(aEnd, bEnd)
			if lo <= hi {
				out = append(out, interval16{start: uint16(lo), length: uint16(hi - lo)})
			}
			if aEnd < bEnd {
				i++
			} else {
				j++
			}
		}
		if len(out) == 0 {
			return nil
		}
		return &runContainer{runs: out}
	default:
		return other.and(r.toGeneric())
	}
}

func (r *runContainer) or(other container) container {
	switch o := other.(type) {
	case *runContainer:
		out := &runContainer{runs: mergeRuns(r.runs, o.runs)}
		return out
	case *arrayContainer:
		out := r.clone().(*runContainer)
		c := container(out)
		for _, v := range o.values {
			c, _ = c.add(v)
		}
		return c
	default:
		return other.or(r.toGeneric())
	}
}

func (r *runContainer) andNot(other container) container {
	return r.toGeneric().andNot(other)
}

func (r *runContainer) xor(other container) container {
	return genericXor(r, other)
}

func (r *runContainer) each(f func(uint16) bool) bool {
	for _, run := range r.runs {
		for v := uint32(run.start); v <= uint32(run.start)+uint32(run.length); v++ {
			if !f(uint16(v)) {
				return false
			}
		}
	}
	return true
}

func (r *runContainer) clone() container {
	out := make([]interval16, len(r.runs))
	copy(out, r.runs)
	return &runContainer{runs: out}
}

func (r *runContainer) sizeBytes() int { return 4 * len(r.runs) }

// --- shared helpers --------------------------------------------------------

func genericXor(a, b container) container {
	// (a OR b) AND NOT (a AND b), computed via the specialized paths.
	union := a.or(b)
	inter := a.and(b)
	if inter == nil {
		if union == nil || union.cardinality() == 0 {
			return nil
		}
		return union
	}
	out := union.andNot(inter)
	if out == nil || out.cardinality() == 0 {
		return nil
	}
	return out
}

func intersectSorted(a, b []uint16) []uint16 {
	var out []uint16
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func unionSorted(a, b []uint16) []uint16 {
	out := make([]uint16, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func differenceSorted(a, b []uint16) []uint16 {
	var out []uint16
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return out
}

func symmetricDiffSorted(a, b []uint16) []uint16 {
	var out []uint16
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func popcount(w uint64) int {
	// Hacker's Delight bit-twiddling popcount; avoids math/bits only for
	// symmetry with popcountTrailing. math/bits would be equally fine.
	w -= (w >> 1) & 0x5555555555555555
	w = (w & 0x3333333333333333) + ((w >> 2) & 0x3333333333333333)
	w = (w + (w >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int((w * 0x0101010101010101) >> 56)
}

func popcountTrailing(w uint64) int {
	// Number of trailing zeros of w (w must be non-zero).
	return popcount((w & -w) - 1)
}

func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

func maxU32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

// mergeRuns merges two sorted run lists into a sorted, coalesced run list.
func mergeRuns(a, b []interval16) []interval16 {
	all := make([]interval16, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var next interval16
		if j >= len(b) || (i < len(a) && a[i].start <= b[j].start) {
			next = a[i]
			i++
		} else {
			next = b[j]
			j++
		}
		if n := len(all); n > 0 {
			prevEnd := uint32(all[n-1].start) + uint32(all[n-1].length)
			if uint32(next.start) <= prevEnd+1 {
				newEnd := uint32(next.start) + uint32(next.length)
				if newEnd > prevEnd {
					all[n-1].length = uint16(newEnd - uint32(all[n-1].start))
				}
				continue
			}
		}
		all = append(all, next)
	}
	return all
}
