package bitmap

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
)

// Binary layout (little-endian):
//
//	magic   uint32  = bitmapMagic
//	nChunks uint32
//	per chunk:
//	  key   uint16
//	  kind  uint8   (0=array, 1=bitset, 2=run)
//	  n     uint32  (array: #values, bitset: cardinality, run: #runs)
//	  payload
const bitmapMagic = 0x47525642 // "GRVB"

const (
	kindArray  = 0
	kindBitset = 1
	kindRun    = 2
)

// WriteTo serializes the bitmap. It implements io.WriterTo.
func (b *Bitmap) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint32(hdr[0:], bitmapMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(b.keys)))
	if _, err := cw.Write(hdr); err != nil {
		return cw.n, err
	}
	for i, c := range b.containers {
		if err := writeContainer(cw, b.keys[i], c); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

func writeContainer(w io.Writer, key uint16, c container) error {
	head := make([]byte, 7)
	binary.LittleEndian.PutUint16(head[0:], key)
	switch cc := c.(type) {
	case *arrayContainer:
		head[2] = kindArray
		binary.LittleEndian.PutUint32(head[3:], uint32(len(cc.values)))
		if _, err := w.Write(head); err != nil {
			return err
		}
		buf := make([]byte, 2*len(cc.values))
		for i, v := range cc.values {
			binary.LittleEndian.PutUint16(buf[2*i:], v)
		}
		_, err := w.Write(buf)
		return err
	case *bitsetContainer:
		head[2] = kindBitset
		binary.LittleEndian.PutUint32(head[3:], uint32(cc.card))
		if _, err := w.Write(head); err != nil {
			return err
		}
		buf := make([]byte, 8*bitsetWords)
		for i, word := range cc.words {
			binary.LittleEndian.PutUint64(buf[8*i:], word)
		}
		_, err := w.Write(buf)
		return err
	case *runContainer:
		head[2] = kindRun
		binary.LittleEndian.PutUint32(head[3:], uint32(len(cc.runs)))
		if _, err := w.Write(head); err != nil {
			return err
		}
		buf := make([]byte, 4*len(cc.runs))
		for i, r := range cc.runs {
			binary.LittleEndian.PutUint16(buf[4*i:], r.start)
			binary.LittleEndian.PutUint16(buf[4*i+2:], r.length)
		}
		_, err := w.Write(buf)
		return err
	default:
		return fmt.Errorf("bitmap: unknown container type %T", c)
	}
}

// ReadFrom deserializes a bitmap previously written with WriteTo, replacing
// the receiver's contents. It implements io.ReaderFrom.
func (b *Bitmap) ReadFrom(r io.Reader) (int64, error) {
	cr := &countingReader{r: r}
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(cr, hdr); err != nil {
		return cr.n, fmt.Errorf("bitmap: reading header: %w", err)
	}
	if magic := binary.LittleEndian.Uint32(hdr[0:]); magic != bitmapMagic {
		return cr.n, fmt.Errorf("bitmap: bad magic %#x", magic)
	}
	nChunks := binary.LittleEndian.Uint32(hdr[4:])
	b.keys = b.keys[:0]
	b.containers = b.containers[:0]
	var prevKey int = -1
	for i := uint32(0); i < nChunks; i++ {
		key, c, err := readContainer(cr)
		if err != nil {
			return cr.n, err
		}
		if int(key) <= prevKey {
			return cr.n, fmt.Errorf("bitmap: chunk keys out of order (%d after %d)", key, prevKey)
		}
		prevKey = int(key)
		b.keys = append(b.keys, key)
		b.containers = append(b.containers, c)
	}
	return cr.n, nil
}

func readContainer(r io.Reader) (uint16, container, error) {
	head := make([]byte, 7)
	if _, err := io.ReadFull(r, head); err != nil {
		return 0, nil, fmt.Errorf("bitmap: reading container header: %w", err)
	}
	key := binary.LittleEndian.Uint16(head[0:])
	kind := head[2]
	n := binary.LittleEndian.Uint32(head[3:])
	switch kind {
	case kindArray:
		if n > arrayMaxCardinality {
			return 0, nil, fmt.Errorf("bitmap: array container too large (%d)", n)
		}
		buf := make([]byte, 2*n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return 0, nil, err
		}
		values := make([]uint16, n)
		for i := range values {
			values[i] = binary.LittleEndian.Uint16(buf[2*i:])
		}
		return key, &arrayContainer{values: values}, nil
	case kindBitset:
		buf := make([]byte, 8*bitsetWords)
		if _, err := io.ReadFull(r, buf); err != nil {
			return 0, nil, err
		}
		c := newBitsetContainer()
		card := 0
		for i := range c.words {
			c.words[i] = binary.LittleEndian.Uint64(buf[8*i:])
			card += bits.OnesCount64(c.words[i])
		}
		// Recount rather than trust the header: a corrupt cardinality would
		// silently break every population-count consumer downstream.
		if int(n) != card {
			return 0, nil, fmt.Errorf("bitmap: bitset container cardinality %d does not match payload (%d bits set)", n, card)
		}
		c.card = card
		return key, c, nil
	case kindRun:
		if n > 1<<15 {
			return 0, nil, fmt.Errorf("bitmap: run container too large (%d runs)", n)
		}
		buf := make([]byte, 4*n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return 0, nil, err
		}
		runs := make([]interval16, n)
		prevEnd := -1
		for i := range runs {
			runs[i] = interval16{
				start:  binary.LittleEndian.Uint16(buf[4*i:]),
				length: binary.LittleEndian.Uint16(buf[4*i+2:]),
			}
			start, end := int(runs[i].start), int(runs[i].start)+int(runs[i].length)
			if end > 0xFFFF {
				return 0, nil, fmt.Errorf("bitmap: run [%d,%d] exceeds the container's value space", start, end)
			}
			if start <= prevEnd {
				return 0, nil, fmt.Errorf("bitmap: runs out of order or overlapping at [%d,%d]", start, end)
			}
			prevEnd = end
		}
		return key, &runContainer{runs: runs}, nil
	default:
		return 0, nil, fmt.Errorf("bitmap: unknown container kind %d", kind)
	}
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}
