package bitmap

import (
	"bytes"
	"testing"
)

// FuzzReadFrom checks the bitmap deserializer never panics on arbitrary
// bytes, and that anything it does accept survives a write/read round trip.
func FuzzReadFrom(f *testing.F) {
	// Seed with valid serializations of the three container kinds.
	seeds := []*Bitmap{
		FromSlice([]uint32{1, 2, 3, 70000}),
		FromRange(0, 100000),
		func() *Bitmap {
			b := FromRange(0, 100000)
			b.RunOptimize()
			return b
		}(),
		New(),
	}
	for _, b := range seeds {
		var buf bytes.Buffer
		if _, err := b.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{0x42, 0x56, 0x52, 0x47}) // magic, nothing else
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var b Bitmap
		if _, err := b.ReadFrom(bytes.NewReader(data)); err != nil {
			return
		}
		// Accepted: must round trip and basic invariants must hold.
		card := b.Cardinality()
		if card < 0 {
			t.Fatal("negative cardinality")
		}
		var buf bytes.Buffer
		if _, err := b.WriteTo(&buf); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		var b2 Bitmap
		if _, err := b2.ReadFrom(&buf); err != nil {
			t.Fatalf("reread failed: %v", err)
		}
		if !b.Equals(&b2) {
			t.Fatal("round trip changed contents")
		}
	})
}
