package bitmap

import (
	"testing"
	"testing/quick"
)

func TestIntersects(t *testing.T) {
	a := FromSlice([]uint32{1, 2, 3, 100000})
	b := FromSlice([]uint32{4, 5, 100000})
	if !a.Intersects(b) {
		t.Error("shared value not detected")
	}
	c := FromSlice([]uint32{7, 200000})
	if a.Intersects(c) {
		t.Error("disjoint bitmaps reported intersecting")
	}
	if a.Intersects(New()) || New().Intersects(a) {
		t.Error("empty bitmap intersects")
	}
}

func TestQuickIntersectsMatchesAnd(t *testing.T) {
	f := func(av, bv []uint32) bool {
		a, _ := buildPair(clampValues(av))
		b, _ := buildPair(clampValues(bv))
		return a.Intersects(b) == !a.And(b).IsEmpty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCardinalityShortcuts(t *testing.T) {
	f := func(av, bv []uint32) bool {
		a, _ := buildPair(clampValues(av))
		b, _ := buildPair(clampValues(bv))
		if a.OrCardinality(b) != a.Or(b).Cardinality() {
			return false
		}
		return a.AndNotCardinality(b) == a.AndNot(b).Cardinality()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveRange(t *testing.T) {
	b := FromRange(0, 100)
	b.RemoveRange(10, 20)
	if b.Cardinality() != 90 {
		t.Fatalf("cardinality = %d, want 90", b.Cardinality())
	}
	if b.Contains(10) || b.Contains(19) {
		t.Error("range values survived")
	}
	if !b.Contains(9) || !b.Contains(20) {
		t.Error("range endpoints damaged")
	}
	b.RemoveRange(50, 50) // empty range: no-op
	if b.Cardinality() != 90 {
		t.Error("empty range removed values")
	}
}

func TestQuickRemoveRangeMatchesReference(t *testing.T) {
	f := func(values []uint32, lo, hi uint32) bool {
		values = clampValues(values)
		lo %= 200000
		hi %= 200000
		b, ref := buildPair(values)
		b.RemoveRange(lo, hi)
		for v := range ref {
			if v >= lo && v < hi {
				delete(ref, v)
			}
		}
		return equalU32(b.ToSlice(), ref.slice())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
