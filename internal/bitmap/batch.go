package bitmap

// Block-at-a-time decode and rank kernels. The closure-based Each/Rank APIs
// cost an indirect call per bit (or a container binary search per lookup),
// which dominates measure materialization once the structural phase is
// bitmap-cheap. The kernels below decode container contents into caller-owned
// uint32 blocks and translate sorted record ids into dense value indexes in
// one cursored pass, with no per-bit function calls.

// BlockSize is the recommended capacity for NextMany block buffers: large
// enough to amortize per-block bookkeeping, small enough to stay resident in
// L1 while a fused consumer folds it.
const BlockSize = 256

// Iterator decodes a bitmap block-at-a-time in ascending value order. Obtain
// one with Bitmap.Iterator; the zero value is an exhausted iterator. An
// Iterator is invalidated by any mutation of the underlying bitmap and must
// not be shared across goroutines.
type Iterator struct {
	b  *Bitmap
	ci int // current container index

	// Per-container cursor. Exactly one of the three families is active,
	// selected by the current container's layout.
	ai   int    // arrayContainer: next value index; runContainer: current run index
	off  uint32 // runContainer: offset within the current run
	wi   int    // bitsetContainer: current word index
	word uint64 // bitsetContainer: unconsumed bits of words[wi]
}

// Iterator returns a block decoder positioned at the smallest value.
func (b *Bitmap) Iterator() Iterator {
	it := Iterator{b: b}
	it.enterContainer()
	return it
}

// enterContainer initializes the per-container cursor for container ci.
func (it *Iterator) enterContainer() {
	it.ai, it.off, it.wi, it.word = 0, 0, 0, 0
	if it.b == nil || it.ci >= len(it.b.containers) {
		return
	}
	if bc, ok := it.b.containers[it.ci].(*bitsetContainer); ok {
		it.word = bc.words[0]
	}
}

// NextMany decodes up to len(buf) values into buf and returns how many were
// written. It returns 0 exactly when the iterator is exhausted (len(buf)==0
// is the caller's bug). Values arrive in strictly ascending order across
// calls.
//
//grove:hotpath
func (it *Iterator) NextMany(buf []uint32) int {
	n := 0
	for it.b != nil && it.ci < len(it.b.containers) && n < len(buf) {
		high := uint32(it.b.keys[it.ci]) << 16
		switch c := it.b.containers[it.ci].(type) {
		case *arrayContainer:
			for it.ai < len(c.values) && n < len(buf) {
				buf[n] = high | uint32(c.values[it.ai])
				it.ai++
				n++
			}
			if it.ai < len(c.values) {
				return n
			}
		case *bitsetContainer:
			for it.wi < len(c.words) {
				w := it.word
				for w != 0 && n < len(buf) {
					buf[n] = high | uint32(it.wi*64+popcountTrailing(w))
					w &= w - 1
					n++
				}
				if w != 0 {
					it.word = w
					return n
				}
				it.wi++
				if it.wi < len(c.words) {
					it.word = c.words[it.wi]
				}
			}
		case *runContainer:
			for it.ai < len(c.runs) {
				r := c.runs[it.ai]
				length := uint32(r.length)
				for it.off <= length && n < len(buf) {
					buf[n] = high | (uint32(r.start) + it.off)
					it.off++
					n++
				}
				if it.off <= length {
					return n
				}
				it.ai++
				it.off = 0
			}
		}
		it.ci++
		it.enterContainer()
	}
	return n
}

// AppendInto appends every value of b to dst in ascending order and returns
// the extended slice — the reusable-buffer form of ToSlice. It decodes
// container-at-a-time with no per-bit closure calls.
//
//grove:hotpath
func (b *Bitmap) AppendInto(dst []uint32) []uint32 {
	if need := len(dst) + b.Cardinality(); cap(dst) < need {
		grown := make([]uint32, len(dst), need) //grovevet:ignore hotalloc grow path only; callers pass pooled buffers that plateau at the largest answer set
		copy(grown, dst)
		dst = grown
	}
	for i, c := range b.containers {
		high := uint32(b.keys[i]) << 16
		switch cc := c.(type) {
		case *arrayContainer:
			for _, v := range cc.values {
				dst = append(dst, high|uint32(v))
			}
		case *bitsetContainer:
			for wi, w := range cc.words {
				for w != 0 {
					dst = append(dst, high|uint32(wi*64+popcountTrailing(w)))
					w &= w - 1
				}
			}
		case *runContainer:
			for _, r := range cc.runs {
				v := high | uint32(r.start)
				for k := uint32(0); k <= uint32(r.length); k++ {
					dst = append(dst, v+k)
				}
			}
		}
	}
	return dst
}

// RanksInto is the batch form of Rank-1/Contains over a sorted query set:
// for every ascending vs[i] it stores into idx[i] the dense value index
// (Rank(vs[i])-1) when vs[i] is present, and -1 when absent. idx must have
// len(vs). One cursored pass over the bitmap's containers serves the whole
// batch — per-chunk cardinalities are summed once and in-container positions
// advance monotonically, instead of restarting a binary search and a prefix
// popcount per lookup.
//
// Indexes are int32, which bounds the addressable cardinality at 2^31-1
// values — far beyond the uint32 record-id space a measure column indexes in
// practice (a column that dense would be ~16 GiB of float64 payload).
//
//grove:hotpath
func (b *Bitmap) RanksInto(vs []uint32, idx []int32) {
	_ = idx[:len(vs)]
	i := 0        // index into vs
	base := 0     // cardinality of containers before ci
	ci := 0       // current container index
	var rk ranker // in-container cursor
	for i < len(vs) {
		key := uint16(vs[i] >> 16)
		// Advance to the container holding key, accumulating cardinalities.
		for ci < len(b.keys) && b.keys[ci] < key {
			base += b.containers[ci].cardinality()
			ci++
		}
		if ci >= len(b.keys) || b.keys[ci] > key {
			// No container for this chunk: everything in it is absent.
			for i < len(vs) && uint16(vs[i]>>16) == key {
				idx[i] = -1
				i++
			}
			continue
		}
		rk.reset(b.containers[ci])
		for i < len(vs) && uint16(vs[i]>>16) == key {
			r, ok := rk.rank(uint16(vs[i]))
			if ok {
				idx[i] = int32(base + r)
			} else {
				idx[i] = -1
			}
			i++
		}
		base += b.containers[ci].cardinality()
		ci++
	}
}

// ranker computes successive in-container ranks for an ascending sequence of
// low-16-bit values, advancing a cursor instead of recomputing prefixes.
type ranker struct {
	c    container
	ai   int // arrayContainer value cursor / runContainer run cursor
	wi   int // bitsetContainer word cursor
	pref int // bitsetContainer: set bits in words[:wi]; runContainer: values in runs[:ai]
}

func (r *ranker) reset(c container) { *r = ranker{c: c} }

// rank returns (Rank(v)-1, true) when v is present, (_, false) otherwise.
// Successive calls must pass non-decreasing v.
func (r *ranker) rank(v uint16) (int, bool) {
	switch c := r.c.(type) {
	case *arrayContainer:
		for r.ai < len(c.values) && c.values[r.ai] < v {
			r.ai++
		}
		if r.ai < len(c.values) && c.values[r.ai] == v {
			return r.ai, true
		}
		return 0, false
	case *bitsetContainer:
		w := int(v >> 6)
		for r.wi < w {
			r.pref += popcount(c.words[r.wi])
			r.wi++
		}
		bit := uint64(1) << (v & 63)
		if c.words[w]&bit == 0 {
			return 0, false
		}
		return r.pref + popcount(c.words[w]&(bit-1)), true
	case *runContainer:
		for r.ai < len(c.runs) && uint32(c.runs[r.ai].start)+uint32(c.runs[r.ai].length) < uint32(v) {
			r.pref += int(c.runs[r.ai].length) + 1
			r.ai++
		}
		if r.ai < len(c.runs) && c.runs[r.ai].start <= v {
			return r.pref + int(v-c.runs[r.ai].start), true
		}
		return 0, false
	}
	return 0, false
}
