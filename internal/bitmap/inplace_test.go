package bitmap

import (
	"math/rand"
	"testing"
)

// randomBitmap draws n values from [0, max) with the given rng.
func randomBitmap(rng *rand.Rand, n int, max uint32) *Bitmap {
	b := New()
	for i := 0; i < n; i++ {
		b.Add(rng.Uint32() % max)
	}
	return b
}

// layoutVariants returns semantically equal bitmaps in all three container
// layouts (array, bitset, run) plus the original, so in-place kernels are
// exercised across every receiver/operand pairing.
func layoutVariants(b *Bitmap) []*Bitmap {
	run := b.Clone()
	run.RunOptimize()
	dense := New()
	b.Each(func(v uint32) bool {
		dense.Add(v)
		return true
	})
	return []*Bitmap{b, run, dense}
}

func TestAndInPlaceMatchesAnd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []struct {
		n   int
		max uint32
	}{
		{0, 1 << 16}, {50, 1 << 10}, {5000, 1 << 14}, {8000, 1 << 16},
		{3000, 1 << 20}, {60000, 1 << 17},
	}
	for _, sa := range shapes {
		for _, sb := range shapes {
			a := randomBitmap(rng, sa.n, sa.max)
			b := randomBitmap(rng, sb.n, sb.max)
			want := a.And(b)
			for _, other := range layoutVariants(b) {
				got := a.Clone()
				got.AndInPlace(other)
				if !got.Equals(want) {
					t.Fatalf("AndInPlace(%d/%d vs %d/%d) = card %d, want %d",
						sa.n, sa.max, sb.n, sb.max, got.Cardinality(), want.Cardinality())
				}
			}
		}
	}
}

func TestAndInPlaceRunOperands(t *testing.T) {
	// Range-built bitmaps exercise the run-container masks directly.
	a := FromRange(100, 70000)
	a.AddRange(200000, 200100)
	b := FromRange(60000, 250000)
	want := a.And(b)
	for _, x := range layoutVariants(a) {
		for _, y := range layoutVariants(b) {
			got := x.Clone()
			got.AndInPlace(y)
			if !got.Equals(want) {
				t.Fatalf("run AndInPlace mismatch: card %d want %d",
					got.Cardinality(), want.Cardinality())
			}
		}
	}
}

func TestAndAllIntoMatchesAndAll(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		width := 1 + rng.Intn(8)
		bms := make([]*Bitmap, width)
		for i := range bms {
			bms[i] = randomBitmap(rng, 200+rng.Intn(5000), 1<<15)
		}
		want := AndAll(bms...)
		dst := AndAllInto(New(), append([]*Bitmap(nil), bms...)...)
		if !dst.Equals(want) {
			t.Fatalf("trial %d: AndAllInto card %d, want %d",
				trial, dst.Cardinality(), want.Cardinality())
		}
	}
}

func TestAndAllIntoReuseAndOwnership(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomBitmap(rng, 4000, 1<<14)
	b := randomBitmap(rng, 4000, 1<<14)
	c := randomBitmap(rng, 4000, 1<<14)

	dst := New()
	first := AndAllInto(dst, a, b)
	if first != dst {
		t.Fatal("AndAllInto did not return dst")
	}
	snapshot := first.Clone()

	// The result must be detached from the inputs: mutating them afterwards
	// must not change the accumulated answer (cache-retention contract).
	a.AddRange(0, 1<<14)
	if !first.Equals(snapshot) {
		t.Fatal("result aliases an input bitmap")
	}

	// Reusing the same dst for another conjunction overwrites it fully.
	second := AndAllInto(dst, b, c)
	want := b.And(c)
	if !second.Equals(want) {
		t.Fatalf("reused dst: card %d, want %d", second.Cardinality(), want.Cardinality())
	}
}

func TestAndAllIntoEdgeCases(t *testing.T) {
	if got := AndAllInto(nil); !got.IsEmpty() {
		t.Fatal("empty conjunction not empty")
	}
	a := FromSlice([]uint32{1, 5, 9})
	single := AndAllInto(New(), a)
	if !single.Equals(a) {
		t.Fatal("single-operand conjunction differs")
	}
	a.Add(100)
	if single.Contains(100) {
		t.Fatal("single-operand result aliases the input")
	}
	empty := AndAllInto(New(), a, New(), FromRange(0, 1000))
	if !empty.IsEmpty() {
		t.Fatal("conjunction with empty operand not empty")
	}
}

func TestClearAndCopyFrom(t *testing.T) {
	b := FromRange(0, 100000)
	b.Clear()
	if !b.IsEmpty() || b.Cardinality() != 0 {
		t.Fatal("Clear left values behind")
	}
	src := FromSlice([]uint32{3, 70000, 1 << 20})
	b.CopyFrom(src)
	if !b.Equals(src) {
		t.Fatal("CopyFrom mismatch")
	}
	src.Add(42)
	if b.Contains(42) {
		t.Fatal("CopyFrom aliases the source")
	}
}

// TestAndAllIntoConstantBitmapAllocs pins the O(1)-bitmaps contract: the
// number of allocations per conjunction must not grow with the plan width
// (it would be ~width bitmaps plus containers with the allocating path).
func TestAndAllIntoConstantBitmapAllocs(t *testing.T) {
	mk := func(width int) []*Bitmap {
		rng := rand.New(rand.NewSource(17))
		bms := make([]*Bitmap, width)
		for i := range bms {
			// Dense over a single chunk: the accumulator stays one container.
			bms[i] = randomBitmap(rng, 30000, 1<<16)
		}
		return bms
	}
	allocsAt := func(width int) float64 {
		bms := mk(width)
		dst := New()
		return testing.AllocsPerRun(20, func() {
			AndAllInto(dst, bms...)
		})
	}
	narrow, wide := allocsAt(4), allocsAt(32)
	// Allow slack for the cardinality scratch slice and container layout
	// conversions, but a linear-in-width regime (≥1 alloc per operand) must
	// fail.
	if wide > narrow+8 {
		t.Fatalf("allocations grow with plan width: %v at width 4 vs %v at width 32",
			narrow, wide)
	}
}

func TestRemoveRangeContainerGranularity(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	type rangeCase struct{ lo, hi uint32 }
	cases := []rangeCase{
		{0, 0}, {10, 10}, {100, 50}, // no-ops
		{0, 1 << 21},             // everything
		{65536, 131072},          // exactly one chunk
		{65000, 140000},          // boundary chunks both sides
		{1, 2},                   // single value
		{1 << 20, 1<<20 + 65536}, // aligned chunk high up
		{70000, 70001},           // single value inside a chunk
	}
	for _, tc := range cases {
		b := randomBitmap(rng, 20000, 1<<21)
		b.AddRange(60000, 90000) // guarantee runs across chunk borders
		want := New()
		b.Each(func(v uint32) bool {
			if v < tc.lo || v >= tc.hi {
				want.Add(v)
			}
			return true
		})
		got := b.Clone()
		got.RunOptimize() // exercise run-container boundary trimming too
		got.RemoveRange(tc.lo, tc.hi)
		if !got.Equals(want) {
			t.Fatalf("RemoveRange[%d,%d): card %d, want %d",
				tc.lo, tc.hi, got.Cardinality(), want.Cardinality())
		}
		plain := b.Clone()
		plain.RemoveRange(tc.lo, tc.hi)
		if !plain.Equals(want) {
			t.Fatalf("RemoveRange[%d,%d) (mixed layouts): card %d, want %d",
				tc.lo, tc.hi, plain.Cardinality(), want.Cardinality())
		}
	}
}

// --- benchmarks -------------------------------------------------------------

func benchOperands(width int) []*Bitmap {
	rng := rand.New(rand.NewSource(23))
	bms := make([]*Bitmap, width)
	for i := range bms {
		bms[i] = randomBitmap(rng, 40000, 1<<18)
	}
	return bms
}

func BenchmarkAndAllWidth16(b *testing.B) {
	bms := benchOperands(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AndAll(bms...)
	}
}

func BenchmarkAndAllIntoWidth16(b *testing.B) {
	bms := benchOperands(16)
	dst := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AndAllInto(dst, bms...)
	}
}

func BenchmarkRemoveRange(b *testing.B) {
	src := New()
	src.AddRange(0, 1<<20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		bm := src.Clone()
		b.StartTimer()
		bm.RemoveRange(1000, 1<<19)
	}
}
