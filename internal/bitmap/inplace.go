package bitmap

// Destructive intersection kernels. The allocating And/AndAll path creates a
// fresh Bitmap per pairwise step, which dominates the structural phase of
// wide query plans (one AND per query edge). The kernels below intersect into
// an accumulator the caller owns: AndAllInto performs the whole conjunction
// with O(1) bitmap allocations regardless of plan width, and AndInPlace
// mutates the accumulator's containers directly wherever the layouts allow.

// Clear empties the bitmap while retaining the allocated chunk slices, so an
// accumulator can be reused across queries without reallocating.
func (b *Bitmap) Clear() {
	for i := range b.containers {
		b.containers[i] = nil
	}
	b.keys = b.keys[:0]
	b.containers = b.containers[:0]
}

// CopyFrom replaces b's contents with a deep copy of other, reusing b's
// chunk slices where capacity allows.
func (b *Bitmap) CopyFrom(other *Bitmap) {
	b.Clear()
	for i, c := range other.containers {
		b.keys = append(b.keys, other.keys[i])
		b.containers = append(b.containers, c.clone())
	}
}

// AndInPlace replaces b with b ∩ other, compacting b's chunk slices in place
// and mutating b's containers directly where the layout pair allows (array
// receivers filter in place; bitset receivers mask word-wise). other is never
// modified. Callers must own b exclusively: shared column bitmaps must go
// through the allocating And instead.
//
//grove:hotpath
func (b *Bitmap) AndInPlace(other *Bitmap) {
	out := 0
	i, j := 0, 0
	for i < len(b.keys) && j < len(other.keys) {
		switch {
		case b.keys[i] < other.keys[j]:
			i++
		case b.keys[i] > other.keys[j]:
			j++
		default:
			if c := andContainerInPlace(b.containers[i], other.containers[j]); c != nil {
				b.keys[out] = b.keys[i]
				b.containers[out] = c
				out++
			}
			i++
			j++
		}
	}
	for k := out; k < len(b.containers); k++ {
		b.containers[k] = nil
	}
	b.keys = b.keys[:out]
	b.containers = b.containers[:out]
}

// AndAllInto intersects all given bitmaps into dst and returns dst (a fresh
// bitmap when dst is nil). dst is cleared first and must not alias any input.
// Inputs are reordered in place by ascending cardinality so intermediate
// results shrink as early as possible, and the loop exits as soon as the
// accumulator is empty. The inputs themselves are never modified; the result
// containers are owned by dst (cloned or freshly computed), so dst can be
// retained — e.g. cached — after further mutations to the inputs.
//
// Per call this allocates one cardinality scratch slice and the result
// containers of the first pairwise step; every later step mutates those in
// place. Bitmap allocations are O(1) regardless of len(bitmaps).
//
//grove:hotpath
func AndAllInto(dst *Bitmap, bitmaps ...*Bitmap) *Bitmap {
	if dst == nil {
		dst = New() //grovevet:ignore hotalloc nil-dst convenience path; steady-state callers pass a reused accumulator
	}
	dst.Clear()
	switch len(bitmaps) {
	case 0:
		return dst
	case 1:
		dst.CopyFrom(bitmaps[0])
		return dst
	}
	sortByCardinality(bitmaps)
	if bitmaps[0].IsEmpty() {
		return dst
	}
	// First pairwise step materializes fresh containers into dst; the
	// remaining steps intersect in place.
	dst.andInto(bitmaps[0], bitmaps[1])
	for _, bm := range bitmaps[2:] {
		if dst.IsEmpty() {
			return dst
		}
		dst.AndInPlace(bm)
	}
	return dst
}

// sortByCardinality orders bitmaps ascending by cardinality, computing each
// cardinality once.
func sortByCardinality(bitmaps []*Bitmap) {
	cards := make([]int, len(bitmaps))
	for i, bm := range bitmaps {
		cards[i] = bm.Cardinality()
	}
	for i := 1; i < len(bitmaps); i++ {
		for j := i; j > 0 && cards[j-1] > cards[j]; j-- {
			cards[j-1], cards[j] = cards[j], cards[j-1]
			bitmaps[j-1], bitmaps[j] = bitmaps[j], bitmaps[j-1]
		}
	}
}

// andInto fills the cleared receiver with x ∩ y using the allocating
// container kernels (the inputs stay untouched).
func (b *Bitmap) andInto(x, y *Bitmap) {
	i, j := 0, 0
	for i < len(x.keys) && j < len(y.keys) {
		switch {
		case x.keys[i] < y.keys[j]:
			i++
		case x.keys[i] > y.keys[j]:
			j++
		default:
			if c := x.containers[i].and(y.containers[j]); c != nil && c.cardinality() > 0 {
				b.keys = append(b.keys, x.keys[i])
				b.containers = append(b.containers, c)
			}
			i++
			j++
		}
	}
}

// andContainerInPlace intersects src into dst, mutating dst where possible.
// It returns the surviving container (possibly dst itself, possibly a more
// compact replacement) or nil when the intersection is empty. src is never
// modified. Layout invariants match the allocating kernels: results at or
// below arrayMaxCardinality are stored as arrays.
//
//grove:hotpath
func andContainerInPlace(dst, src container) container {
	switch d := dst.(type) {
	case *arrayContainer:
		if s, ok := src.(*arrayContainer); ok {
			d.values = intersectSortedInPlace(d.values, s.values)
		} else {
			out := 0
			for _, v := range d.values {
				if src.contains(v) {
					d.values[out] = v
					out++
				}
			}
			d.values = d.values[:out]
		}
		if len(d.values) == 0 {
			return nil
		}
		return d
	case *bitsetContainer:
		switch s := src.(type) {
		case *bitsetContainer:
			d.andBitsetInPlace(s)
		case *arrayContainer:
			d.andArrayInPlace(s)
		case *runContainer:
			d.andRunInPlace(s)
		}
		if d.card == 0 {
			return nil
		}
		if d.card <= arrayMaxCardinality {
			return d.toArray()
		}
		return d
	default:
		// Run accumulators are rare (only a run ∩ run first step yields
		// one); fall back to the allocating kernel.
		c := dst.and(src)
		if c == nil || c.cardinality() == 0 {
			return nil
		}
		return c
	}
}

// intersectSortedInPlace writes the intersection of sorted a and b into a's
// prefix (safe: the write index never passes the read index) and returns the
// shortened slice.
func intersectSortedInPlace(a, b []uint16) []uint16 {
	out := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			a[out] = a[i]
			out++
			i++
			j++
		}
	}
	return a[:out]
}

func (b *bitsetContainer) andBitsetInPlace(o *bitsetContainer) {
	card := 0
	for i := range b.words {
		w := b.words[i] & o.words[i]
		b.words[i] = w
		card += popcount(w)
	}
	b.card = card
}

// andArrayInPlace keeps only the bits of b that appear in the sorted array o,
// building one mask per 64-bit word in a single pass over o.
func (b *bitsetContainer) andArrayInPlace(o *arrayContainer) {
	idx := 0
	card := 0
	for wi := range b.words {
		var mask uint64
		for idx < len(o.values) && int(o.values[idx]>>6) == wi {
			mask |= 1 << (o.values[idx] & 63)
			idx++
		}
		w := b.words[wi] & mask
		b.words[wi] = w
		card += popcount(w)
	}
	b.card = card
}

// andRunInPlace keeps only the bits of b covered by o's runs.
func (b *bitsetContainer) andRunInPlace(o *runContainer) {
	card := 0
	ri := 0
	for wi := range b.words {
		lo := uint32(wi * 64)
		hi := lo + 63
		for ri < len(o.runs) && uint32(o.runs[ri].start)+uint32(o.runs[ri].length) < lo {
			ri++
		}
		var mask uint64
		for k := ri; k < len(o.runs); k++ {
			start := uint32(o.runs[k].start)
			if start > hi {
				break
			}
			end := start + uint32(o.runs[k].length)
			a := start
			if a < lo {
				a = lo
			}
			z := end
			if z > hi {
				z = hi
			}
			mask |= (^uint64(0) >> (63 - (z - lo))) & (^uint64(0) << (a - lo))
		}
		w := b.words[wi] & mask
		b.words[wi] = w
		card += popcount(w)
	}
	b.card = card
}
