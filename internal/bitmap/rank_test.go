package bitmap

import (
	"testing"
	"testing/quick"
)

func TestRankBasic(t *testing.T) {
	b := FromSlice([]uint32{10, 20, 30, 70000})
	cases := []struct {
		v    uint32
		want int
	}{
		{0, 0}, {9, 0}, {10, 1}, {15, 1}, {20, 2}, {30, 3}, {69999, 3}, {70000, 4}, {1 << 30, 4},
	}
	for _, c := range cases {
		if got := b.Rank(c.v); got != c.want {
			t.Errorf("Rank(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestRankOnRuns(t *testing.T) {
	b := FromRange(100, 200)
	b.RunOptimize()
	if got := b.Rank(99); got != 0 {
		t.Errorf("Rank(99) = %d, want 0", got)
	}
	if got := b.Rank(150); got != 51 {
		t.Errorf("Rank(150) = %d, want 51", got)
	}
	if got := b.Rank(500); got != 100 {
		t.Errorf("Rank(500) = %d, want 100", got)
	}
}

func TestRankOnBitset(t *testing.T) {
	b := New()
	for v := uint32(0); v < 6000; v++ {
		b.Add(v * 2)
	}
	if _, ok := b.containers[0].(*bitsetContainer); !ok {
		t.Fatalf("expected bitset container, got %T", b.containers[0])
	}
	if got := b.Rank(100); got != 51 { // 0,2,...,100
		t.Errorf("Rank(100) = %d, want 51", got)
	}
	if got := b.Rank(101); got != 51 {
		t.Errorf("Rank(101) = %d, want 51", got)
	}
}

func TestSelectInverseOfRank(t *testing.T) {
	b := FromSlice([]uint32{5, 9, 100, 65536, 200001})
	for i, want := range []uint32{5, 9, 100, 65536, 200001} {
		if got, ok := b.Select(i); !ok || got != want {
			t.Errorf("Select(%d) = %d,%v want %d,true", i, got, ok, want)
		}
	}
	if _, ok := b.Select(5); ok {
		t.Error("Select out of range reported ok")
	}
	if _, ok := b.Select(-1); ok {
		t.Error("Select(-1) reported ok")
	}
}

func TestQuickRankMatchesReference(t *testing.T) {
	f := func(values []uint32, probes []uint32) bool {
		values = clampValues(values)
		probes = clampValues(probes)
		b, ref := buildPair(values)
		sorted := ref.slice()
		for _, p := range probes {
			want := 0
			for _, v := range sorted {
				if v <= p {
					want++
				}
			}
			if b.Rank(p) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSelectRankRoundTrip(t *testing.T) {
	f := func(values []uint32) bool {
		b, _ := buildPair(clampValues(values))
		ok := true
		i := 0
		b.Each(func(v uint32) bool {
			got, found := b.Select(i)
			if !found || got != v || b.Rank(v) != i+1 {
				ok = false
				return false
			}
			i++
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
