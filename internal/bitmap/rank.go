package bitmap

// Rank returns the number of values in the bitmap that are ≤ v. Together with
// Contains it lets a sparse column translate a record id into a dense value
// index: index = Rank(rec) - 1 when Contains(rec).
func (b *Bitmap) Rank(v uint32) int {
	key, low := uint16(v>>16), uint16(v)
	n := 0
	for i, k := range b.keys {
		switch {
		case k < key:
			n += b.containers[i].cardinality()
		case k == key:
			n += containerRank(b.containers[i], low)
			return n
		default:
			return n
		}
	}
	return n
}

// containerRank counts values ≤ v inside a single container.
func containerRank(c container, v uint16) int {
	switch cc := c.(type) {
	case *arrayContainer:
		i, found := cc.indexOf(v)
		if found {
			return i + 1
		}
		return i
	case *bitsetContainer:
		n := 0
		word := int(v >> 6)
		for i := 0; i < word; i++ {
			n += popcount(cc.words[i])
		}
		// Mask off bits above v within its word.
		shift := uint(v&63) + 1
		var mask uint64
		if shift == 64 {
			mask = ^uint64(0)
		} else {
			mask = (uint64(1) << shift) - 1
		}
		n += popcount(cc.words[word] & mask)
		return n
	case *runContainer:
		n := 0
		for _, r := range cc.runs {
			if uint32(r.start) > uint32(v) {
				break
			}
			end := uint32(r.start) + uint32(r.length)
			if uint32(v) >= end {
				n += int(r.length) + 1
			} else {
				n += int(uint32(v)-uint32(r.start)) + 1
				break
			}
		}
		return n
	}
	return 0
}

// Select returns the i-th smallest value (0-based); ok is false when i is out
// of range. It is the inverse of Rank: Select(Rank(v)-1) == v for present v.
func (b *Bitmap) Select(i int) (v uint32, ok bool) {
	if i < 0 {
		return 0, false
	}
	for ci, c := range b.containers {
		card := c.cardinality()
		if i < card {
			high := uint32(b.keys[ci]) << 16
			j := 0
			c.each(func(low uint16) bool {
				if j == i {
					v = high | uint32(low)
					ok = true
					return false
				}
				j++
				return true
			})
			return v, ok
		}
		i -= card
	}
	return 0, false
}
