package bitmap

import (
	"math/rand"
	"testing"
)

// naiveBitset is the ablation baseline: a flat, uncompressed []uint64
// bitset, what the paper calls the "naive uncompressed representation" of a
// bitmap column (§5.1).
type naiveBitset struct {
	words []uint64
}

func newNaiveBitset(n int) *naiveBitset {
	return &naiveBitset{words: make([]uint64, (n+63)/64)}
}

func (b *naiveBitset) set(v uint32) { b.words[v>>6] |= 1 << (v & 63) }

func (b *naiveBitset) and(o *naiveBitset) *naiveBitset {
	out := &naiveBitset{words: make([]uint64, len(b.words))}
	for i := range out.words {
		out.words[i] = b.words[i] & o.words[i]
	}
	return out
}

func (b *naiveBitset) cardinality() int {
	n := 0
	for _, w := range b.words {
		n += popcount(w)
	}
	return n
}

// sparse fixture: 1M-record space, ~0.1% density — the regime of grove's
// edge bitmaps.
func sparseFixture(seed int64) (*Bitmap, *naiveBitset) {
	rng := rand.New(rand.NewSource(seed))
	rb := New()
	nb := newNaiveBitset(1 << 20)
	for i := 0; i < 1000; i++ {
		v := uint32(rng.Intn(1 << 20))
		rb.Add(v)
		nb.set(v)
	}
	rb.RunOptimize()
	return rb, nb
}

func BenchmarkAndRoaringSparse(b *testing.B) {
	x, _ := sparseFixture(1)
	y, _ := sparseFixture(2)
	b.ReportMetric(float64(x.SizeBytes()), "bytes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if x.And(y).Cardinality() > 1000 {
			b.Fatal("impossible")
		}
	}
}

func BenchmarkAndNaiveSparse(b *testing.B) {
	_, x := sparseFixture(1)
	_, y := sparseFixture(2)
	b.ReportMetric(float64(8*len(x.words)), "bytes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if x.and(y).cardinality() > 1000 {
			b.Fatal("impossible")
		}
	}
}

func denseFixture(seed int64) (*Bitmap, *naiveBitset) {
	rng := rand.New(rand.NewSource(seed))
	rb := New()
	nb := newNaiveBitset(1 << 20)
	for i := 0; i < 1<<19; i++ {
		v := uint32(rng.Intn(1 << 20))
		rb.Add(v)
		nb.set(v)
	}
	rb.RunOptimize()
	return rb, nb
}

func BenchmarkAndRoaringDense(b *testing.B) {
	x, _ := denseFixture(1)
	y, _ := denseFixture(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.And(y)
	}
}

func BenchmarkAndNaiveDense(b *testing.B) {
	_, x := denseFixture(1)
	_, y := denseFixture(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.and(y)
	}
}

func BenchmarkAddSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bm := New()
		for v := uint32(0); v < 10000; v++ {
			bm.Add(v)
		}
	}
}

func BenchmarkAddRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	values := make([]uint32, 10000)
	for i := range values {
		values[i] = uint32(rng.Intn(1 << 22))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm := New()
		for _, v := range values {
			bm.Add(v)
		}
	}
}

func BenchmarkAndAll100(b *testing.B) {
	bitmaps := make([]*Bitmap, 100)
	for i := range bitmaps {
		bitmaps[i], _ = sparseFixture(int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AndAll(bitmaps...)
	}
}

func BenchmarkRank(b *testing.B) {
	bm, _ := denseFixture(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Rank(uint32(i) % (1 << 20))
	}
}

func BenchmarkSerialize(b *testing.B) {
	bm, _ := denseFixture(9)
	var buf discardCounter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.n = 0
		if _, err := bm.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(buf.n)
}

type discardCounter struct{ n int64 }

func (d *discardCounter) Write(p []byte) (int, error) {
	d.n += int64(len(p))
	return len(p), nil
}
