package wal

import (
	"os"
	"path/filepath"
	"testing"

	"grove/internal/fsio"
	"grove/internal/graph"
)

// FuzzWALRecord throws arbitrary bytes at the payload decoder: it must never
// panic, and anything it does accept must re-encode and decode to the same
// op — no partially-applied or shape-shifting payloads.
func FuzzWALRecord(f *testing.F) {
	rec := graph.NewRecord()
	if err := rec.SetElement(graph.E("a", "b"), 2); err != nil {
		f.Fatal(err)
	}
	if err := rec.SetElementNamed(graph.E("a", "b"), "cost", 7); err != nil {
		f.Fatal(err)
	}
	rec.AddBareElement(graph.NodeKey("n"))
	seeds := []Op{
		{Kind: OpAddRecord, Record: rec},
		{Kind: OpAppendEdge, Rec: 3, From: "x", To: "y", Measure: "m", Value: 1.5, HasValue: true},
		{Kind: OpAppendEdge, Rec: 0, From: "x", To: "x"},
		{Kind: OpDelete, Rec: 9},
		{Kind: OpUndelete, Rec: 9},
		{Kind: OpTag, Rec: 1, Key: "k", Val: "v"},
	}
	for _, op := range seeds {
		payload, err := op.encodePayload()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(uint8(op.Kind), payload)
	}
	f.Add(uint8(OpAddRecord), []byte{0xff, 0xff, 0xff, 0xff}) // huge element count
	f.Add(uint8(99), []byte{})                                // unknown kind

	f.Fuzz(func(t *testing.T, kind uint8, payload []byte) {
		op, err := decodePayload(Kind(kind), 1, payload)
		if err != nil {
			return // rejected whole: exactly what damage should get
		}
		// Accepted payloads must round-trip stably.
		re, err := op.encodePayload()
		if err != nil {
			t.Fatalf("decoded op failed to re-encode: %v", err)
		}
		op2, err := decodePayload(op.Kind, 1, re)
		if err != nil {
			t.Fatalf("re-encoded payload failed to decode: %v", err)
		}
		if op2.Kind != op.Kind || op2.Rec != op.Rec || op2.From != op.From ||
			op2.To != op.To || op2.Measure != op.Measure || op2.HasValue != op.HasValue ||
			op2.Value != op.Value || op2.Key != op.Key || op2.Val != op.Val {
			t.Fatalf("round trip changed the op: %+v vs %+v", op, op2)
		}
		if (op.Record == nil) != (op2.Record == nil) {
			t.Fatal("round trip changed record presence")
		}
		if op.Record != nil && len(op.Record.Elements()) != len(op2.Record.Elements()) {
			t.Fatalf("round trip changed the record: %v vs %v",
				op.Record.Elements(), op2.Record.Elements())
		}
	})
}

// FuzzWALReplay throws arbitrary bytes at the log scanner as whole files: it
// must never panic and never yield anything but a valid prefix — every
// returned op individually decodable, LSNs a contiguous chain from the
// header's base.
func FuzzWALReplay(f *testing.F) {
	// Seed with a real log so mutations explore near-valid shapes.
	dir, err := os.MkdirTemp("", "grove-walfuzz-")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, FileName)
	l, err := Create(fsio.OS(), path, 1, "gen-000002", 5, Config{Policy: SyncNever})
	if err != nil {
		f.Fatal(err)
	}
	rec := graph.NewRecord()
	if err := rec.SetElement(graph.E("a", "b"), 1); err != nil {
		f.Fatal(err)
	}
	for _, op := range []Op{
		{Kind: OpAddRecord, Record: rec},
		{Kind: OpAppendEdge, From: "a", To: "c", Value: 2, HasValue: true},
		{Kind: OpTag, Key: "k", Val: "v"},
	} {
		if _, err := l.Append(op); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("GROVEWAL"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), FileName)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := Scan(fsio.OS(), p)
		if err != nil {
			t.Fatalf("Scan errored on damage (must describe, not fail): %v", err)
		}
		if !res.HeaderOK {
			if len(res.Ops) != 0 {
				t.Fatalf("ops decoded under a bad header: %d", len(res.Ops))
			}
			return
		}
		want := res.Header.BaseLSN
		for i, op := range res.Ops {
			if op.LSN != want {
				t.Fatalf("op %d LSN %d breaks the chain (want %d)", i, op.LSN, want)
			}
			want++
		}
		if res.NextLSN != want {
			t.Fatalf("NextLSN %d, want %d", res.NextLSN, want)
		}
		if res.GoodSize > res.FileSize || res.GoodSize < 0 {
			t.Fatalf("GoodSize %d out of range (file %d)", res.GoodSize, res.FileSize)
		}
		// A clean scan of the untouched seed must see all three ops.
		if string(data) == string(valid) && len(res.Ops) != 3 {
			t.Fatalf("valid log scanned to %d ops", len(res.Ops))
		}
	})
}
