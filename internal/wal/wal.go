package wal

import (
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"grove/internal/fsio"
)

// castagnoli is the CRC-32C table, the same polynomial the snapshot format
// uses, so one corruption-detection story covers both files.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

const (
	// magic opens every log file.
	magic = "GROVEWAL"
	// formatVersion is bumped on incompatible layout changes.
	formatVersion = 1
	// FileName is the log's name inside a store (or shard) directory.
	FileName = "wal.log"
)

// SyncPolicy selects when Commit turns an acknowledged append into an fsync.
type SyncPolicy int

const (
	// SyncAlways fsyncs on every Commit; concurrent committers are batched
	// onto one fsync (group commit). No acknowledged write is ever lost.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs when at least Config.Interval has elapsed since
	// the previous fsync; a crash loses at most one interval of writes.
	SyncInterval
	// SyncNever leaves fsync to snapshots and the OS; fastest, weakest.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy maps the CLI spelling of a policy to its value.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
	}
}

// DefaultInterval is the fsync cadence SyncInterval uses when Config.Interval
// is unset.
const DefaultInterval = 100 * time.Millisecond

// Config selects the durability/throughput trade-off of a log.
type Config struct {
	Policy SyncPolicy
	// Interval is the minimum spacing between fsyncs under SyncInterval;
	// zero or negative selects DefaultInterval.
	Interval time.Duration
}

func (c Config) interval() time.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	return DefaultInterval
}

// Header is the decoded fixed prologue of a log file. It pins the log to the
// snapshot generation it extends: replay applies the log only over exactly
// that generation, which is what makes checkpointing exactly-once — a log
// pinned to a superseded generation is dead weight, never double-applied.
type Header struct {
	Version uint32
	// Shard is the shard index this log belongs to (0 for a single-shard
	// store).
	Shard uint32
	// BaseLSN is the LSN the first frame after the header must carry. LSNs
	// continue across checkpoints: a reset log restarts empty but numbers
	// from where the previous incarnation stopped.
	BaseLSN uint64
	// Gen is the snapshot generation this log extends ("" for a log created
	// before the store was ever saved — only valid for an empty store).
	Gen string
}

func encodeHeader(h Header) ([]byte, error) {
	e := &enc{}
	e.b = append(e.b, magic...)
	e.u32(h.Version)
	e.u32(h.Shard)
	e.u64(h.BaseLSN)
	if err := e.str(h.Gen); err != nil {
		return nil, err
	}
	e.u32(checksum(e.b))
	return e.b, nil
}

// decodeHeader parses a header from the front of b, returning its byte size.
func decodeHeader(b []byte) (Header, int, error) {
	if len(b) < len(magic) {
		return Header{}, 0, fmt.Errorf("wal: file shorter than the magic string")
	}
	if string(b[:len(magic)]) != magic {
		return Header{}, 0, fmt.Errorf("wal: bad magic %q", b[:len(magic)])
	}
	d := &dec{b: b, off: len(magic)}
	var h Header
	h.Version = d.u32()
	h.Shard = d.u32()
	h.BaseLSN = d.u64()
	h.Gen = d.str()
	end := d.off
	crc := d.u32()
	if d.err != nil {
		return Header{}, 0, fmt.Errorf("wal: truncated header")
	}
	if checksum(b[:end]) != crc {
		return Header{}, 0, fmt.Errorf("wal: header CRC mismatch")
	}
	if h.Version != formatVersion {
		return Header{}, 0, fmt.Errorf("wal: unsupported format version %d (have %d)", h.Version, formatVersion)
	}
	return h, d.off, nil
}

// Stats is a point-in-time snapshot of a log's counters, read without
// blocking appenders.
type Stats struct {
	// Appends counts frames written; AppendedBytes the bytes they occupied.
	Appends, AppendedBytes int64
	// Fsyncs counts physical fsync calls (group commit makes this smaller
	// than Appends under SyncAlways with concurrency).
	Fsyncs int64
	// Resets counts checkpoint truncations of this log.
	Resets int64
	// BaseLSN/NextLSN bound the live frames: the log holds LSNs
	// [BaseLSN, NextLSN).
	BaseLSN, NextLSN uint64
	// Synced is the highest LSN known durable (fsync-acknowledged).
	Synced uint64
	// Gen is the snapshot generation the log currently extends.
	Gen string
}

// Log is an open write-ahead log for one shard. Append serializes a frame
// into the file; Commit makes it durable per the configured policy. A Log is
// safe for concurrent use.
//
// The error model is a sticky latch: the first failed write or fsync poisons
// the log — every later Append fails immediately, so the on-disk file is
// always a clean prefix of the acknowledged ops. Callers keep applying ops
// in memory (availability) and surface the latched error to the operator.
type Log struct {
	fs    fsio.FS
	path  string
	shard uint32
	cfg   Config

	// mu serializes frame writes and the lsn/size bookkeeping.
	mu      sync.Mutex
	f       fsio.File
	gen     string
	baseLSN uint64
	nextLSN uint64 // LSN the next Append will claim
	size    int64
	failed  error // sticky write/fsync failure

	// syncMu guards the group-commit state: one goroutine fsyncs while the
	// rest wait on cond and re-check synced.
	syncMu   sync.Mutex
	cond     *sync.Cond
	synced   uint64 // highest LSN known durable
	syncing  bool
	lastSync time.Time

	appends atomic.Int64
	bytes   atomic.Int64
	fsyncs  atomic.Int64
	resets  atomic.Int64
}

// Create makes a fresh log at path (truncating any prior file), pinned to
// gen and numbering from base. The header is written and fsynced before
// Create returns, so a log that exists at all has a readable identity.
func Create(fs fsio.FS, path string, shard uint32, gen string, base uint64, cfg Config) (*Log, error) {
	l := newLog(fs, path, shard, cfg)
	if err := l.createLocked(gen, base); err != nil {
		return nil, err
	}
	l.synced = base - 1
	return l, nil
}

// OpenAt attaches to an existing, already-scanned log for appending. The
// torn tail past scan.GoodSize (if any) is truncated away first; appending
// resumes at scan.NextLSN. The caller has already verified the header pins
// the generation it expects.
func OpenAt(fs fsio.FS, path string, scan *ScanResult, cfg Config) (*Log, error) {
	l := newLog(fs, path, scan.Header.Shard, cfg)
	if scan.TornBytes() > 0 {
		if err := fs.Truncate(path, scan.GoodSize); err != nil {
			return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
	}
	f, err := fs.OpenAppend(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s for append: %w", path, err)
	}
	l.f = f
	l.gen = scan.Header.Gen
	l.baseLSN = scan.Header.BaseLSN
	l.nextLSN = scan.NextLSN
	l.size = scan.GoodSize
	// Frames read back from disk are as durable as they will ever be.
	l.synced = scan.NextLSN - 1
	return l, nil
}

func newLog(fs fsio.FS, path string, shard uint32, cfg Config) *Log {
	l := &Log{fs: fs, path: path, shard: shard, cfg: cfg}
	l.cond = sync.NewCond(&l.syncMu)
	return l
}

// createLocked (re)creates the file with a fresh header. Callers hold no
// locks on a new Log; Reset holds mu.
func (l *Log) createLocked(gen string, base uint64) error {
	hdr, err := encodeHeader(Header{Version: formatVersion, Shard: l.shard, BaseLSN: base, Gen: gen})
	if err != nil {
		return err
	}
	if l.f != nil {
		l.f.Close() //grovevet:ignore droppederr the handle is being replaced; the new header write surfaces any real failure
		l.f = nil
	}
	f, err := l.fs.Create(l.path)
	if err != nil {
		return fmt.Errorf("wal: create %s: %w", l.path, err)
	}
	if _, err := f.Write(hdr); err != nil {
		f.Close() //grovevet:ignore droppederr the write error is already being returned
		return fmt.Errorf("wal: write header of %s: %w", l.path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close() //grovevet:ignore droppederr the sync error is already being returned
		return fmt.Errorf("wal: sync header of %s: %w", l.path, err)
	}
	l.f = f
	l.gen = gen
	l.baseLSN = base
	l.nextLSN = base
	l.size = int64(len(hdr))
	l.failed = nil
	return nil
}

// Append serializes op into the file and returns its LSN. The frame is in
// the OS buffer cache but NOT yet durable — call Commit(lsn) to make it so
// under the configured policy. Append never blocks on an fsync.
func (l *Log) Append(op Op) (uint64, error) {
	payload, err := op.encodePayload()
	if err != nil {
		return 0, err
	}
	l.mu.Lock()
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return 0, err
	}
	lsn := l.nextLSN
	frame, err := encodeFrame(op.Kind, lsn, payload)
	if err != nil {
		l.mu.Unlock()
		return 0, err
	}
	//grovevet:ignore lockorder the file write must happen under mu: frame order in the file must equal LSN order
	if _, err := l.f.Write(frame); err != nil {
		l.failed = fmt.Errorf("wal: append to %s: %w", l.path, err)
		err := l.failed
		l.mu.Unlock()
		return 0, err
	}
	l.nextLSN++
	l.size += int64(len(frame))
	l.mu.Unlock()
	l.appends.Add(1)
	l.bytes.Add(int64(len(frame)))
	return lsn, nil
}

// Commit makes the append that returned lsn durable according to the
// configured policy. Under SyncAlways concurrent committers are batched: one
// of them performs the fsync and the rest observe it covered their LSN.
func (l *Log) Commit(lsn uint64) error {
	switch l.cfg.Policy {
	case SyncNever:
		return nil
	case SyncInterval:
		l.syncMu.Lock()
		due := time.Since(l.lastSync) >= l.cfg.interval()
		l.syncMu.Unlock()
		if !due {
			return nil
		}
		return l.syncTo(lsn)
	default:
		return l.syncTo(lsn)
	}
}

// Sync forces an fsync covering every append so far, regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	target := l.nextLSN - 1
	l.mu.Unlock()
	return l.syncTo(target)
}

// syncTo blocks until LSNs up to lsn are durable, performing the fsync
// itself if no other goroutine is already doing one (group commit).
func (l *Log) syncTo(lsn uint64) error {
	l.syncMu.Lock()
	for {
		if l.synced >= lsn {
			l.syncMu.Unlock()
			return nil
		}
		if !l.syncing {
			break
		}
		l.cond.Wait()
	}
	l.syncing = true
	l.syncMu.Unlock()

	// Everything appended before this point rides on this one fsync.
	l.mu.Lock()
	target := l.nextLSN - 1
	f, ferr := l.f, l.failed
	l.mu.Unlock()
	var err error
	switch {
	case ferr != nil:
		err = ferr
	default:
		//grovevet:ignore lockorder fsync intentionally happens outside mu so appenders are never blocked on the disk
		if err = f.Sync(); err != nil {
			err = fmt.Errorf("wal: fsync %s: %w", l.path, err)
			l.latch(err)
		} else {
			l.fsyncs.Add(1)
		}
	}

	l.syncMu.Lock()
	if err == nil {
		l.synced = target
		l.lastSync = time.Now()
	}
	l.syncing = false
	l.cond.Broadcast()
	l.syncMu.Unlock()
	return err
}

// latch records a write/fsync failure so every later Append refuses.
func (l *Log) latch(err error) {
	l.mu.Lock()
	if l.failed == nil {
		l.failed = err
	}
	l.mu.Unlock()
}

// Reset truncates the log after a successful checkpoint: the file is
// recreated with a header pinned to gen and a BaseLSN continuing the
// sequence. Must only be called after the checkpoint's commit point (the
// CURRENT flip / manifest write), with ingest stalled.
func (l *Log) Reset(gen string) error {
	//grovevet:ignore lockorder the file swap must happen under mu: ingest is stalled by the checkpoint and no append may interleave with the close/recreate
	l.mu.Lock()
	base := l.nextLSN
	err := l.createLocked(gen, base)
	if err != nil {
		// The old handle is gone and the new file may be missing or torn; a
		// torn header fails its CRC on the next load, so the log degrades to
		// "absent" — the snapshot alone carries the state.
		l.failed = fmt.Errorf("wal: reset %s: %w", l.path, err)
		err = l.failed
	}
	l.mu.Unlock()
	if err == nil {
		l.resets.Add(1)
		l.syncMu.Lock()
		l.synced = base - 1
		l.syncMu.Unlock()
	}
	return err
}

// Err returns the sticky failure, if any: non-nil means the log stopped
// recording at some prefix and the store is running memory-only past it.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// NextLSN returns the LSN the next append will claim.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	base, next, gen := l.baseLSN, l.nextLSN, l.gen
	l.mu.Unlock()
	l.syncMu.Lock()
	synced := l.synced
	l.syncMu.Unlock()
	return Stats{
		Appends:       l.appends.Load(),
		AppendedBytes: l.bytes.Load(),
		Fsyncs:        l.fsyncs.Load(),
		Resets:        l.resets.Load(),
		BaseLSN:       base,
		NextLSN:       next,
		Synced:        synced,
		Gen:           gen,
	}
}

// Close fsyncs and closes the file. The Log is unusable afterwards.
func (l *Log) Close() error {
	//grovevet:ignore lockorder final flush: Close must not race a late append, so waiting out the fsync under mu is the point
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	var err error
	if l.failed == nil {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
