package wal

import (
	"fmt"
	"io"

	"grove/internal/fsio"
)

// ScanResult describes everything a scan learned about a log file: its
// header, the decoded valid prefix, and where (and why) the prefix ends.
type ScanResult struct {
	Path   string
	Header Header
	// HeaderOK is false when the file exists but its header is missing or
	// corrupt — the log carries no usable identity and is treated as absent
	// (its frames cannot be trusted to extend any particular snapshot).
	HeaderOK bool
	// HeaderErr explains a false HeaderOK.
	HeaderErr string
	// Ops is the valid prefix, in LSN order.
	Ops []Op
	// NextLSN is one past the last valid frame (== Header.BaseLSN for an
	// empty log).
	NextLSN uint64
	// GoodSize is the byte length of header + valid prefix; FileSize the
	// whole file. FileSize > GoodSize means a torn tail.
	GoodSize, FileSize int64
	// TornReason says what ended the prefix early ("" when the file ends
	// exactly at a frame boundary).
	TornReason string
}

// TornBytes is the length of the unusable tail.
func (r *ScanResult) TornBytes() int64 { return r.FileSize - r.GoodSize }

// Missing reports that no log file exists at all (Scan returns a non-nil
// result for this case so callers can treat absent and corrupt uniformly).
func (r *ScanResult) Missing() bool { return r.FileSize == 0 && !r.HeaderOK && r.HeaderErr == "" }

// Scan reads the log at path and decodes its valid prefix. It returns an
// error only for environmental failures (permission, I/O); a missing file,
// a corrupt header, torn frames — every state a crash can produce — come
// back as a describable ScanResult instead. Scan never mutates the file.
func Scan(fs fsio.FS, path string) (*ScanResult, error) {
	res := &ScanResult{Path: path}
	if _, err := fs.Stat(path); err != nil {
		// Stat errors other than absence surface when Open fails below;
		// keeping the single existence probe here keeps the fault-op count
		// of the replay path small and deterministic.
		return res, nil
	}
	f, err := fs.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	b, err := io.ReadAll(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("wal: read %s: %w", path, err)
	}
	res.FileSize = int64(len(b))
	h, hlen, err := decodeHeader(b)
	if err != nil {
		res.HeaderErr = err.Error()
		return res, nil
	}
	res.Header = h
	res.HeaderOK = true
	res.NextLSN = h.BaseLSN
	res.GoodSize = int64(hlen)
	off := hlen
	for off < len(b) {
		op, size, ok, reason := decodeFrame(b[off:], res.NextLSN)
		if !ok {
			res.TornReason = reason
			break
		}
		res.Ops = append(res.Ops, op)
		res.NextLSN++
		off += size
		res.GoodSize = int64(off)
	}
	return res, nil
}

// Applier is the surface replay drives: the shard layer implements it on top
// of the column store so a replayed op flows through exactly the same code
// path as a live one (including incremental view maintenance).
type Applier interface {
	ApplyAdd(op Op) error
	ApplyAppendEdge(op Op) error
	ApplyDelete(op Op) error
	ApplyUndelete(op Op) error
	ApplyTag(op Op) error
}

// Apply routes one decoded op to the applier.
func Apply(a Applier, op Op) error {
	switch op.Kind {
	case OpAddRecord:
		return a.ApplyAdd(op)
	case OpAppendEdge:
		return a.ApplyAppendEdge(op)
	case OpDelete:
		return a.ApplyDelete(op)
	case OpUndelete:
		return a.ApplyUndelete(op)
	case OpTag:
		return a.ApplyTag(op)
	default:
		return fmt.Errorf("wal: cannot apply unknown op kind %d", op.Kind)
	}
}
