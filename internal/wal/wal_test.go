package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"grove/internal/fsio"
	"grove/internal/graph"
)

// testRecord builds a record exercising every payload shape: default
// measures, named measures, and a bare element.
func testRecord(t *testing.T) *graph.Record {
	t.Helper()
	rec := graph.NewRecord()
	if err := rec.SetElement(graph.E("a", "b"), 3.5); err != nil {
		t.Fatal(err)
	}
	if err := rec.SetElement(graph.NodeKey("n"), 1); err != nil {
		t.Fatal(err)
	}
	if err := rec.SetElementNamed(graph.E("a", "b"), "cost", 9); err != nil {
		t.Fatal(err)
	}
	rec.AddBareElement(graph.E("b", "c"))
	return rec
}

// testOps is one op of every kind, in a replayable order.
func testOps(t *testing.T) []Op {
	t.Helper()
	return []Op{
		{Kind: OpAddRecord, Record: testRecord(t)},
		{Kind: OpAppendEdge, Rec: 0, From: "c", To: "d", Measure: "", Value: 2, HasValue: true},
		{Kind: OpAppendEdge, Rec: 0, From: "d", To: "e", Measure: "cost", Value: 4, HasValue: true},
		{Kind: OpTag, Rec: 0, Key: "type", Val: "fast"},
		{Kind: OpDelete, Rec: 0},
		{Kind: OpUndelete, Rec: 0},
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Version: formatVersion, Shard: 3, BaseLSN: 17, Gen: "gen-000004"}
	b, err := encodeHeader(h)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := decodeHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) || got != h {
		t.Fatalf("decoded %+v (%d bytes), want %+v (%d)", got, n, h, len(b))
	}

	// Every single-bit corruption and every truncation must be rejected —
	// never misread as a different valid header.
	for i := range b {
		bad := append([]byte(nil), b...)
		bad[i] ^= 0x01
		if dh, _, err := decodeHeader(bad); err == nil && dh != h {
			t.Fatalf("bit flip at %d decoded silently to %+v", i, dh)
		}
	}
	for n := 0; n < len(b); n++ {
		if _, _, err := decodeHeader(b[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded silently", n)
		}
	}
	if _, err := encodeHeader(Header{Gen: string(make([]byte, maxStringLen+1))}); err == nil {
		t.Fatal("oversized generation string accepted")
	}
}

func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName)
	l, err := Create(fsio.OS(), path, 2, "gen-000001", 1, Config{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	ops := testOps(t)
	for i, op := range ops {
		lsn, err := l.Append(op)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("op %d got LSN %d", i, lsn)
		}
		if err := l.Commit(lsn); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Appends != int64(len(ops)) || st.Synced != uint64(len(ops)) || st.NextLSN != uint64(len(ops)+1) {
		t.Fatalf("stats = %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := Scan(fsio.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HeaderOK || res.Header.Gen != "gen-000001" || res.Header.Shard != 2 || res.Header.BaseLSN != 1 {
		t.Fatalf("header = %+v (ok=%v)", res.Header, res.HeaderOK)
	}
	if res.TornBytes() != 0 || res.NextLSN != uint64(len(ops)+1) || len(res.Ops) != len(ops) {
		t.Fatalf("scan = %+v", res)
	}
	for i, got := range res.Ops {
		want := ops[i]
		if got.Kind != want.Kind || got.LSN != uint64(i+1) {
			t.Fatalf("op %d = %+v, want kind %v", i, got, want.Kind)
		}
	}
	// The add-record payload round-trips the record exactly.
	rec := res.Ops[0].Record
	want := testRecord(t)
	if len(rec.Elements()) != len(want.Elements()) {
		t.Fatalf("record elements = %v, want %v", rec.Elements(), want.Elements())
	}
	for _, k := range want.Elements() {
		if rec.Measure(k) != want.Measure(k) {
			t.Fatalf("element %v measure = %v, want %v", k, rec.Measure(k), want.Measure(k))
		}
	}
	if m := rec.MeasureNamed(graph.E("a", "b"), "cost"); !m.Valid || m.Value != 9 {
		t.Fatalf("named measure = %+v", m)
	}
	// The append-edge ops kept their fields.
	if e := res.Ops[1]; e.From != "c" || e.To != "d" || e.Measure != "" || !e.HasValue || e.Value != 2 {
		t.Fatalf("append-edge = %+v", e)
	}
	if e := res.Ops[3]; e.Key != "type" || e.Val != "fast" {
		t.Fatalf("tag = %+v", e)
	}
}

// TestScanPrefixUnderDamage feeds Scan every truncation and every single-bit
// corruption of a valid log: it must always return a valid strict prefix of
// the original ops — never an error, never a partial or altered op.
func TestScanPrefixUnderDamage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, FileName)
	l, err := Create(fsio.OS(), path, 0, "gen-000001", 1, Config{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	ops := testOps(t)
	for _, op := range ops {
		if _, err := l.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(label string, mutated []byte) {
		t.Helper()
		p := filepath.Join(dir, "mutated.log")
		if err := os.WriteFile(p, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := Scan(fsio.OS(), p)
		if err != nil {
			t.Fatalf("%s: Scan errored: %v", label, err)
		}
		if !res.HeaderOK {
			return // damaged header: the whole log is ignored, fine
		}
		if len(res.Ops) > len(ops) {
			t.Fatalf("%s: scan invented ops: %d > %d", label, len(res.Ops), len(ops))
		}
		for i, got := range res.Ops {
			if got.Kind != ops[i].Kind || got.LSN != uint64(i+1) {
				t.Fatalf("%s: op %d = kind %v lsn %d, want kind %v lsn %d",
					label, i, got.Kind, got.LSN, ops[i].Kind, i+1)
			}
		}
		if res.GoodSize > int64(len(mutated)) {
			t.Fatalf("%s: GoodSize %d exceeds file size %d", label, res.GoodSize, len(mutated))
		}
	}

	for n := 0; n <= len(full); n++ {
		check("truncate", full[:n])
	}
	for i := 0; i < len(full); i++ {
		bad := append([]byte(nil), full...)
		bad[i] ^= 0x40
		check("bitflip", bad)
	}
	// Garbage appended past a clean log is a torn tail, not new ops.
	check("garbage-tail", append(append([]byte(nil), full...), 0xde, 0xad, 0xbe, 0xef))
}

func TestOpenAtTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName)
	l, err := Create(fsio.OS(), path, 0, "gen-000001", 1, Config{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range testOps(t)[:3] {
		lsn, err := l.Append(op)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: half a frame of garbage at the tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x21, 0x00, 0x00, 0x00, 0x99}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	scan, err := Scan(fsio.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	if scan.TornBytes() != 5 || len(scan.Ops) != 3 {
		t.Fatalf("scan = %+v", scan)
	}
	l2, err := OpenAt(fsio.OS(), path, scan, Config{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != scan.GoodSize {
		t.Fatalf("torn tail not truncated: size %d, want %d (err %v)", fi.Size(), scan.GoodSize, err)
	}
	lsn, err := l2.Append(Op{Kind: OpDelete, Rec: 1})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 4 {
		t.Fatalf("resume LSN = %d, want 4", lsn)
	}
	if err := l2.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := Scan(fsio.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	if res.TornBytes() != 0 || len(res.Ops) != 4 || res.NextLSN != 5 {
		t.Fatalf("rescan = %+v", res)
	}
}

func TestResetContinuesLSNs(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName)
	l, err := Create(fsio.OS(), path, 0, "gen-000001", 1, Config{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(Op{Kind: OpDelete, Rec: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset("gen-000002"); err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append(Op{Kind: OpUndelete, Rec: 0})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 4 {
		t.Fatalf("post-reset LSN = %d, want 4 (LSNs continue across checkpoints)", lsn)
	}
	if err := l.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Resets != 1 || st.BaseLSN != 4 || st.Gen != "gen-000002" {
		t.Fatalf("stats after reset = %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := Scan(fsio.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Header.Gen != "gen-000002" || res.Header.BaseLSN != 4 || len(res.Ops) != 1 || res.Ops[0].LSN != 4 {
		t.Fatalf("rescan after reset = %+v", res)
	}
}

// TestStickyLatch: the first failed write poisons the log; later appends fail
// fast and the on-disk file stays a clean prefix.
func TestStickyLatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName)
	fault := fsio.NewFaultFS(fsio.OS())
	l, err := Create(fault, path, 0, "gen-000001", 1, Config{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(Op{Kind: OpDelete, Rec: 0}); err != nil {
		t.Fatal(err)
	}
	fault.FailAt(1) // next fsio op (the frame write) fails
	if _, err := l.Append(Op{Kind: OpDelete, Rec: 1}); !errors.Is(err, fsio.ErrInjected) {
		t.Fatalf("append under fault = %v, want injected", err)
	}
	fault.FailAt(0)
	if _, err := l.Append(Op{Kind: OpDelete, Rec: 2}); err == nil {
		t.Fatal("append after latch succeeded")
	}
	if l.Err() == nil {
		t.Fatal("Err() nil after latched failure")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := Scan(fsio.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	// Depending on where the torn write cut, the file holds op 1 and possibly
	// a torn fragment of op 2 — never op 3.
	if len(res.Ops) > 2 {
		t.Fatalf("ops past the latch reached the disk: %+v", res)
	}
	if len(res.Ops) >= 1 && (res.Ops[0].Rec != 0 || res.Ops[0].LSN != 1) {
		t.Fatalf("first op corrupted: %+v", res.Ops[0])
	}
}

// TestGroupCommit hammers one SyncAlways log from many goroutines; every
// Commit must return with its LSN durable, batching notwithstanding.
func TestGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName)
	l, err := Create(fsio.OS(), path, 0, "gen-000001", 1, Config{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errc := make(chan error, writers*perWriter)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				lsn, err := l.Append(Op{Kind: OpDelete, Rec: uint32(w*perWriter + i)})
				if err != nil {
					errc <- err
					return
				}
				if err := l.Commit(lsn); err != nil {
					errc <- err
					return
				}
				if st := l.Stats(); st.Synced < lsn {
					errc <- errors.New("Commit returned before its LSN was synced")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appends != writers*perWriter || st.Synced != uint64(writers*perWriter) {
		t.Fatalf("stats = %+v", st)
	}
	if st.Fsyncs < 1 || st.Fsyncs > st.Appends+1 {
		t.Fatalf("fsyncs = %d for %d appends", st.Fsyncs, st.Appends)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := Scan(fsio.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ops) != writers*perWriter || res.TornBytes() != 0 {
		t.Fatalf("scan = %d ops, torn %d", len(res.Ops), res.TornBytes())
	}
}

func TestSyncNeverAndForcedSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName)
	l, err := Create(fsio.OS(), path, 0, "g", 1, Config{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append(Op{Kind: OpDelete, Rec: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Fsyncs != 0 { // the header's sync is not a commit fsync
		t.Fatalf("fsyncs under never = %d", st.Fsyncs)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Fsyncs != 1 || st.Synced != lsn {
		t.Fatalf("after forced sync: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: %v, %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestScanMissing(t *testing.T) {
	res, err := Scan(fsio.OS(), filepath.Join(t.TempDir(), FileName))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Missing() || res.HeaderOK || len(res.Ops) != 0 {
		t.Fatalf("scan of absent file = %+v", res)
	}
}

func TestFrameRejectsOversizedPayload(t *testing.T) {
	if _, err := encodeFrame(OpDelete, 1, make([]byte, maxFrameLen)); err == nil {
		t.Fatal("oversized frame accepted")
	}
	op := Op{Kind: OpTag, Rec: 0, Key: string(bytes.Repeat([]byte("k"), maxStringLen+1)), Val: "v"}
	if _, err := op.encodePayload(); err == nil {
		t.Fatal("oversized tag key accepted")
	}
}
