// Package wal is grove's write-ahead log: an append-only, CRC-framed record
// of the mutations applied to one shard since its last snapshot. The log is
// the durability gap-filler between generational saves — a crash loses at
// most the ops after the last acknowledged fsync, and `Load` replays the
// surviving prefix atop the snapshot generation the log's header pins.
//
// File layout:
//
//	header:  magic | version | shard | baseLSN | gen | crc32c
//	frame*:  len | crc32c(body) | body{kind, lsn, payload}
//
// Every frame carries its own CRC and a log sequence number that must be
// exactly one past its predecessor's; the first frame that is short, fails
// its CRC, or breaks the LSN chain ends the valid prefix — everything after
// it is a torn tail from a crash mid-write and is truncated on reattach.
// All I/O goes through internal/fsio so the crash sweep can fail every
// single operation.
package wal

import (
	"fmt"
	"math"

	"grove/internal/graph"
)

// Kind identifies the mutation a log frame carries.
type Kind uint8

const (
	// OpAddRecord appends a whole graph record (elements + measures).
	OpAddRecord Kind = 1
	// OpAppendEdge adds one element (edge or node) with an optional measure
	// to an existing record.
	OpAppendEdge Kind = 2
	// OpDelete tombstones a record.
	OpDelete Kind = 3
	// OpUndelete clears a record's tombstone.
	OpUndelete Kind = 4
	// OpTag sets a tag key/value on a record.
	OpTag Kind = 5
)

func (k Kind) String() string {
	switch k {
	case OpAddRecord:
		return "add-record"
	case OpAppendEdge:
		return "append-edge"
	case OpDelete:
		return "delete"
	case OpUndelete:
		return "undelete"
	case OpTag:
		return "tag"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Op is one logged mutation. Payloads carry element *names*, not registry
// edge ids: ids are assigned densely in first-use order, so replaying shards
// sequentially reassigns them deterministically without logging the registry.
type Op struct {
	Kind Kind
	// LSN is assigned by Log.Append and recovered by the decoder.
	LSN uint64
	// Rec is the shard-local record id (every kind except OpAddRecord).
	Rec uint32
	// Record is the full record for OpAddRecord.
	Record *graph.Record
	// From, To, Measure, Value, HasValue describe an OpAppendEdge element;
	// Measure "" is the default measure, HasValue false a bare element.
	From, To string
	Measure  string
	Value    float64
	HasValue bool
	// Key, Val are the OpTag pair.
	Key, Val string
}

const (
	// maxFrameLen bounds a frame body; anything larger is treated as a torn
	// tail rather than trusted as an allocation size.
	maxFrameLen = 16 << 20
	// frameHeadLen is the fixed prefix of a frame: u32 length + u32 CRC.
	frameHeadLen = 8
	// frameBodyMin is the smallest body: u8 kind + u64 lsn, empty payload.
	frameBodyMin = 9
	// maxStringLen bounds any single string in a payload (u16 length).
	maxStringLen = 1<<16 - 1
)

// enc is a little-endian append-only byte builder for payloads and frames.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u16(v uint16) { e.b = append(e.b, byte(v), byte(v>>8)) }
func (e *enc) u32(v uint32) {
	e.b = append(e.b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func (e *enc) u64(v uint64) {
	e.u32(uint32(v))
	e.u32(uint32(v >> 32))
}
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) str(s string) error {
	if len(s) > maxStringLen {
		return fmt.Errorf("wal: string of %d bytes exceeds the %d-byte payload limit", len(s), maxStringLen)
	}
	e.u16(uint16(len(s)))
	e.b = append(e.b, s...)
	return nil
}

// dec is the matching bounds-checked reader. The first out-of-bounds access
// latches err; callers check err once at the end.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("wal: truncated payload reading %s at offset %d", what, d.off)
	}
}

func (d *dec) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail("u8")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u16() uint16 {
	if d.err != nil || d.off+2 > len(d.b) {
		d.fail("u16")
		return 0
	}
	v := uint16(d.b[d.off]) | uint16(d.b[d.off+1])<<8
	d.off += 2
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail("u32")
		return 0
	}
	v := uint32(d.b[d.off]) | uint32(d.b[d.off+1])<<8 | uint32(d.b[d.off+2])<<16 | uint32(d.b[d.off+3])<<24
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	lo := d.u32()
	hi := d.u32()
	return uint64(lo) | uint64(hi)<<32
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) str() string {
	n := int(d.u16())
	if d.err != nil || d.off+n > len(d.b) {
		d.fail("string")
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

// encodePayload serializes the op body (everything after kind+lsn).
func (o *Op) encodePayload() ([]byte, error) {
	e := &enc{}
	switch o.Kind {
	case OpAddRecord:
		if o.Record == nil {
			return nil, fmt.Errorf("wal: add-record op without a record")
		}
		elems := o.Record.Elements()
		names := o.Record.MeasureNames()
		e.u32(uint32(len(elems)))
		for _, k := range elems {
			if err := e.str(k.From); err != nil {
				return nil, err
			}
			if err := e.str(k.To); err != nil {
				return nil, err
			}
			m := o.Record.Measure(k)
			if m.Valid {
				e.u8(1)
				e.f64(m.Value)
			} else {
				e.u8(0)
			}
			// Count first, then emit: named measures are sparse per element.
			var n uint16
			for _, name := range names {
				if o.Record.MeasureNamed(k, name).Valid {
					n++
				}
			}
			e.u16(n)
			for _, name := range names {
				if nm := o.Record.MeasureNamed(k, name); nm.Valid {
					if err := e.str(name); err != nil {
						return nil, err
					}
					e.f64(nm.Value)
				}
			}
		}
	case OpAppendEdge:
		e.u32(o.Rec)
		if err := e.str(o.From); err != nil {
			return nil, err
		}
		if err := e.str(o.To); err != nil {
			return nil, err
		}
		if err := e.str(o.Measure); err != nil {
			return nil, err
		}
		if o.HasValue {
			e.u8(1)
			e.f64(o.Value)
		} else {
			e.u8(0)
		}
	case OpDelete, OpUndelete:
		e.u32(o.Rec)
	case OpTag:
		e.u32(o.Rec)
		if err := e.str(o.Key); err != nil {
			return nil, err
		}
		if err := e.str(o.Val); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("wal: cannot encode unknown op kind %d", o.Kind)
	}
	return e.b, nil
}

// decodePayload parses a payload for kind into op. It either fully succeeds
// or returns an error with op untouched semantically — a partial op is never
// handed to the caller.
func decodePayload(kind Kind, lsn uint64, payload []byte) (Op, error) {
	op := Op{Kind: kind, LSN: lsn}
	d := &dec{b: payload}
	switch kind {
	case OpAddRecord:
		n := int(d.u32())
		// Each element needs at least from+to lengths, a flag byte and a
		// named-measure count: 7 bytes. Reject counts the payload cannot hold
		// before allocating anything.
		if d.err == nil && n > (len(payload)-d.off)/7+1 {
			return Op{}, fmt.Errorf("wal: add-record claims %d elements in a %d-byte payload", n, len(payload))
		}
		rec := graph.NewRecord()
		for i := 0; i < n && d.err == nil; i++ {
			from := d.str()
			to := d.str()
			k := graph.E(from, to)
			if d.u8() == 1 {
				if err := rec.SetElement(k, d.f64()); err != nil {
					return Op{}, err
				}
			} else {
				rec.AddBareElement(k)
			}
			named := int(d.u16())
			for j := 0; j < named && d.err == nil; j++ {
				name := d.str()
				v := d.f64()
				if d.err != nil {
					break
				}
				if name == graph.DefaultMeasure {
					return Op{}, fmt.Errorf("wal: add-record element %s names the default measure explicitly", k)
				}
				if err := rec.SetElementNamed(k, name, v); err != nil {
					return Op{}, err
				}
			}
		}
		op.Record = rec
	case OpAppendEdge:
		op.Rec = d.u32()
		op.From = d.str()
		op.To = d.str()
		op.Measure = d.str()
		op.HasValue = d.u8() == 1
		if op.HasValue {
			op.Value = d.f64()
			if d.err == nil && (math.IsNaN(op.Value) || math.IsInf(op.Value, 0)) {
				return Op{}, fmt.Errorf("wal: append-edge measure must be finite, got %v", op.Value)
			}
		}
	case OpDelete, OpUndelete:
		op.Rec = d.u32()
	case OpTag:
		op.Rec = d.u32()
		op.Key = d.str()
		op.Val = d.str()
		if d.err == nil && op.Key == "" {
			return Op{}, fmt.Errorf("wal: tag op with empty key")
		}
	default:
		return Op{}, fmt.Errorf("wal: unknown op kind %d", kind)
	}
	if d.err != nil {
		return Op{}, d.err
	}
	if d.off != len(payload) {
		return Op{}, fmt.Errorf("wal: %d trailing bytes after %s payload", len(payload)-d.off, kind)
	}
	return op, nil
}

// encodeFrame wraps a payload in the on-disk frame: length, CRC-32C of the
// body, then the body (kind, lsn, payload).
func encodeFrame(kind Kind, lsn uint64, payload []byte) ([]byte, error) {
	bodyLen := frameBodyMin + len(payload)
	if bodyLen > maxFrameLen {
		return nil, fmt.Errorf("wal: frame body of %d bytes exceeds the %d-byte limit", bodyLen, maxFrameLen)
	}
	e := &enc{b: make([]byte, 0, frameHeadLen+bodyLen)}
	e.u32(uint32(bodyLen))
	e.u32(0) // CRC placeholder
	e.u8(uint8(kind))
	e.u64(lsn)
	e.b = append(e.b, payload...)
	crc := checksum(e.b[frameHeadLen:])
	e.b[4] = byte(crc)
	e.b[5] = byte(crc >> 8)
	e.b[6] = byte(crc >> 16)
	e.b[7] = byte(crc >> 24)
	return e.b, nil
}

// decodeFrame parses the frame starting at b[0]. It returns the decoded op
// and the total frame size. ok=false means the bytes do not contain a whole,
// checksum-valid, decodable frame — the caller treats that point as the torn
// tail. reason explains what broke for inspection tooling.
func decodeFrame(b []byte, wantLSN uint64) (op Op, size int, ok bool, reason string) {
	if len(b) < frameHeadLen {
		return Op{}, 0, false, "short frame header"
	}
	d := &dec{b: b}
	bodyLen := int(d.u32())
	crc := d.u32()
	if bodyLen < frameBodyMin || bodyLen > maxFrameLen {
		return Op{}, 0, false, fmt.Sprintf("implausible frame length %d", bodyLen)
	}
	if len(b) < frameHeadLen+bodyLen {
		return Op{}, 0, false, "short frame body"
	}
	body := b[frameHeadLen : frameHeadLen+bodyLen]
	if checksum(body) != crc {
		return Op{}, 0, false, "frame CRC mismatch"
	}
	kind := Kind(body[0])
	bd := &dec{b: body, off: 1}
	lsn := bd.u64()
	if lsn != wantLSN {
		return Op{}, 0, false, fmt.Sprintf("LSN %d breaks the chain (want %d)", lsn, wantLSN)
	}
	op, err := decodePayload(kind, lsn, body[bd.off:])
	if err != nil {
		return Op{}, 0, false, err.Error()
	}
	return op, frameHeadLen + bodyLen, true, ""
}
