package fsio

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// ErrInjected is the error every injected fault returns. Tests distinguish a
// deliberate fault from a real filesystem failure with errors.Is.
var ErrInjected = errors.New("fsio: injected fault")

// FaultFS wraps an inner FS and deterministically fails its operations, with
// crash semantics: once the armed operation has failed, every subsequent
// operation fails too — modelling a process that died mid-sequence and
// issued no further I/O. The k-th operation (1-based, counted across every
// FS and File method) is the fault point; sweeping k over the full operation
// count of a code path exercises a crash at every step of it.
//
// With torn writes enabled, the failing operation — when it is a Write —
// first hands a prefix of the buffer to the inner file before erroring, so
// the test also covers partially persisted buffers, not just cleanly missing
// ones.
//
// FaultFS is safe for concurrent use; the operation counter is one shared
// sequence across goroutines.
type FaultFS struct {
	inner FS

	mu      sync.Mutex
	ops     int64 // operations observed so far
	failAt  int64 // 1-based op index to fail; 0 = never
	crashed bool  // latch: set when the fault fires, fails everything after
	torn    bool  // the failing Write persists half its buffer first
	log     []string
}

// NewFaultFS wraps inner with an unarmed fault injector (all operations pass
// through until FailAt arms it).
func NewFaultFS(inner FS) *FaultFS { return &FaultFS{inner: inner} }

// FailAt arms the injector to fail the k-th operation from now on (1-based)
// and every operation after it. k ≤ 0 disarms. Resets the counter and the
// crash latch.
func (f *FaultFS) FailAt(k int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops, f.failAt, f.crashed = 0, k, false
	f.log = f.log[:0]
}

// SetTornWrites controls whether the failing operation, when it is a Write,
// persists the first half of its buffer before erroring.
func (f *FaultFS) SetTornWrites(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.torn = on
}

// Ops returns how many operations have been observed since the last FailAt.
// Run the code path once unarmed to learn its total operation count, then
// sweep FailAt over [1, Ops()].
func (f *FaultFS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// OpLog returns a description of every operation observed since the last
// FailAt, for debugging sweep failures.
func (f *FaultFS) OpLog() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.log...)
}

// step counts one operation and reports whether it must fail. The returned
// torn flag is set when this is the armed operation and torn writes are on.
func (f *FaultFS) step(format string, args ...any) (fail, torn bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	f.log = append(f.log, fmt.Sprintf(format, args...))
	if f.crashed {
		return true, false
	}
	if f.failAt > 0 && f.ops == f.failAt {
		f.crashed = true
		return true, f.torn
	}
	return false, false
}

func (f *FaultFS) Create(name string) (File, error) {
	if fail, _ := f.step("create %s", name); fail {
		return nil, fmt.Errorf("create %s: %w", name, ErrInjected)
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, inner: file}, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	if fail, _ := f.step("open %s", name); fail {
		return nil, fmt.Errorf("open %s: %w", name, ErrInjected)
	}
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, inner: file}, nil
}

func (f *FaultFS) OpenAppend(name string) (File, error) {
	if fail, _ := f.step("openappend %s", name); fail {
		return nil, fmt.Errorf("openappend %s: %w", name, ErrInjected)
	}
	file, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, inner: file}, nil
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if fail, _ := f.step("truncate %s to %d", name, size); fail {
		return fmt.Errorf("truncate %s: %w", name, ErrInjected)
	}
	return f.inner.Truncate(name, size)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if fail, _ := f.step("rename %s -> %s", oldpath, newpath); fail {
		return fmt.Errorf("rename %s: %w", oldpath, ErrInjected)
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if fail, _ := f.step("remove %s", name); fail {
		return fmt.Errorf("remove %s: %w", name, ErrInjected)
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) RemoveAll(path string) error {
	if fail, _ := f.step("removeall %s", path); fail {
		return fmt.Errorf("removeall %s: %w", path, ErrInjected)
	}
	return f.inner.RemoveAll(path)
}

func (f *FaultFS) MkdirAll(dir string, perm os.FileMode) error {
	if fail, _ := f.step("mkdirall %s", dir); fail {
		return fmt.Errorf("mkdirall %s: %w", dir, ErrInjected)
	}
	return f.inner.MkdirAll(dir, perm)
}

func (f *FaultFS) ReadDir(dir string) ([]os.DirEntry, error) {
	if fail, _ := f.step("readdir %s", dir); fail {
		return nil, fmt.Errorf("readdir %s: %w", dir, ErrInjected)
	}
	return f.inner.ReadDir(dir)
}

func (f *FaultFS) Stat(name string) (os.FileInfo, error) {
	if fail, _ := f.step("stat %s", name); fail {
		return nil, fmt.Errorf("stat %s: %w", name, ErrInjected)
	}
	return f.inner.Stat(name)
}

func (f *FaultFS) SyncDir(dir string) error {
	if fail, _ := f.step("syncdir %s", dir); fail {
		return fmt.Errorf("syncdir %s: %w", dir, ErrInjected)
	}
	return f.inner.SyncDir(dir)
}

// faultFile threads a file's Write/Sync/Close operations through the parent
// injector's shared counter. Reads are not counted: the fault model is about
// what reaches the disk, and short reads are already covered by feeding Load
// truncated files.
type faultFile struct {
	fs    *FaultFS
	name  string
	inner File
}

func (f *faultFile) Read(p []byte) (int, error) { return f.inner.Read(p) }

// ReadAt passes through uncounted, like Read: lazy block loads are reads and
// do not advance the fault model's disk-op sequence.
func (f *faultFile) ReadAt(p []byte, off int64) (int, error) { return f.inner.ReadAt(p, off) }

func (f *faultFile) Write(p []byte) (int, error) {
	if fail, torn := f.fs.step("write %s (%d bytes)", f.name, len(p)); fail {
		if torn && len(p) > 1 {
			// A torn write: half the buffer reached the disk before the
			// crash. The inner write's own error (if any) is subsumed by
			// the injected one.
			n, _ := f.inner.Write(p[:len(p)/2]) //grovevet:ignore droppederr the injected fault supersedes the partial write's error
			return n, fmt.Errorf("write %s: %w", f.name, ErrInjected)
		}
		return 0, fmt.Errorf("write %s: %w", f.name, ErrInjected)
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	if fail, _ := f.fs.step("sync %s", f.name); fail {
		return fmt.Errorf("sync %s: %w", f.name, ErrInjected)
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error {
	if fail, _ := f.fs.step("close %s", f.name); fail {
		// Still release the descriptor: a crashed process's fds are closed
		// by the kernel; only the *success* of close is denied.
		f.inner.Close() //grovevet:ignore droppederr the injected fault supersedes the close error
		return fmt.Errorf("close %s: %w", f.name, ErrInjected)
	}
	return f.inner.Close()
}
