// Package fsio is grove's filesystem seam: a minimal interface over the
// handful of OS operations the persistence layer performs, with a passthrough
// implementation for production and a deterministic fault-injecting one for
// crash-safety tests.
//
// The point of the abstraction is not portability — it is testability of the
// durability claim. Every operation the column store's Save path issues
// (create, write, sync, close, rename, directory sync, …) flows through an FS
// so a test can fail exactly the k-th operation and then assert that a
// subsequent Load still yields a complete snapshot. The fsioonly grovevet
// analyzer enforces that internal/colstore never bypasses the seam with
// direct os calls.
package fsio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// File is an open file handle. Writable handles come from Create, read-only
// handles from Open; Sync on a read-only handle is a no-op for the OS
// implementation.
type File interface {
	io.Reader
	io.Writer
	// ReadAt reads len(p) bytes from the given absolute offset without
	// moving the sequential read cursor (io.ReaderAt semantics). The paged
	// column store uses it for lazy block loads from snapshot files.
	ReadAt(p []byte, off int64) (int, error)
	// Sync flushes the file's content to stable storage (fsync).
	Sync() error
	Close() error
}

// FS is the set of filesystem operations grove persistence performs. All
// paths are interpreted as the host OS would.
type FS interface {
	// Create opens name for writing, truncating it if it exists.
	Create(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// OpenAppend opens name for appending, creating it if absent. The
	// write-ahead log extends its tail through this handle.
	OpenAppend(name string) (File, error)
	// Truncate cuts name to size bytes. The write-ahead log uses it to drop
	// a torn tail before reopening the log for append.
	Truncate(name string, size int64) error
	// Rename atomically replaces newpath with oldpath (POSIX rename
	// semantics: it either fully happens or does not happen at all).
	Rename(oldpath, newpath string) error
	// Remove deletes a file or empty directory.
	Remove(name string) error
	// RemoveAll deletes path and everything under it.
	RemoveAll(path string) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string, perm os.FileMode) error
	// ReadDir lists dir, sorted by filename.
	ReadDir(dir string) ([]os.DirEntry, error)
	// Stat returns file metadata.
	Stat(name string) (os.FileInfo, error)
	// SyncDir fsyncs a directory, making renames and creates inside it
	// durable. Required between "rename into place" and "declare done": a
	// rename is atomic but not durable until its directory is synced.
	SyncDir(dir string) error
}

// osFS is the passthrough production implementation.
type osFS struct{}

// OS returns the passthrough filesystem backed by package os.
func OS() FS { return osFS{} }

func (osFS) Create(name string) (File, error) {
	return os.Create(name)
}

func (osFS) Open(name string) (File, error) {
	return os.Open(name)
}

func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) RemoveAll(path string) error          { return os.RemoveAll(path) }
func (osFS) MkdirAll(dir string, perm os.FileMode) error {
	return os.MkdirAll(dir, perm)
}
func (osFS) ReadDir(dir string) ([]os.DirEntry, error) { return os.ReadDir(dir) }
func (osFS) Stat(name string) (os.FileInfo, error)     { return os.Stat(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close() //grovevet:ignore droppederr the sync error is already being returned
		return err
	}
	return d.Close()
}

// ReadFile reads the whole of name through fs.
func ReadFile(fs FS, name string) ([]byte, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	b, err := io.ReadAll(f)
	if err != nil {
		f.Close() //grovevet:ignore droppederr the read error is already being returned
		return nil, err
	}
	return b, f.Close()
}

// WriteFileAtomic durably replaces name with data: it writes name.tmp,
// fsyncs it, renames it over name and fsyncs the directory, so a crash at
// any point leaves either the old complete file or the new complete file —
// never a torn mix.
func WriteFileAtomic(fs FS, name string, data []byte) error {
	tmp := name + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("fsio: atomic write %s: %w", name, err)
	}
	cleanup := func(err error) error {
		f.Close()      //grovevet:ignore droppederr the original write error is already being returned
		fs.Remove(tmp) //grovevet:ignore droppederr best-effort cleanup of the temp file after a failed write
		return fmt.Errorf("fsio: atomic write %s: %w", name, err)
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp) //grovevet:ignore droppederr best-effort cleanup of the temp file after a failed close
		return fmt.Errorf("fsio: atomic write %s: %w", name, err)
	}
	if err := fs.Rename(tmp, name); err != nil {
		fs.Remove(tmp) //grovevet:ignore droppederr best-effort cleanup of the temp file after a failed rename
		return fmt.Errorf("fsio: atomic write %s: %w", name, err)
	}
	if err := fs.SyncDir(filepath.Dir(name)); err != nil {
		return fmt.Errorf("fsio: atomic write %s: %w", name, err)
	}
	return nil
}
