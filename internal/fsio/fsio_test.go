package fsio

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestOSRoundTrip(t *testing.T) {
	fs := OS()
	dir := t.TempDir()
	name := filepath.Join(dir, "a.txt")
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	b, err := ReadFile(fs, name)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "hello" {
		t.Fatalf("read back %q", b)
	}
	if _, err := fs.Stat(name); err != nil {
		t.Fatal(err)
	}
	ents, err := fs.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := fs.Rename(name, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
}

func TestOpenAppendAndTruncate(t *testing.T) {
	fs := OS()
	dir := t.TempDir()
	name := filepath.Join(dir, "log")
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("head")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// OpenAppend positions at the end: existing content is preserved.
	a, err := fs.OpenAppend(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte("-tail")); err != nil {
		t.Fatal(err)
	}
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if b, err := os.ReadFile(name); err != nil || string(b) != "head-tail" {
		t.Fatalf("after append: %q, %v", b, err)
	}

	// Truncate cuts to the requested size; a following OpenAppend writes
	// from the new end, not the old offset.
	if err := fs.Truncate(name, 4); err != nil {
		t.Fatal(err)
	}
	a, err = fs.OpenAppend(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte("!")); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if b, err := os.ReadFile(name); err != nil || string(b) != "head!" {
		t.Fatalf("after truncate+append: %q, %v", b, err)
	}

	// OpenAppend creates a missing file empty (O_CREATE semantics).
	a, err = fs.OpenAppend(filepath.Join(dir, "absent"))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if fi, err := fs.Stat(filepath.Join(dir, "absent")); err != nil || fi.Size() != 0 {
		t.Fatalf("created file: %v, %v", fi, err)
	}
}

// TestFaultFSCountsAppendOps: the injector counts openappend and truncate
// like any other op, so WAL crash sweeps cover them.
func TestFaultFSCountsAppendOps(t *testing.T) {
	fault := NewFaultFS(OS())
	dir := t.TempDir()
	name := filepath.Join(dir, "log")
	if err := WriteFileAtomic(fault, name, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	fault.FailAt(1)
	if _, err := fault.OpenAppend(name); !errors.Is(err, ErrInjected) {
		t.Fatalf("openappend under fault = %v", err)
	}
	fault.FailAt(1)
	if err := fault.Truncate(name, 5); !errors.Is(err, ErrInjected) {
		t.Fatalf("truncate under fault = %v", err)
	}
	if b, _ := os.ReadFile(name); string(b) != "0123456789" {
		t.Fatalf("failed truncate modified the file: %q", b)
	}
	fault.FailAt(0)
	if err := fault.Truncate(name, 5); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(name); string(b) != "01234" {
		t.Fatalf("truncate through the injector: %q", b)
	}
}

func TestWriteFileAtomicReplaces(t *testing.T) {
	fs := OS()
	dir := t.TempDir()
	name := filepath.Join(dir, "f")
	if err := WriteFileAtomic(fs, name, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(fs, name, []byte("new")); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(name)
	if err != nil || string(b) != "new" {
		t.Fatalf("content = %q, %v", b, err)
	}
	if _, err := os.Stat(name + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

// TestWriteFileAtomicNeverTorn fails the atomic write at every operation
// index; the destination must afterwards hold either the old content intact
// or the new content intact.
func TestWriteFileAtomicNeverTorn(t *testing.T) {
	for _, torn := range []bool{false, true} {
		fault := NewFaultFS(OS())
		fault.SetTornWrites(torn)
		dir := t.TempDir()
		name := filepath.Join(dir, "f")
		if err := WriteFileAtomic(fault, name, []byte("old-content")); err != nil {
			t.Fatal(err)
		}
		total := fault.Ops()
		if total == 0 {
			t.Fatal("no operations counted")
		}
		for k := int64(1); k <= total; k++ {
			fault.FailAt(k)
			err := WriteFileAtomic(fault, name, []byte("NEW-CONTENT"))
			fault.FailAt(0)
			b, rerr := os.ReadFile(name)
			if rerr != nil {
				t.Fatalf("k=%d torn=%v: destination unreadable: %v", k, torn, rerr)
			}
			switch string(b) {
			case "old-content", "NEW-CONTENT":
			default:
				t.Fatalf("k=%d torn=%v: torn destination %q (save err %v)", k, torn, b, err)
			}
			// Restore the baseline for the next fault point.
			if err := WriteFileAtomic(fault, name, []byte("old-content")); err != nil {
				t.Fatal(err)
			}
			fault.FailAt(0)
		}
	}
}

func TestFaultFSFailsExactlyAtK(t *testing.T) {
	fault := NewFaultFS(OS())
	dir := t.TempDir()
	// Op 1: Create. Op 2: Write. Op 3: Sync. Op 4: Close.
	fault.FailAt(3)
	f, err := fault.Create(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatalf("op 1 failed early: %v", err)
	}
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatalf("op 2 failed early: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 3 err = %v, want injected", err)
	}
	// Crash latch: everything after the fault fails too.
	if err := f.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash close err = %v, want injected", err)
	}
	if _, err := fault.Stat(filepath.Join(dir, "x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash stat err = %v, want injected", err)
	}
	if got := fault.Ops(); got != 5 {
		t.Fatalf("ops = %d, want 5", got)
	}
	if lg := fault.OpLog(); len(lg) != 5 {
		t.Fatalf("op log = %v", lg)
	}
}

func TestFaultFSTornWrite(t *testing.T) {
	fault := NewFaultFS(OS())
	fault.SetTornWrites(true)
	dir := t.TempDir()
	name := filepath.Join(dir, "x")
	fault.FailAt(2) // the Write
	f, err := fault.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("0123456789")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write err = %v", err)
	}
	b, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "01234" {
		t.Fatalf("torn write persisted %q, want first half", b)
	}
}

// TestFaultFSConcurrent exercises the shared operation counter from many
// goroutines under -race: exactly the later operations fail once the armed
// index is reached.
func TestFaultFSConcurrent(t *testing.T) {
	fault := NewFaultFS(OS())
	dir := t.TempDir()
	const goroutines, each = 8, 25
	fault.FailAt(goroutines * each / 2)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failed, passed int
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				_, err := fault.Stat(filepath.Join(dir, fmt.Sprintf("none-%d-%d", g, i)))
				mu.Lock()
				if errors.Is(err, ErrInjected) {
					failed++
				} else {
					passed++
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	// Ops [failAt, total] fail, everything before passes.
	total := goroutines * each
	if wantPass := total/2 - 1; failed != total-wantPass || passed != wantPass {
		t.Fatalf("failed=%d passed=%d, want %d/%d", failed, passed, total-wantPass, wantPass)
	}
}
