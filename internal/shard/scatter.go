package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"grove/internal/bitmap"
	"grove/internal/query"
)

// scatter fans fn across every shard concurrently and gathers the per-shard
// results in shard order. The first shard failure cancels the siblings'
// sub-context, so a cancelled or failed query promptly abandons all shard
// sub-queries instead of letting the stragglers run to completion. A panic
// in a shard goroutine is recovered into an error (on the single-relation
// path a query panic unwinds the caller's goroutine; here it would kill the
// process otherwise).
//
// With one shard, fn runs inline on the caller's goroutine — no goroutine,
// channel, or context allocation — so the n=1 store keeps the exact
// single-relation execution profile.
func scatter[T any](ctx context.Context, c *Coordinator, fn func(ctx context.Context, s int, u *Unit) (T, error)) ([]T, error) {
	n := len(c.units)
	if n == 1 {
		u := c.units[0]
		u.pending.Add(1)
		defer u.pending.Add(-1)
		v, err := fn(ctx, 0, u)
		if err != nil {
			return nil, err
		}
		return []T{v}, nil
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for s, u := range c.units {
		wg.Add(1)
		u.pending.Add(1)
		go func(s int, u *Unit) {
			defer wg.Done()
			defer u.pending.Add(-1)
			defer func() {
				if p := recover(); p != nil {
					errs[s] = fmt.Errorf("shard %d: query panicked: %v", s, p)
					cancel()
				}
			}()
			v, err := fn(sctx, s, u)
			if err != nil {
				errs[s] = err
				cancel() // abandon the sibling sub-queries promptly
				return
			}
			results[s] = v
		}(s, u)
	}
	wg.Wait()
	if err := scatterError(errs); err != nil {
		return nil, err
	}
	return results, nil
}

// scatterError picks the error to surface from a scatter round. When one
// shard fails for a real reason, its siblings abort with context.Canceled
// from the induced cancellation — surfacing one of those would mask the
// cause — so cancellation errors are only returned when no shard reports
// anything else (i.e. the caller's own context was cancelled).
func scatterError(errs []error) error {
	var cancelled error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cancelled == nil {
				cancelled = err
			}
			continue
		}
		return err
	}
	return cancelled
}

// preferErr merges two per-query error slots, preferring a real error over a
// cancellation one (same masking concern as scatterError).
func preferErr(cur, next error) error {
	if next == nil {
		return cur
	}
	if cur == nil {
		return next
	}
	if errors.Is(cur, context.Canceled) || errors.Is(cur, context.DeadlineExceeded) {
		if !errors.Is(next, context.Canceled) && !errors.Is(next, context.DeadlineExceeded) {
			return next
		}
	}
	return cur
}

// --- graph queries -----------------------------------------------------------

// mergeResults combines per-shard graph-query results: the global answer is
// the offset-translated union of the (disjoint) per-shard answers. Plan is
// shard 0's, as the representative — shards share the schema and views, so
// the plans agree.
func (c *Coordinator) mergeResults(q *query.GraphQuery, subs []*query.Result) *query.Result {
	answers := make([]*bitmap.Bitmap, len(subs))
	for i, r := range subs {
		answers[i] = r.Answer
	}
	return &query.Result{
		Query:  q,
		Plan:   subs[0].Plan,
		Answer: c.mergeBitmaps(answers),
		Subs:   subs,
	}
}

// MatchContext executes a structural graph query across all shards.
func (c *Coordinator) MatchContext(ctx context.Context, q *query.GraphQuery) (*query.Result, error) {
	if len(c.units) == 1 {
		u := c.units[0]
		u.pending.Add(1)
		defer u.pending.Add(-1)
		return u.Eng.ExecuteGraphQueryContext(ctx, q)
	}
	subs, err := scatter(ctx, c, func(ctx context.Context, s int, u *Unit) (*query.Result, error) {
		return u.Eng.ExecuteGraphQueryContext(ctx, q)
	})
	if err != nil {
		return nil, err
	}
	return c.mergeResults(q, subs), nil
}

// EvalExprContext evaluates a boolean expression over graph queries across
// all shards. AND/OR/ANDNOT distribute over a disjoint record partition, so
// each shard evaluates the whole expression locally and the global answer is
// the translated union.
func (c *Coordinator) EvalExprContext(ctx context.Context, expr query.Expr) (*bitmap.Bitmap, error) {
	subs, err := scatter(ctx, c, func(ctx context.Context, s int, u *Unit) (*bitmap.Bitmap, error) {
		return u.Eng.EvalExprContext(ctx, expr)
	})
	if err != nil {
		return nil, err
	}
	return c.mergeBitmaps(subs), nil
}

// --- path aggregation --------------------------------------------------------

// mergeAgg combines per-shard path-aggregation results. Each record's
// per-path folds were computed entirely inside its shard — merging is pure
// reordering by ascending global id, never re-association of float folds —
// so an n-shard aggregate is bit-identical to the single-shard one,
// including NaN and signed-zero values.
func (c *Coordinator) mergeAgg(q *query.PathAggQuery, subs []*query.AggResult) *query.AggResult {
	n := uint32(len(c.units))
	type ref struct {
		g uint32 // global record id
		s int    // shard
		i int    // index within subs[s].RecordIDs
	}
	total := 0
	for _, r := range subs {
		total += len(r.RecordIDs)
	}
	refs := make([]ref, 0, total)
	for s, r := range subs {
		for i, local := range r.RecordIDs {
			refs = append(refs, ref{g: local*n + uint32(s), s: s, i: i})
		}
	}
	sort.Slice(refs, func(a, b int) bool { return refs[a].g < refs[b].g })

	out := &query.AggResult{
		Query:           q,
		Answer:          bitmap.New(),
		RecordIDs:       make([]uint32, len(refs)),
		Paths:           subs[0].Paths,
		SegmentsPerPath: subs[0].SegmentsPerPath,
		Values:          make([][]float64, len(subs[0].Values)),
	}
	for p := range out.Values {
		out.Values[p] = make([]float64, len(refs))
	}
	for j, r := range refs {
		out.RecordIDs[j] = r.g
		out.Answer.Add(r.g)
		for p := range out.Values {
			out.Values[p][j] = subs[r.s].Values[p][r.i]
		}
	}
	return out
}

// AggregateContext executes a path-aggregation query across all shards.
func (c *Coordinator) AggregateContext(ctx context.Context, q *query.PathAggQuery) (*query.AggResult, error) {
	if len(c.units) == 1 {
		u := c.units[0]
		u.pending.Add(1)
		defer u.pending.Add(-1)
		return u.Eng.ExecutePathAggQueryContext(ctx, q)
	}
	subs, err := scatter(ctx, c, func(ctx context.Context, s int, u *Unit) (*query.AggResult, error) {
		return u.Eng.ExecutePathAggQueryContext(ctx, q)
	})
	if err != nil {
		return nil, err
	}
	return c.mergeAgg(q, subs), nil
}

// --- statements --------------------------------------------------------------

// ExecuteStatementContext parses and executes one text-language statement
// across all shards.
func (c *Coordinator) ExecuteStatementContext(ctx context.Context, text string) (*query.StatementResult, error) {
	if len(c.units) == 1 {
		u := c.units[0]
		u.pending.Add(1)
		defer u.pending.Add(-1)
		return u.Eng.ExecuteStatementContext(ctx, text)
	}
	stmt, err := query.Parse(text)
	if err != nil {
		return nil, err
	}
	if stmt.Agg != nil {
		res, err := c.AggregateContext(ctx, stmt.Agg)
		if err != nil {
			return nil, err
		}
		return &query.StatementResult{Agg: res}, nil
	}
	ids, err := c.EvalExprContext(ctx, stmt.Expr)
	if err != nil {
		return nil, err
	}
	return &query.StatementResult{IDs: ids}, nil
}

// --- batches -----------------------------------------------------------------

// batchWorkers splits a worker budget across shards: each shard's batch
// executor gets workers/n (at least 1), so total concurrency stays near the
// requested budget instead of multiplying by the shard count.
func (c *Coordinator) batchWorkers(workers int) int {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if n := len(c.units); n > 1 {
		workers /= n
		if workers < 1 {
			workers = 1
		}
	}
	return workers
}

// ExecuteGraphBatchContext runs a batch of structural queries across all
// shards: every shard executes the whole batch through its own worker pool,
// and the per-query partials merge by query index. Error slots follow batch
// semantics — one query's failure does not abort the rest — and a merged
// query errors if it failed on any shard.
func (c *Coordinator) ExecuteGraphBatchContext(ctx context.Context, queries []*query.GraphQuery, workers int) ([]*query.Result, []error) {
	per := c.batchWorkers(workers)
	if len(c.units) == 1 {
		u := c.units[0]
		u.pending.Add(1)
		defer u.pending.Add(-1)
		return query.NewBatchExecutor(u.Eng, per).ExecuteGraphQueriesContext(ctx, queries)
	}
	type shardOut struct {
		res  []*query.Result
		errs []error
	}
	subs, err := scatter(ctx, c, func(ctx context.Context, s int, u *Unit) (shardOut, error) {
		res, errs := query.NewBatchExecutor(u.Eng, per).ExecuteGraphQueriesContext(ctx, queries)
		return shardOut{res: res, errs: errs}, nil
	})
	out := make([]*query.Result, len(queries))
	outErrs := make([]error, len(queries))
	if err != nil { // only a recovered panic can surface here
		for i := range outErrs {
			outErrs[i] = err
		}
		return out, outErrs
	}
	subsI := make([]*query.Result, len(subs))
	for i, q := range queries {
		var qerr error
		for s := range subs {
			qerr = preferErr(qerr, subs[s].errs[i])
			subsI[s] = subs[s].res[i]
		}
		if qerr != nil {
			outErrs[i] = qerr
			continue
		}
		out[i] = c.mergeResults(q, append([]*query.Result(nil), subsI...))
	}
	return out, outErrs
}

// ExecutePathAggBatchContext is ExecuteGraphBatchContext for
// path-aggregation batches.
func (c *Coordinator) ExecutePathAggBatchContext(ctx context.Context, queries []*query.PathAggQuery, workers int) ([]*query.AggResult, []error) {
	per := c.batchWorkers(workers)
	if len(c.units) == 1 {
		u := c.units[0]
		u.pending.Add(1)
		defer u.pending.Add(-1)
		return query.NewBatchExecutor(u.Eng, per).ExecutePathAggQueriesContext(ctx, queries)
	}
	type shardOut struct {
		res  []*query.AggResult
		errs []error
	}
	subs, err := scatter(ctx, c, func(ctx context.Context, s int, u *Unit) (shardOut, error) {
		res, errs := query.NewBatchExecutor(u.Eng, per).ExecutePathAggQueriesContext(ctx, queries)
		return shardOut{res: res, errs: errs}, nil
	})
	out := make([]*query.AggResult, len(queries))
	outErrs := make([]error, len(queries))
	if err != nil {
		for i := range outErrs {
			outErrs[i] = err
		}
		return out, outErrs
	}
	subsI := make([]*query.AggResult, len(subs))
	for i, q := range queries {
		var qerr error
		for s := range subs {
			qerr = preferErr(qerr, subs[s].errs[i])
			subsI[s] = subs[s].res[i]
		}
		if qerr != nil {
			outErrs[i] = qerr
			continue
		}
		out[i] = c.mergeAgg(q, subsI)
	}
	return out, outErrs
}
